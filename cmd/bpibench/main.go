// Command bpibench regenerates the paper-reproduction report: every
// experiment of DESIGN.md §5 (the executable counterparts of the paper's
// lemmas, remarks, theorems and examples) is run and summarised as a
// paper-claim vs measured-result table. EXPERIMENTS.md is produced from this
// output.
//
// The suite is first run sequentially (the per-experiment timings in the
// table come from this run), then — unless -parallel=false — re-run with
// independent experiments fanned out over a worker pool and equivalence
// checkers in parallel-engine mode, so the footer reports both wall-clocks.
//
// Usage: bpibench [-run regexp-free-substring] [-v] [-parallel] [-workers n]
// [-json file] [-stress] [-protocols] [-compiled] [-trace out.json]
// [-counters] [-cpuprofile file] [-memprofile file]
//
// -compiled runs the suite's checkers on compiled transition programs and,
// with -stress, re-runs every stress point on a compiled store after the
// interpreted run: verdicts must be bit-identical, and the per-point
// interpreted/compiled time ratios are published (compiled_ms,
// compiled_ratio, and the gate figure compiled_min_ratio — the worst ratio
// over points whose interpreted run took >= 200ms; shorter points are
// recorded but excluded as scheduling noise).
//
// -protocols runs the internal/protocols conformance ladder: each protocol
// scenario (gossip star, leader election, multicast emulation) is decided
// against its behavioural spec at 1/2/4 workers, verdicts must match the
// scenario's expectation and be bit-identical across worker counts, and the
// per-rung curve lands in the JSON report next to the stress curve.
//
// The experiment suite's wall-clock ratio is NOT the headline parallelism
// number: the individual experiments are sub-50ms, so a suite "speedup" is
// dominated by scheduling noise, and the emitter refuses to publish one.
// The headline comes from -stress: the internal/stress topology ladder
// (10^5+ states) checked at 1/2/4/8 workers, with the 4-worker speedup on
// the largest rung recorded as headline_speedup_4w — and only when the host
// actually has >= 2 CPUs, because a single-P runtime cannot exhibit
// parallelism and the resulting figure would be noise masquerading as a
// benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bpi/internal/axioms"
	"bpi/internal/cbs"
	"bpi/internal/equiv"
	"bpi/internal/lts"
	"bpi/internal/machine"
	"bpi/internal/maytest"
	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/papers"
	"bpi/internal/pi"
	"bpi/internal/protocols"
	"bpi/internal/pvm"
	"bpi/internal/ram"
	brand "bpi/internal/rand"
	"bpi/internal/refine"
	"bpi/internal/semantics"
	"bpi/internal/stress"
	"bpi/internal/syntax"
)

type experiment struct {
	id    string
	item  string // the paper item reproduced
	claim string // what the paper asserts
	run   func() (measured string, ok bool, err error)
}

// tracer is the suite-wide observability sink (nil unless -trace/-counters
// was given). One tracer spans both the sequential and parallel runs; the
// obs package is safe for the concurrent checkers the re-run creates.
var tracer *obs.Tracer

// newChecker builds the equivalence checker experiments use. The parallel
// re-run swaps in shared-store parallel checkers (set once, before any
// concurrent experiment starts).
var newChecker = func() *equiv.Checker { return instrument(equiv.NewChecker(nil)) }

func instrument(ch *equiv.Checker) *equiv.Checker {
	if tracer != nil {
		ch.Obs = tracer
		ch.Store().SetObs(tracer)
	}
	return ch
}

type outcome struct {
	status   string
	measured string
	dur      time.Duration
}

func (o outcome) failed() bool { return o.status != "PASS" }

func runOne(e experiment) outcome {
	start := time.Now()
	measured, ok, err := e.run()
	dur := time.Since(start).Round(time.Millisecond)
	status := "PASS"
	if err != nil {
		status, measured = "ERROR", err.Error()
	} else if !ok {
		status = "FAIL"
	}
	return outcome{status, measured, dur}
}

// runSuite executes the experiments with the given fan-out and returns the
// per-experiment outcomes (in suite order) plus the total wall-clock.
func runSuite(exps []experiment, workers int) ([]outcome, time.Duration) {
	start := time.Now()
	outs := make([]outcome, len(exps))
	if workers <= 1 {
		for i, e := range exps {
			outs[i] = runOne(e)
		}
		return outs, time.Since(start)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				outs[i] = runOne(exps[i])
			}
		}()
	}
	wg.Wait()
	return outs, time.Since(start)
}

type expJSON struct {
	ID       string  `json:"id"`
	Item     string  `json:"item"`
	Status   string  `json:"status"`
	Measured string  `json:"measured"`
	MS       float64 `json:"ms"`
}

type benchJSON struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	HostCPUs     int     `json:"host_cpus"`
	Workers      int     `json:"workers"`
	SequentialMS float64 `json:"sequential_ms"`
	ParallelMS   float64 `json:"parallel_ms,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	// SpeedupNote explains a withheld suite speedup (sub-50ms experiments,
	// or a single-P runtime).
	SpeedupNote string         `json:"speedup_note,omitempty"`
	Stress      *stressJSON    `json:"stress,omitempty"`
	Protocols   *protocolsJSON `json:"protocols,omitempty"`
	Experiments []expJSON      `json:"experiments"`
}

type stressPointJSON struct {
	Workers int     `json:"workers"`
	MS      float64 `json:"ms"`
	// Speedup is sequential-ms / this-point-ms on the same rung.
	Speedup float64 `json:"speedup"`
	// CompiledMS is the same point re-run with the compiled transition
	// programs (-compiled only), after a bit-identity check against the
	// interpreted verdict.
	CompiledMS float64 `json:"compiled_ms,omitempty"`
	// CompiledRatio is interpreted-ms / compiled-ms at this point: > 1
	// means the compiled path was faster.
	CompiledRatio float64 `json:"compiled_ratio,omitempty"`
}

type stressRungJSON struct {
	Name   string            `json:"name"`
	States int               `json:"states"`
	Pairs  int               `json:"pairs"`
	Points []stressPointJSON `json:"points"`
}

type stressJSON struct {
	// HostCPUs is runtime.NumCPU() on the machine that ran the curve. The
	// CI regression gate conditions on it: a 1-CPU host cannot parallelise,
	// so its curve is recorded for the trajectory but never gated on.
	HostCPUs int              `json:"host_cpus"`
	Rungs    []stressRungJSON `json:"rungs"`
	// Headline4W is the 4-worker speedup on the largest rung; omitted when
	// the host has fewer than 2 CPUs (the figure would be meaningless).
	Headline4W float64 `json:"headline_speedup_4w,omitempty"`
	// CompiledMinRatio is the worst interpreted/compiled time ratio over
	// the points whose interpreted run took >= 200ms (-compiled only) — the
	// number the CI guard gates on (compiled must stay >= 0.9x). Sub-200ms
	// points are recorded but excluded: their ratio is scheduling noise.
	CompiledMinRatio float64 `json:"compiled_min_ratio,omitempty"`
	// CompiledNote explains a withheld CompiledMinRatio.
	CompiledNote string `json:"compiled_note,omitempty"`
}

// stressWorkerCounts is the per-rung worker ladder of the scaling curve.
var stressWorkerCounts = []int{1, 2, 4, 8}

// runStress checks every internal/stress Ladder rung (self-pair, strong step
// — the engine still has to close the full reachable pair space to say yes)
// at each worker count, each run on a fresh store so no run inherits another
// run's memoised semantics. Verdicts must be bit-identical across worker
// counts; any divergence is counted as a failure. With compiled, every point
// is re-run on a compiled store and the verdicts must also be bit-identical;
// the interpreted/compiled time ratios feed compiled_min_ratio. Returns the
// curve and the number of failures.
func runStress(verbose, compiled bool) (*stressJSON, int) {
	out := &stressJSON{HostCPUs: runtime.NumCPU()}
	failures := 0
	stressChecker := func(w int, comp bool) *equiv.Checker {
		var ch *equiv.Checker
		if w > 1 {
			ch = equiv.NewParallelChecker(nil, w)
		} else {
			ch = equiv.NewChecker(nil)
		}
		// The largest rung's pair space is ~5M (pair density grows with
		// mesh size: ~30x states at mesh-20, ~36x at mesh-22); 1<<23 keeps
		// comfortable headroom so the curve never hits the budget.
		ch.MaxPairs = 1 << 23
		if comp {
			ch.Store().EnableCompiled()
		}
		return instrument(ch)
	}
	minRatio, eligible := 0.0, 0
	for _, c := range stress.Ladder() {
		rung := stressRungJSON{Name: c.Name, States: c.States}
		var baseMS float64
		var base equiv.Result
		for i, w := range stressWorkerCounts {
			ch := stressChecker(w, false)
			start := time.Now()
			r, err := ch.Step(c.P, c.Q, false)
			ms := float64(time.Since(start).Microseconds()) / 1000
			if err != nil {
				fmt.Printf("stress %-8s workers=%d: ERROR %v\n", c.Name, w, err)
				failures++
				continue
			}
			if i == 0 {
				baseMS, base = ms, r
				rung.Pairs = r.Pairs
				if !r.Related {
					fmt.Printf("stress %-8s: self-pair not related (%s)\n", c.Name, r.Reason)
					failures++
				}
			} else if r.Related != base.Related || r.Pairs != base.Pairs || r.Reason != base.Reason {
				fmt.Printf("stress %-8s workers=%d: verdict diverged from sequential (related %v/%v pairs %d/%d)\n",
					c.Name, w, r.Related, base.Related, r.Pairs, base.Pairs)
				failures++
			}
			pt := stressPointJSON{Workers: w, MS: ms, Speedup: baseMS / ms}
			if compiled {
				cch := stressChecker(w, true)
				cstart := time.Now()
				cr, cerr := cch.Step(c.P, c.Q, false)
				cms := float64(time.Since(cstart).Microseconds()) / 1000
				if cerr != nil {
					fmt.Printf("stress %-8s workers=%d: compiled ERROR %v\n", c.Name, w, cerr)
					failures++
				} else {
					if cr.Related != r.Related || cr.Pairs != r.Pairs || cr.Reason != r.Reason {
						fmt.Printf("stress %-8s workers=%d: compiled verdict diverged (related %v/%v pairs %d/%d)\n",
							c.Name, w, cr.Related, r.Related, cr.Pairs, r.Pairs)
						failures++
					}
					pt.CompiledMS = cms
					pt.CompiledRatio = ms / cms
					// Only interpreted runs >= 200ms are long enough for the
					// ratio to be a measurement rather than scheduling noise.
					if ms >= 200 {
						if eligible == 0 || pt.CompiledRatio < minRatio {
							minRatio = pt.CompiledRatio
						}
						eligible++
					}
				}
			}
			rung.Points = append(rung.Points, pt)
			if verbose {
				fmt.Printf("stress %-8s workers=%d: %.0fms\n", c.Name, w, ms)
			}
		}
		var cells []string
		for _, pt := range rung.Points {
			cell := fmt.Sprintf("w%d %.1fs (%.2fx)", pt.Workers, pt.MS/1000, pt.Speedup)
			if pt.CompiledMS > 0 {
				cell += fmt.Sprintf(" [compiled %.1fs, %.2fx]", pt.CompiledMS/1000, pt.CompiledRatio)
			}
			cells = append(cells, cell)
		}
		fmt.Printf("stress %-8s %7d states %8d pairs  %s\n", c.Name, rung.States, rung.Pairs, strings.Join(cells, "  "))
		out.Rungs = append(out.Rungs, rung)
	}
	if runtime.NumCPU() >= 2 && runtime.GOMAXPROCS(0) >= 2 && len(out.Rungs) > 0 {
		last := out.Rungs[len(out.Rungs)-1]
		for _, pt := range last.Points {
			if pt.Workers == 4 {
				out.Headline4W = pt.Speedup
			}
		}
	} else {
		fmt.Printf("stress: host has %d CPU(s), GOMAXPROCS=%d — curve recorded, headline speedup withheld (needs >= 2 of each)\n",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	if compiled {
		if eligible == 0 {
			out.CompiledNote = "compiled_min_ratio withheld: no interpreted point reached 200ms, the ratios would be scheduling noise"
			fmt.Println("stress: " + out.CompiledNote)
		} else {
			out.CompiledMinRatio = minRatio
			fmt.Printf("stress: compiled_min_ratio %.2f over %d eligible points (interpreted-ms / compiled-ms; >= 0.9 required by CI)\n",
				minRatio, eligible)
		}
	}
	return out, failures
}

type protocolsRungJSON struct {
	Name   string            `json:"name"`
	Algo   string            `json:"algo"`
	Rel    string            `json:"rel"`
	Weak   bool              `json:"weak"`
	States int               `json:"states"`
	Pairs  int               `json:"pairs"`
	Points []stressPointJSON `json:"points"`
}

type protocolsJSON struct {
	HostCPUs int                 `json:"host_cpus"`
	Rungs    []protocolsRungJSON `json:"rungs"`
}

// protocolsWorkerCounts is the per-rung worker ladder of the protocol
// conformance curve (the acceptance matrix: sequential, parallel at 2 and
// 4 workers).
var protocolsWorkerCounts = []int{1, 2, 4}

// runProtocols decides every internal/protocols Ladder rung — a real
// broadcast algorithm against its behavioural spec, in the scenario's own
// relation — at each worker count, each run on a fresh store. Verdicts must
// match the scenario's expectation and be bit-identical across worker
// counts. Returns the curve and the number of failures.
func runProtocols(verbose bool) (*protocolsJSON, int) {
	out := &protocolsJSON{HostCPUs: runtime.NumCPU()}
	failures := 0
	for _, s := range protocols.Ladder() {
		rung := protocolsRungJSON{Name: s.Name, Algo: s.Algo, Rel: string(s.Rel),
			Weak: s.Weak, States: s.States}
		var baseMS float64
		var base equiv.Result
		for i, w := range protocolsWorkerCounts {
			ch := instrument(protocols.NewChecker(w))
			start := time.Now()
			r, err := protocols.Decide(ch, s)
			ms := float64(time.Since(start).Microseconds()) / 1000
			if err != nil {
				fmt.Printf("protocols %-16s workers=%d: ERROR %v\n", s.Name, w, err)
				failures++
				continue
			}
			if i == 0 {
				baseMS, base = ms, r
				rung.Pairs = r.Pairs
				if r.Related != s.WantEquiv {
					fmt.Printf("protocols %-16s: verdict %v, scenario expects %v (%s)\n",
						s.Name, r.Related, s.WantEquiv, r.Reason)
					failures++
				}
			} else if r.Related != base.Related || r.Pairs != base.Pairs || r.Reason != base.Reason {
				fmt.Printf("protocols %-16s workers=%d: verdict diverged from sequential (related %v/%v pairs %d/%d)\n",
					s.Name, w, r.Related, base.Related, r.Pairs, base.Pairs)
				failures++
			}
			rung.Points = append(rung.Points, stressPointJSON{Workers: w, MS: ms, Speedup: baseMS / ms})
			if verbose {
				fmt.Printf("protocols %-16s workers=%d: %.0fms\n", s.Name, w, ms)
			}
		}
		var cells []string
		for _, pt := range rung.Points {
			cells = append(cells, fmt.Sprintf("w%d %.0fms (%.2fx)", pt.Workers, pt.MS, pt.Speedup))
		}
		fmt.Printf("protocols %-16s %6d states %8d pairs  %s\n",
			rung.Name, rung.States, rung.Pairs, strings.Join(cells, "  "))
		out.Rungs = append(out.Rungs, rung)
	}
	return out, failures
}

// main delegates to run so the profile-writing defers fire before the
// process exits with the suite's status code.
func main() { os.Exit(run()) }

func run() int {
	filter := flag.String("run", "", "only run experiments whose id contains this substring")
	verbose := flag.Bool("v", false, "verbose")
	parallel := flag.Bool("parallel", true, "after the sequential run, re-run the suite with experiments and pair queries fanned out concurrently")
	workers := flag.Int("workers", 0, "parallel fan-out width (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write machine-readable results (BENCH_equiv.json style) to this file")
	stressFlag := flag.Bool("stress", false, "run the internal/stress scaling ladder (10^5+ states) at 1/2/4/8 workers; this is the headline parallelism number and takes minutes")
	compiledFlag := flag.Bool("compiled", false, "run suite checkers on compiled transition programs, and add an interpreted-vs-compiled comparison to every -stress point (bit-identity enforced; feeds compiled_min_ratio)")
	protocolsFlag := flag.Bool("protocols", false, "run the internal/protocols conformance ladder (broadcast algorithms vs their specs) at 1/2/4 workers")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file covering the whole suite")
	counters := flag.Bool("counters", false, "print aggregate engine counters to stderr after the suite")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	serviceGrid := flag.String("servicegrid", "", "run the daemon throughput grid (workers × clients × batch over /v1/equiv/batch) and write BENCH_service.json-style results to this file, skipping the experiment suite")
	gridRepeats := flag.Int("grid-repeats", 3, "repeats per service-grid cell (median is the headline)")
	flag.Parse()
	if *serviceGrid != "" {
		return runServiceGrid(*serviceGrid, *gridRepeats)
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *traceOut != "" || *counters {
		tracer = obs.NewWithLimit(1 << 18)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpibench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err == nil {
				runtime.GC()
				err = pprof.WriteHeapProfile(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "bpibench: memprofile: %v\n", err)
			}
		}()
	}

	if *compiledFlag {
		newChecker = func() *equiv.Checker {
			ch := equiv.NewChecker(nil)
			ch.Store().EnableCompiled()
			return instrument(ch)
		}
	}

	exps := suite()
	if *filter != "" {
		kept := exps[:0]
		for _, e := range exps {
			if strings.Contains(e.id, *filter) {
				kept = append(kept, e)
			}
		}
		exps = kept
	}

	fmt.Printf("bπ-calculus reproduction suite — %d experiments (GOMAXPROCS=%d)\n\n",
		len(exps), runtime.GOMAXPROCS(0))
	fmt.Printf("%-4s %-26s %-8s %-9s %s\n", "ID", "Paper item", "Status", "Time", "Measured")
	fmt.Println(strings.Repeat("-", 110))
	seq, seqWall := runSuite(exps, 1)
	failures := 0
	for i, e := range exps {
		o := seq[i]
		if o.failed() {
			failures++
		}
		fmt.Printf("%-4s %-26s %-8s %-9s %s\n", e.id, e.item, o.status, o.dur, o.measured)
	}
	fmt.Println(strings.Repeat("-", 110))

	report := benchJSON{GOMAXPROCS: runtime.GOMAXPROCS(0), HostCPUs: runtime.NumCPU(),
		Workers: *workers, SequentialMS: float64(seqWall.Microseconds()) / 1000}
	var maxExp time.Duration
	for i, e := range exps {
		if seq[i].dur > maxExp {
			maxExp = seq[i].dur
		}
		report.Experiments = append(report.Experiments, expJSON{
			ID: e.id, Item: e.item, Status: seq[i].status, Measured: seq[i].measured,
			MS: float64(seq[i].dur.Microseconds()) / 1000,
		})
	}

	if *parallel {
		newChecker = func() *equiv.Checker {
			ch := equiv.NewParallelChecker(nil, 0)
			if *compiledFlag {
				ch.Store().EnableCompiled()
			}
			return instrument(ch)
		}
		par, parWall := runSuite(exps, *workers)
		for i, e := range exps {
			if par[i].failed() && !seq[i].failed() {
				failures++
				fmt.Printf("parallel re-run diverged on %s: %s %s\n", e.id, par[i].status, par[i].measured)
			}
		}
		report.ParallelMS = float64(parWall.Microseconds()) / 1000
		// The suite ratio is only an honest parallelism figure when the
		// runtime can parallelise AND at least one experiment is big enough
		// to dominate scheduling noise. Otherwise the wall-clocks are still
		// recorded, but no headline speedup is derived from them — the
		// stress curve is the headline.
		switch {
		case runtime.GOMAXPROCS(0) < 2:
			report.SpeedupNote = "suite speedup withheld: GOMAXPROCS=1 cannot exhibit parallelism"
			fmt.Printf("wall-clock: sequential %s, parallel %s (%d workers; single-P runtime, no speedup claimed)\n",
				seqWall.Round(time.Millisecond), parWall.Round(time.Millisecond), *workers)
		case maxExp < 50*time.Millisecond:
			report.SpeedupNote = fmt.Sprintf(
				"suite speedup withheld: every experiment is sub-50ms (max %s), the ratio would be scheduling noise; see stress curve", maxExp)
			fmt.Printf("wall-clock: sequential %s, parallel %s (%d workers; sub-50ms experiments, suite ratio is noise — see stress curve)\n",
				seqWall.Round(time.Millisecond), parWall.Round(time.Millisecond), *workers)
		default:
			report.Speedup = float64(seqWall) / float64(parWall)
			fmt.Printf("wall-clock: sequential %s, parallel %s (%d workers, %.1fx speedup)\n",
				seqWall.Round(time.Millisecond), parWall.Round(time.Millisecond), *workers, report.Speedup)
		}
	} else {
		fmt.Printf("wall-clock: sequential %s (parallel re-run disabled)\n", seqWall.Round(time.Millisecond))
	}

	if *stressFlag {
		fmt.Println(strings.Repeat("-", 110))
		st, sf := runStress(*verbose, *compiledFlag)
		failures += sf
		report.Stress = st
	}

	if *protocolsFlag {
		fmt.Println(strings.Repeat("-", 110))
		pr, pf := runProtocols(*verbose)
		failures += pf
		report.Protocols = pr
	}

	if *jsonPath != "" {
		// Sanity gate: a parallel speedup figure measured on a single-P
		// runtime is meaningless — refuse to publish it rather than let a
		// misconfigured CI runner regenerate BENCH_equiv.json with noise.
		if report.Speedup != 0 && report.GOMAXPROCS < 2 {
			fmt.Fprintf(os.Stderr, "bpibench: refusing to write %s: parallel speedup measured with GOMAXPROCS=%d (need >= 2; set GOMAXPROCS or drop -parallel)\n",
				*jsonPath, report.GOMAXPROCS)
			return 1
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpibench: writing %s: %v\n", *jsonPath, err)
			return 1
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpibench: writing %s: %v\n", *traceOut, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans written to %s (%d dropped)\n",
			len(tracer.Events()), *traceOut, tracer.Dropped())
	}
	if *counters {
		fmt.Fprint(os.Stderr, obs.FormatCounters(tracer.Counters()))
	}

	if failures > 0 {
		fmt.Printf("%d experiment(s) failed\n", failures)
		return 1
	}
	fmt.Println("all experiments reproduce the paper's claims")
	return 0
}

func suite() []experiment {
	return []experiment{
		e1(), e2(), e3(), e4(), e5(), e7(), e8(), e9(),
		e10(), e11(), e12(), e13(), e14(), e15(), e16(), e17(),
		e18(), e19(),
	}
}

// E18: §6's Random Access Machine claim — the Minsky-machine encoding halts
// honestly exactly when the machine halts.
func e18() experiment {
	return experiment{"E18", "§6 RAM encoding", "encoding may-halt ⟺ Minsky machine halts", func() (string, bool, error) {
		double := ram.Program{
			ram.DecJz{R: 0, NextPos: 1, NextZero: 3},
			ram.Inc{R: 1, Next: 2},
			ram.Inc{R: 1, Next: 0},
			ram.Halt{},
		}
		haltGot, err := ram.HaltsMaybe(double, []int{2, 0}, 300000)
		if err != nil {
			return "", false, err
		}
		spin := ram.Program{ram.DecJz{R: 0, NextPos: 0, NextZero: 0}}
		spinGot, err := ram.HaltsMaybe(spin, []int{0}, 50000)
		if err != nil {
			return "", false, err
		}
		cheat := ram.Program{
			ram.DecJz{R: 0, NextPos: 1, NextZero: 2},
			ram.DecJz{R: 1, NextPos: 1, NextZero: 1},
			ram.Halt{},
		}
		cheatGot, err := ram.HaltsMaybe(cheat, []int{1, 0}, 100000)
		if err != nil {
			return "", false, err
		}
		ok := haltGot && !spinGot && !cheatGot
		return fmt.Sprintf("double=%v spin=%v cheat-guess=%v", haltGot, spinGot, cheatGot), ok, nil
	}}
}

// E19: cross-engine validation — partition refinement vs the pair engine on
// random terms for the autonomous relations.
func e19() experiment {
	return experiment{"E19", "engine cross-check", "refinement and pair engines agree on ~φ and ~b", func() (string, bool, error) {
		cfg := brand.Default()
		cfg.MaxDepth = 3
		g := brand.New(808, cfg)
		ch := newChecker()
		sys := semantics.NewSystem(nil)
		agree := 0
		for i := 0; i < 25; i++ {
			p := g.Term()
			q := g.Mutate(p)
			gr, err := lts.Explore(sys, []syntax.Proc{p, q}, lts.Options{AutonomousOnly: true, MaxStates: 1 << 14})
			if err != nil {
				return "", false, err
			}
			sr, err := refine.StrongStep(gr)
			if err != nil {
				return "", false, err
			}
			sp, err := ch.Step(p, q, false)
			if err != nil {
				return "", false, err
			}
			br, err := refine.StrongBarbed(gr)
			if err != nil {
				return "", false, err
			}
			bp, err := ch.Barbed(p, q, false)
			if err != nil {
				return "", false, err
			}
			if sr != sp.Related || br != bp.Related {
				return fmt.Sprintf("engines disagree on pair %d", i), false, nil
			}
			agree++
		}
		return fmt.Sprintf("%d pairs × 2 relations agree", agree), true, nil
	}}
}

// E16: the weak congruence behaves as Theorem 4 requires (sampled contexts)
// and the τ-law separates ≈ from ≈c.
func e16() experiment {
	return experiment{"E16", "Theorems 4-5 (weak)", "≈c preserved by contexts; τ.p ≈ p but ≉c", func() (string, bool, error) {
		ch := newChecker()
		p := syntax.TauP(syntax.SendN("c"))
		q := syntax.SendN("c")
		w, err := ch.Labelled(p, q, true)
		if err != nil {
			return "", false, err
		}
		cgr, err := ch.Congruence(p, q, true)
		if err != nil {
			return "", false, err
		}
		if !w.Related || cgr {
			return "τ-law gap wrong", false, nil
		}
		// A ≈c pair stays related under contexts.
		lp := syntax.Send("a", nil, p)
		lq := syntax.Send("a", nil, q)
		ok, err := ch.Congruence(lp, lq, true)
		if err != nil {
			return "", false, err
		}
		if !ok {
			return "prefixed τ-law not ≈c", false, nil
		}
		ctxs := 0
		for _, ctx := range []func(syntax.Proc) syntax.Proc{
			func(r syntax.Proc) syntax.Proc { return syntax.Choice(r, syntax.SendN("d")) },
			func(r syntax.Proc) syntax.Proc { return syntax.Group(r, syntax.RecvN("d", "z")) },
			func(r syntax.Proc) syntax.Proc { return syntax.Restrict(r, "w") },
		} {
			res, err := ch.Labelled(ctx(lp), ctx(lq), true)
			if err != nil {
				return "", false, err
			}
			if !res.Related {
				return "≈c broken by a context", false, nil
			}
			ctxs++
		}
		return fmt.Sprintf("τ-law gap confirmed; %d contexts preserve ≈c", ctxs), true, nil
	}}
}

// E17: may-testing (the paper's §6 outlook): the bisimulation-distinct pair
// ā.(b̄+c̄) vs ā.b̄+ā.c̄ is not separated by any trace observer.
func e17() experiment {
	return experiment{"E17", "§6 may-testing outlook", "observers cannot split ā.(b̄+c̄) from ā.b̄+ā.c̄", func() (string, bool, error) {
		p := syntax.Send("a", nil, syntax.Choice(syntax.SendN("b"), syntax.SendN("c")))
		q := syntax.Choice(
			syntax.Send("a", nil, syntax.SendN("b")),
			syntax.Send("a", nil, syntax.SendN("c")))
		ch := newChecker()
		res, err := ch.Labelled(p, q, true)
		if err != nil {
			return "", false, err
		}
		if res.Related {
			return "pair unexpectedly bisimilar", false, nil
		}
		obs := maytest.TraceObservers([]names.Name{"a", "b", "c"}, 3, maytest.DefaultSuccess)
		v, err := maytest.Distinguish(nil, p, q, obs, maytest.DefaultSuccess, 0)
		if err != nil {
			return "", false, err
		}
		if v.Distinguisher != nil {
			return "a trace observer separated them", false, nil
		}
		v2, err := maytest.Distinguish(nil, q, p, obs, maytest.DefaultSuccess, 0)
		if err != nil {
			return "", false, err
		}
		if v2.Distinguisher != nil {
			return "reverse direction separated", false, nil
		}
		return fmt.Sprintf("≁ by bisimulation, indistinguishable by %d observers", v.Tried+v2.Tried), true, nil
	}}
}

// E1: the SOS conformance sample — rule coverage smoke over hand witnesses.
func e1() experiment {
	return experiment{"E1", "Tables 2+3 (SOS)", "all 14 rules derive the expected transitions", func() (string, bool, error) {
		sys := semantics.NewSystem(nil)
		p := syntax.Group(
			syntax.SendN("a", "b"),
			syntax.Recv("a", []names.Name{"x"}, syntax.SendN("x")),
			syntax.RecvN("c", "y"),
		)
		ts, err := sys.Steps(p)
		if err != nil {
			return "", false, err
		}
		outs, ins := 0, 0
		for _, t := range ts {
			if t.Act.IsOutput() {
				outs++
			}
			if t.Act.IsInput() {
				ins++
			}
		}
		return fmt.Sprintf("broadcast=%d outputs, %d residual inputs", outs, ins), outs == 1 && ins == 2, nil
	}}
}

// E2: Lemma 1 free-name monotonicity on random terms.
func e2() experiment {
	return experiment{"E2", "Lemma 1 / Corollary 1", "fn shrinks along τ, grows only by received/extruded names", func() (string, bool, error) {
		sys := semantics.NewSystem(nil)
		g := brand.New(11, brand.Default())
		checked := 0
		for i := 0; i < 200; i++ {
			p := g.Term()
			ts, err := sys.Steps(p)
			if err != nil {
				return "", false, err
			}
			fn := syntax.FreeNames(p)
			for _, t := range ts {
				allowed := fn.Clone().AddAll(t.Act.Names())
				if extra := syntax.FreeNames(t.Target).Minus(allowed); extra.Len() > 0 {
					return fmt.Sprintf("violation at %s", syntax.String(p)), false, nil
				}
				checked++
			}
		}
		return fmt.Sprintf("%d transitions conform", checked), true, nil
	}}
}

// E3: the counterexamples of Remarks 1–4.
func e3() experiment {
	return experiment{"E3", "Remarks 1-4", "all claimed (in)equivalences hold", func() (string, bool, error) {
		ch := newChecker()
		pass := 0
		for _, w := range papers.Witnesses() {
			l, err := ch.Labelled(w.P, w.Q, false)
			if err != nil {
				return "", false, err
			}
			b, err := ch.Barbed(w.P, w.Q, false)
			if err != nil {
				return "", false, err
			}
			s, err := ch.Step(w.P, w.Q, false)
			if err != nil {
				return "", false, err
			}
			o, err := ch.OneStep(w.P, w.Q, false)
			if err != nil {
				return "", false, err
			}
			c, err := ch.Congruence(w.P, w.Q, false)
			if err != nil {
				return "", false, err
			}
			if l.Related != w.Labelled || b.Related != w.Barbed || s.Related != w.Step || o != w.OneStep || c != w.Congruent {
				return fmt.Sprintf("witness %s deviates", w.Name), false, nil
			}
			pass++
		}
		return fmt.Sprintf("%d witnesses, 5 relations each", pass), true, nil
	}}
}

// E4: the structural laws of Lemmas 2/4/6.
func e4() experiment {
	return experiment{"E4", "Lemmas 2, 4, 6 (a-l)", "the 11 structural laws hold for ~b, ~φ and ~", func() (string, bool, error) {
		ch := newChecker()
		p := syntax.Send("a", []names.Name{"b"}, syntax.RecvN("c", "x"))
		q := syntax.TauP(syntax.SendN("b"))
		laws := [][2]syntax.Proc{
			{syntax.Group(p, syntax.PNil), p},
			{syntax.Group(p, q), syntax.Group(q, p)},
			{syntax.Choice(p, syntax.PNil), p},
			{syntax.Choice(p, q), syntax.Choice(q, p)},
			{syntax.Restrict(p, "z"), p},
			{syntax.Group(syntax.Restrict(syntax.SendN("x", "a"), "x"), q),
				syntax.Restrict(syntax.Group(syntax.SendN("x", "a"), q), "x")},
		}
		n := 0
		for _, lw := range laws {
			for _, rel := range []func(a, b syntax.Proc) (equiv.Result, error){
				func(a, b syntax.Proc) (equiv.Result, error) { return ch.Labelled(a, b, false) },
				func(a, b syntax.Proc) (equiv.Result, error) { return ch.Barbed(a, b, false) },
				func(a, b syntax.Proc) (equiv.Result, error) { return ch.Step(a, b, false) },
			} {
				r, err := rel(lw[0], lw[1])
				if err != nil {
					return "", false, err
				}
				if !r.Related {
					return fmt.Sprintf("law failed: %s vs %s", syntax.String(lw[0]), syntax.String(lw[1])), false, nil
				}
				n++
			}
		}
		return fmt.Sprintf("%d law×relation checks", n), true, nil
	}}
}

// E5: preservation by parallel composition (Lemmas 3/9).
func e5() experiment {
	return experiment{"E5", "Lemmas 3 and 9", "~ and ~b preserved by parallel contexts", func() (string, bool, error) {
		ch := newChecker()
		pa, pb := syntax.RecvN("a"), syntax.RecvN("b")
		ctxs := []syntax.Proc{
			syntax.SendN("c"),
			syntax.Recv("c", []names.Name{"z"}, syntax.SendN("z")),
			syntax.TauP(syntax.SendN("d")),
		}
		for _, r := range ctxs {
			res, err := ch.Labelled(syntax.Group(pa, r), syntax.Group(pb, r), false)
			if err != nil {
				return "", false, err
			}
			if !res.Related {
				return "parallel context broke ~", false, nil
			}
			res, err = ch.Barbed(syntax.Group(pa, r), syntax.Group(pb, r), false)
			if err != nil {
				return "", false, err
			}
			if !res.Related {
				return "parallel context broke ~b", false, nil
			}
		}
		return fmt.Sprintf("%d contexts preserve both", len(ctxs)), true, nil
	}}
}

// E7: Theorem 1 inclusion sampling.
func e7() experiment {
	return experiment{"E7", "Theorem 1", "~ implies ~b and ~φ on sampled pairs; chain ~c⊆~+⊆~", func() (string, bool, error) {
		cfg := brand.Default()
		cfg.MaxDepth = 3
		g := brand.New(12345, cfg)
		ch := newChecker()
		related := 0
		for i := 0; i < 40; i++ {
			p := g.Term()
			q := g.Mutate(p)
			l, err := ch.Labelled(p, q, false)
			if err != nil {
				return "", false, err
			}
			if !l.Related {
				continue
			}
			related++
			b, err := ch.Barbed(p, q, false)
			if err != nil {
				return "", false, err
			}
			s, err := ch.Step(p, q, false)
			if err != nil {
				return "", false, err
			}
			if !b.Related || !s.Related {
				return "inclusion violated", false, nil
			}
		}
		return fmt.Sprintf("%d related pairs conform", related), related > 0, nil
	}}
}

// E8: soundness of the axiom catalogue.
func e8() experiment {
	return experiment{"E8", "Theorem 6 (+Tables 6-8)", "every axiom instance is ~c-sound", func() (string, bool, error) {
		ch := newChecker()
		cfg := brand.Default()
		cfg.MaxDepth = 2
		cfg.Names = []names.Name{"a", "b"}
		g := brand.New(4242, cfg)
		n := 0
		for _, ax := range axioms.Catalogue() {
			for trial := 0; trial < 6; trial++ {
				m := axioms.Material{P: g.Term(), Q: g.Term(), R: g.Term(), A: "a", B: "b", C: "c", X: "x"}
				lhs, rhs, ok := ax.Inst(m)
				if !ok {
					continue
				}
				got, err := ch.Congruence(lhs, rhs, false)
				if err != nil {
					return "", false, err
				}
				if !got {
					return fmt.Sprintf("unsound: %s", ax.Name), false, nil
				}
				n++
			}
		}
		return fmt.Sprintf("%d instances over %d axioms", n, len(axioms.Catalogue())), true, nil
	}}
}

// E9: completeness — prover agreement with the semantic ~c.
func e9() experiment {
	return experiment{"E9", "Theorem 7", "A ⊢ p=q iff p ~c q on sampled finite pairs", func() (string, bool, error) {
		ch := newChecker()
		pr := axioms.NewProver(nil)
		cfg := brand.Default()
		cfg.MaxDepth = 3
		cfg.Names = []names.Name{"a", "b"}
		g := brand.New(20202, cfg)
		agree, pos := 0, 0
		for i := 0; i < 30; i++ {
			p := g.Term()
			q := g.Mutate(p)
			want, err := ch.Congruence(p, q, false)
			if err != nil {
				return "", false, err
			}
			got, err := pr.Decide(p, q)
			if err != nil {
				return "", false, err
			}
			if got != want {
				return fmt.Sprintf("disagreement on %s vs %s", syntax.String(p), syntax.String(q)), false, nil
			}
			agree++
			if want {
				pos++
			}
		}
		return fmt.Sprintf("%d pairs agree (%d provable)", agree, pos), pos > 0, nil
	}}
}

// E10: Example 1 — cycle detection.
func e10() experiment {
	return experiment{"E10", "Example 1", "signal on o reachable iff the graph has a cycle", func() (string, bool, error) {
		sys := semantics.NewSystem(papers.CycleEnvOnce())
		rows := []struct {
			name  string
			edges []papers.Edge
		}{
			{"ring2", papers.RingGraph(2)},
			{"ring3", papers.RingGraph(3)},
			{"chain3", papers.ChainGraph(3)},
			{"diamond", []papers.Edge{{From: "a", To: "b"}, {From: "a", To: "c"}, {From: "b", To: "d"}, {From: "c", To: "d"}}},
		}
		var out []string
		for _, r := range rows {
			want := papers.HasCycleOracle(r.edges)
			got, err := machine.CanReachBarb(sys, papers.CycleSystem(r.edges, "sig"), "sig", 120000)
			if err != nil {
				return "", false, err
			}
			if got != want {
				return fmt.Sprintf("%s: detector=%v oracle=%v", r.name, got, want), false, nil
			}
			out = append(out, fmt.Sprintf("%s=%v", r.name, got))
		}
		return strings.Join(out, " "), true, nil
	}}
}

// E11: Example 2 — transaction inconsistency.
func e11() experiment {
	return experiment{"E11", "Example 2", "errc reachable iff the history is inconsistent", func() (string, bool, error) {
		sys := semantics.NewSystem(papers.TxnEnvOnce())
		hs := map[string][]papers.Txn{
			"consistent": {
				{ID: "t1", Item: "x", Write: true, Part: "p1"},
				{ID: "t2", Item: "x", Write: false, Part: "p1"},
			},
			"ww-conflict": {
				{ID: "t1", Item: "x", Write: true, Part: "p1"},
				{ID: "t2", Item: "x", Write: true, Part: "p2"},
			},
			"cross-cycle": {
				{ID: "t1", Item: "x", Write: false, Part: "p1"},
				{ID: "t2", Item: "x", Write: true, Part: "p2"},
				{ID: "t2", Item: "y", Write: false, Part: "p2"},
				{ID: "t1", Item: "y", Write: true, Part: "p1"},
			},
		}
		var out []string
		for name, h := range hs {
			want := papers.InconsistentOracle(h)
			got, err := machine.CanReachBarb(sys, papers.TransactionSystem(h, "unif", "errc"), "errc", 200000)
			if err != nil {
				return "", false, err
			}
			if got != want {
				return fmt.Sprintf("%s: detector=%v oracle=%v", name, got, want), false, nil
			}
			out = append(out, fmt.Sprintf("%s=%v", name, got))
		}
		return strings.Join(out, " "), true, nil
	}}
}

// E12: Example 3 — PVM group primitives.
func e12() experiment {
	return experiment{"E12", "Example 3", "bcast reaches exactly current members; send is 1-1", func() (string, bool, error) {
		sys := semantics.NewSystem(pvm.Env())
		tasks := map[names.Name]*pvm.Task{
			"root":      {Instrs: []pvm.Instr{pvm.Send{To: "peer", Msg: "m"}}},
			"peer":      {Instrs: []pvm.Instr{pvm.Receive{Var: "x"}, pvm.Send{To: "out1", Msg: "x"}}},
			"bystander": {Instrs: []pvm.Instr{pvm.Receive{Var: "y"}, pvm.Send{To: "out2", Msg: "y"}}},
		}
		p, err := pvm.System(tasks)
		if err != nil {
			return "", false, err
		}
		direct, err := machine.CanReachBarb(sys, p, "out1", 120000)
		if err != nil {
			return "", false, err
		}
		leak, err := machine.CanReachBarb(sys, p, "out2", 120000)
		if err != nil {
			return "", false, err
		}
		return fmt.Sprintf("delivered=%v leaked=%v", direct, leak), direct && !leak, nil
	}}
}

// E13: expressiveness — the cost of one broadcast in π vs bπ.
func e13() experiment {
	return experiment{"E13", "§6 expressiveness", "1 bπ step vs n π messages to reach n receivers", func() (string, bool, error) {
		var rows []string
		okAll := true
		for _, n := range []int{2, 4, 8} {
			// bπ: one output, n listeners: one autonomous step delivers all.
			parts := []syntax.Proc{syntax.SendN("a", "v")}
			for i := 0; i < n; i++ {
				x := names.Name(fmt.Sprintf("x%d", i))
				parts = append(parts, syntax.Recv("a", []names.Name{x}, syntax.PNil))
			}
			bp := syntax.Group(parts...)
			sys := semantics.NewSystem(nil)
			res, err := machine.Run(sys, bp, machine.Options{MaxSteps: 100})
			if err != nil {
				return "", false, err
			}
			// π: the sender must emit n times; each delivery is one τ.
			var send pi.Proc = pi.Nil{}
			for i := 0; i < n; i++ {
				send = pi.Out{Ch: "a", Arg: "v", Cont: send}
			}
			var ppar pi.Proc = send
			for i := 0; i < n; i++ {
				x := names.Name(fmt.Sprintf("x%d", i))
				ppar = pi.Par{L: ppar, R: pi.In{Ch: "a", Param: x, Cont: pi.Nil{}}}
			}
			piSteps := pi.TauSteps(ppar, 4*n)
			rows = append(rows, fmt.Sprintf("n=%d: bπ=%d π=%d", n, res.Steps, piSteps))
			okAll = okAll && res.Steps == 1 && piSteps == n
		}
		return strings.Join(rows, "  "), okAll, nil
	}}
}

// E14: the π → bπ encoding.
func e14() experiment {
	return experiment{"E14", "§6 encoding π→bπ", "may-barbs preserved on sample terms", func() (string, bool, error) {
		sys := semantics.NewSystem(nil)
		src := pi.Par{
			L: pi.Out{Ch: "a", Arg: "b", Cont: pi.Nil{}},
			R: pi.In{Ch: "a", Param: "x", Cont: pi.Out{Ch: "x", Arg: "c", Cont: pi.Nil{}}},
		}
		enc, err := pi.Encode(src)
		if err != nil {
			return "", false, err
		}
		want, err := pi.WeakBarbs(src, 0)
		if err != nil {
			return "", false, err
		}
		checked := 0
		for _, c := range pi.Free(src).Sorted() {
			got, err := machine.CanReachBarb(sys, enc, c, 150000)
			if err != nil {
				return "", false, err
			}
			if got != want.Contains(c) {
				return fmt.Sprintf("barb %s differs", c), false, nil
			}
			checked++
		}
		return fmt.Sprintf("%d barbs agree", checked), true, nil
	}}
}

// E15: engine scaling (exploration size, cbs embedding sanity).
func e15() experiment {
	return experiment{"E15", "engine scaling", "graph sizes grow as expected; CBS embeds exactly", func() (string, bool, error) {
		sys := semantics.NewSystem(nil)
		var rows []string
		for _, n := range []int{2, 4, 6} {
			parts := make([]syntax.Proc, n)
			for i := range parts {
				parts[i] = syntax.Send(names.Name(fmt.Sprintf("c%d", i)), nil, syntax.PNil)
			}
			g, err := lts.Explore(sys, []syntax.Proc{syntax.Group(parts...)}, lts.Options{AutonomousOnly: true, MaxStates: 1 << 14})
			if err != nil {
				return "", false, err
			}
			if g.NumStates() != 1<<n {
				return fmt.Sprintf("n=%d: %d states, want %d", n, g.NumStates(), 1<<n), false, nil
			}
			rows = append(rows, fmt.Sprintf("n=%d:%d", n, g.NumStates()))
		}
		// CBS embedding spot check.
		cp := cbs.Par{L: cbs.Speak{Val: "v", Cont: cbs.Nil{}}, R: cbs.Hear{Param: "x", Cont: cbs.Speak{Val: "x", Cont: cbs.Nil{}}}}
		if len(cbs.Steps(cp)) != 1 {
			return "cbs baseline broken", false, nil
		}
		return strings.Join(rows, " ") + " states; cbs-embed ok", true, nil
	}}
}
