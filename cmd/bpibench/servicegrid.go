package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"bpi"
	brand "bpi/internal/rand"
	"bpi/internal/service"
	"bpi/internal/syntax"
)

// The service throughput grid: a real bpid core behind a real HTTP listener,
// swept over daemon workers × concurrent clients × batch size, every cell
// repeated and summarised. This is the figure BENCH_service.json publishes
// from CI, so the honest-numbers policy applies:
//
//   - every pair in every repeat is distinct (seeded generation keyed on the
//     full cell coordinates), so the verdict cache never flatters a cell —
//     the grid measures decision throughput, not LRU lookups;
//   - the median over repeats is the headline, with min/max alongside, and
//     the host CPU count is recorded so a cramped CI runner's numbers are
//     never mistaken for a workstation's.

type gridPointJSON struct {
	Workers int `json:"workers"`
	Clients int `json:"clients"`
	Batch   int `json:"batch"`
	// Pairs is the number of equivalence queries issued per repeat.
	Pairs   int `json:"pairs"`
	Repeats int `json:"repeats"`
	// PairsPerSec is the median throughput over the repeats.
	PairsPerSec    float64 `json:"pairs_per_sec"`
	PairsPerSecMin float64 `json:"pairs_per_sec_min"`
	PairsPerSecMax float64 `json:"pairs_per_sec_max"`
}

type gridSummaryJSON struct {
	Workers int `json:"workers"`
	// BestPairsPerSec is the best median cell at this worker count, with
	// the client/batch shape that achieved it.
	BestPairsPerSec float64 `json:"best_pairs_per_sec"`
	BestClients     int     `json:"best_clients"`
	BestBatch       int     `json:"best_batch"`
}

type serviceGridJSON struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	HostCPUs   int               `json:"host_cpus"`
	Repeats    int               `json:"repeats"`
	Grid       []gridPointJSON   `json:"grid"`
	Summary    []gridSummaryJSON `json:"summary"`
}

var (
	gridWorkerCounts = []int{1, 2, 4}
	gridClientCounts = []int{1, 4, 16}
	gridBatchSizes   = []int{1, 16, 64}
)

// gridPairs generates the cell's workload: n distinct random pairs, the
// seed folded over the full cell coordinates so no two cells (and no two
// repeats) ever share a pair.
func gridPairs(n int, seed int64) []bpi.EquivRequest {
	cfg := brand.Default()
	cfg.MaxDepth = 2
	g := brand.New(seed, cfg)
	out := make([]bpi.EquivRequest, n)
	for i := range out {
		p := g.Term()
		q := g.Mutate(p)
		out[i] = bpi.EquivRequest{
			P: syntax.String(p), Q: syntax.String(q),
			Rel: service.RelLabelled, TimeoutMs: 30000,
		}
	}
	return out
}

// runGridCell issues pairs through `clients` concurrent connections in
// batches of `batch`, over the real /v1/equiv/batch endpoint, and returns
// the wall-clock. Every pair must come back with a verdict (an error fails
// the bench — throughput over failures is not a number worth publishing).
func runGridCell(cl *bpi.Client, pairs []bpi.EquivRequest, clients, batch int) (time.Duration, error) {
	type chunk struct {
		lo, hi int
	}
	var chunks []chunk
	for lo := 0; lo < len(pairs); lo += batch {
		hi := lo + batch
		if hi > len(pairs) {
			hi = len(pairs)
		}
		chunks = append(chunks, chunk{lo, hi})
	}
	work := make(chan chunk, len(chunks))
	for _, c := range chunks {
		work <- c
	}
	close(work)
	errc := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				res, err := cl.Batch(context.Background(), bpi.BatchRequest{Pairs: pairs[c.lo:c.hi]})
				if err != nil {
					errc <- err
					return
				}
				if res.Trailer.Succeeded != c.hi-c.lo {
					errc <- fmt.Errorf("batch [%d,%d): %d/%d succeeded (%d failed, %d shed)",
						c.lo, c.hi, res.Trailer.Succeeded, c.hi-c.lo, res.Trailer.Failed, res.Trailer.Shed)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	return elapsed, nil
}

// runServiceGrid sweeps the grid and writes the JSON report. Returns a
// process exit code.
func runServiceGrid(outPath string, repeats int) int {
	if repeats <= 0 {
		repeats = 3
	}
	report := serviceGridJSON{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HostCPUs:   runtime.NumCPU(),
		Repeats:    repeats,
	}
	fmt.Printf("service throughput grid — workers %v × clients %v × batch %v, %d repeats (GOMAXPROCS=%d, host CPUs=%d)\n\n",
		gridWorkerCounts, gridClientCounts, gridBatchSizes, repeats, report.GOMAXPROCS, report.HostCPUs)
	best := map[int]gridSummaryJSON{}
	for wi, workers := range gridWorkerCounts {
		// One fresh daemon per worker count: the sweep must not inherit a
		// previous cell's interned store or verdict cache.
		svc := service.New(service.Config{Workers: workers, AdmissionQueue: 1 << 14})
		hs := httptest.NewServer(svc.Handler())
		cl := bpi.NewClient(hs.URL)
		for ci, clients := range gridClientCounts {
			for bi, batch := range gridBatchSizes {
				pairsN := clients * batch
				if pairsN < 64 {
					pairsN = 64
				}
				var rates []float64
				failed := false
				for rep := 0; rep < repeats; rep++ {
					seed := int64(1e9*wi+1e6*ci+1e3*bi)*int64(repeats+1) + int64(rep) + 7
					pairs := gridPairs(pairsN, seed)
					elapsed, err := runGridCell(cl, pairs, clients, batch)
					if err != nil {
						fmt.Fprintf(os.Stderr, "bpibench: grid w=%d c=%d b=%d rep=%d: %v\n",
							workers, clients, batch, rep, err)
						failed = true
						break
					}
					rates = append(rates, float64(pairsN)/elapsed.Seconds())
				}
				if failed {
					hs.Close()
					_ = svc.Shutdown(context.Background())
					return 1
				}
				sort.Float64s(rates)
				pt := gridPointJSON{
					Workers: workers, Clients: clients, Batch: batch,
					Pairs: pairsN, Repeats: repeats,
					PairsPerSec:    rates[len(rates)/2],
					PairsPerSecMin: rates[0],
					PairsPerSecMax: rates[len(rates)-1],
				}
				report.Grid = append(report.Grid, pt)
				fmt.Printf("grid workers=%d clients=%-3d batch=%-3d  %8.0f pairs/s (min %.0f, max %.0f over %d repeats of %d pairs)\n",
					workers, clients, batch, pt.PairsPerSec, pt.PairsPerSecMin, pt.PairsPerSecMax, repeats, pairsN)
				if b, ok := best[workers]; !ok || pt.PairsPerSec > b.BestPairsPerSec {
					best[workers] = gridSummaryJSON{Workers: workers,
						BestPairsPerSec: pt.PairsPerSec, BestClients: clients, BestBatch: batch}
				}
			}
		}
		hs.Close()
		if err := svc.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "bpibench: grid shutdown: %v\n", err)
			return 1
		}
	}
	for _, workers := range gridWorkerCounts {
		s := best[workers]
		report.Summary = append(report.Summary, s)
		fmt.Printf("summary workers=%d: best %.0f pairs/s at clients=%d batch=%d\n",
			s.Workers, s.BestPairsPerSec, s.BestClients, s.BestBatch)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		err = os.WriteFile(outPath, append(buf, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpibench: writing %s: %v\n", outPath, err)
		return 1
	}
	fmt.Printf("service grid written to %s\n", outPath)
	return 0
}
