// Command bpiledger inspects and audits the persistent Merkle verdict
// ledger written by bpid -ledger. It is the offline counterpart of the
// daemon's /v1/ledger endpoints: everything it reports is recomputed from
// the log bytes and the independent certificate verifier — no trust in the
// daemon that wrote the ledger is required.
//
// Usage:
//
//	bpiledger stats  [-f defs.bpi] <dir>
//	bpiledger verify [-f defs.bpi] <dir>
//	bpiledger proof  [-f defs.bpi] -key HASH <dir>
//	bpiledger export [-f defs.bpi] [-o out.jsonl] <dir>
//	bpiledger import [-f defs.bpi] [-i in.jsonl] [-quiet] <dir>
//
// verify replays the full log — framing checksums, Merkle roots, the seal
// hash chain, and every record's certificate — and exits 1 if anything was
// quarantined or the chain is broken. proof prints the compact inclusion
// proof of a record (by the hex key hash that bpid reports as ledger_key)
// and re-verifies it from the sealed root alone. export writes every
// trusted record as JSON lines; import appends records from such a file
// into another ledger, re-verifying each before it is written.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bpi/internal/ledger"
	"bpi/internal/parser"
	"bpi/internal/syntax"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	file := fs.String("f", "", "program file with definitions (for ledgers over defined constants)")
	key := fs.String("key", "", "hex key hash of the record (proof)")
	out := fs.String("o", "", "output file (export; default stdout)")
	in := fs.String("i", "", "input file (import; default stdin)")
	quiet := fs.Bool("quiet", false, "suppress progress and per-line rejection detail (import)")
	fs.Usage = usage
	_ = fs.Parse(flag.Args()[1:])
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	dir := fs.Arg(0)

	var env syntax.Env
	if *file != "" {
		src, err := os.ReadFile(*file)
		fail(err)
		prog, err := parser.ParseProgram(string(src))
		fail(err)
		env = prog.Env
	}
	// Timed sealing off: the CLI only seals explicitly (import → Close).
	cfg := ledger.Config{Env: env, MaxWait: -1}

	switch cmd {
	case "stats":
		runStats(dir, cfg)
	case "verify":
		runVerify(dir, cfg)
	case "proof":
		runProof(dir, cfg, *key)
	case "export":
		runExport(dir, cfg, *out)
	case "import":
		runImport(dir, cfg, *in, *quiet)
	default:
		usage()
		os.Exit(2)
	}
}

// open opens the ledger read-style (every record re-verified) and always
// closes it without appending, so inspection never mutates the log beyond
// the torn-tail truncation repair.
func open(dir string, cfg ledger.Config) *ledger.Ledger {
	l, err := ledger.Open(dir, cfg)
	fail(err)
	return l
}

func runStats(dir string, cfg ledger.Config) {
	l := open(dir, cfg)
	defer l.Close()
	st := l.Stats()
	fmt.Printf("records   %d trusted, %d rejected, %d awaiting seal\n", st.Records, st.Rejected, st.Pending)
	fmt.Printf("batches   %d sealed\n", st.Batches)
	fmt.Printf("chain     %s", st.ChainHead)
	if st.ChainBroken {
		fmt.Printf("  (BROKEN)")
	}
	fmt.Println()
	fmt.Printf("storage   %d bytes in %d segment(s)\n", st.Bytes, st.Segments)
	for _, n := range st.Notes {
		fmt.Printf("note      %s\n", n)
	}
}

// runVerify is the full-scan audit: Open already replays every trust layer;
// here the outcome decides the exit status and every quarantined record is
// itemised.
func runVerify(dir string, cfg ledger.Config) {
	start := time.Now()
	l := open(dir, cfg)
	defer l.Close()
	st := l.Stats()
	for _, note := range st.Notes {
		fmt.Fprintf(os.Stderr, "bpiledger: note: %s\n", note)
	}
	for _, rej := range l.Rejections() {
		fmt.Fprintf(os.Stderr, "bpiledger: REJECTED %s\n", rej)
	}
	fmt.Printf("%d records verified, %d rejected, %d batches, chain %.12s… (%s)\n",
		st.Records, st.Rejected, st.Batches, st.ChainHead, time.Since(start).Round(time.Millisecond))
	if st.Rejected > 0 || st.ChainBroken {
		if st.ChainBroken {
			fmt.Fprintln(os.Stderr, "bpiledger: seal hash chain is BROKEN")
		}
		os.Exit(1)
	}
}

func runProof(dir string, cfg ledger.Config, key string) {
	if key == "" {
		fail(fmt.Errorf("proof needs -key HASH (the ledger_key bpid reports)"))
	}
	l := open(dir, cfg)
	defer l.Close()
	p, err := l.Proof(key)
	fail(err)
	// Independent re-check before printing: a proof this command emits has
	// been folded back to its sealed root.
	fail(ledger.VerifyProof(p))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fail(enc.Encode(p))
	fmt.Fprintf(os.Stderr, "bpiledger: proof verified: leaf %d of %d, batch %d, root %.12s…\n",
		p.Leaf, p.Count, p.Batch, p.Root)
}

func runExport(dir string, cfg ledger.Config, out string) {
	l := open(dir, cfg)
	defer l.Close()
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		fail(err)
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	n, err := l.Export(bw)
	fail(err)
	fail(bw.Flush())
	fmt.Fprintf(os.Stderr, "bpiledger: exported %d records\n", n)
}

// runImport appends records from a JSONL export into dir via
// ledger.Import: each record is re-verified (certificate replay included)
// before it is written — import is a trust boundary, not a byte copy — and
// sequence numbers are reassigned by the destination ledger. By default a
// progress line keeps long imports honest on stderr; -quiet leaves only
// the exit status.
func runImport(dir string, cfg ledger.Config, in string, quiet bool) {
	r := os.Stdin
	if in != "" {
		f, err := os.Open(in)
		fail(err)
		defer f.Close()
		r = f
	}
	l := open(dir, cfg)
	opts := ledger.ImportOptions{}
	if !quiet {
		opts.ProgressEvery = 1000
		opts.Progress = func(st ledger.ImportStats) {
			fmt.Fprintf(os.Stderr, "bpiledger: … %d lines: %d imported, %d rejected\n",
				st.Lines, st.Imported, st.Rejected)
		}
		opts.Reject = func(line int, err error) {
			fmt.Fprintf(os.Stderr, "bpiledger: line %d REJECTED: %v\n", line, err)
		}
	}
	st, err := l.Import(r, opts)
	fail(err)
	fail(l.Close()) // seals the imported tail batch
	if !quiet {
		fmt.Fprintf(os.Stderr, "bpiledger: imported %d records, rejected %d\n", st.Imported, st.Rejected)
	}
	if st.Rejected > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bpiledger — offline audit of the bpid verdict ledger

  bpiledger stats  [-f defs.bpi] <dir>                 summary + recovery notes
  bpiledger verify [-f defs.bpi] <dir>                 full-scan replay; exit 1 on any rejection
  bpiledger proof  [-f defs.bpi] -key HASH <dir>       print + re-verify one inclusion proof
  bpiledger export [-f defs.bpi] [-o out.jsonl] <dir>  trusted records as JSON lines
  bpiledger import [-f defs.bpi] [-i in.jsonl] [-quiet] <dir>
                                                       append records, re-verifying each

Everything is recomputed from the log bytes: framing checksums, Merkle
roots, the seal hash chain, and every record's certificate replayed
against the independent verifier. Exits 1 on verification failures,
2 on usage errors.

  -f file  program file with definitions, for ledgers whose terms mention
           defined constants
`)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpiledger:", err)
		os.Exit(1)
	}
}
