// Command bpi is the front-end to the bπ-calculus library: it parses terms
// in the concrete syntax and shows their semantics.
//
// Usage:
//
//	bpi steps    [-f file] [term]    print the symbolic transitions
//	bpi discards [-f file] term chan report the discard relation
//	bpi explore  [-f file] [-n max] [term]
//	                                 build and summarise the transition graph
//	bpi run      [-f file] [-n max] [-seed s] [-trace] [term]
//	                                 execute by broadcast scheduling
//	bpi fmt      [-f file] [term]    parse and pretty-print
//	bpi protocols [-list] [-run name] [-workers n] [-cert out.json]
//	                                 list/run the broadcast-algorithm
//	                                 scenario library (internal/protocols)
//
// Terms come from the command line or from a program file (-f) holding
// "let" definitions and a main term.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bpi/internal/lts"
	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "steps":
		err = cmdSteps(args)
	case "discards":
		err = cmdDiscards(args)
	case "explore":
		err = cmdExplore(args)
	case "run":
		err = cmdRun(args)
	case "fmt":
		err = cmdFmt(args)
	case "protocols":
		err = cmdProtocols(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "bpi: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bpi — the broadcast π-calculus toolkit

  bpi steps    [-f file] [term]                transitions of a term
  bpi discards [-f file] term chan             discard relation
  bpi explore  [-f file] [-n max] [term]       reachable transition graph
  bpi run      [-f file] [-n max] [-seed s] [-trace] [term]
  bpi fmt      [-f file] [term]                parse and pretty-print
  bpi protocols [-list] [-run name] [-workers n] [-cert out.json] [-terms]
                                               broadcast-algorithm scenario library
`)
}

// load parses the term and environment from flags/arguments.
func load(fs *flag.FlagSet, file string, args []string) (syntax.Proc, syntax.Env, error) {
	var env syntax.Env
	var main syntax.Proc
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, err
		}
		prog, err := parser.ParseProgram(string(src))
		if err != nil {
			return nil, nil, err
		}
		env, main = prog.Env, prog.Main
	}
	if len(args) > 0 {
		t, err := parser.Parse(strings.Join(args, " "))
		if err != nil {
			return nil, nil, err
		}
		main = t
	}
	if main == nil {
		return nil, nil, fmt.Errorf("no term given (argument or -f file with a main term)")
	}
	return main, env, nil
}

func cmdSteps(args []string) error {
	fs := flag.NewFlagSet("steps", flag.ExitOnError)
	file := fs.String("f", "", "program file with definitions")
	fs.Parse(args)
	p, env, err := load(fs, *file, fs.Args())
	if err != nil {
		return err
	}
	sys := semantics.NewSystem(env)
	ts, err := sys.Steps(p)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", syntax.String(p))
	if len(ts) == 0 {
		fmt.Println("  (no transitions)")
	}
	for _, t := range ts {
		fmt.Printf("  %s\n", t)
	}
	return nil
}

func cmdDiscards(args []string) error {
	fs := flag.NewFlagSet("discards", flag.ExitOnError)
	file := fs.String("f", "", "program file with definitions")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) < 2 {
		return fmt.Errorf("usage: bpi discards [-f file] term chan")
	}
	ch := names.Name(rest[len(rest)-1])
	p, env, err := load(fs, *file, rest[:len(rest)-1])
	if err != nil {
		return err
	}
	sys := semantics.NewSystem(env)
	d, err := sys.Discards(p, ch)
	if err != nil {
		return err
	}
	if d {
		fmt.Printf("%s discards %s\n", syntax.String(p), ch)
	} else {
		fmt.Printf("%s is listening on %s\n", syntax.String(p), ch)
	}
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	file := fs.String("f", "", "program file with definitions")
	max := fs.Int("n", 4096, "state budget")
	workers := fs.Int("workers", 1, "parallel exploration workers")
	auto := fs.Bool("auto", false, "autonomous moves only (no input grounding)")
	dot := fs.String("dot", "", "write the graph in Graphviz DOT format to this file")
	fs.Parse(args)
	p, env, err := load(fs, *file, fs.Args())
	if err != nil {
		return err
	}
	if issues := syntax.CheckSorts(p, env); len(issues) > 0 {
		for _, is := range issues {
			fmt.Fprintf(os.Stderr, "warning: %s (a mismatched listener blocks broadcasts)\n", is)
		}
	}
	g, err := lts.Explore(semantics.NewSystem(env), []syntax.Proc{p}, lts.Options{
		MaxStates: *max, Workers: *workers, AutonomousOnly: *auto,
	})
	if err != nil {
		return err
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteDOT(f, 0); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dot)
	}
	fmt.Println(g)
	for i, st := range g.States {
		if i >= 20 {
			fmt.Printf("  … %d more states\n", len(g.States)-20)
			break
		}
		fmt.Printf("  s%d: %s\n", i, syntax.String(st.Proc))
		for _, e := range g.Edges[i] {
			fmt.Printf("      --%s--> s%d\n", e.Lab, e.Dst)
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	file := fs.String("f", "", "program file with definitions")
	max := fs.Int("n", 200, "step budget")
	seed := fs.Int64("seed", 1, "scheduler seed")
	trace := fs.Bool("trace", false, "print every fired transition")
	stop := fs.String("stop", "", "stop when this channel fires")
	fs.Parse(args)
	p, env, err := load(fs, *file, fs.Args())
	if err != nil {
		return err
	}
	opt := machine.Options{
		MaxSteps:  *max,
		Scheduler: machine.NewRandomScheduler(*seed),
		KeepTrace: *trace,
	}
	if *stop != "" {
		opt.StopOnBarb = []names.Name{names.Name(*stop)}
	}
	res, err := machine.Run(semantics.NewSystem(env), p, opt)
	if err != nil {
		return err
	}
	for _, ev := range res.Trace {
		fmt.Printf("  %s\n", ev)
	}
	switch {
	case res.Stopped:
		fmt.Printf("stopped after %d steps at %s\n", res.Steps, res.StopEvent)
	case res.Quiescent:
		fmt.Printf("quiescent after %d steps\n", res.Steps)
	default:
		fmt.Printf("step budget reached (%d)\n", res.Steps)
	}
	fmt.Printf("final: %s\n", syntax.String(res.Final))
	return nil
}

func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	file := fs.String("f", "", "program file with definitions")
	fs.Parse(args)
	p, env, err := load(fs, *file, fs.Args())
	if err != nil {
		return err
	}
	for _, id := range env.Idents() {
		d, _ := env.Lookup(id)
		params := make([]string, len(d.Params))
		for i, x := range d.Params {
			params[i] = string(x)
		}
		fmt.Printf("let %s(%s) = %s\n", id, strings.Join(params, ","), syntax.String(d.Body))
	}
	fmt.Println(syntax.String(p))
	return nil
}
