package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"bpi/internal/protocols"
	"bpi/internal/syntax"
)

// cmdProtocols lists and runs the broadcast-algorithm scenario library of
// internal/protocols. Without -run it prints the catalogue; with -run it
// decides the named scenario's conformance check, prints the verdict
// against the scenario's expectation, optionally writes the certificate
// (verify it with `bpicert verify`), and fails when the verdict deviates.
func cmdProtocols(args []string) error {
	fs := flag.NewFlagSet("protocols", flag.ExitOnError)
	list := fs.Bool("list", false, "list the scenario catalogue and exit")
	run := fs.String("run", "", "decide the named scenario (see -list)")
	workers := fs.Int("workers", 1, "pair-engine workers (1 = sequential)")
	certOut := fs.String("cert", "", "write the verdict's certificate JSON to this file")
	terms := fs.Bool("terms", false, "with -run, print the implementation and spec terms")
	fs.Parse(args)

	if *run == "" || *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "NAME\tALGO\tRELATION\tFAULT\tEXPECT\tSTATES")
		for _, s := range protocols.Catalogue() {
			rel := string(s.Rel)
			if s.Weak {
				rel = "weak " + rel
			}
			expect := "equivalent"
			if !s.WantEquiv {
				expect = "distinguished"
			}
			states := "-"
			if s.States > 0 {
				states = fmt.Sprint(s.States)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
				s.Name, s.Algo, rel, s.Fault, expect, states)
		}
		return w.Flush()
	}

	s, ok := protocols.ByName(*run)
	if !ok {
		return fmt.Errorf("unknown scenario %q (bpi protocols -list)", *run)
	}
	if *terms {
		fmt.Printf("impl: %s\nspec: %s\n", syntax.Print(s.Impl), syntax.Print(s.Spec))
	}
	r, err := protocols.Decide(protocols.NewChecker(*workers), s)
	if err != nil {
		return err
	}
	rel := string(s.Rel)
	if s.Weak {
		rel = "weak " + rel
	}
	verdict := "equivalent"
	if !r.Related {
		verdict = "distinguished"
	}
	fmt.Printf("%s: impl and spec are %s (%s, %d pairs explored)\n", s.Name, verdict, rel, r.Pairs)
	if !r.Related && r.Reason != "" {
		fmt.Printf("  reason: %s\n", r.Reason)
	}
	if *certOut != "" {
		if r.Cert == nil {
			return fmt.Errorf("no certificate produced")
		}
		raw, err := r.Cert.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*certOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("  certificate: %s (check with: bpicert verify %s)\n", *certOut, *certOut)
	}
	if r.Related != s.WantEquiv {
		return fmt.Errorf("verdict %s deviates from the scenario's expectation", verdict)
	}
	return nil
}
