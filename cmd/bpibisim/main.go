// Command bpibisim decides the behavioural equivalences of the paper
// between two terms.
//
// Usage:
//
//	bpibisim [-f file] [-rel labelled|barbed|step|onestep|congruence|all]
//	         [-weak] [-compiled] [-server URL] [-trace out.json] [-counters]
//	         [-cert out.json] "term1" "term2"
//
// With -server the query is delegated to a running bpid daemon, whose
// shared store and verdict cache amortise repeated queries across
// processes; verdicts are identical to the local checker's.
//
// With -trace the local engine's span timeline is written as Chrome
// trace-event JSON (open in chrome://tracing or ui.perfetto.dev); with
// -counters the engine counters are printed to stderr after the
// verdicts. Both are local-only: a daemon-served query's evidence lives
// on the daemon (/trace/{id}, /metrics, /debug/pprof).
//
// With -cert (single -rel only) the verdict's replayable certificate is
// written as JSON — works both locally and against a daemon — and can be
// checked independently with `bpicert verify`.
//
// With -compiled the local checker's store serves transitions from
// compiled transition programs (internal/tprog) instead of the recursive
// interpreter. Verdicts, pair counts and certificates are bit-identical;
// only the time to compute them changes. Local-only: the daemon opts in at
// startup with `bpid -compiled`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	bpi "bpi"
	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/obs"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

func main() {
	file := flag.String("f", "", "program file with definitions")
	rel := flag.String("rel", "all", "relation: labelled, barbed, step, onestep, congruence, all")
	weak := flag.Bool("weak", false, "use the weak relation")
	server := flag.String("server", "", "delegate to a running bpid daemon at this base URL")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query deadline (with -server)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the local engine run")
	counters := flag.Bool("counters", false, "print engine counters to stderr after the verdicts")
	certOut := flag.String("cert", "", "write the verdict's replayable certificate as JSON (single -rel only; check with bpicert verify)")
	compiled := flag.Bool("compiled", false, "serve transitions from compiled transition programs (local only; verdicts are bit-identical)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bpibisim [-f file] [-rel R] [-weak] [-server URL] term1 term2")
		os.Exit(2)
	}
	var env syntax.Env
	if *file != "" {
		src, err := os.ReadFile(*file)
		fail(err)
		prog, err := parser.ParseProgram(string(src))
		fail(err)
		env = prog.Env
	}
	p, err := parser.Parse(flag.Arg(0))
	fail(err)
	q, err := parser.Parse(flag.Arg(1))
	fail(err)

	show := func(name string, related bool, detail string) {
		verdict := "NOT related"
		if related {
			verdict = "related"
		}
		fmt.Printf("%-12s %s", name, verdict)
		if detail != "" {
			fmt.Printf("   (%s)", detail)
		}
		fmt.Println()
	}
	mode := "strong"
	if *weak {
		mode = "weak"
	}
	fmt.Printf("p = %s\nq = %s\nmode = %s\n", syntax.String(p), syntax.String(q), mode)

	want := map[string]bool{}
	if *rel == "all" {
		for _, r := range []string{"labelled", "barbed", "step", "onestep", "congruence"} {
			want[r] = true
		}
	} else {
		want[*rel] = true
	}
	if *certOut != "" && len(want) != 1 {
		fail(fmt.Errorf("-cert needs a single relation (use -rel labelled|barbed|step|onestep|congruence)"))
	}
	writeCert := func(crt *cert.Certificate) {
		if *certOut == "" {
			return
		}
		if crt == nil {
			fail(fmt.Errorf("no certificate was recorded"))
		}
		data, err := crt.Marshal()
		fail(err)
		fail(os.WriteFile(*certOut, data, 0o644))
		fmt.Fprintf(os.Stderr, "certificate: %d bytes written to %s\n", len(data), *certOut)
	}
	if *server != "" {
		if *file != "" {
			fail(fmt.Errorf("-f and -server are exclusive: the daemon fixes its definitions at startup"))
		}
		if *traceOut != "" || *counters {
			fail(fmt.Errorf("-trace/-counters are local-only; a daemon-served run's evidence is on the daemon (/trace/{id}, /metrics)"))
		}
		if *compiled {
			fail(fmt.Errorf("-compiled is local-only; start the daemon with `bpid -compiled` instead"))
		}
		cl := bpi.NewClient(*server)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		for _, r := range []string{"labelled", "barbed", "step", "onestep", "congruence"} {
			if !want[r] {
				continue
			}
			resp, err := cl.Equiv(ctx, bpi.EquivRequest{
				P: flag.Arg(0), Q: flag.Arg(1), Rel: r, Weak: *weak,
				TimeoutMs: int(timeout.Milliseconds()), Cert: *certOut != "",
			})
			fail(err)
			detail := resp.Reason
			if resp.Cached {
				detail = "cached daemon verdict"
			}
			show(r, resp.Related, detail)
			writeCert(resp.Certificate)
		}
		return
	}
	ch := equiv.NewChecker(semantics.NewSystem(env))
	ch.Certify = *certOut != ""
	if *compiled {
		ch.Store().EnableCompiled()
	}
	var tr *obs.Tracer
	if *traceOut != "" || *counters {
		tr = obs.New()
		ch.Obs = tr
		ch.Store().SetObs(tr)
	}
	if want["labelled"] {
		r, err := ch.Labelled(p, q, *weak)
		fail(err)
		show("labelled", r.Related, r.Reason)
		writeCert(r.Cert)
	}
	if want["barbed"] {
		r, err := ch.Barbed(p, q, *weak)
		fail(err)
		show("barbed", r.Related, r.Reason)
		writeCert(r.Cert)
	}
	if want["step"] {
		r, err := ch.Step(p, q, *weak)
		fail(err)
		show("step", r.Related, r.Reason)
		writeCert(r.Cert)
	}
	if want["onestep"] {
		if ch.Certify {
			crt, ok, err := ch.OneStepCert(p, q, *weak)
			fail(err)
			show("one-step", ok, "")
			writeCert(crt)
		} else {
			ok, err := ch.OneStep(p, q, *weak)
			fail(err)
			show("one-step", ok, "")
		}
	}
	if want["congruence"] {
		if ch.Certify {
			crt, ok, err := ch.CongruenceCert(p, q, *weak)
			fail(err)
			show("congruence", ok, "closure under all fusions of the free names")
			writeCert(crt)
		} else {
			ok, err := ch.Congruence(p, q, *weak)
			fail(err)
			show("congruence", ok, "closure under all fusions of the free names")
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		fail(tr.WriteChromeTrace(f))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", len(tr.Events()), *traceOut)
	}
	if *counters {
		fmt.Fprint(os.Stderr, obs.FormatCounters(tr.Counters()))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpibisim:", err)
		os.Exit(1)
	}
}
