// Command bpibisim decides the behavioural equivalences of the paper
// between two terms.
//
// Usage:
//
//	bpibisim [-f file] [-rel labelled|barbed|step|onestep|congruence|all]
//	         [-weak] "term1" "term2"
package main

import (
	"flag"
	"fmt"
	"os"

	"bpi/internal/equiv"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

func main() {
	file := flag.String("f", "", "program file with definitions")
	rel := flag.String("rel", "all", "relation: labelled, barbed, step, onestep, congruence, all")
	weak := flag.Bool("weak", false, "use the weak relation")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bpibisim [-f file] [-rel R] [-weak] term1 term2")
		os.Exit(2)
	}
	var env syntax.Env
	if *file != "" {
		src, err := os.ReadFile(*file)
		fail(err)
		prog, err := parser.ParseProgram(string(src))
		fail(err)
		env = prog.Env
	}
	p, err := parser.Parse(flag.Arg(0))
	fail(err)
	q, err := parser.Parse(flag.Arg(1))
	fail(err)

	ch := equiv.NewChecker(semantics.NewSystem(env))
	show := func(name string, related bool, detail string) {
		verdict := "NOT related"
		if related {
			verdict = "related"
		}
		fmt.Printf("%-12s %s", name, verdict)
		if detail != "" {
			fmt.Printf("   (%s)", detail)
		}
		fmt.Println()
	}
	mode := "strong"
	if *weak {
		mode = "weak"
	}
	fmt.Printf("p = %s\nq = %s\nmode = %s\n", syntax.String(p), syntax.String(q), mode)

	want := map[string]bool{}
	if *rel == "all" {
		for _, r := range []string{"labelled", "barbed", "step", "onestep", "congruence"} {
			want[r] = true
		}
	} else {
		want[*rel] = true
	}
	if want["labelled"] {
		r, err := ch.Labelled(p, q, *weak)
		fail(err)
		show("labelled", r.Related, r.Reason)
	}
	if want["barbed"] {
		r, err := ch.Barbed(p, q, *weak)
		fail(err)
		show("barbed", r.Related, r.Reason)
	}
	if want["step"] {
		r, err := ch.Step(p, q, *weak)
		fail(err)
		show("step", r.Related, r.Reason)
	}
	if want["onestep"] {
		ok, err := ch.OneStep(p, q, *weak)
		fail(err)
		show("one-step", ok, "")
	}
	if want["congruence"] {
		ok, err := ch.Congruence(p, q, *weak)
		fail(err)
		show("congruence", ok, "closure under all fusions of the free names")
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpibisim:", err)
		os.Exit(1)
	}
}
