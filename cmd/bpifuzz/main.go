// Command bpifuzz is the differential & metamorphic fuzzer: it hammers the
// cross-layer law registry of internal/oracle with seeded random term
// pairs, shrinks every violation to a minimal counterexample, and exits
// non-zero if any law failed.
//
//	bpifuzz -budget 20000 -seed 1
//	bpifuzz -laws axioms/decide-agree -seed 58 -budget 1   # replay one case
//	bpifuzz -list
//
// The registry spans the paper's theorems, the §5 prover, the engines (the
// bpid daemon included), verdict certificates, and the persistent Merkle
// verdict ledger (ledger/roundtrip: decide → persist → reopen must preserve
// verdict, certificate and inclusion proof).
//
// Every violation prints the exact flags that replay it alone; with -out,
// shrunk counterexamples are also persisted as regression .case files
// (see testdata/fuzz/README.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"bpi/internal/oracle"
	"bpi/internal/service"
)

func main() {
	var (
		budget   = flag.Int("budget", 20000, "total iterations across all selected laws")
		seed     = flag.Int64("seed", 1, "run seed; iteration i reproduces alone with -seed <seed+i> -budget 1")
		lawsCSV  = flag.String("laws", "", "comma-separated law names (default: all; see -list)")
		outDir   = flag.String("out", "", "directory for shrunk counterexample .case files")
		daemon   = flag.Bool("daemon", true, "boot an in-process bpid so engines/agree covers the service layer")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel-checker workers")
		maxViol  = flag.Int("max-violations", 10, "stop after this many violations")
		list     = flag.Bool("list", false, "list the law registry and exit")
		progress = flag.Bool("v", false, "print progress every 1000 iterations")
	)
	flag.Parse()

	if *list {
		for _, l := range oracle.Registry() {
			fmt.Printf("%-26s %s\n", l.Name, l.Doc)
		}
		return
	}

	var lawNames []string
	if *lawsCSV != "" {
		for _, n := range strings.Split(*lawsCSV, ",") {
			if n = strings.TrimSpace(n); n != "" {
				lawNames = append(lawNames, n)
			}
		}
	}
	laws, err := oracle.LawByName(lawNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	env := oracle.NewEnv(*workers)
	if *daemon {
		d, err := oracle.StartDaemon(service.Config{Workers: *workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpifuzz: daemon: %v\n", err)
			os.Exit(2)
		}
		defer d.Close()
		env.Daemon = d
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := oracle.Config{
		Seed:          *seed,
		Budget:        *budget,
		Laws:          laws,
		OutDir:        *outDir,
		MaxViolations: *maxViol,
	}
	start := time.Now()
	if *progress {
		cfg.Progress = func(done, total int, v *oracle.Violation) {
			if v != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] VIOLATION %s\n", done, total, v.Law)
			} else if done%1000 == 0 {
				fmt.Fprintf(os.Stderr, "[%d/%d] %.1fs\n", done, total, time.Since(start).Seconds())
			}
		}
	}

	rep, err := oracle.Run(ctx, env, cfg)
	if err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "bpifuzz: %v\n", err)
		os.Exit(2)
	}

	elapsed := time.Since(start)
	fmt.Printf("bpifuzz: seed=%d ran %d/%d iterations in %.1fs (%.0f/s)\n",
		rep.Seed, rep.Ran, *budget, elapsed.Seconds(),
		float64(rep.Ran)/elapsed.Seconds())
	var names []string
	for n := range rep.PerLaw {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-26s %6d iterations, %d engine errors\n", n, rep.PerLaw[n], rep.Errors[n])
	}
	if ctx.Err() != nil {
		fmt.Println("bpifuzz: interrupted")
	}

	if len(rep.Violations) > 0 {
		fmt.Printf("\n%d LAW VIOLATION(S):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("\n%s\n  original: p = %s\n            q = %s\n  shrink: %d predicate evaluations\n",
				v, v.OrigP, v.OrigQ, v.ShrinkOps)
		}
		if *outDir != "" {
			fmt.Printf("\ncounterexamples persisted under %s\n", *outDir)
		}
		os.Exit(1)
	}
	fmt.Println("all laws held")
}
