// Command bpiaxiom exercises the Section 5 axiomatisation: it computes head
// normal forms, applies the expansion law, and decides A ⊢ p = q for finite
// processes.
//
// Usage:
//
//	bpiaxiom [-server URL] hnf "term"     head normal form on fn(term)
//	bpiaxiom [-server URL] expand "p" "q" the expansion of p ‖ q (Table 8)
//	bpiaxiom [-server URL] decide "p" "q" A ⊢ p = q  (⇔ p ~c q, Theorems 6/7)
//	bpiaxiom list                         the axiom catalogue
//
// With -server, decide is delegated to a running bpid daemon (hnf, expand
// and list always run locally).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	bpi "bpi"
	"bpi/internal/axioms"
	"bpi/internal/obs"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

var (
	server   = flag.String("server", "", "delegate decide to a running bpid daemon at this base URL")
	timeout  = flag.Duration("timeout", 30*time.Second, "per-query deadline (with -server)")
	traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file of the local decide run")
	counters = flag.Bool("counters", false, "print prover counters to stderr after decide")
	certOut  = flag.String("cert", "", "write decide's replayable proof object as JSON (local only; check with bpicert verify)")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	// Keep the historical subcommand interface: flag.Args() is the
	// subcommand plus its operands.
	os.Args = append(os.Args[:1], flag.Args()...)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "hnf":
		need(3)
		p := parse(os.Args[2])
		h, err := axioms.ComputeHNF(semantics.NewSystem(nil), p, syntax.FreeNames(p))
		fail(err)
		fmt.Printf("hnf of %s on V=%v:\n", syntax.String(p), h.V)
		for i, w := range h.Worlds {
			if len(h.ByWorld[i]) == 0 {
				continue
			}
			fmt.Printf("  world %s:\n", w)
			for _, s := range h.ByWorld[i] {
				fmt.Printf("    %s\n", s)
			}
		}
		fmt.Printf("as a term: %s\n", syntax.String(h.ToProc()))
	case "expand":
		need(4)
		p, q := parse(os.Args[2]), parse(os.Args[3])
		e, ok := axioms.Expand(p, q)
		if !ok {
			fail(fmt.Errorf("operands must be sums of prefixes (normalise first)"))
		}
		fmt.Println(syntax.String(e))
	case "decide":
		need(4)
		args := os.Args[2:]
		trace := false
		if args[0] == "-v" {
			trace = true
			args = args[1:]
			if len(args) < 2 {
				usage()
				os.Exit(2)
			}
		}
		p, q := parse(args[0]), parse(args[1])
		if *server != "" {
			if *traceOut != "" || *counters || *certOut != "" {
				fail(fmt.Errorf("-trace/-counters/-cert are local-only; a daemon-served run's evidence is on the daemon (/trace/{id}, /metrics)"))
			}
			decideRemote(p, q, trace)
			return
		}
		pr := axioms.NewProver(nil)
		pr.Tracing = trace
		pr.Certify = *certOut != ""
		var tr *obs.Tracer
		if *traceOut != "" || *counters {
			tr = obs.New()
			pr.Obs = tr
		}
		ok, err := pr.Decide(p, q)
		fail(err)
		if *certOut != "" {
			crt := pr.Certificate()
			if crt == nil {
				fail(fmt.Errorf("no proof object was recorded"))
			}
			data, err := crt.Marshal()
			fail(err)
			fail(os.WriteFile(*certOut, data, 0o644))
			fmt.Fprintf(os.Stderr, "certificate: %d bytes written to %s\n", len(data), *certOut)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			fail(err)
			fail(tr.WriteChromeTrace(f))
			fail(f.Close())
			fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", len(tr.Events()), *traceOut)
		}
		if *counters {
			fmt.Fprint(os.Stderr, obs.FormatCounters(tr.Counters()))
		}
		for _, line := range pr.TraceLines() {
			fmt.Println(" ", line)
		}
		if ok {
			fmt.Printf("A ⊢ %s = %s\n", syntax.String(p), syntax.String(q))
		} else {
			fmt.Printf("not provable (hence not strongly congruent):\n  %s ≠ %s\n",
				syntax.String(p), syntax.String(q))
		}
	case "list":
		for _, ax := range axioms.Catalogue() {
			fmt.Printf("  (%s) %s\n", ax.Table, ax.Name)
		}
	default:
		usage()
		os.Exit(2)
	}
}

// decideRemote delegates A ⊢ p = q to a running bpid daemon.
func decideRemote(p, q syntax.Proc, trace bool) {
	cl := bpi.NewClient(*server)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := cl.Prove(ctx, bpi.ProveRequest{
		P: syntax.String(p), Q: syntax.String(q), Trace: trace,
		TimeoutMs: int(timeout.Milliseconds()),
	})
	fail(err)
	for _, line := range resp.Trace {
		fmt.Println(" ", line)
	}
	if resp.Proved {
		fmt.Printf("A ⊢ %s = %s\n", syntax.String(p), syntax.String(q))
	} else {
		fmt.Printf("not provable (hence not strongly congruent):\n  %s ≠ %s\n",
			syntax.String(p), syntax.String(q))
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bpiaxiom — the Section 5 axiomatisation

  bpiaxiom hnf "term"        head normal form (Definition 17)
  bpiaxiom expand "p" "q"    expansion of p ‖ q (Table 8)
  bpiaxiom decide [-v] "p" "q"   A ⊢ p = q (Theorems 6/7; -v traces the derivation)
  bpiaxiom list              the axiom catalogue

  -server URL     delegate decide to a running bpid daemon
  -timeout D      per-query deadline with -server (default 30s)
  -trace out.json write a Chrome trace-event file of a local decide
  -counters       print prover counters to stderr after a local decide
  -cert out.json  write decide's replayable proof object (bpicert verify)
`)
}

// need requires at least n entries in os.Args (program name included).
func need(n int) {
	if len(os.Args) < n {
		usage()
		os.Exit(2)
	}
}

func parse(src string) syntax.Proc {
	p, err := parser.Parse(src)
	fail(err)
	if !syntax.IsFinite(p) {
		fail(fmt.Errorf("the axiomatisation covers finite processes only"))
	}
	return p
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpiaxiom:", err)
		os.Exit(1)
	}
}
