// Command bpid is the resident bπ equivalence-checking daemon: it serves
// parse/step/explore, equivalence, prover and machine-run queries over
// HTTP/JSON from ONE shared term store, so concurrent and repeated queries
// reuse each other's derivations.
//
// Usage:
//
//	bpid [-addr :8317] [-f defs.bpi] [-workers N] [-engine-workers N]
//	     [-queue N] [-cache N] [-max-pairs N] [-max-closure N]
//	     [-timeout D] [-max-timeout D] [-compiled]
//	     [-ledger DIR] [-merkle-batch N] [-merkle-wait-ms MS]
//	     [-peers URL,URL,…] [-self URL] [-batch-max N]
//	     [-admission-queue N] [-peer-timeout D]
//
// With -peers and -self, bpid joins a static cluster: every equivalence
// pair is owned by exactly one node under rendezvous hashing of its
// canonical pair key; non-owned pairs are dispatched to their owner over
// the same HTTP API, and a peer's verdict is accepted only after its
// certificate re-verifies locally (fail-closed — a dead, slow or lying
// peer degrades to local computation, never to a wrong answer). The
// admission controller in front of /v1/equiv and /v1/equiv/batch sheds
// excess load with typed 429s (queue_full, deadline_budget, draining) and
// Retry-After hints; see /metrics bpid_admission_* and bpid_cluster_*.
//
// With -compiled the shared store serves transitions from compiled
// transition programs (internal/tprog); verdicts are bit-identical, and
// /metrics additionally exposes the tprog compile/cache/fallback counters.
//
// With -ledger, bpid opens (or creates) a persistent Merkle verdict ledger
// in DIR: every persisted verdict is replayed through the independent
// certificate verifier on startup — accepted records warm-start the verdict
// cache, rejected ones are quarantined and counted — and every fresh
// certified verdict is appended write-behind, sealed into hash-chained
// Merkle batches of -merkle-batch records (or after -merkle-wait-ms,
// whichever comes first). Inspect with `bpiledger`, or over HTTP via
// GET /v1/ledger/stats and GET /v1/ledger/proof/{key}.
//
// Endpoints: POST /v1/{parse,step,explore,equiv,prove,run,jobs},
// GET /v1/jobs/{id}, /v1/ledger/{stats,proof/{key}}, /healthz, /metrics
// (Prometheus text, including bpid_engine_events_total engine counters),
// GET /trace/{id} (a finished job's span tree and counters) and
// GET /debug/pprof/ (the standard Go profiling surface). See the README
// section "Running the daemon" for curl examples. SIGINT/SIGTERM drains:
// in-flight requests and accepted jobs finish, new work is refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bpi/internal/ledger"
	"bpi/internal/parser"
	"bpi/internal/service"
	"bpi/internal/syntax"
)

func main() {
	addr := flag.String("addr", ":8317", "listen address")
	file := flag.String("f", "", "program file with definitions shared by all requests")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	engineWorkers := flag.Int("engine-workers", 1, "per-query pair-engine parallelism")
	queue := flag.Int("queue", 64, "max unfinished async jobs")
	cache := flag.Int("cache", 4096, "verdict LRU entries")
	maxPairs := flag.Int("max-pairs", 0, "default pair budget per query (0 = engine default)")
	maxClosure := flag.Int("max-closure", 0, "default closure budget per query (0 = engine default)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on requested deadlines")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	ledgerDir := flag.String("ledger", "", "directory of the persistent verdict ledger (empty = no persistence)")
	merkleBatch := flag.Int("merkle-batch", 64, "records per sealed Merkle batch")
	merkleWait := flag.Int("merkle-wait-ms", 2000, "max milliseconds a record stays unsealed (0 = seal on batch size only)")
	compiled := flag.Bool("compiled", false, "serve transitions from compiled transition programs (bit-identical verdicts; tprog counters on /metrics)")
	peers := flag.String("peers", "", "comma-separated peer base URLs (static cluster membership; requires -self)")
	self := flag.String("self", "", "this daemon's own base URL as peers address it (required with -peers)")
	batchMax := flag.Int("batch-max", 256, "max pairs per /v1/equiv/batch request")
	admissionQueue := flag.Int("admission-queue", 64, "admission queue capacity beyond the worker pool (excess load is shed with 429)")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Second, "cap on one remote dispatch before local fallback")
	flag.Parse()

	var peerList []string
	if *peers != "" {
		if *self == "" {
			log.Fatal("bpid: -peers requires -self (this node's own base URL)")
		}
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				log.Fatal("bpid: -peers contains an empty URL")
			}
			peerList = append(peerList, p)
		}
	}

	var env syntax.Env
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			log.Fatalf("bpid: %v", err)
		}
		prog, err := parser.ParseProgram(string(src))
		if err != nil {
			log.Fatalf("bpid: %s: %v", *file, err)
		}
		if err := prog.Env.Validate(); err != nil {
			log.Fatalf("bpid: %s: %v", *file, err)
		}
		env = prog.Env
	}

	var led *ledger.Ledger
	if *ledgerDir != "" {
		wait := time.Duration(*merkleWait) * time.Millisecond
		if *merkleWait <= 0 {
			wait = -1 // timed sealing off: seal on batch size and shutdown only
		}
		var err error
		led, err = ledger.Open(*ledgerDir, ledger.Config{
			Env:       env,
			BatchSize: *merkleBatch,
			MaxWait:   wait,
		})
		if err != nil {
			log.Fatalf("bpid: %v", err)
		}
		st := led.Stats()
		log.Printf("bpid: ledger %s: %d trusted records (%d batches, %d rejected), chain %.12s…",
			*ledgerDir, st.Records, st.Batches, st.Rejected, st.ChainHead)
		for _, note := range st.Notes {
			log.Printf("bpid: ledger recovery: %s", note)
		}
		for _, rej := range led.Rejections() {
			log.Printf("bpid: ledger quarantined: %s", rej)
		}
	}

	svc := service.New(service.Config{
		Env:            env,
		Workers:        *workers,
		EngineWorkers:  *engineWorkers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		MaxPairs:       *maxPairs,
		MaxClosure:     *maxClosure,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Ledger:         led,
		Compiled:       *compiled,
		Peers:          peerList,
		SelfURL:        *self,
		BatchMax:       *batchMax,
		AdmissionQueue: *admissionQueue,
		PeerTimeout:    *peerTimeout,
	})
	if len(peerList) > 0 {
		log.Printf("bpid: cluster mode: self=%s peers=%s", *self, *peers)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("bpid: listening on %s (defs=%q)", *addr, *file)

	select {
	case err := <-errc:
		log.Fatalf("bpid: %v", err)
	case <-ctx.Done():
	}
	log.Printf("bpid: draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("bpid: http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		log.Printf("bpid: %v", err)
		os.Exit(1)
	}
	if led != nil {
		// After the service drain: the write-behind appender has flushed, so
		// closing seals the tail batch and snapshots the index.
		if err := led.Close(); err != nil {
			log.Printf("bpid: ledger close: %v", err)
			os.Exit(1)
		}
		st := led.Stats()
		log.Printf("bpid: ledger sealed: %d records in %d batches", st.Records, st.Batches)
	}
	fmt.Println("bpid: drained cleanly")
}
