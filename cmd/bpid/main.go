// Command bpid is the resident bπ equivalence-checking daemon: it serves
// parse/step/explore, equivalence, prover and machine-run queries over
// HTTP/JSON from ONE shared term store, so concurrent and repeated queries
// reuse each other's derivations.
//
// Usage:
//
//	bpid [-addr :8317] [-f defs.bpi] [-workers N] [-engine-workers N]
//	     [-queue N] [-cache N] [-max-pairs N] [-max-closure N]
//	     [-timeout D] [-max-timeout D]
//
// Endpoints: POST /v1/{parse,step,explore,equiv,prove,run,jobs},
// GET /v1/jobs/{id}, /healthz, /metrics (Prometheus text, including
// bpid_engine_events_total engine counters), GET /trace/{id} (a finished
// job's span tree and counters) and GET /debug/pprof/ (the standard Go
// profiling surface). See the README section "Running the daemon" for curl
// examples. SIGINT/SIGTERM drains: in-flight requests and accepted jobs
// finish, new work is refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bpi/internal/parser"
	"bpi/internal/service"
	"bpi/internal/syntax"
)

func main() {
	addr := flag.String("addr", ":8317", "listen address")
	file := flag.String("f", "", "program file with definitions shared by all requests")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	engineWorkers := flag.Int("engine-workers", 1, "per-query pair-engine parallelism")
	queue := flag.Int("queue", 64, "max unfinished async jobs")
	cache := flag.Int("cache", 4096, "verdict LRU entries")
	maxPairs := flag.Int("max-pairs", 0, "default pair budget per query (0 = engine default)")
	maxClosure := flag.Int("max-closure", 0, "default closure budget per query (0 = engine default)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on requested deadlines")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	flag.Parse()

	var env syntax.Env
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			log.Fatalf("bpid: %v", err)
		}
		prog, err := parser.ParseProgram(string(src))
		if err != nil {
			log.Fatalf("bpid: %s: %v", *file, err)
		}
		if err := prog.Env.Validate(); err != nil {
			log.Fatalf("bpid: %s: %v", *file, err)
		}
		env = prog.Env
	}

	svc := service.New(service.Config{
		Env:            env,
		Workers:        *workers,
		EngineWorkers:  *engineWorkers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		MaxPairs:       *maxPairs,
		MaxClosure:     *maxClosure,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("bpid: listening on %s (defs=%q)", *addr, *file)

	select {
	case err := <-errc:
		log.Fatalf("bpid: %v", err)
	case <-ctx.Done():
	}
	log.Printf("bpid: draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("bpid: http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		log.Printf("bpid: %v", err)
		os.Exit(1)
	}
	fmt.Println("bpid: drained cleanly")
}
