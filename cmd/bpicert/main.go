// Command bpicert checks the replayable certificates emitted by the
// equivalence engines (bpibisim -cert, bpiaxiom -cert, bpid's
// GET /certificate/{id}) against the independent verifier of internal/cert.
// The verifier shares no code with the engines: it re-derives every claimed
// transition from the LTS rules, so a certificate that verifies is evidence
// about the calculus, not about the engine that produced it.
//
// Usage:
//
//	bpicert verify [-f file] [-q] cert.json [more.json ...]
//
// Reads each certificate (or stdin for "-"), replays it, and reports one
// line per file. Exits non-zero if any certificate is rejected.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bpi/internal/cert"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 || flag.Arg(0) != "verify" {
		usage()
		os.Exit(2)
	}
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	file := fs.String("f", "", "program file with definitions (for certificates over defined constants)")
	quiet := fs.Bool("q", false, "suppress per-certificate output; only the exit status reports")
	fs.Usage = usage
	_ = fs.Parse(flag.Args()[1:])
	if fs.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	var env syntax.Env
	if *file != "" {
		src, err := os.ReadFile(*file)
		fail(err)
		prog, err := parser.ParseProgram(string(src))
		fail(err)
		env = prog.Env
	}
	v := &cert.Verifier{Sys: semantics.NewSystem(env)}
	bad := 0
	for _, path := range fs.Args() {
		var data []byte
		var err error
		if path == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(path)
		}
		fail(err)
		c, err := cert.Unmarshal(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpicert: %s: %v\n", path, err)
			bad++
			continue
		}
		if err := v.Verify(c); err != nil {
			fmt.Fprintf(os.Stderr, "bpicert: %s: REJECTED: %v\n", path, err)
			bad++
			continue
		}
		if !*quiet {
			verdict := "NOT related"
			if c.Related {
				verdict = "related"
			}
			fmt.Printf("%s: OK  %s %s  p=%s  q=%s\n", path, c.Relation, verdict, c.P, c.Q)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bpicert — independent certificate verifier

  bpicert verify [-f file] [-q] cert.json [more.json ...]

Replays each certificate against the LTS rules (no engine code involved)
and prints one line per file; "-" reads from stdin. Exits 1 if any
certificate is rejected, 2 on usage errors.

  -f file  program file with definitions, for certificates whose terms
           mention defined constants
  -q       quiet: only the exit status reports
`)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpicert:", err)
		os.Exit(1)
	}
}
