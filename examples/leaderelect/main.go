// Leader election by broadcast — a textbook use of the calculus's central
// property: a broadcast reaches every listener atomically, so the first
// claim resolves the whole election in one transition. Where point-to-point
// protocols (Chang–Roberts and friends) need O(n log n) messages and extra
// rounds for mutual exclusion, the broadcast ether provides it for free.
package main

import (
	"fmt"
	"log"

	"bpi/internal/actions"
	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/papers"
	"bpi/internal/semantics"
)

func main() {
	const (
		claim  names.Name = "claim"
		lead   names.Name = "lead"
		follow names.Name = "follow"
	)
	sys := semantics.NewSystem(papers.ElectionEnv())

	fmt.Println("Broadcast leader election")
	fmt.Println()
	for _, n := range []int{3, 5} {
		system := papers.ElectionSystem(n, claim, lead, follow)

		// Safety + liveness, exhaustively: a leader is inevitable.
		always, _, err := machine.AlwaysReachesBarb(sys, system, lead, 200000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d candidates: leader inevitable in every schedule: %v\n", n, always)

		// Show the distribution of winners over random schedules.
		wins := map[names.Name]int{}
		rs, err := machine.RunMany(sys, system, 40, 7, machine.Options{
			MaxSteps: 50, KeepTrace: true,
		}, 4)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rs {
			for _, ev := range r.Trace {
				if ev.Act.Kind == actions.Out && ev.Act.Subj == lead {
					wins[ev.Act.Objs[0]]++
				}
			}
		}
		fmt.Printf("  winners over 40 random schedules:")
		for i := 0; i < n; i++ {
			fmt.Printf(" %s=%d", papers.CandidateID(i), wins[papers.CandidateID(i)])
		}
		fmt.Println()
	}

	// One annotated run.
	system := papers.ElectionSystem(3, claim, lead, follow)
	res, err := machine.Run(sys, system, machine.Options{
		MaxSteps: 20, KeepTrace: true, Scheduler: machine.NewRandomScheduler(11),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\none run, step by step:")
	for _, ev := range res.Trace {
		note := ""
		switch ev.Act.Subj {
		case claim:
			note = "   <- the race-winning broadcast: everyone else hears it"
		case lead:
			note = "    <- the claimant announces leadership"
		case follow:
			note = "  <- a hearer acknowledges the winner"
		}
		fmt.Printf("  %s%s\n", ev, note)
	}
}
