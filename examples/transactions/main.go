// Example 2 of the paper end-to-end: detecting inconsistencies in a
// partitioned replicated database. Transactions execute in disconnected
// partitions; on reconnection (a broadcast on "unif") the system exchanges
// summaries, builds the precedence graph with mobile edge managers, and
// flags write/write conflicts or precedence cycles on "errc".
package main

import (
	"fmt"
	"log"

	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/papers"
	"bpi/internal/semantics"
)

func main() {
	scenarios := []struct {
		name    string
		history []papers.Txn
	}{
		{"serial updates, one partition", []papers.Txn{
			{ID: "t1", Item: "x", Write: true, Part: "p1"},
			{ID: "t2", Item: "x", Write: false, Part: "p1"},
			{ID: "t2", Item: "y", Write: true, Part: "p1"},
		}},
		{"double write across the split", []papers.Txn{
			{ID: "t1", Item: "x", Write: true, Part: "p1"},
			{ID: "t2", Item: "x", Write: true, Part: "p2"},
		}},
		{"stale reads forming a cycle", []papers.Txn{
			{ID: "t1", Item: "x", Write: false, Part: "p1"},
			{ID: "t2", Item: "x", Write: true, Part: "p2"},
			{ID: "t2", Item: "y", Write: false, Part: "p2"},
			{ID: "t1", Item: "y", Write: true, Part: "p1"},
		}},
		{"independent partitions", []papers.Txn{
			{ID: "t1", Item: "x", Write: true, Part: "p1"},
			{ID: "t2", Item: "y", Write: true, Part: "p2"},
		}},
	}

	const (
		unif names.Name = "unif"
		errc names.Name = "errc"
	)
	sys := semantics.NewSystem(papers.TxnEnvOnce())

	fmt.Println("Partitioned-database inconsistency detection (paper Example 2)")
	fmt.Println()
	for _, sc := range scenarios {
		edges := papers.PrecedenceEdges(sc.history)
		oracle := papers.InconsistentOracle(sc.history)
		system := papers.TransactionSystem(sc.history, unif, errc)
		got, err := machine.CanReachBarb(sys, system, errc, 300000)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "consistent"
		if got {
			verdict = "INCONSISTENT"
		}
		fmt.Printf("%-34s precedence-edges=%d  ww-conflict=%v  -> %s\n",
			sc.name, len(edges), papers.WriteWriteConflict(sc.history), verdict)
		if got != oracle {
			log.Fatalf("calculus verdict %v disagrees with the oracle %v", got, oracle)
		}
	}
	fmt.Println("\nall verdicts match the plain-Go serialisability oracle")
}
