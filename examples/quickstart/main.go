// Quickstart: build broadcast systems, inspect their semantics, decide
// equivalences, prove axioms and execute — a tour of the public API.
package main

import (
	"fmt"
	"log"

	bpi "bpi"
)

func main() {
	// 1. Broadcast reaches every listener in a single step.
	p := bpi.MustParse("a!(b) | a?(x).x! | a?(y).y!")
	sys := bpi.NewSystem(nil)
	ts, err := sys.Steps(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("p =", bpi.Format(p))
	for _, t := range ts {
		fmt.Println("  ", t)
	}

	// 2. The signature law of broadcast bisimilarity: pure input prefixes
	// are unobservable, so a? ~ b? — yet outputs are not: a! ≁ b!.
	ch := bpi.NewChecker(sys)
	r1, err := ch.Labelled(bpi.MustParse("a?"), bpi.MustParse("b?"), false)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := ch.Labelled(bpi.MustParse("a!"), bpi.MustParse("b!"), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\na? ~ b?  -> %v (the noisy law)\n", r1.Related)
	fmt.Printf("a! ~ b!  -> %v\n", r2.Related)

	// 3. Restriction internalises private broadcasts (Remark 1): νa(āb) has
	// a silent step where āb has a visible one — barbed bisimilarity is not
	// preserved by restriction in this calculus.
	w1, err := ch.Barbed(bpi.MustParse("a!(b)"), bpi.MustParse("a!(b).c!(d)"), false)
	if err != nil {
		log.Fatal(err)
	}
	w2, err := ch.Barbed(bpi.MustParse("nu a.a!(b)"), bpi.MustParse("nu a.a!(b).c!(d)"), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nāb ~b āb.c̄d       -> %v\n", w1.Related)
	fmt.Printf("νa āb ~b νa āb.c̄d -> %v (Remark 1)\n", w2.Related)

	// 4. The Section 5 axiomatisation decides strong congruence on finite
	// terms: prove an instance of the noisy axiom (H).
	pr := bpi.NewProver(sys)
	lhs := bpi.MustParse("a!.c!")
	rhs := bpi.MustParse("a!.(c! + a?(x).c!)")
	ok, err := pr.Decide(lhs, rhs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA ⊢ %s = %s  -> %v (axiom H)\n", bpi.Format(lhs), bpi.Format(rhs), ok)

	// 5. Execute a system: a tiny two-cell token ring.
	prog, err := bpi.ParseProgram(`
let Node(in, out, tok) = in?(t).out!(t).Node(in, out, tok)
Node(a, b, t) | Node(b, a, t) | a!(t0)
`)
	if err != nil {
		log.Fatal(err)
	}
	rsys := bpi.NewSystem(prog.Env)
	res, err := bpi.Run(rsys, prog.Main, bpi.RunOptions{MaxSteps: 6, KeepTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntoken ring trace:")
	for _, ev := range res.Trace {
		fmt.Println("  ", ev)
	}
}
