// Example 1 of the paper end-to-end: distributed cycle detection by
// broadcasting tokens along graph edges. Each edge manager floods a private
// token towards its target vertex and forwards foreign tokens; a token
// coming home proves a cycle, signalled on "sig".
package main

import (
	"fmt"
	"log"

	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/papers"
	"bpi/internal/semantics"
)

func main() {
	graphs := []struct {
		name  string
		edges []papers.Edge
	}{
		{"3-ring (cyclic)", papers.RingGraph(3)},
		{"3-chain (acyclic)", papers.ChainGraph(3)},
		{"diamond (acyclic)", []papers.Edge{
			{From: "a", To: "b"}, {From: "a", To: "c"}, {From: "b", To: "d"}, {From: "c", To: "d"}}},
		{"diamond + back edge", []papers.Edge{
			{From: "a", To: "b"}, {From: "a", To: "c"}, {From: "b", To: "d"}, {From: "c", To: "d"}, {From: "d", To: "a"}}},
	}

	const sig names.Name = "sig"
	exhaustive := semantics.NewSystem(papers.CycleEnvOnce())
	faithful := semantics.NewSystem(papers.CycleEnv())

	fmt.Println("Distributed cycle detection (paper Example 1)")
	fmt.Println()
	for _, g := range graphs {
		system := papers.CycleSystem(g.edges, sig)
		// Exhaustive verdict over all schedules (single-shot tokens).
		possible, err := machine.CanReachBarb(exhaustive, system, sig, 200000)
		if err != nil {
			log.Fatal(err)
		}
		// A concrete randomly-scheduled run of the paper-faithful system
		// (looping token emitters).
		runs, err := machine.RunMany(faithful, system, 8, 1, machine.Options{
			MaxSteps:   500,
			StopOnBarb: []names.Name{sig},
		}, 4)
		if err != nil {
			log.Fatal(err)
		}
		st := machine.Summarise(runs)
		oracle := papers.HasCycleOracle(g.edges)
		fmt.Printf("%-22s oracle=%-5v detector=%-5v monte-carlo: %s\n",
			g.name, oracle, possible, st)
		if possible != oracle {
			log.Fatalf("detector disagrees with the oracle on %s", g.name)
		}
	}

	// The dynamic variant: the Detector of the paper consumes an edge feed
	// and spawns managers on the fly.
	fmt.Println()
	fed := papers.CycleSystemWithDetector(papers.RingGraph(2), "feed", sig)
	got, err := machine.CanReachBarb(exhaustive, fed, sig, 200000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Detector with dynamic edge feed on a 2-ring: detected=%v\n", got)
}
