// Example 3 of the paper end-to-end: PVM-style tasks with dynamic group
// communication, compiled to the bπ-calculus and executed on the broadcast
// machine. A coordinator creates a group, two workers learn its name over
// point-to-point messages and join; a single group broadcast then reaches
// both in one synchronised step.
package main

import (
	"fmt"
	"log"

	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/pvm"
	"bpi/internal/semantics"
)

func main() {
	worker := func(out names.Name) *pvm.Task {
		return &pvm.Task{Instrs: []pvm.Instr{
			pvm.Receive{Var: "g"},            // learn the group name (name mobility)
			pvm.Join{Group: "g"},             // dynamically join
			pvm.Send{To: "coord", Msg: "ok"}, // ready
			pvm.Receive{Var: "v"},            // the group broadcast
			pvm.Send{To: out, Msg: "v"},      // reveal what arrived
		}}
	}
	coordinator := &pvm.Task{Instrs: []pvm.Instr{
		pvm.NewGroup{Var: "g"},
		pvm.Spawn{Var: "w1", Body: worker("out1")},
		pvm.Spawn{Var: "w2", Body: worker("out2")},
		pvm.Send{To: "w1", Msg: "g"},
		pvm.Send{To: "w2", Msg: "g"},
		pvm.Receive{Var: "a1"},
		pvm.Receive{Var: "a2"},
		pvm.Bcast{Group: "g", Msg: "news"},
	}}

	compiled, err := pvm.Compile(coordinator, "coord")
	if err != nil {
		log.Fatal(err)
	}
	reliable, err := pvm.CompileReliable(coordinator, "coord")
	if err != nil {
		log.Fatal(err)
	}
	sys := semantics.NewSystem(pvm.Env())

	fmt.Println("PVM-style group communication (paper Example 3)")
	fmt.Println()
	for _, out := range []names.Name{"out1", "out2"} {
		got, err := machine.CanReachBarb(sys, compiled, out, 500000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker revealing on %s can receive the group broadcast: %v\n", out, got)
		if !got {
			log.Fatal("a group member missed the broadcast")
		}
	}

	// Monte-Carlo over random schedules. The paper's literal encoding has an
	// authentic race — a receive request broadcast before any mailbox cell
	// exists is lost, deadlocking the task — so scheduled runs use the
	// retrying variant (CompileReliable); the faithful one-shot encoding is
	// still what the exhaustive reachability checks above analysed.
	runsFaithful, err := machine.RunMany(sys, compiled, 12, 1, machine.Options{
		MaxSteps:   400,
		StopOnBarb: []names.Name{"out1", "out2"},
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	runsReliable, err := machine.RunMany(sys, reliable, 12, 1, machine.Options{
		MaxSteps:   400,
		StopOnBarb: []names.Name{"out1", "out2"},
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfaithful one-shot receives: %s\n", machine.Summarise(runsFaithful))
	fmt.Printf("retrying receives:          %s\n", machine.Summarise(runsReliable))
	fmt.Println("(the faithful encoding loses requests fired before delivery — the")
	fmt.Println(" paper's race; the retrying variant recovers and delivers)")

	// One successful schedule, tracing the visible broadcasts.
	for seed := int64(1); seed < 64; seed++ {
		res, err := machine.Run(sys, reliable, machine.Options{
			MaxSteps:   400,
			Scheduler:  machine.NewRandomScheduler(seed),
			KeepTrace:  true,
			StopOnBarb: []names.Name{"out1", "out2"},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Stopped {
			continue
		}
		fmt.Printf("\nschedule (seed %d) delivering the broadcast in %d steps:\n", seed, res.Steps)
		for _, ev := range res.Trace {
			if ev.Act.IsOutput() {
				fmt.Println("  ", ev)
			}
		}
		break
	}
}
