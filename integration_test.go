package bpi_test

// End-to-end integration: the shipped example programs go from concrete
// syntax through the semantics, the machine and the equivalence checkers.

import (
	"os"
	"testing"

	bpi "bpi"
)

func loadProgram(t *testing.T, path string) *bpi.Program {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bpi.ParseProgram(string(src))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if err := prog.Env.Validate(); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return prog
}

func TestIntegrationTokenRing(t *testing.T) {
	prog := loadProgram(t, "testdata/token_ring.bpi")
	sys := bpi.NewSystem(prog.Env)
	res, err := bpi.Run(sys, prog.Main, bpi.RunOptions{MaxSteps: 9, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 9 {
		t.Fatalf("ring stalled after %d steps", res.Steps)
	}
	// The token circulates a → b → c → a → …
	want := []bpi.Name{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i, ev := range res.Trace {
		if ev.Act.Subj != want[i] {
			t.Fatalf("trace[%d] = %s, want subject %s", i, ev, want[i])
		}
	}
}

func TestIntegrationElectionProgram(t *testing.T) {
	prog := loadProgram(t, "testdata/election.bpi")
	sys := bpi.NewSystem(prog.Env)
	always, witness, err := bpi.AlwaysReachesBarb(sys, prog.Main, "lead", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !always {
		t.Fatalf("election can stall at %v", bpi.Format(witness))
	}
	// Exactly one leader per run.
	runs, err := bpi.RunMany(sys, prog.Main, 12, 3, bpi.RunOptions{MaxSteps: 30, KeepTrace: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for ri, r := range runs {
		leads := 0
		for _, ev := range r.Trace {
			if ev.Act.IsOutput() && ev.Act.Subj == "lead" {
				leads++
			}
		}
		if leads != 1 {
			t.Fatalf("run %d elected %d leaders", ri, leads)
		}
	}
}

func TestIntegrationMobilityProgram(t *testing.T) {
	prog := loadProgram(t, "testdata/mobility.bpi")
	sys := bpi.NewSystem(prog.Env)
	got, err := bpi.CanReachBarb(sys, prog.Main, "res", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("the secret never crossed the dynamically learnt channel")
	}
	// And the relay is essential: without a sender the result never appears.
	relayOnly := bpi.Call("Relay", "a", "res")
	got, err = bpi.CanReachBarb(sys, relayOnly, "res", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("result appeared without the private dialogue")
	}
}

func TestIntegrationParseCheckProve(t *testing.T) {
	// Full round: parse two terms, check congruence semantically, prove
	// syntactically, and confirm the printer round-trips.
	ch := bpi.NewChecker(nil)
	pr := bpi.NewProver(nil)
	lhs := bpi.MustParse("a!(b) + a!(b)")
	rhs := bpi.MustParse("a!(b)")
	sem, err := ch.Congruence(lhs, rhs, false)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := pr.Decide(lhs, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !sem || !syn {
		t.Fatalf("S2 failed: semantic=%v syntactic=%v", sem, syn)
	}
	back := bpi.MustParse(bpi.Format(lhs))
	if !bpi.AlphaEqual(back, lhs) {
		t.Error("printer/parser round trip failed")
	}
}
