package bpi_test

// One benchmark per experiment family of DESIGN.md §5. The paper has no
// empirical tables; these benches measure the engine executing each
// reproduced result, so regressions in any pillar (semantics, equivalences,
// axiomatisation, examples, baselines) show up as time/alloc changes.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"bpi/internal/axioms"
	"bpi/internal/equiv"
	"bpi/internal/lts"
	"bpi/internal/machine"
	"bpi/internal/maytest"
	"bpi/internal/names"
	"bpi/internal/papers"
	"bpi/internal/pi"
	"bpi/internal/pvm"
	"bpi/internal/ram"
	brand "bpi/internal/rand"
	"bpi/internal/refine"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// BenchmarkE1_Step measures one broadcast composition step (Table 3 rules
// 12–14) on a 1-sender/8-receiver system.
func BenchmarkE1_Step(b *testing.B) {
	sys := semantics.NewSystem(nil)
	parts := []syntax.Proc{syntax.SendN("a", "v")}
	for i := 0; i < 8; i++ {
		x := names.Name(fmt.Sprintf("x%d", i))
		parts = append(parts, syntax.Recv("a", []names.Name{x}, syntax.SendN(x)))
	}
	p := syntax.Group(parts...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Steps(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_FreeNames measures the Lemma 1 bookkeeping (fn computation
// plus one transition round) on random terms.
func BenchmarkE2_FreeNames(b *testing.B) {
	sys := semantics.NewSystem(nil)
	g := brand.New(1, brand.Default())
	terms := make([]syntax.Proc, 64)
	for i := range terms {
		terms[i] = g.Term()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := terms[i%len(terms)]
		syntax.FreeNames(p)
		if _, err := sys.Steps(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Counterexamples decides all five relations on every witness of
// Remarks 1–4 (fresh checker per iteration: no verdict caching).
func BenchmarkE3_Counterexamples(b *testing.B) {
	ws := papers.Witnesses()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := equiv.NewChecker(nil)
		for _, w := range ws {
			if _, err := ch.Labelled(w.P, w.Q, false); err != nil {
				b.Fatal(err)
			}
			if _, err := ch.Barbed(w.P, w.Q, false); err != nil {
				b.Fatal(err)
			}
			if _, err := ch.Step(w.P, w.Q, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE4_Laws checks the structural laws (Lemma 6) under ~.
func BenchmarkE4_Laws(b *testing.B) {
	p := syntax.Send("a", []names.Name{"b"}, syntax.RecvN("c", "x"))
	q := syntax.TauP(syntax.SendN("b"))
	laws := [][2]syntax.Proc{
		{syntax.Group(p, syntax.PNil), p},
		{syntax.Group(p, q), syntax.Group(q, p)},
		{syntax.Choice(p, q), syntax.Choice(q, p)},
		{syntax.Restrict(p, "z"), p},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := equiv.NewChecker(nil)
		for _, lw := range laws {
			if _, err := ch.Labelled(lw[0], lw[1], false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE5_ParallelPreservation re-derives Lemma 9 on a sample context.
func BenchmarkE5_ParallelPreservation(b *testing.B) {
	pa, pb := syntax.RecvN("a"), syntax.RecvN("b")
	r := syntax.Recv("c", []names.Name{"z"}, syntax.SendN("z"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := equiv.NewChecker(nil)
		if _, err := ch.Labelled(syntax.Group(pa, r), syntax.Group(pb, r), false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_Coincidence runs the Theorem 1 inclusion sampling.
func BenchmarkE7_Coincidence(b *testing.B) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := brand.New(12345, cfg)
		ch := equiv.NewChecker(nil)
		for j := 0; j < 10; j++ {
			p := g.Term()
			q := g.Mutate(p)
			if _, err := ch.Labelled(p, q, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE8_AxiomSoundness validates one instance of every axiom against
// the semantic congruence.
func BenchmarkE8_AxiomSoundness(b *testing.B) {
	cfg := brand.Default()
	cfg.MaxDepth = 2
	cfg.Names = []names.Name{"a", "b"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := brand.New(4242, cfg)
		ch := equiv.NewChecker(nil)
		for _, ax := range axioms.Catalogue() {
			m := axioms.Material{P: g.Term(), Q: g.Term(), R: g.Term(), A: "a", B: "b", C: "c", X: "x"}
			lhs, rhs, ok := ax.Inst(m)
			if !ok {
				continue
			}
			if _, err := ch.Congruence(lhs, rhs, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE9_Completeness measures the Section 5 prover against random
// finite pairs.
func BenchmarkE9_Completeness(b *testing.B) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	cfg.Names = []names.Name{"a", "b"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := brand.New(20202, cfg)
		pr := axioms.NewProver(nil)
		for j := 0; j < 6; j++ {
			p := g.Term()
			q := g.Mutate(p)
			if _, err := pr.Decide(p, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE10_CycleDetect runs the Example 1 detector exhaustively on a
// 3-ring.
func BenchmarkE10_CycleDetect(b *testing.B) {
	sys := semantics.NewSystem(papers.CycleEnvOnce())
	system := papers.CycleSystem(papers.RingGraph(3), "sig")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := machine.CanReachBarb(sys, system, "sig", 120000)
		if err != nil || !ok {
			b.Fatalf("detector failed: %v %v", ok, err)
		}
	}
}

// BenchmarkE11_Transactions runs the Example 2 detector on the
// cross-partition cycle scenario.
func BenchmarkE11_Transactions(b *testing.B) {
	sys := semantics.NewSystem(papers.TxnEnvOnce())
	h := []papers.Txn{
		{ID: "t1", Item: "x", Write: false, Part: "p1"},
		{ID: "t2", Item: "x", Write: true, Part: "p2"},
		{ID: "t2", Item: "y", Write: false, Part: "p2"},
		{ID: "t1", Item: "y", Write: true, Part: "p1"},
	}
	system := papers.TransactionSystem(h, "unif", "errc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := machine.CanReachBarb(sys, system, "errc", 200000)
		if err != nil || !ok {
			b.Fatalf("detector failed: %v %v", ok, err)
		}
	}
}

// BenchmarkE12_PVM compiles and delivers one point-to-point message.
func BenchmarkE12_PVM(b *testing.B) {
	sys := semantics.NewSystem(pvm.Env())
	tasks := map[names.Name]*pvm.Task{
		"root": {Instrs: []pvm.Instr{pvm.Send{To: "peer", Msg: "m"}}},
		"peer": {Instrs: []pvm.Instr{pvm.Receive{Var: "x"}, pvm.Send{To: "out", Msg: "x"}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pvm.System(tasks)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := machine.CanReachBarb(sys, p, "out", 60000)
		if err != nil || !ok {
			b.Fatalf("delivery failed: %v %v", ok, err)
		}
	}
}

// BenchmarkE13_Expressiveness compares one broadcast to n receivers in bπ
// (one step) with the π simulation (n messages). The reported time is the
// engine cost; the semantic series (1 vs n) is asserted.
func BenchmarkE13_Expressiveness(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("broadcast-bpi-n%d", n), func(b *testing.B) {
			sys := semantics.NewSystem(nil)
			parts := []syntax.Proc{syntax.SendN("a", "v")}
			for i := 0; i < n; i++ {
				x := names.Name(fmt.Sprintf("x%d", i))
				parts = append(parts, syntax.Recv("a", []names.Name{x}, syntax.PNil))
			}
			p := syntax.Group(parts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(sys, p, machine.Options{MaxSteps: 10})
				if err != nil || res.Steps != 1 {
					b.Fatalf("bπ broadcast cost %d (%v)", res.Steps, err)
				}
			}
		})
		b.Run(fmt.Sprintf("simulate-pi-n%d", n), func(b *testing.B) {
			var send pi.Proc = pi.Nil{}
			for i := 0; i < n; i++ {
				send = pi.Out{Ch: "a", Arg: "v", Cont: send}
			}
			var p pi.Proc = send
			for i := 0; i < n; i++ {
				x := names.Name(fmt.Sprintf("x%d", i))
				p = pi.Par{L: p, R: pi.In{Ch: "a", Param: x, Cont: pi.Nil{}}}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := pi.TauSteps(p, 4*n); got != n {
					b.Fatalf("π broadcast cost %d, want %d", got, n)
				}
			}
		})
	}
}

// BenchmarkE14_PiEncoding measures the lock-protocol encoding of one π
// communication.
func BenchmarkE14_PiEncoding(b *testing.B) {
	src := pi.Par{
		L: pi.Out{Ch: "a", Arg: "b", Cont: pi.Nil{}},
		R: pi.In{Ch: "a", Param: "x", Cont: pi.Out{Ch: "x", Arg: "c", Cont: pi.Nil{}}},
	}
	sys := semantics.NewSystem(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := pi.Encode(src)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := machine.CanReachBarb(sys, enc, "b", 100000)
		if err != nil || !ok {
			b.Fatalf("encoding lost the barb: %v %v", ok, err)
		}
	}
}

// BenchmarkE15_Scaling measures graph exploration against term size, and
// the level-parallel explorer on the same workload.
func BenchmarkE15_Scaling(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		parts := make([]syntax.Proc, n)
		for i := range parts {
			parts[i] = syntax.Send(names.Name(fmt.Sprintf("c%d", i)), nil, syntax.PNil)
		}
		p := syntax.Group(parts...)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("explore-n%d-w%d", n, workers), func(b *testing.B) {
				sys := semantics.NewSystem(nil)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g, err := lts.Explore(sys, []syntax.Proc{p}, lts.Options{
						AutonomousOnly: true, MaxStates: 1 << 14, Workers: workers,
					})
					if err != nil || g.NumStates() != 1<<n {
						b.Fatalf("graph: %v %v", g, err)
					}
				}
			})
		}
	}
}

// BenchmarkEquivCheckerScaling measures labelled bisimilarity checking cost
// against term depth (ablation: the pair-engine's growth).
func BenchmarkEquivCheckerScaling(b *testing.B) {
	for _, depth := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			cfg := brand.Default()
			cfg.MaxDepth = depth
			g := brand.New(7, cfg)
			pairs := make([][2]syntax.Proc, 8)
			for i := range pairs {
				p := g.Term()
				pairs[i] = [2]syntax.Proc{p, g.Mutate(p)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch := equiv.NewChecker(nil)
				pr := pairs[i%len(pairs)]
				if _, err := ch.Labelled(pr[0], pr[1], false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimplifyAblation measures exploration with and without the
// Simplify interning (the design choice DESIGN.md calls out).
func BenchmarkSimplifyAblation(b *testing.B) {
	p := syntax.Group(
		syntax.Send("a", nil, syntax.SendN("b")),
		syntax.Recv("a", nil, syntax.SendN("c")),
		syntax.TauP(syntax.RecvN("b")),
		syntax.Send("d", nil, syntax.PNil),
	)
	for _, disable := range []bool{false, true} {
		name := "with-simplify"
		if disable {
			name = "no-simplify"
		}
		b.Run(name, func(b *testing.B) {
			sys := semantics.NewSystem(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lts.Explore(sys, []syntax.Proc{p}, lts.Options{
					DisableSimplify: disable, MaxStates: 1 << 14,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE16_WeakCongruence measures the weak congruence decision on the
// τ-law pair family.
func BenchmarkE16_WeakCongruence(b *testing.B) {
	lp := syntax.Send("a", nil, syntax.TauP(syntax.SendN("c")))
	lq := syntax.Send("a", nil, syntax.SendN("c"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := equiv.NewChecker(nil)
		ok, err := ch.Congruence(lp, lq, true)
		if err != nil || !ok {
			b.Fatalf("weak congruence: %v %v", ok, err)
		}
	}
}

// BenchmarkE17_MayTesting measures the observer sweep on the §6 pair.
func BenchmarkE17_MayTesting(b *testing.B) {
	p := syntax.Send("a", nil, syntax.Choice(syntax.SendN("b"), syntax.SendN("c")))
	q := syntax.Choice(
		syntax.Send("a", nil, syntax.SendN("b")),
		syntax.Send("a", nil, syntax.SendN("c")))
	obs := maytest.TraceObservers([]names.Name{"a", "b", "c"}, 2, maytest.DefaultSuccess)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := maytest.Distinguish(nil, p, q, obs, maytest.DefaultSuccess, 0)
		if err != nil || v.Distinguisher != nil {
			b.Fatalf("maytest: %v %v", v, err)
		}
	}
}

// BenchmarkE18_RAM measures the Minsky-machine doubling computation.
func BenchmarkE18_RAM(b *testing.B) {
	double := ram.Program{
		ram.DecJz{R: 0, NextPos: 1, NextZero: 3},
		ram.Inc{R: 1, Next: 2},
		ram.Inc{R: 1, Next: 0},
		ram.Halt{},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := ram.HaltsMaybe(double, []int{2, 0}, 300000)
		if err != nil || !ok {
			b.Fatalf("ram: %v %v", ok, err)
		}
	}
}

// BenchmarkE19_Refinement measures the partition-refinement engine against
// the pair engine on one workload.
func BenchmarkE19_Refinement(b *testing.B) {
	p := syntax.Group(
		syntax.Send("a", nil, syntax.SendN("b")),
		syntax.Recv("a", nil, syntax.SendN("c")),
		syntax.TauP(syntax.RecvN("b")),
	)
	q := syntax.Group(
		syntax.TauP(syntax.RecvN("b")),
		syntax.Send("a", nil, syntax.SendN("b")),
		syntax.Recv("a", nil, syntax.SendN("c")),
	)
	b.Run("refine", func(b *testing.B) {
		sys := semantics.NewSystem(nil)
		for i := 0; i < b.N; i++ {
			g, err := lts.Explore(sys, []syntax.Proc{p, q}, lts.Options{AutonomousOnly: true})
			if err != nil {
				b.Fatal(err)
			}
			ok, err := refine.StrongStep(g)
			if err != nil || !ok {
				b.Fatalf("refine: %v %v", ok, err)
			}
		}
	})
	b.Run("pair-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch := equiv.NewChecker(nil)
			r, err := ch.Step(p, q, false)
			if err != nil || !r.Related {
				b.Fatalf("pair: %v %v", r, err)
			}
		}
	})
}

// BenchmarkEquivParallel measures a batch of labelled-bisimilarity queries
// against one shared term store: the sequential baseline (workers=1,
// single-goroutine) versus fan-out across goroutines sharing one parallel
// checker. At GOMAXPROCS>1 the fan-out variants should show wall-clock
// speedup; at GOMAXPROCS=1 they must not regress beyond scheduling noise.
func BenchmarkEquivParallel(b *testing.B) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(12345, cfg)
	pairs := make([][2]syntax.Proc, 24)
	for i := range pairs {
		p := g.Term()
		pairs[i] = [2]syntax.Proc{p, g.Mutate(p)}
	}
	queries := func(b *testing.B, ch *equiv.Checker, fanout int) {
		if fanout <= 1 {
			for _, pr := range pairs {
				if _, err := ch.Labelled(pr[0], pr[1], false); err != nil {
					b.Fatal(err)
				}
			}
			return
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < fanout; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= len(pairs) {
						return
					}
					if _, err := ch.Labelled(pairs[j][0], pairs[j][1], false); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ch := equiv.NewParallelChecker(nil, w)
				if w == 1 {
					ch = equiv.NewChecker(nil)
				}
				queries(b, ch, w)
			}
		})
	}
}

// BenchmarkNormalForm measures the syntactic §5.2 normalisation.
func BenchmarkNormalForm(b *testing.B) {
	p := syntax.Restrict(
		syntax.Group(
			syntax.Send("a", nil, syntax.SendN("x")),
			syntax.Recv("a", nil, syntax.SendN("b")),
			syntax.RecvN("x"),
		), "x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nf, err := axioms.NormalForm(p)
		if err != nil || !axioms.IsNormalForm(nf) {
			b.Fatalf("normal form: %v", err)
		}
	}
}
