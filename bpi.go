package bpi

import (
	"bpi/internal/axioms"
	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/lts"
	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Core types, re-exported.
type (
	// Name is a channel name of the calculus.
	Name = names.Name
	// Proc is a process term.
	Proc = syntax.Proc
	// Env is a definitions environment (named process equations).
	Env = syntax.Env
	// System fixes the semantic context (definitions, unfold budgets).
	System = semantics.System
	// Trans is one symbolic transition of the operational semantics.
	Trans = semantics.Trans
	// Checker decides the paper's behavioural equivalences.
	Checker = equiv.Checker
	// Result is an equivalence verdict.
	Result = equiv.Result
	// Prover decides A ⊢ p = q for finite processes (Section 5).
	Prover = axioms.Prover
	// Graph is an explicit finite transition graph.
	Graph = lts.Graph
	// ExploreOptions configures graph exploration.
	ExploreOptions = lts.Options
	// RunOptions configures machine execution.
	RunOptions = machine.Options
	// RunResult reports one machine execution.
	RunResult = machine.Result
	// Program is a parsed source file (definitions plus main term).
	Program = parser.Program
	// Certificate is a replayable proof object for a verdict (set Certify on
	// a Checker or Prover to emit one; Result.Cert carries it).
	Certificate = cert.Certificate
	// CertVerifier replays certificates against the LTS rules alone, with
	// optional definitions (Sys) and work budgets.
	CertVerifier = cert.Verifier
)

// Term constructors, re-exported from the syntax package.
var (
	// PNil is the inert process 0.
	PNil = syntax.PNil
)

// TauP builds τ.p.
func TauP(p Proc) Proc { return syntax.TauP(p) }

// Send builds the output prefix ch!(args).cont.
func Send(ch Name, args []Name, cont Proc) Proc { return syntax.Send(ch, args, cont) }

// SendN builds the output ch!(args) with inert continuation.
func SendN(ch Name, args ...Name) Proc { return syntax.SendN(ch, args...) }

// Recv builds the input prefix ch?(params).cont.
func Recv(ch Name, params []Name, cont Proc) Proc { return syntax.Recv(ch, params, cont) }

// RecvN builds the input ch?(params) with inert continuation.
func RecvN(ch Name, params ...Name) Proc { return syntax.RecvN(ch, params...) }

// Choice folds processes with + (empty is 0).
func Choice(ps ...Proc) Proc { return syntax.Choice(ps...) }

// Group folds processes with ‖ (empty is 0).
func Group(ps ...Proc) Proc { return syntax.Group(ps...) }

// Restrict wraps p in νx1…νxn.
func Restrict(p Proc, xs ...Name) Proc { return syntax.Restrict(p, xs...) }

// If builds the conditional (x=y)then,else.
func If(x, y Name, then, els Proc) Proc { return syntax.If(x, y, then, els) }

// Call invokes a definition A(args...).
func Call(id string, args ...Name) Proc { return syntax.Call{Id: id, Args: args} }

// Rec builds the recursion (rec id(params).body)(args).
func Rec(id string, params []Name, body Proc, args []Name) Proc {
	return syntax.Rec{Id: id, Params: params, Body: body, Args: args}
}

// Format renders p in the concrete syntax accepted by Parse.
func Format(p Proc) string { return syntax.String(p) }

// FreeNames returns fn(p).
func FreeNames(p Proc) []Name { return syntax.FreeNames(p).Sorted() }

// Equal reports structural equality; AlphaEqual works up to renaming of
// bound names.
func Equal(p, q Proc) bool { return syntax.Equal(p, q) }

// AlphaEqual reports p =α q.
func AlphaEqual(p, q Proc) bool { return syntax.AlphaEqual(p, q) }

// Parse parses one process term in the concrete syntax.
func Parse(src string) (Proc, error) { return parser.Parse(src) }

// MustParse is Parse panicking on error (for tests and examples).
func MustParse(src string) Proc {
	p, err := parser.Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseProgram parses a source file of "let" definitions plus an optional
// main term.
func ParseProgram(src string) (*Program, error) { return parser.ParseProgram(src) }

// NewSystem returns a semantic system over env (nil means no definitions).
func NewSystem(env Env) *System { return semantics.NewSystem(env) }

// NewChecker returns an equivalence checker over sys (nil means the empty
// environment).
func NewChecker(sys *System) *Checker { return equiv.NewChecker(sys) }

// NewParallelChecker returns a checker that is safe to share across
// goroutines and whose pair engine builds each breadth-first frontier with a
// pool of workers goroutines (<= 0 means GOMAXPROCS). Verdicts, pair counts
// and failure reasons are identical to the sequential checker's.
func NewParallelChecker(sys *System, workers int) *Checker {
	return equiv.NewParallelChecker(sys, workers)
}

// NewProver returns the Section 5 decision procedure over sys.
func NewProver(sys *System) *Prover { return axioms.NewProver(sys) }

// VerifyCertificate replays c with a default verifier — independent of the
// engines, deriving everything from the LTS rules. A nil error means the
// certified verdict is established.
func VerifyCertificate(c *Certificate) error { return cert.Verify(c) }

// UnmarshalCertificate parses a certificate from its JSON encoding (the
// format written by Certificate.Marshal, the -cert CLI flags and the
// daemon's GET /certificate/{id}).
func UnmarshalCertificate(data []byte) (*Certificate, error) { return cert.Unmarshal(data) }

// Explore builds the finite transition graph reachable from the roots.
func Explore(sys *System, roots []Proc, opt ExploreOptions) (*Graph, error) {
	return lts.Explore(sys, roots, opt)
}

// Run executes p by its autonomous broadcast transitions under a scheduler.
func Run(sys *System, p Proc, opt RunOptions) (RunResult, error) {
	return machine.Run(sys, p, opt)
}

// RunMany executes n independent randomly-scheduled runs on a worker pool.
func RunMany(sys *System, p Proc, n int, seed int64, opt RunOptions, workers int) ([]RunResult, error) {
	return machine.RunMany(sys, p, n, seed, opt, workers)
}

// CanReachBarb reports whether some autonomous execution reaches a state
// broadcasting on watch.
func CanReachBarb(sys *System, p Proc, watch Name, maxStates int) (bool, error) {
	return machine.CanReachBarb(sys, p, watch, maxStates)
}

// AlwaysReachesBarb reports whether every maximal autonomous execution
// eventually broadcasts on watch (with a counterexample state otherwise).
func AlwaysReachesBarb(sys *System, p Proc, watch Name, maxStates int) (bool, Proc, error) {
	return machine.AlwaysReachesBarb(sys, p, watch, maxStates)
}
