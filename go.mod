module bpi

go 1.22
