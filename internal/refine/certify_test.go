package refine

import (
	"testing"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// TestCertifiedVerdictsCrossCheck is the certificate-level leg of the
// refine-vs-equiv cross-validation: on every pair both engines must agree on
// the verdict AND both certificates — produced by entirely different state
// representations — must replay against the same independent verifier.
func TestCertifiedVerdictsCrossCheck(t *testing.T) {
	a, b, c := names.Name("a"), names.Name("b"), names.Name("c")
	x := names.Name("x")
	pairs := [][2]syntax.Proc{
		{syntax.SendN(a), syntax.SendN(a)},
		{syntax.SendN(a), syntax.SendN(b)},
		{syntax.TauP(syntax.SendN(a)), syntax.SendN(a)},
		{syntax.Choice(syntax.SendN(b), syntax.TauP(syntax.SendN(c))),
			syntax.Choice(syntax.SendN(b), syntax.Send(b, nil, syntax.SendN(c)))},
		{syntax.SendN(a, b), syntax.Send(a, []names.Name{b}, syntax.SendN(c, "d"))},
		{syntax.Group(syntax.SendN(a), syntax.SendN(b)), syntax.Group(syntax.SendN(b), syntax.SendN(a))},
		{syntax.Restrict(syntax.SendN(x, a), x), syntax.PNil},
		{syntax.Choice(syntax.TauP(syntax.SendN(a)), syntax.TauP(syntax.PNil)), syntax.TauP(syntax.SendN(a))},
	}
	ch := equiv.NewChecker(nil)
	ch.Certify = true
	for _, pq := range pairs {
		g := graphFor(t, pq[0], pq[1])
		ctxt := syntax.String(pq[0]) + " vs " + syntax.String(pq[1])

		for _, rel := range []string{"step", "barbed"} {
			var crt *cert.Certificate
			var ok bool
			var err error
			var er equiv.Result
			if rel == "step" {
				crt, ok, err = CertifyStrongStep(g)
				if err == nil {
					er, err = ch.Step(pq[0], pq[1], false)
				}
			} else {
				crt, ok, err = CertifyStrongBarbed(g)
				if err == nil {
					er, err = ch.Barbed(pq[0], pq[1], false)
				}
			}
			if err != nil {
				t.Fatalf("%s (%s): %v", ctxt, rel, err)
			}
			if ok != er.Related {
				t.Fatalf("%s (%s): refine says %v, equiv says %v", ctxt, rel, ok, er.Related)
			}
			if crt == nil || er.Cert == nil {
				t.Fatalf("%s (%s): missing certificate (refine=%v, equiv=%v)", ctxt, rel, crt != nil, er.Cert != nil)
			}
			if verr := cert.Verify(crt); verr != nil {
				data, _ := crt.Marshal()
				t.Fatalf("%s (%s): refine certificate rejected: %v\n%s", ctxt, rel, verr, data)
			}
			if verr := cert.Verify(er.Cert); verr != nil {
				t.Fatalf("%s (%s): equiv certificate rejected: %v", ctxt, rel, verr)
			}
		}
	}
}

// TestRefineCertificateTamperRejected mutates a partition certificate: the
// verifier must notice a dropped pair even though the partition itself was
// sound.
func TestRefineCertificateTamperRejected(t *testing.T) {
	a := names.Name("a")
	g := graphFor(t, syntax.TauP(syntax.TauP(syntax.SendN(a))), syntax.TauP(syntax.TauP(syntax.SendN(a))))
	crt, ok, err := CertifyStrongStep(g)
	if err != nil || !ok {
		t.Fatalf("certify: %v, %v", ok, err)
	}
	if err := cert.Verify(crt); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
	if len(crt.Pairs) == 0 {
		t.Fatal("no pairs to drop")
	}
	// Drop the pair backing the first recorded witness move.
	crt.Pairs = crt.Pairs[1:]
	crt.Moves = crt.Moves[1:]
	if cert.Verify(crt) == nil {
		t.Error("certificate with a dropped pair verified")
	}
}
