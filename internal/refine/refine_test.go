package refine

import (
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/lts"
	"bpi/internal/names"
	brand "bpi/internal/rand"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

func graphFor(t *testing.T, p, q syntax.Proc) *lts.Graph {
	t.Helper()
	g, err := lts.Explore(semantics.NewSystem(nil), []syntax.Proc{p, q},
		lts.Options{AutonomousOnly: true, MaxStates: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStrongStepKnownPairs(t *testing.T) {
	a, b, c := names.Name("a"), names.Name("b"), names.Name("c")
	cases := []struct {
		name string
		p, q syntax.Proc
		want bool
	}{
		{"identical", syntax.SendN(a), syntax.SendN(a), true},
		{"different-barbs", syntax.SendN(a), syntax.SendN(b), false},
		{"remark2-step-pair",
			syntax.Choice(syntax.SendN(b), syntax.TauP(syntax.SendN(c))),
			syntax.Choice(syntax.SendN(b), syntax.Send(b, nil, syntax.SendN(c))),
			true},
		{"remark1-pair",
			syntax.SendN(a, b),
			syntax.Send(a, []names.Name{b}, syntax.SendN(c, "d")),
			false},
	}
	for _, cse := range cases {
		g := graphFor(t, cse.p, cse.q)
		got, err := StrongStep(g)
		if err != nil {
			t.Fatalf("%s: %v", cse.name, err)
		}
		if got != cse.want {
			t.Errorf("%s: refine says %v, want %v", cse.name, got, cse.want)
		}
	}
}

func TestStrongBarbedKnownPairs(t *testing.T) {
	a, b, c, d := names.Name("a"), names.Name("b"), names.Name("c"), names.Name("d")
	p0 := syntax.SendN(a, b)
	q0 := syntax.Send(a, []names.Name{b}, syntax.SendN(c, d))
	g := graphFor(t, p0, q0)
	got, err := StrongBarbed(g)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("Remark 1: p0 ~b q0 expected from the refinement engine")
	}
	// And restricted they differ.
	g2 := graphFor(t, syntax.Restrict(p0, a), syntax.Restrict(q0, a))
	got, err = StrongBarbed(g2)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("Remark 1 restricted: ≁b expected from the refinement engine")
	}
}

// Cross-validation: the refinement engine and the on-the-fly pair engine
// agree on random pairs for both autonomous relations.
func TestCrossValidationWithPairEngine(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(808, cfg)
	ch := equiv.NewChecker(nil)
	agree, related := 0, 0
	for i := 0; i < 40; i++ {
		p := g.Term()
		q := g.Mutate(p)
		gr := graphFor(t, p, q)

		stepRef, err := StrongStep(gr)
		if err != nil {
			t.Fatal(err)
		}
		stepPair, err := ch.Step(p, q, false)
		if err != nil {
			t.Fatal(err)
		}
		if stepRef != stepPair.Related {
			t.Errorf("pair %d STEP disagreement (refine=%v, pair=%v):\n p=%s\n q=%s",
				i, stepRef, stepPair.Related, syntax.String(p), syntax.String(q))
			continue
		}
		barbRef, err := StrongBarbed(gr)
		if err != nil {
			t.Fatal(err)
		}
		barbPair, err := ch.Barbed(p, q, false)
		if err != nil {
			t.Fatal(err)
		}
		if barbRef != barbPair.Related {
			t.Errorf("pair %d BARBED disagreement (refine=%v, pair=%v):\n p=%s\n q=%s",
				i, barbRef, barbPair.Related, syntax.String(p), syntax.String(q))
			continue
		}
		agree++
		if stepRef || barbRef {
			related++
		}
	}
	if related == 0 {
		t.Fatal("no related pairs sampled")
	}
	t.Logf("engines agree on %d pairs (%d related)", agree, related)
}

func TestRefineRejectsTruncated(t *testing.T) {
	// A growing process truncates the graph; the verdict must be refused.
	x := names.Name("x")
	grow := syntax.Rec{Id: "A", Params: []names.Name{x},
		Body: syntax.TauP(syntax.Group(syntax.SendN(x), syntax.Call{Id: "A", Args: []names.Name{x}})),
		Args: []names.Name{"a"}}
	g, err := lts.Explore(semantics.NewSystem(nil), []syntax.Proc{grow, grow},
		lts.Options{AutonomousOnly: true, MaxStates: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Truncated {
		t.Fatal("expected truncation")
	}
	if _, err := StrongStep(g); err == nil {
		t.Error("truncated graph accepted")
	}
	if _, err := StrongBarbed(g); err == nil {
		t.Error("truncated graph accepted")
	}
}

func TestBlocksHelper(t *testing.T) {
	assign := []int{0, 1, 0, 2}
	bl := Blocks(assign)
	if len(bl) != 3 || len(bl[0]) != 2 {
		t.Fatalf("blocks: %v", bl)
	}
}

func TestWeakKnownPairs(t *testing.T) {
	a, c, d := names.Name("a"), names.Name("c"), names.Name("d")
	// τ.τ.ā ≈φ ≈b ā.
	p := syntax.TauP(syntax.TauP(syntax.SendN(a)))
	q := syntax.SendN(a)
	g := graphFor(t, p, q)
	if got, err := WeakStep(g); err != nil || !got {
		t.Fatalf("weak step on τ-prefix: %v %v", got, err)
	}
	if got, err := WeakBarbed(g); err != nil || !got {
		t.Fatalf("weak barbed on τ-prefix: %v %v", got, err)
	}
	// τ.c̄ vs d̄: different weak barbs.
	g2 := graphFor(t, syntax.TauP(syntax.SendN(c)), syntax.SendN(d))
	if got, err := WeakBarbed(g2); err != nil || got {
		t.Fatalf("weak barbed must separate c̄/d̄: %v %v", got, err)
	}
}

// Cross-validation of the weak relations between the two engines.
func TestWeakCrossValidation(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(909, cfg)
	ch := equiv.NewChecker(nil)
	related := 0
	for i := 0; i < 30; i++ {
		p := g.Term()
		q := g.Mutate(p)
		gr := graphFor(t, p, q)
		wsRef, err := WeakStep(gr)
		if err != nil {
			t.Fatal(err)
		}
		wsPair, err := ch.Step(p, q, true)
		if err != nil {
			t.Fatal(err)
		}
		if wsRef != wsPair.Related {
			t.Errorf("pair %d WEAK STEP disagreement (refine=%v, pair=%v):\n p=%s\n q=%s",
				i, wsRef, wsPair.Related, syntax.String(p), syntax.String(q))
		}
		wbRef, err := WeakBarbed(gr)
		if err != nil {
			t.Fatal(err)
		}
		wbPair, err := ch.Barbed(p, q, true)
		if err != nil {
			t.Fatal(err)
		}
		if wbRef != wbPair.Related {
			t.Errorf("pair %d WEAK BARBED disagreement (refine=%v, pair=%v):\n p=%s\n q=%s",
				i, wbRef, wbPair.Related, syntax.String(p), syntax.String(q))
		}
		if wsRef || wbRef {
			related++
		}
	}
	if related == 0 {
		t.Fatal("no weakly related pairs sampled")
	}
}
