// Package refine implements partition refinement (Kanellakis–Smolka) over
// explicit transition graphs, as a second, independently-built engine for
// the autonomous relations of the paper — strong step bisimilarity
// (Definition 5) and strong barbed bisimilarity (Definition 3). Both only
// observe autonomous moves (outputs and τ) plus barbs, so they are decidable
// on lts.Graph objects built with AutonomousOnly.
//
// The experiment suite cross-validates this engine against the on-the-fly
// pair engine of internal/equiv on random terms: two implementations with
// entirely different state representations agreeing on every verdict is the
// strongest correctness evidence the reproduction has for these relations.
package refine

import (
	"fmt"
	"sort"
	"strings"

	"bpi/internal/lts"
	"bpi/internal/obs"
)

// Partition assigns a block id to every state of the graph such that two
// states share a block iff they are bisimilar under the supplied view:
// labelOf maps an edge to its observable label (return "" to make the move
// label-blind, or skip the edge by returning the sentinel Skip), and
// initialOf gives the initial splitter (e.g. the barb set).
const Skip = "\x00skip"

// Refine computes the coarsest stable partition.
func Refine(g *lts.Graph, labelOf func(lts.Edge) string, initialOf func(state int) string) []int {
	return RefineObs(g, labelOf, initialOf, nil)
}

// RefineObs is Refine reporting to a tracer: a refine.run span with one
// refine.round child per splitter sweep, plus the counters refine.rounds
// and refine.blocks (final block count). A nil tracer is free.
func RefineObs(g *lts.Graph, labelOf func(lts.Edge) string, initialOf func(state int) string, tr *obs.Tracer) []int {
	hist := refineHistory(g, labelOf, initialOf, tr)
	return hist[len(hist)-1]
}

// refineHistory runs the refinement keeping every intermediate partition:
// hist[0] is the initial split, hist[t] the partition after sweep t, and the
// last entry is stable. The round at which two states first separate is the
// well-founded rank of the distinguishing strategies emitted by the
// certificate layer.
func refineHistory(g *lts.Graph, labelOf func(lts.Edge) string, initialOf func(state int) string, tr *obs.Tracer) [][]int {
	span := tr.Span("refine.run")
	defer span.End()
	cRounds := tr.Counter("refine.rounds")
	n := g.NumStates()
	block := make([]int, n)
	// Initial partition by initialOf.
	index := map[string]int{}
	for i := 0; i < n; i++ {
		key := initialOf(i)
		b, ok := index[key]
		if !ok {
			b = len(index)
			index[key] = b
		}
		block[i] = b
	}
	hist := [][]int{append([]int(nil), block...)}
	for {
		changed := false
		cRounds.Add(1)
		round := span.Child("refine.round")
		// Signature of a state: the sorted set of (label, target block).
		sigIndex := map[string]int{}
		next := make([]int, n)
		for i := 0; i < n; i++ {
			var parts []string
			seen := map[string]bool{}
			for _, e := range g.Edges[i] {
				l := labelOf(e)
				if l == Skip {
					continue
				}
				s := fmt.Sprintf("%s→%d", l, block[e.Dst])
				if !seen[s] {
					seen[s] = true
					parts = append(parts, s)
				}
			}
			sort.Strings(parts)
			sig := fmt.Sprintf("b%d|%s", block[i], strings.Join(parts, ","))
			b, ok := sigIndex[sig]
			if !ok {
				b = len(sigIndex)
				sigIndex[sig] = b
			}
			next[i] = b
		}
		// Detect change: the partition is stable when the refinement did not
		// split any block (same number of blocks and same grouping).
		round.End()
		if samePartition(block, next) {
			break
		}
		block = next
		hist = append(hist, append([]int(nil), block...))
		changed = true
		_ = changed
	}
	if c := tr.Counter("refine.blocks"); c != nil {
		distinct := map[int]bool{}
		for _, b := range block {
			distinct[b] = true
		}
		c.Add(int64(len(distinct)))
	}
	return hist
}

func samePartition(a, b []int) bool {
	ab := map[int]int{}
	ba := map[int]int{}
	for i := range a {
		if x, ok := ab[a[i]]; ok {
			if x != b[i] {
				return false
			}
		} else {
			ab[a[i]] = b[i]
		}
		if x, ok := ba[b[i]]; ok {
			if x != a[i] {
				return false
			}
		} else {
			ba[b[i]] = a[i]
		}
	}
	return true
}

// barbKey renders the strong barbs of a state.
func barbKey(g *lts.Graph, i int) string {
	barbs := g.Barbs(i).Sorted()
	parts := make([]string, len(barbs))
	for k, b := range barbs {
		parts[k] = string(b)
	}
	return strings.Join(parts, ",")
}

// StrongStep decides strong step bisimilarity (Definition 5) between the
// graph's first two roots: autonomous moves are label-blind, barbs are the
// output subjects.
func StrongStep(g *lts.Graph) (bool, error) { return StrongStepObs(g, nil) }

// StrongStepObs is StrongStep reporting refinement spans and counters to tr.
func StrongStepObs(g *lts.Graph, tr *obs.Tracer) (bool, error) {
	if len(g.Roots) < 2 {
		return false, fmt.Errorf("refine: need two roots")
	}
	if g.Truncated {
		return false, fmt.Errorf("refine: graph truncated; verdict would be unsound")
	}
	block := RefineObs(g,
		func(e lts.Edge) string { return "" }, // label-blind step
		func(i int) string { return barbKey(g, i) },
		tr,
	)
	return block[g.Roots[0]] == block[g.Roots[1]], nil
}

// StrongBarbed decides strong barbed bisimilarity (Definition 3) between
// the graph's first two roots: only τ moves are observable, plus barbs.
func StrongBarbed(g *lts.Graph) (bool, error) { return StrongBarbedObs(g, nil) }

// StrongBarbedObs is StrongBarbed reporting refinement spans and counters
// to tr.
func StrongBarbedObs(g *lts.Graph, tr *obs.Tracer) (bool, error) {
	if len(g.Roots) < 2 {
		return false, fmt.Errorf("refine: need two roots")
	}
	if g.Truncated {
		return false, fmt.Errorf("refine: graph truncated; verdict would be unsound")
	}
	block := RefineObs(g,
		func(e lts.Edge) string {
			if e.Act.IsTau() {
				return ""
			}
			return Skip // outputs are invisible as moves to barbed bisimilarity
		},
		func(i int) string { return barbKey(g, i) },
		tr,
	)
	return block[g.Roots[0]] == block[g.Roots[1]], nil
}

// Blocks returns, for inspection, the states grouped by block.
func Blocks(assign []int) map[int][]int {
	out := map[int][]int{}
	for s, b := range assign {
		out[b] = append(out[b], s)
	}
	return out
}
