// Certificate emission for the partition-refinement engine: the coarsest
// stable partition IS a bisimulation when read as the relation of intra-block
// pairs, so a positive verdict converts directly into a relation certificate;
// a negative verdict converts into a distinguishing strategy whose
// well-founded rank is the refinement round at which the attacked pair first
// separated. Certificates use the same format and verifier as the pair
// engine's (internal/cert), giving the refine-vs-equiv cross-validation a
// third, certificate-level leg: two independent engines must not only agree
// on the verdict but produce independently replayable evidence for it.
//
// Soundness of the term translation: lts exploration interns states via
// syntax.Simplify and derives successors from the simplified terms with
// semantics.CanonTrans for bound outputs — exactly the derivation the
// certificate verifier re-runs — so graph edges and re-derived transitions
// agree key-for-key. Certification requires a graph built with
// AutonomousOnly (as the step/barbed deciders themselves do).
package refine

import (
	"fmt"

	"bpi/internal/cert"
	"bpi/internal/lts"
	"bpi/internal/syntax"
)

// CertifyStrongStep decides strong step bisimilarity between the graph's
// first two roots and returns a checkable certificate for the verdict.
func CertifyStrongStep(g *lts.Graph) (*cert.Certificate, bool, error) {
	return certifyStrong(g, cert.RelStep)
}

// CertifyStrongBarbed decides strong barbed bisimilarity between the graph's
// first two roots and returns a checkable certificate for the verdict.
func CertifyStrongBarbed(g *lts.Graph) (*cert.Certificate, bool, error) {
	return certifyStrong(g, cert.RelBarbed)
}

func certifyStrong(g *lts.Graph, rel string) (*cert.Certificate, bool, error) {
	if len(g.Roots) < 2 {
		return nil, false, fmt.Errorf("refine: need two roots")
	}
	if g.Truncated {
		return nil, false, fmt.Errorf("refine: graph truncated; verdict would be unsound")
	}
	tauOnly := rel == cert.RelBarbed
	labelOf := func(e lts.Edge) string {
		if tauOnly && !e.Act.IsTau() {
			return Skip
		}
		return ""
	}
	hist := refineHistory(g, labelOf, func(i int) string { return barbKey(g, i) }, nil)
	block := hist[len(hist)-1]
	r0, r1 := g.Roots[0], g.Roots[1]
	c := &cert.Certificate{
		Version:  cert.Version,
		Relation: rel,
		P:        syntax.String(g.States[r0].Proc),
		Q:        syntax.String(g.States[r1].Proc),
	}
	if block[r0] == block[r1] {
		c.Related = true
		if err := emitPartition(c, g, block, tauOnly); err != nil {
			return nil, true, err
		}
		return c, true, nil
	}
	st := &strategist{g: g, hist: hist, tauOnly: tauOnly, memo: map[[2]int]int{}}
	if rel == cert.RelBarbed {
		st.kind = "tau"
	} else {
		st.kind = "step"
	}
	if err := st.distinguish(r0, r1); err != nil {
		return nil, false, err
	}
	c.Nodes = st.nodes
	return c, false, nil
}

// succs returns the deduplicated successor states of i under the engine's
// move filter (all autonomous edges, or τ edges only).
func succs(g *lts.Graph, i int, tauOnly bool) []int {
	var out []int
	seen := map[int]bool{}
	for _, e := range g.Edges[i] {
		if tauOnly && !e.Act.IsTau() {
			continue
		}
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

// emitPartition lists every intra-block pair with its move table: each
// successor of one member is witnessed by a block-equal successor of the
// other, which stability of the partition guarantees exists.
func emitPartition(c *cert.Certificate, g *lts.Graph, block []int, tauOnly bool) error {
	n := g.NumStates()
	c.Terms = make([]string, n)
	for i := 0; i < n; i++ {
		c.Terms[i] = syntax.String(g.States[i].Proc)
	}
	kind := "step"
	if tauOnly {
		kind = "tau"
	}
	witness := func(mover, defender int) (int, error) {
		for _, d := range succs(g, defender, tauOnly) {
			if block[d] == block[mover] {
				return d, nil
			}
		}
		return 0, fmt.Errorf("refine: internal: partition unstable at states %d/%d", mover, defender)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if block[i] != block[j] {
				continue
			}
			c.Pairs = append(c.Pairs, [2]int{i, j})
			var moves []cert.Move
			for _, m := range succs(g, i, tauOnly) {
				w, err := witness(m, j)
				if err != nil {
					return err
				}
				moves = append(moves, cert.Move{Side: "left", Kind: kind, Pair: [2]int{m, w}})
			}
			for _, m := range succs(g, j, tauOnly) {
				w, err := witness(m, i)
				if err != nil {
					return err
				}
				moves = append(moves, cert.Move{Side: "right", Kind: kind, Pair: [2]int{w, m}})
			}
			c.Moves = append(c.Moves, moves)
		}
	}
	return nil
}

// strategist emits a distinguishing strategy from the refinement history.
// The recursion is well-founded: a pair separated at round t is attacked by a
// move whose every defender answer lands in a pair separated strictly
// earlier (round 0 separations are barb mismatches, which are leaves).
type strategist struct {
	g       *lts.Graph
	hist    [][]int
	kind    string
	tauOnly bool
	nodes   []cert.Strategy
	memo    map[[2]int]int
}

// sep returns the first round at which i and j live in different blocks,
// or -1 if they never separate.
func (st *strategist) sep(i, j int) int {
	for t, blk := range st.hist {
		if blk[i] != blk[j] {
			return t
		}
	}
	return -1
}

func (st *strategist) term(i int) string { return syntax.String(st.g.States[i].Proc) }

// distinguish emits (or reuses) the strategy node attacking the pair (i, j)
// and returns nothing but an error; the node index is recorded in memo.
func (st *strategist) distinguish(i, j int) error {
	_, err := st.node(i, j)
	return err
}

func (st *strategist) node(i, j int) (int, error) {
	if idx, ok := st.memo[[2]int{i, j}]; ok {
		return idx, nil
	}
	t := st.sep(i, j)
	if t < 0 {
		return 0, fmt.Errorf("refine: internal: states %d/%d are not distinguished", i, j)
	}
	idx := len(st.nodes)
	st.nodes = append(st.nodes, cert.Strategy{})
	st.memo[[2]int{i, j}] = idx
	st.memo[[2]int{j, i}] = idx

	if t == 0 {
		// Barb mismatch: name the first channel one side barbs on and the
		// other does not.
		bi, bj := st.g.Barbs(i), st.g.Barbs(j)
		side, ch := "", ""
		for _, a := range bi.Sorted() {
			if !bj.Contains(a) {
				side, ch = "left", string(a)
				break
			}
		}
		if side == "" {
			for _, a := range bj.Sorted() {
				if !bi.Contains(a) {
					side, ch = "right", string(a)
					break
				}
			}
		}
		if side == "" {
			return 0, fmt.Errorf("refine: internal: round-0 separation of %d/%d without a barb mismatch", i, j)
		}
		st.nodes[idx] = cert.Strategy{P: st.term(i), Q: st.term(j), Kind: "barb", Side: side, Label: ch}
		return idx, nil
	}

	prev := st.hist[t-1]
	// Find an unanswerable move: a successor of one side whose round-(t-1)
	// block no filtered successor of the other side reaches.
	for _, dir := range [2]struct {
		side            string
		mover, defender int
	}{{"left", i, j}, {"right", j, i}} {
		for _, m := range succs(st.g, dir.mover, st.tauOnly) {
			unanswerable := true
			for _, d := range succs(st.g, dir.defender, st.tauOnly) {
				if prev[d] == prev[m] {
					unanswerable = false
					break
				}
			}
			if !unanswerable {
				continue
			}
			var replies []cert.Reply
			for _, d := range succs(st.g, dir.defender, st.tauOnly) {
				var child int
				var err error
				if dir.side == "left" {
					child, err = st.node(m, d)
				} else {
					child, err = st.node(d, m)
				}
				if err != nil {
					return 0, err
				}
				replies = append(replies, cert.Reply{To: st.term(d), Next: child})
			}
			st.nodes[idx] = cert.Strategy{P: st.term(i), Q: st.term(j), Kind: st.kind,
				Side: dir.side, To: st.term(m), Replies: replies}
			return idx, nil
		}
	}
	return 0, fmt.Errorf("refine: internal: no distinguishing move for %d/%d at round %d", i, j, t)
}
