package refine

import (
	"reflect"
	"testing"

	"bpi/internal/lts"
	"bpi/internal/semantics"
	"bpi/internal/stress"
	"bpi/internal/syntax"
)

// TestCompiledGraphsRefineIdentically pins the downstream contract of the
// compiled LTS builder: partition refinement over a compiled-built graph
// yields exactly the interpreted partitions and verdicts, for both the
// step and barbed refiners, strong and weak.
func TestCompiledGraphsRefineIdentically(t *testing.T) {
	sys := semantics.NewSystem(nil)
	for _, cfg := range stress.Corpus()[:3] {
		opt := lts.Options{AutonomousOnly: true, MaxStates: 1 << 14}
		gi, ierr := lts.Explore(sys, []syntax.Proc{cfg.P, cfg.Q}, opt)
		opt.Compiled = true
		gc, cerr := lts.Explore(sys, []syntax.Proc{cfg.P, cfg.Q}, opt)
		if ierr != nil || cerr != nil {
			t.Fatalf("%s: explore errors: %v, %v", cfg.Name, ierr, cerr)
		}
		type run struct {
			name string
			fn   func(*lts.Graph) (bool, error)
		}
		runs := []run{
			{"strong-step", StrongStep},
			{"strong-barbed", StrongBarbed},
			{"weak-step", WeakStep},
			{"weak-barbed", WeakBarbed},
		}
		for _, r := range runs {
			vi, ie := r.fn(gi)
			vc, ce := r.fn(gc)
			if ie != nil || ce != nil {
				t.Fatalf("%s/%s: refine errors: %v, %v", cfg.Name, r.name, ie, ce)
			}
			if vi != vc {
				t.Fatalf("%s/%s: verdicts differ: interpreted %v, compiled %v", cfg.Name, r.name, vi, vc)
			}
		}
		// The partitions themselves must match block for block, not just the
		// root verdict.
		pi := Refine(gi, func(e lts.Edge) string { return e.Lab }, func(int) string { return "" })
		pc := Refine(gc, func(e lts.Edge) string { return e.Lab }, func(int) string { return "" })
		if !reflect.DeepEqual(pi, pc) {
			t.Fatalf("%s: partitions differ:\n interpreted %v\n compiled    %v", cfg.Name, pi, pc)
		}
	}
}
