package refine

import (
	"fmt"
	"sort"
	"strings"

	"bpi/internal/lts"
)

// weakGraph is the saturated view of an autonomous graph: for every state,
// the τ*-closure, the weak step successors (→* over autonomous edges,
// including staying put), and the weak barbs.
type weakGraph struct {
	g *lts.Graph
	// tauClo[i] lists states reachable by τ* from i (sorted, includes i).
	tauClo [][]int
	// autoClo[i] lists states reachable by (τ ∪ output)* (sorted, incl. i).
	autoClo [][]int
}

func saturate(g *lts.Graph) *weakGraph {
	n := g.NumStates()
	w := &weakGraph{g: g, tauClo: g.TauClosure(), autoClo: make([][]int, n)}
	for i := 0; i < n; i++ {
		seen := map[int]bool{i: true}
		stack := []int{i}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Edges[s] {
				if !seen[e.Dst] {
					seen[e.Dst] = true
					stack = append(stack, e.Dst)
				}
			}
		}
		idx := make([]int, 0, len(seen))
		for s := range seen {
			idx = append(idx, s)
		}
		sort.Ints(idx)
		w.autoClo[i] = idx
	}
	return w
}

// weakBarbKey renders the weak barbs of state i: the union of strong barbs
// over the given closure.
func (w *weakGraph) weakBarbKey(i int, closure [][]int) string {
	set := map[string]bool{}
	for _, s := range closure[i] {
		for _, b := range w.g.Barbs(s).Sorted() {
			set[string(b)] = true
		}
	}
	parts := make([]string, 0, len(set))
	for b := range set {
		parts = append(parts, b)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// WeakStep decides weak step bisimilarity (Definition 5, weak) between the
// graph's first two roots via fixpoint refinement over the saturated
// relation: an autonomous move of one state must be answered by a weak
// autonomous sequence (possibly empty) of the other, with related targets,
// and weak step barbs must match.
func WeakStep(g *lts.Graph) (bool, error) {
	if len(g.Roots) < 2 {
		return false, fmt.Errorf("refine: need two roots")
	}
	if g.Truncated {
		return false, fmt.Errorf("refine: graph truncated; verdict would be unsound")
	}
	w := saturate(g)
	return weakFixpoint(w, g,
		func(i int) []int { // strong moves to be matched
			var out []int
			for _, e := range g.Edges[i] {
				out = append(out, e.Dst)
			}
			return out
		},
		w.autoClo, // weak answers
		func(i int) string { return w.weakBarbKey(i, w.autoClo) },
	), nil
}

// WeakBarbed decides weak barbed bisimilarity (Definition 3, weak): τ moves
// answered by τ*, and p ↓a implies q ⇓a.
func WeakBarbed(g *lts.Graph) (bool, error) {
	if len(g.Roots) < 2 {
		return false, fmt.Errorf("refine: need two roots")
	}
	if g.Truncated {
		return false, fmt.Errorf("refine: graph truncated; verdict would be unsound")
	}
	w := saturate(g)
	return weakFixpoint(w, g,
		func(i int) []int {
			var out []int
			for _, e := range g.Edges[i] {
				if e.Act.IsTau() {
					out = append(out, e.Dst)
				}
			}
			return out
		},
		w.tauClo,
		func(i int) string { return w.weakBarbKey(i, w.tauClo) },
	), nil
}

// weakFixpoint computes the greatest symmetric relation R with
//   - barbCompatible(i) vs barbCompatible(j) (strong barbs of i must be
//     within the weak barbs of j and vice versa),
//   - every strong move of i answered by some weak answer of j with related
//     targets (and symmetrically),
//
// and reports whether the two roots are related. Barb compatibility is
// asymmetric-in-form (strong vs weak) but the relation is kept symmetric.
func weakFixpoint(w *weakGraph, g *lts.Graph,
	strongMoves func(int) []int, answers [][]int, weakBarbs func(int) string) bool {
	n := g.NumStates()
	// related[i*n+j]
	rel := make([]bool, n*n)
	strongB := make([]string, n)
	weakB := make([]string, n)
	for i := 0; i < n; i++ {
		strongB[i] = barbKey(g, i)
		weakB[i] = weakBarbs(i)
	}
	contains := func(weak, strong string) bool {
		if strong == "" {
			return true
		}
		wset := map[string]bool{}
		for _, b := range strings.Split(weak, ",") {
			wset[b] = true
		}
		for _, b := range strings.Split(strong, ",") {
			if !wset[b] {
				return false
			}
		}
		return true
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rel[i*n+j] = contains(weakB[j], strongB[i]) && contains(weakB[i], strongB[j])
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !rel[i*n+j] {
					continue
				}
				ok := matchAll(strongMoves(i), answers[j], rel, n, false) &&
					matchAll(strongMoves(j), answers[i], rel, n, true)
				if !ok {
					rel[i*n+j] = false
					changed = true
				}
			}
		}
	}
	return rel[g.Roots[0]*n+g.Roots[1]]
}

// matchAll: every move target must be related to some answer target.
func matchAll(moves, answers []int, rel []bool, n int, flipped bool) bool {
	for _, m := range moves {
		found := false
		for _, a := range answers {
			var r bool
			if flipped {
				r = rel[a*n+m]
			} else {
				r = rel[m*n+a]
			}
			if r {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
