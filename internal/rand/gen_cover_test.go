package rand

import (
	"testing"

	"bpi/internal/syntax"
)

// The auxiliary draws the oracle registry leans on: all must come from the
// generator's single seeded stream so a law iteration replays byte-for-byte
// from its seed.

func TestAuxiliaryDrawsAreSeeded(t *testing.T) {
	g1, g2 := New(42, Default()), New(42, Default())
	for i := 0; i < 16; i++ {
		if a, b := g1.Intn(1000), g2.Intn(1000); a != b {
			t.Fatalf("draw %d: Intn diverged (%d vs %d) on equal seeds", i, a, b)
		}
	}
	if n := g1.PickName(); n != g2.PickName() {
		t.Error("PickName diverged on equal seeds")
	}
	p1, q1 := g1.Pair()
	p2, q2 := g2.Pair()
	if !syntax.Equal(p1, p2) || !syntax.Equal(q1, q2) {
		t.Error("Pair diverged on equal seeds")
	}
}

func TestPickNameStaysInPool(t *testing.T) {
	cfg := Default()
	pool := map[string]bool{}
	for _, n := range cfg.Names {
		pool[string(n)] = true
	}
	g := New(7, cfg)
	for i := 0; i < 32; i++ {
		if n := g.PickName(); !pool[string(n)] {
			t.Fatalf("PickName produced %q outside the configured pool", n)
		}
	}
}

// The public dispatchers must land on the table-tested op implementations.
func TestMutateDispatchersDelegate(t *testing.T) {
	g := New(3, Default())
	p := g.Term()
	for i := 0; i < numEquivOps; i++ {
		if g.MutateEquiv(p) == nil {
			t.Fatal("MutateEquiv returned nil")
		}
	}
	for i := 0; i < numBreakOps; i++ {
		if g.MutateBreak(p) == nil {
			t.Fatal("MutateBreak returned nil")
		}
	}
}
