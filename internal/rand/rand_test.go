package rand

import (
	"testing"

	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

func TestDeterministic(t *testing.T) {
	g1 := New(42, Default())
	g2 := New(42, Default())
	for i := 0; i < 50; i++ {
		p1, p2 := g1.Term(), g2.Term()
		if !syntax.Equal(p1, p2) {
			t.Fatalf("iteration %d: same seed produced %s and %s", i, syntax.String(p1), syntax.String(p2))
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	g1 := New(1, Default())
	g2 := New(2, Default())
	same := 0
	for i := 0; i < 50; i++ {
		if syntax.Equal(g1.Term(), g2.Term()) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestTermsAreFiniteAndWellFormed(t *testing.T) {
	g := New(7, Default())
	sys := semantics.NewSystem(nil)
	for i := 0; i < 200; i++ {
		p := g.Term()
		if !syntax.IsFinite(p) {
			t.Fatalf("generator emitted non-finite term %s", syntax.String(p))
		}
		if _, err := sys.Steps(p); err != nil {
			t.Fatalf("term %s has broken semantics: %v", syntax.String(p), err)
		}
	}
}

func TestDepthBound(t *testing.T) {
	cfg := Default()
	cfg.MaxDepth = 3
	g := New(9, cfg)
	for i := 0; i < 100; i++ {
		p := g.Term()
		if d := astDepth(p); d > 3 {
			t.Fatalf("depth %d > 3 for %s", d, syntax.String(p))
		}
	}
}

func astDepth(p syntax.Proc) int {
	switch t := p.(type) {
	case syntax.Nil, syntax.Call:
		return 0
	case syntax.Prefix:
		return 1 + astDepth(t.Cont)
	case syntax.Sum:
		return 1 + max(astDepth(t.L), astDepth(t.R))
	case syntax.Par:
		return 1 + max(astDepth(t.L), astDepth(t.R))
	case syntax.Res:
		return 1 + astDepth(t.Body)
	case syntax.Match:
		return 1 + max(astDepth(t.Then), astDepth(t.Else))
	case syntax.Rec:
		return 1 + astDepth(t.Body)
	}
	return 0
}

func TestMutateProducesVariants(t *testing.T) {
	g := New(11, Default())
	p := g.Term()
	distinct := 0
	for i := 0; i < 20; i++ {
		if !syntax.Equal(g.Mutate(p), p) {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("Mutate never changed the term")
	}
}
