package rand

import (
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/syntax"
)

// TestMutateEquivOpsPreserveCongruence table-tests every MutateEquiv
// rewrite individually: each must produce a term strongly congruent (~c) to
// its input — the strongest equivalence of the paper, so preservation holds
// for all five relations, strong and weak.
func TestMutateEquivOpsPreserveCongruence(t *testing.T) {
	ch := equiv.NewChecker(nil)
	cfg := OracleConfig()
	cfg.MaxDepth = 2
	g := New(11, cfg)
	for op := 0; op < numEquivOps; op++ {
		for i := 0; i < 8; i++ {
			p := g.Term()
			q := g.equivOp(op, p)
			ok, err := ch.Congruence(p, q, false)
			if err != nil {
				t.Fatalf("op %d: congruence check: %v", op, err)
			}
			if !ok {
				t.Errorf("op %d is not equivalence-preserving:\n p=%s\n q=%s",
					op, syntax.String(p), syntax.String(q))
			}
		}
	}
}

// TestMutateBreakOpsBreakStrongBisimilarity table-tests every MutateBreak
// rewrite: each must produce a term that is NOT strongly labelled-bisimilar
// to its input (and a fortiori not step/barbed/one-step bisimilar or
// congruent).
func TestMutateBreakOpsBreakStrongBisimilarity(t *testing.T) {
	ch := equiv.NewChecker(nil)
	cfg := OracleConfig()
	cfg.MaxDepth = 2
	g := New(13, cfg)
	for op := 0; op < numBreakOps; op++ {
		for i := 0; i < 8; i++ {
			p := g.Term()
			q := g.breakOp(op, p)
			r, err := ch.Labelled(p, q, false)
			if err != nil {
				t.Fatalf("op %d: labelled check: %v", op, err)
			}
			if r.Related {
				t.Errorf("op %d failed to break strong bisimilarity:\n p=%s\n q=%s",
					op, syntax.String(p), syntax.String(q))
			}
		}
	}
}

// TestMutateBreakFreshBarbOpsBreakWeakToo: the fresh-barb family (ops 0-2)
// also breaks the weak equivalences; only the τ-prefix op (3) is documented
// as weak-preserving.
func TestMutateBreakFreshBarbOpsBreakWeakToo(t *testing.T) {
	ch := equiv.NewChecker(nil)
	cfg := OracleConfig()
	cfg.MaxDepth = 2
	g := New(17, cfg)
	for op := 0; op < numBreakOps-1; op++ {
		for i := 0; i < 6; i++ {
			p := g.Term()
			q := g.breakOp(op, p)
			r, err := ch.Labelled(p, q, true)
			if err != nil {
				t.Fatalf("op %d: weak labelled check: %v", op, err)
			}
			if r.Related {
				t.Errorf("fresh-barb op %d failed to break weak bisimilarity:\n p=%s\n q=%s",
					op, syntax.String(p), syntax.String(q))
			}
		}
	}
	// And the τ op preserves weak bisimilarity, as documented.
	for i := 0; i < 6; i++ {
		p := g.Term()
		q := g.breakOp(numBreakOps-1, p)
		r, err := ch.Labelled(p, q, true)
		if err != nil {
			t.Fatalf("τ op: weak labelled check: %v", err)
		}
		if !r.Related {
			t.Errorf("τ op should preserve weak bisimilarity:\n p=%s\n q=%s",
				syntax.String(p), syntax.String(q))
		}
	}
}

// TestMutateLegacyStreamUnchanged pins the legacy Mutate draw sequence:
// same seed, same input, same mutants — so historical benchmark seeds and
// the theorem-1 sample tests keep reproducing byte-identical pairs.
func TestMutateLegacyStreamUnchanged(t *testing.T) {
	g1 := New(42, Default())
	g2 := New(42, Default())
	for i := 0; i < 64; i++ {
		p1, p2 := g1.Term(), g2.Term()
		q1, q2 := g1.Mutate(p1), g2.Mutate(p2)
		if !syntax.Equal(p1, p2) || !syntax.Equal(q1, q2) {
			t.Fatalf("iteration %d: legacy stream diverged: %s vs %s",
				i, syntax.String(q1), syntax.String(q2))
		}
	}
}

// TestWeightedGeneratorRespectsGates: the oracle profile never emits
// restrictions, and still covers every allowed constructor.
func TestWeightedGeneratorRespectsGates(t *testing.T) {
	g := New(23, OracleConfig())
	sawSum, sawPar, sawPrefix := false, false, false
	for i := 0; i < 300; i++ {
		p := g.Term()
		var walk func(q syntax.Proc)
		walk = func(q syntax.Proc) {
			switch v := q.(type) {
			case syntax.Res:
				t.Fatalf("oracle profile emitted a restriction: %s", syntax.String(p))
			case syntax.Sum:
				sawSum = true
				walk(v.L)
				walk(v.R)
			case syntax.Par:
				sawPar = true
				walk(v.L)
				walk(v.R)
			case syntax.Prefix:
				sawPrefix = true
				walk(v.Cont)
			case syntax.Match:
				walk(v.Then)
				walk(v.Else)
			}
		}
		walk(p)
	}
	if !sawSum || !sawPar || !sawPrefix {
		t.Fatalf("oracle profile coverage: sum=%v par=%v prefix=%v", sawSum, sawPar, sawPrefix)
	}
}
