// Package rand generates random bπ-calculus terms for property-based tests
// and benchmarks. Generation is seeded and deterministic, with controls for
// term size, name pool, polyadicity and which constructors may appear, so a
// failing seed reproduces exactly.
package rand

import (
	"math/rand"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Config controls term generation.
type Config struct {
	// Names is the free-name pool (defaults to a, b, c).
	Names []names.Name
	// MaxDepth bounds the AST depth (default 4).
	MaxDepth int
	// MaxArity bounds prefix polyadicity: payload sizes are drawn from
	// 0..MaxArity. A negative value forces every prefix to be nullary
	// (the uniform-arity fragment where Table 8 applies verbatim).
	MaxArity int
	// AllowRestriction, AllowMatch, AllowPar, AllowTau gate constructors.
	AllowRestriction bool
	AllowMatch       bool
	AllowPar         bool
	AllowTau         bool
	// FiniteOnly suppresses recursion (always true in this generator; kept
	// for future extension symmetry).
	FiniteOnly bool
}

// Default returns a configuration producing small finite terms exercising
// every finite constructor.
func Default() Config {
	return Config{
		Names:            []names.Name{"a", "b", "c"},
		MaxDepth:         4,
		MaxArity:         1,
		AllowRestriction: true,
		AllowMatch:       true,
		AllowPar:         true,
		AllowTau:         true,
		FiniteOnly:       true,
	}
}

// Gen is a seeded term generator.
type Gen struct {
	cfg Config
	rng *rand.Rand
	// bound tracks binders introduced so far (usable as subjects/objects).
	counter int
}

// New returns a generator with the given seed.
func New(seed int64, cfg Config) *Gen {
	if len(cfg.Names) == 0 {
		cfg.Names = []names.Name{"a", "b", "c"}
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Term generates one random finite process.
func (g *Gen) Term() syntax.Proc {
	return g.term(g.cfg.MaxDepth, g.cfg.Names)
}

// Pair generates two random terms over the same name pool — raw material for
// equivalence cross-checks.
func (g *Gen) Pair() (syntax.Proc, syntax.Proc) {
	return g.Term(), g.Term()
}

// Mutate produces a structural variant of p that is often (but not always)
// behaviourally equivalent: it applies a random sound-or-unsound rewrite.
// Useful to get a mix of equivalent and inequivalent pairs.
func (g *Gen) Mutate(p syntax.Proc) syntax.Proc {
	switch g.rng.Intn(6) {
	case 0: // sound: add nil summand
		return syntax.Choice(p, syntax.PNil)
	case 1: // sound: parallel nil
		return syntax.Group(p, syntax.PNil)
	case 2: // sound: duplicate summand
		return syntax.Choice(p, p)
	case 3: // sound: wrap in fresh restriction
		return syntax.Restrict(p, g.freshName())
	case 4: // unsound-ish: swap two names
		ns := g.cfg.Names
		if len(ns) >= 2 {
			return syntax.Apply(p, names.FromSlices(
				[]names.Name{ns[0], ns[1]}, []names.Name{ns[1], ns[0]}))
		}
		return p
	default: // unsound-ish: prepend a τ
		return syntax.TauP(p)
	}
}

func (g *Gen) freshName() names.Name {
	g.counter++
	return names.Name("r" + names.FreshMarker + itoa(g.counter))
}

func (g *Gen) pick(pool []names.Name) names.Name {
	return pool[g.rng.Intn(len(pool))]
}

func (g *Gen) arity() int {
	if g.cfg.MaxArity < 0 {
		return 0
	}
	return g.rng.Intn(g.cfg.MaxArity + 1)
}

// term generates a process of depth ≤ d with the given usable name pool.
func (g *Gen) term(d int, pool []names.Name) syntax.Proc {
	if d == 0 || g.rng.Intn(6) == 0 {
		return syntax.PNil
	}
	for {
		switch g.rng.Intn(8) {
		case 0, 1: // output prefix
			k := g.arity()
			args := make([]names.Name, k)
			for i := range args {
				args[i] = g.pick(pool)
			}
			return syntax.Send(g.pick(pool), args, g.term(d-1, pool))
		case 2, 3: // input prefix
			k := g.arity()
			params := make([]names.Name, k)
			inner := pool
			for i := range params {
				params[i] = g.freshName()
				inner = append(inner[:len(inner):len(inner)], params[i])
			}
			return syntax.Recv(g.pick(pool), params, g.term(d-1, inner))
		case 4: // sum
			return syntax.Choice(g.term(d-1, pool), g.term(d-1, pool))
		case 5: // par
			if !g.cfg.AllowPar {
				continue
			}
			return syntax.Group(g.term(d-1, pool), g.term(d-1, pool))
		case 6: // restriction
			if !g.cfg.AllowRestriction {
				continue
			}
			x := g.freshName()
			inner := append(pool[:len(pool):len(pool)], x)
			return syntax.Restrict(g.term(d-1, inner), x)
		default:
			if g.cfg.AllowTau && g.rng.Intn(2) == 0 {
				return syntax.TauP(g.term(d-1, pool))
			}
			if !g.cfg.AllowMatch {
				continue
			}
			return syntax.If(g.pick(pool), g.pick(pool), g.term(d-1, pool), g.term(d-1, pool))
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
