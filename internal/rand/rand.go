// Package rand generates random bπ-calculus terms for property-based tests
// and benchmarks. Generation is seeded and deterministic, with controls for
// term size, name pool, polyadicity and which constructors may appear, so a
// failing seed reproduces exactly.
package rand

import (
	"math/rand"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Config controls term generation.
type Config struct {
	// Names is the free-name pool (defaults to a, b, c).
	Names []names.Name
	// MaxDepth bounds the AST depth (default 4).
	MaxDepth int
	// MaxArity bounds prefix polyadicity: payload sizes are drawn from
	// 0..MaxArity. A negative value forces every prefix to be nullary
	// (the uniform-arity fragment where Table 8 applies verbatim).
	MaxArity int
	// AllowRestriction, AllowMatch, AllowPar, AllowTau gate constructors.
	AllowRestriction bool
	AllowMatch       bool
	AllowPar         bool
	AllowTau         bool
	// FiniteOnly suppresses recursion (always true in this generator; kept
	// for future extension symmetry).
	FiniteOnly bool
	// Weights, when non-zero, biases the constructor choice instead of the
	// legacy uniform draw. Constructors whose Allow* gate is off are
	// treated as weight zero regardless.
	Weights Weights
}

// Weights assigns a relative frequency to each constructor. The zero value
// means "use the legacy uniform distribution" (which keeps historical seeds
// reproducing the exact same term streams).
type Weights struct {
	Nil, Out, In, Sum, Par, Res, Match, Tau int
}

func (w Weights) zero() bool {
	return w == Weights{}
}

// OracleConfig returns the generation profile used by the differential
// oracle (internal/oracle): restriction-free finite terms over a two-name
// pool, biased toward sums of short prefixes. This is the fragment where
// the §5 prover (axioms.Decide) is fast — few free names keep the world
// enumeration (Bell numbers) and the congruence fusion closure (n^n) small —
// while still exercising inputs, outputs, τ, choice, parallel and match.
func OracleConfig() Config {
	return Config{
		Names:            []names.Name{"a", "b"},
		MaxDepth:         3,
		MaxArity:         1,
		AllowRestriction: false,
		AllowMatch:       true,
		AllowPar:         true,
		AllowTau:         true,
		FiniteOnly:       true,
		Weights:          Weights{Nil: 2, Out: 5, In: 5, Sum: 4, Par: 2, Res: 0, Match: 1, Tau: 2},
	}
}

// Default returns a configuration producing small finite terms exercising
// every finite constructor.
func Default() Config {
	return Config{
		Names:            []names.Name{"a", "b", "c"},
		MaxDepth:         4,
		MaxArity:         1,
		AllowRestriction: true,
		AllowMatch:       true,
		AllowPar:         true,
		AllowTau:         true,
		FiniteOnly:       true,
	}
}

// Gen is a seeded term generator.
type Gen struct {
	cfg Config
	rng *rand.Rand
	// bound tracks binders introduced so far (usable as subjects/objects).
	counter int
}

// New returns a generator with the given seed.
func New(seed int64, cfg Config) *Gen {
	if len(cfg.Names) == 0 {
		cfg.Names = []names.Name{"a", "b", "c"}
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Term generates one random finite process.
func (g *Gen) Term() syntax.Proc {
	return g.term(g.cfg.MaxDepth, g.cfg.Names)
}

// Intn draws from the generator's seeded stream — for callers (the oracle
// law registry) that need auxiliary reproducible choices, e.g. which
// mutator or axiom to apply.
func (g *Gen) Intn(n int) int { return g.rng.Intn(n) }

// PickName draws one name from the configured pool.
func (g *Gen) PickName() names.Name { return g.pick(g.cfg.Names) }

// Pair generates two random terms over the same name pool — raw material for
// equivalence cross-checks.
func (g *Gen) Pair() (syntax.Proc, syntax.Proc) {
	return g.Term(), g.Term()
}

// Mutate produces a structural variant of p that is often (but not always)
// behaviourally equivalent: it draws uniformly from four of the
// equivalence-preserving rewrites of MutateEquiv, the free-name swap (which
// preserves equivalence only on swap-symmetric terms), and the τ-prefix
// breaker of MutateBreak. Useful to get a mix of equivalent and
// inequivalent pairs; use MutateEquiv / MutateBreak when the verdict must
// be known in advance. The draw sequence is kept identical to the original
// Mutate so historical seeds reproduce the same pairs.
func (g *Gen) Mutate(p syntax.Proc) syntax.Proc {
	switch g.rng.Intn(6) {
	case 0: // sound (S1): add nil summand
		return syntax.Choice(p, syntax.PNil)
	case 1: // sound (P1): parallel nil
		return syntax.Group(p, syntax.PNil)
	case 2: // sound (S2): duplicate summand
		return syntax.Choice(p, p)
	case 3: // sound (ν-garbage): wrap in fresh restriction
		return syntax.Restrict(p, g.freshName())
	case 4: // heuristic: swap two names (equiv iff p is swap-symmetric)
		ns := g.cfg.Names
		if len(ns) >= 2 {
			return syntax.Apply(p, names.FromSlices(
				[]names.Name{ns[0], ns[1]}, []names.Name{ns[1], ns[0]}))
		}
		return p
	default: // breaking (strong): prepend a τ
		return syntax.TauP(p)
	}
}

// MutateEquiv returns a term guaranteed strongly congruent (~c, hence also
// labelled-, step-, barbed- and one-step-bisimilar, strong and weak) to p.
// Every rewrite is an instance of a sound law of the system A (Tables 6/7)
// or a trivially sound structural identity:
//
//	p + 0 = p            (S1)
//	p | 0 = p            (P1)
//	p + p = p            (S2)
//	p + q = q + p        (S3, applied at the root when p is a sum)
//	νx p = p, x ∉ fn(p)  (garbage restriction; Table 7 pushes ν to nil)
//	[a=a](p, junk) = p   (true condition; junk is a random small term)
//	[a=b](p, p) = p      (C5)
//
// All cases are closed under substitution: fusions never map onto the fresh
// binder of the ν case, and [a=a] stays true under every σ.
func (g *Gen) MutateEquiv(p syntax.Proc) syntax.Proc {
	return g.equivOp(g.rng.Intn(numEquivOps), p)
}

// numEquivOps is the number of distinct MutateEquiv rewrites (table-tested
// one by one in mutate_test.go).
const numEquivOps = 7

func (g *Gen) equivOp(op int, p syntax.Proc) syntax.Proc {
	switch op {
	case 0:
		return syntax.Choice(p, syntax.PNil)
	case 1:
		return syntax.Group(p, syntax.PNil)
	case 2:
		return syntax.Choice(p, p)
	case 3:
		if s, ok := p.(syntax.Sum); ok {
			return syntax.Sum{L: s.R, R: s.L}
		}
		return syntax.Choice(syntax.PNil, p)
	case 4:
		return syntax.Restrict(p, g.freshName())
	case 5:
		a := g.pick(g.cfg.Names)
		junk := g.term(1, g.cfg.Names)
		return syntax.If(a, a, p, junk)
	default:
		a, b := g.pick(g.cfg.Names), g.pick(g.cfg.Names)
		return syntax.If(a, b, p, p)
	}
}

// MutateBreak returns a term guaranteed NOT strongly labelled-bisimilar
// (hence not strongly step-, barbed-, one-step-bisimilar or congruent) to
// the finite term p. Two families, each with a proof sketch:
//
//   - fresh-barb: d!.p, p + d!, p | d! for a name d fresh for p. The mutant
//     can broadcast on d; p has no free occurrence of d, so no derivative of
//     p ever exhibits the barb d̄. This breaks the weak equivalences too.
//   - τ-prefix: τ.p. On finite terms τ.p ≁ p: matching the move τ.p --τ--> p
//     demands an infinite descending chain of τ-derivatives of p bisimilar
//     to p (impossible on finite terms), and when p has a non-τ initial
//     move, τ.p cannot answer it at all. NOTE: τ.p ≈ p — this family
//     deliberately preserves the weak bisimilarities, so weak-level oracles
//     must treat MutateBreak verdicts as "strongly inequivalent" only.
func (g *Gen) MutateBreak(p syntax.Proc) syntax.Proc {
	return g.breakOp(g.rng.Intn(numBreakOps), p)
}

// numBreakOps is the number of distinct MutateBreak rewrites.
const numBreakOps = 4

func (g *Gen) breakOp(op int, p syntax.Proc) syntax.Proc {
	d := g.freshName()
	switch op {
	case 0:
		return syntax.Send(d, nil, p)
	case 1:
		return syntax.Choice(p, syntax.SendN(d))
	case 2:
		return syntax.Group(p, syntax.SendN(d))
	default:
		return syntax.TauP(p)
	}
}

func (g *Gen) freshName() names.Name {
	g.counter++
	return names.Name("r" + names.FreshMarker + itoa(g.counter))
}

func (g *Gen) pick(pool []names.Name) names.Name {
	return pool[g.rng.Intn(len(pool))]
}

func (g *Gen) arity() int {
	if g.cfg.MaxArity < 0 {
		return 0
	}
	return g.rng.Intn(g.cfg.MaxArity + 1)
}

// term generates a process of depth ≤ d with the given usable name pool.
func (g *Gen) term(d int, pool []names.Name) syntax.Proc {
	if !g.cfg.Weights.zero() {
		return g.weightedTerm(d, pool)
	}
	if d == 0 || g.rng.Intn(6) == 0 {
		return syntax.PNil
	}
	for {
		switch g.rng.Intn(8) {
		case 0, 1: // output prefix
			return g.output(d, pool)
		case 2, 3: // input prefix
			return g.input(d, pool)
		case 4: // sum
			return syntax.Choice(g.term(d-1, pool), g.term(d-1, pool))
		case 5: // par
			if !g.cfg.AllowPar {
				continue
			}
			return syntax.Group(g.term(d-1, pool), g.term(d-1, pool))
		case 6: // restriction
			if !g.cfg.AllowRestriction {
				continue
			}
			return g.restriction(d, pool)
		default:
			if g.cfg.AllowTau && g.rng.Intn(2) == 0 {
				return syntax.TauP(g.term(d-1, pool))
			}
			if !g.cfg.AllowMatch {
				continue
			}
			return syntax.If(g.pick(pool), g.pick(pool), g.term(d-1, pool), g.term(d-1, pool))
		}
	}
}

// weightedTerm draws the constructor from cfg.Weights (gated by the Allow*
// flags); used by oracle-profile generation.
func (g *Gen) weightedTerm(d int, pool []names.Name) syntax.Proc {
	w := g.cfg.Weights
	if !g.cfg.AllowPar {
		w.Par = 0
	}
	if !g.cfg.AllowRestriction {
		w.Res = 0
	}
	if !g.cfg.AllowMatch {
		w.Match = 0
	}
	if !g.cfg.AllowTau {
		w.Tau = 0
	}
	if d == 0 {
		return syntax.PNil
	}
	weights := []int{w.Nil, w.Out, w.In, w.Sum, w.Par, w.Res, w.Match, w.Tau}
	total := 0
	for _, x := range weights {
		total += x
	}
	if total <= 0 {
		return syntax.PNil
	}
	roll := g.rng.Intn(total)
	kind := 0
	for i, x := range weights {
		if roll < x {
			kind = i
			break
		}
		roll -= x
	}
	switch kind {
	case 0:
		return syntax.PNil
	case 1:
		return g.output(d, pool)
	case 2:
		return g.input(d, pool)
	case 3:
		return syntax.Choice(g.weightedTerm(d-1, pool), g.weightedTerm(d-1, pool))
	case 4:
		return syntax.Group(g.weightedTerm(d-1, pool), g.weightedTerm(d-1, pool))
	case 5:
		return g.restriction(d, pool)
	case 6:
		return syntax.If(g.pick(pool), g.pick(pool), g.weightedTerm(d-1, pool), g.weightedTerm(d-1, pool))
	default:
		return syntax.TauP(g.weightedTerm(d-1, pool))
	}
}

func (g *Gen) output(d int, pool []names.Name) syntax.Proc {
	k := g.arity()
	args := make([]names.Name, k)
	for i := range args {
		args[i] = g.pick(pool)
	}
	return syntax.Send(g.pick(pool), args, g.term(d-1, pool))
}

func (g *Gen) input(d int, pool []names.Name) syntax.Proc {
	k := g.arity()
	params := make([]names.Name, k)
	inner := pool
	for i := range params {
		params[i] = g.freshName()
		inner = append(inner[:len(inner):len(inner)], params[i])
	}
	return syntax.Recv(g.pick(pool), params, g.term(d-1, inner))
}

func (g *Gen) restriction(d int, pool []names.Name) syntax.Proc {
	x := g.freshName()
	inner := append(pool[:len(pool):len(pool)], x)
	return syntax.Restrict(g.term(d-1, inner), x)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
