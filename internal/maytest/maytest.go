// Package maytest implements the may-testing preorder for the bπ-calculus —
// the paper's announced follow-up work ("In a forthcoming paper we analyse
// the preorders induced by may testing in calculi based on broadcast", §6).
//
// An observer is a process with a distinguished success channel ω; p may o
// when some autonomous execution of p ‖ o broadcasts on ω. The may preorder
// p ⊑may q holds when every observer satisfied by p is satisfied by q.
// Universal quantification over observers is not decidable by sampling, so
// the package offers the exact per-observer check (May) plus a falsification
// search over observer families (Distinguish); the paper's motivating pair
// ā.(b̄+c̄) vs ā.b̄+ā.c̄ — distinguishable by bisimulation but by no broadcast
// observer — is exercised in the tests and the experiment suite.
package maytest

import (
	"fmt"

	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// DefaultSuccess is the conventional success channel.
const DefaultSuccess names.Name = "succω"

// May reports whether p ‖ o can broadcast on omega (the may-testing
// satisfaction relation), by exhaustive bounded exploration.
func May(sys *semantics.System, p, o syntax.Proc, omega names.Name, maxStates int) (bool, error) {
	return machine.CanReachBarb(sys, syntax.Par{L: p, R: o}, omega, maxStates)
}

// Verdict reports the outcome of a sampled preorder comparison.
type Verdict struct {
	// Distinguisher satisfied by p but not by q (nil when none found).
	Distinguisher syntax.Proc
	// Tried is the number of observers checked.
	Tried int
}

// Distinguish searches the given observers for one satisfied by p but not by
// q (a witness against p ⊑may q). A nil Distinguisher means no sampled
// observer separates them — evidence for (not proof of) the preorder.
func Distinguish(sys *semantics.System, p, q syntax.Proc, observers []syntax.Proc,
	omega names.Name, maxStates int) (Verdict, error) {
	v := Verdict{}
	for _, o := range observers {
		v.Tried++
		mp, err := May(sys, p, o, omega, maxStates)
		if err != nil {
			return v, fmt.Errorf("maytest: observer %s on p: %w", syntax.String(o), err)
		}
		if !mp {
			continue
		}
		mq, err := May(sys, q, o, omega, maxStates)
		if err != nil {
			return v, fmt.Errorf("maytest: observer %s on q: %w", syntax.String(o), err)
		}
		if !mq {
			v.Distinguisher = o
			return v, nil
		}
	}
	return v, nil
}

// TraceObservers enumerates the canonical observer family for may-testing in
// a broadcast setting: input-sequence observers ending in success,
//
//	a1().a2().….ak().ω̄
//
// for every sequence over chans of length ≤ depth. In broadcast calculi an
// observer cannot block or acknowledge a sender, so (monadic, payload-blind)
// may-testing power is exactly trace observation — these observers decide
// the sampled preorder for payload-free processes.
func TraceObservers(chans []names.Name, depth int, omega names.Name) []syntax.Proc {
	var out []syntax.Proc
	var build func(prefix []names.Name)
	build = func(prefix []names.Name) {
		o := syntax.SendN(omega)
		for i := len(prefix) - 1; i >= 0; i-- {
			o = syntax.Recv(prefix[i], nil, o)
		}
		out = append(out, o)
		if len(prefix) == depth {
			return
		}
		for _, c := range chans {
			np := append(append([]names.Name{}, prefix...), c)
			build(np)
		}
	}
	build(nil)
	return out
}

// PayloadObservers extends TraceObservers with single-input observers that
// inspect a received payload against known names:
//
//	a(x).[x=b] ω̄   and   a(x).x().ω̄
func PayloadObservers(chans, payloads []names.Name, omega names.Name) []syntax.Proc {
	var out []syntax.Proc
	for _, a := range chans {
		for _, b := range payloads {
			out = append(out, syntax.Recv(a, []names.Name{"x"},
				syntax.If("x", b, syntax.SendN(omega), syntax.PNil)))
		}
		out = append(out, syntax.Recv(a, []names.Name{"x"},
			syntax.Recv("x", nil, syntax.SendN(omega))))
	}
	return out
}
