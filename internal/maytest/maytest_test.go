package maytest

import (
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
)

func TestMayBasic(t *testing.T) {
	// ā may be observed by a().ω̄; b̄ may not.
	o := syntax.Recv(a, nil, syntax.SendN(DefaultSuccess))
	got, err := May(nil, syntax.SendN(a), o, DefaultSuccess, 0)
	if err != nil || !got {
		t.Fatalf("ā must satisfy a().ω̄: %v %v", got, err)
	}
	got, err = May(nil, syntax.SendN(b), o, DefaultSuccess, 0)
	if err != nil || got {
		t.Fatalf("b̄ must not satisfy a().ω̄: %v %v", got, err)
	}
}

func TestTraceObserversCount(t *testing.T) {
	// Over 2 channels at depth 2: 1 + 2 + 4 = 7 observers.
	obs := TraceObservers([]names.Name{a, b}, 2, DefaultSuccess)
	if len(obs) != 7 {
		t.Fatalf("observers: %d", len(obs))
	}
	// None may be satisfied by nil except the empty-trace observer ω̄.
	sat := 0
	for _, o := range obs {
		ok, err := May(nil, syntax.PNil, o, DefaultSuccess, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			sat++
		}
	}
	if sat != 1 {
		t.Fatalf("nil satisfies %d observers, want 1 (the trivial one)", sat)
	}
}

func TestDistinguishSeparatesOutputs(t *testing.T) {
	obs := TraceObservers([]names.Name{a, b}, 2, DefaultSuccess)
	v, err := Distinguish(nil, syntax.SendN(a), syntax.SendN(b), obs, DefaultSuccess, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Distinguisher == nil {
		t.Fatal("ā and b̄ must be may-distinguished")
	}
}

// The paper's §6 motivating pair: ā.(b̄+c̄) and ā.b̄+ā.c̄ are NOT bisimilar,
// yet no broadcast observer can tell them apart (an observer cannot supply
// co-actions, so it sees only traces — and the trace sets coincide).
func TestMayIdentifiesBisimulationDistinctPair(t *testing.T) {
	p := syntax.Send(a, nil, syntax.Choice(syntax.SendN(b), syntax.SendN(c)))
	q := syntax.Choice(
		syntax.Send(a, nil, syntax.SendN(b)),
		syntax.Send(a, nil, syntax.SendN(c)),
	)
	ch := equiv.NewChecker(nil)
	res, err := ch.Labelled(p, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Related {
		t.Fatal("precondition: the pair must not be (even weakly) bisimilar")
	}
	obs := TraceObservers([]names.Name{a, b, c}, 3, DefaultSuccess)
	v, err := Distinguish(nil, p, q, obs, DefaultSuccess, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Distinguisher != nil {
		t.Fatalf("trace observer %s separated a trace-equivalent pair",
			syntax.String(v.Distinguisher))
	}
	v, err = Distinguish(nil, q, p, obs, DefaultSuccess, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Distinguisher != nil {
		t.Fatalf("reverse direction separated: %s", syntax.String(v.Distinguisher))
	}
	if v.Tried != len(obs) {
		t.Fatalf("tried %d of %d observers", v.Tried, len(obs))
	}
}

func TestMayPreorderIsCoarserThanBisim(t *testing.T) {
	// Bisimilar processes are never may-distinguished (soundness direction,
	// on samples).
	pairs := [][2]syntax.Proc{
		{syntax.Choice(syntax.SendN(a), syntax.PNil), syntax.SendN(a)},
		{syntax.Group(syntax.SendN(a), syntax.SendN(b)), syntax.Group(syntax.SendN(b), syntax.SendN(a))},
	}
	obs := TraceObservers([]names.Name{a, b}, 2, DefaultSuccess)
	for _, pq := range pairs {
		v, err := Distinguish(nil, pq[0], pq[1], obs, DefaultSuccess, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v.Distinguisher != nil {
			t.Errorf("bisimilar pair separated by %s", syntax.String(v.Distinguisher))
		}
	}
}

func TestPayloadObservers(t *testing.T) {
	// ā(b) vs ā(c): payload observers must separate them.
	obs := PayloadObservers([]names.Name{a}, []names.Name{b, c}, DefaultSuccess)
	v, err := Distinguish(nil, syntax.SendN(a, b), syntax.SendN(a, c), obs, DefaultSuccess, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Distinguisher == nil {
		t.Fatal("payload difference not observed")
	}
	// Mobility: ā(b) vs ā(c) where the payload is later used as a channel.
	v, err = Distinguish(nil,
		syntax.Group(syntax.SendN(a, b), syntax.SendN(b)),
		syntax.Group(syntax.SendN(a, c), syntax.SendN(b)),
		obs, DefaultSuccess, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Distinguisher == nil {
		t.Fatal("x().ω̄ observer failed on mobile payload")
	}
}
