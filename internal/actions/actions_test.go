package actions

import (
	"testing"

	"bpi/internal/names"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	x names.Name = "x"
)

func TestConstructorsAndPredicates(t *testing.T) {
	tau := NewTau()
	in := NewIn(a, []names.Name{x})
	out := NewOut(a, []names.Name{b})
	bout := NewBoundOut(a, []names.Name{x, b}, []names.Name{x})
	disc := NewDiscard(a)

	if !tau.IsTau() || tau.IsOutput() || tau.IsInput() {
		t.Error("tau predicates wrong")
	}
	if !in.IsInput() || in.IsStep() {
		t.Error("input predicates wrong")
	}
	if !out.IsOutput() || !out.IsStep() {
		t.Error("output predicates wrong")
	}
	if !bout.IsOutput() || len(bout.Bound) != 1 {
		t.Error("bound output predicates wrong")
	}
	if disc.Kind != Discard || disc.IsStep() {
		t.Error("discard predicates wrong")
	}
	if !tau.IsStep() {
		t.Error("tau must be a step")
	}
}

// TestFreeBoundNames re-derives Definition 1's name functions.
func TestFreeBoundNames(t *testing.T) {
	cases := []struct {
		act      Act
		free, bd names.Set
	}{
		{NewTau(), names.NewSet(), names.NewSet()},
		{NewIn(a, []names.Name{b, c}), names.NewSet(a, b, c), names.NewSet()},
		{NewOut(a, []names.Name{b}), names.NewSet(a, b), names.NewSet()},
		{NewBoundOut(a, []names.Name{x, b}, []names.Name{x}), names.NewSet(a, b), names.NewSet(x)},
		{NewDiscard(a), names.NewSet(a), names.NewSet()},
	}
	for i, cs := range cases {
		if got := cs.act.FreeNames(); !got.Equal(cs.free) {
			t.Errorf("case %d: fn = %v, want %v", i, got, cs.free)
		}
		if got := cs.act.BoundNames(); !got.Equal(cs.bd) {
			t.Errorf("case %d: bn = %v, want %v", i, got, cs.bd)
		}
		want := cs.free.Union(cs.bd)
		if got := cs.act.Names(); !got.Equal(want) {
			t.Errorf("case %d: n = %v, want %v", i, got, want)
		}
	}
}

func TestRenameRespectsBinders(t *testing.T) {
	bout := NewBoundOut(a, []names.Name{x, b}, []names.Name{x})
	ren := bout.Rename(names.Subst{a: c, b: c, x: c})
	if ren.Subj != c {
		t.Errorf("subject not renamed: %s", ren)
	}
	if ren.Objs[0] != x {
		t.Errorf("bound object renamed by Rename: %s", ren)
	}
	if ren.Objs[1] != c {
		t.Errorf("free object not renamed: %s", ren)
	}
	all := bout.RenameAll(names.Subst{x: c})
	if all.Objs[0] != c || all.Bound[0] != c {
		t.Errorf("RenameAll missed binder: %s", all)
	}
}

func TestEqualAndString(t *testing.T) {
	if !NewOut(a, []names.Name{b}).Equal(NewOut(a, []names.Name{b})) {
		t.Error("equal outputs differ")
	}
	if NewOut(a, []names.Name{b}).Equal(NewOut(a, []names.Name{c})) {
		t.Error("different payloads equal")
	}
	if NewIn(a, nil).Equal(NewOut(a, nil)) {
		t.Error("kind confusion")
	}
	cases := map[string]Act{
		"tau":         NewTau(),
		"a?(x)":       NewIn(a, []names.Name{x}),
		"a!(b)":       NewOut(a, []names.Name{b}),
		"a!":          NewOut(a, nil),
		"(^x)a!(x,b)": NewBoundOut(a, []names.Name{x, b}, []names.Name{x}),
		"a:":          NewDiscard(a),
	}
	for want, act := range cases {
		if got := act.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
