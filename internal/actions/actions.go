// Package actions defines the action grammar of the bπ-calculus LTS
// (Definition 1 of the paper):
//
//	α ::= a(x̃) | νỹ āx̃ | τ | a:
//
// a reception, a (possibly bound) output, the silent action, and the discard
// pseudo-action a: ("p ignores a broadcast on a"). Discards never label
// stored transitions — they are the complement of listening — but they do
// participate in the input-or-discard matching clause a(b̃)? of the labelled
// bisimulations (Definitions 7/8), so they are representable here.
package actions

import (
	"strings"

	"bpi/internal/names"
)

// Kind classifies an action.
type Kind int

const (
	// Tau is the silent action τ.
	Tau Kind = iota
	// In is a reception a(x̃). In symbolic transitions the objects are the
	// input's binding parameters; in ground (instantiated) transitions they
	// are the received names.
	In
	// Out is an output νỹ āx̃; Bound lists the extruded (bound) subset ỹ of
	// the objects, empty for a free output.
	Out
	// Discard is the pseudo-action a: (the process ignores channel a).
	Discard
)

// Act is an LTS label.
type Act struct {
	Kind Kind
	// Subj is the subject channel (unset for τ).
	Subj names.Name
	// Objs is the object tuple x̃ (received or emitted names; unset for τ
	// and discard).
	Objs []names.Name
	// Bound is the extruded subset ỹ ⊆ Objs for outputs, in first-occurrence
	// order. Invariant: every Bound name occurs in Objs.
	Bound []names.Name
}

// NewTau returns τ.
func NewTau() Act { return Act{Kind: Tau} }

// NewIn returns the reception a(x̃).
func NewIn(subj names.Name, objs []names.Name) Act {
	return Act{Kind: In, Subj: subj, Objs: objs}
}

// NewOut returns the free output āx̃.
func NewOut(subj names.Name, objs []names.Name) Act {
	return Act{Kind: Out, Subj: subj, Objs: objs}
}

// NewBoundOut returns the bound output νỹ āx̃.
func NewBoundOut(subj names.Name, objs, bound []names.Name) Act {
	return Act{Kind: Out, Subj: subj, Objs: objs, Bound: bound}
}

// NewDiscard returns the pseudo-action a:.
func NewDiscard(subj names.Name) Act { return Act{Kind: Discard, Subj: subj} }

// IsTau reports α = τ.
func (a Act) IsTau() bool { return a.Kind == Tau }

// IsOutput reports that α is a (possibly bound) output.
func (a Act) IsOutput() bool { return a.Kind == Out }

// IsInput reports that α is a reception.
func (a Act) IsInput() bool { return a.Kind == In }

// IsStep reports whether α is an autonomous step — an output or τ. These
// are the moves a system can make without cooperation from its environment
// (the "real reductions" that step-bisimilarity observes).
func (a Act) IsStep() bool { return a.Kind == Tau || a.Kind == Out }

// BoundSet returns the extruded names as a set.
func (a Act) BoundSet() names.Set { return names.NewSet(a.Bound...) }

// FreeNames returns fn(α) per Definition 1: fn(τ)=∅, fn(a(x̃))={a}∪x̃,
// fn(νỹ āx̃)={a}∪x̃\ỹ, fn(a:)={a}.
func (a Act) FreeNames() names.Set {
	switch a.Kind {
	case Tau:
		return names.NewSet()
	case In:
		return names.NewSet(a.Objs...).Add(a.Subj)
	case Out:
		s := names.NewSet(a.Objs...).Add(a.Subj)
		for _, b := range a.Bound {
			s.Remove(b)
		}
		return s
	case Discard:
		return names.NewSet(a.Subj)
	}
	panic("actions: unknown kind")
}

// BoundNames returns bn(α): the extruded names of a bound output, ∅
// otherwise. (Input objects are not bound in the early semantics.)
func (a Act) BoundNames() names.Set {
	if a.Kind == Out {
		return names.NewSet(a.Bound...)
	}
	return names.NewSet()
}

// Names returns n(α) = fn(α) ∪ bn(α).
func (a Act) Names() names.Set { return a.FreeNames().AddAll(a.BoundNames()) }

// Rename applies a substitution to the free names of the label. Bound names
// are binders and are not renamed; callers must alpha-convert them first if
// the substitution's codomain clashes.
func (a Act) Rename(s names.Subst) Act {
	switch a.Kind {
	case Tau:
		return a
	case Discard:
		return NewDiscard(s.Apply(a.Subj))
	case In:
		return NewIn(s.Apply(a.Subj), s.ApplySlice(a.Objs))
	case Out:
		bound := a.BoundSet()
		objs := make([]names.Name, len(a.Objs))
		for i, o := range a.Objs {
			if bound.Contains(o) {
				objs[i] = o
			} else {
				objs[i] = s.Apply(o)
			}
		}
		return Act{Kind: Out, Subj: s.Apply(a.Subj), Objs: objs, Bound: a.Bound}
	}
	panic("actions: unknown kind")
}

// RenameAll applies a substitution to every name of the label including the
// bound ones (used for joint alpha-conversion of label and target).
func (a Act) RenameAll(s names.Subst) Act {
	out := Act{Kind: a.Kind, Subj: s.Apply(a.Subj), Objs: s.ApplySlice(a.Objs), Bound: s.ApplySlice(a.Bound)}
	if a.Kind == Tau {
		out.Subj = ""
	}
	return out
}

// Equal reports literal label equality (names compared verbatim; bound
// output labels should be canonicalised jointly with their targets before
// comparing).
func (a Act) Equal(b Act) bool {
	if a.Kind != b.Kind || a.Subj != b.Subj {
		return false
	}
	if len(a.Objs) != len(b.Objs) || len(a.Bound) != len(b.Bound) {
		return false
	}
	for i := range a.Objs {
		if a.Objs[i] != b.Objs[i] {
			return false
		}
	}
	for i := range a.Bound {
		if a.Bound[i] != b.Bound[i] {
			return false
		}
	}
	return true
}

// String renders the label: "tau", "a?(x,y)", "a!(x,y)", "(^x)a!(x)",
// "a:" for a discard.
func (a Act) String() string {
	var b strings.Builder
	switch a.Kind {
	case Tau:
		return "tau"
	case Discard:
		b.WriteString(string(a.Subj))
		b.WriteByte(':')
		return b.String()
	case In:
		b.WriteString(string(a.Subj))
		b.WriteByte('?')
	case Out:
		if len(a.Bound) > 0 {
			b.WriteString("(^")
			for i, n := range a.Bound {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(string(n))
			}
			b.WriteByte(')')
		}
		b.WriteString(string(a.Subj))
		b.WriteByte('!')
	}
	if a.Kind == In || len(a.Objs) > 0 {
		b.WriteByte('(')
		for i, n := range a.Objs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(n))
		}
		b.WriteByte(')')
	}
	return b.String()
}
