package oracle

import (
	"context"
	"fmt"
	"sync"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/protocols"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// protoKey identifies a catalogue pair independently of which law iteration
// drew it — the shrinker mutates terms, so Check must recognise whether the
// pair it is handed still IS a catalogue scenario (full conformance check,
// expected verdict included) or a shrunken fragment (engine agreement
// only; there is no expected verdict for an arbitrary term pair).
func protoKey(p, q syntax.Proc) string {
	return syntax.Print(p) + "\x00" + syntax.Print(q)
}

var (
	protoOnce     sync.Once
	protoExpected map[string]protocols.Scenario
)

func protoScenarios() map[string]protocols.Scenario {
	protoOnce.Do(func() {
		protoExpected = map[string]protocols.Scenario{}
		for _, s := range protocols.Catalogue() {
			protoExpected[protoKey(s.Impl, s.Spec)] = s
		}
	})
	return protoExpected
}

// lawProtocolsConform is the protocol-library conformance law: on every
// catalogue scenario (healthy and fault-injected), the sequential pair
// engine, the work-stealing parallel engine at 2 and 4 workers and the
// partition-refinement engine must agree with the scenario's expected
// verdict in the scenario's own relation, with bit-identical parallel
// Results and certificates that pass the independent verifier. On shrunken
// pairs the expected-verdict clause drops away and the law degrades to
// engine agreement in the scenario relations — so a violation minimises
// like any other law without the shrinker having to preserve catalogue
// membership.
func lawProtocolsConform() Law {
	return Law{
		Name:   "protocols/conform",
		Doc:    "every protocol scenario's conformance verdict matches its spec on all engines, certificates verify",
		Config: richConfig(), // unused by Gen; scenarios are parameterised, not random ASTs
		Gen: func(g *brand.Gen) (syntax.Proc, syntax.Proc, string) {
			cat := protocols.Catalogue()
			s := cat[g.Intn(len(cat))]
			return s.Impl, s.Spec, s.Name
		},
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			s, known := protoScenarios()[protoKey(p, q)]
			if !known {
				// Shrunken pair: keep the engine-agreement half of the law
				// in the strong relations (weak closures on arbitrary
				// fragments are disproportionately expensive for a shrink
				// probe).
				s = protocols.Scenario{Impl: p, Spec: q, Rel: protocols.RelStep}
			}
			decide := func(w int) (equiv.Result, error) {
				return protocols.DecideCtx(ctx, protocols.NewChecker(w), s)
			}
			seq, err := decide(1)
			if err != nil {
				return "", err
			}
			if known && seq.Related != s.WantEquiv {
				return fmt.Sprintf("%s: sequential verdict %v, scenario expects %v (%s)",
					s.Name, seq.Related, s.WantEquiv, seq.Reason), nil
			}
			if seq.Cert == nil {
				return s.Name + ": certifying checker returned no certificate", nil
			}
			if err := cert.Verify(seq.Cert); err != nil {
				return fmt.Sprintf("%s: pair-engine certificate rejected: %v", s.Name, err), nil
			}
			for _, w := range []int{2, 4} {
				par, err := decide(w)
				if err != nil {
					return "", err
				}
				if seq.Related != par.Related || seq.Pairs != par.Pairs || seq.Reason != par.Reason {
					return fmt.Sprintf("%s: parallel engine (workers=%d) diverges: related %v/%v pairs %d/%d",
						s.Name, w, seq.Related, par.Related, seq.Pairs, par.Pairs), nil
				}
			}
			refOK, refCert, err := protocols.Refine(s, 1<<15)
			if err != nil {
				return "", nil // joint LTS over budget on a pathological shrink probe; vacuous
			}
			if refOK != seq.Related {
				return fmt.Sprintf("%s: refinement=%v pair engine=%v", s.Name, refOK, seq.Related), nil
			}
			if refCert != nil {
				if err := cert.Verify(refCert); err != nil {
					return fmt.Sprintf("%s: refiner certificate rejected: %v", s.Name, err), nil
				}
			}
			return "", nil
		},
	}
}
