package oracle

import (
	"context"
	"testing"

	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// FuzzDecideAgree is the native go-fuzz twin of the axioms/decide-agree
// law: the coverage-guided engine mutates the generator seed, and for every
// seed the §5 prover must agree with the semantic congruence checker in
// both directions. Run with:
//
//	go test -run '^$' -fuzz FuzzDecideAgree -fuzztime 30s ./internal/oracle
func FuzzDecideAgree(f *testing.F) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40, mix(2026)} {
		f.Add(seed)
	}
	env := NewEnv(2)
	law := lawDecideAgree()
	f.Fuzz(func(t *testing.T, seed int64) {
		g := brand.New(mix(seed), law.Config)
		p, q, tag := law.Gen(g)
		detail, err := law.Check(context.Background(), env, p, q)
		if err != nil {
			t.Skip() // engine budget exhausted on a pathological draw
		}
		if detail != "" {
			t.Errorf("seed %d [%s]: %s\n p = %s\n q = %s",
				seed, tag, detail, syntax.Print(p), syntax.Print(q))
		}
	})
}

// FuzzProtocolsConform is the native go-fuzz twin of the protocols/conform
// law: every mutated seed draws a scenario from the protocol catalogue and
// all engines must reproduce its expected conformance verdict with
// verifying certificates. Run with:
//
//	go test -run '^$' -fuzz FuzzProtocolsConform -fuzztime 30s ./internal/oracle
func FuzzProtocolsConform(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1 << 33} {
		f.Add(seed)
	}
	env := NewEnv(2)
	law := lawProtocolsConform()
	f.Fuzz(func(t *testing.T, seed int64) {
		g := brand.New(mix(seed), law.Config)
		p, q, tag := law.Gen(g)
		detail, err := law.Check(context.Background(), env, p, q)
		if err != nil {
			t.Skip() // engine budget exhausted
		}
		if detail != "" {
			t.Errorf("seed %d [%s]: %s\n p = %s\n q = %s",
				seed, tag, detail, syntax.Print(p), syntax.Print(q))
		}
	})
}
