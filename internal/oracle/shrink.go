package oracle

import (
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// PairPred reports whether a candidate pair still violates the law under
// shrink. Predicates must be total: engine errors count as "does not
// violate" so the shrinker never walks into erroring terms.
type PairPred func(p, q syntax.Proc) bool

// ShrinkPair greedily minimises a violating pair: at each round it tries,
// in order, every structural reduction of p (holding q), then of q (holding
// p), then every pairwise fusion of the shared free names (applied to both
// sides), and commits the first candidate that still violates. budget
// bounds the total number of predicate evaluations. The returned pair is a
// local minimum: no single reduction of it still violates (unless the
// budget ran out first).
func ShrinkPair(p, q syntax.Proc, pred PairPred, budget int) (syntax.Proc, syntax.Proc, int) {
	if budget <= 0 {
		budget = 4096
	}
	spent := 0
	try := func(cp, cq syntax.Proc) bool {
		spent++
		return pred(cp, cq)
	}
	for spent < budget {
		committed := false
		for _, c := range shrinkCandidates(p) {
			if spent >= budget {
				break
			}
			if try(c, q) {
				p, committed = c, true
				break
			}
		}
		if committed {
			continue
		}
		for _, c := range shrinkCandidates(q) {
			if spent >= budget {
				break
			}
			if try(p, c) {
				q, committed = c, true
				break
			}
		}
		if committed {
			continue
		}
		// Merge names: fuse one free name into another on both sides. This
		// shrinks the name alphabet (and often unlocks further structural
		// shrinks) without changing term size.
		fn := syntax.FreeNames(p).AddAll(syntax.FreeNames(q)).Sorted()
		for i := 1; i < len(fn) && !committed; i++ {
			if spent >= budget {
				break
			}
			sub := names.Subst{fn[i]: fn[0]}
			cp, cq := syntax.Apply(p, sub), syntax.Apply(q, sub)
			if syntax.Equal(cp, p) && syntax.Equal(cq, q) {
				continue
			}
			if try(cp, cq) {
				p, q, committed = cp, cq, true
			}
		}
		if !committed {
			return p, q, spent
		}
	}
	return p, q, spent
}

// weight is the shrink measure: AST nodes plus payload/parameter names.
// Every structural candidate strictly decreases it (fusions decrease the
// distinct-free-name count instead), so greedy shrinking terminates.
func weight(t syntax.Proc) int {
	switch v := t.(type) {
	case syntax.Prefix:
		w := 1 + weight(v.Cont)
		switch pre := v.Pre.(type) {
		case syntax.Out:
			w += len(pre.Args)
		case syntax.In:
			w += len(pre.Params)
		}
		return w
	case syntax.Sum:
		return 1 + weight(v.L) + weight(v.R)
	case syntax.Par:
		return 1 + weight(v.L) + weight(v.R)
	case syntax.Res:
		return 1 + weight(v.Body)
	case syntax.Match:
		return 1 + weight(v.Then) + weight(v.Else)
	default:
		return 1
	}
}

// shrinkCandidates enumerates the structural reductions of t, most
// aggressive first: nil, then top-level component extraction, then the same
// reductions one level down. Every candidate has strictly fewer AST nodes
// than t.
func shrinkCandidates(t syntax.Proc) []syntax.Proc {
	var out []syntax.Proc
	if _, isNil := t.(syntax.Nil); !isNil {
		out = append(out, syntax.PNil)
	}
	out = append(out, localShrinks(t)...)
	return out
}

func localShrinks(t syntax.Proc) []syntax.Proc {
	var out []syntax.Proc
	switch v := t.(type) {
	case syntax.Nil:
	case syntax.Prefix:
		out = append(out, v.Cont) // drop the prefix
		if _, isNil := v.Cont.(syntax.Nil); !isNil {
			out = append(out, syntax.Prefix{Pre: v.Pre, Cont: syntax.PNil}) // prune continuation
		}
		switch pre := v.Pre.(type) {
		case syntax.Out:
			if len(pre.Args) > 0 { // shorten the payload
				out = append(out, syntax.Prefix{
					Pre:  syntax.Out{Ch: pre.Ch, Args: pre.Args[:len(pre.Args)-1]},
					Cont: v.Cont,
				})
			}
		case syntax.In:
			if len(pre.Params) > 0 { // drop a binder (occurrences go free — still a term)
				out = append(out, syntax.Prefix{
					Pre:  syntax.In{Ch: pre.Ch, Params: pre.Params[:len(pre.Params)-1]},
					Cont: v.Cont,
				})
			}
		}
		for _, c := range localShrinks(v.Cont) {
			out = append(out, syntax.Prefix{Pre: v.Pre, Cont: c})
		}
	case syntax.Sum:
		out = append(out, v.L, v.R) // prune a summand
		for _, c := range localShrinks(v.L) {
			out = append(out, syntax.Sum{L: c, R: v.R})
		}
		for _, c := range localShrinks(v.R) {
			out = append(out, syntax.Sum{L: v.L, R: c})
		}
	case syntax.Par:
		out = append(out, v.L, v.R) // drop a parallel component
		for _, c := range localShrinks(v.L) {
			out = append(out, syntax.Par{L: c, R: v.R})
		}
		for _, c := range localShrinks(v.R) {
			out = append(out, syntax.Par{L: v.L, R: c})
		}
	case syntax.Res:
		out = append(out, v.Body) // open the restriction
		for _, c := range localShrinks(v.Body) {
			out = append(out, syntax.Res{X: v.X, Body: c})
		}
	case syntax.Match:
		out = append(out, v.Then, v.Else)
		for _, c := range localShrinks(v.Then) {
			out = append(out, syntax.Match{X: v.X, Y: v.Y, Then: c, Else: v.Else})
		}
		for _, c := range localShrinks(v.Else) {
			out = append(out, syntax.Match{X: v.X, Y: v.Y, Then: v.Then, Else: c})
		}
	default: // Call, Rec: replace wholesale
		out = append(out, syntax.PNil)
	}
	return out
}
