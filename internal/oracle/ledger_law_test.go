package oracle

import (
	"context"
	"errors"
	"testing"

	"bpi/internal/parser"
)

// TestLedgerLawHoldsOnWitnessPairs runs ledger/roundtrip directly on pairs
// covering both verdicts and both modes: the full persist-reopen cycle must
// preserve every one (empty detail, no engine error).
func TestLedgerLawHoldsOnWitnessPairs(t *testing.T) {
	law := lawLedgerRoundtrip()
	env := NewEnv(2)
	pairs := [][2]string{
		{"a! | b!", "a!.b! + b!.a!"}, // related, strong and weak
		{"tau.a!", "a!"},             // related weak only
		{"a!", "b!"},                 // unrelated in both modes
		{"nu x.a!(x)", "nu y.a!(y)"}, // restriction + alpha-equivalence
		{"tau.a!(b) + tau.a!(c)", "tau.a!(c) + tau.a!(b)"},
	}
	for _, pq := range pairs {
		p, err := parser.Parse(pq[0])
		if err != nil {
			t.Fatal(err)
		}
		q, err := parser.Parse(pq[1])
		if err != nil {
			t.Fatal(err)
		}
		detail, err := law.Check(context.Background(), env, p, q)
		if err != nil {
			t.Fatalf("(%s, %s): engine error: %v", pq[0], pq[1], err)
		}
		if detail != "" {
			t.Errorf("(%s, %s): ledger/roundtrip violated: %s", pq[0], pq[1], detail)
		}
	}
}

// TestLedgerLawRegistered: the law is in the registry and selectable by name.
func TestLedgerLawRegistered(t *testing.T) {
	laws, err := LawByName([]string{"ledger/roundtrip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(laws) != 1 || laws[0].Name != "ledger/roundtrip" {
		t.Fatalf("LawByName(ledger/roundtrip) = %v", laws)
	}
}

// TestLedgerLawSurvivesCancellation: a cancelled context is an engine error,
// never a violation.
func TestLedgerLawSurvivesCancellation(t *testing.T) {
	law := lawLedgerRoundtrip()
	env := NewEnv(2)
	p, err := parser.Parse("a! | b! | c!")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse("a!.b!.c!")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	detail, cerr := law.Check(ctx, env, p, q)
	if detail != "" {
		t.Errorf("cancelled run reported a violation: %s", detail)
	}
	if cerr == nil || !errors.Is(cerr, context.Canceled) {
		t.Errorf("cancelled run: err = %v, want context.Canceled", cerr)
	}
}
