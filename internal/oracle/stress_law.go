package oracle

import (
	"context"
	"fmt"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/lts"
	brand "bpi/internal/rand"
	"bpi/internal/refine"
	"bpi/internal/semantics"
	"bpi/internal/stress"
	"bpi/internal/syntax"
)

// stressPair draws a small instance of one of the internal/stress topology
// families — the same generators the scaling bench runs at 10^5+ states,
// here at oracle-sized parameters. Most draws pair a topology with its
// rotation (equivalent by construction); a third of those are then broken
// by dropping a component, and one draw in four crosses two families
// (expected unrelated). The law never assumes the expected verdict — it
// only demands that every engine produces the same one.
func stressPair(g *brand.Gen) (syntax.Proc, syntax.Proc, string) {
	var p syntax.Proc
	var tag string
	switch g.Intn(4) {
	case 0:
		k, n := 2+g.Intn(2), 1+g.Intn(3)
		p, tag = stress.Rings(k, n), fmt.Sprintf("rings-%dx%d", k, n)
	case 1:
		n := 3 + g.Intn(6)
		p, tag = stress.Mesh(n), fmt.Sprintf("mesh-%d", n)
	case 2:
		d := 1 + g.Intn(2)
		p, tag = stress.Tree(2, d), fmt.Sprintf("tree-2x%d", d)
	default:
		p = stress.Rings(2, 1+g.Intn(2))
		return p, stress.Mesh(3 + g.Intn(4)), "cross-family"
	}
	q := stress.Rotate(p)
	if g.Intn(3) == 0 {
		parts := syntax.ParList(q)
		q = syntax.Group(parts[1:]...)
		tag += "/dropped"
	}
	return p, q, tag
}

// stressChecker returns a fresh certifying checker for the stress law.
// Fresh per leg for the same reason as lawObsConsistent: the Env checkers
// memoise verdicts, and broadcast-tree pair spaces exceed the default pair
// budget.
func stressChecker(workers int) *equiv.Checker {
	var ch *equiv.Checker
	if workers > 1 {
		ch = equiv.NewParallelChecker(nil, workers)
	} else {
		ch = equiv.NewChecker(nil)
	}
	ch.MaxPairs = 1 << 16
	ch.Certify = true
	return ch
}

// lawStressAgree is the stress-topology differential law: on sampled stress
// pairs, the sequential pair engine, the work-stealing parallel pair engine
// and the partition-refinement engine must return the same verdict for the
// two autonomous relations (strong step, strong barbed), their Results must
// be bit-identical across worker counts, and every certificate they emit
// must pass the independent verifier. A violation here shrinks like any
// other law: bpifuzz minimises the topology to a smallest disagreeing pair.
func lawStressAgree() Law {
	return Law{
		Name:   "stress/agree",
		Doc:    "sequential, parallel and refinement engines (and their certificates) agree on stress-topology pairs",
		Config: richConfig(), // unused by Gen; stress terms are parameterised, not random ASTs
		Gen:    stressPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			// One autonomous LTS serves both refinement verdicts.
			g, err := lts.Explore(semantics.NewSystem(nil), []syntax.Proc{p, q},
				lts.Options{AutonomousOnly: true, MaxStates: 1 << 15})
			if err != nil {
				return "", err
			}
			if g.Truncated {
				return "", nil // refiner needs the full graph; vacuous at this budget
			}
			rels := []struct {
				name string
				pair func(ch *equiv.Checker) (equiv.Result, error)
				ref  func(g *lts.Graph) (*cert.Certificate, bool, error)
			}{
				{
					"step",
					func(ch *equiv.Checker) (equiv.Result, error) { return ch.StepCtx(ctx, p, q, false) },
					refine.CertifyStrongStep,
				},
				{
					"barbed",
					func(ch *equiv.Checker) (equiv.Result, error) { return ch.BarbedCtx(ctx, p, q, false) },
					refine.CertifyStrongBarbed,
				},
			}
			for _, rel := range rels {
				seq, err := rel.pair(stressChecker(1))
				if err != nil {
					return "", err
				}
				for _, w := range []int{2, 4} {
					par, err := rel.pair(stressChecker(w))
					if err != nil {
						return "", err
					}
					if seq.Related != par.Related || seq.Pairs != par.Pairs || seq.Reason != par.Reason {
						return fmt.Sprintf("%s: parallel engine (workers=%d) diverges: related %v/%v pairs %d/%d",
							rel.name, w, seq.Related, par.Related, seq.Pairs, par.Pairs), nil
					}
				}
				if seq.Cert == nil {
					return rel.name + ": certifying checker returned no certificate", nil
				}
				if err := cert.Verify(seq.Cert); err != nil {
					return fmt.Sprintf("%s: pair-engine certificate rejected: %v", rel.name, err), nil
				}
				crt, ok, err := rel.ref(g)
				if err != nil {
					return "", err
				}
				if ok != seq.Related {
					return fmt.Sprintf("%s: refinement=%v pair engine=%v", rel.name, ok, seq.Related), nil
				}
				if crt == nil {
					return rel.name + ": refiner returned no certificate", nil
				}
				if err := cert.Verify(crt); err != nil {
					return fmt.Sprintf("%s: refiner certificate rejected: %v", rel.name, err), nil
				}
			}
			return "", nil
		},
	}
}
