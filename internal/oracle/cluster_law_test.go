package oracle

import (
	"context"
	"errors"
	"testing"

	"bpi/internal/parser"
	"bpi/internal/service"
	"bpi/internal/syntax"
)

// TestClusterLawHoldsOnWitnessPairs runs cluster/agree directly on pairs
// covering both verdicts and both modes: every node of a healthy 3-node
// cluster must agree with the direct sequential checker (empty detail, no
// engine error), routed and cache-hit paths included.
func TestClusterLawHoldsOnWitnessPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 3-node clusters; skipped in -short")
	}
	law := lawClusterAgree()
	env := NewEnv(2)
	pairs := [][2]string{
		{"a! | b!", "a!.b! + b!.a!"}, // related, strong and weak
		{"tau.a!", "a!"},             // related weak only
		{"a!", "b!"},                 // unrelated in both modes
		{"nu x.a!(x)", "nu y.a!(y)"}, // restriction + alpha-equivalence
	}
	for _, pq := range pairs {
		p, err := parser.Parse(pq[0])
		if err != nil {
			t.Fatal(err)
		}
		q, err := parser.Parse(pq[1])
		if err != nil {
			t.Fatal(err)
		}
		detail, err := law.Check(context.Background(), env, p, q)
		if err != nil {
			t.Fatalf("(%s, %s): engine error: %v", pq[0], pq[1], err)
		}
		if detail != "" {
			t.Errorf("(%s, %s): cluster/agree violated: %s", pq[0], pq[1], detail)
		}
	}
}

// TestClusterLawRegistered: the law is in the registry and selectable by
// name — the fourteenth law.
func TestClusterLawRegistered(t *testing.T) {
	laws, err := LawByName([]string{"cluster/agree"})
	if err != nil {
		t.Fatal(err)
	}
	if len(laws) != 1 || laws[0].Name != "cluster/agree" {
		t.Fatalf("LawByName(cluster/agree) = %v", laws)
	}
}

// TestClusterLawSurvivesCancellation: a cancelled context is an engine
// error, never a violation.
func TestClusterLawSurvivesCancellation(t *testing.T) {
	law := lawClusterAgree()
	env := NewEnv(2)
	p, err := parser.Parse("a! | b!")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse("a!.b!")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	detail, cerr := law.Check(ctx, env, p, q)
	if detail != "" {
		t.Errorf("cancelled run reported a violation: %s", detail)
	}
	if cerr == nil || !errors.Is(cerr, context.Canceled) {
		t.Errorf("cancelled run: err = %v, want context.Canceled", cerr)
	}
}

// TestStartClusterWiresMembership: StartCluster hands every node the full
// URL list with itself as SelfURL, and a remote-routed verdict reports the
// serving peer while the forwarded request is counted on the owner.
func TestStartClusterWiresMembership(t *testing.T) {
	nodes, err := StartCluster(3, service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	if len(nodes) != 3 {
		t.Fatalf("StartCluster(3) returned %d nodes", len(nodes))
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n.URL() == "" || seen[n.URL()] {
			t.Fatalf("node URL %q empty or duplicated", n.URL())
		}
		seen[n.URL()] = true
		cs := n.Service().Cluster()
		if cs.Peers != 3 {
			t.Fatalf("node %s sees %d peers, want 3", n.URL(), cs.Peers)
		}
	}
	// One pair through one node: whichever node owns it, all three report
	// agreeing verdicts, and the total forwarded count across the cluster
	// matches the number of non-owner queries.
	p, err := parser.Parse("a!.b!")
	if err != nil {
		t.Fatal(err)
	}
	req := service.EquivRequest{
		P: syntax.Print(p), Q: syntax.Print(p),
		Rel: service.RelLabelled, TimeoutMs: 30000,
	}
	ctx := context.Background()
	remote := 0
	for _, n := range nodes {
		resp, err := n.Equiv(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Related {
			t.Fatalf("node %s: p ~ p came back unrelated", n.URL())
		}
		if resp.Peer != "" {
			remote++
		}
	}
	forwarded := 0
	for _, n := range nodes {
		forwarded += int(n.Service().Cluster().ForwardedServed)
	}
	if remote != forwarded {
		t.Errorf("%d verdicts reported a peer but %d forwarded requests were served", remote, forwarded)
	}
}
