package oracle

import (
	"testing"

	"bpi/internal/names"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// hasBarbOn reports a syntactic output prefix on ch anywhere in t.
func hasBarbOn(t syntax.Proc, ch names.Name) bool {
	switch v := t.(type) {
	case syntax.Prefix:
		if o, ok := v.Pre.(syntax.Out); ok && o.Ch == ch {
			return true
		}
		return hasBarbOn(v.Cont, ch)
	case syntax.Sum:
		return hasBarbOn(v.L, ch) || hasBarbOn(v.R, ch)
	case syntax.Par:
		return hasBarbOn(v.L, ch) || hasBarbOn(v.R, ch)
	case syntax.Res:
		return hasBarbOn(v.Body, ch)
	case syntax.Match:
		return hasBarbOn(v.Then, ch) || hasBarbOn(v.Else, ch)
	default:
		return false
	}
}

// TestShrinkPairReachesMinimum: with the predicate "p mentions an output on
// a", any big violating term must shrink to the two-node witness a!.
func TestShrinkPairReachesMinimum(t *testing.T) {
	g := brand.New(3, brand.Default())
	pred := func(p, q syntax.Proc) bool { return hasBarbOn(p, "a") }
	found := 0
	for i := 0; i < 40; i++ {
		p, q := g.Term(), g.Term()
		if !pred(p, q) {
			continue
		}
		found++
		sp, sq, _ := ShrinkPair(p, q, pred, 0)
		if !pred(sp, sq) {
			t.Fatalf("shrinker lost the property: %s", syntax.String(sp))
		}
		if got := syntax.Size(sp); got > 2 {
			t.Errorf("p shrank to %d nodes (%s), want the minimal witness a!",
				got, syntax.String(sp))
		}
		if _, isNil := sq.(syntax.Nil); !isNil {
			t.Errorf("unconstrained q should shrink to nil, got %s", syntax.String(sq))
		}
	}
	if found == 0 {
		t.Fatal("generator never produced an a-output — broken sampling")
	}
}

// TestShrinkMergesNames: a predicate needing two equal channel names is
// reached from distinct ones via the fusion move.
func TestShrinkMergesNames(t *testing.T) {
	// Violation: p and q output on the same channel. Start with p=a!.b!,
	// q=b!.c! — property holds via b; the minimum is one shared channel
	// with both terms two nodes.
	pred := func(p, q syntax.Proc) bool {
		for _, ch := range []names.Name{"a", "b", "c"} {
			if hasBarbOn(p, ch) && hasBarbOn(q, ch) {
				return true
			}
		}
		return false
	}
	p := syntax.Send("a", nil, syntax.SendN("b"))
	q := syntax.Send("b", nil, syntax.SendN("c"))
	sp, sq, _ := ShrinkPair(p, q, pred, 0)
	if !pred(sp, sq) {
		t.Fatal("shrinker lost the property")
	}
	if syntax.Size(sp)+syntax.Size(sq) > 4 {
		t.Errorf("pair shrank to %s / %s (%d nodes), want 4 total",
			syntax.String(sp), syntax.String(sq), syntax.Size(sp)+syntax.Size(sq))
	}
}

// TestShrinkCandidatesStrictlySmaller: every structural candidate strictly
// decreases the shrink weight (fusions are handled separately), so greedy
// shrinking terminates.
func TestShrinkCandidatesStrictlySmaller(t *testing.T) {
	g := brand.New(5, brand.Default())
	for i := 0; i < 60; i++ {
		p := g.Term()
		for _, c := range shrinkCandidates(p) {
			if weight(c) >= weight(p) {
				t.Fatalf("candidate %s (weight %d) not lighter than %s (weight %d)",
					syntax.String(c), weight(c), syntax.String(p), weight(p))
			}
		}
	}
}
