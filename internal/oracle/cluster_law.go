package oracle

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"bpi/internal/cert"
	"bpi/internal/cluster"
	"bpi/internal/equiv"
	"bpi/internal/ledger"
	"bpi/internal/service"
	"bpi/internal/syntax"
)

// clusterVerdict is the byte-comparable projection of an equivalence
// verdict: what the caller acts on, stripped of transport metadata
// (elapsed time, cache flags, serving peer) and of the pairs-explored work
// counter, which legitimately varies with store memoisation.
type clusterVerdict struct {
	Related bool   `json:"related"`
	Reason  string `json:"reason,omitempty"`
}

func verdictBytes(related bool, reason string) []byte {
	b, err := json.Marshal(clusterVerdict{Related: related, Reason: reason})
	if err != nil {
		// Marshalling two scalar fields cannot fail.
		panic(err)
	}
	return b
}

// lawClusterAgree is the distribution law: a 3-node cluster must be
// observationally identical to one sequential checker. Every batch verdict
// — whether the queried node owned the pair, routed it to its rendezvous
// owner, or served it from its verdict cache — must byte-agree with direct
// sequential computation (up to the cache's deliberate orientation
// normalisation), and every verdict must carry a certificate the
// independent verifier accepts (for routed pairs that is exactly the
// fail-closed acceptance evidence: the peer's certificate re-verified).
// The law also holds the routing itself to account: with all peers
// healthy, a non-owned pair must be served by its owner (a silent local
// fallback would hide a broken peer path), and an owned pair must never
// report a peer.
func lawClusterAgree() Law {
	return Law{
		Name:   "cluster/agree",
		Doc:    "3-node batch verdicts — owned, routed and cache-hit — byte-agree with the direct sequential checker, certificates verifier-passing",
		Config: proverConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			// Direct reference verdicts — one FRESH sequential checker per
			// row, sharing no state with each other or with any node. Both
			// orientations are decided: the batch then carries distinct
			// request rows that collapse onto one canonical pair key, and
			// since the verdict cache normalises orientation (PairKey sorts
			// its term keys), a row's verdict may byte-agree with either
			// orientation's direct computation — but never with anything
			// else.
			type row struct {
				p, q syntax.Proc
				weak bool
				res  equiv.Result
			}
			rows := []row{
				{p: p, q: q, weak: false},
				{p: p, q: q, weak: true},
				{p: q, q: p, weak: false},
				{p: q, q: p, weak: true},
			}
			for i := range rows {
				ch := equiv.NewChecker(nil)
				ch.Certify = true
				r, err := ch.LabelledCtx(ctx, rows[i].p, rows[i].q, rows[i].weak)
				if err != nil {
					return "", err
				}
				rows[i].res = r
			}
			// mirror[i] is the row deciding the same canonical pair as row
			// i in the opposite orientation.
			mirror := []int{2, 3, 0, 1}

			nodes, err := StartCluster(3, service.Config{Workers: 2})
			if err != nil {
				return "", err
			}
			defer func() {
				for _, n := range nodes {
					n.Close()
				}
			}()
			urls := make([]string, len(nodes))
			for i, n := range nodes {
				urls[i] = n.URL()
			}

			batch := service.BatchRequest{}
			for _, w := range rows {
				batch.Pairs = append(batch.Pairs, service.EquivRequest{
					P: syntax.Print(w.p), Q: syntax.Print(w.q),
					Rel: service.RelLabelled, Weak: w.weak,
					Cert: true, TimeoutMs: 30000,
				})
			}

			for ni, node := range nodes {
				// The same rendezvous membership the nodes run lets the law
				// predict, per pair, which node must serve it.
				router, rerr := cluster.NewRouter(node.URL(), urls)
				if rerr != nil {
					return "", rerr
				}
				// Round 0 is cold (owned or routed); round 1 repeats the
				// identical batch and must be served from the verdict cache.
				for round := 0; round < 2; round++ {
					items, trailer, berr := node.Batch(ctx, batch)
					if berr != nil {
						return "", berr
					}
					if !trailer.Done || trailer.Total != len(batch.Pairs) ||
						trailer.Succeeded != len(batch.Pairs) || trailer.Failed != 0 || trailer.Shed != 0 {
						return fmt.Sprintf("node %d round %d: healthy batch accounted as %+v", ni, round, trailer), nil
					}
					if len(items) != len(batch.Pairs) {
						return fmt.Sprintf("node %d round %d: %d items for %d pairs", ni, round, len(items), len(batch.Pairs)), nil
					}
					for _, it := range items {
						if it.Index < 0 || it.Index >= len(rows) {
							return fmt.Sprintf("node %d round %d: item index %d out of range", ni, round, it.Index), nil
						}
						w := rows[it.Index]
						if it.Error != nil || it.Equiv == nil {
							return fmt.Sprintf("node %d round %d pair %d: typed error on a healthy cluster: %+v", ni, round, it.Index, it.Error), nil
						}
						m := rows[mirror[it.Index]]
						got := verdictBytes(it.Equiv.Related, it.Equiv.Reason)
						want := verdictBytes(w.res.Related, w.res.Reason)
						wantM := verdictBytes(m.res.Related, m.res.Reason)
						if !bytes.Equal(got, want) && !bytes.Equal(got, wantM) {
							return fmt.Sprintf("node %d round %d pair %d (weak=%t): cluster verdict %s, direct checker %s (mirrored %s)",
								ni, round, it.Index, w.weak, got, want, wantM), nil
						}
						if it.Equiv.Certificate == nil {
							return fmt.Sprintf("node %d round %d pair %d: verdict without a certificate", ni, round, it.Index), nil
						}
						if verr := cert.Verify(it.Equiv.Certificate); verr != nil {
							return fmt.Sprintf("node %d round %d pair %d: certificate rejected by the verifier: %v", ni, round, it.Index, verr), nil
						}
						kp := syntax.Key(syntax.Simplify(w.p))
						kq := syntax.Key(syntax.Simplify(w.q))
						owner := router.Owner(ledger.PairKey(service.RelLabelled, w.weak, kp, kq))
						if round == 1 {
							if !it.Equiv.Cached {
								return fmt.Sprintf("node %d pair %d: repeated batch missed the verdict cache", ni, it.Index), nil
							}
							continue
						}
						if it.Equiv.Cached {
							// A duplicate-key sibling in the same batch
							// finished first; the cache hit already agreed
							// above, and carries no routing obligation.
							continue
						}
						if owner == node.URL() {
							if it.Equiv.Peer != "" {
								return fmt.Sprintf("node %d pair %d: owned pair reported peer %q", ni, it.Index, it.Equiv.Peer), nil
							}
						} else if it.Equiv.Peer != owner {
							return fmt.Sprintf("node %d pair %d: owner is %s but verdict came from %q (silent fallback with all peers healthy)",
								ni, it.Index, owner, it.Equiv.Peer), nil
						}
					}
				}
			}
			return "", nil
		},
	}
}
