package oracle

import (
	"context"
	"fmt"
	"os"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/ledger"
	"bpi/internal/syntax"
)

// lawLedgerRoundtrip is the persistence law: a certified verdict that goes
// through the full ledger lifecycle — record construction, append, seal,
// process death (Close), and a fresh Open with full verification — must come
// back exactly as decided, with its certificate still accepted and a sealed
// inclusion proof that verifies from the root alone. The law fires when any
// of those layers drops, rejects or rewrites a verdict it should preserve;
// disk-environment failures (no temp space, etc.) surface as engine errors,
// never as violations.
func lawLedgerRoundtrip() Law {
	return Law{
		Name:   "ledger/roundtrip",
		Doc:    "decide → persist → reopen: the replayed verdict, certificate and inclusion proof all agree with fresh computation, strong and weak",
		Config: proverConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			ch := equiv.NewChecker(nil)
			ch.Certify = true

			type decided struct {
				weak bool
				res  equiv.Result
				rec  ledger.Record
			}
			var verdicts []decided
			for _, weak := range []bool{false, true} {
				r, err := ch.LabelledCtx(ctx, p, q, weak)
				if err != nil {
					return "", err
				}
				if r.Cert == nil {
					return fmt.Sprintf("weak=%t: certifying checker returned no certificate", weak), nil
				}
				rec, err := ledger.NewRecord(cert.RelLabelled, weak, 0, 0, 0,
					r.Related, r.Pairs, r.Reason, r.Cert)
				if err != nil {
					return fmt.Sprintf("weak=%t: honest verdict refused by NewRecord: %v", weak, err), nil
				}
				verdicts = append(verdicts, decided{weak: weak, res: r, rec: rec})
			}

			dir, err := os.MkdirTemp("", "bpifuzz-ledger-")
			if err != nil {
				return "", err
			}
			defer os.RemoveAll(dir)

			// First life: append both verdicts; BatchSize 1 seals each
			// immediately, so the reopened proof path is exercised too.
			l, err := ledger.Open(dir, ledger.Config{BatchSize: 1, MaxWait: -1})
			if err != nil {
				return "", err
			}
			for _, d := range verdicts {
				if _, err := l.Append(d.rec); err != nil {
					l.Close()
					return "", err
				}
			}
			if err := l.Close(); err != nil {
				return "", err
			}

			// Second life: Open re-verifies every layer.
			l2, err := ledger.Open(dir, ledger.Config{BatchSize: 1, MaxWait: -1})
			if err != nil {
				return "", err
			}
			defer l2.Close()
			st := l2.Stats()
			if st.Rejected != 0 || st.ChainBroken {
				return fmt.Sprintf("clean ledger damaged on reopen: %d rejected, chain_broken=%t (%v)",
					st.Rejected, st.ChainBroken, l2.Rejections()), nil
			}
			if st.Records != len(verdicts) {
				return fmt.Sprintf("persisted %d verdicts, reopened %d", len(verdicts), st.Records), nil
			}

			replayed := map[string]*ledger.Record{}
			certs := map[string]*cert.Certificate{}
			l2.Replay(func(r *ledger.Record, crt *cert.Certificate) {
				replayed[r.KeyHash] = r
				certs[r.KeyHash] = crt
			})
			for _, d := range verdicts {
				got, ok := replayed[d.rec.KeyHash]
				if !ok {
					return fmt.Sprintf("weak=%t: verdict not replayed after reopen", d.weak), nil
				}
				if got.Related != d.res.Related || got.Rel != cert.RelLabelled || got.Weak != d.weak {
					return fmt.Sprintf("weak=%t: replayed verdict drifted: related=%t rel=%s weak=%t, decided related=%t",
						d.weak, got.Related, got.Rel, got.Weak, d.res.Related), nil
				}
				crt := certs[d.rec.KeyHash]
				if crt == nil {
					return fmt.Sprintf("weak=%t: replayed verdict lost its certificate", d.weak), nil
				}
				if verr := cert.Verify(crt); verr != nil {
					return fmt.Sprintf("weak=%t: replayed certificate rejected: %v", d.weak, verr), nil
				}
				proof, perr := l2.Proof(d.rec.KeyHash)
				if perr != nil {
					return fmt.Sprintf("weak=%t: no inclusion proof for a sealed record: %v", d.weak, perr), nil
				}
				if verr := ledger.VerifyProof(proof); verr != nil {
					return fmt.Sprintf("weak=%t: inclusion proof does not verify: %v", d.weak, verr), nil
				}
			}
			return "", nil
		},
	}
}
