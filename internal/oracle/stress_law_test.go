package oracle

import (
	"context"
	"testing"

	brand "bpi/internal/rand"
	"bpi/internal/stress"
	"bpi/internal/syntax"
)

// TestStressAgreeHolds drives the stress/agree law over a spread of seeds:
// every sampled topology pair must pass (the engines are believed correct,
// so any non-empty detail is a real cross-engine disagreement).
func TestStressAgreeHolds(t *testing.T) {
	law := lawStressAgree()
	env := NewEnv(4)
	for seed := int64(0); seed < 12; seed++ {
		g := brand.New(seed, law.Config)
		p, q, tag := law.Gen(g)
		detail, err := law.Check(context.Background(), env, p, q)
		if err != nil {
			t.Fatalf("seed %d (%s): engine error: %v", seed, tag, err)
		}
		if detail != "" {
			t.Errorf("seed %d (%s): %s", seed, tag, detail)
		}
	}
}

// TestStressDisagreementShrinks plants a stress-law "violation" — here the
// stand-in predicate is a negative step verdict, the shape a real engine
// disagreement on a broken rotation would have — on a mid-size gossip mesh
// and checks the shrinker minimises it to a small topology instead of
// reporting the 17-component original.
func TestStressDisagreementShrinks(t *testing.T) {
	p := stress.Mesh(8)
	parts := syntax.ParList(stress.Rotate(p))
	q := syntax.Group(parts[1:]...) // dropped a station: not step-bisimilar
	pred := func(cp, cq syntax.Proc) bool {
		r, err := stressChecker(1).Step(cp, cq, false)
		return err == nil && !r.Related
	}
	if !pred(p, q) {
		t.Fatal("planted pair is not a violation — broken setup")
	}
	sp, sq, spent := ShrinkPair(p, q, pred, 0)
	if !pred(sp, sq) {
		t.Fatal("shrinker lost the violation")
	}
	before := syntax.Size(p) + syntax.Size(q)
	after := syntax.Size(sp) + syntax.Size(sq)
	if after > before/4 {
		t.Errorf("pair only shrank from %d to %d nodes in %d evals: %s / %s",
			before, after, spent, syntax.String(sp), syntax.String(sq))
	}
}
