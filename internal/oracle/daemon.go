package oracle

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"

	"bpi/internal/service"
)

// Daemon is an in-process bpid instance on a loopback listener, plus the
// minimal client the engines/agree law needs. Running the real HTTP stack
// (handlers, verdict LRU, worker pool) keeps the differential check honest:
// the daemon path shares no in-memory state with Env.Seq / Env.Par.
type Daemon struct {
	srv  *service.Server
	http *http.Server
	lis  net.Listener
	base string
	hc   *http.Client
}

// StartDaemon boots a bpid service on 127.0.0.1:0.
func StartDaemon(cfg service.Config) (*Daemon, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := service.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}
	d := &Daemon{
		srv:  srv,
		http: hs,
		lis:  lis,
		base: "http://" + lis.Addr().String(),
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
	go hs.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return d, nil
}

// StartCluster boots n daemons on loopback listeners sharing one static
// membership: all listeners are bound first (so the full URL list is known
// before any service starts), then each node is built with Peers = every
// URL and SelfURL = its own — exactly what `bpid -peers … -self …` wires.
// Per-node Config fields other than Peers/SelfURL are taken from cfg.
func StartCluster(n int, cfg service.Config) ([]*Daemon, error) {
	liss := make([]net.Listener, 0, n)
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range liss {
				l.Close()
			}
			return nil, err
		}
		liss = append(liss, lis)
		urls = append(urls, "http://"+lis.Addr().String())
	}
	nodes := make([]*Daemon, n)
	for i, lis := range liss {
		c := cfg
		c.Peers = append([]string(nil), urls...)
		c.SelfURL = urls[i]
		srv := service.New(c)
		hs := &http.Server{Handler: srv.Handler()}
		nodes[i] = &Daemon{
			srv:  srv,
			http: hs,
			lis:  lis,
			base: urls[i],
			hc:   &http.Client{Timeout: 60 * time.Second},
		}
		go hs.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	}
	return nodes, nil
}

// URL returns the daemon's base URL.
func (d *Daemon) URL() string { return d.base }

// Service exposes the underlying server, so tests and laws can read its
// cluster counters.
func (d *Daemon) Service() *service.Server { return d.srv }

// Close drains and stops the daemon.
func (d *Daemon) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	if herr := d.http.Shutdown(ctx); err == nil {
		err = herr
	}
	return err
}

// Equiv posts one equivalence query.
func (d *Daemon) Equiv(ctx context.Context, req service.EquivRequest) (*service.EquivResponse, error) {
	var resp service.EquivResponse
	if err := d.post(ctx, "/v1/equiv", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch posts one /v1/equiv/batch request and reads the entire NDJSON
// stream: per-pair items (returned sorted by request index) plus the
// mandatory done=true trailer. A stream without a trailer was truncated
// and is an error, as is any line after the trailer.
func (d *Daemon) Batch(ctx context.Context, req service.BatchRequest) ([]service.BatchItem, service.BatchTrailer, error) {
	var trailer service.BatchTrailer
	body, err := json.Marshal(req)
	if err != nil {
		return nil, trailer, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, d.base+"/v1/equiv/batch", bytes.NewReader(body))
	if err != nil {
		return nil, trailer, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := d.hc.Do(hreq)
	if err != nil {
		return nil, trailer, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
		return nil, trailer, fmt.Errorf("oracle: daemon /v1/equiv/batch: status %d: %s", hresp.StatusCode, raw)
	}
	var items []service.BatchItem
	sawTrailer := false
	sc := bufio.NewScanner(hresp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawTrailer {
			return nil, trailer, fmt.Errorf("oracle: daemon batch stream continues after its trailer")
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, trailer, fmt.Errorf("oracle: daemon batch stream line: %w", err)
		}
		if probe.Done != nil {
			if err := json.Unmarshal(line, &trailer); err != nil {
				return nil, trailer, fmt.Errorf("oracle: daemon batch trailer: %w", err)
			}
			sawTrailer = true
			continue
		}
		var item service.BatchItem
		if err := json.Unmarshal(line, &item); err != nil {
			return nil, trailer, fmt.Errorf("oracle: daemon batch item: %w", err)
		}
		items = append(items, item)
	}
	if err := sc.Err(); err != nil {
		return nil, trailer, err
	}
	if !sawTrailer {
		return nil, trailer, fmt.Errorf("oracle: daemon batch stream truncated (no trailer)")
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Index < items[j].Index })
	return items, trailer, nil
}

func (d *Daemon) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, d.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := d.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return err
	}
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("oracle: daemon %s: status %d: %s", path, hresp.StatusCode, raw)
	}
	return json.Unmarshal(raw, out)
}
