package oracle

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"bpi/internal/service"
)

// Daemon is an in-process bpid instance on a loopback listener, plus the
// minimal client the engines/agree law needs. Running the real HTTP stack
// (handlers, verdict LRU, worker pool) keeps the differential check honest:
// the daemon path shares no in-memory state with Env.Seq / Env.Par.
type Daemon struct {
	srv  *service.Server
	http *http.Server
	lis  net.Listener
	base string
	hc   *http.Client
}

// StartDaemon boots a bpid service on 127.0.0.1:0.
func StartDaemon(cfg service.Config) (*Daemon, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := service.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}
	d := &Daemon{
		srv:  srv,
		http: hs,
		lis:  lis,
		base: "http://" + lis.Addr().String(),
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
	go hs.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return d, nil
}

// URL returns the daemon's base URL.
func (d *Daemon) URL() string { return d.base }

// Close drains and stops the daemon.
func (d *Daemon) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	if herr := d.http.Shutdown(ctx); err == nil {
		err = herr
	}
	return err
}

// Equiv posts one equivalence query.
func (d *Daemon) Equiv(ctx context.Context, req service.EquivRequest) (*service.EquivResponse, error) {
	var resp service.EquivResponse
	if err := d.post(ctx, "/v1/equiv", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (d *Daemon) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, d.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := d.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return err
	}
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("oracle: daemon %s: status %d: %s", path, hresp.StatusCode, raw)
	}
	return json.Unmarshal(raw, out)
}
