package oracle

import (
	"context"
	"fmt"

	"bpi/internal/axioms"
	"bpi/internal/equiv"
	"bpi/internal/lts"
	"bpi/internal/names"
	"bpi/internal/obs"
	brand "bpi/internal/rand"
	"bpi/internal/semantics"
	"bpi/internal/service"
	"bpi/internal/syntax"
)

// mixedPair draws raw material for a differential law: a term paired with
// an equivalence-preserving mutant, a guaranteed strong-breaking mutant, or
// an independently drawn term.
func mixedPair(g *brand.Gen) (syntax.Proc, syntax.Proc, string) {
	p := g.Term()
	switch g.Intn(3) {
	case 0:
		return p, g.MutateEquiv(p), "equiv-mutant"
	case 1:
		return p, g.MutateBreak(p), "break-mutant"
	default:
		return p, g.Term(), "independent"
	}
}

// richConfig is the generation profile for engine-level laws: all
// constructors (including restriction), three free names, depth 3.
func richConfig() brand.Config {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	return cfg
}

// proverConfig is the profile for prover-backed laws (see
// brand.OracleConfig): restriction-free, two free names, short prefixes.
func proverConfig() brand.Config { return brand.OracleConfig() }

// ---- Theorem 1: the three bisimilarities coincide ------------------------

// lawTheorem1 checks the mechanically checkable half of Theorem 1: the two
// inclusions rooted at labelled bisimilarity, ~ ⊆ ~b (Lemma 10) and
// ~ ⊆ ~φ (Lemma 11), strong and weak. Without context closure the two
// coarsenings are mutually INCOMPARABLE — τ + c̄ vs c̄ is step- but not
// barbed-bisimilar (step matches autonomous moves label-blindly, barbed
// matches τ by τ), while c̄.ā vs c̄ + c̄.ā is barbed- but not step-bisimilar
// (barbed ignores output moves) — both found by this fuzzer, so no chained
// form holds per-pair. The converse directions hold only up to context
// closure (the paper's coincidence statement quantifies over contexts),
// which no per-pair verdict can witness directly; the congruence-level
// agreement is exercised by inclusions/lattice and axioms/decide-agree.
func lawTheorem1(weak bool) Law {
	name := "theorem1/strong"
	mode := "strong"
	if weak {
		name = "theorem1/weak"
		mode = "weak"
	}
	return Law{
		Name:   name,
		Doc:    "labelled ⊆ barbed (Lemma 10) and labelled ⊆ step (Lemma 11) " + mode + " bisimilarity on finite terms",
		Config: richConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			lab, err := env.Seq.LabelledCtx(ctx, p, q, weak)
			if err != nil {
				return "", err
			}
			if !lab.Related {
				return "", nil // both inclusions are vacuous
			}
			step, err := env.Seq.StepCtx(ctx, p, q, weak)
			if err != nil {
				return "", err
			}
			barb, err := env.Seq.BarbedCtx(ctx, p, q, weak)
			if err != nil {
				return "", err
			}
			switch {
			case !barb.Related:
				return fmt.Sprintf("%s: labelled bisimilar but not barbed bisimilar (Lemma 10 violated)", mode), nil
			case !step.Related:
				return fmt.Sprintf("%s: labelled bisimilar but not step bisimilar (Lemma 11 violated)", mode), nil
			}
			return "", nil
		},
	}
}

// ---- Inclusion lattice ----------------------------------------------------

func lawInclusions() Law {
	return Law{
		Name:   "inclusions/lattice",
		Doc:    "~c ⊆ ~+ ⊆ ~ ⊆ ≈ (congruence implies one-step implies labelled implies weak)",
		Config: proverConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			cong, err := env.Seq.CongruenceCtx(ctx, p, q, false)
			if err != nil {
				return "", err
			}
			one, err := env.Seq.OneStepCtx(ctx, p, q, false)
			if err != nil {
				return "", err
			}
			lab, err := env.Seq.LabelledCtx(ctx, p, q, false)
			if err != nil {
				return "", err
			}
			weak, err := env.Seq.LabelledCtx(ctx, p, q, true)
			if err != nil {
				return "", err
			}
			switch {
			case cong && !one:
				return "congruent but not one-step bisimilar (~c ⊄ ~+)", nil
			case one && !lab.Related:
				return "one-step bisimilar but not labelled bisimilar (~+ ⊄ ~)", nil
			case lab.Related && !weak.Related:
				return "strongly but not weakly bisimilar (~ ⊄ ≈)", nil
			}
			return "", nil
		},
	}
}

// ---- Theorems 6 & 7: prover agreement ------------------------------------

func lawDecideAgree() Law {
	return Law{
		Name:   "axioms/decide-agree",
		Doc:    "axioms.Decide(p,q) iff p ~c q on finite terms (soundness: Thm 6; completeness: Thm 7)",
		Config: proverConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			sem, err := env.Seq.CongruenceCtx(ctx, p, q, false)
			if err != nil {
				return "", err
			}
			pr := env.NewProver()
			syn, err := pr.DecideCtx(ctx, p, q)
			if err != nil {
				return "", err
			}
			if sem != syn {
				if syn {
					return fmt.Sprintf("UNSOUND: A ⊢ p = q but p ≁c q (semantics=%v prover=%v)", sem, syn), nil
				}
				return fmt.Sprintf("INCOMPLETE: p ~c q but A ⊬ p = q (semantics=%v prover=%v)", sem, syn), nil
			}
			return "", nil
		},
	}
}

// ---- Tables 6/7: every axiom instance is sound ---------------------------

func lawAxiomInstances() Law {
	cfg := proverConfig()
	cfg.Names = []names.Name{"a", "b", "c"}
	cfg.MaxDepth = 2
	cat := axioms.Catalogue()
	return Law{
		Name:   "axioms/instances",
		Doc:    "every Table 6/7 axiom instance rewrites a term to a strongly congruent one (soundness per law)",
		Config: cfg,
		Gen: func(g *brand.Gen) (syntax.Proc, syntax.Proc, string) {
			ax := cat[g.Intn(len(cat))]
			m := axioms.Material{
				P: g.Term(), Q: g.Term(), R: g.Term(),
				A: g.PickName(), B: g.PickName(), C: g.PickName(),
			}
			avoid := syntax.FreeNames(m.P).AddAll(syntax.FreeNames(m.Q)).
				AddAll(syntax.FreeNames(m.R)).Add(m.A).Add(m.B).Add(m.C)
			m.X = syntax.FreshVariant("z", avoid)
			lhs, rhs, ok := ax.Inst(m)
			if !ok {
				// Side condition unmet: vacuous instance.
				return syntax.PNil, syntax.PNil, ax.Name + " (vacuous)"
			}
			return lhs, rhs, ax.Name
		},
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			ok, err := env.Seq.CongruenceCtx(ctx, p, q, false)
			if err != nil {
				return "", err
			}
			if !ok {
				return "axiom instance is not semantically congruent", nil
			}
			return "", nil
		},
	}
}

// ---- Section 4: ~c is closed under substitution --------------------------

func lawSubstClosure() Law {
	return Law{
		Name:   "subst/congruence-closed",
		Doc:    "p ~c q implies pσ ~ qσ for every fusion σ of the free names (Section 4)",
		Config: proverConfig(),
		Gen: func(g *brand.Gen) (syntax.Proc, syntax.Proc, string) {
			p := g.Term()
			// Bias toward related pairs: closure is vacuous on unrelated ones.
			if g.Intn(4) != 0 {
				return p, g.MutateEquiv(p), "equiv-mutant"
			}
			return p, g.Term(), "independent"
		},
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			related, err := env.Seq.CongruenceCtx(ctx, p, q, false)
			if err != nil {
				return "", err
			}
			if !related {
				return "", nil // vacuous
			}
			fn := syntax.FreeNames(p).AddAll(syntax.FreeNames(q)).Sorted()
			for _, sub := range names.AllFusions(fn, fn) {
				r, err := env.Seq.LabelledCtx(ctx, syntax.Apply(p, sub), syntax.Apply(q, sub), false)
				if err != nil {
					return "", err
				}
				if !r.Related {
					return fmt.Sprintf("p ~c q but pσ ≁ qσ for σ=%v", sub), nil
				}
			}
			return "", nil
		},
	}
}

// ---- Observability: counters are measurements, not noise ------------------

// lawObsConsistent checks that the obs counters threaded through the engines
// are semantically meaningful: a counter total must equal the quantity the
// engine itself reports, and it must not depend on HOW the work was
// scheduled. Fresh checkers are built per leg — the Env checkers memoise
// verdicts, and a cached verdict reports Pairs: 0, which would make every
// comparison vacuous.
func lawObsConsistent() Law {
	return Law{
		Name:   "obs/consistent",
		Doc:    "engine counters agree with engine results and are identical across sequential, parallel and daemon scheduling",
		Config: richConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			run := func(workers int) (equiv.Result, map[string]int64, error) {
				tr := obs.New()
				var ch *equiv.Checker
				if workers > 1 {
					ch = equiv.NewParallelChecker(nil, workers)
				} else {
					ch = equiv.NewChecker(nil)
				}
				ch.Obs = tr
				ch.Store().SetObs(tr)
				r, err := ch.LabelledCtx(ctx, p, q, false)
				return r, tr.Counters(), err
			}
			seq, seqC, err := run(1)
			if err != nil {
				return "", err
			}
			par, parC, err := run(4)
			if err != nil {
				return "", err
			}
			if seq.Related != par.Related {
				return fmt.Sprintf("verdict differs: sequential=%v parallel=%v", seq.Related, par.Related), nil
			}
			if got := seqC["equiv.pairs_expanded"]; got != int64(seq.Pairs) {
				return fmt.Sprintf("equiv.pairs_expanded=%d but Result.Pairs=%d (sequential)", got, seq.Pairs), nil
			}
			for _, name := range []string{"equiv.pairs_expanded", "equiv.worklist_pops"} {
				if seqC[name] != parC[name] {
					return fmt.Sprintf("%s: sequential=%d parallel=%d (scheduling leaked into a semantic counter)",
						name, seqC[name], parC[name]), nil
				}
			}
			// LTS totals must be worker-count independent too.
			ltsStates := func(workers int) (int64, int64, error) {
				tr := obs.New()
				_, err := lts.Explore(semantics.NewSystem(nil), []syntax.Proc{p, q},
					lts.Options{AutonomousOnly: true, MaxStates: 1 << 14, Workers: workers, Obs: tr})
				c := tr.Counters()
				return c["lts.states"], c["lts.edges"], err
			}
			s1, e1, err := ltsStates(1)
			if err != nil {
				return "", err
			}
			s4, e4, err := ltsStates(4)
			if err != nil {
				return "", err
			}
			if s1 != s4 || e1 != e4 {
				return fmt.Sprintf("lts totals differ across workers: states %d vs %d, edges %d vs %d", s1, s4, e1, e4), nil
			}
			// The daemon path counts the same pair space (skip on a verdict-
			// cache hit: a cached verdict legitimately reports pairs=0).
			if env.Daemon != nil {
				cold, err := env.Daemon.Equiv(ctx, service.EquivRequest{
					P: syntax.Print(p), Q: syntax.Print(q), Rel: service.RelLabelled,
				})
				if err != nil {
					return "", err
				}
				if !cold.Cached && cold.Pairs != seq.Pairs {
					return fmt.Sprintf("daemon explored %d pairs, sequential %d", cold.Pairs, seq.Pairs), nil
				}
			}
			return "", nil
		},
	}
}

// ---- Engines agree: sequential vs parallel vs daemon ---------------------

func lawEnginesAgree() Law {
	return Law{
		Name:   "engines/agree",
		Doc:    "sequential, parallel (Workers>1) and bpid-served verdicts — including LRU cache hits — agree",
		Config: richConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			for _, weak := range []bool{false, true} {
				seq, err := env.Seq.LabelledCtx(ctx, p, q, weak)
				if err != nil {
					return "", err
				}
				par, err := env.Par.LabelledCtx(ctx, p, q, weak)
				if err != nil {
					return "", err
				}
				if seq.Related != par.Related {
					return fmt.Sprintf("weak=%v: sequential=%v parallel=%v", weak, seq.Related, par.Related), nil
				}
				if env.Daemon == nil {
					continue
				}
				req := service.EquivRequest{
					P: syntax.Print(p), Q: syntax.Print(q),
					Rel: service.RelLabelled, Weak: weak,
				}
				cold, err := env.Daemon.Equiv(ctx, req)
				if err != nil {
					return "", err
				}
				warm, err := env.Daemon.Equiv(ctx, req)
				if err != nil {
					return "", err
				}
				if cold.Related != seq.Related {
					return fmt.Sprintf("weak=%v: daemon=%v sequential=%v", weak, cold.Related, seq.Related), nil
				}
				if warm.Related != cold.Related {
					return fmt.Sprintf("weak=%v: daemon warm (cached=%v) verdict=%v differs from cold=%v",
						weak, warm.Cached, warm.Related, cold.Related), nil
				}
			}
			return "", nil
		},
	}
}
