package oracle

import (
	"context"
	"strings"
	"testing"

	"bpi/internal/parser"
	brand "bpi/internal/rand"
	"bpi/internal/service"
	"bpi/internal/syntax"
)

// testBudget keeps the in-test sweep quick; CI and bpifuzz run much larger
// budgets.
func testBudget(t *testing.T) int {
	if testing.Short() {
		return 70
	}
	return 210
}

// TestLawsHoldOnBudget: the whole registry (daemon included) on a bounded
// seeded sweep — the in-test twin of `bpifuzz -budget N`.
func TestLawsHoldOnBudget(t *testing.T) {
	env := NewEnv(4)
	d, err := StartDaemon(service.Config{Workers: 4})
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	defer d.Close()
	env.Daemon = d

	rep, err := Run(context.Background(), env, Config{Seed: 1, Budget: testBudget(t)})
	if err != nil {
		t.Fatalf("fuzz run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation:\n%s", v)
	}
	if rep.Ran != testBudget(t) {
		t.Errorf("ran %d of %d iterations", rep.Ran, testBudget(t))
	}
	for law, n := range rep.Errors {
		// Engine errors are tolerated (budget exhaustion on a huge term)
		// but should be rare; a flood means the generator profile is off.
		if n > rep.PerLaw[law]/4 {
			t.Errorf("law %s: %d/%d iterations errored", law, n, rep.PerLaw[law])
		}
	}
}

// brokenLaw deliberately claims that every generated pair is strongly
// labelled-bisimilar — false — so the fuzzer must find a violation, shrink
// it to a trivial pair, and reproduce it from the printed seed.
func brokenLaw() Law {
	return Law{
		Name:   "test/always-equiv",
		Doc:    "deliberately false: all pairs are bisimilar",
		Config: brand.OracleConfig(),
		Gen: func(g *brand.Gen) (syntax.Proc, syntax.Proc, string) {
			return g.Term(), g.Term(), "independent"
		},
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			r, err := env.Seq.LabelledCtx(ctx, p, q, false)
			if err != nil {
				return "", err
			}
			if !r.Related {
				return "pair is not bisimilar (as expected — the law is a plant)", nil
			}
			return "", nil
		},
	}
}

// TestBrokenLawIsCaughtShrunkAndReproducible is the acceptance harness for
// the shrinker: a seeded violation must shrink to ≤ 6 AST nodes and replay
// from its printed repro seed.
func TestBrokenLawIsCaughtShrunkAndReproducible(t *testing.T) {
	env := NewEnv(2)
	law := brokenLaw()
	rep, err := Run(context.Background(), env, Config{
		Seed: 7, Budget: 50, Laws: []Law{law}, MaxViolations: 3,
	})
	if err != nil {
		t.Fatalf("fuzz run: %v", err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("the deliberately broken law produced no violation")
	}
	for _, v := range rep.Violations {
		p, err := parser.Parse(v.P)
		if err != nil {
			t.Fatalf("shrunk p %q does not parse: %v", v.P, err)
		}
		q, err := parser.Parse(v.Q)
		if err != nil {
			t.Fatalf("shrunk q %q does not parse: %v", v.Q, err)
		}
		if n := syntax.Size(p) + syntax.Size(q); n > 6 {
			t.Errorf("shrunk counterexample has %d AST nodes (> 6):\n%s", n, v)
		}

		// Reproduce: a fresh run seeded with the printed repro seed and a
		// budget of one must rediscover the identical shrunk pair.
		again, err := Run(context.Background(), env, Config{
			Seed: v.ReproSeed, Budget: 1, Laws: []Law{law},
		})
		if err != nil {
			t.Fatalf("repro run: %v", err)
		}
		if len(again.Violations) != 1 {
			t.Fatalf("repro run found %d violations, want 1", len(again.Violations))
		}
		got := again.Violations[0]
		if got.P != v.P || got.Q != v.Q || got.OrigP != v.OrigP || got.OrigQ != v.OrigQ {
			t.Errorf("repro mismatch:\n  first: p=%s q=%s (orig %s / %s)\n  again: p=%s q=%s (orig %s / %s)",
				v.P, v.Q, v.OrigP, v.OrigQ, got.P, got.Q, got.OrigP, got.OrigQ)
		}
	}
}

// TestViolationPersistRoundTrip: a shrunk violation written with WriteCase
// loads back and re-checks under its law.
func TestViolationPersistRoundTrip(t *testing.T) {
	env := NewEnv(2)
	dir := t.TempDir()
	rep, err := Run(context.Background(), env, Config{
		Seed: 11, Budget: 30, Laws: []Law{brokenLaw()}, OutDir: dir, MaxViolations: 1,
	})
	if err != nil {
		t.Fatalf("fuzz run: %v", err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violation to persist")
	}
	cases, err := LoadCases(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(cases) != 1 {
		t.Fatalf("loaded %d cases, want 1", len(cases))
	}
	c := cases[0]
	if c.Law != "test/always-equiv" || c.Seed != rep.Violations[0].ReproSeed {
		t.Errorf("case metadata mismatch: %+v vs %+v", c, rep.Violations[0])
	}
	// The planted law still "fails" on the stored pair — which here proves
	// the stored pair round-tripped through print/parse with its behaviour
	// intact.
	detail, err := CheckCase(context.Background(), env, []Law{brokenLaw()}, c)
	if err != nil {
		t.Fatalf("recheck: %v", err)
	}
	if detail == "" {
		t.Errorf("stored counterexample no longer violates the planted law: %+v", c)
	}
}

// TestRegressionCorpus re-checks every persisted case under
// testdata/fuzz/regressions (repo-level corpus): all must pass their law
// now — they are regression guards for violations fixed in the past, plus
// curated tricky pairs.
func TestRegressionCorpus(t *testing.T) {
	cases, err := LoadCases("../../testdata/fuzz/regressions")
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("regression corpus is empty — expected seeded cases")
	}
	env := NewEnv(4)
	for _, c := range cases {
		detail, err := CheckCase(context.Background(), env, nil, c)
		if err != nil {
			t.Errorf("%s: %v", c.File, err)
			continue
		}
		if detail != "" {
			t.Errorf("%s: law %s violated again: %s\n  p = %s\n  q = %s",
				c.File, c.Law, detail, c.P, c.Q)
		}
	}
}

// TestLawByNameRejectsUnknown guards the CLI's -laws flag.
func TestLawByNameRejectsUnknown(t *testing.T) {
	if _, err := LawByName([]string{"no/such-law"}); err == nil {
		t.Fatal("expected an error for an unknown law")
	}
	laws, err := LawByName([]string{"theorem1/strong", "engines/agree"})
	if err != nil {
		t.Fatal(err)
	}
	if len(laws) != 2 || laws[0].Name != "theorem1/strong" {
		t.Fatalf("unexpected selection: %v", laws)
	}
	var names []string
	for _, l := range Registry() {
		names = append(names, l.Name)
	}
	if len(names) < 7 {
		t.Fatalf("registry shrank: %s", strings.Join(names, ", "))
	}
}
