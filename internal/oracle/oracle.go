// Package oracle is the differential & metamorphic testing subsystem: a
// registry of cross-layer laws that a correct reproduction of the paper
// must satisfy on every term pair, a seeded fuzz loop that hunts for
// violations, and a greedy structural shrinker that minimises any
// counterexample before it is reported.
//
// The laws are the paper's theorems read as executable invariants:
//
//   - Theorem 1: strong (and weak) barbed, step and labelled bisimilarity
//     coincide on image-finite processes — here, on finite generated terms.
//   - Theorems 6 & 7: the §5 prover (axioms.Decide) agrees with the
//     semantic congruence checker in both directions (soundness AND
//     completeness) on finite terms.
//   - Tables 6/7: every axiom instance rewrites a term to a semantically
//     congruent one.
//   - Section 4: ~c is closed under name substitutions.
//   - Engineering invariants on top of the paper: the sequential engine,
//     the parallel engine (Workers > 1) and a live bpid daemon — including
//     its LRU verdict-cache hits — must all return the same verdicts.
//   - Certificates: every verdict's replayable proof object (internal/cert)
//     must be accepted by the independent verifier, on the fresh and the
//     memoised path alike.
//   - Persistence: a certified verdict survives the full ledger lifecycle
//     (internal/ledger) — append, seal, reopen — unchanged, certificate and
//     inclusion proof included.
//   - Protocol conformance: every internal/protocols scenario — healthy or
//     fault-injected — gets the verdict its spec expects, in its own
//     relation, on every engine, certificates included.
//   - Compiled semantics: the transition programs of internal/tprog agree
//     bit-for-bit with the interpreted semantics — transition lists,
//     Table 2 discard sets, verdicts, certificate bytes and LTS graphs.
//   - Distribution: a 3-node bpid cluster — rendezvous routing, fail-closed
//     remote certificate acceptance and verdict caches included — is
//     observationally identical to one sequential checker.
//
// Everything is reproducible: iteration i of a run with seed s draws all
// randomness from mix(s + i), and every violation reports the exact
// `bpifuzz -seed` invocation that replays it alone.
package oracle

import (
	"context"
	"fmt"

	"bpi/internal/axioms"
	"bpi/internal/equiv"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// Env bundles the engines a law check may consult. Checkers share nothing:
// agreement between them is evidence, not tautology.
type Env struct {
	// Seq is the sequential reference checker.
	Seq *equiv.Checker
	// Par is a parallel checker (Workers > 1) over its own store.
	Par *equiv.Checker
	// NewProver returns a fresh §5 prover (a Prover is single-goroutine).
	NewProver func() *axioms.Prover
	// Daemon is an optional live bpid instance; laws that need it are
	// skipped when nil.
	Daemon *Daemon
}

// NewEnv returns an Env with fresh sequential and parallel checkers and no
// daemon (attach one with StartDaemon if the engines/agree law should cover
// the service layer).
func NewEnv(parWorkers int) *Env {
	if parWorkers < 2 {
		parWorkers = 4
	}
	return &Env{
		Seq:       equiv.NewChecker(nil),
		Par:       equiv.NewParallelChecker(nil, parWorkers),
		NewProver: func() *axioms.Prover { return axioms.NewProver(nil) },
	}
}

// Law is one cross-layer invariant. Gen draws a pair tuned to the law's
// cost profile (e.g. restriction-free terms with two free names for
// prover-backed laws); Check returns a non-empty detail string when the
// law is violated on (p, q).
type Law struct {
	Name string
	Doc  string
	// Gen draws a pair for this law from g (g is seeded per iteration).
	// The tag names the generation path taken (equiv-mutant, break-mutant,
	// independent, an axiom name, …) and is echoed in violation reports.
	Gen func(g *brand.Gen) (p, q syntax.Proc, tag string)
	// Config is the generation profile Gen's argument is built with.
	Config brand.Config
	// Check evaluates the law; detail == "" means it holds (or holds
	// vacuously). err reports an engine failure (budget, timeout), which
	// the fuzzer counts separately and never treats as a violation.
	Check func(ctx context.Context, env *Env, p, q syntax.Proc) (detail string, err error)
}

// Registry returns the full law registry. The slice is freshly allocated;
// callers may filter it.
func Registry() []Law {
	return []Law{
		lawTheorem1(false),
		lawTheorem1(true),
		lawInclusions(),
		lawDecideAgree(),
		lawAxiomInstances(),
		lawSubstClosure(),
		lawEnginesAgree(),
		lawObsConsistent(),
		lawCertChecks(),
		lawStressAgree(),
		lawLedgerRoundtrip(),
		lawProtocolsConform(),
		lawTprogAgree(),
		lawClusterAgree(),
	}
}

// LawByName filters the registry; unknown names return an error.
func LawByName(names []string) ([]Law, error) {
	all := Registry()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]Law{}
	for _, l := range all {
		byName[l.Name] = l
	}
	var out []Law
	for _, n := range names {
		l, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("oracle: unknown law %q", n)
		}
		out = append(out, l)
	}
	return out, nil
}
