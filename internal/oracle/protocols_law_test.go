package oracle

import (
	"context"
	"testing"

	"bpi/internal/parser"
	"bpi/internal/protocols"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// TestProtocolsConformHolds drives the protocols/conform law over enough
// seeds to sample a healthy and a fault-injected scenario of every
// algorithm family with overwhelming probability: every drawn scenario
// must pass (engines agree with the catalogue's expected verdict, all
// certificates verify).
func TestProtocolsConformHolds(t *testing.T) {
	law := lawProtocolsConform()
	env := NewEnv(4)
	algos := map[string]bool{}
	for seed := int64(0); seed < 24; seed++ {
		g := brand.New(seed, law.Config)
		p, q, tag := law.Gen(g)
		s, ok := protoScenarios()[protoKey(p, q)]
		if !ok {
			t.Fatalf("seed %d: generated pair %s is not a catalogue scenario", seed, tag)
		}
		algos[s.Algo] = true
		detail, err := law.Check(context.Background(), env, p, q)
		if err != nil {
			t.Fatalf("seed %d (%s): engine error: %v", seed, tag, err)
		}
		if detail != "" {
			t.Errorf("seed %d (%s): %s", seed, tag, detail)
		}
	}
	if len(algos) < 4 {
		t.Errorf("24 seeds only sampled %d algorithm families: %v", len(algos), algos)
	}
}

// TestProtocolsConformRegistered checks the law is in the registry under
// its documented name (the CLI's -laws flag and the CI bpifuzz job select
// it by this string).
func TestProtocolsConformRegistered(t *testing.T) {
	laws, err := LawByName([]string{"protocols/conform"})
	if err != nil || len(laws) != 1 {
		t.Fatalf("protocols/conform not registered: %v", err)
	}
	if laws[0].Doc == "" || laws[0].Gen == nil || laws[0].Check == nil {
		t.Error("protocols/conform registered without doc/gen/check")
	}
}

// TestProtocolsShrunkPairDegrades hands the law a pair that is NOT a
// catalogue scenario — the shape every shrink probe has — and checks it
// degrades to engine agreement instead of failing the expected-verdict
// clause: an equivalent non-catalogue pair passes, and a planted
// disagreement-shaped violation (a fault variant's pair, shrunken) still
// minimises to a small term pair.
func TestProtocolsShrunkPairDegrades(t *testing.T) {
	law := lawProtocolsConform()
	env := NewEnv(2)
	p := syntax.Send("a", nil, syntax.SendN("b"))
	detail, err := law.Check(context.Background(), env, p, p)
	if err != nil {
		t.Fatalf("engine error on trivial pair: %v", err)
	}
	if detail != "" {
		t.Errorf("identical non-catalogue pair reported a violation: %s", detail)
	}

	s, ok := protocols.ByName("gossip/line-3/crashed-2")
	if !ok {
		t.Fatal("catalogue lost gossip/line-3/crashed-2")
	}
	pred := func(cp, cq syntax.Proc) bool {
		r, err := protocols.NewChecker(1).Step(cp, cq, false)
		return err == nil && !r.Related
	}
	if !pred(s.Impl, s.Spec) {
		t.Fatal("fault variant is not step-distinguished — broken setup")
	}
	sp, sq, spent := ShrinkPair(s.Impl, s.Spec, pred, 0)
	if !pred(sp, sq) {
		t.Fatal("shrinker lost the violation")
	}
	before := syntax.Size(s.Impl) + syntax.Size(s.Spec)
	after := syntax.Size(sp) + syntax.Size(sq)
	if after >= before {
		t.Errorf("pair did not shrink (%d -> %d nodes in %d evals): %s / %s",
			before, after, spent, syntax.String(sp), syntax.String(sq))
	}
}

// TestProtoKeyStableUnderParse guarantees the curated corpus cases keep
// their teeth: a catalogue pair that goes through Print → parse → Print
// (exactly what CheckCase does to a .case file) must still be recognised
// as that scenario, so the expected-verdict clause applies to corpus
// replays and not just freshly generated pairs.
func TestProtoKeyStableUnderParse(t *testing.T) {
	for _, s := range protocols.Catalogue() {
		p, err := parser.Parse(syntax.Print(s.Impl))
		if err != nil {
			t.Fatalf("%s: impl does not reparse: %v", s.Name, err)
		}
		q, err := parser.Parse(syntax.Print(s.Spec))
		if err != nil {
			t.Fatalf("%s: spec does not reparse: %v", s.Name, err)
		}
		if _, ok := protoScenarios()[protoKey(p, q)]; !ok {
			t.Errorf("%s: reparsed pair no longer matches its catalogue key", s.Name)
		}
	}
}
