package oracle

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bpi/internal/axioms"
	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/syntax"
)

// CertArtifactDirEnv, when set, names a directory that receives the JSON of
// any certificate the cert/checks law rejects — CI uploads it as a build
// artifact so the offending proof object survives the run.
const CertArtifactDirEnv = "BPIFUZZ_CERT_DIR"

// lawCertChecks is the certificate law: every verdict the engines return
// must come with a proof object the deliberately-simple independent verifier
// accepts — on the fresh path AND on the memoised path (a cached verdict
// must replay its recorded certificate), for all five equivalences and the
// §5 prover. A verdict whose certificate does not replay is wrong evidence
// even when the verdict itself happens to be right, so this law fires on
// the rejection, not on the verdict.
func lawCertChecks() Law {
	return Law{
		Name:   "cert/checks",
		Doc:    "every fuzzed verdict (five relations, fresh and cached, plus axioms.Decide) carries a certificate the independent verifier accepts",
		Config: proverConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			ch := equiv.NewChecker(nil)
			ch.Certify = true
			check := func(name string, related bool, crt *cert.Certificate) string {
				if crt == nil {
					return name + ": verdict carries no certificate"
				}
				if crt.Related != related {
					return fmt.Sprintf("%s: verdict %v but certificate claims %v", name, related, crt.Related)
				}
				if verr := cert.Verify(crt); verr != nil {
					return certRejected(name, crt, verr)
				}
				return ""
			}
			// Two passes over the same checker: pass two hits the verdict
			// memo, which must return the recorded certificate unchanged.
			for _, pass := range []string{"fresh", "cached"} {
				for _, weak := range []bool{false, true} {
					mode := "strong"
					if weak {
						mode = "weak"
					}
					r, err := ch.LabelledCtx(ctx, p, q, weak)
					if err != nil {
						return "", err
					}
					if d := check(pass+" "+mode+" labelled", r.Related, r.Cert); d != "" {
						return d, nil
					}
					r, err = ch.BarbedCtx(ctx, p, q, weak)
					if err != nil {
						return "", err
					}
					if d := check(pass+" "+mode+" barbed", r.Related, r.Cert); d != "" {
						return d, nil
					}
					r, err = ch.StepCtx(ctx, p, q, weak)
					if err != nil {
						return "", err
					}
					if d := check(pass+" "+mode+" step", r.Related, r.Cert); d != "" {
						return d, nil
					}
				}
				crt, ok, err := ch.OneStepCertCtx(ctx, p, q, false)
				if err != nil {
					return "", err
				}
				if d := check(pass+" strong onestep", ok, crt); d != "" {
					return d, nil
				}
				crt, ok, err = ch.CongruenceBoundedCertCtx(ctx, p, q, false, 0)
				if err != nil {
					return "", err
				}
				if d := check(pass+" strong congruence", ok, crt); d != "" {
					return d, nil
				}
			}
			pr := axioms.NewProver(nil)
			pr.Certify = true
			proved, err := pr.DecideCtx(ctx, p, q)
			if err != nil {
				return "", err
			}
			if d := check("axioms decide", proved, pr.Certificate()); d != "" {
				return d, nil
			}
			return "", nil
		},
	}
}

// certRejected builds the violation detail for a rejected certificate and,
// when CertArtifactDirEnv is set, persists the offending JSON for artifact
// upload.
func certRejected(name string, crt *cert.Certificate, verr error) string {
	detail := fmt.Sprintf("%s: certificate rejected: %v", name, verr)
	dir := os.Getenv(CertArtifactDirEnv)
	if dir == "" {
		return detail
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return detail
	}
	data, err := crt.Marshal()
	if err != nil {
		return detail
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, strings.ToLower(name))
	path := filepath.Join(dir, "rejected-"+slug+".json")
	if os.WriteFile(path, data, 0o644) == nil {
		detail += " (certificate written to " + path + ")"
	}
	return detail
}
