package oracle

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bpi/internal/parser"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// Config controls a fuzz run.
type Config struct {
	// Seed is the run seed. Iteration i draws everything from
	// mix(Seed + i), so iteration i of any run reproduces alone as
	// iteration 0 of a run with Seed+i and Budget len(Laws).
	Seed int64
	// Budget is the total number of iterations across all laws (default
	// 1000). Iterations round-robin the law list.
	Budget int
	// Laws is the registry subset to exercise (default Registry()).
	Laws []Law
	// OutDir, when non-empty, receives one regression file per shrunk
	// counterexample (see WriteCase for the format).
	OutDir string
	// ShrinkBudget bounds predicate evaluations per shrink (default 4096).
	ShrinkBudget int
	// MaxViolations stops the run early once reached (default 10).
	MaxViolations int
	// Progress, when set, is called after every iteration.
	Progress func(done, total int, v *Violation)
}

// Violation is one shrunk law violation.
type Violation struct {
	Law  string
	Tag  string
	Iter int
	// ReproSeed replays this iteration alone:
	//   bpifuzz -laws <Law> -seed <ReproSeed> -budget 1
	ReproSeed int64
	P, Q      string // shrunk terms, printed
	OrigP     string // pre-shrink terms, printed
	OrigQ     string
	Detail    string
	ShrinkOps int
}

func (v Violation) String() string {
	return fmt.Sprintf("law %s [%s]: %s\n  p = %s\n  q = %s\n  reproduce: bpifuzz -laws %s -seed %d -budget 1",
		v.Law, v.Tag, v.Detail, v.P, v.Q, v.Law, v.ReproSeed)
}

// Report summarises a fuzz run.
type Report struct {
	Seed       int64
	Ran        int
	PerLaw     map[string]int
	Errors     map[string]int // engine errors (budgets, timeouts) per law
	Violations []Violation
}

// mix is splitmix64: decorrelates consecutive iteration seeds so that
// iteration i's term stream shares nothing with iteration i+1's.
func mix(x int64) int64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run executes the fuzz loop: per iteration it derives a fresh seeded
// generator, draws a pair for the scheduled law, checks the law, and on
// violation shrinks the pair (re-checking the same law as predicate) before
// recording it. Engine errors are tallied, never treated as violations.
func Run(ctx context.Context, env *Env, cfg Config) (*Report, error) {
	laws := cfg.Laws
	if len(laws) == 0 {
		laws = Registry()
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 1000
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 10
	}
	rep := &Report{Seed: cfg.Seed, PerLaw: map[string]int{}, Errors: map[string]int{}}
	for i := 0; i < cfg.Budget; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		law := laws[i%len(laws)]
		iterSeed := cfg.Seed + int64(i)
		g := brand.New(mix(iterSeed), law.Config)
		p, q, tag := law.Gen(g)
		rep.Ran++
		rep.PerLaw[law.Name]++
		detail, err := law.Check(ctx, env, p, q)
		if err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			rep.Errors[law.Name]++
			continue
		}
		var v *Violation
		if detail != "" {
			v = shrinkViolation(ctx, env, law, p, q, detail, tag, i, iterSeed, cfg.ShrinkBudget)
			rep.Violations = append(rep.Violations, *v)
			if cfg.OutDir != "" {
				if werr := WriteCase(cfg.OutDir, *v); werr != nil {
					return rep, werr
				}
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(i+1, cfg.Budget, v)
		}
		if len(rep.Violations) >= cfg.MaxViolations {
			break
		}
	}
	return rep, nil
}

func shrinkViolation(ctx context.Context, env *Env, law Law, p, q syntax.Proc,
	detail, tag string, iter int, iterSeed int64, shrinkBudget int) *Violation {
	lastDetail := detail
	pred := func(cp, cq syntax.Proc) bool {
		d, err := law.Check(ctx, env, cp, cq)
		if err != nil || d == "" {
			return false
		}
		lastDetail = d
		return true
	}
	sp, sq, ops := ShrinkPair(p, q, pred, shrinkBudget)
	return &Violation{
		Law:       law.Name,
		Tag:       tag,
		Iter:      iter,
		ReproSeed: iterSeed,
		P:         syntax.Print(sp),
		Q:         syntax.Print(sq),
		OrigP:     syntax.Print(p),
		OrigQ:     syntax.Print(q),
		Detail:    lastDetail,
		ShrinkOps: ops,
	}
}

// ---- Regression-case persistence -----------------------------------------
//
// A case file is line-oriented:
//
//	# bpifuzz counterexample (any number of # comment lines)
//	law: theorem1/strong
//	seed: 12345
//	p: a! + 0
//	q: tau.a!
//
// Files live under testdata/fuzz/ and are re-checked by the oracle
// regression test on every `go test` run.

// Case is one persisted regression case.
type Case struct {
	Law  string
	Seed int64
	P, Q string
	File string
}

// WriteCase persists a shrunk violation under dir, named after the law and
// repro seed (stable: rerunning the same violation overwrites its file).
func WriteCase(dir string, v Violation) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_seed%d.case", strings.ReplaceAll(v.Law, "/", "_"), v.ReproSeed)
	body := fmt.Sprintf("# bpifuzz counterexample\n# detail: %s\n# original p: %s\n# original q: %s\nlaw: %s\nseed: %d\np: %s\nq: %s\n",
		v.Detail, v.OrigP, v.OrigQ, v.Law, v.ReproSeed, v.P, v.Q)
	return os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644)
}

// LoadCases reads every *.case file under dir (missing dir is an empty
// corpus, not an error).
func LoadCases(dir string) ([]Case, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []Case
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".case") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		c := Case{File: path}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			switch {
			case line == "" || strings.HasPrefix(line, "#"):
			case strings.HasPrefix(line, "law:"):
				c.Law = strings.TrimSpace(strings.TrimPrefix(line, "law:"))
			case strings.HasPrefix(line, "seed:"):
				fmt.Sscanf(strings.TrimPrefix(line, "seed:"), "%d", &c.Seed)
			case strings.HasPrefix(line, "p:"):
				c.P = strings.TrimSpace(strings.TrimPrefix(line, "p:"))
			case strings.HasPrefix(line, "q:"):
				c.Q = strings.TrimSpace(strings.TrimPrefix(line, "q:"))
			}
		}
		if c.Law == "" || c.P == "" || c.Q == "" {
			return nil, fmt.Errorf("oracle: malformed case file %s", path)
		}
		out = append(out, c)
	}
	return out, nil
}

// CheckCase re-runs the case's law on its persisted pair. A healthy tree
// returns detail == "": the case was a bug once, is a regression guard now.
// laws may extend/override the registry (nil means Registry()); the case's
// law is looked up by name in it.
func CheckCase(ctx context.Context, env *Env, laws []Law, c Case) (string, error) {
	if len(laws) == 0 {
		laws = Registry()
	}
	var law *Law
	for i := range laws {
		if laws[i].Name == c.Law {
			law = &laws[i]
			break
		}
	}
	if law == nil {
		return "", fmt.Errorf("%s: unknown law %q", c.File, c.Law)
	}
	p, err := parser.Parse(c.P)
	if err != nil {
		return "", fmt.Errorf("%s: parse p: %w", c.File, err)
	}
	q, err := parser.Parse(c.Q)
	if err != nil {
		return "", fmt.Errorf("%s: parse q: %w", c.File, err)
	}
	return law.Check(ctx, env, p, q)
}
