package oracle

import (
	"context"
	"testing"

	brand "bpi/internal/rand"
)

// TestTprogAgreeHolds drives the tprog/agree law over a spread of seeds:
// any non-empty detail is a real compiled/interpreted divergence.
func TestTprogAgreeHolds(t *testing.T) {
	law := lawTprogAgree()
	env := NewEnv(4)
	for seed := int64(0); seed < 25; seed++ {
		g := brand.New(seed, law.Config)
		p, q, tag := law.Gen(g)
		detail, err := law.Check(context.Background(), env, p, q)
		if err != nil {
			t.Fatalf("seed %d (%s): engine error: %v", seed, tag, err)
		}
		if detail != "" {
			t.Errorf("seed %d (%s): %s", seed, tag, detail)
		}
	}
}

// TestTprogAgreeRegistered pins the registry entry: the law is discoverable
// by name, so `bpifuzz -laws tprog/agree` and the curated .case files
// resolve it.
func TestTprogAgreeRegistered(t *testing.T) {
	laws, err := LawByName([]string{"tprog/agree"})
	if err != nil {
		t.Fatal(err)
	}
	if len(laws) != 1 || laws[0].Name != "tprog/agree" {
		t.Fatalf("registry lookup returned %v", laws)
	}
}
