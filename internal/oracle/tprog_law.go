package oracle

import (
	"context"
	"fmt"
	"reflect"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/lts"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
	"bpi/internal/tprog"
)

// compiledChecker returns a fresh certifying checker whose store serves
// transitions either interpreted or from compiled transition programs.
// Fresh per leg: the Env checkers memoise verdicts, and agreement between
// a memoised verdict and a fresh one would be vacuous.
func compiledChecker(workers int, compiled bool) *equiv.Checker {
	var ch *equiv.Checker
	if workers > 1 {
		ch = equiv.NewParallelChecker(nil, workers)
	} else {
		ch = equiv.NewChecker(nil)
	}
	ch.Certify = true
	if compiled {
		ch.Store().EnableCompiled()
	}
	return ch
}

// lawTprogAgree is the compiled-semantics differential law: the transition
// programs produced by internal/tprog must agree bit-for-bit with the
// interpreted Table 2/Table 3 semantics. Four layers of agreement on every
// drawn pair:
//
//  1. transitions — sys.Steps(p) and the compiled executor return identical
//     lists (labels, binder names, targets, order) on p, q and a bounded
//     sweep of their symbolic derivatives;
//  2. discards — the precomputed listen set answers Table 2 exactly as the
//     recursive walker does, on every free name and a never-mentioned one;
//  3. verdicts — a checker over a compiled store returns the identical
//     Result (Related, Pairs, Reason) at workers 1 and 4, its certificate
//     bytes equal the interpreted ones, and the certificate verifies;
//  4. graphs — lts.Explore with Compiled produces the same autonomous
//     graph, the substrate of the weak-saturation refiners.
func lawTprogAgree() Law {
	return Law{
		Name:   "tprog/agree",
		Doc:    "compiled transition programs agree bit-for-bit with the interpreted semantics: transitions, discard sets, verdicts, certificates, graphs",
		Config: richConfig(),
		Gen:    mixedPair,
		Check: func(ctx context.Context, env *Env, p, q syntax.Proc) (string, error) {
			sys := semantics.NewSystem(nil)
			tc := tprog.NewCache(sys)

			// 1+2: transition and discard agreement on a bounded sweep.
			seen := map[string]bool{}
			queue := []syntax.Proc{p, q}
			for len(queue) > 0 && len(seen) < 60 {
				r := queue[0]
				queue = queue[1:]
				k := syntax.ExactKey(r)
				if seen[k] {
					continue
				}
				seen[k] = true
				want, ierr := sys.Steps(r)
				got, cerr := tc.Transitions(r)
				if ierr != nil {
					if cerr == nil {
						return fmt.Sprintf("interpreter rejects %s (%v) but compiled path succeeds", syntax.String(r), ierr), nil
					}
					continue
				}
				if cerr != nil {
					return fmt.Sprintf("compiled path rejects %s: %v", syntax.String(r), cerr), nil
				}
				if !reflect.DeepEqual(want, got) {
					return fmt.Sprintf("transitions differ on %s: interpreted %v, compiled %v", syntax.String(r), want, got), nil
				}
				pr, err := tc.Compile(r)
				if err != nil {
					return "", err
				}
				chans := append(syntax.FreeNames(r).Sorted(), "zz_fresh_probe")
				for _, a := range chans {
					iw, derr := sys.Discards(r, a)
					if derr != nil {
						continue
					}
					if pr.Discards(a) != iw {
						return fmt.Sprintf("discard sets differ on %s for %s: interpreted %v, compiled %v",
							syntax.String(r), a, iw, pr.Discards(a)), nil
					}
				}
				for _, tr := range want {
					queue = append(queue, tr.Target)
				}
			}

			// 3: verdict, pair-count, Reason and certificate agreement.
			ri, ierr := compiledChecker(1, false).LabelledCtx(ctx, p, q, false)
			if ierr != nil {
				return "", ierr
			}
			if ri.Cert == nil {
				return "certifying interpreted checker returned no certificate", nil
			}
			ibytes, err := ri.Cert.Marshal()
			if err != nil {
				return "", err
			}
			for _, w := range []int{1, 4} {
				rc, cerr := compiledChecker(w, true).LabelledCtx(ctx, p, q, false)
				if cerr != nil {
					return "", cerr
				}
				if ri.Related != rc.Related || ri.Pairs != rc.Pairs || ri.Reason != rc.Reason {
					return fmt.Sprintf("workers=%d: compiled verdict diverges: related %v/%v pairs %d/%d reason %q/%q",
						w, ri.Related, rc.Related, ri.Pairs, rc.Pairs, ri.Reason, rc.Reason), nil
				}
				if rc.Cert == nil {
					return fmt.Sprintf("workers=%d: certifying compiled checker returned no certificate", w), nil
				}
				cbytes, err := rc.Cert.Marshal()
				if err != nil {
					return "", err
				}
				if !reflect.DeepEqual(ibytes, cbytes) {
					return fmt.Sprintf("workers=%d: compiled certificate bytes differ from interpreted", w), nil
				}
				if err := cert.Verify(rc.Cert); err != nil {
					return fmt.Sprintf("workers=%d: compiled-path certificate rejected: %v", w, err), nil
				}
			}

			// 4: the autonomous graph (weak saturation substrate) is identical.
			opt := lts.Options{AutonomousOnly: true, MaxStates: 1 << 14}
			gi, ierr := lts.Explore(sys, []syntax.Proc{p, q}, opt)
			if ierr != nil {
				return "", ierr
			}
			opt.Compiled, opt.Progs = true, tc
			gc, cerr := lts.Explore(sys, []syntax.Proc{p, q}, opt)
			if cerr != nil {
				return "", cerr
			}
			if gi.NumStates() != gc.NumStates() || !reflect.DeepEqual(gi.Edges, gc.Edges) ||
				gi.Truncated != gc.Truncated {
				return fmt.Sprintf("compiled lts graph differs: %v vs %v", gi, gc), nil
			}
			return "", nil
		},
	}
}
