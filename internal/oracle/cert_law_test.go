package oracle

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bpi/internal/cert"
	"bpi/internal/parser"
)

// TestCertLawHoldsOnWitnessPairs runs the cert/checks law directly on the
// historically awkward pairs from the regression corpus: the law must hold
// (empty detail) and must not report an engine error.
func TestCertLawHoldsOnWitnessPairs(t *testing.T) {
	law := lawCertChecks()
	env := NewEnv(2)
	pairs := [][2]string{
		{"b? | b?(x)", "0"},
		{"tau.a!(b)", "tau.a!(c)"},
		{"tau.a!(b) + tau.a!(c)", "tau.a!(c) + tau.a!(b)"},
		{"nu x.a!(x)", "nu y.a!(y)"},
	}
	for _, pq := range pairs {
		p, err := parser.Parse(pq[0])
		if err != nil {
			t.Fatal(err)
		}
		q, err := parser.Parse(pq[1])
		if err != nil {
			t.Fatal(err)
		}
		detail, err := law.Check(context.Background(), env, p, q)
		if err != nil {
			t.Fatalf("(%s, %s): engine error: %v", pq[0], pq[1], err)
		}
		if detail != "" {
			t.Errorf("(%s, %s): cert/checks violated: %s", pq[0], pq[1], detail)
		}
	}
}

// TestCertRejectedArtifact: a rejected certificate is persisted under
// $BPIFUZZ_CERT_DIR as replayable JSON, and the violation detail names the
// file; without the env var the detail still carries the verifier error.
func TestCertRejectedArtifact(t *testing.T) {
	// A positive labelled certificate claiming a! ~ b! with no evidence at
	// all: the verifier must reject it.
	bogus := &cert.Certificate{
		Version:  cert.Version,
		Relation: cert.RelLabelled,
		Related:  true,
		P:        "a!",
		Q:        "b!",
	}
	verr := cert.Verify(bogus)
	if verr == nil {
		t.Fatal("evidence-free positive certificate accepted by the verifier")
	}

	dir := t.TempDir()
	t.Setenv(CertArtifactDirEnv, dir)
	detail := certRejected("fresh strong labelled", bogus, verr)
	if !strings.Contains(detail, "certificate rejected") {
		t.Fatalf("detail lacks the rejection: %s", detail)
	}
	want := filepath.Join(dir, "rejected-fresh-strong-labelled.json")
	if !strings.Contains(detail, want) {
		t.Fatalf("detail does not name the artifact %s: %s", want, detail)
	}
	data, err := os.ReadFile(want)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	back, err := cert.Unmarshal(data)
	if err != nil {
		t.Fatalf("artifact is not a certificate: %v", err)
	}
	if back.P != "a!" || back.Q != "b!" || !back.Related {
		t.Errorf("artifact does not round-trip the rejected certificate: %+v", back)
	}

	t.Setenv(CertArtifactDirEnv, "")
	detail = certRejected("fresh strong labelled", bogus, verr)
	if strings.Contains(detail, "written to") {
		t.Errorf("artifact path reported with no artifact dir configured: %s", detail)
	}

	// An unwritable artifact dir degrades to the plain detail, not a panic.
	t.Setenv(CertArtifactDirEnv, filepath.Join(dir, "file-not-dir"))
	if err := os.WriteFile(filepath.Join(dir, "file-not-dir"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	detail = certRejected("fresh strong labelled", bogus, verr)
	if strings.Contains(detail, "written to") {
		t.Errorf("artifact path reported despite an unwritable dir: %s", detail)
	}
}

// TestViolationStringNamesReplay: the rendered violation carries the exact
// single-iteration bpifuzz invocation that replays it.
func TestViolationStringNamesReplay(t *testing.T) {
	v := Violation{
		Law: "cert/checks", Tag: "equiv-mutant", ReproSeed: 42,
		P: "a!", Q: "b!", Detail: "fresh strong labelled: certificate rejected",
	}
	s := v.String()
	for _, want := range []string{"cert/checks", "a!", "b!", "bpifuzz -laws cert/checks -seed 42 -budget 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string lacks %q:\n%s", want, s)
		}
	}
}

// TestCertLawSurvivesCancellation: a cancelled context surfaces as an engine
// error, never as a law violation.
func TestCertLawSurvivesCancellation(t *testing.T) {
	law := lawCertChecks()
	env := NewEnv(2)
	p, err := parser.Parse("a! | b! | c!")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse("a!.b!.c!")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	detail, cerr := law.Check(ctx, env, p, q)
	if detail != "" {
		t.Errorf("cancelled run reported a violation: %s", detail)
	}
	if cerr == nil || !errors.Is(cerr, context.Canceled) {
		t.Errorf("cancelled run: err = %v, want context.Canceled", cerr)
	}
}
