package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (the "JSON Array Format" accepted by chrome://tracing and Perfetto).
// Complete events carry ph "X" with ts/dur in microseconds; counter
// snapshots carry ph "C".
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the tracer's spans and final counter values as
// a Chrome trace-event JSON array, loadable in chrome://tracing or
// ui.perfetto.dev.  Nil-safe: a nil tracer writes an empty array.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events)+1)
	var last float64
	for _, ev := range events {
		ts := float64(ev.Start.Nanoseconds()) / 1e3
		dur := float64(ev.Dur.Nanoseconds()) / 1e3
		if end := ts + dur; end > last {
			last = end
		}
		out = append(out, chromeEvent{
			Name: ev.Name,
			Ph:   "X",
			Ts:   ts,
			Dur:  dur,
			Pid:  1,
			Tid:  1,
		})
	}
	if counters := t.Counters(); len(counters) > 0 {
		args := make(map[string]any, len(counters))
		for name, v := range counters {
			args[name] = v
		}
		out = append(out, chromeEvent{
			Name: "engine counters",
			Ph:   "C",
			Ts:   last,
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Node is one span in the reconstructed tree returned by Tree.
type Node struct {
	Name        string  `json:"name"`
	StartMicros float64 `json:"start_us"`
	DurMicros   float64 `json:"dur_us"`
	Children    []*Node `json:"children,omitempty"`
}

// Tree reconstructs the span forest from recorded events, roots sorted
// by start time.  Children whose parent event was dropped by the event
// limit surface as roots.  Nil-safe (returns nil).
func (t *Tracer) Tree() []*Node {
	events := t.Events() // already (Start, ID)-sorted
	if len(events) == 0 {
		return nil
	}
	byID := make(map[uint64]*Node, len(events))
	for _, ev := range events {
		byID[ev.ID] = &Node{
			Name:        ev.Name,
			StartMicros: float64(ev.Start.Nanoseconds()) / 1e3,
			DurMicros:   float64(ev.Dur.Nanoseconds()) / 1e3,
		}
	}
	var roots []*Node
	for _, ev := range events {
		n := byID[ev.ID]
		if p := byID[ev.Parent]; ev.Parent != 0 && p != nil {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// RenderNames renders the span forest as indented names only — a stable
// representation for golden tests (timings vary run to run, structure
// does not).  Sibling order is span-start order.
func RenderNames(roots []*Node) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), n.Name)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// FormatCounters renders a counter snapshot one per line, name-sorted —
// the -counters output of the CLI tools.
func FormatCounters(counters map[string]int64) string {
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-28s %d\n", name, counters[name])
	}
	return b.String()
}
