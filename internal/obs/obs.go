// Package obs is the reproduction's zero-dependency observability layer:
// named spans with monotonic timings, per-goroutine-safe event buffers,
// Chrome trace-event JSON export, and named engine counters.
//
// The package is built around one contract: a nil *Tracer is a valid,
// fully-disabled tracer.  Every method on *Tracer, *Span and *Counter is
// nil-safe and the disabled path performs no allocation and no atomic
// write — instrumentation can therefore stay compiled into hot loops
// (the pair engine, the LTS explorer, the prover) and be switched on per
// request by handing the layer a non-nil tracer.  The zero-alloc claim is
// enforced by tests (testing.AllocsPerRun) in this package and at the
// call sites in internal/equiv.
//
// Span names and counter names form a small fixed taxonomy documented in
// DESIGN.md §6.2.  Call sites must pass string literals (never
// fmt.Sprintf results) so the disabled path stays allocation-free.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLimit bounds the number of recorded span events per Tracer when
// constructed by New.  A bounded buffer keeps a long-running daemon from
// accumulating unbounded trace data; overflow is counted, not silently
// ignored (see Dropped).
const DefaultLimit = 1 << 16

const shardCount = 16

// Event is one completed span occurrence.  Times are offsets from the
// tracer's creation instant, measured on the monotonic clock.
type Event struct {
	Name   string
	ID     uint64 // unique per tracer, allocation order
	Parent uint64 // 0 for roots
	Start  time.Duration
	Dur    time.Duration
}

type eventShard struct {
	mu     sync.Mutex
	events []Event
}

// Tracer collects span events and named counters.  All methods are safe
// for concurrent use; a nil *Tracer is a no-op on every method.
type Tracer struct {
	anchor  time.Time
	nextID  atomic.Uint64
	limit   int64
	events  atomic.Int64
	dropped atomic.Uint64
	shards  [shardCount]eventShard

	cmu      sync.RWMutex
	counters map[string]*Counter
}

// New returns an enabled tracer with the default event limit.
func New() *Tracer { return NewWithLimit(DefaultLimit) }

// NewWithLimit returns an enabled tracer retaining at most max span
// events; further spans still time correctly but their events are
// dropped and counted.  max <= 0 means unlimited.
func NewWithLimit(max int) *Tracer {
	return &Tracer{
		anchor:   time.Now(),
		limit:    int64(max),
		counters: make(map[string]*Counter),
	}
}

// Span starts a root span.  End it with (*Span).End.  Returns nil (a
// valid no-op span) when the tracer is nil.
func (t *Tracer) Span(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:     t,
		name:  name,
		id:    t.nextID.Add(1),
		start: time.Since(t.anchor),
	}
}

// Span is an in-progress timed region.  A nil *Span is a valid no-op.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Duration
}

// Child starts a span nested under s.  Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.t.Span(name)
	c.parent = s.id
	return c
}

// End records the span's event.  Nil-safe; End on a nil span does
// nothing and allocates nothing.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	if t.limit > 0 && t.events.Add(1) > t.limit {
		t.dropped.Add(1)
		return
	}
	sh := &t.shards[s.id%shardCount]
	ev := Event{
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		Start:  s.start,
		Dur:    time.Since(t.anchor) - s.start,
	}
	sh.mu.Lock()
	sh.events = append(sh.events, ev)
	sh.mu.Unlock()
}

// Counter is a named monotonically-adjusted engine counter.  Hot loops
// should resolve the counter once with (*Tracer).Counter and call Add on
// the (possibly nil) result: Add on a nil *Counter is a no-op with no
// allocation and no atomic traffic.
type Counter struct{ v atomic.Int64 }

// Add adjusts the counter.  Nil-safe.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value reads the counter.  Nil-safe (returns 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use.  Returns
// nil when the tracer is nil — the intended pattern is to resolve
// counters once per run and let nil flow through to Add.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.cmu.RLock()
	c := t.counters[name]
	t.cmu.RUnlock()
	if c != nil {
		return c
	}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	if c = t.counters[name]; c == nil {
		c = new(Counter)
		t.counters[name] = c
	}
	return c
}

// Count adds d to the named counter.  Convenience for cold paths; hot
// loops should pre-resolve with Counter.  Nil-safe.
func (t *Tracer) Count(name string, d int64) {
	if t == nil {
		return
	}
	t.Counter(name).Add(d)
}

// Counters returns a snapshot of all counters.  Nil-safe (returns nil).
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.cmu.RLock()
	defer t.cmu.RUnlock()
	out := make(map[string]int64, len(t.counters))
	for name, c := range t.counters {
		out[name] = c.Value()
	}
	return out
}

// Dropped reports how many span events were discarded due to the event
// limit.  Nil-safe.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Events returns all recorded span events sorted by start time (ties by
// allocation ID, which equals span-start order).  Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var all []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		all = append(all, sh.events...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].ID < all[j].ID
	})
	return all
}
