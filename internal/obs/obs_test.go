package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestDisabledPathZeroAlloc is the package's core contract: every obs
// call on a nil tracer must allocate nothing, so instrumentation can stay
// compiled into hot loops.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	c := tr.Counter("equiv.pairs_expanded") // nil
	if c != nil {
		t.Fatalf("nil tracer returned non-nil counter")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Span("equiv.run")
		child := sp.Child("equiv.wave")
		c.Add(1)
		tr.Count("lts.states", 1)
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates: %v allocs/op, want 0", allocs)
	}
}

func TestNilTracerAccessors(t *testing.T) {
	var tr *Tracer
	if got := tr.Events(); got != nil {
		t.Errorf("nil.Events() = %v, want nil", got)
	}
	if got := tr.Counters(); got != nil {
		t.Errorf("nil.Counters() = %v, want nil", got)
	}
	if got := tr.Tree(); got != nil {
		t.Errorf("nil.Tree() = %v, want nil", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Errorf("nil.Dropped() = %d, want 0", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil.WriteChromeTrace: %v", err)
	}
	var arr []any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil || len(arr) != 0 {
		t.Errorf("nil trace = %q, want empty JSON array", buf.String())
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New()
	run := tr.Span("equiv.run")
	explore := run.Child("equiv.explore")
	w1 := explore.Child("equiv.wave")
	w1.End()
	w2 := explore.Child("equiv.wave")
	w2.End()
	explore.End()
	fix := run.Child("equiv.fixpoint")
	fix.End()
	run.End()

	got := RenderNames(tr.Tree())
	want := strings.Join([]string{
		"equiv.run",
		"  equiv.explore",
		"    equiv.wave",
		"    equiv.wave",
		"  equiv.fixpoint",
		"",
	}, "\n")
	if got != want {
		t.Errorf("span tree:\n%s\nwant:\n%s", got, want)
	}
}

func TestCounters(t *testing.T) {
	tr := New()
	c := tr.Counter("lts.states")
	c.Add(3)
	c.Add(4)
	tr.Count("lts.edges", 2)
	if same := tr.Counter("lts.states"); same != c {
		t.Errorf("Counter not idempotent: %p vs %p", same, c)
	}
	snap := tr.Counters()
	if snap["lts.states"] != 7 || snap["lts.edges"] != 2 {
		t.Errorf("Counters() = %v, want lts.states=7 lts.edges=2", snap)
	}
	if c.Value() != 7 {
		t.Errorf("Value() = %d, want 7", c.Value())
	}
}

// TestChromeTraceJSON asserts the export is a valid Chrome trace-event
// array: complete events with ph "X", microsecond ts/dur, pid/tid set,
// plus one "C" counter event.
func TestChromeTraceJSON(t *testing.T) {
	tr := New()
	sp := tr.Span("axioms.decide")
	sp.Child("axioms.world").End()
	sp.End()
	tr.Count("axioms.worlds", 1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 2 spans + 1 counter", len(events))
	}
	var xs, cs int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			xs++
			if ev["name"] == "" || ev["pid"] != float64(1) || ev["tid"] != float64(1) {
				t.Errorf("malformed X event: %v", ev)
			}
			if _, ok := ev["ts"].(float64); !ok {
				t.Errorf("X event missing numeric ts: %v", ev)
			}
		case "C":
			cs++
			args, ok := ev["args"].(map[string]any)
			if !ok || args["axioms.worlds"] != float64(1) {
				t.Errorf("counter event args = %v", ev["args"])
			}
		default:
			t.Errorf("unexpected ph %v", ev["ph"])
		}
	}
	if xs != 2 || cs != 1 {
		t.Errorf("got %d X and %d C events, want 2 and 1", xs, cs)
	}
}

func TestEventLimitDrops(t *testing.T) {
	tr := NewWithLimit(4)
	for i := 0; i < 10; i++ {
		tr.Span("s").End()
	}
	if got := len(tr.Events()); got != 4 {
		t.Errorf("retained %d events, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
}

// TestTracerRace hammers one Tracer from 16 goroutines — spans, child
// spans, counters, and concurrent snapshot reads.  Meaningful under
// go test -race.
func TestTracerRace(t *testing.T) {
	tr := NewWithLimit(1 << 12)
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := tr.Counter("race.ops")
			for i := 0; i < iters; i++ {
				sp := tr.Span("race.outer")
				ch := sp.Child("race.inner")
				c.Add(1)
				tr.Count("race.cold", 1)
				ch.End()
				sp.End()
				if i%32 == 0 {
					_ = tr.Events()
					_ = tr.Counters()
					_ = tr.Tree()
				}
			}
		}()
	}
	wg.Wait()
	snap := tr.Counters()
	if snap["race.ops"] != goroutines*iters || snap["race.cold"] != goroutines*iters {
		t.Errorf("counters = %v, want both %d", snap, goroutines*iters)
	}
	if got, dropped := len(tr.Events()), tr.Dropped(); uint64(got)+dropped != 2*goroutines*iters {
		t.Errorf("events %d + dropped %d != spans started %d", got, dropped, 2*goroutines*iters)
	}
}

func TestFormatCounters(t *testing.T) {
	out := FormatCounters(map[string]int64{"b.two": 2, "a.one": 1})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "a.one") || !strings.HasPrefix(lines[1], "b.two") {
		t.Errorf("FormatCounters = %q", out)
	}
}
