package parser

import (
	"os"
	"path/filepath"
	"testing"

	"bpi/internal/lts"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// TestFixturesRoundTrip parses every testdata/*.bpi source shipped with the
// repo and round-trips each definition body and the main term through the
// printer: parse → Print → parse again must be syntactically equal, and
// the parsed environment must validate. The fixtures double as the parser's
// compatibility contract — if the concrete syntax drifts, this catches it
// on real programs rather than generated ones.
func TestFixturesRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.bpi"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected at least the election/mobility/token_ring fixtures, got %v", files)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ParseProgram(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := prog.Env.ValidateWith(nil); err != nil {
			t.Errorf("%s: environment does not validate: %v", f, err)
		}
		if prog.Main == nil {
			t.Fatalf("%s: no main term", f)
		}
		roundTrip := func(label string, p syntax.Proc) {
			printed := syntax.Print(p)
			back, err := Parse(printed)
			if err != nil {
				t.Fatalf("%s/%s: reparse of %q: %v", f, label, printed, err)
			}
			if !syntax.Equal(p, back) {
				t.Errorf("%s/%s: round-trip changed the term:\n before %s\n after  %s",
					f, label, printed, syntax.Print(back))
			}
		}
		roundTrip("main", prog.Main)
		for _, id := range prog.Env.Idents() {
			d, _ := prog.Env.Lookup(id)
			roundTrip(id, d.Body)
		}
	}
}

// TestTokenRingFixtureFinite pins the token_ring fixture's behaviour: the
// recursive three-node ring circulates one token forever, so its autonomous
// LTS is finite — the initial state (injector still a separate component)
// followed by the 3-cycle of token-in-flight states on b, c, a, where the
// re-offered a!(tok) now lives inside node c's unfolding. The
// internal/protocols TokenRing generator is this fixture's one-lap finite
// unrolling, promoted to a conformance scenario.
func TestTokenRingFixtureFinite(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "token_ring.bpi"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := lts.Explore(semantics.NewSystem(prog.Env), []syntax.Proc{prog.Main},
		lts.Options{AutonomousOnly: true, MaxStates: 64})
	if err != nil {
		t.Fatal(err)
	}
	if g.Truncated {
		t.Fatalf("token ring LTS truncated — fixture no longer finite")
	}
	if g.NumStates() != 4 {
		t.Errorf("token ring has %d states, want 4 (initial + token on b, c, a)", g.NumStates())
	}
}
