package parser

import (
	"testing"

	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// TestPrintParseCanonRoundTrip is the full round-trip property feeding the
// oracle and the fuzzer: for generated terms — including equivalence-
// preserving and equivalence-breaking mutants, whose shapes (ν-wrapped
// fresh names, injected matches, duplicated branches) differ from what the
// generator emits directly — Parse(Print(p)) must land in p's
// alpha-equivalence class, i.e. canonicalise to a structurally equal term.
func TestPrintParseCanonRoundTrip(t *testing.T) {
	g := brand.New(2026, brand.Default())
	for i := 0; i < 300; i++ {
		p := g.Term()
		switch i % 3 {
		case 1:
			p = g.MutateEquiv(p)
		case 2:
			p = g.MutateBreak(p)
		}
		src := syntax.Print(p)
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(Print(p)) failed for %q: %v", src, err)
		}
		if !syntax.Equal(syntax.Canon(p), syntax.Canon(back)) {
			t.Fatalf("round trip left the alpha-class:\n in  = %s\n out = %s\n canon(in)  = %s\n canon(out) = %s",
				src, syntax.Print(back),
				syntax.Print(syntax.Canon(p)), syntax.Print(syntax.Canon(back)))
		}
	}
}

// FuzzParseRoundTrip feeds arbitrary source strings to the parser. Inputs
// that do not parse are out of scope (the parser may reject them however it
// likes, but must not panic — the fuzz engine catches panics by itself);
// for every input that does parse, printing and reparsing must stay within
// the same alpha-equivalence class, and printing must be idempotent from
// then on.
//
// Run with:
//
//	go test -run '^$' -fuzz FuzzParseRoundTrip -fuzztime 30s ./internal/parser
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"0",
		"a!",
		"a!(b,c).a?(x,y).x!(y)",
		"tau.a! + b?",
		"nu x (x! | x?(y).y!)",
		"[a=b](a!, b!) | rec X. tau.X",
		"A(a, b)",
		"(a! + b!).0 | nu z z!",
	}
	// Printed forms of generated terms keep the corpus anchored to shapes
	// the rest of the suite actually produces (fresh-marker names included).
	g := brand.New(7, brand.Default())
	for i := 0; i < 8; i++ {
		seeds = append(seeds, syntax.Print(g.Term()))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			t.Skip()
		}
		printed := syntax.Print(p)
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of parsed input %q does not reparse: %v", printed, src, err)
		}
		if !syntax.Equal(syntax.Canon(p), syntax.Canon(back)) {
			t.Fatalf("print/parse left the alpha-class:\n src   = %q\n print = %q\n again = %q",
				src, printed, syntax.Print(back))
		}
		if again := syntax.Print(back); again != printed {
			t.Fatalf("printing is not idempotent after one round trip:\n first  = %q\n second = %q", printed, again)
		}
	})
}
