// Package parser implements the concrete syntax of the library, the same
// one syntax.String renders (round-trip guaranteed by tests):
//
//	0                         nil
//	tau.P                     silent prefix
//	a?(x,y).P                 input (binds x,y in P); "a?" ≡ "a?()"
//	a!(x,y).P                 output; "a!" for the empty tuple
//	P + Q                     choice           (lowest precedence)
//	P | Q                     parallel
//	nu x.P   nu x,y.P         restriction      (body extends to a prefix-level term)
//	[x=y]P   [x=y](P, Q)      match with optional else branch
//	A(x,y)                    identifier call  (identifiers start uppercase)
//	(rec A(x).P)(y)           recursion
//	let A(x,y) = P            definition (Program only)
//
// Names start with a lowercase letter, identifiers with an uppercase one.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Parse parses a single process term.
func Parse(src string) (syntax.Proc, error) {
	p := &parser{toks: lex(src), src: src}
	t, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errf("unexpected %q after term", p.peek().text)
	}
	return t, nil
}

// Program is a parsed source file: definitions plus an optional main term.
type Program struct {
	Env  syntax.Env
	Main syntax.Proc // nil if the source only declares definitions
}

// ParseProgram parses a sequence of "let A(x̃) = P" definitions followed by
// an optional main term, separated by newlines or semicolons.
func ParseProgram(src string) (*Program, error) {
	prog := &Program{Env: syntax.Env{}}
	p := &parser{toks: lex(src), src: src}
	for !p.eof() {
		if p.peek().kind == tokSemi {
			p.next()
			continue
		}
		if p.peek().kind == tokIdent && p.peek().text == "let" {
			p.next()
			if err := p.parseDef(prog); err != nil {
				return nil, err
			}
			continue
		}
		main, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		prog.Main = main
		for !p.eof() && p.peek().kind == tokSemi {
			p.next()
		}
		if !p.eof() {
			return nil, p.errf("unexpected %q after main term", p.peek().text)
		}
	}
	return prog, nil
}

func (p *parser) parseDef(prog *Program) error {
	id := p.next()
	if id.kind != tokUpper {
		return p.errf("definition name must start uppercase, got %q", id.text)
	}
	params, err := p.parseNameTuple(true)
	if err != nil {
		return err
	}
	if tk := p.next(); tk.kind != tokEq {
		return p.errf("expected '=' in definition of %s, got %q", id.text, tk.text)
	}
	body, err := p.parseSum()
	if err != nil {
		return err
	}
	prog.Env = prog.Env.Define(id.text, params, body)
	return nil
}

// ---- lexer -----------------------------------------------------------------

type tokKind int

const (
	tokEOF   tokKind = iota
	tokIdent         // lowercase identifier (name or keyword)
	tokUpper         // uppercase identifier
	tokBang          // !
	tokQuery         // ?
	tokDot           // .
	tokPlus          // +
	tokBar           // |
	tokLPar          // (
	tokRPar          // )
	tokLBrk          // [
	tokRBrk          // ]
	tokEq            // =
	tokComma         // ,
	tokZero          // 0
	tokSemi          // ; or newline
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) []token {
	var out []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '\n' || c == ';':
			// Go-style separator insertion: a newline only separates program
			// items when the previous token can end a term, so multi-line
			// terms broken after an operator keep working.
			if c == ';' || canEndTerm(out) {
				out = append(out, token{tokSemi, string(c), i})
			}
			i++
		case c == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '0':
			out = append(out, token{tokZero, "0", i})
			i++
		case c == '!':
			out = append(out, token{tokBang, "!", i})
			i++
		case c == '?':
			out = append(out, token{tokQuery, "?", i})
			i++
		case c == '.':
			out = append(out, token{tokDot, ".", i})
			i++
		case c == '+':
			out = append(out, token{tokPlus, "+", i})
			i++
		case c == '|':
			out = append(out, token{tokBar, "|", i})
			i++
		case c == '(':
			out = append(out, token{tokLPar, "(", i})
			i++
		case c == ')':
			out = append(out, token{tokRPar, ")", i})
			i++
		case c == '[':
			out = append(out, token{tokLBrk, "[", i})
			i++
		case c == ']':
			out = append(out, token{tokRBrk, "]", i})
			i++
		case c == '=':
			out = append(out, token{tokEq, "=", i})
			i++
		case c == ',':
			out = append(out, token{tokComma, ",", i})
			i++
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			if unicode.IsUpper(rune(word[0])) {
				kind = tokUpper
			}
			out = append(out, token{kind, word, i})
			i = j
		default:
			out = append(out, token{tokEOF, string(c), i})
			i++
		}
	}
	return out
}

// canEndTerm reports whether the last emitted token can syntactically close
// a term (which is when a following newline acts as a separator).
func canEndTerm(toks []token) bool {
	if len(toks) == 0 {
		return false
	}
	switch toks[len(toks)-1].kind {
	case tokZero, tokRPar, tokRBrk, tokIdent, tokUpper, tokBang, tokQuery:
		return true
	}
	return false
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	// The fresh-marker rune is accepted so that printed machine-generated
	// states (which may contain fresh variants like "x·1") parse back.
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\'' ||
		strings.ContainsRune(names.FreshMarker, r)
}

// ---- parser ----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token {
	// Skip insignificant newlines inside terms: they only matter between
	// program items, which the program loop handles before entering terms.
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{tokEOF, "", len(p.src)}
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) eof() bool {
	return p.pos >= len(p.toks)
}

func (p *parser) errf(format string, args ...any) error {
	pos := len(p.src)
	if p.pos < len(p.toks) {
		pos = p.toks[p.pos].pos
	}
	line := 1 + strings.Count(p.src[:pos], "\n")
	return fmt.Errorf("parser: line %d: %s", line, fmt.Sprintf(format, args...))
}

// parseSum: par ('+' par)*
func (p *parser) parseSum() (syntax.Proc, error) {
	l, err := p.parsePar()
	if err != nil {
		return nil, err
	}
	parts := []syntax.Proc{l}
	for !p.eof() && p.peek().kind == tokPlus {
		p.next()
		r, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		parts = append(parts, r)
	}
	return syntax.Choice(parts...), nil
}

// parsePar: unary ('|' unary)*
func (p *parser) parsePar() (syntax.Proc, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []syntax.Proc{l}
	for !p.eof() && p.peek().kind == tokBar {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, r)
	}
	return syntax.Group(parts...), nil
}

// parseUnary: prefix chains, restriction, match, atoms.
func (p *parser) parseUnary() (syntax.Proc, error) {
	switch tk := p.peek(); tk.kind {
	case tokZero:
		p.next()
		return syntax.PNil, nil
	case tokLBrk:
		return p.parseMatch()
	case tokLPar:
		return p.parseParenOrRec()
	case tokUpper:
		return p.parseCall()
	case tokIdent:
		switch tk.text {
		case "nu", "new":
			return p.parseNu()
		case "tau":
			p.next()
			cont, err := p.parseCont()
			if err != nil {
				return nil, err
			}
			return syntax.TauP(cont), nil
		default:
			return p.parsePrefixed()
		}
	default:
		return nil, p.errf("unexpected %q at start of term", tk.text)
	}
}

func (p *parser) parseCont() (syntax.Proc, error) {
	if !p.eof() && p.peek().kind == tokDot {
		p.next()
		return p.parseUnary()
	}
	return syntax.PNil, nil
}

func (p *parser) parseNu() (syntax.Proc, error) {
	p.next() // nu
	var xs []names.Name
	for {
		tk := p.next()
		if tk.kind != tokIdent {
			return nil, p.errf("expected name after nu, got %q", tk.text)
		}
		xs = append(xs, names.Name(tk.text))
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if tk := p.next(); tk.kind != tokDot {
		return nil, p.errf("expected '.' after nu binder, got %q", tk.text)
	}
	body, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return syntax.Restrict(body, xs...), nil
}

func (p *parser) parseMatch() (syntax.Proc, error) {
	p.next() // [
	xt := p.next()
	if xt.kind != tokIdent {
		return nil, p.errf("expected name in match, got %q", xt.text)
	}
	if tk := p.next(); tk.kind != tokEq {
		return nil, p.errf("expected '=' in match, got %q", tk.text)
	}
	yt := p.next()
	if yt.kind != tokIdent {
		return nil, p.errf("expected name in match, got %q", yt.text)
	}
	if tk := p.next(); tk.kind != tokRBrk {
		return nil, p.errf("expected ']' in match, got %q", tk.text)
	}
	x, y := names.Name(xt.text), names.Name(yt.text)
	// Either "(then, else)" or a single unary then-branch.
	if p.peek().kind == tokLPar {
		save := p.pos
		p.next()
		then, err := p.parseSum()
		if err == nil && p.peek().kind == tokComma {
			p.next()
			els, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			if tk := p.next(); tk.kind != tokRPar {
				return nil, p.errf("expected ')' closing match, got %q", tk.text)
			}
			return syntax.If(x, y, then, els), nil
		}
		// Not a two-branch match: rewind and parse as a parenthesised term.
		p.pos = save
	}
	then, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return syntax.If(x, y, then, syntax.PNil), nil
}

func (p *parser) parseParenOrRec() (syntax.Proc, error) {
	save := p.pos
	p.next() // (
	if p.peek().kind == tokIdent && p.peek().text == "rec" {
		p.next()
		id := p.next()
		if id.kind != tokUpper {
			return nil, p.errf("rec identifier must start uppercase, got %q", id.text)
		}
		params, err := p.parseNameTuple(true)
		if err != nil {
			return nil, err
		}
		if tk := p.next(); tk.kind != tokDot {
			return nil, p.errf("expected '.' after rec binder, got %q", tk.text)
		}
		body, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if tk := p.next(); tk.kind != tokRPar {
			return nil, p.errf("expected ')' closing rec, got %q", tk.text)
		}
		args, err := p.parseNameTuple(true)
		if err != nil {
			return nil, err
		}
		if len(args) != len(params) {
			return nil, p.errf("rec %s: %d params but %d args", id.text, len(params), len(args))
		}
		return syntax.Rec{Id: id.text, Params: params, Body: body, Args: args}, nil
	}
	// Parenthesised term.
	p.pos = save
	p.next() // (
	t, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if tk := p.next(); tk.kind != tokRPar {
		return nil, p.errf("expected ')', got %q", tk.text)
	}
	return t, nil
}

func (p *parser) parseCall() (syntax.Proc, error) {
	id := p.next()
	args, err := p.parseNameTuple(true)
	if err != nil {
		return nil, err
	}
	return syntax.Call{Id: id.text, Args: args}, nil
}

// parsePrefixed parses name!(args).cont or name?(params).cont.
func (p *parser) parsePrefixed() (syntax.Proc, error) {
	ch := p.next()
	n := names.Name(ch.text)
	switch p.peek().kind {
	case tokBang:
		p.next()
		args, err := p.parseNameTuple(false)
		if err != nil {
			return nil, err
		}
		cont, err := p.parseCont()
		if err != nil {
			return nil, err
		}
		return syntax.Send(n, args, cont), nil
	case tokQuery:
		p.next()
		params, err := p.parseNameTuple(false)
		if err != nil {
			return nil, err
		}
		cont, err := p.parseCont()
		if err != nil {
			return nil, err
		}
		seen := names.NewSet()
		for _, q := range params {
			if seen.Contains(q) {
				return nil, p.errf("duplicate input parameter %q", q)
			}
			seen = seen.Add(q)
		}
		return syntax.Recv(n, params, cont), nil
	default:
		return nil, p.errf("expected '!' or '?' after channel %q", ch.text)
	}
}

// parseNameTuple parses "(a,b,c)"; when required is false the tuple is
// optional (missing means empty). Empty tuples "()" are allowed.
func (p *parser) parseNameTuple(required bool) ([]names.Name, error) {
	if p.eof() || p.peek().kind != tokLPar {
		if required {
			return nil, p.errf("expected '(' for name tuple")
		}
		return nil, nil
	}
	p.next() // (
	var out []names.Name
	if p.peek().kind == tokRPar {
		p.next()
		return out, nil
	}
	for {
		tk := p.next()
		if tk.kind != tokIdent {
			return nil, p.errf("expected name in tuple, got %q", tk.text)
		}
		out = append(out, names.Name(tk.text))
		switch p.peek().kind {
		case tokComma:
			p.next()
		case tokRPar:
			p.next()
			return out, nil
		default:
			return nil, p.errf("expected ',' or ')' in tuple, got %q", p.peek().text)
		}
	}
}
