package parser

import (
	"os"
	"testing"

	"bpi/internal/names"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	x names.Name = "x"
	y names.Name = "y"
)

func mustParse(t *testing.T, src string) syntax.Proc {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want syntax.Proc
	}{
		{"0", syntax.PNil},
		{"a!", syntax.SendN(a)},
		{"a!()", syntax.SendN(a)},
		{"a!(b,c)", syntax.SendN(a, b, c)},
		{"a?(x)", syntax.RecvN(a, x)},
		{"a?", syntax.RecvN(a)},
		{"tau.a!", syntax.TauP(syntax.SendN(a))},
		{"a! + b!", syntax.Choice(syntax.SendN(a), syntax.SendN(b))},
		{"a! | b!", syntax.Group(syntax.SendN(a), syntax.SendN(b))},
		{"nu x.a!(x)", syntax.Restrict(syntax.SendN(a, x), x)},
		{"nu x,y.a!(x,y)", syntax.Restrict(syntax.SendN(a, x, y), x, y)},
		{"[x=y]a!", syntax.If(x, y, syntax.SendN(a), syntax.PNil)},
		{"[x=y](a!, b!)", syntax.If(x, y, syntax.SendN(a), syntax.SendN(b))},
		{"A(a,b)", syntax.Call{Id: "A", Args: []names.Name{a, b}}},
		{"a!(b).c?(x)", syntax.Send(a, []names.Name{b}, syntax.RecvN(c, x))},
		{"a?(x).(b! + c!)", syntax.Recv(a, []names.Name{x}, syntax.Choice(syntax.SendN(b), syntax.SendN(c)))},
		{"(a! + b!) | c!", syntax.Group(syntax.Choice(syntax.SendN(a), syntax.SendN(b)), syntax.SendN(c))},
		{"(rec A(x).x!.A(x))(a)", syntax.Rec{Id: "A", Params: []names.Name{x},
			Body: syntax.Send(x, nil, syntax.Call{Id: "A", Args: []names.Name{x}}),
			Args: []names.Name{a}}},
	}
	for _, cse := range cases {
		got := mustParse(t, cse.src)
		if !syntax.Equal(got, cse.want) {
			t.Errorf("Parse(%q) = %s, want %s", cse.src, syntax.String(got), syntax.String(cse.want))
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// + binds loosest: a! | b! + c! ≡ (a!|b!) + c!.
	got := mustParse(t, "a! | b! + c!")
	if _, ok := got.(syntax.Sum); !ok {
		t.Fatalf("precedence wrong: %s", syntax.String(got))
	}
	// Prefix binds tightest: tau.a! + b! ≡ (tau.a!) + b!.
	got = mustParse(t, "tau.a! + b!")
	s, ok := got.(syntax.Sum)
	if !ok {
		t.Fatalf("shape: %s", syntax.String(got))
	}
	if _, ok := s.L.(syntax.Prefix); !ok {
		t.Fatalf("prefix did not bind tightly: %s", syntax.String(got))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a",
		"a!(",
		"a?(x",
		"[x=]a!",
		"nu .a!",
		"A(",
		"(a!",
		"a! + ",
		"a?(x,x)",         // duplicate parameters
		"(rec a(x).0)(a)", // lowercase rec identifier
		"a! b!",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRoundTripPrinted(t *testing.T) {
	g := brand.New(321, brand.Default())
	for i := 0; i < 200; i++ {
		p := g.Term()
		src := syntax.String(p)
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", src, err)
		}
		// Fresh-marker names print as-is; compare up to alpha since binder
		// names survive verbatim.
		if !syntax.AlphaEqual(p, back) {
			t.Fatalf("round trip changed term:\n in  = %s\n out = %s", src, syntax.String(back))
		}
	}
}

func TestParseProgram(t *testing.T) {
	src := `
# the forwarder example
let Fwd(in, out) = in?(x).out!(x).Fwd(in, out)
let Two(in, out) = Fwd(in, out) | Fwd(in, out)

Two(a, b) | a!(c)
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Env) != 2 {
		t.Fatalf("definitions: %v", prog.Env.Idents())
	}
	if prog.Main == nil {
		t.Fatal("main term missing")
	}
	if err := prog.Env.Validate(); err != nil {
		t.Fatalf("parsed env invalid: %v", err)
	}
	d, _ := prog.Env.Lookup("Fwd")
	if len(d.Params) != 2 {
		t.Fatalf("Fwd params: %v", d.Params)
	}
}

func TestParseProgramMultilineTerm(t *testing.T) {
	src := `let A(x) = x?(y).
	y!.
	A(x)
A(a)`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Main == nil || len(prog.Env) != 1 {
		t.Fatalf("program shape wrong: %v main=%v", prog.Env.Idents(), prog.Main)
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := []string{
		"let a(x) = 0",       // lowercase definition
		"let A(x) 0",         // missing =
		"let A(x) = 0; 0; 0", // two mains... second main unreachable
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestFreshMarkerNamesParse(t *testing.T) {
	// Machine-generated fresh variants round-trip through the parser.
	p, err := Parse("a" + names.FreshMarker + "1!")
	if err != nil {
		t.Fatalf("marker name rejected: %v", err)
	}
	if syntax.FreeNames(p).Len() != 1 {
		t.Fatal("marker name lost")
	}
}

func TestParseProgramFiles(t *testing.T) {
	files := []string{
		"../../testdata/token_ring.bpi",
		"../../testdata/election.bpi",
		"../../testdata/mobility.bpi",
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		prog, err := ParseProgram(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if prog.Main == nil {
			t.Errorf("%s: no main term", f)
		}
		if err := prog.Env.Validate(); err != nil {
			t.Errorf("%s: invalid env: %v", f, err)
		}
	}
}
