package cbs

import "testing"

// Proc is sealed: exactly these seven CBS node types exist, and every
// switch in the package is exhaustive over them.
func TestProcSealed(t *testing.T) {
	procs := []Proc{Nil{}, Speak{}, Hear{}, Tau{}, Sum{}, Par{}, Match{}}
	if len(procs) != 7 {
		t.Fatalf("%d node types, want 7", len(procs))
	}
	for _, p := range procs {
		p.isProc()
	}
}
