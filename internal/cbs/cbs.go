// Package cbs implements a baseline Calculus of Broadcasting Systems in the
// style of Prasad (CBS'91/'95): processes speak values into a single global
// ether and hear or discard what others speak. It exists as the comparison
// point of the paper's related-work discussion — bπ is "CBS plus channels
// plus mobility" — and the embedding ToBpi exhibits CBS as the one-channel
// fragment of the bπ-calculus, verified transition-by-transition in tests.
package cbs

import (
	"fmt"
	"sort"
	"strings"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Value is an atomic broadcast value.
type Value = names.Name

// Proc is a CBS process.
type Proc interface {
	isProc()
}

// Nil is the inert process.
type Nil struct{}

// Speak broadcasts Val and continues (v! p).
type Speak struct {
	Val  Value
	Cont Proc
}

// Hear receives any spoken value, binding it to Param in Cont (x? p).
type Hear struct {
	Param Value
	Cont  Proc
}

// Tau is the silent prefix.
type Tau struct{ Cont Proc }

// Sum is choice.
type Sum struct{ L, R Proc }

// Par is parallel composition: one speaker, everybody else hears or
// discards.
type Par struct{ L, R Proc }

// Match is the value conditional (v=w)p,q.
type Match struct {
	V, W       Value
	Then, Else Proc
}

func (Nil) isProc()   {}
func (Speak) isProc() {}
func (Hear) isProc()  {}
func (Tau) isProc()   {}
func (Sum) isProc()   {}
func (Par) isProc()   {}
func (Match) isProc() {}

// Label is a CBS transition label: τ, v! or v? (a hear with the value
// instantiated).
type Label struct {
	Kind byte // 't', '!', '?'
	Val  Value
}

// String renders "tau", "v!" or "v?".
func (l Label) String() string {
	if l.Kind == 't' {
		return "tau"
	}
	return fmt.Sprintf("%s%c", l.Val, l.Kind)
}

// Trans is one transition.
type Trans struct {
	Label  Label
	Target Proc
}

// Subst replaces free occurrences of old by new (capture-avoiding on Hear
// binders).
func Subst(p Proc, old, new Value) Proc {
	if old == new {
		return p
	}
	switch t := p.(type) {
	case Nil:
		return t
	case Tau:
		return Tau{Subst(t.Cont, old, new)}
	case Speak:
		v := t.Val
		if v == old {
			v = new
		}
		return Speak{v, Subst(t.Cont, old, new)}
	case Hear:
		if t.Param == old {
			return t // shadowed
		}
		if t.Param == new {
			// Alpha-rename the binder away to avoid capture.
			fresh := freshParam(t.Param, names.NewSet(old, new).AddAll(free(t.Cont)))
			body := Subst(t.Cont, t.Param, fresh)
			return Hear{fresh, Subst(body, old, new)}
		}
		return Hear{t.Param, Subst(t.Cont, old, new)}
	case Sum:
		return Sum{Subst(t.L, old, new), Subst(t.R, old, new)}
	case Par:
		return Par{Subst(t.L, old, new), Subst(t.R, old, new)}
	case Match:
		v, w := t.V, t.W
		if v == old {
			v = new
		}
		if w == old {
			w = new
		}
		return Match{v, w, Subst(t.Then, old, new), Subst(t.Else, old, new)}
	}
	panic("cbs: unknown node")
}

func freshParam(base Value, avoid names.Set) Value {
	return syntax.FreshVariant(base, avoid)
}

func free(p Proc) names.Set {
	out := make(names.Set)
	var walk func(q Proc, bound names.Set)
	walk = func(q Proc, bound names.Set) {
		switch t := q.(type) {
		case Nil:
		case Tau:
			walk(t.Cont, bound)
		case Speak:
			if !bound.Contains(t.Val) {
				out.Add(t.Val)
			}
			walk(t.Cont, bound)
		case Hear:
			inner := bound.Clone()
			if inner == nil {
				inner = make(names.Set)
			}
			walk(t.Cont, inner.Add(t.Param))
		case Sum:
			walk(t.L, bound)
			walk(t.R, bound)
		case Par:
			walk(t.L, bound)
			walk(t.R, bound)
		case Match:
			if !bound.Contains(t.V) {
				out.Add(t.V)
			}
			if !bound.Contains(t.W) {
				out.Add(t.W)
			}
			walk(t.Then, bound)
			walk(t.Else, bound)
		}
	}
	walk(p, nil)
	return out
}

// Discards reports p --v:-->: p ignores a broadcast (CBS: a process with no
// enabled hear ignores everything spoken; hears cannot be refused).
func Discards(p Proc) bool {
	switch t := p.(type) {
	case Nil, Speak, Tau:
		return true
	case Hear:
		return false
	case Sum:
		return Discards(t.L) && Discards(t.R)
	case Par:
		return Discards(t.L) && Discards(t.R)
	case Match:
		if t.V == t.W {
			return Discards(t.Then)
		}
		return Discards(t.Else)
	}
	panic("cbs: unknown node")
}

// Reacts returns the reactions of p to a spoken value v: if p discards, it
// stays put; otherwise every way of hearing v. A choice is resolved by the
// branch that hears; a parallel composition reacts componentwise (hearing
// cannot be refused).
func Reacts(p Proc, v Value) []Proc {
	switch t := p.(type) {
	case Nil, Speak, Tau:
		return []Proc{p}
	case Hear:
		return []Proc{Subst(t.Cont, t.Param, v)}
	case Sum:
		if Discards(p) {
			return []Proc{p}
		}
		var out []Proc
		if !Discards(t.L) {
			out = append(out, Reacts(t.L, v)...)
		}
		if !Discards(t.R) {
			out = append(out, Reacts(t.R, v)...)
		}
		return out
	case Par:
		var out []Proc
		for _, l := range Reacts(t.L, v) {
			for _, r := range Reacts(t.R, v) {
				out = append(out, Par{l, r})
			}
		}
		return out
	case Match:
		// A discarding conditional stays put *unresolved* (rule 14 keeps the
		// ignored process unchanged); only a hearing one resolves.
		if Discards(p) {
			return []Proc{p}
		}
		if t.V == t.W {
			return Reacts(t.Then, v)
		}
		return Reacts(t.Else, v)
	}
	panic("cbs: unknown node")
}

// Steps returns the autonomous transitions (speaks and τ) of p; a speak by
// one parallel component forces every sibling to hear or discard it.
func Steps(p Proc) []Trans {
	var out []Trans
	switch t := p.(type) {
	case Nil, Hear:
	case Tau:
		out = append(out, Trans{Label{'t', ""}, t.Cont})
	case Speak:
		out = append(out, Trans{Label{'!', t.Val}, t.Cont})
	case Sum:
		out = append(out, Steps(t.L)...)
		out = append(out, Steps(t.R)...)
	case Match:
		if t.V == t.W {
			return Steps(t.Then)
		}
		return Steps(t.Else)
	case Par:
		for _, lt := range Steps(t.L) {
			if lt.Label.Kind == 't' {
				out = append(out, Trans{lt.Label, Par{lt.Target, t.R}})
				continue
			}
			for _, r := range Reacts(t.R, lt.Label.Val) {
				out = append(out, Trans{lt.Label, Par{lt.Target, r}})
			}
		}
		for _, rt := range Steps(t.R) {
			if rt.Label.Kind == 't' {
				out = append(out, Trans{rt.Label, Par{t.L, rt.Target}})
				continue
			}
			for _, l := range Reacts(t.L, rt.Label.Val) {
				out = append(out, Trans{rt.Label, Par{l, rt.Target}})
			}
		}
	default:
		panic("cbs: unknown node")
	}
	return dedupe(out)
}

func dedupe(ts []Trans) []Trans {
	seen := map[string]bool{}
	out := ts[:0]
	for _, t := range ts {
		k := t.Label.String() + " " + Key(t.Target)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ki := out[i].Label.String() + " " + Key(out[i].Target)
		kj := out[j].Label.String() + " " + Key(out[j].Target)
		return ki < kj
	})
	return out
}

// Key returns a canonical string for p (binders alpha-normalised).
func Key(p Proc) string {
	var b strings.Builder
	k := 0
	writeKey(p, &b, names.Subst{}, &k)
	return b.String()
}

func writeKey(p Proc, b *strings.Builder, env names.Subst, k *int) {
	switch t := p.(type) {
	case Nil:
		b.WriteByte('0')
	case Tau:
		b.WriteString("t.")
		writeKey(t.Cont, b, env, k)
	case Speak:
		b.WriteString(string(env.Apply(t.Val)))
		b.WriteString("!.")
		writeKey(t.Cont, b, env, k)
	case Hear:
		*k++
		canon := names.Name(fmt.Sprintf("\x01%d", *k))
		inner := env.Clone()
		inner[t.Param] = canon
		b.WriteString(string(canon))
		b.WriteString("?.")
		writeKey(t.Cont, b, inner, k)
	case Sum:
		b.WriteString("+(")
		writeKey(t.L, b, env, k)
		b.WriteByte('|')
		writeKey(t.R, b, env, k)
		b.WriteByte(')')
	case Par:
		b.WriteString("&(")
		writeKey(t.L, b, env, k)
		b.WriteByte('|')
		writeKey(t.R, b, env, k)
		b.WriteByte(')')
	case Match:
		fmt.Fprintf(b, "m(%s=%s)(", env.Apply(t.V), env.Apply(t.W))
		writeKey(t.Then, b, env, k)
		b.WriteByte('|')
		writeKey(t.Else, b, env, k)
		b.WriteByte(')')
	default:
		panic("cbs: unknown node")
	}
}

// ToBpi embeds a CBS process into the bπ-calculus over a single ether
// channel: v! becomes ether!(v), x? becomes ether?(x). The embedding is a
// strong transition-by-transition correspondence (CBS is exactly the
// one-channel, no-restriction fragment of bπ), which the tests verify by
// comparing the generated transition systems.
func ToBpi(p Proc, ether names.Name) syntax.Proc {
	switch t := p.(type) {
	case Nil:
		return syntax.PNil
	case Tau:
		return syntax.TauP(ToBpi(t.Cont, ether))
	case Speak:
		return syntax.Send(ether, []names.Name{t.Val}, ToBpi(t.Cont, ether))
	case Hear:
		return syntax.Recv(ether, []names.Name{t.Param}, ToBpi(t.Cont, ether))
	case Sum:
		return syntax.Sum{L: ToBpi(t.L, ether), R: ToBpi(t.R, ether)}
	case Par:
		return syntax.Par{L: ToBpi(t.L, ether), R: ToBpi(t.R, ether)}
	case Match:
		return syntax.If(t.V, t.W, ToBpi(t.Then, ether), ToBpi(t.Else, ether))
	}
	panic("cbs: unknown node")
}

// String renders a CBS process.
func String(p Proc) string {
	switch t := p.(type) {
	case Nil:
		return "0"
	case Tau:
		return "tau." + String(t.Cont)
	case Speak:
		return string(t.Val) + "!." + String(t.Cont)
	case Hear:
		return string(t.Param) + "?." + String(t.Cont)
	case Sum:
		return "(" + String(t.L) + " + " + String(t.R) + ")"
	case Par:
		return "(" + String(t.L) + " | " + String(t.R) + ")"
	case Match:
		return fmt.Sprintf("[%s=%s](%s, %s)", t.V, t.W, String(t.Then), String(t.Else))
	}
	panic("cbs: unknown node")
}
