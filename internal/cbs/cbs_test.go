package cbs

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

const (
	u names.Name = "u"
	v names.Name = "v"
	w names.Name = "w"
	x names.Name = "x"
)

func TestSpeakReachesAllHearers(t *testing.T) {
	// v! | x?.x! | y?.y! : speaking v feeds both hearers.
	p := Par{
		Speak{v, Nil{}},
		Par{Hear{x, Speak{x, Nil{}}}, Hear{"y", Speak{"y", Nil{}}}},
	}
	ts := Steps(p)
	if len(ts) != 1 || ts[0].Label.Kind != '!' || ts[0].Label.Val != v {
		t.Fatalf("steps: %v", ts)
	}
	want := Par{Nil{}, Par{Speak{v, Nil{}}, Speak{v, Nil{}}}}
	if Key(ts[0].Target) != Key(want) {
		t.Fatalf("target %s, want %s", String(ts[0].Target), String(want))
	}
}

func TestHearCannotBeRefused(t *testing.T) {
	// v! | x?.0: the hearer must take the value — no transition leaves it.
	p := Par{Speak{v, Nil{}}, Hear{x, Nil{}}}
	ts := Steps(p)
	if len(ts) != 1 {
		t.Fatalf("steps: %v", ts)
	}
	if Key(ts[0].Target) != Key(Par{Nil{}, Nil{}}) {
		t.Fatalf("hearer skipped: %s", String(ts[0].Target))
	}
}

func TestDiscard(t *testing.T) {
	if !Discards(Speak{v, Nil{}}) || !Discards(Nil{}) || !Discards(Tau{Nil{}}) {
		t.Error("speakers and nil must discard")
	}
	if Discards(Hear{x, Nil{}}) {
		t.Error("hearers cannot discard")
	}
	if Discards(Sum{Hear{x, Nil{}}, Speak{v, Nil{}}}) {
		t.Error("a choice with a hearer does not discard")
	}
}

func TestMatchResolution(t *testing.T) {
	p := Match{v, v, Speak{u, Nil{}}, Speak{w, Nil{}}}
	ts := Steps(p)
	if len(ts) != 1 || ts[0].Label.Val != u {
		t.Fatalf("match-true: %v", ts)
	}
	p2 := Match{v, w, Speak{u, Nil{}}, Speak{w, Nil{}}}
	ts = Steps(p2)
	if len(ts) != 1 || ts[0].Label.Val != w {
		t.Fatalf("match-false: %v", ts)
	}
}

func TestSubstCaptureAvoidance(t *testing.T) {
	// (x? . v!) [v→x] must rename the binder.
	p := Hear{x, Speak{v, Nil{}}}
	q := Subst(p, v, x).(Hear)
	if q.Param == x {
		t.Fatalf("capture: %s", String(q))
	}
	if sp := q.Cont.(Speak); sp.Val != x {
		t.Fatalf("substitution lost: %s", String(q))
	}
}

func TestReactsValuePassing(t *testing.T) {
	// x?.[x=v](u!, w!) hearing v takes the then-branch.
	p := Hear{x, Match{x, v, Speak{u, Nil{}}, Speak{w, Nil{}}}}
	rs := Reacts(p, v)
	if len(rs) != 1 {
		t.Fatalf("reacts: %v", rs)
	}
	ts := Steps(rs[0])
	if len(ts) != 1 || ts[0].Label.Val != u {
		t.Fatalf("value compare failed: %v", ts)
	}
}

// ---- The embedding into bπ ---------------------------------------------------

// randCBS generates a random CBS term.
func randCBS(rng *rand.Rand, depth int, pool []Value) Proc {
	if depth == 0 || rng.Intn(5) == 0 {
		return Nil{}
	}
	switch rng.Intn(6) {
	case 0:
		return Speak{pool[rng.Intn(len(pool))], randCBS(rng, depth-1, pool)}
	case 1:
		b := Value(string(pool[rng.Intn(len(pool))]) + "'")
		inner := append(pool[:len(pool):len(pool)], b)
		return Hear{b, randCBS(rng, depth-1, inner)}
	case 2:
		return Tau{randCBS(rng, depth-1, pool)}
	case 3:
		return Sum{randCBS(rng, depth-1, pool), randCBS(rng, depth-1, pool)}
	case 4:
		return Par{randCBS(rng, depth-1, pool), randCBS(rng, depth-1, pool)}
	default:
		return Match{pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))],
			randCBS(rng, depth-1, pool), randCBS(rng, depth-1, pool)}
	}
}

// TestEmbeddingStrongCorrespondence checks, on random terms, that the CBS
// transition system and the autonomous bπ transition system of the embedding
// agree step by step (labels mapped v! ↦ ether!(v)), by joint exhaustive
// exploration.
func TestEmbeddingStrongCorrespondence(t *testing.T) {
	const ether names.Name = "eth"
	sys := semantics.NewSystem(nil)
	rng := rand.New(rand.NewSource(42))
	pool := []Value{u, v, w}
	for trial := 0; trial < 40; trial++ {
		root := randCBS(rng, 3, pool)
		type pair struct {
			c Proc
			b syntax.Proc
		}
		seen := map[string]bool{}
		queue := []pair{{root, ToBpi(root, ether)}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			k := Key(cur.c)
			if seen[k] {
				continue
			}
			seen[k] = true
			cts := Steps(cur.c)
			btsAll, err := sys.Steps(cur.b)
			if err != nil {
				t.Fatal(err)
			}
			var bts []semantics.Trans
			for _, bt := range btsAll {
				if bt.Act.IsStep() {
					bts = append(bts, bt)
				}
			}
			if len(cts) != len(bts) {
				t.Fatalf("trial %d: %s has %d CBS steps but %d bπ steps",
					trial, String(cur.c), len(cts), len(bts))
			}
			// Compare label+target keys as sorted multisets.
			ck := make([]string, len(cts))
			bk := make([]string, len(bts))
			for i, ct := range cts {
				ck[i] = mapLabel(ct.Label, ether) + " " + syntax.Key(ToBpi(ct.Target, ether))
			}
			for i, bt := range bts {
				bk[i] = bt.Act.String() + " " + syntax.Key(bt.Target)
			}
			sort.Strings(ck)
			sort.Strings(bk)
			for i := range ck {
				if ck[i] != bk[i] {
					t.Fatalf("trial %d: step mismatch at %s:\n cbs: %v\n bpi: %v",
						trial, String(cur.c), ck, bk)
				}
			}
			for _, ct := range cts {
				queue = append(queue, pair{ct.Target, ToBpi(ct.Target, ether)})
			}
		}
	}
}

func mapLabel(l Label, ether names.Name) string {
	switch l.Kind {
	case 't':
		return actions.NewTau().String()
	default:
		return actions.NewOut(ether, []names.Name{l.Val}).String()
	}
}

// TestEmbeddingDiscards: the embedding preserves the discard relation on the
// ether channel.
func TestEmbeddingDiscards(t *testing.T) {
	const ether names.Name = "eth"
	sys := semantics.NewSystem(nil)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		p := randCBS(rng, 3, []Value{u, v})
		want := Discards(p)
		got, err := sys.Discards(ToBpi(p, ether), ether)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: discard mismatch for %s", trial, String(p))
		}
	}
}

func TestKeyAlpha(t *testing.T) {
	p := Hear{x, Speak{x, Nil{}}}
	q := Hear{v, Speak{v, Nil{}}}
	if Key(p) != Key(q) {
		t.Error("alpha-equivalent hears should share a key")
	}
	r := Hear{x, Speak{u, Nil{}}}
	if Key(p) == Key(r) {
		t.Error("key collision")
	}
}

func TestTauAndString(t *testing.T) {
	p := Tau{Speak{v, Nil{}}}
	ts := Steps(p)
	if len(ts) != 1 || ts[0].Label.Kind != 't' {
		t.Fatalf("tau: %v", ts)
	}
	if ts[0].Label.String() != "tau" {
		t.Errorf("label: %q", ts[0].Label)
	}
	rendered := String(Par{p, Sum{Hear{x, Nil{}}, Match{u, v, Nil{}, Nil{}}}})
	for _, frag := range []string{"tau.", "x?.", "[u=v]", "|", "+"} {
		if !strings.Contains(rendered, frag) {
			t.Errorf("String() missing %q: %s", frag, rendered)
		}
	}
}

func TestTauInterleavesWithoutHearing(t *testing.T) {
	// tau.v! | x?.0: the τ moves alone; the hearer is untouched.
	p := Par{Tau{Speak{v, Nil{}}}, Hear{x, Nil{}}}
	ts := Steps(p)
	if len(ts) != 1 || ts[0].Label.Kind != 't' {
		t.Fatalf("steps: %v", ts)
	}
	if Key(ts[0].Target) != Key(Par{Speak{v, Nil{}}, Hear{x, Nil{}}}) {
		t.Fatalf("tau disturbed the hearer: %s", String(ts[0].Target))
	}
}

func TestSumSpeakResolves(t *testing.T) {
	// (u! + v!) speaks either value, resolving the choice.
	p := Sum{Speak{u, Nil{}}, Speak{v, Nil{}}}
	ts := Steps(p)
	if len(ts) != 2 {
		t.Fatalf("steps: %v", ts)
	}
	for _, tr := range ts {
		if Key(tr.Target) != Key(Nil{}) {
			t.Fatalf("choice not resolved: %s", String(tr.Target))
		}
	}
}

func TestMixedSumHearsOnlyViaHearBranch(t *testing.T) {
	// (u! + x?.x!) hearing w resolves to w!; the speak branch is lost.
	p := Sum{Speak{u, Nil{}}, Hear{x, Speak{x, Nil{}}}}
	rs := Reacts(p, w)
	if len(rs) != 1 || Key(rs[0]) != Key(Speak{w, Nil{}}) {
		t.Fatalf("reacts: %v", rs)
	}
}

func TestFreeNames(t *testing.T) {
	p := Hear{x, Par{Speak{x, Nil{}}, Speak{v, Nil{}}}}
	fn := free(p)
	if fn.Contains(x) || !fn.Contains(v) {
		t.Fatalf("free: %v", fn)
	}
}
