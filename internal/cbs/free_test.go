package cbs

import (
	"testing"

	"bpi/internal/names"
)

// free must collect spoken values, match operands and nothing bound by a
// Hear binder, through τ, sums and parallels.
func TestFreeAllNodes(t *testing.T) {
	p := Par{
		L: Sum{
			L: Tau{Speak{Val: "v", Cont: Nil{}}},
			R: Hear{Param: "x", Cont: Speak{Val: "x", Cont: Speak{Val: "w", Cont: Nil{}}}},
		},
		R: Match{V: "a", W: "b", Then: Hear{Param: "a", Cont: Speak{Val: "a", Cont: Nil{}}}, Else: Nil{}},
	}
	got := free(p)
	want := names.NewSet("v", "w", "a", "b")
	if !got.Equal(want) {
		t.Fatalf("free = %v, want %v (x and the rebound a are Hear-bound)", got, want)
	}
}
