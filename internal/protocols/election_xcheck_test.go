package protocols

import (
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/papers"
	"bpi/internal/semantics"
)

// TestElectionMatchesPapers cross-checks the two independent renderings of
// the broadcast leader election: the recursive-definition version behind
// examples/leaderelect (internal/papers, Candidate defined in an Env) and
// this package's closed-term generator. At matching parameters they must be
// equivalent — strong step AND weak step — and the generator's enumerated
// spec must accept the papers implementation directly, not just via
// transitivity.
func TestElectionMatchesPapers(t *testing.T) {
	env := papers.ElectionEnv()
	for n := 2; n <= 4; n++ {
		ours := Election(n, Fault{})
		theirs := papers.ElectionSystem(n, "claim", "lead", "follow")
		for _, weak := range []bool{false, true} {
			chk := equiv.NewChecker(semantics.NewSystem(env))
			chk.MaxPairs = 1 << 18
			r, err := chk.Step(theirs, ours.Impl, weak)
			if err != nil {
				t.Fatalf("n=%d weak=%v: %v", n, weak, err)
			}
			if !r.Related {
				t.Errorf("n=%d: papers election diverges from generator impl (weak=%v): %s",
					n, weak, r.Reason)
			}
			r, err = chk.Step(theirs, ours.Spec, weak)
			if err != nil {
				t.Fatalf("n=%d weak=%v (spec): %v", n, weak, err)
			}
			if !r.Related {
				t.Errorf("n=%d: papers election fails the generator spec (weak=%v): %s",
					n, weak, r.Reason)
			}
		}
	}
}
