package protocols

// Catalogue returns the curated scenario library: every algorithm at three
// (or more) sizes, healthy plus the fault variants whose failure is
// observable in the scenario's conformance relation. This is the corpus the
// protocols/conform oracle law samples, the package tests decide on every
// engine, and `bpi protocols` lists.
//
// Fault placement is deliberate: multi-hop faults hit a MIDDLE station (a
// fault on the last hop of a line leaves nothing downstream to starve, and a
// lossy last hop is strongly step-invisible — see
// TestLossyStepInvisibility). Lossy faults in the single-hop algorithms
// (election, star gossip) are stated against weak BARBED bisimilarity under
// the ν(trigger) noisy wrapper — the weakest relation in the suite that
// observes the drop — and the lossy election runs at n=2, where the dropped
// follow is the only barb on its channel (at n ≥ 3 another follower masks
// it).
func Catalogue() []Scenario {
	var out []Scenario
	add := func(s Scenario) { out = append(out, s) }

	// Gossip: three topologies from the internal/stress families.
	for _, n := range []int{2, 3, 4} {
		add(GossipLine(n, Fault{}))
	}
	add(GossipLine(3, Fault{FaultCrashed, 2}))
	add(GossipLine(3, Fault{FaultDeaf, 2}))
	add(GossipLine(3, Fault{FaultLossy, 2}))
	for _, n := range []int{2, 3, 4} {
		add(GossipStar(n, Fault{}))
	}
	add(GossipStar(3, Fault{FaultCrashed, 1}))
	add(GossipStar(3, Fault{FaultDeaf, 2}))
	add(GossipStar(3, Fault{FaultLossy, 2})) // weak barbed + noisy wrapper
	add(GossipTree(2, 1, Fault{}))
	add(GossipTree(2, 2, Fault{}))
	add(GossipTree(3, 2, Fault{}))
	add(GossipTree(2, 2, Fault{FaultCrashed, 1})) // node 1 has children
	add(GossipTree(2, 2, Fault{FaultDeaf, 1}))
	add(GossipTree(2, 2, Fault{FaultLossy, 1}))

	// Leader election.
	for _, n := range []int{2, 3, 4} {
		add(Election(n, Fault{}))
	}
	add(Election(3, Fault{FaultCrashed, 2}))
	add(Election(3, Fault{FaultDeaf, 2}))
	add(Election(2, Fault{FaultLossy, 2})) // weak barbed + noisy wrapper; n=2 (see above)

	// Broadcast-via-multicast emulation (weak throughout).
	for _, n := range []int{2, 3, 4} {
		add(Multicast(n, Fault{}))
	}
	add(Multicast(3, Fault{FaultCrashed, 2}))
	add(Multicast(3, Fault{FaultDeaf, 2}))
	add(Multicast(3, Fault{FaultLossy, 2}))

	// BBC-style broadcast + aggregation.
	for _, n := range []int{2, 3, 4} {
		add(BBC(n, Fault{}))
	}
	add(BBC(3, Fault{FaultCrashed, 2}))
	add(BBC(3, Fault{FaultDeaf, 2}))
	add(BBC(3, Fault{FaultLossy, 2}))

	// Token ring (the fifth, mini scenario — testdata/token_ring.bpi).
	for _, n := range []int{2, 3, 4} {
		add(TokenRing(n, Fault{}))
	}
	add(TokenRing(3, Fault{FaultCrashed, 2}))
	add(TokenRing(3, Fault{FaultDeaf, 2}))
	add(TokenRing(3, Fault{FaultLossy, 2}))

	return out
}

// ByName returns the catalogue scenario with the given Name.
func ByName(name string) (Scenario, bool) {
	for _, s := range Catalogue() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Ladder returns the bench scaling instances for `bpibench -protocols`:
// healthy scenarios whose pair spaces grow exponentially with n, smallest
// first per algorithm. Gossip stars and elections double their state count
// per added node (2^n subsets), multicast per added member; the line-shaped
// algorithms are omitted — their state spaces are linear and decided in
// microseconds at any interesting size. Top rungs are sized to stay in the
// low seconds sequentially (gossip/star-12 ≈ 139k pairs, election-7 ≈ 168k,
// multicast-8 ≈ 131k weak pairs) so the full 1/2/4-worker curve finishes in
// well under a minute; one size up costs 5-10x (election-8 is ~824k pairs).
func Ladder() []Scenario {
	return []Scenario{
		GossipStar(8, Fault{}),
		GossipStar(10, Fault{}),
		GossipStar(12, Fault{}),
		Election(5, Fault{}),
		Election(6, Fault{}),
		Election(7, Fault{}),
		Multicast(6, Fault{}),
		Multicast(7, Fault{}),
		Multicast(8, Fault{}),
	}
}
