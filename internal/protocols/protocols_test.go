package protocols

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"bpi/internal/cert"
	"bpi/internal/lts"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// TestSizes pins the closed-form state counts every generator advertises
// against an exhaustive LTS exploration — the catalogue's healthy entries
// plus one larger instance per family, so each formula is exercised beyond
// the sizes the conformance tests run at.
func TestSizes(t *testing.T) {
	var cases []Scenario
	for _, s := range Catalogue() {
		if s.Fault.Kind == FaultNone {
			cases = append(cases, s)
		}
	}
	cases = append(cases,
		GossipLine(6, Fault{}),    // 8
		GossipStar(5, Fault{}),    // 33
		GossipTree(2, 3, Fault{}), // 677 order ideals
		Election(5, Fault{}),      // 157
		Multicast(5, Fault{}),     // 63
		BBC(6, Fault{}),           // 9
		TokenRing(6, Fault{}),     // 8
	)
	sys := semantics.NewSystem(nil)
	for _, s := range cases {
		if s.States == 0 {
			t.Errorf("%s: healthy scenario advertises no state count", s.Name)
			continue
		}
		g, err := lts.Explore(sys, []syntax.Proc{s.Impl}, lts.Options{
			AutonomousOnly: true, MaxStates: 1 << 17,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if g.Truncated {
			t.Fatalf("%s: truncated at %d states", s.Name, g.NumStates())
		}
		if g.NumStates() != s.States {
			t.Errorf("%s: %d states, generator advertises %d", s.Name, g.NumStates(), s.States)
		}
	}
}

// TestPinnedPairs pins the exact explored-pair count of every healthy
// catalogue entry on the sequential engine. The counts are the conformance
// suite's cost model (the bench ladder extrapolates from them) and a
// determinism tripwire: any change to exploration order, discard handling
// or weak closures moves at least one of these numbers.
func TestPinnedPairs(t *testing.T) {
	want := map[string]int{
		"gossip/line-2": 4, "gossip/line-3": 5, "gossip/line-4": 6,
		"gossip/star-2": 7, "gossip/star-3": 21, "gossip/star-4": 65,
		"gossip/tree-2x1": 7, "gossip/tree-2x2": 96, "gossip/tree-3x2": 12772,
		"election-2": 22, "election-3": 173, "election-4": 1106,
		"multicast-2": 35, "multicast-3": 135, "multicast-4": 527,
		"bbc-2": 5, "bbc-3": 6, "bbc-4": 7,
		"tokenring-2": 4, "tokenring-3": 5, "tokenring-4": 6,
	}
	seen := map[string]bool{}
	for _, s := range Catalogue() {
		if s.Fault.Kind != FaultNone {
			continue
		}
		r, err := Decide(NewChecker(1), s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !r.Related {
			t.Errorf("%s: healthy scenario not equivalent: %s", s.Name, r.Reason)
		}
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("%s: healthy catalogue entry has no pinned pair count", s.Name)
			continue
		}
		seen[s.Name] = true
		if r.Pairs != w {
			t.Errorf("%s: %d pairs explored, pinned %d", s.Name, r.Pairs, w)
		}
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("pinned entry %s missing from catalogue", name)
		}
	}
}

// TestCatalogueConform is the conformance matrix the acceptance criteria
// name: every catalogue scenario, decided on the sequential engine, the
// work-stealing parallel engine at 2 and 4 workers, and the partition-
// refinement engine. All verdicts must equal WantEquiv, the parallel
// Results must be bit-identical to the sequential one, and every
// certificate — positive and negative, strong and weak — must pass the
// independent verifier.
func TestCatalogueConform(t *testing.T) {
	for _, s := range Catalogue() {
		seq, err := Decide(NewChecker(1), s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if seq.Related != s.WantEquiv {
			t.Errorf("%s: verdict %v, want %v (%s)", s.Name, seq.Related, s.WantEquiv, seq.Reason)
		}
		if seq.Cert == nil {
			t.Errorf("%s: no certificate", s.Name)
		} else if err := cert.Verify(seq.Cert); err != nil {
			t.Errorf("%s: certificate rejected: %v", s.Name, err)
		}
		for _, w := range []int{2, 4} {
			par, err := Decide(NewChecker(w), s)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", s.Name, w, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s workers=%d: result diverges from sequential (related %v/%v pairs %d/%d)",
					s.Name, w, seq.Related, par.Related, seq.Pairs, par.Pairs)
			}
		}
		refOK, refCert, err := Refine(s, 1<<17)
		if err != nil {
			t.Fatalf("%s: refiner: %v", s.Name, err)
		}
		if refOK != s.WantEquiv {
			t.Errorf("%s: refiner verdict %v, want %v", s.Name, refOK, s.WantEquiv)
		}
		if refCert != nil {
			if err := cert.Verify(refCert); err != nil {
				t.Errorf("%s: refiner certificate rejected: %v", s.Name, err)
			}
		}
	}
}

// TestFaultsDistinguished spells out the negative half of the acceptance
// criteria on its own: every fault kind appears in the catalogue for every
// algorithm family, and every fault-injected variant is distinguished from
// its spec with a verifying certificate carrying the distinguishing
// strategy.
func TestFaultsDistinguished(t *testing.T) {
	kinds := map[string]map[FaultKind]bool{}
	for _, s := range Catalogue() {
		if s.Fault.Kind == FaultNone {
			continue
		}
		if kinds[s.Algo] == nil {
			kinds[s.Algo] = map[FaultKind]bool{}
		}
		kinds[s.Algo][s.Fault.Kind] = true
		if s.WantEquiv {
			t.Errorf("%s: fault variant expects equivalence", s.Name)
		}
		r, err := Decide(NewChecker(1), s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if r.Related {
			t.Errorf("%s: fault not distinguished", s.Name)
			continue
		}
		if r.Cert == nil {
			t.Errorf("%s: negative verdict has no certificate", s.Name)
			continue
		}
		if err := cert.Verify(r.Cert); err != nil {
			t.Errorf("%s: distinguishing certificate rejected: %v", s.Name, err)
		}
	}
	for _, algo := range []string{"gossip", "election", "multicast", "bbc", "tokenring"} {
		for _, k := range []FaultKind{FaultCrashed, FaultDeaf, FaultLossy} {
			if !kinds[algo][k] {
				t.Errorf("catalogue has no %s/%s variant", algo, k)
			}
		}
	}
}

// TestLossyStepInvisibility pins the library's central observability fact:
// in the single-hop algorithms a lossy drop is invisible to BOTH step
// equivalences — strongly because label-blind matching lets the spec answer
// the drop-τ by actually delivering, weakly because answers are arbitrary
// autonomous sequences — and only weak BARBED bisimilarity under the
// ν(trigger) noisy wrapper observes it. If an engine change flips one of
// these verdicts, the catalogue's relation assignments must be revisited.
func TestLossyStepInvisibility(t *testing.T) {
	for _, s := range []Scenario{
		GossipStar(3, Fault{FaultLossy, 2}),
		Election(2, Fault{FaultLossy, 2}),
	} {
		if s.Rel != RelBarbed || !s.Weak {
			t.Fatalf("%s: generator no longer states lossy conformance in weak barbed", s.Name)
		}
		for _, weak := range []bool{false, true} {
			r, err := NewChecker(1).Step(s.Impl, s.Spec, weak)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			if !r.Related {
				t.Errorf("%s: lossy drop visible to step equivalence (weak=%v): %s",
					s.Name, weak, r.Reason)
			}
		}
		r, err := Decide(NewChecker(1), s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if r.Related {
			t.Errorf("%s: weak barbed fails to observe the lossy drop", s.Name)
		}
	}
}

// TestInject checks the fault rewrites at the term level.
func TestInject(t *testing.T) {
	base := GossipLine(3, Fault{}).Impl
	parts := syntax.ParList(base)

	crashed := Inject(base, Fault{FaultCrashed, 2})
	if got, want := len(syntax.ParList(crashed)), len(parts)-1; got != want {
		t.Errorf("crashed: %d components, want %d", got, want)
	}

	deaf := Inject(base, Fault{FaultDeaf, 2})
	if s := syntax.Print(deaf); !strings.Contains(s, "deaf2?") {
		t.Errorf("deaf: station not re-pointed at deaf channel:\n%s", s)
	}

	lossy := Inject(base, Fault{FaultLossy, 2})
	if s := syntax.Print(lossy); !strings.Contains(s, "+ tau") {
		t.Errorf("lossy: no drop branch injected:\n%s", s)
	}

	// Node clamping: out-of-range nodes hit the last station, and a
	// faultless injection is the identity.
	if got, want := syntax.Print(Inject(base, Fault{FaultCrashed, 99})),
		syntax.Print(Inject(base, Fault{FaultCrashed, 3})); got != want {
		t.Errorf("clamp high: %s != %s", got, want)
	}
	if !syntax.Equal(Inject(base, Fault{}), base) {
		t.Error("FaultNone injection is not the identity")
	}

	// Restrictions are peeled and re-applied: the multicast fault variant
	// keeps its ν binders.
	m := Multicast(3, Fault{FaultCrashed, 2}).Impl
	if _, ok := m.(syntax.Res); !ok {
		t.Errorf("multicast fault variant lost its restriction: %s", syntax.Print(m))
	}
}

// TestCatalogue checks the catalogue's own integrity: unique names, ByName
// round-trips, ≥3 healthy sizes per algorithm family, and every entry
// decidable within the package checker budget (implied by the other tests,
// asserted cheaply here via the scenario fields).
func TestCatalogue(t *testing.T) {
	seen := map[string]bool{}
	healthy := map[string]int{}
	for _, s := range Catalogue() {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %s", s.Name)
		}
		seen[s.Name] = true
		if s.Fault.Kind == FaultNone {
			healthy[s.Algo]++
		}
		got, ok := ByName(s.Name)
		if !ok || got.Name != s.Name {
			t.Errorf("ByName(%s) failed", s.Name)
		}
		if s.Rel != RelStep && s.Rel != RelBarbed {
			t.Errorf("%s: unknown relation %q", s.Name, s.Rel)
		}
	}
	for _, algo := range []string{"gossip", "election", "multicast", "bbc", "tokenring"} {
		if healthy[algo] < 3 {
			t.Errorf("%s: %d healthy sizes in catalogue, want >= 3", algo, healthy[algo])
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("ByName invented a scenario")
	}
	for _, s := range Ladder() {
		if s.Fault.Kind != FaultNone || !s.WantEquiv {
			t.Errorf("ladder rung %s is not a healthy scenario", s.Name)
		}
	}
}

// TestDecideUnknownRel covers the Decide error path.
func TestDecideUnknownRel(t *testing.T) {
	s := GossipLine(2, Fault{})
	s.Rel = "labelled"
	if _, err := Decide(NewChecker(1), s); err == nil {
		t.Error("Decide accepted an unknown relation")
	}
}

// TestFaultString pins the fault naming used in scenario names and the CLI.
func TestFaultString(t *testing.T) {
	if got := (Fault{}).String(); got != "healthy" {
		t.Errorf("healthy fault prints %q", got)
	}
	if got := (Fault{FaultDeaf, 2}).String(); got != "deaf-2" {
		t.Errorf("deaf fault prints %q", got)
	}
	if got := fmt.Sprintf("%s", Fault{FaultLossy, 1}); got != "lossy-1" {
		t.Errorf("lossy fault prints %q", got)
	}
}
