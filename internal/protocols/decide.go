package protocols

import (
	"context"
	"fmt"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/lts"
	"bpi/internal/refine"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// NewChecker returns a pair-engine checker budgeted for the catalogue and
// ladder pair spaces, certifying, with the requested worker count (1 =
// sequential engine, >1 = the work-stealing parallel engine).
func NewChecker(workers int) *equiv.Checker {
	var chk *equiv.Checker
	if workers > 1 {
		chk = equiv.NewParallelChecker(nil, workers)
	} else {
		chk = equiv.NewChecker(nil)
	}
	chk.MaxPairs = 1 << 20
	chk.Certify = true
	return chk
}

// Decide runs the scenario's conformance query — Rel at Weak — on the given
// checker. The verdict answers "does Impl conform to Spec?"; compare with
// s.WantEquiv for the expected outcome.
func Decide(chk *equiv.Checker, s Scenario) (equiv.Result, error) {
	return DecideCtx(context.Background(), chk, s)
}

// DecideCtx is Decide honouring ctx.
func DecideCtx(ctx context.Context, chk *equiv.Checker, s Scenario) (equiv.Result, error) {
	switch s.Rel {
	case RelBarbed:
		return chk.BarbedCtx(ctx, s.Impl, s.Spec, s.Weak)
	case RelStep:
		return chk.StepCtx(ctx, s.Impl, s.Spec, s.Weak)
	}
	return equiv.Result{}, fmt.Errorf("protocols: unknown relation %q", s.Rel)
}

// Refine decides the scenario's conformance with the partition-refinement
// engine over the joint autonomous LTS — the independent second opinion the
// conform law compares against the pair engine. Strong relations return the
// refiner's certificate; the weak refiners produce verdicts only (cert is
// nil), the pair engine supplies the weak certificates.
func Refine(s Scenario, maxStates int) (ok bool, crt *cert.Certificate, err error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	g, err := lts.Explore(semantics.NewSystem(nil), []syntax.Proc{s.Impl, s.Spec},
		lts.Options{AutonomousOnly: true, MaxStates: maxStates})
	if err != nil {
		return false, nil, err
	}
	if g.Truncated {
		return false, nil, fmt.Errorf("protocols: joint LTS truncated at %d states", maxStates)
	}
	switch {
	case s.Rel == RelStep && !s.Weak:
		crt, ok, err = refine.CertifyStrongStep(g)
	case s.Rel == RelBarbed && !s.Weak:
		crt, ok, err = refine.CertifyStrongBarbed(g)
	case s.Rel == RelStep && s.Weak:
		ok, err = refine.WeakStep(g)
	default:
		ok, err = refine.WeakBarbed(g)
	}
	return ok, crt, err
}
