package protocols

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenCertsPinned pins one mid-size scenario per algorithm family:
// the verdict, explored-pair count and SHA-256 of the marshalled
// certificate are written to a golden file and every worker count must
// reproduce them bit-for-bit. Any drift in exploration order, certificate
// layout or the generators themselves trips this before it can silently
// invalidate recorded ledger entries. Regenerate with UPDATE_GOLDEN=1.
func TestGoldenCertsPinned(t *testing.T) {
	mids := []string{
		"gossip/star-3",
		"election-3",
		"multicast-3",
		"bbc-3",
		"tokenring-3",
	}
	var got string
	for _, name := range mids {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("golden scenario %s missing from catalogue", name)
		}
		var want string
		for _, w := range []int{1, 2, 4} {
			r, err := Decide(NewChecker(w), s)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if r.Cert == nil {
				t.Fatalf("%s workers=%d: no certificate", name, w)
			}
			raw, err := r.Cert.Marshal()
			if err != nil {
				t.Fatalf("%s: marshal certificate: %v", name, err)
			}
			sum := sha256.Sum256(raw)
			line := fmt.Sprintf("%s related=%v pairs=%d cert=%s\n",
				name, r.Related, r.Pairs, hex.EncodeToString(sum[:]))
			if w == 1 {
				want = line
				continue
			}
			if line != want {
				t.Fatalf("%s workers=%d diverges:\n got %s want %s", name, w, line, want)
			}
		}
		got += want
	}
	golden := filepath.Join("testdata", "catalogue_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(pinned) {
		t.Errorf("golden drifted:\n got:\n%s want:\n%s", got, pinned)
	}
}
