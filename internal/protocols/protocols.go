// Package protocols is the broadcast-algorithm scenario library: executable
// conformance specs for real broadcast protocols, expressed as equivalence
// checks between an implementation term and a specification term.
//
// The paper's thesis is that bπ makes broadcast algorithms directly
// expressible; this package makes that claim testable. Each Scenario pairs a
// parameterised protocol implementation (n nodes over a topology, built from
// the same families as internal/stress) with a behavioural specification,
// names the equivalence that conformance means, and states the expected
// verdict. Correct protocols are equivalent to their spec; fault-injected
// variants (crashed node, deaf node, lossy link) must be DISTINGUISHED from
// it, with the negative verdict's certificate (internal/cert) carrying the
// distinguishing strategy as a replayable witness.
//
// The five algorithm families:
//
//   - Gossip dissemination (epidemic broadcast): a seed rumour spreads hop
//     by hop over a line, star or tree topology; each station that hears the
//     rumour re-broadcasts it on its own channel. The spec is the one-shot
//     causal cascade: the same broadcasts, prefix-nested along the topology's
//     causal order instead of implemented by parallel listeners. Conformance
//     is STRONG step equivalence — the paper's broadcast semantics makes the
//     listener implementation and the nested spec generate the same LTS.
//   - Single-hop leader election (examples/leaderelect, internal/papers):
//     n candidates race to claim leadership on a shared channel; atomic
//     broadcast resolves the race in one step. The spec enumerates the n
//     outcomes as a sum. Strong step equivalence.
//   - Broadcast-via-multicast emulation (after Jeltsch & Díaz-style
//     broadcast/multicast translations): one logical broadcast to n members
//     implemented as a sequence of point-to-point hand-offs on private
//     (restricted) channels. The spec performs one internal broadcast on a
//     private channel. Conformance is WEAK step equivalence: the emulation
//     needs n internal steps where the spec needs one, and weak equivalence
//     is exactly the statement that the difference is unobservable.
//   - BBC-style broadcast + aggregation (after Hüttel & Pratas' Broadcast
//     Based Collection): a collector floods a query in one hop, the sensor
//     readings are aggregated along a convergecast chain, and the collector
//     announces completion. Strong step equivalence against the two-phase
//     sequential spec.
//   - Token ring (testdata/token_ring.bpi, promoted to a scenario): one lap
//     of a value-passing token around a ring of forwarding stations. The
//     spec broadcasts the token payload along the ring order sequentially —
//     conformance exercises name-passing, not just synchronisation.
//
// Fault injection is a term-to-term rewrite on one station of the
// implementation (the spec is never touched):
//
//   - Crashed: the station's component is removed outright.
//   - Deaf: every input the station offers is re-pointed at a fresh, never-
//     broadcast channel — the station is alive (it still occupies a parallel
//     slot and has discard behaviour) but never hears the protocol again.
//   - Lossy: every input continuation k of the station becomes (k + τ.0) —
//     the station receives the message and then nondeterministically drops
//     it. This models an unreliable last hop behind a received broadcast.
//
// Whether a fault is observable depends on the equivalence — a fact the
// library records honestly rather than papering over. In multi-hop
// topologies every fault stalls the downstream cascade and is caught by
// STRONG step equivalence. In single-hop algorithms (election, star gossip),
// where nothing downstream depends on the dropped message, a lossy drop is
// invisible to BOTH step equivalences: strongly the drop-τ counts as the
// very step the lost output would have been (label-blind matching lets the
// spec answer a drop by actually delivering), and weakly the answer may be
// any autonomous sequence, so a recoverable deficit never shows (pinned by
// TestLossyStepInvisibility). The relation that observes the drop is WEAK
// BARBED bisimilarity under a noisy wrapper: both sides are closed under
// ν(trigger), turning the initial broadcast into a τ that barbed bisim must
// traverse; the drop-τ must then be answered by τ* alone and lands in a
// state whose weak barbs are missing the lost observable. Catalogue entries
// therefore pair each fault with the weakest relation in the suite that
// flips on it.
package protocols

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/stress"
	"bpi/internal/syntax"
)

// Rel names the equivalence a scenario's conformance is stated in, using the
// paper's three autonomous relations (inputs are implementation details of a
// protocol, so labelled bisimilarity — which observes input capabilities —
// is deliberately not a conformance relation here).
type Rel string

const (
	// RelStep is step (φ) bisimilarity, Definition 5 — the discriminating
	// relation for the catalogue: it observes every autonomous move.
	RelStep Rel = "step"
	// RelBarbed is barbed bisimilarity, Definition 3 — matched τ moves plus
	// barb preservation. Coarser than step on these protocols; the conform
	// law checks engine agreement on it as well.
	RelBarbed Rel = "barbed"
)

// FaultKind enumerates the failure patterns.
type FaultKind string

const (
	FaultNone    FaultKind = ""
	FaultCrashed FaultKind = "crashed"
	FaultDeaf    FaultKind = "deaf"
	FaultLossy   FaultKind = "lossy"
)

// Fault is one injected failure: Kind applied to the Node-th receiving
// station (1-based; the seed/sender/collector is never the target, so every
// fault hits a node that must relay or acknowledge).
type Fault struct {
	Kind FaultKind
	Node int
}

func (f Fault) String() string {
	if f.Kind == FaultNone {
		return "healthy"
	}
	return fmt.Sprintf("%s-%d", f.Kind, f.Node)
}

// Scenario is one conformance check: the implementation must (or, fault
// injected, must not) be equivalent to the spec in the named relation.
type Scenario struct {
	// Name is the unique scenario id, e.g. "gossip/line-4" or
	// "election-3/deaf-2".
	Name string
	// Algo is the algorithm family: gossip, election, multicast, bbc,
	// tokenring.
	Algo string
	// Impl is the protocol implementation (fault already injected, if any).
	Impl syntax.Proc
	// Spec is the behavioural specification; faults never touch it.
	Spec syntax.Proc
	// Rel and Weak name the conformance equivalence.
	Rel  Rel
	Weak bool
	// WantEquiv is the expected verdict: true for healthy instances, false
	// for fault-injected ones (the catalogue only includes fault/relation
	// combinations where the fault is genuinely observable).
	WantEquiv bool
	// Fault records the injected failure (zero value: healthy).
	Fault Fault
	// States is the exact state count of Impl's autonomous LTS, closed-form
	// per generator and pinned against lts.Explore by the package tests.
	// 0 means "not advertised" (some fault variants).
	States int
}

func ch(prefix string, i int) names.Name {
	return names.Name(fmt.Sprintf("%s%d", prefix, i))
}

// ---- Gossip dissemination ------------------------------------------------

// GossipLine returns the n-relay epidemic line: a seed broadcasts g0 and
// station i relays g(i-1) to gi. The implementation is exactly
// stress.Chain("g", n); the spec is the causal cascade g0!.g1!.….gn!. Its
// autonomous LTS is a line of n+2 states.
func GossipLine(n int, f Fault) Scenario {
	impl := stress.Chain("g", n)
	spec := syntax.Proc(syntax.PNil)
	for i := n; i >= 0; i-- {
		spec = syntax.Send(ch("g", i), nil, spec)
	}
	return scenario("gossip", fmt.Sprintf("gossip/line-%d", n), impl, spec,
		RelStep, false, f, n+2)
}

// GossipStar returns the single-hop epidemic star: the seed broadcasts g0,
// all n stations hear it directly and each re-broadcasts its own channel.
// The spec fires the seed and then offers the n re-broadcasts in parallel.
// States: 1 + 2^n (the seed state plus every subset of fired stations).
func GossipStar(n int, f Fault) Scenario {
	parts := []syntax.Proc{syntax.SendN(ch("g", 0))}
	specParts := make([]syntax.Proc, n)
	for i := 1; i <= n; i++ {
		parts = append(parts, syntax.Recv(ch("g", 0), nil, syntax.SendN(ch("g", i))))
		specParts[i-1] = syntax.SendN(ch("g", i))
	}
	impl := syntax.Group(parts...)
	spec := syntax.Proc(syntax.Send(ch("g", 0), nil, syntax.Group(specParts...)))
	rel, weak := lossyRel(RelStep, false, f)
	if f.Kind == FaultLossy {
		impl, spec = syntax.Restrict(impl, ch("g", 0)), syntax.Restrict(spec, ch("g", 0))
	}
	return scenario("gossip", fmt.Sprintf("gossip/star-%d", n), impl, spec,
		rel, weak, f, 1+pow2(n))
}

// GossipTree returns the epidemic broadcast tree of stress.Tree(fanout,
// depth): each station wakes on its parent's channel and re-broadcasts on
// its own. The spec nests the same broadcasts along the causal order:
// spec(v) = tv!.(spec(c1) ‖ … ‖ spec(ck)). States: the order ideals of the
// node poset, J(v) = 1 + Π J(child).
func GossipTree(fanout, depth int, f Fault) Scenario {
	impl := stress.Tree(fanout, depth)
	spec, states := treeSpec(fanout, depth)
	return scenario("gossip", fmt.Sprintf("gossip/tree-%dx%d", fanout, depth),
		impl, spec, RelStep, false, f, states)
}

// treeSpec builds the nested causal spec for stress.Tree's breadth-first
// numbering and returns it with the order-ideal state count.
func treeSpec(fanout, depth int) (syntax.Proc, int) {
	// children[v] lists v's children in stress.Tree's numbering.
	children := map[int][]int{}
	level := []int{0}
	next := 1
	for d := 1; d <= depth; d++ {
		var nl []int
		for _, p := range level {
			for c := 0; c < fanout; c++ {
				children[p] = append(children[p], next)
				nl = append(nl, next)
				next++
			}
		}
		level = nl
	}
	var build func(v int) (syntax.Proc, int)
	build = func(v int) (syntax.Proc, int) {
		kids := children[v]
		parts := make([]syntax.Proc, len(kids))
		ideals := 1
		for i, c := range kids {
			var ci int
			parts[i], ci = build(c)
			ideals *= ci
		}
		return syntax.Send(ch("t", v), nil, syntax.Group(parts...)), 1 + ideals
	}
	spec, states := build(0)
	return spec, states
}

// ---- Single-hop leader election ------------------------------------------

// Election returns the n-candidate broadcast election of internal/papers
// (and examples/leaderelect) as a closed finite term: candidate i is
//
//	claim!(candI).lead!(candI) + claim?(w).follow!(candI, w)
//
// and the spec enumerates the n atomic outcomes:
//
//	Σ_i claim!(candI).( lead!(candI) ‖ Π_{j≠i} follow!(candJ, candI) )
//
// The broadcast is what makes the spec this small: the winning claim reaches
// every loser in the same transition, so there is no partial-knowledge
// state. States: n·(2^n − 1) + 2 (the initial state, n branches each
// interleaving n parallel outputs, and the shared terminal state).
func Election(n int, f Fault) Scenario {
	const claim, lead, follow, w = names.Name("claim"), names.Name("lead"), names.Name("follow"), names.Name("w")
	impl := make([]syntax.Proc, n)
	spec := make([]syntax.Proc, n)
	for i := 0; i < n; i++ {
		id := ch("cand", i)
		impl[i] = syntax.Choice(
			syntax.Send(claim, []names.Name{id}, syntax.SendN(lead, id)),
			syntax.Recv(claim, []names.Name{w}, syntax.SendN(follow, id, w)),
		)
		outcome := []syntax.Proc{syntax.SendN(lead, id)}
		for j := 0; j < n; j++ {
			if j != i {
				outcome = append(outcome, syntax.SendN(follow, ch("cand", j), id))
			}
		}
		spec[i] = syntax.Send(claim, []names.Name{id}, syntax.Group(outcome...))
	}
	rel, weak := lossyRel(RelStep, false, f)
	implP, specP := syntax.Group(impl...), syntax.Proc(syntax.Choice(spec...))
	if f.Kind == FaultLossy {
		// The drop is only barb-visible when no other follower masks the
		// follow channel, so the catalogue states the lossy election at n=2.
		implP, specP = syntax.Restrict(implP, claim), syntax.Restrict(specP, claim)
	}
	return scenario("election", fmt.Sprintf("election-%d", n),
		implP, specP, rel, weak, f, n*(pow2(n)-1)+2)
}

// ---- Broadcast-via-multicast emulation -----------------------------------

// Multicast returns the broadcast-via-multicast emulation: a sender hands
// the message to each of n members over a private per-member channel in
// sequence (multicast as iterated unicast), and each member announces
// delivery on its public dI channel. The spec is the one-shot broadcast: one
// private channel, one internal broadcast, every member delivered at once.
//
//	impl = ν m1…mn ( m1!.m2!.….mn! ‖ Π_i mi?.dI! )
//	spec = ν b ( b! ‖ Π_i b?.dI! )
//
// Conformance is WEAK step equivalence — the emulation takes n internal
// steps where the spec takes one, and weak equivalence states exactly that
// no observer can tell. Strongly the two are inequivalent (the τ counts
// differ), which the package tests pin. States: 2^(n+1) − 1 (sender
// position k with any subset of the first k members still undelivered).
func Multicast(n int, f Fault) Scenario {
	hand := syntax.Proc(syntax.PNil)
	for i := n; i >= 1; i-- {
		hand = syntax.Send(ch("m", i), nil, hand)
	}
	implParts := []syntax.Proc{hand}
	specParts := []syntax.Proc{syntax.SendN("b")}
	var priv []names.Name
	for i := 1; i <= n; i++ {
		implParts = append(implParts, syntax.Recv(ch("m", i), nil, syntax.SendN(ch("d", i))))
		specParts = append(specParts, syntax.Recv("b", nil, syntax.SendN(ch("d", i))))
		priv = append(priv, ch("m", i))
	}
	impl := syntax.Restrict(syntax.Group(implParts...), priv...)
	spec := syntax.Restrict(syntax.Group(specParts...), "b")
	rel, _ := lossyRel(RelStep, true, f)
	return scenario("multicast", fmt.Sprintf("multicast-%d", n), impl, spec,
		rel, true, f, pow2(n+1)-1)
}

// ---- BBC-style broadcast + aggregation -----------------------------------

// BBC returns the broadcast-and-collect protocol: a collector floods a query
// in a single broadcast hop (every sensor hears it atomically), the readings
// aggregate along a convergecast chain a1 → … → an, and the collector
// announces done. Sensor 1 reports immediately; sensor i waits for the
// running aggregate a(i-1); the collector waits for the full aggregate.
//
//	impl = query! ‖ query?.a1! ‖ Π_{i≥2} query?.a(i-1)?.aI! ‖ an?.done!
//	spec = query!.a1!.….an!.done!
//
// Strong step equivalence: after the query broadcast wakes every sensor at
// once, the aggregation chain admits exactly one schedule. States: n+3.
func BBC(n int, f Fault) Scenario {
	parts := []syntax.Proc{syntax.SendN("query")}
	spec := syntax.Proc(syntax.SendN("done"))
	for i := n; i >= 1; i-- {
		spec = syntax.Send(ch("a", i), nil, spec)
	}
	spec = syntax.Send("query", nil, spec)
	for i := 1; i <= n; i++ {
		body := syntax.Proc(syntax.SendN(ch("a", i)))
		if i > 1 {
			body = syntax.Recv(ch("a", i-1), nil, body)
		}
		parts = append(parts, syntax.Recv("query", nil, body))
	}
	parts = append(parts, syntax.Recv(ch("a", n), nil, syntax.SendN("done")))
	return scenario("bbc", fmt.Sprintf("bbc-%d", n), syntax.Group(parts...),
		spec, RelStep, false, f, n+3)
}

// ---- Token ring -----------------------------------------------------------

// TokenRing returns one lap of the value-passing token ring of
// testdata/token_ring.bpi, finitely unrolled: the injector broadcasts the
// token on c0 and station i forwards the received payload from c(i-1) to
// cI. The spec relays the same payload along the ring order sequentially.
// Name-passing is the point: stations forward the name they RECEIVED, so a
// spec with the wrong payload is distinguished. States: n+2.
func TokenRing(n int, f Fault) Scenario {
	const tok = names.Name("tok")
	parts := []syntax.Proc{syntax.SendN(ch("c", 0), tok)}
	spec := syntax.Proc(syntax.PNil)
	for i := n; i >= 1; i-- {
		spec = syntax.Send(ch("c", i), []names.Name{tok}, spec)
	}
	spec = syntax.Send(ch("c", 0), []names.Name{tok}, spec)
	t := names.Name("t")
	for i := 1; i <= n; i++ {
		parts = append(parts, syntax.Recv(ch("c", i-1), []names.Name{t},
			syntax.SendN(ch("c", i), t)))
	}
	return scenario("tokenring", fmt.Sprintf("tokenring-%d", n),
		syntax.Group(parts...), spec, RelStep, false, f, n+2)
}

// ---- Fault injection ------------------------------------------------------

// scenario assembles a Scenario, applying the fault to impl. Fault-free
// scenarios advertise the closed-form state count; fault variants do not
// (the count is no longer the generator's formula).
func scenario(algo, name string, impl, spec syntax.Proc, rel Rel, weak bool,
	f Fault, states int) Scenario {
	s := Scenario{
		Name: name, Algo: algo, Impl: impl, Spec: spec,
		Rel: rel, Weak: weak, WantEquiv: true, Fault: f, States: states,
	}
	if f.Kind != FaultNone {
		s.Name = fmt.Sprintf("%s/%s", name, f)
		s.Impl = Inject(impl, f)
		s.WantEquiv = false
		s.States = 0
	}
	return s
}

// Inject applies the fault to the f.Node-th receiving station of impl (the
// stations are the top-level parallel components that offer an input,
// counted left to right, 1-based — component order is generator order, so
// node numbering matches the protocol's own). Restrictions are preserved:
// the rewrite happens on the flat parallel body under any top-level ν.
//
// Out-of-range nodes clamp to the last station, so every (fault, size)
// combination is well-defined.
func Inject(impl syntax.Proc, f Fault) syntax.Proc {
	if f.Kind == FaultNone {
		return impl
	}
	// Peel top-level restrictions.
	var binders []names.Name
	body := impl
	for {
		r, ok := body.(syntax.Res)
		if !ok {
			break
		}
		binders = append(binders, r.X)
		body = r.Body
	}
	parts := syntax.ParList(body)
	// Identify the receiving stations.
	var stations []int
	for i, p := range parts {
		if offersInput(p) {
			stations = append(stations, i)
		}
	}
	if len(stations) == 0 {
		return impl
	}
	node := f.Node
	if node < 1 {
		node = 1
	}
	if node > len(stations) {
		node = len(stations)
	}
	idx := stations[node-1]
	switch f.Kind {
	case FaultCrashed:
		parts = append(append([]syntax.Proc{}, parts[:idx]...), parts[idx+1:]...)
	case FaultDeaf:
		parts[idx] = rewriteInputs(parts[idx], func(in syntax.In) syntax.In {
			in.Ch = names.Name(fmt.Sprintf("deaf%d", node))
			return in
		}, nil)
	case FaultLossy:
		parts[idx] = rewriteInputs(parts[idx], nil, func(cont syntax.Proc) syntax.Proc {
			return syntax.Choice(cont, syntax.TauP(syntax.PNil))
		})
	}
	out := syntax.Group(parts...)
	for i := len(binders) - 1; i >= 0; i-- {
		out = syntax.Res{X: binders[i], Body: out}
	}
	return out
}

// lossyRel picks the conformance relation for a scenario where nothing
// downstream of the faulted station depends on the dropped message (the
// single-hop algorithms, and multicast where every hand-off is last-hop).
// There a lossy drop is invisible both to STRONG step equivalence (the
// drop-τ counts as the very step the lost output would have been) and to
// WEAK step equivalence (whose answers are arbitrary autonomous sequences,
// so a recoverable deficit never shows — see TestLossyStepInvisibility).
// Weak BARBED equivalence is the relation in the suite that observes the
// drop: the drop-τ must be answered by τ* alone, and it lands in a state
// whose weak barbs are missing the lost observable. For that to bite, the
// drop-τ must be REACHABLE by the bisimulation — barbed bisim only
// traverses τ moves, so the single-hop generators additionally close both
// sides under ν(trigger) (the noisy wrapper), making the initial broadcast
// internal; multicast's hand-offs are private already. Non-lossy faults
// keep the scenario's base relation.
func lossyRel(rel Rel, weak bool, f Fault) (Rel, bool) {
	if f.Kind == FaultLossy {
		return RelBarbed, true
	}
	return rel, weak
}

// offersInput reports whether a component's top-level behaviour includes an
// input prefix (possibly as a summand).
func offersInput(p syntax.Proc) bool {
	switch t := p.(type) {
	case syntax.Prefix:
		_, ok := t.Pre.(syntax.In)
		return ok
	case syntax.Sum:
		return offersInput(t.L) || offersInput(t.R)
	}
	return false
}

// rewriteInputs maps every input prefix of the component: pre rewrites the
// prefix itself (deaf), cont rewrites its continuation (lossy). Only the
// component's prefix spine and summands are visited — faults model a broken
// station interface, not a rewritten future.
func rewriteInputs(p syntax.Proc, pre func(syntax.In) syntax.In,
	cont func(syntax.Proc) syntax.Proc) syntax.Proc {
	switch t := p.(type) {
	case syntax.Prefix:
		if in, ok := t.Pre.(syntax.In); ok {
			if pre != nil {
				in = pre(in)
			}
			c := t.Cont
			if cont != nil {
				c = cont(c)
			}
			return syntax.Prefix{Pre: in, Cont: c}
		}
		return syntax.Prefix{Pre: t.Pre, Cont: rewriteInputs(t.Cont, pre, cont)}
	case syntax.Sum:
		return syntax.Sum{L: rewriteInputs(t.L, pre, cont), R: rewriteInputs(t.R, pre, cont)}
	}
	return p
}

func pow2(n int) int { return 1 << uint(n) }
