// Black-box tests for the certificate verifier. The test package may import
// the engines — the independence constraint (zero shared code) binds the
// verifier itself, and TestVerifierIndependence in the equiv package pins it
// at the import-graph level. Here the engines only play the role of
// certificate *producers*; everything they emit is replayed through Verify,
// and every mutation of a valid certificate must be rejected.
package cert_test

import (
	"reflect"
	"strings"
	"testing"

	"bpi/internal/axioms"
	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/parser"
	"bpi/internal/syntax"
)

func mustParse(t *testing.T, src string) syntax.Proc {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func newCertifying() *equiv.Checker {
	ch := equiv.NewChecker(nil)
	ch.Certify = true
	return ch
}

// pairCert produces the certificate of one pair-relation check.
func pairCert(t *testing.T, ch *equiv.Checker, rel, p, q string, weak bool) (*cert.Certificate, bool) {
	t.Helper()
	pp, qq := mustParse(t, p), mustParse(t, q)
	var r equiv.Result
	var err error
	switch rel {
	case cert.RelLabelled:
		r, err = ch.Labelled(pp, qq, weak)
	case cert.RelBarbed:
		r, err = ch.Barbed(pp, qq, weak)
	case cert.RelStep:
		r, err = ch.Step(pp, qq, weak)
	default:
		t.Fatalf("unknown relation %q", rel)
	}
	if err != nil {
		t.Fatalf("%s(%s, %s): %v", rel, p, q, err)
	}
	if r.Cert == nil {
		t.Fatalf("%s(%s, %s): no certificate from a Certify checker", rel, p, q)
	}
	return r.Cert, r.Related
}

// TestPairRelationCertificates replays engine-produced certificates for the
// three pair relations, strong and weak, positive and negative, over pairs
// that exercise τ-saturation, bound outputs, reaction challenges and the
// Remark 4 stuck listener.
func TestPairRelationCertificates(t *testing.T) {
	pairs := []struct{ p, q string }{
		{"tau.a!", "a!"},                        // weakly related, strongly not
		{"a! | b!", "a!.b! + b!.a!"},            // expansion-law instance
		{"nu x.a!(x)", "nu y.a!(y)"},            // bound output, α-varied binder
		{"b? | b?(x)", "0"},                     // stuck mixed-arity listener
		{"tau.a!(b)", "tau.a!(c)"},              // τ then differing payloads
		{"a?(x).x!", "a?(y).y!"},                // input instantiation
		{"a? + b?(x)", "b?(x) + a?"},            // two input shapes per side
		{"a?(x,y).x!", "a?(u,v).u!"},            // arity-2 payload tuples
		{"nu b.(b! | b?(x).c!)", "tau.c! + c!"}, // restricted reaction
	}
	for _, rel := range []string{cert.RelLabelled, cert.RelBarbed, cert.RelStep} {
		for _, weak := range []bool{false, true} {
			ch := newCertifying()
			for _, pq := range pairs {
				crt, related := pairCert(t, ch, rel, pq.p, pq.q, weak)
				if crt.Relation != rel || crt.Weak != weak || crt.Related != related {
					t.Errorf("%s weak=%v (%s, %s): header mismatch %+v", rel, weak, pq.p, pq.q, crt)
				}
				if err := cert.Verify(crt); err != nil {
					t.Errorf("%s weak=%v (%s, %s) related=%v: rejected: %v",
						rel, weak, pq.p, pq.q, related, err)
				}
			}
		}
	}
}

// TestOneStepAndCongruenceCertificates covers the composite certificates:
// one-step adds the strict root move table (and, weakly, discard witnesses);
// congruence embeds per-fusion one-step certificates or a distinguishing
// substitution.
func TestOneStepAndCongruenceCertificates(t *testing.T) {
	pairs := []struct{ p, q string }{
		{"a!.b!", "a!.b!"},
		{"tau.a!", "a!"}, // one-step strictness separates strongly
		{"a?(x).x!", "a?(y).y!"},
		{"a! + a!", "a!"},
		{"b? | b?(x)", "0"},
	}
	ch := newCertifying()
	for _, pq := range pairs {
		p, q := mustParse(t, pq.p), mustParse(t, pq.q)
		for _, weak := range []bool{false, true} {
			crt, ok, err := ch.OneStepCert(p, q, weak)
			if err != nil {
				t.Fatalf("onestep(%s, %s) weak=%v: %v", pq.p, pq.q, weak, err)
			}
			if crt == nil || crt.Relation != cert.RelOneStep || crt.Related != ok {
				t.Fatalf("onestep(%s, %s) weak=%v: bad certificate %+v", pq.p, pq.q, weak, crt)
			}
			if err := cert.Verify(crt); err != nil {
				t.Errorf("onestep(%s, %s) weak=%v related=%v: rejected: %v", pq.p, pq.q, weak, ok, err)
			}
		}
		crt, ok, err := ch.CongruenceCert(p, q, false)
		if err != nil {
			t.Fatalf("congruence(%s, %s): %v", pq.p, pq.q, err)
		}
		if crt == nil || crt.Relation != cert.RelCongruence || crt.Related != ok {
			t.Fatalf("congruence(%s, %s): bad certificate %+v", pq.p, pq.q, crt)
		}
		if err := cert.Verify(crt); err != nil {
			t.Errorf("congruence(%s, %s) related=%v: rejected: %v", pq.p, pq.q, ok, err)
		}
	}
}

// TestNegativeStrategyShapes drives one distinguishing pair per attacker-move
// kind, so every strategy-node replay path of the verifier (barb and discard
// observations, τ, output, reaction and strict-input challenges, strong and
// weak) is exercised by a certificate the engine actually emitted.
func TestNegativeStrategyShapes(t *testing.T) {
	ch := newCertifying()
	pairCases := []struct {
		rel  string
		p, q string
		weak bool
	}{
		{cert.RelBarbed, "a!", "b!", false},               // barb mismatch leaf
		{cert.RelBarbed, "a!", "b!", true},                // weak barb mismatch
		{cert.RelLabelled, "a!(b)", "a!(c)", false},       // output label differs
		{cert.RelLabelled, "a?(x).x!", "a?(y).c!", false}, // react: payload separates
		{cert.RelLabelled, "a?(x).x!", "a?(y).c!", true},  // weak react
		{cert.RelStep, "tau.a!", "a!", false},             // unmatched autonomous step
		{cert.RelStep, "a!.b!", "a!.c!", true},            // weak step below a move
	}
	for _, cse := range pairCases {
		crt, related := pairCert(t, ch, cse.rel, cse.p, cse.q, cse.weak)
		if related {
			t.Fatalf("%s weak=%v (%s, %s): expected a distinguishing pair", cse.rel, cse.weak, cse.p, cse.q)
		}
		if len(crt.Nodes) == 0 {
			t.Fatalf("%s weak=%v (%s, %s): negative certificate without a strategy", cse.rel, cse.weak, cse.p, cse.q)
		}
		if err := cert.Verify(crt); err != nil {
			t.Errorf("%s weak=%v (%s, %s): rejected: %v", cse.rel, cse.weak, cse.p, cse.q, err)
		}
	}
	// One-step negatives: the strict root challenge ("in") and the weak
	// discard clause have no labelled-level counterpart.
	oneStep := []struct {
		p, q string
		weak bool
	}{
		{"a?(x).x!", "b?(x).x!", false}, // strict reception unanswered
		{"a?(x).x!", "a?(y).c!", false}, // strict reception, differing derivative
		{"tau.a!", "a!", false},         // strict τ unanswered
		{"b?", "0", true},               // weak discard clause separates
	}
	for _, cse := range oneStep {
		crt, ok, err := ch.OneStepCert(mustParse(t, cse.p), mustParse(t, cse.q), cse.weak)
		if err != nil {
			t.Fatalf("onestep(%s, %s) weak=%v: %v", cse.p, cse.q, cse.weak, err)
		}
		if ok {
			t.Fatalf("onestep(%s, %s) weak=%v: expected a distinguishing pair", cse.p, cse.q, cse.weak)
		}
		if err := cert.Verify(crt); err != nil {
			t.Errorf("onestep(%s, %s) weak=%v: rejected: %v", cse.p, cse.q, cse.weak, err)
		}
	}
	// Congruence negative: the τ-law pair is ≈ but not ≈c, so the
	// certificate records the separating substitution and its strategy.
	crt, ok, err := ch.CongruenceCert(mustParse(t, "tau.c!"), mustParse(t, "c!"), true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tau.c! ≈c c! must fail (the τ-law gap)")
	}
	if err := cert.Verify(crt); err != nil {
		t.Errorf("congruence negative rejected: %v", err)
	}
}

// TestAxiomsCertificates replays prover proof objects, proved and refuted,
// including pairs that force (H)-saturation and (SP) input instantiation.
func TestAxiomsCertificates(t *testing.T) {
	pairs := []struct{ p, q string }{
		{"a! + a!", "a!"},            // (S2) idempotence — proved
		{"a!.b!", "b!.a!"},           // refuted (out labels differ)
		{"a?(x).x!", "a?(y).y!"},     // α-varied inputs — proved
		{"tau.a!(b)", "tau.a!(c)"},   // refuted below a τ (genuine Refutes)
		{"a! | b?", "a!.b? + b?.a!"}, // expansion with a listener (saturation)
		{"[a=b](b!, c!)", "c!"},      // match decided per world (refuted where a=b)
		{"a!(b)", "a!(c)"},           // refuted: output labels differ at the root
		{"a?(x).x!", "a?(x).c!"},     // refuted inside an input instantiation
		{"a?", "0"},                  // refuted: input shapes differ
		{"a? + b?(x)", "b?(x) + a?"}, // two input shapes per side, commuted
		{"nu x.a!(x)", "nu y.a!(y)"}, // bound outputs, canonical binders agree
	}
	for _, pq := range pairs {
		pr := axioms.NewProver(nil)
		pr.Certify = true
		proved, err := pr.Decide(mustParse(t, pq.p), mustParse(t, pq.q))
		if err != nil {
			t.Fatalf("Decide(%s, %s): %v", pq.p, pq.q, err)
		}
		crt := pr.Certificate()
		if crt == nil || crt.Relation != cert.RelAxioms || crt.Related != proved {
			t.Fatalf("Decide(%s, %s): bad certificate %+v", pq.p, pq.q, crt)
		}
		if err := cert.Verify(crt); err != nil {
			t.Errorf("Decide(%s, %s) proved=%v: rejected: %v", pq.p, pq.q, proved, err)
		}
	}
}

// TestMarshalRoundTrip: serialisation is loss-free — the unmarshalled
// certificate is structurally identical and still verifies.
func TestMarshalRoundTrip(t *testing.T) {
	ch := newCertifying()
	for _, pq := range [][2]string{{"nu x.a!(x)", "nu y.a!(y)"}, {"tau.a!(b)", "tau.a!(c)"}} {
		crt, _ := pairCert(t, ch, cert.RelLabelled, pq[0], pq[1], false)
		data, err := crt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := cert.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(crt, back) {
			t.Errorf("round trip changed the certificate:\n before %+v\n after  %+v", crt, back)
		}
		if err := cert.Verify(back); err != nil {
			t.Errorf("round-tripped certificate rejected: %v", err)
		}
	}
	if _, err := cert.Unmarshal([]byte("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}

// TestTamperedCertificatesRejected: every mutation of a valid certificate —
// header lies, dropped evidence, dangling indices, unparseable terms,
// strategy cycles — must be rejected, and the original must keep verifying
// afterwards (the verifier does not mutate its input).
func TestTamperedCertificatesRejected(t *testing.T) {
	ch := newCertifying()
	pos, related := pairCert(t, ch, cert.RelLabelled, "a! | b!", "a!.b! + b!.a!", false)
	if !related {
		t.Fatal("expansion-law pair must be strongly labelled bisimilar")
	}
	neg, related := pairCert(t, ch, cert.RelLabelled, "tau.a!(b)", "tau.a!(c)", false)
	if related {
		t.Fatal("tau.a!(b) ~ tau.a!(c) must fail")
	}
	clone := func(c *cert.Certificate) *cert.Certificate {
		data, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := cert.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		return back
	}
	cases := []struct {
		name   string
		tamper func(c *cert.Certificate) *cert.Certificate
	}{
		{"nil certificate", func(*cert.Certificate) *cert.Certificate { return nil }},
		{"wrong version", func(c *cert.Certificate) *cert.Certificate { c.Version = 99; return c }},
		{"unknown relation", func(c *cert.Certificate) *cert.Certificate { c.Relation = "magic"; return c }},
		{"flipped verdict", func(c *cert.Certificate) *cert.Certificate { c.Related = !c.Related; return c }},
		{"unparseable term", func(c *cert.Certificate) *cert.Certificate {
			if len(c.Terms) > 0 {
				c.Terms[0] = "(("
			} else {
				c.P = "(("
			}
			return c
		}},
	}
	for _, base := range []struct {
		name string
		crt  *cert.Certificate
	}{{"positive", pos}, {"negative", neg}} {
		for _, cse := range cases {
			mutated := cse.tamper(clone(base.crt))
			if err := cert.Verify(mutated); err == nil {
				t.Errorf("%s/%s: tampered certificate accepted", base.name, cse.name)
			}
		}
	}
	// Positive-specific: stolen evidence and dangling indices.
	c := clone(pos)
	c.Moves[0] = nil
	if err := cert.Verify(c); err == nil {
		t.Error("positive certificate with an emptied move table accepted")
	}
	c = clone(pos)
	c.Pairs = c.Pairs[:1]
	c.Moves = c.Moves[:1]
	if err := cert.Verify(c); err == nil {
		t.Error("positive certificate with dropped pairs accepted (relation not closed)")
	}
	c = clone(pos)
	c.Pairs[0] = [2]int{0, len(c.Terms) + 3}
	if err := cert.Verify(c); err == nil {
		t.Error("dangling term index accepted")
	}
	// Negative-specific: a strategy whose refutation is cyclic, and a
	// challenge whose recorded answer set lies about being empty.
	c = clone(neg)
	for i := range c.Nodes {
		for j := range c.Nodes[i].Replies {
			c.Nodes[i].Replies[j].Next = 0 // every refutation loops to the root
		}
	}
	if err := cert.Verify(c); err == nil {
		t.Error("cyclic strategy accepted")
	}
	c = clone(neg)
	c.Nodes[0].Replies = nil
	if len(c.Nodes[0].Kind) > 0 && c.Nodes[0].Kind != "barb" {
		if err := cert.Verify(c); err == nil {
			t.Error("strategy claiming an empty answer set accepted")
		}
	}
	c = clone(neg)
	c.Nodes[0].To = "0"
	if err := cert.Verify(c); err == nil {
		t.Error("strategy whose attack move is not derivable accepted")
	}
	c = clone(neg)
	if len(c.Nodes[0].Replies) > 0 {
		c.Nodes[0].Replies[0].Next = len(c.Nodes) + 9
		if err := cert.Verify(c); err == nil {
			t.Error("strategy with an out-of-range reply index accepted")
		}
		c = clone(neg)
		c.Nodes[0].Replies[0].To = "d!.d!.d!"
		if err := cert.Verify(c); err == nil {
			t.Error("strategy refuting a fabricated defender answer accepted")
		}
	}
	// The originals still verify after all that cloning and mutation.
	if err := cert.Verify(pos); err != nil {
		t.Errorf("original positive certificate no longer verifies: %v", err)
	}
	if err := cert.Verify(neg); err != nil {
		t.Errorf("original negative certificate no longer verifies: %v", err)
	}
}

// TestTamperedCompositeCertificatesRejected tampers the composite layers —
// the strict one-step move table, the embedded congruence sub-certificates
// and the axioms proof DAG — whose evidence lives outside the plain pair
// relation.
func TestTamperedCompositeCertificatesRejected(t *testing.T) {
	ch := newCertifying()
	clone := func(c *cert.Certificate) *cert.Certificate {
		data, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := cert.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		return back
	}

	// One-step positive: the strict root table is mandatory evidence.
	os, ok, err := ch.OneStepCert(mustParse(t, "a!.b!"), mustParse(t, "a!.b! + a!.b!"), false)
	if err != nil || !ok {
		t.Fatalf("onestep baseline: ok=%v err=%v", ok, err)
	}
	if err := cert.Verify(os); err != nil {
		t.Fatalf("onestep baseline rejected: %v", err)
	}
	c := clone(os)
	c.TopMoves = nil
	if err := cert.Verify(c); err == nil {
		t.Error("one-step certificate without its strict move table accepted")
	}
	c = clone(os)
	if len(c.TopMoves) > 0 {
		c.TopMoves[0].Pair = [2]int{len(c.Terms) + 1, 0}
		if err := cert.Verify(c); err == nil {
			t.Error("one-step certificate with a dangling top-move witness accepted")
		}
	}

	// Congruence positive: one embedded one-step certificate per fusion.
	cg, ok, err := ch.CongruenceCert(mustParse(t, "a! + a!"), mustParse(t, "a!"), false)
	if err != nil || !ok {
		t.Fatalf("congruence baseline: ok=%v err=%v", ok, err)
	}
	if err := cert.Verify(cg); err != nil {
		t.Fatalf("congruence baseline rejected: %v", err)
	}
	c = clone(cg)
	c.Subs = nil
	if err := cert.Verify(c); err == nil {
		t.Error("congruence certificate without its per-fusion evidence accepted")
	}
	c = clone(cg)
	if len(c.Subs) > 0 {
		c.Subs[0].Related = false
		if err := cert.Verify(c); err == nil {
			t.Error("congruence certificate with a disavowed fusion accepted")
		}
	}

	// Axioms proof: truncated world enumeration, flipped goal polarity and
	// dangling subgoal indices must all fail the replay.
	pr := axioms.NewProver(nil)
	pr.Certify = true
	proved, err := pr.Decide(mustParse(t, "a! + a!"), mustParse(t, "a!"))
	if err != nil || !proved {
		t.Fatalf("axioms baseline: proved=%v err=%v", proved, err)
	}
	ax := pr.Certificate()
	if err := cert.Verify(ax); err != nil {
		t.Fatalf("axioms baseline rejected: %v", err)
	}
	c = clone(ax)
	c.Proof = nil
	if err := cert.Verify(c); err == nil {
		t.Error("axioms certificate without a proof accepted")
	}
	c = clone(ax)
	c.Proof.Worlds = c.Proof.Worlds[:0]
	if err := cert.Verify(c); err == nil {
		t.Error("axioms certificate with a truncated world enumeration accepted")
	}
	c = clone(ax)
	c.Proof.Goals[0].Proved = !c.Proof.Goals[0].Proved
	if err := cert.Verify(c); err == nil {
		t.Error("axioms certificate with a flipped goal polarity accepted")
	}
	c = clone(ax)
	c.Proof.Worlds[0].Goal = len(c.Proof.Goals) + 7
	if err := cert.Verify(c); err == nil {
		t.Error("axioms certificate with a dangling world goal accepted")
	}
	c = clone(ax)
	top := c.Proof.Worlds[0].Goal
	c.Proof.Goals[top].Taus = nil
	c.Proof.Goals[top].Outs = nil
	c.Proof.Goals[top].Ins = nil
	if err := cert.Verify(c); err == nil {
		t.Error("axioms certificate with emptied matching steps accepted")
	}
	c = clone(ax)
	c.Proof.Goals[c.Proof.Worlds[0].Goal].FailKind = "tau"
	if err := cert.Verify(c); err == nil {
		t.Error("proved goal carrying a failure kind accepted")
	}
	c = clone(ax)
	for k := range c.Proof.Worlds[0].Rep {
		c.Proof.Worlds[0].Rep[k] = "zzz"
	}
	if err := cert.Verify(c); err == nil {
		t.Error("axioms certificate with a corrupted world representative accepted")
	}

	// Refutation lies: a proof that names the wrong failing clause must be
	// caught by the re-derivation, whichever clause it points at.
	refuted := func(p, q string) *cert.Certificate {
		t.Helper()
		pr := axioms.NewProver(nil)
		pr.Certify = true
		proved, err := pr.Decide(mustParse(t, p), mustParse(t, q))
		if err != nil || proved {
			t.Fatalf("refuted baseline (%s, %s): proved=%v err=%v", p, q, proved, err)
		}
		crt := pr.Certificate()
		if err := cert.Verify(crt); err != nil {
			t.Fatalf("refuted baseline (%s, %s) rejected: %v", p, q, err)
		}
		return crt
	}
	shapes := refuted("a?", "0") // genuinely fails the shape clause
	c = clone(shapes)
	c.Proof.Goals[c.Proof.Worlds[0].Goal].FailKind = ""
	if err := cert.Verify(c); err == nil {
		t.Error("shape refutation with its failure kind erased accepted")
	}
	c = clone(shapes)
	c.Proof.Worlds[0].Rep = map[string]string{"a": "zzz"}
	if err := cert.Verify(c); err == nil {
		t.Error("refutation in a world outside the enumeration accepted")
	}
	deep := refuted("tau.a!(b)", "tau.a!(c)") // fails below a τ, not on shapes
	c = clone(deep)
	g := &c.Proof.Goals[c.Proof.Worlds[0].Goal]
	g.FailKind = "shapes"
	if err := cert.Verify(c); err == nil {
		t.Error("refutation claiming a shape mismatch that is not there accepted")
	}
	c = clone(deep)
	g = &c.Proof.Goals[c.Proof.Worlds[0].Goal]
	g.FailKind = "discards"
	g.FailName = "a"
	if err := cert.Verify(c); err == nil {
		t.Error("refutation claiming a discard mismatch that is not there accepted")
	}
	c = clone(deep)
	g = &c.Proof.Goals[c.Proof.Worlds[0].Goal]
	g.FailKind = "discards"
	g.FailName = "zz"
	if err := cert.Verify(c); err == nil {
		t.Error("refutation over a name that is not free accepted")
	}
}

// TestHandCraftedStrategiesRejected feeds the verifier adversarial
// certificates built by hand — claims no engine would emit — and checks each
// is refused for the right reason: the verifier re-derives everything, so a
// forged observation cannot survive.
func TestHandCraftedStrategiesRejected(t *testing.T) {
	neg := func(p, q string, weak bool, nodes ...cert.Strategy) *cert.Certificate {
		return &cert.Certificate{
			Version: cert.Version, Relation: cert.RelBarbed, Weak: weak,
			Related: false, P: p, Q: q, Nodes: nodes,
		}
	}
	cases := []struct {
		name string
		crt  *cert.Certificate
	}{
		{"empty strategy", neg("a!", "b!", false)},
		{"root attacks an unrelated pair", neg("a!", "b!", false,
			cert.Strategy{P: "c!", Q: "d!", Kind: "barb", Side: "left", Label: "c"})},
		{"bad attacker side", neg("a!", "b!", false,
			cert.Strategy{P: "a!", Q: "b!", Kind: "barb", Side: "middle", Label: "a"})},
		{"barb leaf with replies", neg("a!", "b!", false,
			cert.Strategy{P: "a!", Q: "b!", Kind: "barb", Side: "left", Label: "a",
				Replies: []cert.Reply{{To: "0", Next: 0}}})},
		{"attacker lacks the claimed barb", neg("a!", "b!", false,
			cert.Strategy{P: "a!", Q: "b!", Kind: "barb", Side: "left", Label: "z"})},
		{"both sides barb", neg("a! + c!", "a!", false,
			cert.Strategy{P: "a! + c!", Q: "a!", Kind: "barb", Side: "left", Label: "a"})},
		{"defender matches the barb weakly", neg("a!", "tau.a!", true,
			cert.Strategy{P: "a!", Q: "tau.a!", Kind: "barb", Side: "left", Label: "a"})},
		{"kind invalid for the relation", neg("a!", "b!", false,
			cert.Strategy{P: "a!", Q: "b!", Kind: "react", Side: "left", Ch: "a"})},
		{"positive without a relation", &cert.Certificate{
			Version: cert.Version, Relation: cert.RelStep, Related: true, P: "a!", Q: "b!"}},
	}
	for _, cse := range cases {
		if err := cert.Verify(cse.crt); err == nil {
			t.Errorf("%s: forged certificate accepted", cse.name)
		}
	}
}

// TestVerifierBudgets: the work and closure bounds fail closed — a genuine
// certificate is rejected with a budget error, not accepted unchecked.
func TestVerifierBudgets(t *testing.T) {
	ch := newCertifying()
	crt, _ := pairCert(t, ch, cert.RelLabelled, "a! | b!", "a!.b! + b!.a!", false)
	v := &cert.Verifier{MaxWork: 1}
	if err := v.Verify(crt); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("MaxWork=1 verification: got %v, want a budget error", err)
	}
	// A sane budget accepts the same certificate.
	v = &cert.Verifier{MaxWork: 2_000_000, MaxClosure: 8192}
	if err := v.Verify(crt); err != nil {
		t.Errorf("explicit default budgets rejected a valid certificate: %v", err)
	}
}

// TestOutLabel pins the canonical output-label format shared by the prover's
// recorder and the verifier — the single point of coupling between them.
func TestOutLabel(t *testing.T) {
	if got := cert.OutLabel("a", []string{"b", "c"}, false, nil); got != "a!(b,c)" {
		t.Errorf("free output label = %q", got)
	}
	if got := cert.OutLabel("a", nil, false, nil); got != "a!()" {
		t.Errorf("empty output label = %q", got)
	}
	if got := cert.OutLabel("a", []string{"x"}, true, []string{"x"}); got != "a!(nu x;x)" {
		t.Errorf("bound output label = %q", got)
	}
}
