// Package cert defines checkable certificates for every verdict the
// reproduction can produce, plus an independent verifier.
//
// A certificate is self-contained evidence:
//
//   - A positive certificate for one of the pair relations (labelled, barbed,
//     step bisimilarity) is the finished bisimulation relation — a list of
//     canonical term pairs together with, per pair, the matching-move table
//     the engine discharged. The verifier re-derives every challenge of the
//     relation's definition from the LTS rules (internal/semantics) and
//     checks the relation is closed: each challenge has a recorded answer
//     landing back in the relation.
//   - A negative certificate is a distinguishing strategy: a DAG of attacker
//     moves (or barb/discard observations) such that every defender answer —
//     re-derived exhaustively by the verifier, weak closures included — is
//     refuted by a child node. The verifier checks the strategy is
//     inescapable and well-founded (cyclic "refutations" are rejected).
//   - One-step certificates (~+/≈+, Definitions 11/15) add the strict
//     root-level move table (TopMoves), discard-clause witnesses and an
//     embedded labelled relation for the successor pairs; congruence
//     certificates (~c/≈c) embed one one-step certificate per fusion of the
//     free names (positive) or a single distinguishing substitution plus a
//     one-step strategy (negative).
//   - An axioms certificate (Section 5) is the proof object of a Decide run:
//     per world (complete condition, Definition 16) the goal DAG of strict
//     summand matchings, (H)-saturations and (SP) input instantiations the
//     prover discharged, replayed step by step by the verifier.
//
// The verifier deliberately shares no code with internal/equiv, internal/
// refine or internal/axioms: it re-derives transitions, closures, discard
// sets, canonical renamings, instantiation universes and world enumerations
// from internal/semantics and internal/syntax alone. Certificates store
// terms as printed canonical strings; the parser round-trips the reserved
// fresh-name marker, so machine-chosen names survive serialisation.
package cert

import (
	"encoding/json"
	"fmt"
)

// Relation names a certificate can carry.
const (
	RelLabelled   = "labelled"   // Definitions 7/8
	RelBarbed     = "barbed"     // Definition 3
	RelStep       = "step"       // Definition 5
	RelOneStep    = "onestep"    // Definitions 11/15
	RelCongruence = "congruence" // Section 4 (~c / ≈c)
	RelAxioms     = "axioms"     // Section 5 (A ⊢ p = q)
)

// Version is the certificate format version this package emits and verifies.
const Version = 1

// Certificate is a self-contained, checkable verdict. Which fields are
// populated depends on Relation and Related; see the package comment.
type Certificate struct {
	Version  int    `json:"version"`
	Relation string `json:"relation"`
	Weak     bool   `json:"weak,omitempty"`
	Related  bool   `json:"related"`
	// P and Q are the compared terms, printed canonically.
	P string `json:"p"`
	Q string `json:"q"`

	// Positive pair-relation evidence: the relation as indices into Terms,
	// with Moves[i] the matching-move table discharged for Pairs[i].
	Terms []string `json:"terms,omitempty"`
	Pairs [][2]int `json:"pairs,omitempty"`
	Moves [][]Move `json:"moves,omitempty"`

	// One-step positive evidence: the strict root-level moves and the weak
	// discard-clause witnesses (the successor pairs live in Pairs above,
	// which is then a labelled bisimulation).
	TopMoves []Move           `json:"topMoves,omitempty"`
	Discards []DiscardWitness `json:"discards,omitempty"`

	// Negative evidence: the distinguishing strategy as a DAG; Nodes[0] is
	// the root. For one-step (and congruence) certificates the root node is
	// a strict one-step challenge and all descendants are labelled-level.
	Nodes []Strategy `json:"nodes,omitempty"`

	// Congruence evidence: one positive one-step certificate per fusion of
	// the free names (Subs), or the distinguishing substitution (Sigma)
	// whose specialised pair the root strategy node refutes.
	Subs  []*Certificate    `json:"subs,omitempty"`
	Sigma map[string]string `json:"sigma,omitempty"`

	// Axioms evidence (Relation == RelAxioms).
	Proof *Proof `json:"proof,omitempty"`
}

// Move is one discharged matching obligation: the challenger's move and the
// witness successor pair that answers it.
type Move struct {
	// Side is the challenger: "left" (P moves) or "right" (Q moves).
	Side string `json:"side"`
	// Kind of challenge: "tau", "out" (canonical output label), "react"
	// (reception-or-discard of a ground broadcast), "step" (label-blind
	// autonomous move) or "in" (strict reception, one-step level only).
	Kind string `json:"kind"`
	// Label is the canonical output action (kind "out").
	Label string `json:"label,omitempty"`
	// Ch and Payload identify ground broadcasts (kinds "react" and "in").
	Ch      string   `json:"ch,omitempty"`
	Payload []string `json:"payload,omitempty"`
	// Pair is the witness successor pair as (left, right) indices into
	// Terms: the challenger's derivative on the challenger's side, the
	// defender's answer on the other.
	Pair [2]int `json:"pair"`
}

// DiscardWitness discharges one weak discard-clause instance (clause 4 of
// Definition 15): the Side term discards Ch, and the witness pair — the
// discarder together with a τ*-derivative of the other side that also
// discards Ch — is in the embedded labelled relation.
type DiscardWitness struct {
	Ch   string `json:"ch"`
	Side string `json:"side"`
	Pair [2]int `json:"pair"`
}

// Strategy is one node of a distinguishing strategy DAG: an attacker
// move or observation on the pair (P, Q), with a refuting child per
// defender answer.
type Strategy struct {
	P string `json:"p"`
	Q string `json:"q"`
	// Kind: "barb" (barb mismatch leaf), "discard" (one-step discard
	// clause), "tau", "out", "react", "step" or "in".
	Kind string `json:"kind"`
	// Side is the attacker (for "barb", the side owning the barb).
	Side string `json:"side"`
	// Label is the barb name (kind "barb") or canonical output action
	// (kind "out").
	Label string `json:"label,omitempty"`
	// Ch and Payload identify the channel of "discard" and the ground
	// broadcast of "react"/"in".
	Ch      string   `json:"ch,omitempty"`
	Payload []string `json:"payload,omitempty"`
	// To is the attacker's derivative (absent for "barb" and strong
	// "discard" leaves; for weak "discard" the attacker stays put).
	To string `json:"to,omitempty"`
	// Replies refutes every defender answer. A challenge with no replies
	// claims the re-derived answer set is empty.
	Replies []Reply `json:"replies,omitempty"`
}

// Reply refutes one defender answer: the answering term and the index (into
// Certificate.Nodes) of the strategy node distinguishing the successor pair.
type Reply struct {
	To   string `json:"to"`
	Next int    `json:"next"`
}

// Proof is the evidence of an axioms (Section 5) verdict: the goal DAG of a
// Decide run. For a positive verdict Worlds lists every complete condition
// on fn(p,q) in enumeration order, each with its proved top-level goal; for
// a negative verdict Worlds holds exactly the failing world with its
// refuted goal.
type Proof struct {
	Worlds []WorldStep `json:"worlds"`
	Goals  []Goal      `json:"goals"`
}

// WorldStep is one world (complete condition) instance: the representative
// substitution and the index of its top-level goal.
type WorldStep struct {
	Rep  map[string]string `json:"rep"`
	Goal int               `json:"goal"`
}

// Goal is one decideWorld comparison in the proof DAG.
type Goal struct {
	P        string `json:"p"`
	Q        string `json:"q"`
	Saturate bool   `json:"saturate,omitempty"`
	Proved   bool   `json:"proved"`

	// Proved goals: the matching steps per summand class (both directions).
	Taus []MatchStep `json:"taus,omitempty"`
	Outs []MatchStep `json:"outs,omitempty"`
	Ins  []InStep    `json:"ins,omitempty"`

	// Refuted goals: which clause failed and, for summand-matching
	// failures, the refutation of every candidate partner.
	// FailKind: "shapes", "discards", "sat-shapes", "tau", "out", "in".
	FailKind    string       `json:"failKind,omitempty"`
	FailSide    string       `json:"failSide,omitempty"`
	FailName    string       `json:"failName,omitempty"`  // channel ("discards", "in")
	FailLabel   string       `json:"failLabel,omitempty"` // output label ("out")
	FailCont    string       `json:"failCont,omitempty"`  // unmatched continuation
	FailPayload []string     `json:"failPayload,omitempty"`
	Refutes     []RefuteStep `json:"refutes,omitempty"`
}

// MatchStep discharges one τ or output summand: the mover's continuation,
// the chosen partner continuation, and the subgoal proving them A-equal.
type MatchStep struct {
	Side    string `json:"side"`
	Label   string `json:"label,omitempty"` // output label; empty for τ
	Cont    string `json:"cont"`
	Partner string `json:"partner"`
	Next    int    `json:"next"`
}

// InStep discharges one input instantiation (the (SP) selector): the ground
// payload, the mover's instantiated continuation, the partner's, and the
// subgoal.
type InStep struct {
	Side    string   `json:"side"`
	Ch      string   `json:"ch"`
	Payload []string `json:"payload"`
	Cont    string   `json:"cont"`
	Partner string   `json:"partner"`
	Next    int      `json:"next"`
}

// RefuteStep refutes one candidate partner of a failed summand match.
type RefuteStep struct {
	Partner string `json:"partner"`
	Next    int    `json:"next"`
}

// Marshal renders the certificate as indented JSON.
func (c *Certificate) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Unmarshal parses a certificate from JSON.
func Unmarshal(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("cert: %w", err)
	}
	return &c, nil
}
