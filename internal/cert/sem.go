package cert

import (
	"fmt"
	"sort"

	"bpi/internal/names"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// vsys is the verifier's own semantic layer: canonical terms with memoised
// transitions, discard sets and closures, all re-derived from
// internal/semantics. It intentionally duplicates (rather than imports) the
// engine-side caching in internal/equiv — an error in the engine's semantic
// plumbing cannot leak into verification.
type vsys struct {
	sys     *semantics.System
	byKey   map[string]*vterm
	closure int // τ/autonomous closure budget
	steps   int // work performed so far
	maxWork int
}

type vterm struct {
	proc syntax.Proc
	key  string
	free names.Set
	// trans holds the symbolic transitions (Steps is already deduped).
	trans []semantics.Trans

	discards map[names.Name]bool
	tauS     []*vterm
	tauOK    bool
	autoS    []*vterm
	autoOK   bool
	tauC     []*vterm
	autoC    []*vterm
}

func (s *vsys) work(n int) error {
	s.steps += n
	if s.steps > s.maxWork {
		return fmt.Errorf("cert: verification work budget exhausted (%d)", s.maxWork)
	}
	return nil
}

// intern canonicalises p (Simplify + Key) and derives its transitions.
func (s *vsys) intern(p syntax.Proc) (*vterm, error) {
	p = syntax.Simplify(p)
	k := syntax.Key(p)
	if t, ok := s.byKey[k]; ok {
		return t, nil
	}
	if err := s.work(1); err != nil {
		return nil, err
	}
	ts, err := s.sys.Steps(p)
	if err != nil {
		return nil, err
	}
	t := &vterm{proc: p, key: k, free: syntax.FreeNames(p), trans: ts}
	s.byKey[k] = t
	return t, nil
}

// parse interns a printed certificate term.
func (s *vsys) parse(src string) (*vterm, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("cert: bad term %q: %w", src, err)
	}
	return s.intern(p)
}

func (s *vsys) discardsOn(t *vterm, a names.Name) (bool, error) {
	if v, ok := t.discards[a]; ok {
		return v, nil
	}
	v, err := s.sys.Discards(t.proc, a)
	if err != nil {
		return false, err
	}
	if t.discards == nil {
		t.discards = map[names.Name]bool{}
	}
	t.discards[a] = v
	return v, nil
}

func (s *vsys) tauSucc(t *vterm) ([]*vterm, error) {
	if t.tauOK {
		return t.tauS, nil
	}
	out := []*vterm{}
	for _, tr := range t.trans {
		if !tr.Act.IsTau() {
			continue
		}
		n, err := s.intern(tr.Target)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	t.tauS, t.tauOK = out, true
	return out, nil
}

// autoSucc returns the τ- and output-successors, bound outputs
// canonicalised jointly with their targets (semantics.CanonTrans), exactly
// as both the pair engine's step relation and lts.Explore intern them.
func (s *vsys) autoSucc(t *vterm) ([]*vterm, error) {
	if t.autoOK {
		return t.autoS, nil
	}
	out := []*vterm{}
	for _, tr := range t.trans {
		if !tr.Act.IsStep() {
			continue
		}
		tgt := tr.Target
		if tr.Act.IsOutput() && len(tr.Act.Bound) > 0 {
			_, tgt = semantics.CanonTrans(tr.Act, tr.Target)
		}
		n, err := s.intern(tgt)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	t.autoS, t.autoOK = out, true
	return out, nil
}

func (s *vsys) tauClosure(t *vterm) ([]*vterm, error) {
	if t.tauC != nil {
		return t.tauC, nil
	}
	cl, err := s.reach(t, s.tauSucc)
	if err != nil {
		return nil, err
	}
	t.tauC = cl
	return cl, nil
}

func (s *vsys) autoClosure(t *vterm) ([]*vterm, error) {
	if t.autoC != nil {
		return t.autoC, nil
	}
	cl, err := s.reach(t, s.autoSucc)
	if err != nil {
		return nil, err
	}
	t.autoC = cl
	return cl, nil
}

// reach is reflexive-transitive reachability, budget-bounded and sorted by
// canonical key.
func (s *vsys) reach(t *vterm, succ func(*vterm) ([]*vterm, error)) ([]*vterm, error) {
	seen := map[string]bool{t.key: true}
	out := []*vterm{t}
	work := []*vterm{t}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		next, err := succ(cur)
		if err != nil {
			return nil, err
		}
		for _, n := range next {
			if seen[n.key] {
				continue
			}
			if len(seen) >= s.closure {
				return nil, fmt.Errorf("cert: closure budget exhausted (%d states)", s.closure)
			}
			seen[n.key] = true
			out = append(out, n)
			work = append(work, n)
		}
	}
	sortVTerms(out)
	return out, nil
}

func sortVTerms(ts []*vterm) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].key < ts[j].key })
}

// strongBarbs returns the output subjects of t (p ↓a).
func strongBarbs(t *vterm) names.Set {
	out := names.NewSet()
	for _, tr := range t.trans {
		if tr.Act.IsOutput() {
			out = out.Add(tr.Act.Subj)
		}
	}
	return out
}

// hasWeakBarb reports a barb on a after some closure derivative (τ* for
// barbed, (τ∪output)* for step bisimilarity).
func (s *vsys) hasWeakBarb(t *vterm, a names.Name, auto bool) (bool, error) {
	cl, err := s.closureOf(t, auto)
	if err != nil {
		return false, err
	}
	for _, d := range cl {
		if strongBarbs(d).Contains(a) {
			return true, nil
		}
	}
	return false, nil
}

func (s *vsys) closureOf(t *vterm, auto bool) ([]*vterm, error) {
	if auto {
		return s.autoClosure(t)
	}
	return s.tauClosure(t)
}

// outputsCanon returns t's output transitions with extruded names renamed to
// the deterministic canonical sequence chosen against avoid (the same
// convention the pair engine uses: FreshVariant("e") against
// avoid ∪ fn(act), per bound name in order).
func outputsCanon(t *vterm, avoid names.Set) []semantics.Trans {
	var out []semantics.Trans
	for _, tr := range t.trans {
		if !tr.Act.IsOutput() {
			continue
		}
		out = append(out, canonOut(tr, avoid))
	}
	return out
}

func canonOut(t semantics.Trans, avoid names.Set) semantics.Trans {
	if len(t.Act.Bound) == 0 {
		return t
	}
	av := avoid.Clone().AddAll(t.Act.FreeNames())
	ren := names.Subst{}
	for _, b := range t.Act.Bound {
		nb := syntax.FreshVariant("e", av)
		av = av.Add(nb)
		ren[b] = nb
	}
	return semantics.Trans{Act: t.Act.RenameAll(ren), Target: syntax.Apply(t.Target, ren)}
}

// inputShapes returns the (channel, arity) pairs at which t listens.
func inputShapes(t *vterm) map[vshape]bool {
	out := map[vshape]bool{}
	for _, tr := range t.trans {
		if tr.Act.IsInput() {
			out[vshape{tr.Act.Subj, len(tr.Act.Objs)}] = true
		}
	}
	return out
}

type vshape struct {
	ch    names.Name
	arity int
}

func sortVShapes(ss []vshape) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].ch != ss[j].ch {
			return ss[i].ch < ss[j].ch
		}
		return ss[i].arity < ss[j].arity
	})
}

// reactions returns t's reactions to a ground broadcast ch(payload): every
// instantiated input derivative plus t itself when it discards ch.
func (s *vsys) reactions(t *vterm, ch names.Name, payload []names.Name) ([]*vterm, error) {
	out, err := s.inputDerivs(t, ch, payload)
	if err != nil {
		return nil, err
	}
	d, err := s.discardsOn(t, ch)
	if err != nil {
		return nil, err
	}
	if d {
		out = append(out, t)
	}
	return out, nil
}

// inputDerivs returns the genuine reception derivatives (no discard).
func (s *vsys) inputDerivs(t *vterm, ch names.Name, payload []names.Name) ([]*vterm, error) {
	var out []*vterm
	for _, tr := range t.trans {
		if !tr.Act.IsInput() || tr.Act.Subj != ch || len(tr.Act.Objs) != len(payload) {
			continue
		}
		_, tgt := semantics.Instantiate(tr, payload)
		n, err := s.intern(tgt)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// weakReactions returns =ε=> · ch(payload)? · =ε=> (receive-or-discard in
// the middle), deduped and sorted.
func (s *vsys) weakReactions(t *vterm, ch names.Name, payload []names.Name) ([]*vterm, error) {
	return s.weakVia(t, func(d *vterm) ([]*vterm, error) { return s.reactions(d, ch, payload) })
}

// weakInputDerivs returns =ε=> · ch(payload) · =ε=> (strict reception in
// the middle), deduped and sorted.
func (s *vsys) weakInputDerivs(t *vterm, ch names.Name, payload []names.Name) ([]*vterm, error) {
	return s.weakVia(t, func(d *vterm) ([]*vterm, error) { return s.inputDerivs(d, ch, payload) })
}

func (s *vsys) weakVia(t *vterm, mid func(*vterm) ([]*vterm, error)) ([]*vterm, error) {
	pre, err := s.tauClosure(t)
	if err != nil {
		return nil, err
	}
	seen := map[string]*vterm{}
	for _, d := range pre {
		ms, err := mid(d)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			post, err := s.tauClosure(m)
			if err != nil {
				return nil, err
			}
			for _, f := range post {
				seen[f.key] = f
			}
		}
	}
	out := make([]*vterm, 0, len(seen))
	for _, f := range seen {
		out = append(out, f)
	}
	sortVTerms(out)
	return out, nil
}

// freeUnion returns fn(p) ∪ fn(q) as a fresh set.
func freeUnion(p, q *vterm) names.Set {
	return p.free.Clone().AddAll(q.free)
}

// pairUniverse is the instantiation universe of a pair: the shared free
// names plus `extra` deterministic reservoir names fresh for the pair.
func pairUniverse(p, q *vterm, extra int) []names.Name {
	avoid := freeUnion(p, q)
	u := avoid.Sorted()
	for i := 0; i < extra; i++ {
		w := syntax.FreshVariant("w", avoid)
		avoid = avoid.Add(w)
		u = append(u, w)
	}
	return u
}

// vtuples enumerates u^k in odometer order (position 0 most significant).
func vtuples(u []names.Name, k int) [][]names.Name {
	if k == 0 {
		return [][]names.Name{nil}
	}
	if len(u) == 0 {
		return nil
	}
	var out [][]names.Name
	idx := make([]int, k)
	for {
		t := make([]names.Name, k)
		for i, j := range idx {
			t[i] = u[j]
		}
		out = append(out, t)
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(u) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

func nameStrings(ns []names.Name) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = string(n)
	}
	return out
}

func toNames(ss []string) []names.Name {
	out := make([]names.Name, len(ss))
	for i, s := range ss {
		out[i] = names.Name(s)
	}
	return out
}
