package cert

import (
	"errors"
	"fmt"
	"strings"

	"bpi/internal/names"
	"bpi/internal/parser"
	"bpi/internal/syntax"
)

// OutLabel renders the canonical label of an output summand — channel, full
// object tuple and (for bound outputs) the canonical extruded binder. The
// prover's proof recorder and this verifier must agree on it, so it lives
// here and internal/axioms calls it.
func OutLabel(ch string, objs []string, bound bool, binder []string) string {
	if bound {
		return ch + "!(nu " + strings.Join(binder, ",") + ";" + strings.Join(objs, ",") + ")"
	}
	return ch + "!(" + strings.Join(objs, ",") + ")"
}

// vsum is the verifier's head-normal-form summand (mirrors the prover's
// Summand without importing internal/axioms).
type vsum struct {
	kind   int // 0 τ, 1 out, 2 in
	ch     names.Name
	objs   []names.Name
	binder []names.Name
	bound  bool
	cont   syntax.Proc
}

const (
	sumTau = iota
	sumOut
	sumIn
)

func (s vsum) label() string {
	return OutLabel(string(s.ch), nameStrings(s.objs), s.bound, nameStrings(s.binder))
}

// vWorld mirrors the prover's World: the representative substitution of one
// partition of the free names.
type vWorld struct{ rep names.Subst }

// vWorlds re-enumerates every partition of v, in the same order as the
// prover (element i joins each existing class in order, then founds a new
// one).
func vWorlds(v names.Set) []vWorld {
	sorted := v.Sorted()
	var out []vWorld
	var rec func(i int, classes [][]names.Name)
	rec = func(i int, classes [][]names.Name) {
		if i == len(sorted) {
			rep := names.Subst{}
			for _, cls := range classes {
				least := cls[0]
				for _, x := range cls {
					if x < least {
						least = x
					}
				}
				for _, x := range cls {
					rep[x] = least
				}
			}
			out = append(out, vWorld{rep: rep})
			return
		}
		x := sorted[i]
		for k := range classes {
			classes[k] = append(classes[k], x)
			rec(i+1, classes)
			classes[k] = classes[k][:len(classes[k])-1]
		}
		rec(i+1, append(classes, []names.Name{x}))
	}
	rec(0, nil)
	return out
}

func sameRep(got map[string]string, want names.Subst) bool {
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		if got[string(k)] != string(v) {
			return false
		}
	}
	return true
}

// verifyAxioms replays a Decide proof object: world coverage at the top,
// then the goal DAG — strict shape/discard comparisons, (H)-saturations,
// summand matchings and (SP) input instantiations — each re-derived from
// the LTS rules.
func (ck *checker) verifyAxioms(c *Certificate) error {
	if c.Proof == nil {
		return errors.New("cert: axioms certificate has no proof")
	}
	p, err := parser.Parse(c.P)
	if err != nil {
		return fmt.Errorf("cert: bad term %q: %w", c.P, err)
	}
	q, err := parser.Parse(c.Q)
	if err != nil {
		return fmt.Errorf("cert: bad term %q: %w", c.Q, err)
	}
	if !syntax.IsFinite(p) || !syntax.IsFinite(q) {
		return errors.New("cert: axioms certificates cover finite processes only")
	}
	av := &axVerifier{ck: ck, goals: c.Proof.Goals, state: make([]int, len(c.Proof.Goals))}
	fn := syntax.FreeNames(p).AddAll(syntax.FreeNames(q))
	worlds := vWorlds(fn)
	if c.Related {
		if len(c.Proof.Worlds) != len(worlds) {
			return fmt.Errorf("cert: proof covers %d worlds, the pair has %d", len(c.Proof.Worlds), len(worlds))
		}
		for i, w := range worlds {
			ws := c.Proof.Worlds[i]
			if !sameRep(ws.Rep, w.rep) {
				return fmt.Errorf("cert: world %d representative differs from the enumeration", i)
			}
			pw, qw := syntax.Apply(p, w.rep), syntax.Apply(q, w.rep)
			if err := av.checkGoal(ws.Goal, syntax.String(pw), syntax.String(qw), false, true); err != nil {
				return fmt.Errorf("world %d: %w", i, err)
			}
		}
		return nil
	}
	if len(c.Proof.Worlds) != 1 {
		return fmt.Errorf("cert: refutation must name exactly one failing world, got %d", len(c.Proof.Worlds))
	}
	ws := c.Proof.Worlds[0]
	var rep names.Subst
	for _, w := range worlds {
		if sameRep(ws.Rep, w.rep) {
			rep = w.rep
			break
		}
	}
	if rep == nil {
		return errors.New("cert: refuting world is not a partition of the pair's free names")
	}
	pw, qw := syntax.Apply(p, rep), syntax.Apply(q, rep)
	return av.checkGoal(ws.Goal, syntax.String(pw), syntax.String(qw), false, false)
}

type axVerifier struct {
	ck    *checker
	goals []Goal
	state []int
}

// checkGoal verifies that goal i proves (or refutes) exactly the comparison
// the parent expects, then replays its body once (the DAG is shared; cycles
// are rejected — the induction measure of Theorem 7 strictly decreases, so
// a cyclic proof is no proof).
func (av *axVerifier) checkGoal(i int, wantP, wantQ string, wantSat, wantProved bool) error {
	if i < 0 || i >= len(av.goals) {
		return fmt.Errorf("cert: goal index %d out of range", i)
	}
	g := av.goals[i]
	if g.P != wantP || g.Q != wantQ {
		return fmt.Errorf("cert: goal %d compares (%s, %s), parent expected (%s, %s)", i, g.P, g.Q, wantP, wantQ)
	}
	if g.Saturate != wantSat {
		return fmt.Errorf("cert: goal %d saturation level mismatch", i)
	}
	if g.Proved != wantProved {
		return fmt.Errorf("cert: goal %d verdict %v, parent expected %v", i, g.Proved, wantProved)
	}
	switch av.state[i] {
	case nodeDone:
		return nil
	case nodeInProgress:
		return fmt.Errorf("cert: cyclic proof through goal %d", i)
	}
	av.state[i] = nodeInProgress
	if err := av.checkGoal1(i, g); err != nil {
		return err
	}
	av.state[i] = nodeDone
	return nil
}

func (av *axVerifier) checkGoal1(i int, g Goal) error {
	if err := av.ck.s.work(1); err != nil {
		return err
	}
	if g.Proved && g.FailKind != "" {
		return fmt.Errorf("cert: goal %d is marked proved but records failure kind %q", i, g.FailKind)
	}
	p, err := parser.Parse(g.P)
	if err != nil {
		return fmt.Errorf("cert: goal %d: bad term: %w", i, err)
	}
	q, err := parser.Parse(g.Q)
	if err != nil {
		return fmt.Errorf("cert: goal %d: bad term: %w", i, err)
	}
	fn := syntax.FreeNames(p).AddAll(syntax.FreeNames(q))
	pT, pO, pI, err := av.summands(p, fn)
	if err != nil {
		return err
	}
	qT, qO, qI, err := av.summands(q, fn)
	if err != nil {
		return err
	}
	pShapes, qShapes := vShapesOf(pI), vShapesOf(qI)

	if !g.Saturate {
		// Strict phase: equal input shapes AND equal Table 2 discard sets.
		if g.FailKind == "shapes" {
			if vShapeEq(pShapes, qShapes) {
				return fmt.Errorf("cert: goal %d claims a shape mismatch, but shapes agree", i)
			}
			return nil
		}
		if !vShapeEq(pShapes, qShapes) {
			return fmt.Errorf("cert: goal %d: input shapes differ but goal does not record it", i)
		}
		if g.FailKind == "discards" {
			a := names.Name(g.FailName)
			if !fn.Contains(a) {
				return fmt.Errorf("cert: goal %d: discard-failure name %s is not free in the pair", i, a)
			}
			dp, err := av.ck.s.sys.Discards(p, a)
			if err != nil {
				return err
			}
			dq, err := av.ck.s.sys.Discards(q, a)
			if err != nil {
				return err
			}
			if dp == dq {
				return fmt.Errorf("cert: goal %d claims discard sets differ on %s, but they agree", i, a)
			}
			return nil
		}
		for _, a := range fn.Sorted() {
			dp, err := av.ck.s.sys.Discards(p, a)
			if err != nil {
				return err
			}
			dq, err := av.ck.s.sys.Discards(q, a)
			if err != nil {
				return err
			}
			if dp != dq {
				return fmt.Errorf("cert: goal %d: discard sets differ on %s but goal does not record it", i, a)
			}
		}
	} else {
		// (H) saturation: complete each side with inoffensive inputs for the
		// shapes only the other side listens on (and the side discards).
		satP, err := av.saturations(p, pShapes, qShapes, fn)
		if err != nil {
			return err
		}
		satQ, err := av.saturations(q, qShapes, pShapes, fn)
		if err != nil {
			return err
		}
		pI = append(pI, satP...)
		qI = append(qI, satQ...)
		pShapes, qShapes = vShapesOf(pI), vShapesOf(qI)
		if g.FailKind == "sat-shapes" {
			if vShapeEq(pShapes, qShapes) {
				return fmt.Errorf("cert: goal %d claims a post-saturation shape mismatch, but shapes agree", i)
			}
			return nil
		}
		if !vShapeEq(pShapes, qShapes) {
			return fmt.Errorf("cert: goal %d: saturated shapes differ but goal does not record it", i)
		}
	}

	if g.Proved {
		return av.checkProved(i, g, pT, pO, pI, qT, qO, qI, fn)
	}
	return av.checkRefuted(i, g, pT, pO, pI, qT, qO, qI, fn)
}

func (av *axVerifier) checkProved(i int, g Goal, pT, pO, pI, qT, qO, qI []vsum, fn names.Set) error {
	// τ summands: both directions, partner must be a real τ continuation.
	taus := map[string]MatchStep{}
	for _, st := range g.Taus {
		taus[st.Side+"\x00"+st.Cont] = st
	}
	for _, dir := range [2]struct {
		side           string
		movers, others []vsum
	}{{"left", pT, qT}, {"right", qT, pT}} {
		partnerConts := map[string]bool{}
		for _, r := range dir.others {
			partnerConts[syntax.String(r.cont)] = true
		}
		for _, s := range dir.movers {
			cont := syntax.String(s.cont)
			st, ok := taus[dir.side+"\x00"+cont]
			if !ok {
				return fmt.Errorf("cert: goal %d: unmatched τ summand %s on the %s side", i, cont, dir.side)
			}
			if !partnerConts[st.Partner] {
				return fmt.Errorf("cert: goal %d: τ partner %s is not a τ summand of the other side", i, st.Partner)
			}
			if err := av.checkGoal(st.Next, cont, st.Partner, true, true); err != nil {
				return err
			}
		}
	}
	// Output summands: matched on identical canonical labels.
	outs := map[string]MatchStep{}
	for _, st := range g.Outs {
		outs[st.Side+"\x00"+st.Label+"\x00"+st.Cont] = st
	}
	for _, dir := range [2]struct {
		side           string
		movers, others []vsum
	}{{"left", pO, qO}, {"right", qO, pO}} {
		for _, s := range dir.movers {
			lab, cont := s.label(), syntax.String(s.cont)
			st, ok := outs[dir.side+"\x00"+lab+"\x00"+cont]
			if !ok {
				return fmt.Errorf("cert: goal %d: unmatched output %s on the %s side", i, lab, dir.side)
			}
			okPartner := false
			for _, r := range dir.others {
				if r.label() == lab && syntax.String(r.cont) == st.Partner {
					okPartner = true
					break
				}
			}
			if !okPartner {
				return fmt.Errorf("cert: goal %d: output partner %s has no summand with label %s", i, st.Partner, lab)
			}
			if err := av.checkGoal(st.Next, cont, st.Partner, true, true); err != nil {
				return err
			}
		}
	}
	// Input summands: per-instantiation (SP) matching, both directions.
	ins := map[string]InStep{}
	for _, st := range g.Ins {
		ins[st.Side+"\x00"+st.Ch+"\x00"+strings.Join(st.Payload, ",")+"\x00"+st.Cont] = st
	}
	for _, dir := range [2]struct {
		side           string
		movers, others []vsum
	}{{"left", pI, qI}, {"right", qI, pI}} {
		for _, l := range dir.movers {
			univ := inputUniverse(fn, len(l.binder))
			for _, payload := range vtuples(univ, len(l.binder)) {
				if err := av.ck.s.work(1); err != nil {
					return err
				}
				lc := syntax.String(syntax.Instantiate(l.cont, l.binder, payload))
				ps := strings.Join(nameStrings(payload), ",")
				st, ok := ins[dir.side+"\x00"+string(l.ch)+"\x00"+ps+"\x00"+lc]
				if !ok {
					return fmt.Errorf("cert: goal %d: unmatched input instantiation %s?(%s) on the %s side",
						i, l.ch, ps, dir.side)
				}
				okPartner := false
				for _, r := range dir.others {
					if r.ch != l.ch || len(r.binder) != len(l.binder) {
						continue
					}
					if syntax.String(syntax.Instantiate(r.cont, r.binder, payload)) == st.Partner {
						okPartner = true
						break
					}
				}
				if !okPartner {
					return fmt.Errorf("cert: goal %d: input partner %s is not an instantiation of the other side", i, st.Partner)
				}
				if err := av.checkGoal(st.Next, lc, st.Partner, true, true); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkRefuted verifies a summand-matching failure: the named mover exists,
// and EVERY candidate partner is refuted by a recorded sub-refutation.
func (av *axVerifier) checkRefuted(i int, g Goal, pT, pO, pI, qT, qO, qI []vsum, fn names.Set) error {
	refutes := map[string]RefuteStep{}
	for _, r := range g.Refutes {
		refutes[r.Partner] = r
	}
	refuteAll := func(moverCont string, partners []string) error {
		seen := map[string]bool{}
		for _, pc := range partners {
			if seen[pc] {
				continue
			}
			seen[pc] = true
			r, ok := refutes[pc]
			if !ok {
				return fmt.Errorf("cert: goal %d: candidate partner %s is not refuted", i, pc)
			}
			if err := av.checkGoal(r.Next, moverCont, pc, true, false); err != nil {
				return err
			}
		}
		return nil
	}
	movers := func(left []vsum, right []vsum) []vsum {
		if g.FailSide == "right" {
			return right
		}
		return left
	}
	switch g.FailKind {
	case "tau":
		ms, os := movers(pT, qT), movers(qT, pT)
		if !hasCont(ms, g.FailCont) {
			return fmt.Errorf("cert: goal %d: no τ summand with continuation %s on the %s side", i, g.FailCont, g.FailSide)
		}
		var partners []string
		for _, r := range os {
			partners = append(partners, syntax.String(r.cont))
		}
		return refuteAll(g.FailCont, partners)
	case "out":
		ms, os := movers(pO, qO), movers(qO, pO)
		found := false
		for _, s := range ms {
			if s.label() == g.FailLabel && syntax.String(s.cont) == g.FailCont {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cert: goal %d: no output %s with continuation %s on the %s side",
				i, g.FailLabel, g.FailCont, g.FailSide)
		}
		var partners []string
		for _, r := range os {
			if r.label() == g.FailLabel {
				partners = append(partners, syntax.String(r.cont))
			}
		}
		return refuteAll(g.FailCont, partners)
	case "in":
		ms, os := movers(pI, qI), movers(qI, pI)
		ch, payload := names.Name(g.FailName), toNames(g.FailPayload)
		found := false
		for _, l := range ms {
			if l.ch != ch || len(l.binder) != len(payload) {
				continue
			}
			if syntax.String(syntax.Instantiate(l.cont, l.binder, payload)) == g.FailCont {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cert: goal %d: no input instantiation %s?(%s) yielding %s on the %s side",
				i, ch, strings.Join(g.FailPayload, ","), g.FailCont, g.FailSide)
		}
		var partners []string
		for _, r := range os {
			if r.ch != ch || len(r.binder) != len(payload) {
				continue
			}
			partners = append(partners, syntax.String(syntax.Instantiate(r.cont, r.binder, payload)))
		}
		return refuteAll(g.FailCont, partners)
	default:
		return fmt.Errorf("cert: goal %d: refuted with unknown failure kind %q", i, g.FailKind)
	}
}

func hasCont(ss []vsum, cont string) bool {
	for _, s := range ss {
		if syntax.String(s.cont) == cont {
			return true
		}
	}
	return false
}

// summands mirrors the prover's summandSets: the τ/output/input summand
// lists with bound outputs canonicalised against the pair's free names.
func (av *axVerifier) summands(p syntax.Proc, avoid names.Set) (taus, outs, ins []vsum, err error) {
	ts, err := av.ck.s.sys.Steps(p)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, t := range ts {
		switch {
		case t.Act.IsTau():
			taus = append(taus, vsum{kind: sumTau, cont: t.Target})
		case t.Act.IsInput():
			ins = append(ins, vsum{kind: sumIn, ch: t.Act.Subj, binder: t.Act.Objs, cont: t.Target})
		default:
			if len(t.Act.Bound) > 0 {
				t = canonOut(t, avoid)
				outs = append(outs, vsum{kind: sumOut, ch: t.Act.Subj, objs: t.Act.Objs,
					binder: t.Act.Bound, bound: true, cont: t.Target})
			} else {
				outs = append(outs, vsum{kind: sumOut, ch: t.Act.Subj, objs: t.Act.Objs, cont: t.Target})
			}
		}
	}
	return taus, outs, ins, nil
}

// saturations mirrors the prover's (H) completion: one inoffensive input
// per shape the other side listens on and p discards, binder fresh for fn.
func (av *axVerifier) saturations(p syntax.Proc, own, other map[vshape]bool, fn names.Set) ([]vsum, error) {
	var out []vsum
	for sh := range other {
		if own[sh] {
			continue
		}
		disc, err := av.ck.s.sys.Discards(p, sh.ch)
		if err != nil {
			return nil, err
		}
		if !disc {
			continue
		}
		binder := make([]names.Name, sh.arity)
		avoid := fn.Clone()
		for j := range binder {
			binder[j] = syntax.FreshVariant("z", avoid)
			avoid = avoid.Add(binder[j])
		}
		out = append(out, vsum{kind: sumIn, ch: sh.ch, binder: binder, cont: p})
	}
	return out, nil
}

// inputUniverse is the (SP) instantiation universe: the shared free names
// plus enough fresh names to realise every equality pattern.
func inputUniverse(fn names.Set, arity int) []names.Name {
	univ := fn.Sorted()
	avoid := fn.Clone()
	for i := 0; i < arity; i++ {
		w := syntax.FreshVariant("w", avoid)
		avoid = avoid.Add(w)
		univ = append(univ, w)
	}
	return univ
}

func vShapesOf(ins []vsum) map[vshape]bool {
	out := map[vshape]bool{}
	for _, s := range ins {
		out[vshape{s.ch, len(s.binder)}] = true
	}
	return out
}

func vShapeEq(a, b map[vshape]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
