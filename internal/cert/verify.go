package cert

import (
	"errors"
	"fmt"
	"strings"

	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Verifier re-checks certificates against internal/semantics alone. The zero
// value works; Sys supplies process definitions when the certified terms use
// constants.
type Verifier struct {
	Sys *semantics.System
	// MaxClosure bounds each τ*/(τ∪output)* closure (default 8192 states).
	MaxClosure int
	// MaxWork bounds the total verification work — term internings plus
	// checked challenges (default 2,000,000).
	MaxWork int
}

// Verify checks c with a default Verifier.
func Verify(c *Certificate) error { return (&Verifier{}).Verify(c) }

// Verify replays the certificate's evidence. A nil error means the verdict
// (Related, for Relation on P and Q, Weak or strong) is established.
func (v *Verifier) Verify(c *Certificate) error {
	if c == nil {
		return errors.New("cert: nil certificate")
	}
	if c.Version != Version {
		return fmt.Errorf("cert: unsupported certificate version %d (want %d)", c.Version, Version)
	}
	sys := v.Sys
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	closure := v.MaxClosure
	if closure <= 0 {
		closure = 8192
	}
	work := v.MaxWork
	if work <= 0 {
		work = 2_000_000
	}
	ck := &checker{s: &vsys{sys: sys, byKey: map[string]*vterm{}, closure: closure, maxWork: work}}
	switch c.Relation {
	case RelLabelled, RelBarbed, RelStep:
		return ck.verifyPairRelation(c)
	case RelOneStep:
		return ck.verifyOneStep(c)
	case RelCongruence:
		return ck.verifyCongruence(c)
	case RelAxioms:
		return ck.verifyAxioms(c)
	default:
		return fmt.Errorf("cert: unknown relation %q", c.Relation)
	}
}

type checker struct {
	s *vsys
}

// ---- shared relation machinery --------------------------------------------

// relTable is a loaded positive relation: parsed terms, the pair set and the
// per-pair move tables indexed by challenge identity.
type relTable struct {
	terms  []*vterm
	pairs  [][2]int
	moves  []map[string]Move
	member map[string]bool // oriented "kp\x00kq"
}

func moveKey(side, kind, label, ch string, payload []string, moverKey string) string {
	return strings.Join([]string{side, kind, label, ch, strings.Join(payload, ","), moverKey}, "\x00")
}

// loadRelation parses a positive certificate's relation. An empty relation is
// legal — a one-step certificate over challenge-free terms embeds one — and
// simply fails any later membership check.
func (ck *checker) loadRelation(c *Certificate) (*relTable, error) {
	if len(c.Moves) != len(c.Pairs) {
		return nil, fmt.Errorf("cert: %d pairs but %d move tables", len(c.Pairs), len(c.Moves))
	}
	rt := &relTable{pairs: c.Pairs, member: map[string]bool{}}
	rt.terms = make([]*vterm, len(c.Terms))
	for i, src := range c.Terms {
		t, err := ck.s.parse(src)
		if err != nil {
			return nil, err
		}
		rt.terms[i] = t
	}
	rt.moves = make([]map[string]Move, len(c.Pairs))
	for i, pr := range c.Pairs {
		if pr[0] < 0 || pr[0] >= len(rt.terms) || pr[1] < 0 || pr[1] >= len(rt.terms) {
			return nil, fmt.Errorf("cert: pair %d indices out of range", i)
		}
		rt.member[rt.terms[pr[0]].key+"\x00"+rt.terms[pr[1]].key] = true
		mm := make(map[string]Move, len(c.Moves[i]))
		for _, mv := range c.Moves[i] {
			if mv.Pair[0] < 0 || mv.Pair[0] >= len(rt.terms) || mv.Pair[1] < 0 || mv.Pair[1] >= len(rt.terms) {
				return nil, fmt.Errorf("cert: pair %d: move witness indices out of range", i)
			}
			k := moveKey(mv.Side, mv.Kind, mv.Label, mv.Ch, mv.Payload, rt.terms[moverIndexOf(mv)].key)
			mm[k] = mv
		}
		rt.moves[i] = mm
	}
	return rt, nil
}

// moverIndexOf returns which coordinate of the witness pair is the
// challenger's derivative.
func moverIndexOf(mv Move) int {
	if mv.Side == "right" {
		return mv.Pair[1]
	}
	return mv.Pair[0]
}

// has reports membership of (kp, kq) in the relation up to swap: if every
// listed pair passes the closure check, R ∪ R⁻¹ is a bisimulation, so
// either orientation is sound evidence.
func (rt *relTable) has(kp, kq string) bool {
	return rt.member[kp+"\x00"+kq] || rt.member[kq+"\x00"+kp]
}

func keysOf(ts []*vterm) map[string]bool {
	out := make(map[string]bool, len(ts))
	for _, t := range ts {
		out[t.key] = true
	}
	return out
}

// requireMove checks that the challenge (side, kind, label/ch/payload) of the
// given mover derivative is answered by pair i's move table: the recorded
// witness must put the mover's derivative on the challenger's side, an
// actually derivable answer on the other, and the witness pair must be in
// the relation.
func (ck *checker) requireMove(rt *relTable, i int, side, kind, label, ch string,
	payload []string, mover *vterm, answers map[string]bool) error {
	if err := ck.s.work(1); err != nil {
		return err
	}
	mv, ok := rt.moves[i][moveKey(side, kind, label, ch, payload, mover.key)]
	if !ok {
		return fmt.Errorf("cert: pair %d: unanswered %s %s challenge of %s side (to %s)",
			i, kind, label+ch, side, syntax.String(mover.proc))
	}
	ansIdx := mv.Pair[1]
	if side == "right" {
		ansIdx = mv.Pair[0]
	}
	if !answers[rt.terms[ansIdx].key] {
		return fmt.Errorf("cert: pair %d: witness answer %s is not a derivable %s response",
			i, syntax.String(rt.terms[ansIdx].proc), kind)
	}
	if !rt.has(rt.terms[mv.Pair[0]].key, rt.terms[mv.Pair[1]].key) {
		return fmt.Errorf("cert: pair %d: witness pair (%s, %s) is not in the relation",
			i, syntax.String(rt.terms[mv.Pair[0]].proc), syntax.String(rt.terms[mv.Pair[1]].proc))
	}
	return nil
}

// checkClosure verifies that every listed pair discharges every challenge of
// the relation's definition — the relation is a (weak) bisimulation.
func (ck *checker) checkClosure(rt *relTable, kind string, weak bool) error {
	for i, pr := range rt.pairs {
		p, q := rt.terms[pr[0]], rt.terms[pr[1]]
		if err := ck.s.work(1); err != nil {
			return err
		}
		var err error
		switch kind {
		case RelLabelled:
			err = ck.labelledChallenges(rt, i, p, q, weak)
		case RelBarbed:
			err = ck.barbedChallenges(rt, i, p, q, weak)
		case RelStep:
			err = ck.stepChallenges(rt, i, p, q, weak)
		default:
			err = fmt.Errorf("cert: relation %q has no pair closure", kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// tauAnswers is the τ-challenge answer set: strong successors, or the full
// τ* closure (staying put allowed) when weak.
func (ck *checker) tauAnswers(t *vterm, weak bool) ([]*vterm, error) {
	if !weak {
		return ck.s.tauSucc(t)
	}
	return ck.s.tauClosure(t)
}

func (ck *checker) labelledChallenges(rt *relTable, i int, p, q *vterm, weak bool) error {
	// Clause 1: τ.
	if err := ck.tauChallenges(rt, i, p, q, weak, "tau"); err != nil {
		return err
	}
	// Clause 2: outputs on identical canonical labels.
	avoid := freeUnion(p, q)
	for _, dir := range [2]struct {
		side         string
		mover, other *vterm
	}{{"left", p, q}, {"right", q, p}} {
		answers, err := ck.outputAnswers(dir.other, avoid, weak)
		if err != nil {
			return err
		}
		for _, mt := range outputsCanon(dir.mover, avoid) {
			mtgt, err := ck.s.intern(mt.Target)
			if err != nil {
				return err
			}
			lab := mt.Act.String()
			if err := ck.requireMove(rt, i, dir.side, "out", lab, "", nil, mtgt, answers[lab]); err != nil {
				return err
			}
		}
	}
	// Clause 3: receptions-or-discards over the pair universe.
	shapes := inputShapes(p)
	for s := range inputShapes(q) {
		shapes[s] = true
	}
	ordered := make([]vshape, 0, len(shapes))
	for s := range shapes {
		ordered = append(ordered, s)
	}
	sortVShapes(ordered)
	for _, sh := range ordered {
		u := pairUniverse(p, q, sh.arity)
		for _, payload := range vtuples(u, sh.arity) {
			if err := ck.s.work(1); err != nil {
				return err
			}
			pm, err := ck.s.reactions(p, sh.ch, payload)
			if err != nil {
				return err
			}
			qm, err := ck.s.reactions(q, sh.ch, payload)
			if err != nil {
				return err
			}
			pAns, qAns := pm, qm
			if weak {
				if pAns, err = ck.s.weakReactions(p, sh.ch, payload); err != nil {
					return err
				}
				if qAns, err = ck.s.weakReactions(q, sh.ch, payload); err != nil {
					return err
				}
			}
			ps := nameStrings(payload)
			qKeys, pKeys := keysOf(qAns), keysOf(pAns)
			for _, r := range pm {
				if err := ck.requireMove(rt, i, "left", "react", "", string(sh.ch), ps, r, qKeys); err != nil {
					return err
				}
			}
			for _, r := range qm {
				if err := ck.requireMove(rt, i, "right", "react", "", string(sh.ch), ps, r, pKeys); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// outputAnswers maps canonical output labels to the answer keys of `other`:
// strong targets, or τ* · label · τ* finals when weak.
func (ck *checker) outputAnswers(other *vterm, avoid names.Set, weak bool) (map[string]map[string]bool, error) {
	answers := map[string]map[string]bool{}
	collect := func(src *vterm) error {
		for _, ot := range outputsCanon(src, avoid) {
			tgt, err := ck.s.intern(ot.Target)
			if err != nil {
				return err
			}
			finals := []*vterm{tgt}
			if weak {
				if finals, err = ck.s.tauClosure(tgt); err != nil {
					return err
				}
			}
			lab := ot.Act.String()
			if answers[lab] == nil {
				answers[lab] = map[string]bool{}
			}
			for _, f := range finals {
				answers[lab][f.key] = true
			}
		}
		return nil
	}
	sources := []*vterm{other}
	if weak {
		cl, err := ck.s.tauClosure(other)
		if err != nil {
			return nil, err
		}
		sources = cl
	}
	for _, s := range sources {
		if err := collect(s); err != nil {
			return nil, err
		}
	}
	return answers, nil
}

func (ck *checker) tauChallenges(rt *relTable, i int, p, q *vterm, weak bool, kind string) error {
	pt, err := ck.s.tauSucc(p)
	if err != nil {
		return err
	}
	qt, err := ck.s.tauSucc(q)
	if err != nil {
		return err
	}
	qAns, err := ck.tauAnswers(q, weak)
	if err != nil {
		return err
	}
	pAns, err := ck.tauAnswers(p, weak)
	if err != nil {
		return err
	}
	qKeys, pKeys := keysOf(qAns), keysOf(pAns)
	for _, ms := range pt {
		if err := ck.requireMove(rt, i, "left", kind, "", "", nil, ms, qKeys); err != nil {
			return err
		}
	}
	for _, ms := range qt {
		if err := ck.requireMove(rt, i, "right", kind, "", "", nil, ms, pKeys); err != nil {
			return err
		}
	}
	return nil
}

func (ck *checker) barbedChallenges(rt *relTable, i int, p, q *vterm, weak bool) error {
	if err := ck.checkBarbs(i, p, q, weak, false); err != nil {
		return err
	}
	return ck.tauChallenges(rt, i, p, q, weak, "tau")
}

func (ck *checker) stepChallenges(rt *relTable, i int, p, q *vterm, weak bool) error {
	if err := ck.checkBarbs(i, p, q, weak, true); err != nil {
		return err
	}
	pa, err := ck.s.autoSucc(p)
	if err != nil {
		return err
	}
	qa, err := ck.s.autoSucc(q)
	if err != nil {
		return err
	}
	pAns, qAns := pa, qa
	if weak {
		if pAns, err = ck.s.autoClosure(p); err != nil {
			return err
		}
		if qAns, err = ck.s.autoClosure(q); err != nil {
			return err
		}
	}
	qKeys, pKeys := keysOf(qAns), keysOf(pAns)
	for _, ms := range pa {
		if err := ck.requireMove(rt, i, "left", "step", "", "", nil, ms, qKeys); err != nil {
			return err
		}
	}
	for _, ms := range qa {
		if err := ck.requireMove(rt, i, "right", "step", "", "", nil, ms, pKeys); err != nil {
			return err
		}
	}
	return nil
}

// checkBarbs verifies the barb condition of barbed (τ* answers) or step
// ((τ∪output)* answers) bisimilarity on one listed pair.
func (ck *checker) checkBarbs(i int, p, q *vterm, weak, auto bool) error {
	pb, qb := strongBarbs(p), strongBarbs(q)
	if !weak {
		if !pb.Equal(qb) {
			return fmt.Errorf("cert: pair %d: strong barbs differ (%v vs %v)", i, pb, qb)
		}
		return nil
	}
	for _, dir := range [2]struct {
		own   names.Set
		other *vterm
		side  string
	}{{pb, q, "right"}, {qb, p, "left"}} {
		for _, a := range dir.own.Sorted() {
			ok, err := ck.s.hasWeakBarb(dir.other, a, auto)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("cert: pair %d: %s side lacks weak barb on %s", i, dir.side, a)
			}
		}
	}
	return nil
}

// ---- pair-relation certificates -------------------------------------------

func (ck *checker) verifyPairRelation(c *Certificate) error {
	p, err := ck.s.parse(c.P)
	if err != nil {
		return err
	}
	q, err := ck.s.parse(c.Q)
	if err != nil {
		return err
	}
	if !c.Related {
		return ck.verifyStrategy(c, p, q, c.Relation)
	}
	rt, err := ck.loadRelation(c)
	if err != nil {
		return err
	}
	if !rt.has(p.key, q.key) {
		return fmt.Errorf("cert: root pair (%s, %s) is not in the relation", c.P, c.Q)
	}
	return ck.checkClosure(rt, c.Relation, c.Weak)
}

// ---- distinguishing strategies --------------------------------------------

// verifyStrategy replays a negative certificate: Nodes[0] must attack the
// root pair, and every node's challenge must be re-derivable with every
// defender answer refuted by a child (well-foundedly: cycles are rejected,
// as a cyclic "refutation" of a greatest-fixpoint property proves nothing).
func (ck *checker) verifyStrategy(c *Certificate, p, q *vterm, mode string) error {
	if len(c.Nodes) == 0 {
		return errors.New("cert: negative certificate has no strategy")
	}
	rp, err := ck.s.parse(c.Nodes[0].P)
	if err != nil {
		return err
	}
	rq, err := ck.s.parse(c.Nodes[0].Q)
	if err != nil {
		return err
	}
	if !samePair(rp.key, rq.key, p.key, q.key) {
		return fmt.Errorf("cert: strategy root attacks (%s, %s), not the certified pair",
			c.Nodes[0].P, c.Nodes[0].Q)
	}
	state := make([]int, len(c.Nodes))
	return ck.checkNode(c, 0, mode, state)
}

func samePair(a1, a2, b1, b2 string) bool {
	return (a1 == b1 && a2 == b2) || (a1 == b2 && a2 == b1)
}

const (
	nodeInProgress = 1
	nodeDone       = 2
)

func (ck *checker) checkNode(c *Certificate, idx int, mode string, state []int) error {
	if idx < 0 || idx >= len(c.Nodes) {
		return fmt.Errorf("cert: strategy node index %d out of range", idx)
	}
	switch state[idx] {
	case nodeDone:
		return nil
	case nodeInProgress:
		return fmt.Errorf("cert: cyclic strategy through node %d", idx)
	}
	state[idx] = nodeInProgress
	if err := ck.checkNode1(c, idx, mode, state); err != nil {
		return err
	}
	state[idx] = nodeDone
	return nil
}

func (ck *checker) checkNode1(c *Certificate, idx int, mode string, state []int) error {
	if err := ck.s.work(1); err != nil {
		return err
	}
	n := c.Nodes[idx]
	p, err := ck.s.parse(n.P)
	if err != nil {
		return err
	}
	q, err := ck.s.parse(n.Q)
	if err != nil {
		return err
	}
	attacker, defender := p, q
	switch n.Side {
	case "left":
	case "right":
		attacker, defender = q, p
	default:
		return fmt.Errorf("cert: node %d: bad side %q", idx, n.Side)
	}
	weak := c.Weak
	childMode := mode
	if mode == RelOneStep {
		childMode = RelLabelled
	}

	switch {
	case n.Kind == "barb" && (mode == RelBarbed || mode == RelStep):
		if len(n.Replies) > 0 {
			return fmt.Errorf("cert: node %d: barb leaf has replies", idx)
		}
		a := names.Name(n.Label)
		if !strongBarbs(attacker).Contains(a) {
			return fmt.Errorf("cert: node %d: %s side has no barb on %s", idx, n.Side, a)
		}
		if !weak {
			if strongBarbs(defender).Contains(a) {
				return fmt.Errorf("cert: node %d: both sides barb on %s", idx, a)
			}
			return nil
		}
		ok, err := ck.s.hasWeakBarb(defender, a, mode == RelStep)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("cert: node %d: defender has weak barb on %s", idx, a)
		}
		return nil

	case n.Kind == "tau" && (mode == RelLabelled || mode == RelBarbed || mode == RelOneStep):
		movers, err := ck.s.tauSucc(attacker)
		if err != nil {
			return err
		}
		var answers []*vterm
		if mode == RelOneStep && weak {
			answers, err = ck.nonEmptyTauAnswers(defender)
		} else {
			answers, err = ck.tauAnswers(defender, weak)
		}
		if err != nil {
			return err
		}
		return ck.checkReplies(c, idx, n, movers, answers, childMode, state)

	case n.Kind == "out" && (mode == RelLabelled || mode == RelOneStep):
		avoid := freeUnion(p, q)
		var movers []*vterm
		for _, mt := range outputsCanon(attacker, avoid) {
			if mt.Act.String() != n.Label {
				continue
			}
			t, err := ck.s.intern(mt.Target)
			if err != nil {
				return err
			}
			movers = append(movers, t)
		}
		am, err := ck.outputAnswers(defender, avoid, weak)
		if err != nil {
			return err
		}
		answers, err := ck.termsByKeys(am[n.Label])
		if err != nil {
			return err
		}
		return ck.checkReplies(c, idx, n, movers, answers, childMode, state)

	case n.Kind == "react" && mode == RelLabelled:
		ch, payload := names.Name(n.Ch), toNames(n.Payload)
		movers, err := ck.s.reactions(attacker, ch, payload)
		if err != nil {
			return err
		}
		answers := movers
		if weak {
			if answers, err = ck.s.weakReactions(defender, ch, payload); err != nil {
				return err
			}
		} else if answers, err = ck.s.reactions(defender, ch, payload); err != nil {
			return err
		}
		return ck.checkReplies(c, idx, n, movers, answers, childMode, state)

	case n.Kind == "step" && mode == RelStep:
		movers, err := ck.s.autoSucc(attacker)
		if err != nil {
			return err
		}
		answers := movers
		if weak {
			if answers, err = ck.s.autoClosure(defender); err != nil {
				return err
			}
		} else if answers, err = ck.s.autoSucc(defender); err != nil {
			return err
		}
		return ck.checkReplies(c, idx, n, movers, answers, childMode, state)

	case n.Kind == "in" && mode == RelOneStep:
		ch, payload := names.Name(n.Ch), toNames(n.Payload)
		movers, err := ck.s.inputDerivs(attacker, ch, payload)
		if err != nil {
			return err
		}
		var answers []*vterm
		if weak {
			answers, err = ck.s.weakInputDerivs(defender, ch, payload)
		} else {
			answers, err = ck.s.inputDerivs(defender, ch, payload)
		}
		if err != nil {
			return err
		}
		return ck.checkReplies(c, idx, n, movers, answers, childMode, state)

	case n.Kind == "discard" && mode == RelOneStep:
		ch := names.Name(n.Ch)
		da, err := ck.s.discardsOn(attacker, ch)
		if err != nil {
			return err
		}
		if !da {
			return fmt.Errorf("cert: node %d: %s side does not discard %s", idx, n.Side, ch)
		}
		if !weak {
			if len(n.Replies) > 0 {
				return fmt.Errorf("cert: node %d: strong discard leaf has replies", idx)
			}
			dd, err := ck.s.discardsOn(defender, ch)
			if err != nil {
				return err
			}
			if dd {
				return fmt.Errorf("cert: node %d: both sides discard %s", idx, ch)
			}
			return nil
		}
		// Weak (clause 4 of Definition 15): every τ*-derivative of the
		// defender that also discards ch must be refuted against the
		// (unmoved) discarder, at the labelled level.
		cl, err := ck.s.tauClosure(defender)
		if err != nil {
			return err
		}
		var answers []*vterm
		for _, d := range cl {
			dd, err := ck.s.discardsOn(d, ch)
			if err != nil {
				return err
			}
			if dd {
				answers = append(answers, d)
			}
		}
		return ck.checkReplies(c, idx, n, []*vterm{attacker}, answers, childMode, state)

	default:
		return fmt.Errorf("cert: node %d: kind %q is not valid for a %s strategy", idx, n.Kind, mode)
	}
}

// nonEmptyTauAnswers is the one-step weak τ answer set τ·τ* (staying put is
// NOT allowed — allowing it would let τ.p ≈+ p, which + contexts
// distinguish).
func (ck *checker) nonEmptyTauAnswers(t *vterm) ([]*vterm, error) {
	first, err := ck.s.tauSucc(t)
	if err != nil {
		return nil, err
	}
	seen := map[string]*vterm{}
	for _, f := range first {
		cl, err := ck.s.tauClosure(f)
		if err != nil {
			return nil, err
		}
		for _, s := range cl {
			seen[s.key] = s
		}
	}
	out := make([]*vterm, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	sortVTerms(out)
	return out, nil
}

func (ck *checker) termsByKeys(keys map[string]bool) ([]*vterm, error) {
	var out []*vterm
	for k := range keys {
		t, ok := ck.s.byKey[k]
		if !ok {
			return nil, fmt.Errorf("cert: internal: unknown answer key")
		}
		out = append(out, t)
	}
	sortVTerms(out)
	return out, nil
}

// checkReplies validates an attack node: the recorded derivative To must be
// among the re-derived attacker moves, and every re-derived defender answer
// must be refuted by a child node on the right successor pair. A node with
// no replies claims the answer set is empty; extra replies (answers the
// engine saw but the verifier does not re-derive) cannot arise, and
// unmatched ones are ignored.
func (ck *checker) checkReplies(c *Certificate, idx int, n Strategy,
	movers, answers []*vterm, childMode string, state []int) error {
	var to *vterm
	var err error
	if n.Kind == "discard" {
		// Weak discard: the attacker observes its own discard and stays put.
		if len(movers) != 1 {
			return fmt.Errorf("cert: node %d: internal discard mover set", idx)
		}
		to = movers[0]
	} else if to, err = ck.s.parse(n.To); err != nil {
		return err
	}
	found := false
	for _, m := range movers {
		if m.key == to.key {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("cert: node %d: %s is not a derivable %s move of the %s side",
			idx, n.To, n.Kind, n.Side)
	}
	replies := map[string]Reply{}
	for _, r := range n.Replies {
		rt, err := ck.s.parse(r.To)
		if err != nil {
			return err
		}
		if _, dup := replies[rt.key]; !dup {
			replies[rt.key] = r
		}
	}
	for _, ans := range answers {
		r, ok := replies[ans.key]
		if !ok {
			return fmt.Errorf("cert: node %d: defender answer %s is unrefuted",
				idx, syntax.String(ans.proc))
		}
		if r.Next < 0 || r.Next >= len(c.Nodes) {
			return fmt.Errorf("cert: node %d: reply index %d out of range", idx, r.Next)
		}
		child := c.Nodes[r.Next]
		cp, err := ck.s.parse(child.P)
		if err != nil {
			return err
		}
		cq, err := ck.s.parse(child.Q)
		if err != nil {
			return err
		}
		expL, expR := to.key, ans.key
		if n.Side == "right" {
			expL, expR = ans.key, to.key
		}
		if !samePair(cp.key, cq.key, expL, expR) {
			return fmt.Errorf("cert: node %d: reply node %d attacks (%s, %s), not the successor pair",
				idx, r.Next, child.P, child.Q)
		}
		if err := ck.checkNode(c, r.Next, childMode, state); err != nil {
			return err
		}
	}
	return nil
}

// ---- one-step certificates -------------------------------------------------

func (ck *checker) verifyOneStep(c *Certificate) error {
	p, err := ck.s.parse(c.P)
	if err != nil {
		return err
	}
	q, err := ck.s.parse(c.Q)
	if err != nil {
		return err
	}
	if !c.Related {
		return ck.verifyStrategy(c, p, q, RelOneStep)
	}
	rt, err := ck.loadRelation(c)
	if err != nil {
		return err
	}
	// The embedded relation must be a labelled bisimulation…
	if err := ck.checkClosure(rt, RelLabelled, c.Weak); err != nil {
		return err
	}
	// …and the root pair's strict moves must land in it.
	return ck.oneStepTop(c, rt, p, q)
}

func (ck *checker) oneStepTop(c *Certificate, rt *relTable, p, q *vterm) error {
	top := make(map[string]Move, len(c.TopMoves))
	for _, mv := range c.TopMoves {
		if mv.Pair[0] < 0 || mv.Pair[0] >= len(rt.terms) || mv.Pair[1] < 0 || mv.Pair[1] >= len(rt.terms) {
			return errors.New("cert: top-level move witness indices out of range")
		}
		top[moveKey(mv.Side, mv.Kind, mv.Label, mv.Ch, mv.Payload, rt.terms[moverIndexOf(mv)].key)] = mv
	}
	requireTop := func(side, kind, label, ch string, payload []string, mover *vterm, answers map[string]bool) error {
		if err := ck.s.work(1); err != nil {
			return err
		}
		mv, ok := top[moveKey(side, kind, label, ch, payload, mover.key)]
		if !ok {
			return fmt.Errorf("cert: unanswered root %s %s challenge of %s side", kind, label+ch, side)
		}
		ansIdx := mv.Pair[1]
		if side == "right" {
			ansIdx = mv.Pair[0]
		}
		if !answers[rt.terms[ansIdx].key] {
			return fmt.Errorf("cert: root %s challenge: witness answer %s not derivable",
				kind, syntax.String(rt.terms[ansIdx].proc))
		}
		if !rt.has(rt.terms[mv.Pair[0]].key, rt.terms[mv.Pair[1]].key) {
			return fmt.Errorf("cert: root %s challenge: witness pair not in the embedded relation", kind)
		}
		return nil
	}

	// Discard clause.
	for _, a := range freeUnion(p, q).Sorted() {
		dp, err := ck.s.discardsOn(p, a)
		if err != nil {
			return err
		}
		dq, err := ck.s.discardsOn(q, a)
		if err != nil {
			return err
		}
		if !c.Weak {
			if dp != dq {
				return fmt.Errorf("cert: discard sets differ on %s", a)
			}
			continue
		}
		for _, dir := range [2]struct {
			discards  bool
			side      string
			discarder *vterm
			other     *vterm
		}{{dp, "left", p, q}, {dq, "right", q, p}} {
			if !dir.discards {
				continue
			}
			w, err := findDiscardWitness(c.Discards, string(a), dir.side)
			if err != nil {
				return err
			}
			if w.Pair[0] < 0 || w.Pair[0] >= len(rt.terms) || w.Pair[1] < 0 || w.Pair[1] >= len(rt.terms) {
				return fmt.Errorf("cert: discard witness on %s: indices out of range", a)
			}
			dIdx, oIdx := w.Pair[0], w.Pair[1]
			if dir.side == "right" {
				dIdx, oIdx = w.Pair[1], w.Pair[0]
			}
			if rt.terms[dIdx].key != dir.discarder.key {
				return fmt.Errorf("cert: discard witness on %s: wrong discarder term", a)
			}
			o := rt.terms[oIdx]
			cl, err := ck.s.tauClosure(dir.other)
			if err != nil {
				return err
			}
			if !keysOf(cl)[o.key] {
				return fmt.Errorf("cert: discard witness on %s: %s is not a τ*-derivative of the other side",
					a, syntax.String(o.proc))
			}
			od, err := ck.s.discardsOn(o, a)
			if err != nil {
				return err
			}
			if !od {
				return fmt.Errorf("cert: discard witness on %s: answer does not discard it", a)
			}
			if !rt.has(rt.terms[w.Pair[0]].key, rt.terms[w.Pair[1]].key) {
				return fmt.Errorf("cert: discard witness on %s: pair not in the embedded relation", a)
			}
		}
	}

	// τ, output and strict-input moves, both directions.
	avoid := freeUnion(p, q)
	for _, dir := range [2]struct {
		side            string
		mover, answerer *vterm
	}{{"left", p, q}, {"right", q, p}} {
		// τ.
		mt, err := ck.s.tauSucc(dir.mover)
		if err != nil {
			return err
		}
		var tAns []*vterm
		if c.Weak {
			if tAns, err = ck.nonEmptyTauAnswers(dir.answerer); err != nil {
				return err
			}
		} else if tAns, err = ck.s.tauSucc(dir.answerer); err != nil {
			return err
		}
		tKeys := keysOf(tAns)
		for _, ms := range mt {
			if err := requireTop(dir.side, "tau", "", "", nil, ms, tKeys); err != nil {
				return err
			}
		}
		// Outputs.
		am, err := ck.outputAnswers(dir.answerer, avoid, c.Weak)
		if err != nil {
			return err
		}
		for _, mo := range outputsCanon(dir.mover, avoid) {
			mtgt, err := ck.s.intern(mo.Target)
			if err != nil {
				return err
			}
			lab := mo.Act.String()
			if err := requireTop(dir.side, "out", lab, "", nil, mtgt, am[lab]); err != nil {
				return err
			}
		}
		// Strict inputs.
		mshapes := make([]vshape, 0)
		for s := range inputShapes(dir.mover) {
			mshapes = append(mshapes, s)
		}
		sortVShapes(mshapes)
		for _, sh := range mshapes {
			u := pairUniverse(p, q, sh.arity)
			for _, payload := range vtuples(u, sh.arity) {
				mIns, err := ck.s.inputDerivs(dir.mover, sh.ch, payload)
				if err != nil {
					return err
				}
				if len(mIns) == 0 {
					continue
				}
				var aIns []*vterm
				if c.Weak {
					aIns, err = ck.s.weakInputDerivs(dir.answerer, sh.ch, payload)
				} else {
					aIns, err = ck.s.inputDerivs(dir.answerer, sh.ch, payload)
				}
				if err != nil {
					return err
				}
				aKeys := keysOf(aIns)
				ps := nameStrings(payload)
				for _, md := range mIns {
					if err := requireTop(dir.side, "in", "", string(sh.ch), ps, md, aKeys); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func findDiscardWitness(ws []DiscardWitness, ch, side string) (DiscardWitness, error) {
	for _, w := range ws {
		if w.Ch == ch && w.Side == side {
			return w, nil
		}
	}
	return DiscardWitness{}, fmt.Errorf("cert: missing discard witness for %s on the %s side", ch, side)
}

// ---- congruence certificates -----------------------------------------------

func (ck *checker) verifyCongruence(c *Certificate) error {
	p, err := ck.s.parse(c.P)
	if err != nil {
		return err
	}
	q, err := ck.s.parse(c.Q)
	if err != nil {
		return err
	}
	if !c.Related {
		// Any single distinguishing substitution refutes the congruence (it
		// quantifies over all substitutions); verify the embedded one-step
		// strategy on the specialised pair.
		sub := names.Subst{}
		for k, v := range c.Sigma {
			sub[names.Name(k)] = names.Name(v)
		}
		ps, err := ck.s.intern(syntax.Apply(p.proc, sub))
		if err != nil {
			return err
		}
		qs, err := ck.s.intern(syntax.Apply(q.proc, sub))
		if err != nil {
			return err
		}
		return ck.verifyStrategy(c, ps, qs, RelOneStep)
	}
	// Positive: one verified one-step certificate per fusion of the free
	// names (the sufficient substitution set — fresh-target substitutions
	// are injective renamings of these).
	byRoot := map[string]int{}
	for i, sc := range c.Subs {
		if sc == nil {
			return fmt.Errorf("cert: congruence sub-certificate %d is nil", i)
		}
		if sc.Relation != RelOneStep || !sc.Related || sc.Weak != c.Weak {
			return fmt.Errorf("cert: congruence sub-certificate %d is not a matching positive one-step certificate", i)
		}
		sp, err := ck.s.parse(sc.P)
		if err != nil {
			return err
		}
		sq, err := ck.s.parse(sc.Q)
		if err != nil {
			return err
		}
		byRoot[sp.key+"\x00"+sq.key] = i
	}
	fn := freeUnion(p, q).Sorted()
	subs := names.AllFusions(fn, fn)
	if len(subs) == 0 {
		subs = []names.Subst{{}}
	}
	verified := map[int]bool{}
	for _, sub := range subs {
		ps, err := ck.s.intern(syntax.Apply(p.proc, sub))
		if err != nil {
			return err
		}
		qs, err := ck.s.intern(syntax.Apply(q.proc, sub))
		if err != nil {
			return err
		}
		i, ok := byRoot[ps.key+"\x00"+qs.key]
		if !ok {
			return fmt.Errorf("cert: no one-step sub-certificate for fusion %s", sub)
		}
		if verified[i] {
			continue
		}
		if err := ck.verifyOneStep(c.Subs[i]); err != nil {
			return fmt.Errorf("under substitution %s: %w", sub, err)
		}
		verified[i] = true
	}
	return nil
}
