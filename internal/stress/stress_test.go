package stress

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/lts"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// TestSizes pins the exact LTS state counts the generators advertise — the
// bench curve labels and the 10^5-state claim of the largest ladder rung
// rest on these formulas. Only the sub-20k rungs are explored here (the
// bigger ladder rungs take tens of seconds and share the same meshStates
// formula the explored meshes pin).
func TestSizes(t *testing.T) {
	sys := semantics.NewSystem(nil)
	cases := append(Corpus(), GoldenMesh(), Ladder()[0])
	for _, c := range cases {
		g, err := lts.Explore(sys, []syntax.Proc{c.P}, lts.Options{
			AutonomousOnly: true, MaxStates: 1 << 17, Workers: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if g.Truncated {
			t.Fatalf("%s: truncated at %d states", c.Name, g.NumStates())
		}
		if g.NumStates() != c.States {
			t.Errorf("%s: %d states, config advertises %d", c.Name, g.NumStates(), c.States)
		}
	}
	if biggest := Ladder()[len(Ladder())-1]; biggest.States < 100_000 {
		t.Errorf("largest ladder rung %s has %d advertised states, want >= 1e5", biggest.Name, biggest.States)
	}
}

// newChecker returns a stress-budgeted checker (the pair spaces here exceed
// the default MaxPairs).
func newChecker(workers int) *equiv.Checker {
	var ch *equiv.Checker
	if workers > 1 {
		ch = equiv.NewParallelChecker(nil, workers)
	} else {
		ch = equiv.NewChecker(nil)
	}
	ch.MaxPairs = 1 << 18
	ch.Certify = true
	return ch
}

// TestWorkerLadderDeterministic decides each corpus pair — strong step and
// strong barbed, certification on — at workers ∈ {1,2,4,8} and requires the
// full Result (verdict, pair count, reason, certificate) to be deeply equal
// at every rung, with the certificate accepted by the independent verifier.
// Run under -race this doubles as the discovery-pass race test on real
// topologies.
func TestWorkerLadderDeterministic(t *testing.T) {
	for _, c := range Corpus() {
		for _, rel := range []struct {
			name string
			run  func(ch *equiv.Checker) (equiv.Result, error)
		}{
			{"step", func(ch *equiv.Checker) (equiv.Result, error) { return ch.Step(c.P, c.Q, false) }},
			{"barbed", func(ch *equiv.Checker) (equiv.Result, error) { return ch.Barbed(c.P, c.Q, false) }},
		} {
			want, err := rel.run(newChecker(1))
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", c.Name, rel.name, err)
			}
			if !want.Related {
				t.Fatalf("%s/%s: rotation not %s-bisimilar: %s", c.Name, rel.name, rel.name, want.Reason)
			}
			if want.Cert == nil {
				t.Fatalf("%s/%s: no certificate", c.Name, rel.name)
			}
			if err := cert.Verify(want.Cert); err != nil {
				t.Fatalf("%s/%s: certificate rejected: %v", c.Name, rel.name, err)
			}
			for _, w := range []int{2, 4, 8} {
				got, err := rel.run(newChecker(w))
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", c.Name, rel.name, w, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s workers=%d: result diverges from sequential", c.Name, rel.name, w)
				}
			}
		}
	}
}

// TestLtsWorkerDeterministic explores each corpus term at workers 1 and 4
// and requires identical graphs: state order, edges, roots and truncation.
func TestLtsWorkerDeterministic(t *testing.T) {
	sys := semantics.NewSystem(nil)
	for _, c := range Corpus() {
		seq, err := lts.Explore(sys, []syntax.Proc{c.P, c.Q}, lts.Options{
			AutonomousOnly: true, MaxStates: 1 << 17,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		par, err := lts.Explore(sys, []syntax.Proc{c.P, c.Q}, lts.Options{
			AutonomousOnly: true, MaxStates: 1 << 17, Workers: 4,
		})
		if err != nil {
			t.Fatalf("%s workers=4: %v", c.Name, err)
		}
		if !reflect.DeepEqual(seq.States, par.States) || !reflect.DeepEqual(seq.Edges, par.Edges) ||
			!reflect.DeepEqual(seq.Roots, par.Roots) || seq.Truncated != par.Truncated {
			t.Errorf("%s: graphs diverge between workers 1 and 4 (%v vs %v)", c.Name, seq, par)
		}
	}
}

// TestGoldenMeshPinned is the determinism golden: the mid-size gossip mesh's
// strong-step verdict, explored-pair count and certificate hash are pinned
// to a golden file, and every worker count must reproduce them bit-for-bit.
func TestGoldenMeshPinned(t *testing.T) {
	c := GoldenMesh()
	var want string
	for _, w := range []int{1, 2, 4, 8} {
		r, err := newChecker(w).Step(c.P, c.Q, false)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", c.Name, w, err)
		}
		raw, err := r.Cert.Marshal()
		if err != nil {
			t.Fatalf("marshal certificate: %v", err)
		}
		sum := sha256.Sum256(raw)
		line := fmt.Sprintf("%s related=%v pairs=%d cert=%s\n",
			c.Name, r.Related, r.Pairs, hex.EncodeToString(sum[:]))
		if w == 1 {
			want = line
			continue
		}
		if line != want {
			t.Fatalf("workers=%d diverges:\n got %s want %s", w, line, want)
		}
	}
	golden := filepath.Join("testdata", "mesh_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if want != string(pinned) {
		t.Errorf("golden drifted:\n got %s want %s", want, pinned)
	}
}
