// Package stress generates parameterised bπ broadcast topologies whose
// state spaces are large but exactly predictable — the scaling corpus for
// the parallel engines and seed material for the fuzz oracle. The families
// follow the broadcast-and-aggregation systems Hüttel & Pratas model in BBC:
// information spreads by unbuffered broadcasts that every parallel component
// must receive or discard.
//
// All generators are deterministic (same parameters, same term) and produce
// finite, recursion-free terms, so every LTS here is finite and every
// equivalence query terminates without hitting closure budgets.
//
//   - Chain/Rings: token-relay lines. One lap of a chain of n stations is a
//     line of n+2 states; k disjoint rings in parallel interleave to
//     (n+2)^k states — a smooth dial for state-space size with branching
//     factor k, which is what the pair engine's scaling curve sweeps.
//   - Mesh: a gossip line with redundant links — station i wakes on either
//     of its two predecessors, so the broadcast frontier is 2–3 wide and
//     the interleavings give a few states per station beyond the chain.
//   - Tree: a k-ary broadcast tree; the reachable configurations are the
//     order ideals of the node poset, which explode combinatorially with
//     depth (complete binary tree: 2, 5, 26, 677, 458330 … per level).
package stress

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

func ch(prefix string, i int) names.Name {
	return names.Name(fmt.Sprintf("%s%d", prefix, i))
}

// Chain returns the one-lap broadcast relay chain of n stations over the
// channels prefix0 … prefixN: a starter broadcasting prefix0 and n relays,
// each waking on its station's channel and broadcasting the next. The final
// broadcast fires into silence. Its LTS is a line of exactly n+2 states.
func Chain(prefix string, n int) syntax.Proc {
	parts := make([]syntax.Proc, 0, n+1)
	parts = append(parts, syntax.SendN(ch(prefix, 0)))
	for i := 0; i < n; i++ {
		parts = append(parts, syntax.Recv(ch(prefix, i), nil, syntax.SendN(ch(prefix, i+1))))
	}
	return syntax.Group(parts...)
}

// Rings returns k disjoint token-relay chains of n stations each, running
// in parallel. Chains share no channels, so their laps interleave freely:
// the LTS has exactly (n+2)^k states and every non-terminal state has at
// most k autonomous moves.
func Rings(k, n int) syntax.Proc {
	parts := make([]syntax.Proc, k)
	for r := 0; r < k; r++ {
		parts[r] = Chain(fmt.Sprintf("r%ds", r), n)
	}
	return syntax.Group(parts...)
}

// Mesh returns a gossip line of n stations with redundant links: station 0
// seeds the gossip on m0; station i ≥ 1 wakes on its predecessor's channel
// — or, from station 2 on, alternatively on its pre-predecessor's (a Sum)
// — and then broadcasts its own. Redundancy keeps the broadcast frontier
// 2–3 stations wide, so unlike a chain the interleavings branch.
func Mesh(n int) syntax.Proc {
	parts := make([]syntax.Proc, 0, n)
	parts = append(parts, syntax.SendN(ch("m", 0)))
	for i := 1; i < n; i++ {
		wake := syntax.Recv(ch("m", i-1), nil, syntax.SendN(ch("m", i)))
		if i >= 2 {
			wake = syntax.Choice(wake,
				syntax.Recv(ch("m", i-2), nil, syntax.SendN(ch("m", i))))
		}
		parts = append(parts, wake)
	}
	return syntax.Group(parts...)
}

// Tree returns a broadcast tree: the root announces on t0, and every node
// at depth 1…depth wakes on its parent's channel and re-broadcasts on its
// own (leaves broadcast into silence). Nodes are numbered breadth-first, so
// the term has (fanout^(depth+1)-1)/(fanout-1) components and the LTS
// states are the order ideals of the tree.
func Tree(fanout, depth int) syntax.Proc {
	parts := []syntax.Proc{syntax.SendN(ch("t", 0))}
	level := []int{0}
	next := 1
	for d := 1; d <= depth; d++ {
		nl := make([]int, 0, len(level)*fanout)
		for _, p := range level {
			for c := 0; c < fanout; c++ {
				v := next
				next++
				parts = append(parts, syntax.Recv(ch("t", p), nil, syntax.SendN(ch("t", v))))
				nl = append(nl, v)
			}
		}
		level = nl
	}
	return syntax.Group(parts...)
}

// Rotate returns p with its top-level parallel components rotated by one —
// a syntactic permutation that is semantically congruent to p (parallel
// composition is commutative and associative for every equivalence of the
// paper), which makes (p, Rotate(p)) an equivalent-by-construction pair.
func Rotate(p syntax.Proc) syntax.Proc {
	parts := syntax.ParList(p)
	if len(parts) < 2 {
		return p
	}
	rotated := append(append([]syntax.Proc{}, parts[1:]...), parts[0])
	return syntax.Group(rotated...)
}

// Config is one named stress instance: an equivalent-by-construction pair
// and the exact state count of P's autonomous LTS (pinned by the package
// tests, relied on by bpibench's curve labels).
type Config struct {
	Name string
	P, Q syntax.Proc
	// States is the exact number of states of P's autonomous LTS.
	States int
}

func pair(name string, states int, p syntax.Proc) Config {
	return Config{Name: name, P: p, Q: Rotate(p), States: states}
}

// Corpus returns the small-to-mid instances used as oracle/fuzz seeds and
// in the race/determinism tests: one of each topology family, all small
// enough to decide in milliseconds yet shaped like the scaling instances.
func Corpus() []Config {
	return []Config{
		pair("rings-2x3", 25, Rings(2, 3)),
		pair("rings-3x2", 64, Rings(3, 2)),
		pair("mesh-8", meshStates(8), Mesh(8)),
		pair("tree-2x3", 677, Tree(2, 3)),
	}
}

// GoldenMesh returns the mid-size gossip mesh whose verdict, pair count and
// certificate are pinned bit-for-bit across worker counts by the package's
// golden test.
func GoldenMesh() Config {
	return pair("mesh-12", meshStates(12), Mesh(12))
}

// meshStates is the closed form of Mesh's reachable-state count, pinned
// against lts.Explore by TestSizes: the 2-wide redundant frontier makes the
// count Fibonacci in the station count — s(n) = s(n-1) + s(n-2), with 3
// states for two stations and 5 for three.
func meshStates(n int) int {
	if n < 2 {
		return 2
	}
	a, b := 2, 3 // s(1), s(2)
	for i := 2; i < n; i++ {
		a, b = b, a+b
	}
	return b
}

// Ladder returns the bench scaling instances, smallest first: gossip
// meshes, the family with the best states-per-component ratio (Fibonacci
// states on a linear term). That ratio is what makes 10^5+ states
// tractable at all — per-state transition derivation is superlinear in
// the component count (every broadcast is composed across the whole
// parallel term), so a 24-station mesh reaches 121393 states while a
// rings instance of that size would need 30+ components at several
// milliseconds per state. Mesh off-diagonal pairs also survive the barb
// check for a few layers (distinct histories can expose the same
// frontier), so the pair space is ~24x the state count — a genuine pair
// engine workload rather than a pure interning benchmark.
func Ladder() []Config {
	return []Config{
		pair("mesh-20", meshStates(20), Mesh(20)),
		pair("mesh-22", meshStates(22), Mesh(22)),
		pair("mesh-24", meshStates(24), Mesh(24)),
	}
}
