package semantics

import (
	"strings"
	"testing"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	d names.Name = "d"
	o names.Name = "o"
	x names.Name = "x"
	y names.Name = "y"
	z names.Name = "z"
)

var sys = NewSystem(nil)

func mustSteps(t *testing.T, p syntax.Proc) []Trans {
	t.Helper()
	ts, err := sys.Steps(p)
	if err != nil {
		t.Fatalf("Steps(%s): %v", syntax.String(p), err)
	}
	return ts
}

func mustDiscards(t *testing.T, p syntax.Proc, ch names.Name) bool {
	t.Helper()
	ok, err := sys.Discards(p, ch)
	if err != nil {
		t.Fatalf("Discards(%s, %s): %v", syntax.String(p), ch, err)
	}
	return ok
}

// filter returns the transitions whose label kind and subject match.
func filter(ts []Trans, k actions.Kind, subj names.Name) []Trans {
	var out []Trans
	for _, t := range ts {
		if t.Act.Kind == k && (k == actions.Tau || t.Act.Subj == subj) {
			out = append(out, t)
		}
	}
	return out
}

func taus(ts []Trans) []Trans { return filter(ts, actions.Tau, "") }

// ---- Table 2: the discard relation ---------------------------------------

func TestDiscardRelation(t *testing.T) {
	cases := []struct {
		p    syntax.Proc
		ch   names.Name
		want bool
	}{
		{syntax.PNil, a, true},                                            // (1)
		{syntax.TauP(syntax.RecvN(a, x)), a, true},                        // (2)
		{syntax.Send(b, nil, syntax.RecvN(a, x)), a, true},                // (3)
		{syntax.RecvN(b, x), a, true},                                     // (4) a≠b
		{syntax.RecvN(a, x), a, false},                                    // (4) listening
		{syntax.Restrict(syntax.RecvN(a, x), a), a, true},                 // (5) x=a: inner a is local
		{syntax.Restrict(syntax.RecvN(a, x), b), a, false},                // (5)
		{syntax.Choice(syntax.RecvN(a, x), syntax.RecvN(b, y)), a, false}, // (6)
		{syntax.Choice(syntax.RecvN(c, x), syntax.RecvN(b, y)), a, true},  // (6)
		{syntax.If(a, a, syntax.RecvN(a, x), syntax.PNil), a, false},      // (7)
		{syntax.If(a, b, syntax.RecvN(a, x), syntax.PNil), a, true},       // (8)
		{syntax.Group(syntax.RecvN(a, x), syntax.PNil), a, false},         // (9)
		{syntax.Group(syntax.PNil, syntax.PNil), a, true},                 // (9)
	}
	for i, cse := range cases {
		if got := mustDiscards(t, cse.p, cse.ch); got != cse.want {
			t.Errorf("case %d: Discards(%s, %s) = %v, want %v", i, syntax.String(cse.p), cse.ch, got, cse.want)
		}
	}
}

func TestDiscardRec(t *testing.T) {
	// (rec A(x). x?(y).A(x))(a) listens on a. (10)
	r := syntax.Rec{Id: "A", Params: []names.Name{x}, Body: syntax.Recv(x, []names.Name{y}, syntax.Call{Id: "A", Args: []names.Name{x}}), Args: []names.Name{a}}
	if mustDiscards(t, r, a) {
		t.Error("rec listening on a must not discard a")
	}
	if !mustDiscards(t, r, b) {
		t.Error("rec not listening on b must discard b")
	}
}

func TestDiscardUnguardedRecursionBudget(t *testing.T) {
	s := &System{MaxUnfold: 16}
	r := syntax.Rec{Id: "A", Params: nil, Body: syntax.Call{Id: "A"}, Args: nil}
	if _, err := s.Discards(r, a); err == nil {
		t.Fatal("expected unfold budget error")
	} else if _, ok := err.(ErrUnfoldBudget); !ok {
		t.Fatalf("wrong error type: %v", err)
	}
	if _, err := s.Steps(r); err == nil {
		t.Fatal("expected unfold budget error from Steps")
	}
}

// ---- Table 3: basic prefixes, sum, match, rec -----------------------------

func TestStepPrefixes(t *testing.T) {
	// τ.p
	ts := mustSteps(t, syntax.TauP(syntax.SendN(a)))
	if len(ts) != 1 || !ts[0].Act.IsTau() || !syntax.Equal(ts[0].Target, syntax.SendN(a)) {
		t.Fatalf("tau prefix: %v", ts)
	}
	// āb.p
	ts = mustSteps(t, syntax.Send(a, []names.Name{b}, syntax.SendN(c)))
	if len(ts) != 1 || !ts[0].Act.Equal(actions.NewOut(a, []names.Name{b})) {
		t.Fatalf("output prefix: %v", ts)
	}
	// a(x).x̄ — symbolic input, then instantiation (early rule 3)
	ts = mustSteps(t, syntax.Recv(a, []names.Name{x}, syntax.SendN(x)))
	if len(ts) != 1 || !ts[0].Act.IsInput() {
		t.Fatalf("input prefix: %v", ts)
	}
	act, tgt := Instantiate(ts[0], []names.Name{c})
	if !act.Equal(actions.NewIn(a, []names.Name{c})) || !syntax.Equal(tgt, syntax.SendN(c)) {
		t.Fatalf("instantiate: %s %s", act, syntax.String(tgt))
	}
}

func TestStepSumAndMatch(t *testing.T) {
	p := syntax.Choice(syntax.SendN(a), syntax.SendN(b))
	ts := mustSteps(t, p)
	if len(ts) != 2 {
		t.Fatalf("sum should offer both branches: %v", ts)
	}
	eq := syntax.If(a, a, syntax.SendN(b), syntax.SendN(c))
	if ts := mustSteps(t, eq); len(ts) != 1 || ts[0].Act.Subj != b {
		t.Fatalf("match-true: %v", ts)
	}
	ne := syntax.If(a, b, syntax.SendN(b), syntax.SendN(c))
	if ts := mustSteps(t, ne); len(ts) != 1 || ts[0].Act.Subj != c {
		t.Fatalf("match-false: %v", ts)
	}
}

func TestStepRecUnfolds(t *testing.T) {
	// (rec A(x). x̄.A(x))(a) --ā--> itself
	r := syntax.Rec{Id: "A", Params: []names.Name{x}, Body: syntax.Send(x, nil, syntax.Call{Id: "A", Args: []names.Name{x}}), Args: []names.Name{a}}
	ts := mustSteps(t, r)
	if len(ts) != 1 || ts[0].Act.Subj != a {
		t.Fatalf("rec step: %v", ts)
	}
	if !syntax.AlphaEqual(ts[0].Target, r) {
		t.Fatalf("rec target: %v", syntax.String(ts[0].Target))
	}
}

func TestStepCallEnv(t *testing.T) {
	env := syntax.Env{}.Define("A", []names.Name{x}, syntax.Send(x, nil, syntax.Call{Id: "A", Args: []names.Name{x}}))
	s := NewSystem(env)
	ts, err := s.Steps(syntax.Call{Id: "A", Args: []names.Name{a}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Act.Subj != a {
		t.Fatalf("call step: %v", ts)
	}
	if _, err := s.Steps(syntax.Call{Id: "Z"}); err == nil {
		t.Fatal("undefined call must error")
	}
}

// ---- Restriction: rules (5), (6), (7) -------------------------------------

func TestResInternalisesPrivateOutput(t *testing.T) {
	// Remark 1 driver: νa āb --τ--> νa nil (rule 6).
	p := syntax.Restrict(syntax.SendN(a, b), a)
	ts := mustSteps(t, p)
	if len(ts) != 1 || !ts[0].Act.IsTau() {
		t.Fatalf("expected exactly the internal step: %v", ts)
	}
	if fn := syntax.FreeNames(ts[0].Target); fn.Len() != 0 {
		t.Fatalf("target free names: %v", fn)
	}
}

func TestResExtrusion(t *testing.T) {
	// νx āx --(^x)ā(x)--> nil (rule 5): bound output.
	p := syntax.Restrict(syntax.SendN(a, x), x)
	ts := mustSteps(t, p)
	if len(ts) != 1 {
		t.Fatalf("transitions: %v", ts)
	}
	act := ts[0].Act
	if !act.IsOutput() || act.Subj != a || len(act.Bound) != 1 || act.Bound[0] != act.Objs[0] {
		t.Fatalf("extrusion label: %s", act)
	}
}

func TestResBlocksExternalInput(t *testing.T) {
	// νa a(x).p has no transitions: the environment cannot know a.
	p := syntax.Restrict(syntax.RecvN(a, x), a)
	if ts := mustSteps(t, p); len(ts) != 0 {
		t.Fatalf("private input should be silent: %v", ts)
	}
}

func TestResPassesUnrelated(t *testing.T) {
	// νz āb keeps its output (rule 7), with the restriction intact.
	p := syntax.Restrict(syntax.Send(a, []names.Name{b}, syntax.SendN(z)), z)
	ts := mustSteps(t, p)
	if len(ts) != 1 || ts[0].Act.Subj != a || len(ts[0].Act.Bound) != 0 {
		t.Fatalf("rule 7 output: %v", ts)
	}
	if _, ok := ts[0].Target.(syntax.Res); !ok {
		t.Fatalf("restriction dropped: %v", syntax.String(ts[0].Target))
	}
}

func TestResShadowedBinderInLabel(t *testing.T) {
	// νa (νa āb): inner extrusion on the private channel a — the output's
	// subject is the inner a, so the τ happens inside; outer νa sees τ.
	inner := syntax.Restrict(syntax.SendN(a, b), a)
	p := syntax.Restrict(inner, a)
	ts := mustSteps(t, p)
	if len(ts) != 1 || !ts[0].Act.IsTau() {
		t.Fatalf("shadowed restriction: %v", ts)
	}
}

func TestResInputParamCollision(t *testing.T) {
	// νx (a?(x̂).…) where the input parameter is textually x: the label's
	// binder must be renamed so the restriction is not confused with it.
	p := syntax.Restrict(syntax.Recv(a, []names.Name{x}, syntax.SendN(x, x)), x)
	ts := mustSteps(t, p)
	if len(ts) != 1 || !ts[0].Act.IsInput() {
		t.Fatalf("want one input: %v", ts)
	}
	if ts[0].Act.Objs[0] == x {
		t.Fatalf("binder not renamed away from restriction: %s", ts[0].Act)
	}
	// The input parameter shadows the restricted x: after instantiation with
	// b the continuation is b̄b under the (now unused) restriction.
	_, tgt := Instantiate(ts[0], []names.Name{b})
	r, ok := tgt.(syntax.Res)
	if !ok {
		t.Fatalf("restriction lost: %v", syntax.String(tgt))
	}
	out := r.Body.(syntax.Prefix).Pre.(syntax.Out)
	if out.Ch != b || out.Args[0] != b {
		t.Fatalf("wrong instantiation: %v", syntax.String(tgt))
	}
}

// ---- Parallel composition: rules (12), (13), (14) --------------------------

func TestParBroadcastReachesAllListeners(t *testing.T) {
	// āb ‖ a(x).x̄c ‖ a(y).ȳd --āb--> nil ‖ b̄c ‖ b̄d: one send, two receivers.
	p := syntax.Group(
		syntax.SendN(a, b),
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x, c)),
		syntax.Recv(a, []names.Name{y}, syntax.SendN(y, d)),
	)
	ts := filter(mustSteps(t, p), actions.Out, a)
	if len(ts) != 1 {
		t.Fatalf("expected exactly one broadcast transition, got %v", ts)
	}
	want := syntax.Group(syntax.PNil, syntax.SendN(b, c), syntax.SendN(b, d))
	if !syntax.AlphaEqual(ts[0].Target, want) {
		t.Fatalf("broadcast target = %v, want %v", syntax.String(ts[0].Target), syntax.String(want))
	}
}

func TestParListenerCannotIgnore(t *testing.T) {
	// āb ‖ a(x).c̄: the listener must take the message — there is no
	// transition leaving it unchanged.
	p := syntax.Group(syntax.SendN(a, b), syntax.Recv(a, []names.Name{x}, syntax.SendN(c)))
	ts := filter(mustSteps(t, p), actions.Out, a)
	if len(ts) != 1 {
		t.Fatalf("want 1 output, got %v", ts)
	}
	want := syntax.Group(syntax.PNil, syntax.SendN(c))
	if !syntax.AlphaEqual(ts[0].Target, want) {
		t.Fatalf("receiver skipped the broadcast: %v", syntax.String(ts[0].Target))
	}
}

func TestParDiscardLeavesUnchanged(t *testing.T) {
	// āb ‖ c(x).d̄: the sibling ignores a (rule 14).
	q := syntax.Recv(c, []names.Name{x}, syntax.SendN(d))
	p := syntax.Group(syntax.SendN(a, b), q)
	ts := filter(mustSteps(t, p), actions.Out, a)
	if len(ts) != 1 {
		t.Fatalf("want 1 output, got %v", ts)
	}
	want := syntax.Group(syntax.PNil, q)
	if !syntax.AlphaEqual(ts[0].Target, want) {
		t.Fatalf("discard target: %v", syntax.String(ts[0].Target))
	}
}

func TestParJointInput(t *testing.T) {
	// a(x).x̄ ‖ a(y).ȳ: one broadcast from the environment reaches both
	// (rule 12): a?(z) target z̄ ‖ z̄. Also each can receive alone? No —
	// the other listens on a, so it cannot discard: only the joint input.
	p := syntax.Group(
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x)),
		syntax.Recv(a, []names.Name{y}, syntax.SendN(y)),
	)
	ts := filter(mustSteps(t, p), actions.In, a)
	if len(ts) != 1 {
		t.Fatalf("want exactly the joint input, got %v", ts)
	}
	act, tgt := Instantiate(ts[0], []names.Name{c})
	if act.Subj != a {
		t.Fatalf("label: %s", act)
	}
	want := syntax.Group(syntax.SendN(c), syntax.SendN(c))
	if !syntax.AlphaEqual(tgt, want) {
		t.Fatalf("joint input target: %v", syntax.String(tgt))
	}
}

func TestParInputWithDiscardingSibling(t *testing.T) {
	// a(x).x̄ ‖ b(y): input on a goes alone; sibling (listening on b) discards.
	sib := syntax.RecvN(b, y)
	p := syntax.Group(syntax.Recv(a, []names.Name{x}, syntax.SendN(x)), sib)
	ts := filter(mustSteps(t, p), actions.In, a)
	if len(ts) != 1 {
		t.Fatalf("input transitions: %v", ts)
	}
	_, tgt := Instantiate(ts[0], []names.Name{c})
	want := syntax.Group(syntax.SendN(c), sib)
	if !syntax.AlphaEqual(tgt, want) {
		t.Fatalf("target: %v", syntax.String(tgt))
	}
}

func TestParTauIgnoredByEveryone(t *testing.T) {
	// τ.ā ‖ a(x): τ moves alone (sub(τ)=τ is discarded by all).
	p := syntax.Group(syntax.TauP(syntax.SendN(a)), syntax.RecvN(a, x))
	ts := taus(mustSteps(t, p))
	if len(ts) != 1 {
		t.Fatalf("tau transitions: %v", ts)
	}
	want := syntax.Group(syntax.SendN(a), syntax.RecvN(a, x))
	if !syntax.AlphaEqual(ts[0].Target, want) {
		t.Fatalf("tau target: %v", syntax.String(ts[0].Target))
	}
}

func TestParMismatchedArityBlocksBroadcast(t *testing.T) {
	// ā(b) ‖ a(x,y).p: the sibling listens on a at the wrong arity — it can
	// neither receive nor discard, so the broadcast is stuck (well-sorted
	// usage never does this; the semantics is faithful to the rules).
	p := syntax.Group(syntax.SendN(a, b), syntax.RecvN(a, x, y))
	if ts := filter(mustSteps(t, p), actions.Out, a); len(ts) != 0 {
		t.Fatalf("arity-mismatched broadcast should be stuck: %v", ts)
	}
}

func TestParScopeExtrusionToSibling(t *testing.T) {
	// (νz āz.z(w).w̄) ‖ a(x).x̄b: the private z is extruded; the sibling
	// answers on z. After the bound output the two ends share z.
	sender := syntax.Restrict(
		syntax.Send(a, []names.Name{z}, syntax.Recv(z, []names.Name{"w"}, syntax.SendN("w"))), z)
	recvr := syntax.Recv(a, []names.Name{x}, syntax.SendN(x, b))
	p := syntax.Group(sender, recvr)
	ts := filter(mustSteps(t, p), actions.Out, a)
	if len(ts) != 1 {
		t.Fatalf("bound output transitions: %v", ts)
	}
	act := ts[0].Act
	if len(act.Bound) != 1 {
		t.Fatalf("expected extrusion: %s", act)
	}
	fresh := act.Bound[0]
	// Target: z(w).w̄ ‖ z̄b with the shared fresh name.
	want := syntax.Group(
		syntax.Recv(fresh, []names.Name{"w"}, syntax.SendN("w")),
		syntax.SendN(fresh, b),
	)
	if !syntax.AlphaEqual(ts[0].Target, want) {
		t.Fatalf("extrusion target: %v want %v", syntax.String(ts[0].Target), syntax.String(want))
	}
	// And the subsequent private dialogue: restore the restriction as rule 6
	// would after a surrounding ν; here z is free so the reply is visible.
	ts2 := filter(mustSteps(t, ts[0].Target), actions.Out, fresh)
	if len(ts2) != 1 {
		t.Fatalf("reply transitions: %v", ts2)
	}
}

func TestParExtrusionAvoidsSiblingCapture(t *testing.T) {
	// (νb āb) ‖ b̄c: the extruded name must be renamed away from the
	// sibling's free b (side condition of rule 13/14).
	sender := syntax.Restrict(syntax.SendN(a, b), b)
	sib := syntax.SendN(b, c)
	p := syntax.Group(sender, sib)
	ts := filter(mustSteps(t, p), actions.Out, a)
	if len(ts) != 1 {
		t.Fatalf("transitions: %v", ts)
	}
	if got := ts[0].Act.Bound[0]; got == b {
		t.Fatalf("extruded name captured sibling's b: %s", ts[0].Act)
	}
}

func TestParInputParamAvoidsSiblingCapture(t *testing.T) {
	// a(x).x̄ ‖ x̄c with the sibling using x free: the symbolic input binder
	// must be renamed before combining with the discarding sibling.
	sib := syntax.SendN(x, c)
	p := syntax.Group(syntax.Recv(a, []names.Name{x}, syntax.SendN(x)), sib)
	ts := filter(mustSteps(t, p), actions.In, a)
	if len(ts) != 1 {
		t.Fatalf("inputs: %v", ts)
	}
	if ts[0].Act.Objs[0] == x {
		t.Fatalf("binder collides with sibling free name: %s", ts[0].Act)
	}
	_, tgt := Instantiate(ts[0], []names.Name{x})
	want := syntax.Group(syntax.SendN(x), sib)
	if !syntax.AlphaEqual(tgt, want) {
		t.Fatalf("instantiated: %v", syntax.String(tgt))
	}
}

func TestThreeWayJointInput(t *testing.T) {
	// Three listeners on a: a single environment broadcast feeds all three.
	p := syntax.Group(
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x)),
		syntax.Recv(a, []names.Name{y}, syntax.SendN(y)),
		syntax.Recv(a, []names.Name{z}, syntax.SendN(z)),
	)
	ts := filter(mustSteps(t, p), actions.In, a)
	if len(ts) != 1 {
		t.Fatalf("want one joint input: %v", ts)
	}
	_, tgt := Instantiate(ts[0], []names.Name{d})
	want := syntax.Group(syntax.SendN(d), syntax.SendN(d), syntax.SendN(d))
	if !syntax.AlphaEqual(tgt, want) {
		t.Fatalf("3-way input: %v", syntax.String(tgt))
	}
}

func TestSumOfInputsOffersBoth(t *testing.T) {
	// a(x).x̄ + b(y).ȳ: listening on both; discards neither a nor b.
	p := syntax.Choice(
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x)),
		syntax.Recv(b, []names.Name{y}, syntax.SendN(y)),
	)
	ts := mustSteps(t, p)
	if len(filter(ts, actions.In, a)) != 1 || len(filter(ts, actions.In, b)) != 1 {
		t.Fatalf("sum of inputs: %v", ts)
	}
	if mustDiscards(t, p, a) || mustDiscards(t, p, b) {
		t.Error("sum listening on a and b must not discard them")
	}
	if !mustDiscards(t, p, c) {
		t.Error("sum must discard c")
	}
}

func TestDedupeTransitions(t *testing.T) {
	// ā + ā has one transition after dedup.
	p := syntax.Choice(syntax.SendN(a), syntax.SendN(a))
	if ts := mustSteps(t, p); len(ts) != 1 {
		t.Fatalf("dedupe failed: %v", ts)
	}
	// Alpha-equivalent inputs dedupe too.
	q := syntax.Choice(
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x)),
		syntax.Recv(a, []names.Name{y}, syntax.SendN(y)),
	)
	if ts := mustSteps(t, q); len(ts) != 1 {
		t.Fatalf("alpha dedupe failed: %v", ts)
	}
}

func TestTransKeyStableAcrossAlpha(t *testing.T) {
	t1 := Trans{actions.NewIn(a, []names.Name{x}), syntax.SendN(x)}
	t2 := Trans{actions.NewIn(a, []names.Name{y}), syntax.SendN(y)}
	if TransKey(t1) != TransKey(t2) {
		t.Error("TransKey must identify alpha-equivalent symbolic inputs")
	}
	t3 := Trans{actions.NewIn(a, []names.Name{x}), syntax.SendN(a)}
	if TransKey(t1) == TransKey(t3) {
		t.Error("TransKey collision")
	}
}

// ---- Lemma 1: free-name monotonicity along transitions --------------------

func TestLemma1FreeNames(t *testing.T) {
	// For outputs and τ: fn(p') ⊆ fn(p) ∪ bn(α); receptions add the inputs.
	p := syntax.Group(
		syntax.Restrict(syntax.Send(a, []names.Name{z}, syntax.SendN(z)), z),
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x, b)),
	)
	for _, tr := range mustSteps(t, p) {
		switch tr.Act.Kind {
		case actions.Out:
			allowed := syntax.FreeNames(p).AddAll(tr.Act.BoundNames())
			if got := syntax.FreeNames(tr.Target); !got.Minus(allowed).Equal(names.NewSet()) {
				t.Errorf("Lemma 1(1) violated: fn(target)=%v ⊄ %v", got, allowed)
			}
		case actions.In:
			ground, tgt := Instantiate(tr, []names.Name{d})
			allowed := syntax.FreeNames(p).AddAll(ground.FreeNames())
			if got := syntax.FreeNames(tgt); !got.Minus(allowed).Equal(names.NewSet()) {
				t.Errorf("Lemma 1(2) violated: fn=%v ⊄ %v", got, allowed)
			}
		case actions.Tau:
			if got := syntax.FreeNames(tr.Target); !got.Minus(syntax.FreeNames(p)).Equal(names.NewSet()) {
				t.Errorf("Lemma 1(3) violated: fn grew on τ: %v", got)
			}
		}
	}
}

// ---- Remark 1 driver scenarios ---------------------------------------------

func TestRemark1Transitions(t *testing.T) {
	// p0 = āb, q0 = āb.c̄d. Both have exactly one visible output on a and no τ.
	p0 := syntax.SendN(a, b)
	q0 := syntax.Send(a, []names.Name{b}, syntax.SendN(c, d))
	for _, p := range []syntax.Proc{p0, q0} {
		ts := mustSteps(t, p)
		if len(ts) != 1 || !ts[0].Act.IsOutput() || ts[0].Act.Subj != a {
			t.Fatalf("%s: %v", syntax.String(p), ts)
		}
	}
	// νa p0 --τ--> (dead), νa q0 --τ--> νa c̄d which still barbs on c.
	np0 := syntax.Restrict(p0, a)
	nq0 := syntax.Restrict(q0, a)
	t0 := taus(mustSteps(t, np0))
	t1 := taus(mustSteps(t, nq0))
	if len(t0) != 1 || len(t1) != 1 {
		t.Fatal("both must take the internal step")
	}
	if ts := mustSteps(t, t0[0].Target); len(ts) != 0 {
		t.Fatalf("νa nil should be inert: %v", ts)
	}
	after := filter(mustSteps(t, t1[0].Target), actions.Out, c)
	if len(after) != 1 {
		t.Fatalf("νa c̄d must still emit on c: %v", mustSteps(t, t1[0].Target))
	}
}

// Example 1 smoke test: the cycle detector on a 2-cycle eventually signals o.
func TestCycleDetectorEdgeManagerSmoke(t *testing.T) {
	// Edge manager for edge (a,b) with private token u: broadcasts u on b;
	// listens on a; echoes on b; signals on o when its own token returns.
	// Here we hand-build the 2-cycle a->b->a wiring and check o is reachable.
	em := func(src, dst names.Name) syntax.Proc {
		u := names.Name("u")
		emit := syntax.Rec{Id: "Y", Params: []names.Name{"bb", "uu"},
			Body: syntax.Send("bb", []names.Name{"uu"}, syntax.Call{Id: "Y", Args: []names.Name{"bb", "uu"}}),
			Args: []names.Name{dst, u}}
		listen := syntax.Rec{Id: "X", Params: []names.Name{"oo", "aa", "bb", "uu"},
			Body: syntax.Recv("aa", []names.Name{"w"},
				syntax.If("uu", "w", syntax.SendN("oo"),
					syntax.Group(syntax.SendN("bb", "w"), syntax.Call{Id: "X", Args: []names.Name{"oo", "aa", "bb", "uu"}}))),
			Args: []names.Name{o, src, dst, u}}
		return syntax.Restrict(syntax.Group(emit, listen), u)
	}
	system := syntax.Group(em(a, b), em(b, a))
	// Search a few levels of the step graph for a state that barbs on o.
	found := searchBarb(t, system, o, 6)
	if !found {
		t.Fatal("cycle detector never signals on o for the 2-cycle")
	}
}

// searchBarb explores autonomous steps (outputs and τ) up to depth and
// reports whether some reachable state emits on the watch channel.
func searchBarb(t *testing.T, p syntax.Proc, watch names.Name, depth int) bool {
	t.Helper()
	seen := map[string]bool{}
	var rec func(q syntax.Proc, d int) bool
	rec = func(q syntax.Proc, d int) bool {
		k := syntax.Key(syntax.Simplify(q))
		if seen[k] {
			return false
		}
		seen[k] = true
		ts := mustSteps(t, q)
		for _, tr := range ts {
			if tr.Act.IsOutput() && tr.Act.Subj == watch {
				return true
			}
		}
		if d == 0 {
			return false
		}
		for _, tr := range ts {
			if tr.Act.IsStep() && rec(tr.Target, d-1) {
				return true
			}
		}
		return false
	}
	return rec(p, depth)
}

func TestStepsOnStrings(t *testing.T) {
	// Ensure transitions print sensibly (smoke for debugging helpers).
	p := syntax.Group(syntax.SendN(a, b), syntax.RecvN(a, x))
	for _, tr := range mustSteps(t, p) {
		if s := tr.String(); !strings.Contains(s, "-->") {
			t.Errorf("odd transition string: %q", s)
		}
	}
}
