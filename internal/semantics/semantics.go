// Package semantics implements the structural operational semantics of the
// bπ-calculus: the discard relation of Table 2 and the early labelled
// transition system of Table 3 (Ene & Muntean 2001).
//
// Transitions are produced in *symbolic early* form: an input transition
// carries the input's binding parameters and an open continuation, and is
// instantiated on demand (Instantiate) with received names. This is exactly
// the early semantics — the instantiation points are the rule-(3) instances
// — presented so that the broadcast composition rules (12–14) can unify the
// receivers of one message without enumerating name tuples.
//
// # Reentrancy
//
// The package is purely functional and safe for concurrent use: a System is
// immutable after construction (Env is treated as read-only, per its
// contract), and every Steps/Discards call allocates its own stepCtx for the
// unfold budget, sharing no mutable state between calls. Transitions never
// alias mutable internals of their source term — targets are fresh process
// values built by substitution. Callers (notably equiv.Store) rely on this
// to derive transitions for the same System from many goroutines at once.
package semantics

import (
	"fmt"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Trans is a transition p --α--> target.
//
// For input labels (actions.In) the transition is symbolic: Act.Objs are
// binder parameters and Target is the open continuation; use Instantiate to
// obtain the ground transition for a given tuple of received names. τ and
// output transitions are ground.
type Trans struct {
	Act    actions.Act
	Target syntax.Proc
}

// String renders "--α--> p".
func (t Trans) String() string {
	return fmt.Sprintf("--%s--> %s", t.Act, syntax.String(t.Target))
}

// System fixes the semantic context: a definitions environment and guard
// budgets. The zero value is usable (empty environment, default budget).
type System struct {
	// Env resolves process identifier calls.
	Env syntax.Env
	// MaxUnfold bounds the number of rec/call unfoldings performed while
	// computing the transitions of a single term, protecting against
	// unguarded recursion (0 means the default of 10000).
	MaxUnfold int
}

// NewSystem returns a System over the given definitions environment.
func NewSystem(env syntax.Env) *System { return &System{Env: env} }

// ErrUnfoldBudget is reported when computing one step required more
// recursion unfoldings than MaxUnfold — the symptom of an unguarded
// recursion.
type ErrUnfoldBudget struct{ Limit int }

func (e ErrUnfoldBudget) Error() string {
	return fmt.Sprintf("semantics: unfold budget %d exhausted (unguarded recursion?)", e.Limit)
}

type stepCtx struct {
	sys     *System
	unfolds int
}

func (c *stepCtx) spendUnfold() error {
	limit := c.sys.MaxUnfold
	if limit == 0 {
		limit = 10000
	}
	c.unfolds++
	if c.unfolds > limit {
		return ErrUnfoldBudget{limit}
	}
	return nil
}

// Steps returns the symbolic transitions of p (rules 1–14 of Table 3),
// deduplicated up to alpha-equivalence of (label, target).
func (s *System) Steps(p syntax.Proc) ([]Trans, error) {
	ctx := &stepCtx{sys: s}
	ts, err := steps(p, ctx)
	if err != nil {
		return nil, err
	}
	return dedupe(ts), nil
}

// Discards implements the discard relation of Table 2: p -a↛, "p ignores
// any broadcast on a".
func (s *System) Discards(p syntax.Proc, a names.Name) (bool, error) {
	ctx := &stepCtx{sys: s}
	return discards(p, a, ctx)
}

func discards(p syntax.Proc, a names.Name, ctx *stepCtx) (bool, error) {
	switch t := p.(type) {
	case syntax.Nil:
		return true, nil // rule (1)
	case syntax.Prefix:
		switch pre := t.Pre.(type) {
		case syntax.Tau:
			return true, nil // rule (2)
		case syntax.Out:
			return true, nil // rule (3)
		case syntax.In:
			return pre.Ch != a, nil // rule (4)
		}
		panic("semantics: unknown prefix")
	case syntax.Res:
		if t.X == a {
			return true, nil // rule (5), x = a case: the outer a is not the local x
		}
		return discards(t.Body, a, ctx) // rule (5)
	case syntax.Sum:
		l, err := discards(t.L, a, ctx)
		if err != nil || !l {
			return false, err
		}
		return discards(t.R, a, ctx) // rule (6)
	case syntax.Match:
		if t.X == t.Y {
			return discards(t.Then, a, ctx) // rule (7)
		}
		return discards(t.Else, a, ctx) // rule (8)
	case syntax.Par:
		l, err := discards(t.L, a, ctx)
		if err != nil || !l {
			return false, err
		}
		return discards(t.R, a, ctx) // rule (9)
	case syntax.Rec:
		if err := ctx.spendUnfold(); err != nil {
			return false, err
		}
		return discards(syntax.Unfold(t), a, ctx) // rule (10)
	case syntax.Call:
		if err := ctx.spendUnfold(); err != nil {
			return false, err
		}
		q, err := ctx.sys.Env.Expand(t)
		if err != nil {
			return false, err
		}
		return discards(q, a, ctx)
	default:
		panic("semantics: unknown process node")
	}
}

func steps(p syntax.Proc, ctx *stepCtx) ([]Trans, error) {
	switch t := p.(type) {
	case syntax.Nil:
		return nil, nil
	case syntax.Prefix:
		switch pre := t.Pre.(type) {
		case syntax.Tau: // rule (2)
			return []Trans{{actions.NewTau(), t.Cont}}, nil
		case syntax.Out: // rule (4)
			return []Trans{{actions.NewOut(pre.Ch, pre.Args), t.Cont}}, nil
		case syntax.In: // rule (3), symbolic early form
			return []Trans{{actions.NewIn(pre.Ch, pre.Params), t.Cont}}, nil
		}
		panic("semantics: unknown prefix")
	case syntax.Sum: // rule (8)
		l, err := steps(t.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := steps(t.R, ctx)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case syntax.Match: // rules (9), (10)
		if t.X == t.Y {
			return steps(t.Then, ctx)
		}
		return steps(t.Else, ctx)
	case syntax.Rec: // rule (11)
		if err := ctx.spendUnfold(); err != nil {
			return nil, err
		}
		return steps(syntax.Unfold(t), ctx)
	case syntax.Call:
		if err := ctx.spendUnfold(); err != nil {
			return nil, err
		}
		q, err := ctx.sys.Env.Expand(t)
		if err != nil {
			return nil, err
		}
		return steps(q, ctx)
	case syntax.Res:
		return stepsRes(t, ctx)
	case syntax.Par:
		return stepsPar(t, ctx)
	default:
		panic("semantics: unknown process node")
	}
}

// stepsRes implements rules (5), (6), (7) for νx p via the shared
// composition core.
func stepsRes(r syntax.Res, ctx *stepCtx) ([]Trans, error) {
	inner, err := steps(r.Body, ctx)
	if err != nil {
		return nil, err
	}
	return ComposeRes(r.X, inner), nil
}

// collides reports whether x clashes with the binders of the label (bound
// output names or input parameters).
func collides(x names.Name, act actions.Act) bool {
	switch act.Kind {
	case actions.Out:
		for _, b := range act.Bound {
			if b == x {
				return true
			}
		}
	case actions.In:
		for _, b := range act.Objs {
			if b == x {
				return true
			}
		}
	}
	return false
}

// freePosition reports whether x occurs among the label's free objects
// (x ∈ x̃ \ ỹ for νỹ āx̃).
func freePosition(act actions.Act, x names.Name) bool {
	bound := act.BoundSet()
	for _, o := range act.Objs {
		if o == x && !bound.Contains(o) {
			return true
		}
	}
	return false
}

// renameLabelBinders alpha-renames the label's binders (output extrusions or
// input parameters) jointly in label and target so that they avoid the given
// set (plus everything already in sight).
func renameLabelBinders(act actions.Act, tgt syntax.Proc, avoidExtra names.Set) (actions.Act, syntax.Proc) {
	var binders []names.Name
	switch act.Kind {
	case actions.Out:
		binders = act.Bound
	case actions.In:
		binders = act.Objs
	default:
		return act, tgt
	}
	avoid := syntax.FreeNames(tgt).Union(avoidExtra).AddAll(act.Names())
	ren := names.Subst{}
	for _, b := range binders {
		if avoidExtra.Contains(b) {
			nb := syntax.FreshVariant(b, avoid)
			avoid = avoid.Add(nb)
			ren[b] = nb
		}
	}
	if ren.IsIdentity() {
		return act, tgt
	}
	return act.RenameAll(ren), syntax.Apply(tgt, ren)
}

// stepsPar implements the broadcast composition rules (12), (13), (14) via
// the shared composition core, with the interpreter's recursive walker as
// each side's discard oracle.
func stepsPar(pp syntax.Par, ctx *stepCtx) ([]Trans, error) {
	ls, err := steps(pp.L, ctx)
	if err != nil {
		return nil, err
	}
	rs, err := steps(pp.R, ctx)
	if err != nil {
		return nil, err
	}
	return ComposePar(ctxSide(pp.L, ls, ctx), ctxSide(pp.R, rs, ctx))
}

// ctxSide wraps one component for ComposePar, answering discard queries with
// the per-call stepCtx (so unfold spending is shared with the derivation).
func ctxSide(p syntax.Proc, ts []Trans, ctx *stepCtx) Side {
	return Side{
		Proc:    p,
		Trans:   ts,
		Discard: func(a names.Name) (bool, error) { return discards(p, a, ctx) },
	}
}
