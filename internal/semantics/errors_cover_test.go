package semantics

import (
	"errors"
	"strings"
	"testing"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// unguarded is a recursion the step relation must reject: unfolding
// (rec A.A)⟨⟩ reproduces itself without consuming a prefix, so the unfold
// budget is the only thing standing between Steps and divergence.
func unguarded() syntax.Proc { return syntax.Rec{Id: "A", Body: syntax.Call{Id: "A"}} }

// TestStepsErrorPropagation drives the unfold-budget error through every
// process constructor that must forward a sub-derivation failure.
func TestStepsErrorPropagation(t *testing.T) {
	a := names.Name("a")
	sys := NewSystem(nil)
	sys.MaxUnfold = 32
	cases := []struct {
		name string
		p    syntax.Proc
	}{
		{"bare", unguarded()},
		{"sum-left", syntax.Sum{L: unguarded(), R: syntax.SendN(a)}},
		{"sum-right", syntax.Sum{L: syntax.SendN(a), R: unguarded()}},
		{"match-then", syntax.Match{X: a, Y: a, Then: unguarded(), Else: syntax.PNil}},
		{"match-else", syntax.Match{X: a, Y: names.Name("b"), Then: syntax.PNil, Else: unguarded()}},
		{"res-body", syntax.Res{X: a, Body: unguarded()}},
		{"par-left", syntax.Par{L: unguarded(), R: syntax.SendN(a)}},
		{"par-right", syntax.Par{L: syntax.SendN(a), R: unguarded()}},
	}
	for _, tc := range cases {
		_, err := sys.Steps(tc.p)
		if err == nil {
			t.Errorf("%s: Steps accepted %s", tc.name, syntax.String(tc.p))
			continue
		}
		var budget ErrUnfoldBudget
		if !errors.As(err, &budget) || budget.Limit != 32 {
			t.Errorf("%s: error %v, want ErrUnfoldBudget{32}", tc.name, err)
		}
		if !strings.Contains(budget.Error(), "unfold budget 32") {
			t.Errorf("%s: error text %q does not name the budget", tc.name, budget.Error())
		}
	}

	if _, err := sys.Steps(syntax.Call{Id: "NoSuchDef"}); err == nil {
		t.Error("Steps resolved an undefined identifier")
	}
}

// TestDiscardsErrorPropagation: the Table 2 discard relation walks the same
// term structure, so it must forward the same failures.
func TestDiscardsErrorPropagation(t *testing.T) {
	a := names.Name("a")
	sys := NewSystem(nil)
	sys.MaxUnfold = 32
	cases := []struct {
		name string
		p    syntax.Proc
	}{
		{"bare", unguarded()},
		{"sum-left", syntax.Sum{L: unguarded(), R: syntax.RecvN(a)}},
		{"sum-right", syntax.Sum{L: syntax.RecvN(names.Name("b")), R: unguarded()}},
		{"match-then", syntax.Match{X: a, Y: a, Then: unguarded(), Else: syntax.PNil}},
		{"match-else", syntax.Match{X: a, Y: names.Name("b"), Then: syntax.PNil, Else: unguarded()}},
		{"res-body", syntax.Res{X: names.Name("b"), Body: unguarded()}},
		{"par-left", syntax.Par{L: unguarded(), R: syntax.RecvN(a)}},
		{"par-right", syntax.Par{L: syntax.RecvN(names.Name("b")), R: unguarded()}},
	}
	for _, tc := range cases {
		if _, err := sys.Discards(tc.p, a); err == nil {
			t.Errorf("%s: Discards accepted %s", tc.name, syntax.String(tc.p))
		}
	}
	if _, err := sys.Discards(syntax.Call{Id: "NoSuchDef"}, a); err == nil {
		t.Error("Discards resolved an undefined identifier")
	}
}

// TestScopeExtrusionBinderCollision: lifting a bound output past a sibling
// whose free names include the binder must rename the extruded name, not
// capture it.
func TestScopeExtrusionBinderCollision(t *testing.T) {
	a, x := names.Name("a"), names.Name("x")
	// nu x.(a!(x)) | x!  — the extruded bound name x collides with the
	// sibling's free x.
	p := syntax.Par{
		L: syntax.Res{X: x, Body: syntax.SendN(a, x)},
		R: syntax.SendN(x),
	}
	ts, err := NewSystem(nil).Steps(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Fatal("no transitions for a scope-extruding composition")
	}
	for _, tr := range ts {
		for _, b := range tr.Act.Bound {
			if b == x {
				t.Errorf("extruded binder %s captured the sibling's free %s in %v", b, x, tr)
			}
		}
	}
}
