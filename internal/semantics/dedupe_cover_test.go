package semantics

import (
	"testing"

	"bpi/internal/parser"
	"bpi/internal/syntax"
)

// The exported Dedupe is the compiled path's normalisation hook: it must
// behave exactly like the dedupe Steps applies, and it must not mutate its
// argument (compiled units cache raw pre-dedupe lists).
func TestDedupeExportedMatchesSteps(t *testing.T) {
	p, err := parser.Parse("a!.b! + a!.b! + c!")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(nil)
	want, err := sys.Steps(p) // already deduped
	if err != nil {
		t.Fatal(err)
	}
	// Raw duplicates in derivation order: Dedupe must collapse them to the
	// Steps list, and leave the input slice intact.
	raw := append(append([]Trans(nil), want...), want...)
	rawLen := len(raw)
	got := Dedupe(raw)
	if len(raw) != rawLen {
		t.Fatal("Dedupe mutated its argument")
	}
	if len(got) != len(want) {
		t.Fatalf("Dedupe kept %d transitions, Steps has %d", len(got), len(want))
	}
	for i := range got {
		if TransKey(got[i]) != TransKey(want[i]) {
			t.Errorf("transition %d: %s vs %s", i, got[i], want[i])
		}
	}
}

// Instantiate's contract violations are caller bugs and must panic loudly.
func TestInstantiatePanics(t *testing.T) {
	p, err := parser.Parse("a?(x).x!")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewSystem(nil).Steps(p)
	if err != nil || len(ts) != 1 {
		t.Fatalf("steps: %v %v", ts, err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("arity mismatch", func() { Instantiate(ts[0], nil) })
	out, _ := parser.Parse("b!")
	outTs, err := NewSystem(nil).Steps(out)
	if err != nil || len(outTs) != 1 {
		t.Fatalf("steps: %v %v", outTs, err)
	}
	mustPanic("non-input", func() { Instantiate(outTs[0], []syntax.Name{"c"}) })
}
