package semantics

import (
	"testing"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Polyadic joint reception: both receivers bind two names from one
// broadcast, in order.
func TestPolyadicJointInput(t *testing.T) {
	p := syntax.Group(
		syntax.Recv(a, []names.Name{x, y}, syntax.SendN(x, y)),
		syntax.Recv(a, []names.Name{"u", "v"}, syntax.SendN("v", "u")),
	)
	ts := filter(mustSteps(t, p), actions.In, a)
	if len(ts) != 1 {
		t.Fatalf("joint polyadic input: %v", ts)
	}
	_, tgt := Instantiate(ts[0], []names.Name{b, c})
	want := syntax.Group(syntax.SendN(b, c), syntax.SendN(c, b))
	if !syntax.AlphaEqual(tgt, want) {
		t.Fatalf("instantiated: %v", syntax.String(tgt))
	}
}

// Polyadic broadcast delivering two names at once, one of them private
// (partial extrusion).
func TestPolyadicPartialExtrusion(t *testing.T) {
	p := syntax.Group(
		syntax.Restrict(syntax.Send(a, []names.Name{z, b}, syntax.RecvN(z, "w")), z),
		syntax.Recv(a, []names.Name{x, y}, syntax.SendN(x, y)),
	)
	ts := filter(mustSteps(t, p), actions.Out, a)
	if len(ts) != 1 {
		t.Fatalf("transitions: %v", ts)
	}
	act := ts[0].Act
	if len(act.Bound) != 1 || len(act.Objs) != 2 {
		t.Fatalf("label: %s", act)
	}
	fresh := act.Bound[0]
	if act.Objs[0] != fresh || act.Objs[1] != b {
		t.Fatalf("payload order mangled: %s", act)
	}
	// The receiver now knows the private name and answers on it.
	after := filter(mustSteps(t, ts[0].Target), actions.Out, fresh)
	if len(after) != 1 {
		t.Fatalf("reply on extruded channel: %v", mustSteps(t, ts[0].Target))
	}
}

// Mutually recursive environment definitions unfold through Steps.
func TestMutualRecursionThroughEnv(t *testing.T) {
	env := syntax.Env{}.
		Define("Ping", []names.Name{x, y},
			syntax.Send(x, nil, syntax.Call{Id: "Pong", Args: []names.Name{x, y}})).
		Define("Pong", []names.Name{x, y},
			syntax.Send(y, nil, syntax.Call{Id: "Ping", Args: []names.Name{x, y}}))
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	s := NewSystem(env)
	cur := syntax.Proc(syntax.Call{Id: "Ping", Args: []names.Name{a, b}})
	want := []names.Name{a, b, a, b}
	for i, wch := range want {
		ts, err := s.Steps(cur)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != 1 || ts[0].Act.Subj != wch {
			t.Fatalf("round %d: %v", i, ts)
		}
		cur = ts[0].Target
	}
}

// A restriction inside one parallel branch scopes extrusion to the siblings
// only after the broadcast.
func TestScopeGrowsExactlyToReceivers(t *testing.T) {
	// (νz āz) ‖ a(x).x̄ ‖ b(y): the z reaches the a-listener; the b-listener
	// discards and must NOT have z in its continuation.
	p := syntax.Group(
		syntax.Restrict(syntax.SendN(a, z), z),
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x)),
		syntax.RecvN(b, y),
	)
	ts := filter(mustSteps(t, p), actions.Out, a)
	if len(ts) != 1 {
		t.Fatalf("transitions: %v", ts)
	}
	fresh := ts[0].Act.Bound[0]
	parts := syntax.ParList(ts[0].Target)
	if len(parts) != 3 {
		t.Fatalf("shape: %v", syntax.String(ts[0].Target))
	}
	if !syntax.FreeNames(parts[1]).Contains(fresh) {
		t.Error("receiver did not learn the private name")
	}
	if syntax.FreeNames(parts[2]).Contains(fresh) {
		t.Error("discarding sibling leaked the private name")
	}
}

// Restriction blocks of mixed relevance: νx νy (x̄a ‖ b(w)) — x internalises,
// y is dropped by interning, and the b-listener stays intact.
func TestNestedRestrictionMixed(t *testing.T) {
	p := syntax.Restrict(
		syntax.Group(syntax.SendN(x, a), syntax.RecvN(b, "w")),
		x, y)
	ts := mustSteps(t, p)
	if len(taus(ts)) != 1 {
		t.Fatalf("internalised output: %v", ts)
	}
	ins := filter(ts, actions.In, b)
	if len(ins) != 1 {
		t.Fatalf("the b input must survive: %v", ts)
	}
}

// Choice between an input and an output under composition: the output side
// may fire while the sum still offers the input to the environment.
func TestMixedChoiceUnderComposition(t *testing.T) {
	mixed := syntax.Choice(
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x)),
		syntax.SendN(c),
	)
	p := syntax.Group(mixed, syntax.SendN(a, b))
	ts := mustSteps(t, p)
	// The sibling's broadcast on a must be received (sum cannot discard a).
	onA := filter(ts, actions.Out, a)
	if len(onA) != 1 {
		t.Fatalf("broadcast on a: %v", ts)
	}
	want := syntax.Group(syntax.SendN(b), syntax.PNil)
	if !syntax.AlphaEqual(onA[0].Target, want) {
		t.Fatalf("sum did not resolve to the receiving branch: %v", syntax.String(onA[0].Target))
	}
	// And the sum's own output resolves the choice the other way.
	onC := filter(ts, actions.Out, c)
	if len(onC) != 1 {
		t.Fatalf("own output: %v", ts)
	}
}

// Unfold budget is respected through deep nesting inside compositions.
func TestUnfoldBudgetInsideComposition(t *testing.T) {
	s := &System{MaxUnfold: 8}
	bad := syntax.Rec{Id: "A", Params: nil, Body: syntax.Call{Id: "A"}, Args: nil}
	p := syntax.Group(syntax.SendN(a), bad)
	if _, err := s.Steps(p); err == nil {
		t.Fatal("expected unfold budget error through Par")
	}
}

// Alpha-invariance of Steps: transitions of alpha-variants have identical
// canonical keys.
func TestStepsAlphaInvariant(t *testing.T) {
	p1 := syntax.Restrict(syntax.Send(a, []names.Name{z}, syntax.RecvN(z, x)), z)
	p2 := syntax.Restrict(syntax.Send(a, []names.Name{"q"}, syntax.RecvN("q", "r")), "q")
	t1 := mustSteps(t, p1)
	t2 := mustSteps(t, p2)
	if len(t1) != len(t2) {
		t.Fatalf("branching differs: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if TransKey(t1[i]) != TransKey(t2[i]) {
			t.Fatalf("transition %d differs:\n %s\n %s", i, t1[i], t2[i])
		}
	}
}
