package semantics

import (
	"sort"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// This file implements the broadcast composition rules (12–14). Everything
// here follows the package's reentrancy contract: helpers receive all state
// as arguments (the stepCtx is per-call) and build fresh transition targets,
// so parallel callers never observe shared mutation.

// pairUp rebuilds a parallel composition with the mover on its original
// side: Par{moved, other} when the mover was the left component.
func pairUp(moverIsLeft bool, moved, other syntax.Proc) syntax.Proc {
	if moverIsLeft {
		return syntax.Par{L: moved, R: other}
	}
	return syntax.Par{L: other, R: moved}
}

// broadcastSide combines each output transition of movers with every way the
// sibling process sib (whose symbolic transitions are sibTrans) can absorb
// the broadcast: receiving it (rule 13) or discarding the channel (rule 14).
func broadcastSide(movers, sibTrans []Trans, sib syntax.Proc, ctx *stepCtx,
	moverIsLeft bool) ([]Trans, error) {
	combine := func(moved, other syntax.Proc) syntax.Proc { return pairUp(moverIsLeft, moved, other) }
	var out []Trans
	var sibFree names.Set
	for _, mv := range movers {
		if !mv.Act.IsOutput() {
			continue
		}
		act, tgt := mv.Act, mv.Target
		// Rule 13 side condition bn(α) ∩ fn(p2) = ∅: alpha-rename the
		// extruded names (jointly in label and continuation) away from the
		// sibling's free names.
		if len(act.Bound) > 0 {
			if sibFree == nil {
				sibFree = syntax.FreeNames(sib)
			}
			act, tgt = renameLabelBinders(act, tgt, sibFree)
		}
		// Rule 13: the sibling receives the payload.
		for _, st := range sibTrans {
			if !st.Act.IsInput() || st.Act.Subj != act.Subj || len(st.Act.Objs) != len(act.Objs) {
				continue
			}
			recv := syntax.Instantiate(st.Target, st.Act.Objs, act.Objs)
			out = append(out, Trans{act, combine(tgt, recv)})
		}
		// Rule 14: the sibling ignores the channel.
		disc, err := discards(sib, act.Subj, ctx)
		if err != nil {
			return nil, err
		}
		if disc {
			out = append(out, Trans{act, combine(tgt, sib)})
		}
	}
	return out, nil
}

// inputSide produces the composite input transitions in which movers'
// receptions participate: paired with a reception of the sibling on the same
// channel at the same arity (rule 12), or alone while the sibling discards
// (rule 14). To avoid emitting each rule-12 combination twice, only the
// orientation in which the mover is the left component creates the paired
// transitions; the discard case is created for both orientations.
func inputSide(movers, sibTrans []Trans, sib syntax.Proc, ctx *stepCtx,
	moverIsLeft bool) ([]Trans, error) {
	combine := func(moved, other syntax.Proc) syntax.Proc { return pairUp(moverIsLeft, moved, other) }
	leftOriented := moverIsLeft
	var out []Trans
	for _, mv := range movers {
		if !mv.Act.IsInput() {
			continue
		}
		a, params, cont := mv.Act.Subj, mv.Act.Objs, mv.Target
		// Rule 12: the sibling receives the same message.
		if leftOriented {
			for _, st := range sibTrans {
				if !st.Act.IsInput() || st.Act.Subj != a || len(st.Act.Objs) != len(params) {
					continue
				}
				// Unify the two binder tuples on fresh parameters.
				avoid := syntax.FreeNames(cont).Union(syntax.FreeNames(st.Target)).
					AddSlice(params).AddSlice(st.Act.Objs).Add(a)
				fresh := make([]names.Name, len(params))
				for i := range params {
					fresh[i] = syntax.FreshVariant(params[i], avoid)
					avoid = avoid.Add(fresh[i])
				}
				l := syntax.Instantiate(cont, params, fresh)
				r := syntax.Instantiate(st.Target, st.Act.Objs, fresh)
				out = append(out, Trans{actions.NewIn(a, fresh), combine(l, r)})
			}
		}
		// Rule 14: the sibling discards the channel. The binder parameters
		// must not capture free names of the sibling.
		disc, err := discards(sib, a, ctx)
		if err != nil {
			return nil, err
		}
		if disc {
			act, tgt := mv.Act, cont
			sibFree := syntax.FreeNames(sib)
			if sibFree.ContainsAny(params) {
				act, tgt = renameLabelBinders(act, tgt, sibFree)
			}
			out = append(out, Trans{act, combine(tgt, sib)})
		}
	}
	return out, nil
}

// Instantiate grounds a symbolic input transition with the received names:
// given p --a(x̃)--> cont (symbolic), it returns the early transition
// p --a(c̃)--> cont[c̃/x̃]. It panics if the transition is not an input or the
// arity differs (caller bug).
func Instantiate(t Trans, received []names.Name) (actions.Act, syntax.Proc) {
	if !t.Act.IsInput() {
		panic("semantics: Instantiate on non-input transition")
	}
	if len(received) != len(t.Act.Objs) {
		panic("semantics: Instantiate arity mismatch")
	}
	return actions.NewIn(t.Act.Subj, received), syntax.Instantiate(t.Target, t.Act.Objs, received)
}

// dedupe removes transitions that are duplicates up to alpha-equivalence of
// the (label, target) pair, and returns them in a deterministic order.
func dedupe(ts []Trans) []Trans {
	seen := make(map[string]bool, len(ts))
	out := ts[:0]
	for _, t := range ts {
		k := TransKey(t)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	sort.SliceStable(out, func(i, j int) bool { return TransKey(out[i]) < TransKey(out[j]) })
	return out
}

// TransKey returns a canonical string for a transition, treating the label's
// binders (input parameters, extruded output names) as alpha-convertible
// jointly with the target. Two transitions get the same key iff they are
// the same transition up to alpha.
func TransKey(t Trans) string {
	act, tgt := CanonTrans(t.Act, t.Target)
	return act.String() + " " + syntax.Key(tgt)
}

// CanonTrans canonicalises the binders of a label jointly with its target:
// input parameters and extruded names are renamed to a deterministic
// sequence of fresh variants that avoid every free name of the label and
// target (so successive extrusions can never be conflated). The choice
// depends only on the alpha-class of (label, target), making it suitable for
// keying and deduplication.
func CanonTrans(act actions.Act, tgt syntax.Proc) (actions.Act, syntax.Proc) {
	var binders []names.Name
	switch act.Kind {
	case actions.In:
		binders = act.Objs
	case actions.Out:
		binders = act.Bound
	}
	if len(binders) == 0 {
		return act, tgt
	}
	// The avoid set must be alpha-invariant (independent of the current
	// binder names), so subtract the binders before choosing replacements.
	avoid := syntax.FreeNames(tgt).AddAll(act.Names())
	for _, b := range binders {
		avoid.Remove(b)
	}
	base := "v"
	if act.Kind == actions.Out {
		base = "e"
	}
	ren := names.Subst{}
	for _, b := range binders {
		nb := syntax.FreshVariant(names.Name(base), avoid)
		avoid = avoid.Add(nb)
		ren[b] = nb
	}
	return act.RenameAll(ren), syntax.Apply(tgt, ren)
}
