package semantics

import (
	"sort"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// This file implements the restriction rules (5–7) and the broadcast
// composition rules (12–14) as a reusable composition core. The interpreted
// walker (steps/stepsRes/stepsPar) and the compiled transition programs
// (internal/tprog) both go through these entry points, so the two paths
// agree on transition order and on the concrete representatives kept by
// deduplication — by construction, not by coincidence.
//
// Everything here follows the package's reentrancy contract: helpers receive
// all state as arguments and build fresh transition targets, so parallel
// callers never observe shared mutation.

// DiscardFunc answers the Table 2 question for one component of a
// composition: does this side ignore a broadcast on a?
type DiscardFunc func(a names.Name) (bool, error)

// InputLookup returns one side's input transitions on ch at the given arity,
// preserving their relative order within the side's transition list. It is
// the head-input dispatch hook for compiled programs; nil means the
// composition falls back to a linear scan.
type InputLookup func(ch names.Name, arity int) []Trans

// Side packages one component of a parallel composition the way the
// broadcast composition rules consume it: the process itself (for rebuilding
// targets and free-name side conditions), its symbolic transitions in
// derivation order, its discard oracle, and an optional head-input index
// over those transitions.
type Side struct {
	Proc    syntax.Proc
	Trans   []Trans
	Discard DiscardFunc
	Inputs  InputLookup
}

// forEachInput visits the side's input transitions on (ch, arity) in
// transition-list order, via the index when one is present.
func (s Side) forEachInput(ch names.Name, arity int, f func(Trans)) {
	if s.Inputs != nil {
		for _, t := range s.Inputs(ch, arity) {
			f(t)
		}
		return
	}
	for _, t := range s.Trans {
		if t.Act.IsInput() && t.Act.Subj == ch && len(t.Act.Objs) == arity {
			f(t)
		}
	}
}

// pairUp rebuilds a parallel composition with the mover on its original
// side: Par{moved, other} when the mover was the left component.
func pairUp(moverIsLeft bool, moved, other syntax.Proc) syntax.Proc {
	if moverIsLeft {
		return syntax.Par{L: moved, R: other}
	}
	return syntax.Par{L: other, R: moved}
}

// ComposePar derives the transitions of l.Proc | r.Proc from the two sides'
// transitions via the broadcast composition rules (12–14). The result is in
// the interpreter's pre-dedupe append order — left τ, right τ, left
// outputs, right outputs, left inputs, right inputs — so callers that need
// the public Steps order apply Dedupe to the final top-level list only.
func ComposePar(l, r Side) ([]Trans, error) {
	var out []Trans
	// τ moves: everything discards τ (rule (14) with sub(τ)=τ).
	for _, tl := range l.Trans {
		if tl.Act.IsTau() {
			out = append(out, Trans{tl.Act, syntax.Par{L: tl.Target, R: r.Proc}})
		}
	}
	for _, tr := range r.Trans {
		if tr.Act.IsTau() {
			out = append(out, Trans{tr.Act, syntax.Par{L: l.Proc, R: tr.Target}})
		}
	}
	// Outputs from the left, heard or discarded by the right (13)/(14).
	o1, err := composeBroadcast(l, r, true)
	if err != nil {
		return nil, err
	}
	out = append(out, o1...)
	// Outputs from the right (symmetric).
	o2, err := composeBroadcast(r, l, false)
	if err != nil {
		return nil, err
	}
	out = append(out, o2...)
	// Inputs: both receive (12), or one receives and the other discards (14).
	i1, err := composeInput(l, r, true)
	if err != nil {
		return nil, err
	}
	out = append(out, i1...)
	i2, err := composeInput(r, l, false)
	if err != nil {
		return nil, err
	}
	out = append(out, i2...)
	return out, nil
}

// composeBroadcast combines each output transition of the mover side with
// every way the sibling side can absorb the broadcast: receiving it
// (rule 13) or discarding the channel (rule 14).
func composeBroadcast(mover, sib Side, moverIsLeft bool) ([]Trans, error) {
	combine := func(moved, other syntax.Proc) syntax.Proc { return pairUp(moverIsLeft, moved, other) }
	var out []Trans
	var sibFree names.Set
	for _, mv := range mover.Trans {
		if !mv.Act.IsOutput() {
			continue
		}
		act, tgt := mv.Act, mv.Target
		// Rule 13 side condition bn(α) ∩ fn(p2) = ∅: alpha-rename the
		// extruded names (jointly in label and continuation) away from the
		// sibling's free names.
		if len(act.Bound) > 0 {
			if sibFree == nil {
				sibFree = syntax.FreeNames(sib.Proc)
			}
			act, tgt = renameLabelBinders(act, tgt, sibFree)
		}
		// Rule 13: the sibling receives the payload.
		sib.forEachInput(act.Subj, len(act.Objs), func(st Trans) {
			recv := syntax.Instantiate(st.Target, st.Act.Objs, act.Objs)
			out = append(out, Trans{act, combine(tgt, recv)})
		})
		// Rule 14: the sibling ignores the channel.
		disc, err := sib.Discard(act.Subj)
		if err != nil {
			return nil, err
		}
		if disc {
			out = append(out, Trans{act, combine(tgt, sib.Proc)})
		}
	}
	return out, nil
}

// composeInput produces the composite input transitions in which the mover
// side's receptions participate: paired with a reception of the sibling on
// the same channel at the same arity (rule 12), or alone while the sibling
// discards (rule 14). To avoid emitting each rule-12 combination twice, only
// the orientation in which the mover is the left component creates the
// paired transitions; the discard case is created for both orientations.
func composeInput(mover, sib Side, moverIsLeft bool) ([]Trans, error) {
	combine := func(moved, other syntax.Proc) syntax.Proc { return pairUp(moverIsLeft, moved, other) }
	leftOriented := moverIsLeft
	var out []Trans
	for _, mv := range mover.Trans {
		if !mv.Act.IsInput() {
			continue
		}
		a, params, cont := mv.Act.Subj, mv.Act.Objs, mv.Target
		// Rule 12: the sibling receives the same message.
		if leftOriented {
			sib.forEachInput(a, len(params), func(st Trans) {
				// Unify the two binder tuples on fresh parameters.
				avoid := syntax.FreeNames(cont).Union(syntax.FreeNames(st.Target)).
					AddSlice(params).AddSlice(st.Act.Objs).Add(a)
				fresh := make([]names.Name, len(params))
				for i := range params {
					fresh[i] = syntax.FreshVariant(params[i], avoid)
					avoid = avoid.Add(fresh[i])
				}
				l := syntax.Instantiate(cont, params, fresh)
				r := syntax.Instantiate(st.Target, st.Act.Objs, fresh)
				out = append(out, Trans{actions.NewIn(a, fresh), combine(l, r)})
			})
		}
		// Rule 14: the sibling discards the channel. The binder parameters
		// must not capture free names of the sibling.
		disc, err := sib.Discard(a)
		if err != nil {
			return nil, err
		}
		if disc {
			act, tgt := mv.Act, cont
			sibFree := syntax.FreeNames(sib.Proc)
			if sibFree.ContainsAny(params) {
				act, tgt = renameLabelBinders(act, tgt, sibFree)
			}
			out = append(out, Trans{act, combine(tgt, sib.Proc)})
		}
	}
	return out, nil
}

// ComposeRes implements the restriction rules (5), (6), (7): it lifts the
// transitions of the body of νx p to the transitions of νx p itself. The
// input list is read-only; the result is freshly allocated.
func ComposeRes(x names.Name, inner []Trans) []Trans {
	var out []Trans
	for _, tr := range inner {
		act, tgt := tr.Act, tr.Target
		// Textual collisions between the restricted name and the label's
		// binders (extruded names of outputs, parameters of inputs) mean
		// shadowing, not identity: alpha-rename the label's binders away.
		if collides(x, act) {
			act, tgt = renameLabelBinders(act, tgt, names.NewSet(x))
		}
		switch act.Kind {
		case actions.Tau: // rule (7)
			out = append(out, Trans{act, syntax.Res{X: x, Body: tgt}})
		case actions.In:
			if act.Subj == x {
				continue // nobody outside can broadcast on the private channel
			}
			// rule (7): the received names are instantiated outside the
			// scope of x, so x stays restricted around the continuation.
			out = append(out, Trans{act, syntax.Res{X: x, Body: tgt}})
		case actions.Out:
			if act.Subj == x {
				// rule (6): output on the private channel is internalised;
				// the extruded names stay bound around the continuation.
				tgt2 := syntax.Restrict(tgt, act.Bound...)
				out = append(out, Trans{actions.NewTau(), syntax.Res{X: x, Body: tgt2}})
				continue
			}
			if freePosition(act, x) {
				// rule (5): scope extrusion; x becomes a bound name of the label.
				na := act
				na.Bound = append(append([]names.Name{}, act.Bound...), x)
				out = append(out, Trans{na, tgt})
				continue
			}
			// rule (7): x not mentioned by the label.
			out = append(out, Trans{act, syntax.Res{X: x, Body: tgt}})
		}
	}
	return out
}

// Instantiate grounds a symbolic input transition with the received names:
// given p --a(x̃)--> cont (symbolic), it returns the early transition
// p --a(c̃)--> cont[c̃/x̃]. It panics if the transition is not an input or the
// arity differs (caller bug).
func Instantiate(t Trans, received []names.Name) (actions.Act, syntax.Proc) {
	if !t.Act.IsInput() {
		panic("semantics: Instantiate on non-input transition")
	}
	if len(received) != len(t.Act.Objs) {
		panic("semantics: Instantiate arity mismatch")
	}
	return actions.NewIn(t.Act.Subj, received), syntax.Instantiate(t.Target, t.Act.Objs, received)
}

// Dedupe removes transitions that are duplicates up to alpha-equivalence of
// the (label, target) pair — keeping the first occurrence, so the concrete
// representative depends on derivation order — and returns them sorted by
// canonical transition key. It operates on a copy; ts is not mutated. This
// is the exact normalisation Steps applies, exported so the compiled path
// produces bit-identical transition lists.
func Dedupe(ts []Trans) []Trans {
	return dedupe(append([]Trans(nil), ts...))
}

// dedupe is Dedupe in place: it reuses ts's backing array.
func dedupe(ts []Trans) []Trans {
	seen := make(map[string]bool, len(ts))
	out := ts[:0]
	for _, t := range ts {
		k := TransKey(t)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	sort.SliceStable(out, func(i, j int) bool { return TransKey(out[i]) < TransKey(out[j]) })
	return out
}

// TransKey returns a canonical string for a transition, treating the label's
// binders (input parameters, extruded output names) as alpha-convertible
// jointly with the target. Two transitions get the same key iff they are
// the same transition up to alpha.
func TransKey(t Trans) string {
	act, tgt := CanonTrans(t.Act, t.Target)
	return act.String() + " " + syntax.Key(tgt)
}

// CanonTrans canonicalises the binders of a label jointly with its target:
// input parameters and extruded names are renamed to a deterministic
// sequence of fresh variants that avoid every free name of the label and
// target (so successive extrusions can never be conflated). The choice
// depends only on the alpha-class of (label, target), making it suitable for
// keying and deduplication.
func CanonTrans(act actions.Act, tgt syntax.Proc) (actions.Act, syntax.Proc) {
	var binders []names.Name
	switch act.Kind {
	case actions.In:
		binders = act.Objs
	case actions.Out:
		binders = act.Bound
	}
	if len(binders) == 0 {
		return act, tgt
	}
	// The avoid set must be alpha-invariant (independent of the current
	// binder names), so subtract the binders before choosing replacements.
	avoid := syntax.FreeNames(tgt).AddAll(act.Names())
	for _, b := range binders {
		avoid.Remove(b)
	}
	base := "v"
	if act.Kind == actions.Out {
		base = "e"
	}
	ren := names.Subst{}
	for _, b := range binders {
		nb := syntax.FreshVariant(names.Name(base), avoid)
		avoid = avoid.Add(nb)
		ren[b] = nb
	}
	return act.RenameAll(ren), syntax.Apply(tgt, ren)
}
