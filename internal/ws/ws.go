// Package ws is the work-stealing frontier runtime shared by the parallel
// engines (the equiv pair engine and the lts explorer). It replaces the
// level-synchronised wave pools of PR 1: instead of spawning a goroutine
// batch per BFS wave and joining at a global barrier, a Pool keeps a fixed
// set of persistent workers, each owning a private deque of work items.
// Owners push and pop at the tail (LIFO, cache-warm); a worker whose deque
// runs dry steals the head half of a peer's deque (FIFO, oldest first — the
// items most likely to fan out further).
//
// The pool makes NO ordering or determinism promises: items are processed
// exactly once, in whatever order claiming and stealing produce. Callers
// that need deterministic results (both engines do) must treat the pool as
// a best-effort precompute and establish determinism in a separate ordered
// pass — see internal/equiv's prebuild/expand split.
//
// Termination is by quiescence: an atomic in-flight counter tracks items
// pushed but not yet processed; when it reaches zero every worker is
// guaranteed to find no further work, and Run returns. Stop aborts early
// (workers exit without draining), which callers use for context
// cancellation, budget caps and first-error bail-out.
package ws

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of a pool's scheduling counters.
type Stats struct {
	// Processed counts items handed to the process callback.
	Processed int64
	// Steals counts successful steal operations (not items stolen).
	Steals int64
	// Stolen counts items moved between deques by steals.
	Stolen int64
	// Batches counts owner-side batched pushes (one deque lock each).
	Batches int64
}

// deque is one worker's private work queue. A mutex (rather than a lock-free
// Chase-Lev deque) is deliberate: owners push in batches and pop one item per
// build, so the lock is taken a handful of times per batch and is almost
// always uncontended; steals — the only cross-worker traffic — take the
// victim's lock briefly to move half the queue at once.
type deque[T any] struct {
	mu    sync.Mutex
	items []T
	_     [32]byte // pad to keep neighbouring deques off one cache line
}

// Pool runs a work-stealing fixpoint over items of type T.
type Pool[T any] struct {
	deques  []deque[T]
	process func(worker int, item T)

	inflight  atomic.Int64
	stopped   atomic.Bool
	processed atomic.Int64
	steals    atomic.Int64
	stolen    atomic.Int64
	batches   atomic.Int64
}

// NewPool returns a pool of n workers (n < 1 means GOMAXPROCS). process is
// called exactly once per pushed item; it may push follow-up work with
// (*Pool).Push and abort the run with (*Pool).Stop. process must be safe for
// concurrent invocation from n goroutines.
func NewPool[T any](n int, process func(worker int, item T)) *Pool[T] {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool[T]{deques: make([]deque[T], n), process: process}
}

// Workers returns the pool's worker count.
func (p *Pool[T]) Workers() int { return len(p.deques) }

// Push enqueues items onto worker w's deque in one lock acquisition.
// It is safe from inside process (the intended call site: a worker pushing
// the successors it just discovered) and from outside before Run.
func (p *Pool[T]) Push(w int, items ...T) {
	if len(items) == 0 {
		return
	}
	p.inflight.Add(int64(len(items)))
	p.batches.Add(1)
	d := &p.deques[w%len(p.deques)]
	d.mu.Lock()
	d.items = append(d.items, items...)
	d.mu.Unlock()
}

// Stop makes every worker exit at its next scheduling point without
// draining the deques. Idempotent; safe from inside process.
func (p *Pool[T]) Stop() { p.stopped.Store(true) }

// Stopped reports whether Stop was called.
func (p *Pool[T]) Stopped() bool { return p.stopped.Load() }

// Stats returns a snapshot of the scheduling counters.
func (p *Pool[T]) Stats() Stats {
	return Stats{
		Processed: p.processed.Load(),
		Steals:    p.steals.Load(),
		Stolen:    p.stolen.Load(),
		Batches:   p.batches.Load(),
	}
}

// Run seeds the deques round-robin and blocks until every pushed item has
// been processed (in-flight count quiescent) or Stop was called. A Pool is
// single-shot: do not call Run twice.
func (p *Pool[T]) Run(seeds []T) {
	for i, s := range seeds {
		p.Push(i, s)
	}
	var wg sync.WaitGroup
	for w := range p.deques {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.worker(w)
		}(w)
	}
	wg.Wait()
}

// worker is the scheduling loop: pop own tail, else steal, else back off
// until the pool is quiescent.
func (p *Pool[T]) worker(w int) {
	idle := 0
	for {
		if p.stopped.Load() {
			return
		}
		it, ok := p.pop(w)
		if !ok {
			it, ok = p.steal(w)
		}
		if !ok {
			if p.inflight.Load() == 0 {
				return
			}
			// Quiescence is near but peers still hold work: yield, then
			// back off exponentially (20µs … 1ms) so a straggler-bound tail
			// does not spin the other workers at 100% CPU — and so an
			// oversubscribed host (more workers than cores) is not stuck
			// timeslicing between idle spinners and the one productive
			// worker.
			idle++
			if idle < 8 {
				runtime.Gosched()
			} else {
				d := 20 * time.Microsecond << min(idle-8, 6)
				if d > time.Millisecond {
					d = time.Millisecond
				}
				time.Sleep(d)
			}
			continue
		}
		idle = 0
		p.process(w, it)
		p.processed.Add(1)
		p.inflight.Add(-1)
	}
}

// pop takes the newest item of w's own deque (LIFO keeps the working set of
// recently-discovered successors cache-warm).
func (p *Pool[T]) pop(w int) (T, bool) {
	d := &p.deques[w]
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		var zero T
		return zero, false
	}
	it := d.items[n-1]
	var zero T
	d.items[n-1] = zero // release the reference for the GC
	d.items = d.items[:n-1]
	d.mu.Unlock()
	return it, true
}

// steal scans the other workers round-robin from w+1 and moves the head
// half of the first non-empty deque onto w's own, returning one item to
// process immediately.
func (p *Pool[T]) steal(w int) (T, bool) {
	n := len(p.deques)
	for off := 1; off < n; off++ {
		v := &p.deques[(w+off)%n]
		v.mu.Lock()
		k := len(v.items)
		if k == 0 {
			v.mu.Unlock()
			continue
		}
		take := (k + 1) / 2
		got := make([]T, take)
		copy(got, v.items[:take])
		rest := copy(v.items, v.items[take:])
		for i := rest; i < k; i++ {
			var zero T
			v.items[i] = zero
		}
		v.items = v.items[:rest]
		v.mu.Unlock()
		p.steals.Add(1)
		p.stolen.Add(int64(take))
		if take > 1 {
			d := &p.deques[w]
			d.mu.Lock()
			d.items = append(d.items, got[1:]...)
			d.mu.Unlock()
		}
		return got[0], true
	}
	var zero T
	return zero, false
}
