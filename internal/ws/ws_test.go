package ws

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestExactlyOnceFanout pushes a fan-out workload (every item spawns
// children down to a depth) and checks each item is processed exactly once.
func TestExactlyOnceFanout(t *testing.T) {
	type item struct{ id, depth int }
	const branch, depth = 3, 8
	var mu sync.Mutex
	seen := map[int]int{}
	var nextID atomic.Int64
	nextID.Store(1)

	var p *Pool[item]
	p = NewPool(4, func(w int, it item) {
		mu.Lock()
		seen[it.id]++
		mu.Unlock()
		if it.depth == 0 {
			return
		}
		kids := make([]item, branch)
		for i := range kids {
			kids[i] = item{int(nextID.Add(1)), it.depth - 1}
		}
		p.Push(w, kids...)
	})
	p.Run([]item{{0, depth}})

	want := 0
	for d, c := 0, 1; d <= depth; d++ {
		want += c
		c *= branch
	}
	if len(seen) != want {
		t.Fatalf("processed %d distinct items, want %d", len(seen), want)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("item %d processed %d times", id, n)
		}
	}
	st := p.Stats()
	if st.Processed != int64(want) {
		t.Fatalf("Stats.Processed = %d, want %d", st.Processed, want)
	}
}

// TestStealUnderContention funnels all work through worker 0's deque: the
// seed worker pushes every item to itself, so the only way other workers make
// progress is by stealing. Run under -race this exercises the owner-pop vs
// thief path concurrently.
func TestStealUnderContention(t *testing.T) {
	const items = 2000
	var processed atomic.Int64
	byWorker := make([]atomic.Int64, 8)

	var p *Pool[int]
	p = NewPool(8, func(w int, it int) {
		processed.Add(1)
		byWorker[w].Add(1)
		if it > 0 && it <= 4 {
			// A few generations of follow-up work, always pushed to deque 0.
			kids := make([]int, 0, 4)
			for i := 0; i < 4; i++ {
				kids = append(kids, it-1)
			}
			p.Push(0, kids...)
		}
	})
	seeds := make([]int, items)
	for i := range seeds {
		seeds[i] = i % 3
	}
	// Seed everything onto worker 0 (bypass the round-robin of Run).
	p.Push(0, seeds...)
	p.Run(nil)

	if processed.Load() == 0 {
		t.Fatal("nothing processed")
	}
	if p.Stats().Steals == 0 {
		t.Error("no steals despite a single hot deque and 8 workers")
	}
	others := int64(0)
	for w := 1; w < 8; w++ {
		others += byWorker[w].Load()
	}
	if others == 0 {
		t.Error("workers 1..7 processed nothing — stealing is broken")
	}
}

// TestEmptyStealShutdown: a pool whose seeds produce no follow-up work (and
// one with no seeds at all) must terminate promptly rather than deadlock in
// the steal loop.
func TestEmptyStealShutdown(t *testing.T) {
	ran := atomic.Int64{}
	p := NewPool(8, func(w int, it int) { ran.Add(1) })
	p.Run([]int{1, 2, 3})
	if ran.Load() != 3 {
		t.Fatalf("processed %d, want 3", ran.Load())
	}

	empty := NewPool(4, func(w int, it int) { t.Error("processed an item of an empty pool") })
	empty.Run(nil) // must return immediately
}

// TestStopAbandonsQueue: Stop from inside process makes Run return without
// draining the remaining items.
func TestStopAbandonsQueue(t *testing.T) {
	var processed atomic.Int64
	var p *Pool[int]
	p = NewPool(2, func(w int, it int) {
		if processed.Add(1) == 1 {
			p.Stop()
		}
	})
	seeds := make([]int, 10000)
	p.Run(seeds)
	if !p.Stopped() {
		t.Fatal("pool not stopped")
	}
	if processed.Load() == 10000 {
		t.Error("Stop did not abandon the queue (all 10000 items ran)")
	}
}

// TestDefaultWorkerCount: n < 1 resolves to GOMAXPROCS.
func TestDefaultWorkerCount(t *testing.T) {
	p := NewPool[int](0, func(int, int) {})
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", p.Workers())
	}
}
