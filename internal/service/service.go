// Package service implements bpid, the resident equivalence-checking
// daemon: an HTTP/JSON front end over ONE shared equiv.Store, so concurrent
// and repeated queries reuse each other's interned terms, transitions and
// closures instead of rebuilding them per process.
//
// Architecture:
//
//   - every query (synchronous endpoint or asynchronous job) executes on a
//     bounded worker pool — a semaphore of Config.Workers slots — over the
//     shared store; per-request engine budgets are carried by a throwaway
//     Checker view onto that store, so budgets are request-scoped while
//     derivations are process-scoped;
//   - per-request deadlines are threaded as context.Context cancellation
//     into the pair engine's BFS loop, the prover's derivation search and
//     the machine's scheduler loop, and surface as typed
//     deadline_exceeded errors, distinct from budget_exhausted;
//   - conclusive equivalence verdicts land in a bounded LRU keyed on the
//     canonical pair + relation + budgets (sound: verdicts are pure
//     functions of those — see lru.go), so repeated queries short-circuit
//     before touching the engine;
//   - Shutdown drains: new work is refused with shutting_down, in-flight
//     requests and accepted jobs run to completion.
//
// The wire types live in api.go and are shared with the bpi.Client.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bpi/internal/axioms"
	"bpi/internal/cert"
	"bpi/internal/cluster"
	"bpi/internal/equiv"
	"bpi/internal/ledger"
	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Config tunes a Server. The zero value is usable: every field has a
// default.
type Config struct {
	// Env is the definitions environment shared by all requests (nil = none).
	Env syntax.Env
	// Workers bounds the number of queries executing at once (default
	// GOMAXPROCS).
	Workers int
	// EngineWorkers is the per-query pair-engine parallelism (default 1;
	// the pool above already exploits request-level parallelism).
	EngineWorkers int
	// QueueDepth bounds the number of unfinished async jobs (default 64).
	QueueDepth int
	// CacheSize bounds the verdict LRU (entries; default 4096).
	CacheSize int
	// MaxPairs / MaxClosure are the default engine budgets for requests
	// that do not set their own (0 = the checker defaults).
	MaxPairs   int
	MaxClosure int
	// DefaultTimeout applies to requests without timeout_ms (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request timeouts (default 60s).
	MaxTimeout time.Duration
	// MaxTermBytes bounds the source size of any single term (default 64 KiB).
	MaxTermBytes int
	// Ledger, when set, is an opened persistent verdict ledger: verified
	// records replay into the verdict cache at New, and fresh certified
	// verdicts are appended write-behind (see ledger.go). The caller keeps
	// ownership and closes it after Shutdown.
	Ledger *ledger.Ledger
	// Compiled switches the shared store to compiled transition programs
	// (internal/tprog). Verdicts are bit-identical to the interpreted
	// store's; /metrics additionally reports the tprog compile, cache and
	// fallback counters.
	Compiled bool
	// Peers is the static cluster membership (peer daemon base URLs). With
	// one or more peers AND a SelfURL, each equivalence pair is owned by
	// exactly one node under rendezvous hashing of its canonical pair key;
	// non-owned pairs are dispatched to their owner and the returned
	// certificate is re-verified locally before the verdict is accepted
	// (fail-closed: any peer failure or rejected certificate falls back to
	// local computation). Empty = single-node mode.
	Peers []string
	// SelfURL is this daemon's own base URL as peers would address it.
	// Required for multi-node mode; it anchors this node's identity in the
	// rendezvous ring.
	SelfURL string
	// BatchMax bounds the pairs accepted by one POST /v1/equiv/batch
	// (default 256).
	BatchMax int
	// AdmissionQueue bounds the admission controller's queue: requests
	// beyond Workers executing + AdmissionQueue waiting are shed with a
	// typed 429 (default 64).
	AdmissionQueue int
	// PeerTimeout caps the wall-clock spent on one remote dispatch before
	// falling back to local computation (default 2s; additionally capped at
	// half the request's own budget).
	PeerTimeout time.Duration
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout <= 0 {
		return 10 * time.Second
	}
	return c.DefaultTimeout
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout <= 0 {
		return 60 * time.Second
	}
	return c.MaxTimeout
}

func (c Config) maxTermBytes() int {
	if c.MaxTermBytes <= 0 {
		return 64 << 10
	}
	return c.MaxTermBytes
}

func (c Config) batchMax() int {
	if c.BatchMax <= 0 {
		return 256
	}
	return c.BatchMax
}

func (c Config) admissionQueue() int {
	if c.AdmissionQueue <= 0 {
		return 64
	}
	return c.AdmissionQueue
}

func (c Config) peerTimeout() time.Duration {
	if c.PeerTimeout <= 0 {
		return 2 * time.Second
	}
	return c.PeerTimeout
}

// Server is the daemon core: the shared store, the worker pool, the verdict
// cache, the job table and the metrics registry. Create with New, mount
// Handler on an http.Server, stop with Shutdown.
type Server struct {
	cfg     Config
	sys     *semantics.System
	store   *equiv.Store
	cache   *verdictCache
	metrics *metrics
	jobs    *jobManager

	// obs is the daemon-lifetime tracer: the shared store mirrors its
	// reuse counters here, synchronous requests report engine counters
	// here (exported as bpid_engine_events_total on /metrics), and its
	// bounded span buffer backs ad-hoc diagnostics. Async jobs get their
	// own per-job tracer (see jobManager) served by GET /trace/{id}.
	obs *obs.Tracer

	// Ledger state (nil/zero without Config.Ledger): the write-behind
	// append queue, its single writer goroutine, the count of records
	// replayed into the cache at startup, and appends dropped on queue
	// pressure. See ledger.go.
	ledger        *ledger.Ledger
	ledgerCh      chan pendingAppend
	ledgerWG      sync.WaitGroup
	ledgerDropped atomic.Uint64
	replayed      int

	slots    chan struct{} // worker-pool semaphore; len() = busy workers
	inflight sync.WaitGroup

	// Cluster tier (see internal/cluster and cluster.go in this package):
	// admission is always present; router/peerc only in multi-node mode.
	admission *cluster.Admission
	router    *cluster.Router
	peerc     *cluster.PeerClient

	clusterRemoteOK   atomic.Uint64 // verdicts accepted from a peer
	clusterRemoteFail atomic.Uint64 // dispatches that failed at transport level
	clusterCertReject atomic.Uint64 // peer verdicts refused by VerifyAccept
	clusterFallback   atomic.Uint64 // routed pairs ultimately computed locally
	clusterForwarded  atomic.Uint64 // forwarded requests served locally by rule

	mu     sync.Mutex
	closed bool

	started time.Time
}

// New returns a ready Server over one fresh shared store.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		sys:     semantics.NewSystem(cfg.Env),
		cache:   newVerdictCache(cfg.CacheSize),
		metrics: newMetrics(),
		obs:     obs.NewWithLimit(8192),
		slots:   make(chan struct{}, cfg.workers()),
		started: time.Now(),
	}
	s.store = equiv.NewStore(s.sys)
	if cfg.Compiled {
		s.store.EnableCompiled()
	}
	s.store.SetObs(s.obs)
	s.jobs = newJobManager(s, cfg.queueDepth())
	s.attachLedger()
	s.admission = cluster.NewAdmission(cfg.admissionQueue(), cfg.workers())
	if len(cfg.Peers) > 0 && cfg.SelfURL != "" {
		if r, err := cluster.NewRouter(cfg.SelfURL, cfg.Peers); err == nil {
			s.router = r
			s.peerc = cluster.NewPeerClient()
		}
		// An invalid membership (empty URLs) degrades to single-node mode;
		// cmd/bpid validates flags before it ever gets here.
	}
	return s
}

// Admission exposes the admission controller (tests seed its estimate and
// fill its queue deterministically).
func (s *Server) Admission() *cluster.Admission { return s.admission }

// ClusterStats is a snapshot of the cluster tier's counters.
type ClusterStats struct {
	Peers           int    // ring size (0 = single-node mode)
	RemoteOK        uint64 // verdicts accepted from peers after verification
	RemoteFail      uint64 // peer dispatches failed at the transport level
	CertRejected    uint64 // peer verdicts refused by the fail-closed check
	LocalFallback   uint64 // routed pairs ultimately computed locally
	ForwardedServed uint64 // forwarded requests served locally by rule
}

// Cluster snapshots the cluster tier's counters.
func (s *Server) Cluster() ClusterStats {
	st := ClusterStats{
		RemoteOK:        s.clusterRemoteOK.Load(),
		RemoteFail:      s.clusterRemoteFail.Load(),
		CertRejected:    s.clusterCertReject.Load(),
		LocalFallback:   s.clusterFallback.Load(),
		ForwardedServed: s.clusterForwarded.Load(),
	}
	if s.router != nil {
		st.Peers = s.router.Size()
	}
	return st
}

// Store exposes the shared term store (for tests and diagnostics).
func (s *Server) Store() *equiv.Store { return s.store }

// Shutdown drains the server: new requests and job submissions are refused
// with shutting_down, then Shutdown blocks until every in-flight request
// and accepted job has finished, or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Only after the drain: no in-flight request can enqueue appends
		// anymore, so the write-behind queue can be closed and flushed.
		s.stopLedger()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown drain: %w", ctx.Err())
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// beginWork registers one unit of in-flight work, refusing when draining.
// The caller must call the returned func when the work is finished.
func (s *Server) beginWork() (func(), *ErrorBody) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &ErrorBody{Code: CodeShuttingDown, Message: "daemon is draining"}
	}
	s.inflight.Add(1)
	return func() { s.inflight.Done() }, nil
}

// acquireSlot blocks until a worker-pool slot is free or ctx is done.
func (s *Server) acquireSlot(ctx context.Context) *ErrorBody {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return classify(ctx.Err())
	}
}

func (s *Server) releaseSlot() { <-s.slots }

// timeout resolves a request's timeout_ms against the server defaults.
func (s *Server) timeout(ms int) time.Duration {
	d := s.cfg.defaultTimeout()
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if max := s.cfg.maxTimeout(); d > max {
		d = max
	}
	return d
}

// parseTerm validates and parses one term field.
func (s *Server) parseTerm(field, src string) (syntax.Proc, *ErrorBody) {
	if src == "" {
		return nil, &ErrorBody{Code: CodeInvalidRequest, Message: "missing term field " + field}
	}
	if len(src) > s.cfg.maxTermBytes() {
		return nil, &ErrorBody{Code: CodeTermTooLarge,
			Message: fmt.Sprintf("%s is %d bytes (limit %d)", field, len(src), s.cfg.maxTermBytes())}
	}
	p, err := parser.Parse(src)
	if err != nil {
		return nil, &ErrorBody{Code: CodeParseError, Message: field + ": " + err.Error()}
	}
	return p, nil
}

// classify maps an execution error to its typed wire form: deadlines are
// distinguished from budget exhaustion, which is distinguished from
// everything else.
func classify(err error) *ErrorBody {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return &ErrorBody{Code: CodeDeadline, Message: err.Error()}
	default:
		var eb equiv.ErrBudget
		var ub semantics.ErrUnfoldBudget
		if errors.As(err, &eb) || errors.As(err, &ub) {
			return &ErrorBody{Code: CodeBudgetExhausted, Message: err.Error()}
		}
		return &ErrorBody{Code: CodeInternal, Message: err.Error()}
	}
}

// checker returns a request-scoped Checker view over the shared store,
// carrying the request's budgets and reporting to tr.
func (s *Server) checker(req *EquivRequest, tr *obs.Tracer) *equiv.Checker {
	c := equiv.NewCheckerWithStore(s.store)
	c.MaxPairs = s.cfg.MaxPairs
	if req.MaxPairs > 0 {
		c.MaxPairs = req.MaxPairs
	}
	c.MaxClosure = s.cfg.MaxClosure
	if req.MaxClosure > 0 {
		c.MaxClosure = req.MaxClosure
	}
	c.Workers = s.cfg.EngineWorkers
	c.Obs = tr
	// Every verdict is certified: the daemon's verdict cache stores the
	// certificate alongside the verdict, so cached queries replay it, and
	// async jobs serve theirs on GET /certificate/{id}. Requests that do
	// not ask for the certificate get it stripped from the response only.
	c.Certify = true
	return c
}

// runEquiv executes one equivalence query (already on a worker slot),
// consulting and feeding the verdict cache. Engine spans and counters go
// to tr (the daemon tracer for synchronous requests, a per-job tracer for
// async jobs). It never dispatches to peers; routed execution is
// runEquivRouted.
func (s *Server) runEquiv(ctx context.Context, req *EquivRequest, tr *obs.Tracer) (*EquivResponse, *ErrorBody) {
	return s.runEquivOpt(ctx, req, tr, false)
}

// runEquivRouted is runEquiv with cluster routing enabled: a pair owned by
// a peer under rendezvous hashing is dispatched there first, and only its
// failure (or a rejected certificate) falls back to local computation.
func (s *Server) runEquivRouted(ctx context.Context, req *EquivRequest, tr *obs.Tracer) (*EquivResponse, *ErrorBody) {
	return s.runEquivOpt(ctx, req, tr, true)
}

func (s *Server) runEquivOpt(ctx context.Context, req *EquivRequest, tr *obs.Tracer, allowRemote bool) (*EquivResponse, *ErrorBody) {
	p, eb := s.parseTerm("p", req.P)
	if eb != nil {
		return nil, eb
	}
	q, eb := s.parseTerm("q", req.Q)
	if eb != nil {
		return nil, eb
	}
	switch req.Rel {
	case RelLabelled, RelBarbed, RelStep, RelOneStep, RelCongruence:
	default:
		return nil, &ErrorBody{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("unknown relation %q (want labelled|barbed|step|onestep|congruence)", req.Rel)}
	}
	kp, kq := syntax.Key(syntax.Simplify(p)), syntax.Key(syntax.Simplify(q))
	key := verdictCacheKey(req.Rel, req.Weak, req.MaxPairs, req.MaxClosure, req.MaxSubs, kp, kq)
	if resp, ok := s.cache.get(key, req.Rel, req.Weak); ok {
		resp.Cached = true
		resp.ElapsedMs = 0
		if !req.Cert {
			resp.Certificate = nil
		}
		return &resp, nil
	}
	if allowRemote && s.router != nil {
		if owner := s.router.Owner(ledger.PairKey(req.Rel, req.Weak, kp, kq)); owner != s.router.Self() {
			if resp, ok := s.dispatchRemote(ctx, req, owner, kp, kq, key); ok {
				return resp, nil
			}
			s.clusterFallback.Add(1)
			// Fall through: the pair is computed locally, exactly as in
			// single-node mode. Never a wrong answer, only a slower one.
		}
	}

	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMs))
	defer cancel()
	c := s.checker(req, tr)
	start := time.Now()
	var resp EquivResponse
	var err error
	switch req.Rel {
	case RelLabelled:
		var r equiv.Result
		r, err = c.LabelledCtx(ctx, p, q, req.Weak)
		resp = EquivResponse{Related: r.Related, Pairs: r.Pairs, Reason: r.Reason, Certificate: r.Cert}
	case RelBarbed:
		var r equiv.Result
		r, err = c.BarbedCtx(ctx, p, q, req.Weak)
		resp = EquivResponse{Related: r.Related, Pairs: r.Pairs, Reason: r.Reason, Certificate: r.Cert}
	case RelStep:
		var r equiv.Result
		r, err = c.StepCtx(ctx, p, q, req.Weak)
		resp = EquivResponse{Related: r.Related, Pairs: r.Pairs, Reason: r.Reason, Certificate: r.Cert}
	case RelOneStep:
		var ok bool
		var crt *cert.Certificate
		crt, ok, err = c.OneStepCertCtx(ctx, p, q, req.Weak)
		resp = EquivResponse{Related: ok, Certificate: crt}
	case RelCongruence:
		var ok bool
		var crt *cert.Certificate
		crt, ok, err = c.CongruenceBoundedCertCtx(ctx, p, q, req.Weak, req.MaxSubs)
		resp = EquivResponse{Related: ok, Certificate: crt}
	}
	if err != nil {
		return nil, classify(err)
	}
	resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	if s.ledger != nil {
		// The content address is derivable right here (the canonical keys
		// are already computed); the record itself is built and appended by
		// the write-behind goroutine.
		resp.LedgerKey = ledger.KeyHash(ledger.PairKey(req.Rel, req.Weak, kp, kq))
	}
	s.cache.put(key, resp)
	s.recordVerdict(req, &resp)
	if !req.Cert {
		stripped := resp
		stripped.Certificate = nil
		return &stripped, nil
	}
	return &resp, nil
}

// runProve executes one prover query (already on a worker slot).
func (s *Server) runProve(ctx context.Context, req *ProveRequest, tr *obs.Tracer) (*ProveResponse, *ErrorBody) {
	p, eb := s.parseTerm("p", req.P)
	if eb != nil {
		return nil, eb
	}
	q, eb := s.parseTerm("q", req.Q)
	if eb != nil {
		return nil, eb
	}
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMs))
	defer cancel()
	pr := axioms.NewProver(s.sys)
	pr.MaxNames = req.MaxNames
	pr.MaxSteps = req.MaxSteps
	pr.Tracing = req.Trace
	pr.Obs = tr
	start := time.Now()
	ok, err := pr.DecideCtx(ctx, p, q)
	if err != nil {
		return nil, classify(err)
	}
	return &ProveResponse{
		Proved:    ok,
		Trace:     append([]string(nil), pr.TraceLines()...),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// runMachine executes one scheduled run (already on a worker slot).
func (s *Server) runMachine(ctx context.Context, req *RunRequest, tr *obs.Tracer) (*RunResponse, *ErrorBody) {
	p, eb := s.parseTerm("term", req.Term)
	if eb != nil {
		return nil, eb
	}
	var sched machine.Scheduler
	switch req.Scheduler {
	case "", SchedFirst:
		sched = machine.FirstScheduler{}
	case SchedRandom:
		sched = machine.NewRandomScheduler(req.Seed)
	case SchedRoundRobin:
		sched = machine.RoundRobinScheduler{}
	default:
		return nil, &ErrorBody{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("unknown scheduler %q (want first|random|roundrobin)", req.Scheduler)}
	}
	stop := make([]names.Name, len(req.StopOn))
	for i, b := range req.StopOn {
		stop[i] = names.Name(b)
	}
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMs))
	defer cancel()
	start := time.Now()
	res, err := machine.RunCtx(ctx, s.sys, p, machine.Options{
		MaxSteps:   req.MaxSteps,
		Scheduler:  sched,
		StopOnBarb: stop,
		KeepTrace:  req.KeepTrace,
		Obs:        tr,
	})
	if err != nil {
		return nil, classify(err)
	}
	out := &RunResponse{
		Steps:     res.Steps,
		Quiescent: res.Quiescent,
		Stopped:   res.Stopped,
		Final:     syntax.String(res.Final),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if res.Stopped {
		out.StopEvent = &RunEvent{Step: res.StopEvent.Step, Act: res.StopEvent.Act.String()}
	}
	for _, ev := range res.Trace {
		out.Trace = append(out.Trace, RunEvent{Step: ev.Step, Act: ev.Act.String()})
	}
	return out, nil
}
