package service

import (
	"errors"
	"net/http"

	"bpi/internal/cert"
	"bpi/internal/ledger"
)

// The daemon's ledger integration has two halves, both off the hot path:
//
//   - warm start: at New, every record the ledger verified on Open (framing,
//     Merkle chain, and an independent cert.Verify replay — see
//     internal/ledger) is converted back into a cached EquivResponse, so a
//     restarted daemon answers repeat queries from the LRU without
//     re-exploring. The rejected remainder is only counted
//     (bpid_ledger_replay_rejected_total) — never trusted.
//   - write-behind append: runEquiv enqueues each fresh certified verdict on
//     a bounded channel; a single writer goroutine derives the record from
//     the certificate and appends it. A full queue drops the append (counted
//     as dropped_appends) rather than stalling the request; fsync cost is
//     paid by the ledger's batch sealer, never by a request.

// ledgerQueueDepth bounds the write-behind append queue.
const ledgerQueueDepth = 1024

// pendingAppend carries one certified verdict from runEquiv to the writer.
type pendingAppend struct {
	rel                           string
	weak                          bool
	maxPairs, maxClosure, maxSubs int
	resp                          EquivResponse
}

// attachLedger replays cfg.Ledger into the verdict cache and starts the
// write-behind appender. Called once from New.
func (s *Server) attachLedger() {
	if s.cfg.Ledger == nil {
		return
	}
	s.ledger = s.cfg.Ledger
	s.replayed = s.ledger.Replay(func(r *ledger.Record, crt *cert.Certificate) {
		key := budgetKey(r.Key, r.MaxPairs, r.MaxClosure, r.MaxSubs)
		s.cache.put(key, EquivResponse{
			Related:     r.Related,
			Pairs:       r.Pairs,
			Reason:      r.Reason,
			Certificate: crt,
			LedgerKey:   r.KeyHash,
		})
	})
	s.ledgerCh = make(chan pendingAppend, ledgerQueueDepth)
	s.ledgerWG.Add(1)
	go s.ledgerAppender()
}

// ledgerAppender is the single write-behind goroutine: it owns record
// construction (certificate term parsing included) so the request path pays
// neither that cost nor any disk latency.
func (s *Server) ledgerAppender() {
	defer s.ledgerWG.Done()
	for pa := range s.ledgerCh {
		rec, err := ledger.NewRecord(pa.rel, pa.weak, pa.maxPairs, pa.maxClosure, pa.maxSubs,
			pa.resp.Related, pa.resp.Pairs, pa.resp.Reason, pa.resp.Certificate)
		if err != nil {
			s.ledgerDropped.Add(1)
			continue
		}
		if _, err := s.ledger.Append(rec); err != nil {
			s.ledgerDropped.Add(1)
		}
	}
}

// recordVerdict enqueues one freshly computed certified verdict for
// persistence. Non-blocking by contract: a full queue counts a drop.
func (s *Server) recordVerdict(req *EquivRequest, resp *EquivResponse) {
	if s.ledger == nil || resp.Certificate == nil {
		return
	}
	pa := pendingAppend{rel: req.Rel, weak: req.Weak,
		maxPairs: req.MaxPairs, maxClosure: req.MaxClosure, maxSubs: req.MaxSubs, resp: *resp}
	select {
	case s.ledgerCh <- pa:
	default:
		s.ledgerDropped.Add(1)
	}
}

// stopLedger drains the write-behind queue. Called by Shutdown after the
// in-flight drain (no request can enqueue anymore).
func (s *Server) stopLedger() {
	if s.ledgerCh != nil {
		close(s.ledgerCh)
		s.ledgerWG.Wait()
	}
}

// handleLedgerStats serves GET /v1/ledger/stats. A daemon without -ledger
// answers enabled=false rather than erroring, so probes need no config
// knowledge.
func (s *Server) handleLedgerStats(_ *http.Request) (int, any) {
	resp := LedgerStatsResponse{Enabled: s.ledger != nil, Replayed: s.replayed}
	if s.ledger != nil {
		resp.Stats = s.ledger.Stats()
		resp.DroppedAppends = s.ledgerDropped.Load()
	}
	return http.StatusOK, resp
}

// handleLedgerProof serves GET /v1/ledger/proof/{key}, where key is the hex
// key hash reported as EquivResponse.LedgerKey. 409 pending until the
// record's batch seals; 404 when no trusted record has the key.
func (s *Server) handleLedgerProof(r *http.Request) (int, any) {
	if s.ledger == nil {
		return fail(&ErrorBody{Code: CodeNotFound, Message: "daemon runs without -ledger"})
	}
	key := r.PathValue("key")
	p, err := s.ledger.Proof(key)
	switch {
	case errors.Is(err, ledger.ErrPending):
		return fail(&ErrorBody{Code: CodePending,
			Message: "record exists but its batch is not sealed yet; retry after the seal interval"})
	case errors.Is(err, ledger.ErrUnknownKey):
		return fail(&ErrorBody{Code: CodeNotFound, Message: "no ledger record for key " + key})
	case err != nil:
		return fail(&ErrorBody{Code: CodeInternal, Message: err.Error()})
	}
	return http.StatusOK, p
}
