package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	bpi "bpi"
	"bpi/internal/service"
)

// The 429 admission taxonomy over the real HTTP surface: each shed cause
// must produce its own typed error body, carry a retry_after_sec hint of at
// least one second, and mirror that hint in the Retry-After header. The
// states are set up deterministically through Server.Admission() —
// occupying queue slots and seeding the wait predictor by hand — so no case
// depends on timing.

func postEquiv(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/equiv", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestAdmission429Taxonomy(t *testing.T) {
	cases := []struct {
		name     string
		wantCode string
		// arrange saturates/drains the server and returns a cleanup.
		arrange func(t *testing.T, srv *service.Server) func()
		body    string
		// wantRetryAfterSec is the exact predicted hint (0 = just assert >= 1).
		wantRetryAfterSec int
	}{
		{
			name:     "queue_full",
			wantCode: service.CodeQueueFull,
			body:     `{"p":"a!","q":"a!","rel":"labelled"}`,
			arrange: func(t *testing.T, srv *service.Server) func() {
				// Workers=1 + AdmissionQueue=2: three held admissions fill
				// the pool and the queue; the next request must shed.
				adm := srv.Admission()
				var releases []func(time.Duration)
				for i := 0; i < 3; i++ {
					release, shed := adm.Admit(0, false)
					if shed != nil {
						t.Fatalf("setup admission %d shed: %+v", i, shed)
					}
					releases = append(releases, release)
				}
				return func() {
					for _, r := range releases {
						r(0)
					}
				}
			},
			wantRetryAfterSec: 1, // wait predictor unseeded: floor hint
		},
		{
			name:     "deadline_budget",
			wantCode: service.CodeDeadlineBudget,
			// A 1s budget against a predicted 10s queue wait.
			body: `{"p":"a!","q":"a!","rel":"labelled","timeout_ms":1000}`,
			arrange: func(t *testing.T, srv *service.Server) func() {
				adm := srv.Admission()
				adm.SeedEstimate(10 * time.Second)
				release, shed := adm.Admit(0, false)
				if shed != nil {
					t.Fatalf("setup admission shed: %+v", shed)
				}
				return func() { release(0) }
			},
			wantRetryAfterSec: 10, // one queued round × the 10s estimate
		},
		{
			name:     "draining",
			wantCode: service.CodeDraining,
			body:     `{"p":"a!","q":"a!","rel":"labelled"}`,
			arrange: func(t *testing.T, srv *service.Server) func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					t.Fatal(err)
				}
				return func() {}
			},
			wantRetryAfterSec: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts, _ := newTestServer(t, service.Config{Workers: 1, AdmissionQueue: 2})
			cleanup := tc.arrange(t, srv)
			defer cleanup()

			resp, body := postEquiv(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
			}
			var er struct {
				Error service.ErrorBody `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &er); err != nil {
				t.Fatalf("not an error envelope: %s", body)
			}
			if er.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q", er.Error.Code, tc.wantCode)
			}
			if er.Error.Message == "" {
				t.Error("shed without a human-readable message")
			}
			if er.Error.RetryAfterSec < 1 {
				t.Errorf("retry_after_sec = %d, want >= 1", er.Error.RetryAfterSec)
			}
			if tc.wantRetryAfterSec > 0 && er.Error.RetryAfterSec != tc.wantRetryAfterSec {
				t.Errorf("retry_after_sec = %d, want %d", er.Error.RetryAfterSec, tc.wantRetryAfterSec)
			}
			if got := resp.Header.Get("Retry-After"); got != strconv.Itoa(er.Error.RetryAfterSec) {
				t.Errorf("Retry-After header %q does not mirror retry_after_sec %d", got, er.Error.RetryAfterSec)
			}

			// The shed must land on its own per-cause counter, and on the
			// matching metrics series.
			st := srv.Admission().Stats()
			var got uint64
			switch tc.wantCode {
			case service.CodeQueueFull:
				got = st.ShedQueueFull
			case service.CodeDeadlineBudget:
				got = st.ShedDeadlineBudget
			case service.CodeDraining:
				got = st.ShedDraining
			}
			if got != 1 {
				t.Errorf("per-cause shed counter = %d, want 1 (stats %+v)", got, st)
			}
		})
	}
}

// TestAdmissionShedMetricsExposed: every shed cause has its own labelled
// series on /metrics.
func TestAdmissionShedMetricsExposed(t *testing.T) {
	srv, ts, _ := newTestServer(t, service.Config{Workers: 1, AdmissionQueue: 2})
	srv.Admission().SeedEstimate(10 * time.Second)
	release, shed := srv.Admission().Admit(0, false)
	if shed != nil {
		t.Fatalf("setup admission shed: %+v", shed)
	}
	defer release(0)
	// One deadline_budget shed.
	if resp, _ := postEquiv(t, ts.URL, `{"p":"a!","q":"a!","rel":"labelled","timeout_ms":1000}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("setup shed: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	text := sb.String()
	for _, want := range []string{
		`bpid_admission_shed_total{cause="queue_full"}`,
		`bpid_admission_shed_total{cause="deadline_budget"}`,
		`bpid_admission_shed_total{cause="draining"}`,
		"bpid_admission_capacity",
		"bpid_admission_inflight",
		"bpid_admission_est_service_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestBatchPartialShed pins the batch shed semantics: admission happens
// upfront in index order, so with one worker and a one-deep queue exactly
// the first two pairs of a five-pair batch run; the rest come back as
// typed queue_full items and the trailer accounts them as shed, while the
// batch itself still succeeds at the HTTP level.
func TestBatchPartialShed(t *testing.T) {
	_, ts, cl := newTestServer(t, service.Config{Workers: 1, AdmissionQueue: 1})
	_ = ts
	var pairs []bpi.EquivRequest
	for i := 0; i < 5; i++ {
		src := fmt.Sprintf("s%d!.t!", i)
		pairs = append(pairs, bpi.EquivRequest{P: src, Q: src, Rel: service.RelLabelled, TimeoutMs: 30000})
	}
	res, err := cl.Batch(context.Background(), bpi.BatchRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trailer
	if tr.Total != 5 || tr.Succeeded != 2 || tr.Shed != 3 || tr.Failed != 0 {
		t.Fatalf("trailer %+v, want total=5 succeeded=2 shed=3 failed=0", tr)
	}
	if len(res.Items) != 5 {
		t.Fatalf("%d items, want 5", len(res.Items))
	}
	for i, it := range res.Items {
		if it.Index != i {
			t.Fatalf("item %d has index %d after client reordering", i, it.Index)
		}
		if i < 2 {
			if it.Equiv == nil || it.Error != nil || !it.Equiv.Related {
				t.Errorf("item %d: %+v, want a verdict (admitted in index order)", i, it)
			}
			continue
		}
		if it.Error == nil || it.Error.Code != service.CodeQueueFull {
			t.Errorf("item %d: %+v, want a typed queue_full shed", i, it)
			continue
		}
		if it.Error.RetryAfterSec < 1 {
			t.Errorf("item %d: shed without a Retry-After hint: %+v", i, it.Error)
		}
	}
}

// TestAdmissionConcurrentHammer fires 64 concurrent queries at a small
// admission queue: every response must be either a verdict or a typed
// queue_full shed, and the admission ledger must balance exactly —
// admitted + shed = 64, nothing in flight afterwards.
func TestAdmissionConcurrentHammer(t *testing.T) {
	srv, ts, _ := newTestServer(t, service.Config{Workers: 2, AdmissionQueue: 2})
	const n = 64
	var wg sync.WaitGroup
	codes := make([]string, n) // "" = verdict
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"p":"h%d!.k!","q":"h%d!.k!","rel":"labelled","timeout_ms":30000}`, i, i)
			resp, raw := postEquiv(t, ts.URL, body)
			switch resp.StatusCode {
			case http.StatusOK:
				var er service.EquivResponse
				if err := json.Unmarshal([]byte(raw), &er); err != nil || !er.Related {
					t.Errorf("query %d: bad verdict %s", i, raw)
				}
			case http.StatusTooManyRequests:
				var er struct {
					Error service.ErrorBody `json:"error"`
				}
				if err := json.Unmarshal([]byte(raw), &er); err != nil {
					t.Errorf("query %d: untyped 429: %s", i, raw)
					return
				}
				codes[i] = er.Error.Code
				if er.Error.Code != service.CodeQueueFull && er.Error.Code != service.CodeDeadlineBudget {
					t.Errorf("query %d: unexpected shed code %q", i, er.Error.Code)
				}
				if er.Error.RetryAfterSec < 1 {
					t.Errorf("query %d: shed without Retry-After", i)
				}
			default:
				t.Errorf("query %d: status %d: %s", i, resp.StatusCode, raw)
			}
		}(i)
	}
	wg.Wait()
	shed := 0
	for _, c := range codes {
		if c != "" {
			shed++
		}
	}
	st := srv.Admission().Stats()
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after all requests returned", st.Inflight)
	}
	if got := st.Admitted + st.ShedQueueFull + st.ShedDeadlineBudget + st.ShedDraining; got != n {
		t.Errorf("admitted+shed = %d, want %d (stats %+v)", got, n, st)
	}
	if int(st.ShedQueueFull+st.ShedDeadlineBudget) != shed {
		t.Errorf("server counted %d sheds, clients saw %d", st.ShedQueueFull+st.ShedDeadlineBudget, shed)
	}
}
