package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"bpi/internal/cluster"
	"bpi/internal/lts"
	"bpi/internal/syntax"
)

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/parse     canonicalise a term
//	POST /v1/step      symbolic transitions of a term
//	POST /v1/explore   finite transition graph summary
//	POST /v1/equiv     equivalence verdict (~, ≈, ~b, ~φ, ~+, ~c, …)
//	POST /v1/equiv/batch  many pairs, NDJSON-streamed per-pair verdicts
//	POST /v1/prove     A ⊢ p = q (Section 5)
//	POST /v1/run       one scheduled machine execution
//	POST /v1/jobs      submit an async job
//	GET  /v1/jobs/{id} poll an async job
//	GET  /trace/{id}   span tree + engine counters of an async job
//	GET  /certificate/{id} replayable certificate of a finished equiv job
//	GET  /v1/ledger/stats      persistent verdict-ledger summary
//	GET  /v1/ledger/proof/{key} Merkle inclusion proof of a persisted verdict
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/pprof/ the net/http/pprof profiling surface
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/parse", instrument(s, "/v1/parse", s.handleParse))
	mux.HandleFunc("POST /v1/step", instrument(s, "/v1/step", s.handleStep))
	mux.HandleFunc("POST /v1/explore", instrument(s, "/v1/explore", s.handleExplore))
	mux.HandleFunc("POST /v1/equiv", instrument(s, "/v1/equiv", s.handleEquiv))
	mux.HandleFunc("POST /v1/equiv/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/prove", instrument(s, "/v1/prove", s.handleProve))
	mux.HandleFunc("POST /v1/run", instrument(s, "/v1/run", s.handleRun))
	mux.HandleFunc("POST /v1/jobs", instrument(s, "/v1/jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", instrument(s, "/v1/jobs/{id}", s.handleJobStatus))
	mux.HandleFunc("GET /trace/{id}", instrument(s, "/trace/{id}", s.handleTrace))
	mux.HandleFunc("GET /certificate/{id}", instrument(s, "/certificate/{id}", s.handleCertificate))
	mux.HandleFunc("GET /v1/ledger/stats", instrument(s, "/v1/ledger/stats", s.handleLedgerStats))
	mux.HandleFunc("GET /v1/ledger/proof/{key}", instrument(s, "/v1/ledger/proof/{key}", s.handleLedgerProof))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The pprof surface: the daemon runs its own mux, so the handlers are
	// mounted explicitly instead of relying on DefaultServeMux. The
	// trailing-slash Index route also serves the named profiles
	// (goroutine, heap, allocs, block, mutex, threadcreate).
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// handleTrace serves the span tree recorded by one async job's tracer —
// the request-level execution evidence: explore waves, fixpoint timing,
// prover worlds, with engine counters alongside.
func (s *Server) handleTrace(r *http.Request) (int, any) {
	id := r.PathValue("id")
	tr, st, ok := s.jobs.trace(id)
	if !ok {
		return fail(&ErrorBody{Code: CodeNotFound, Message: "no such job " + id})
	}
	return http.StatusOK, TraceResponse{
		ID:           st.ID,
		Kind:         st.Kind,
		State:        st.State,
		Counters:     tr.Counters(),
		DroppedSpans: tr.Dropped(),
		Spans:        tr.Tree(),
	}
}

// handleCertificate serves the replayable proof object recorded by one
// finished equiv job — the evidence a sceptical client replays against the
// independent verifier (internal/cert, `bpicert verify`) without trusting
// the daemon's engine.
func (s *Server) handleCertificate(r *http.Request) (int, any) {
	resp, eb := s.jobs.certificate(r.PathValue("id"))
	if eb != nil {
		return fail(eb)
	}
	return http.StatusOK, *resp
}

// handlerFunc is a handler returning (status, body); body is JSON-encoded.
type handlerFunc func(r *http.Request) (int, any)

// instrument wraps a handler with request accounting and JSON encoding.
func instrument(s *Server, endpoint string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status, body := h(r)
		code := "ok"
		if er, ok := body.(errorResponse); ok {
			code = er.Error.Code
			if er.Error.RetryAfterSec > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(er.Error.RetryAfterSec))
			}
		}
		s.metrics.observe(endpoint, code, time.Since(start))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(body)
	}
}

// fail builds a typed error response with the HTTP status matching the code.
// Admission sheds (any error carrying a Retry-After hint, plus the
// admission-only codes) are 429: the request was fine, the daemon refused
// to queue it — distinct from the terminal 503 of shutting_down.
func fail(eb *ErrorBody) (int, any) {
	status := http.StatusInternalServerError
	switch eb.Code {
	case CodeInvalidRequest, CodeParseError:
		status = http.StatusBadRequest
	case CodeTermTooLarge:
		status = http.StatusRequestEntityTooLarge
	case CodeBudgetExhausted:
		status = http.StatusUnprocessableEntity
	case CodeDeadline:
		status = http.StatusGatewayTimeout
	case CodeQueueFull, CodeShuttingDown:
		status = http.StatusServiceUnavailable
	case CodeDeadlineBudget, CodeDraining:
		status = http.StatusTooManyRequests
	case CodeNotFound, CodeJobFailed:
		status = http.StatusNotFound
	case CodePending:
		status = http.StatusConflict
	}
	if eb.RetryAfterSec > 0 {
		status = http.StatusTooManyRequests
	}
	return status, errorResponse{Error: *eb}
}

// maxBodyBytes bounds any request body; individual term fields are further
// bounded by Config.MaxTermBytes.
const maxBodyBytes = 1 << 20

// decode reads and unmarshals a JSON request body.
func decode(r *http.Request, into any) *ErrorBody {
	return decodeLimit(r, into, maxBodyBytes)
}

// decodeLimit is decode with an explicit body bound (batches carry many
// terms and get a larger one).
func decodeLimit(r *http.Request, into any, limit int64) *ErrorBody {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return &ErrorBody{Code: CodeInvalidRequest, Message: "reading body: " + err.Error()}
	}
	if int64(len(body)) > limit {
		return &ErrorBody{Code: CodeTermTooLarge, Message: fmt.Sprintf("body exceeds %d bytes", limit)}
	}
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return &ErrorBody{Code: CodeInvalidRequest, Message: "bad JSON: " + err.Error()}
	}
	return nil
}

// sync runs fn on a worker-pool slot, counted against the drain group, with
// the request context governing the slot wait.
func (s *Server) sync(r *http.Request, fn func() (int, any)) (int, any) {
	finish, eb := s.beginWork()
	if eb != nil {
		return fail(eb)
	}
	defer finish()
	if eb := s.acquireSlot(r.Context()); eb != nil {
		return fail(eb)
	}
	defer s.releaseSlot()
	return fn()
}

func (s *Server) handleParse(r *http.Request) (int, any) {
	var req ParseRequest
	if eb := decode(r, &req); eb != nil {
		return fail(eb)
	}
	p, eb := s.parseTerm("term", req.Term)
	if eb != nil {
		return fail(eb)
	}
	p = syntax.Simplify(p)
	free := syntax.FreeNames(p).Sorted()
	names := make([]string, len(free))
	for i, n := range free {
		names[i] = string(n)
	}
	return http.StatusOK, ParseResponse{Canonical: syntax.String(p), FreeNames: names}
}

func (s *Server) handleStep(r *http.Request) (int, any) {
	var req StepRequest
	if eb := decode(r, &req); eb != nil {
		return fail(eb)
	}
	return s.sync(r, func() (int, any) {
		p, eb := s.parseTerm("term", req.Term)
		if eb != nil {
			return fail(eb)
		}
		p = syntax.Simplify(p)
		ts, err := s.sys.Steps(p)
		if err != nil {
			return fail(classify(err))
		}
		resp := StepResponse{Term: syntax.String(p)}
		for _, t := range ts {
			resp.Transitions = append(resp.Transitions, Transition{
				Act:    t.Act.String(),
				Target: syntax.String(t.Target),
			})
		}
		return http.StatusOK, resp
	})
}

func (s *Server) handleExplore(r *http.Request) (int, any) {
	var req ExploreRequest
	if eb := decode(r, &req); eb != nil {
		return fail(eb)
	}
	return s.sync(r, func() (int, any) {
		p, eb := s.parseTerm("term", req.Term)
		if eb != nil {
			return fail(eb)
		}
		g, err := lts.Explore(s.sys, []syntax.Proc{p}, lts.Options{
			MaxStates:      req.MaxStates,
			FreshNames:     req.FreshNames,
			AutonomousOnly: req.AutonomousOnly,
			Obs:            s.obs,
		})
		if err != nil {
			return fail(classify(err))
		}
		edges := 0
		for _, es := range g.Edges {
			edges += len(es)
		}
		resp := ExploreResponse{States: len(g.States), Edges: edges, Truncated: g.Truncated}
		for _, u := range g.Universe {
			resp.Universe = append(resp.Universe, string(u))
		}
		return http.StatusOK, resp
	})
}

func (s *Server) handleEquiv(r *http.Request) (int, any) {
	var req EquivRequest
	if eb := decode(r, &req); eb != nil {
		return fail(eb)
	}
	release, eb := s.admit(s.timeout(req.TimeoutMs))
	if eb != nil {
		return fail(eb)
	}
	var served time.Duration
	defer func() { release(served) }()
	// A forwarded request is decided locally by rule (see
	// cluster.ForwardedHeader): that one-hop cap is what makes routing
	// loop-free under membership disagreement.
	run := s.runEquivRouted
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		s.clusterForwarded.Add(1)
		run = s.runEquiv
	}
	return s.sync(r, func() (int, any) {
		t0 := time.Now()
		resp, eb := run(r.Context(), &req, s.obs)
		served = time.Since(t0)
		if eb != nil {
			return fail(eb)
		}
		return http.StatusOK, *resp
	})
}

func (s *Server) handleProve(r *http.Request) (int, any) {
	var req ProveRequest
	if eb := decode(r, &req); eb != nil {
		return fail(eb)
	}
	return s.sync(r, func() (int, any) {
		resp, eb := s.runProve(r.Context(), &req, s.obs)
		if eb != nil {
			return fail(eb)
		}
		return http.StatusOK, *resp
	})
}

func (s *Server) handleRun(r *http.Request) (int, any) {
	var req RunRequest
	if eb := decode(r, &req); eb != nil {
		return fail(eb)
	}
	return s.sync(r, func() (int, any) {
		resp, eb := s.runMachine(r.Context(), &req, s.obs)
		if eb != nil {
			return fail(eb)
		}
		return http.StatusOK, *resp
	})
}

func (s *Server) handleJobSubmit(r *http.Request) (int, any) {
	var req JobRequest
	if eb := decode(r, &req); eb != nil {
		return fail(eb)
	}
	id, eb := s.jobs.submit(&req)
	if eb != nil {
		return fail(eb)
	}
	return http.StatusAccepted, JobSubmitResponse{ID: id}
}

func (s *Server) handleJobStatus(r *http.Request) (int, any) {
	id := r.PathValue("id")
	st, ok := s.jobs.status(id)
	if !ok {
		return fail(&ErrorBody{Code: CodeNotFound, Message: "no such job " + id})
	}
	return http.StatusOK, st
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isClosed() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Stats()
	jc := s.jobs.counts()
	hits, misses := float64(s.cache.hits.Load()), float64(s.cache.misses.Load())
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = hits / (hits + misses)
	}
	gauges := []gauge{
		{"bpid_store_terms", "Interned canonical terms in the shared store.", "", float64(st.Terms)},
		{"bpid_store_intern_hits_total", "Intern calls served by an existing term.", "", float64(st.InternHits)},
		{"bpid_store_intern_misses_total", "Intern calls that created a term.", "", float64(st.InternMisses)},
		{"bpid_store_derivation_hits_total", "Memoised derivation lookups served from cache.", "", float64(st.DerivationHits)},
		{"bpid_store_derivation_misses_total", "Derivation lookups recomputed from the semantics.", "", float64(st.DerivationMisses)},
		{"bpid_store_shard_occupancy", "Per-shard term count bounds.", `{bound="min"}`, float64(st.ShardMin)},
		{"bpid_store_shard_occupancy", "Per-shard term count bounds.", `{bound="max"}`, float64(st.ShardMax)},
		{"bpid_verdict_cache_entries", "Entries in the verdict LRU.", "", float64(s.cache.len())},
		{"bpid_verdict_cache_hits_total", "Verdict-cache hits.", "", hits},
		{"bpid_verdict_cache_misses_total", "Verdict-cache misses.", "", misses},
		{"bpid_verdict_cache_hit_rate", "Verdict-cache hit rate since start.", "", hitRate},
	}
	if s.store.Compiled() {
		ts := s.store.ProgCache().Stats()
		gauges = append(gauges,
			gauge{"bpid_tprog_units", "Compiled transition-program units cached.", "", float64(ts.Units)},
			gauge{"bpid_tprog_compiles_total", "Transition-program units compiled.", "", float64(ts.Compiles)},
			gauge{"bpid_tprog_cache_hits_total", "Program-cache unit hits.", "", float64(ts.Hits)},
			gauge{"bpid_tprog_cache_misses_total", "Program-cache unit misses.", "", float64(ts.Misses)},
			gauge{"bpid_tprog_execs_total", "Transition-program unit executions.", "", float64(ts.Execs)},
			gauge{"bpid_tprog_fallbacks_total", "Terms served interpreted after a compile failure.", "", float64(st.CompiledFallbacks)},
		)
	}
	// Per-(relation, mode) cache traffic, so warm-start effectiveness is
	// attributable per workload. Sorted for a stable exposition.
	relHits, relMisses := s.cache.relCounts()
	for _, series := range []struct {
		name, help string
		counts     map[relMode]uint64
	}{
		{"bpid_verdict_cache_rel_hits_total", "Verdict-cache hits by relation and strong/weak mode.", relHits},
		{"bpid_verdict_cache_rel_misses_total", "Verdict-cache misses by relation and strong/weak mode.", relMisses},
	} {
		keys := make([]relMode, 0, len(series.counts))
		for k := range series.counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].rel != keys[j].rel {
				return keys[i].rel < keys[j].rel
			}
			return keys[i].mode < keys[j].mode
		})
		for _, k := range keys {
			gauges = append(gauges, gauge{series.name, series.help,
				fmt.Sprintf("{rel=%q,mode=%q}", k.rel, k.mode), float64(series.counts[k])})
		}
	}
	if s.ledger != nil {
		ls := s.ledger.Stats()
		gauges = append(gauges,
			gauge{"bpid_ledger_records_total", "Trusted records in the persistent verdict ledger.", "", float64(ls.Records)},
			gauge{"bpid_ledger_replay_rejected_total", "Persisted records quarantined by the fail-closed replay.", "", float64(ls.Rejected)},
			gauge{"bpid_ledger_replayed_total", "Verified records replayed into the verdict cache at startup.", "", float64(s.replayed)},
			gauge{"bpid_ledger_batches_total", "Sealed Merkle batches.", "", float64(ls.Batches)},
			gauge{"bpid_ledger_pending_records", "Appended records awaiting their batch seal.", "", float64(ls.Pending)},
			gauge{"bpid_ledger_seals_total", "Batches sealed by this process.", "", float64(ls.Seals)},
			gauge{"bpid_ledger_seal_wait_seconds_total", "Summed first-append-to-seal latency of this process's batches.", "", ls.SealWaitSeconds},
			gauge{"bpid_ledger_dropped_appends_total", "Verdicts not persisted because the write-behind queue was full.", "", float64(s.ledgerDropped.Load())},
		)
	}
	gauges = append(gauges, []gauge{
		{"bpid_workers", "Worker-pool size.", `{state="total"}`, float64(cap(s.slots))},
		{"bpid_workers", "Worker-pool size.", `{state="busy"}`, float64(len(s.slots))},
		{"bpid_jobs", "Jobs by state.", `{state="pending"}`, float64(jc[JobPending])},
		{"bpid_jobs", "Jobs by state.", `{state="running"}`, float64(jc[JobRunning])},
		{"bpid_jobs", "Jobs by state.", `{state="done"}`, float64(jc[JobDone])},
		{"bpid_jobs", "Jobs by state.", `{state="failed"}`, float64(jc[JobFailed])},
		{"bpid_uptime_seconds", "Seconds since daemon start.", "", time.Since(s.started).Seconds()},
	}...)
	gauges = s.clusterGauges(gauges)
	// Engine counters from the daemon tracer, one labelled series per
	// counter name (sorted for a stable exposition).
	counters := s.obs.Counters()
	cnames := make([]string, 0, len(counters))
	for name := range counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		gauges = append(gauges, gauge{"bpid_engine_events_total",
			"Engine events observed by the daemon tracer, by counter name.",
			fmt.Sprintf("{name=%q}", name), float64(counters[name])})
	}
	gauges = append(gauges, gauge{"bpid_trace_spans_dropped_total",
		"Span events dropped by the daemon tracer's buffer bound.", "",
		float64(s.obs.Dropped())})
	var b strings.Builder
	s.metrics.render(&b, gauges)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}
