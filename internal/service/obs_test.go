package service_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bpi/internal/obs"
	"bpi/internal/service"
)

func collectSpanNames(ns []*obs.Node, into map[string]bool) {
	for _, n := range ns {
		into[n.Name] = true
		collectSpanNames(n.Children, into)
	}
}

// TestTraceEndpoint submits an async equiv job, waits for it, and asserts
// GET /trace/{id} returns the job's span tree and engine counters.
func TestTraceEndpoint(t *testing.T) {
	_, ts, client := newTestServer(t, service.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	id, err := client.Submit(ctx, service.JobRequest{
		Kind:  service.JobEquiv,
		Equiv: &service.EquivRequest{P: "a!.b!", Q: "a!.b! + a!.b!", Rel: service.RelLabelled},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.JobDone {
		t.Fatalf("job %s ended %s: %+v", id, st.State, st.Error)
	}

	resp, err := http.Get(ts.URL + "/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: status %d", id, resp.StatusCode)
	}
	var tr service.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != id || tr.State != service.JobDone {
		t.Fatalf("trace envelope = %+v", tr)
	}
	if tr.Counters["equiv.pairs_expanded"] <= 0 {
		t.Errorf("counters = %v, want equiv.pairs_expanded > 0", tr.Counters)
	}
	names := map[string]bool{}
	collectSpanNames(tr.Spans, names)
	for _, want := range []string{"equiv.run", "equiv.explore", "equiv.expand", "equiv.fixpoint"} {
		if !names[want] {
			t.Errorf("span tree lacks %q (have %v)", want, names)
		}
	}

	// Unknown job → 404 on the trace endpoint too.
	resp2, err := http.Get(ts.URL + "/trace/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /trace/job-999: status %d want 404", resp2.StatusCode)
	}
}

// TestPprofEndpoints asserts the pprof surface is mounted: the index and
// the goroutine profile respond 200 on the daemon mux.
func TestPprofEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, service.Config{})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d want 200", path, resp.StatusCode)
		}
	}
}

// TestMetricsEngineEvents asserts that engine counters from served
// requests surface as bpid_engine_events_total series on /metrics.
func TestMetricsEngineEvents(t *testing.T) {
	_, ts, client := newTestServer(t, service.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Equiv(ctx, service.EquivRequest{P: "a!.b!", Q: "a!.b!", Rel: service.RelLabelled}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`bpid_engine_events_total{name="equiv.pairs_expanded"}`,
		`bpid_engine_events_total{name="store.intern_misses"}`,
		"bpid_trace_spans_dropped_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition lacks %s", want)
		}
	}
}
