package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics is a small hand-rolled Prometheus-text-format registry: request
// counters per (endpoint, code), a latency histogram per endpoint, and
// gauges sampled at scrape time (store occupancy, cache hit rate, worker
// utilisation, job states). stdlib-only by design.
type metrics struct {
	mu       sync.Mutex
	requests map[reqKey]uint64
	hists    map[string]*histogram
}

type reqKey struct {
	endpoint string
	code     string
}

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

type histogram struct {
	counts []uint64 // one per bucket, non-cumulative
	inf    uint64
	sum    float64
	total  uint64
}

func newMetrics() *metrics {
	return &metrics{requests: map[reqKey]uint64{}, hists: map[string]*histogram{}}
}

// observe records one finished request.
func (m *metrics) observe(endpoint, code string, elapsed time.Duration) {
	secs := elapsed.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	h := m.hists[endpoint]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		m.hists[endpoint] = h
	}
	placed := false
	for i, ub := range latencyBuckets {
		if secs <= ub {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.sum += secs
	h.total++
}

// gauge is one point-in-time sample added by the server at scrape time.
type gauge struct {
	name   string
	help   string
	labels string // rendered "{k=\"v\"}" or empty
	value  float64
}

// render writes the Prometheus text exposition: counters and histograms
// from the registry, then the sampled gauges.
func (m *metrics) render(b *strings.Builder, gauges []gauge) {
	m.mu.Lock()
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	b.WriteString("# HELP bpid_requests_total Requests served, by endpoint and result code.\n")
	b.WriteString("# TYPE bpid_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(b, "bpid_requests_total{endpoint=%q,code=%q} %d\n", k.endpoint, k.code, m.requests[k])
	}
	eps := make([]string, 0, len(m.hists))
	for ep := range m.hists {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	b.WriteString("# HELP bpid_request_seconds Request latency.\n")
	b.WriteString("# TYPE bpid_request_seconds histogram\n")
	for _, ep := range eps {
		h := m.hists[ep]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(b, "bpid_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, cum)
		}
		fmt.Fprintf(b, "bpid_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum+h.inf)
		fmt.Fprintf(b, "bpid_request_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(b, "bpid_request_seconds_count{endpoint=%q} %d\n", ep, h.total)
	}
	m.mu.Unlock()

	last := ""
	for _, g := range gauges {
		if g.name != last {
			fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
			last = g.name
		}
		fmt.Fprintf(b, "%s%s %g\n", g.name, g.labels, g.value)
	}
}
