package service_test

import (
	"context"
	"net/http"
	"strings"
	"testing"

	bpi "bpi"
	"bpi/internal/service"
)

// TestCompiledDaemonAgrees spins up an interpreted and a compiled server
// and requires identical equiv responses, then checks the compiled
// server's /metrics exposes the tprog counter family.
func TestCompiledDaemonAgrees(t *testing.T) {
	_, _, ci := newTestServer(t, service.Config{})
	csrv, cts, cc := newTestServer(t, service.Config{Compiled: true})
	if !csrv.Store().Compiled() {
		t.Fatal("Compiled config did not enable the compiled store")
	}
	ctx := context.Background()
	reqs := []bpi.EquivRequest{
		{P: "b? | b?(x)", Q: "0", Rel: "labelled"},
		{P: "tau.tau.(b? | b?(x))", Q: "b? | b?(x)", Rel: "labelled", Weak: true},
		{P: "nu x.(a!(x) | x?(y).y!)", Q: "tau.0", Rel: "step"},
		{P: "a! | a?", Q: "a!", Rel: "barbed"},
	}
	for _, req := range reqs {
		ri, err := ci.Equiv(ctx, req)
		if err != nil {
			t.Fatalf("%s ~ %s: interpreted: %v", req.P, req.Q, err)
		}
		rc, err := cc.Equiv(ctx, req)
		if err != nil {
			t.Fatalf("%s ~ %s: compiled: %v", req.P, req.Q, err)
		}
		if ri.Related != rc.Related || ri.Pairs != rc.Pairs || ri.Reason != rc.Reason {
			t.Fatalf("%s ~ %s (%s): interpreted %+v, compiled %+v", req.P, req.Q, req.Rel, ri, rc)
		}
	}

	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, metric := range []string{"bpid_tprog_units", "bpid_tprog_compiles_total", "bpid_tprog_fallbacks_total"} {
		if !strings.Contains(body, metric) {
			t.Errorf("compiled /metrics missing %s", metric)
		}
	}
	st := csrv.Store().ProgCache().Stats()
	if st.Units == 0 || st.Compiles == 0 {
		t.Fatalf("compiled store served no compiled programs: %+v", st)
	}
}
