package service_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	bpi "bpi"
	"bpi/internal/equiv"
	"bpi/internal/parser"
	"bpi/internal/service"
)

// racePair is one equivalence query with its expected verdict, computed
// beforehand by a direct (in-process) Checker.
type racePair struct {
	p, q string
	rel  string
	weak bool
	want bool
}

// raceCorpus is a mix of related and unrelated pairs across the relations,
// chosen to exercise shared-store interning from many goroutines: the pairs
// overlap in subterms on purpose.
var raceCorpus = []racePair{
	{p: "a?(x).x! + b!(c)", q: "a?(y).y! + b!(c)", rel: service.RelLabelled},
	{p: "a! | b!", q: "a!.b! + b!.a!", rel: service.RelLabelled},
	{p: "a! + a!", q: "a!", rel: service.RelLabelled},
	{p: "a!.b!", q: "b!.a!", rel: service.RelLabelled},
	{p: "t!.a! + t!.b!", q: "t!.(a! + b!)", rel: service.RelLabelled},
	{p: "a?(x).x!", q: "a?(y).y!", rel: service.RelBarbed},
	{p: "a! | a?", q: "a!", rel: service.RelBarbed},
	{p: "a! | b!", q: "a!.b! + b!.a!", rel: service.RelStep},
	{p: "a!", q: "b!", rel: service.RelOneStep},
	{p: "a?(x).x!", q: "a?(y).y!", rel: service.RelOneStep},
	{p: "a!(b)", q: "a!(c)", rel: service.RelCongruence},
	{p: "a?(x).(x! | x!)", q: "a?(y).(y! | y!)", rel: service.RelCongruence},
}

// TestConcurrentClientsMatchDirectChecker fires 32 concurrent clients at one
// daemon, each walking the corpus in a different order plus interleaved
// prover and machine requests, and cross-checks every equivalence verdict
// against a direct Checker run. Exercised under -race in CI.
func TestConcurrentClientsMatchDirectChecker(t *testing.T) {
	// Expected verdicts from a direct in-process checker (fresh store).
	direct := equiv.NewChecker(nil)
	corpus := make([]racePair, len(raceCorpus))
	copy(corpus, raceCorpus)
	for i := range corpus {
		p, err := parser.Parse(corpus[i].p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := parser.Parse(corpus[i].q)
		if err != nil {
			t.Fatal(err)
		}
		var want bool
		switch corpus[i].rel {
		case service.RelLabelled:
			r, err := direct.Labelled(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
			want = r.Related
		case service.RelBarbed:
			r, err := direct.Barbed(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
			want = r.Related
		case service.RelStep:
			r, err := direct.Step(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
			want = r.Related
		case service.RelOneStep:
			want, err = direct.OneStep(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
		case service.RelCongruence:
			want, err = direct.Congruence(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
		}
		corpus[i].want = want
	}

	srv := service.New(service.Config{Workers: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := bpi.NewClient(ts.URL)
			ctx := context.Background()
			for i := 0; i < len(corpus); i++ {
				pr := corpus[(i+g)%len(corpus)] // every client in a different order
				resp, err := cl.Equiv(ctx, bpi.EquivRequest{
					P: pr.p, Q: pr.q, Rel: pr.rel, Weak: pr.weak,
				})
				if err != nil {
					errs <- fmt.Errorf("client %d: %s %s vs %s: %v", g, pr.rel, pr.p, pr.q, err)
					return
				}
				if resp.Related != pr.want {
					errs <- fmt.Errorf("client %d: %s: %s vs %s: daemon=%v direct=%v",
						g, pr.rel, pr.p, pr.q, resp.Related, pr.want)
					return
				}
			}
			// Interleave the other executors so the pool mixes workloads.
			pv, err := cl.Prove(ctx, bpi.ProveRequest{P: "a! + a!", Q: "a!"})
			if err != nil || !pv.Proved {
				errs <- fmt.Errorf("client %d: prove: %v (proved=%v)", g, err, pv != nil && pv.Proved)
				return
			}
			rn, err := cl.RunRemote(ctx, bpi.RunRequest{Term: "a!.b!.c!.0", Scheduler: service.SchedRandom, Seed: int64(g)})
			if err != nil || rn.Steps != 3 || !rn.Quiescent {
				errs <- fmt.Errorf("client %d: run: %v (%+v)", g, err, rn)
				return
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	// The shared store must have amortised the overlapping corpus: with 32
	// clients asking the same 12 pairs, derivation hits dominate misses.
	st := srv.Store().Stats()
	if st.DerivationHits == 0 {
		t.Errorf("no derivation sharing across clients: %+v", st)
	}
}

// TestVerdictCacheSoundnessUnderLoad hammers a deliberately tiny verdict
// LRU (forcing constant eviction and recomputation) with query families
// that differ ONLY in the weak flag or the relation — the exact axes the
// cache key must separate. Every response, cached or cold, must carry the
// pre-computed direct verdict; a cross-flag collision or a stale entry
// surviving eviction would surface as a flipped verdict. Exercised under
// -race in CI.
func TestVerdictCacheSoundnessUnderLoad(t *testing.T) {
	// Families chosen so that flipping one key axis flips the verdict:
	//   tau.a! ~ a! is false strongly, true weakly (weak axis);
	//   b? | b?(x) vs 0 is labelled-true but onestep-false (relation axis,
	//   the mixed-arity stuck pair found by FuzzDecideAgree).
	corpus := []racePair{
		{p: "tau.a!", q: "a!", rel: service.RelLabelled, weak: false, want: false},
		{p: "tau.a!", q: "a!", rel: service.RelLabelled, weak: true, want: true},
		{p: "b? | b?(x)", q: "0", rel: service.RelLabelled, weak: false, want: true},
		{p: "b? | b?(x)", q: "0", rel: service.RelOneStep, weak: false, want: false},
		{p: "a! | b!", q: "a!.b! + b!.a!", rel: service.RelLabelled, weak: false, want: true},
		{p: "a! | b!", q: "a!.b! + b!.a!", rel: service.RelStep, weak: false, want: true},
		{p: "a! + a!", q: "a!", rel: service.RelCongruence, weak: false, want: true},
		{p: "a!(b)", q: "a!(c)", rel: service.RelCongruence, weak: false, want: false},
		{p: "a?(x).x!", q: "a?(y).y!", rel: service.RelOneStep, weak: false, want: true},
		{p: "t!.a! + t!.b!", q: "t!.(a! + b!)", rel: service.RelLabelled, weak: false, want: false},
	}
	// Double-check the hard-coded verdicts against a direct checker so the
	// test cannot silently rot if engine semantics evolve.
	direct := equiv.NewChecker(nil)
	for _, pr := range corpus {
		p, err := parser.Parse(pr.p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := parser.Parse(pr.q)
		if err != nil {
			t.Fatal(err)
		}
		var got bool
		switch pr.rel {
		case service.RelLabelled:
			r, err := direct.Labelled(p, q, pr.weak)
			if err != nil {
				t.Fatal(err)
			}
			got = r.Related
		case service.RelStep:
			r, err := direct.Step(p, q, pr.weak)
			if err != nil {
				t.Fatal(err)
			}
			got = r.Related
		case service.RelOneStep:
			got, err = direct.OneStep(p, q, pr.weak)
			if err != nil {
				t.Fatal(err)
			}
		case service.RelCongruence:
			got, err = direct.Congruence(p, q, pr.weak)
			if err != nil {
				t.Fatal(err)
			}
		}
		if got != pr.want {
			t.Fatalf("corpus verdict for %s %s vs %s (weak=%v) is stale: direct=%v, hard-coded=%v",
				pr.rel, pr.p, pr.q, pr.weak, got, pr.want)
		}
	}

	// CacheSize 4 < len(corpus): the LRU churns the whole run through.
	srv := service.New(service.Config{Workers: 8, CacheSize: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 24
	const rounds = 4
	var wg sync.WaitGroup
	var cachedHits, flips int64
	var mu sync.Mutex
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := bpi.NewClient(ts.URL)
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				for i := 0; i < len(corpus); i++ {
					pr := corpus[(i+g+r)%len(corpus)]
					resp, err := cl.Equiv(ctx, bpi.EquivRequest{
						P: pr.p, Q: pr.q, Rel: pr.rel, Weak: pr.weak,
					})
					if err != nil {
						errs <- fmt.Errorf("client %d: %s %s vs %s: %v", g, pr.rel, pr.p, pr.q, err)
						return
					}
					mu.Lock()
					if resp.Cached {
						cachedHits++
					}
					if resp.Related != pr.want {
						flips++
					}
					mu.Unlock()
					if resp.Related != pr.want {
						errs <- fmt.Errorf("client %d: %s %s vs %s (weak=%v, cached=%v): daemon=%v direct=%v",
							g, pr.rel, pr.p, pr.q, pr.weak, resp.Cached, resp.Related, pr.want)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if flips != 0 {
		t.Errorf("%d verdicts flipped under cache churn", flips)
	}
	// With 24×4 walks over 10 pairs, some queries must have been served from
	// cache, or the test exercised nothing.
	if cachedHits == 0 {
		t.Error("no cached verdicts observed — cache path untested")
	}

	// Back-to-back repeats after the storm: the second query of a pair must
	// agree with the first whether or not it hits the (still churning) LRU.
	cl := bpi.NewClient(ts.URL)
	for _, pr := range corpus {
		first, err := cl.Equiv(context.Background(), bpi.EquivRequest{P: pr.p, Q: pr.q, Rel: pr.rel, Weak: pr.weak})
		if err != nil {
			t.Fatal(err)
		}
		second, err := cl.Equiv(context.Background(), bpi.EquivRequest{P: pr.p, Q: pr.q, Rel: pr.rel, Weak: pr.weak})
		if err != nil {
			t.Fatal(err)
		}
		if first.Related != pr.want || second.Related != first.Related {
			t.Errorf("%s %s vs %s (weak=%v): first=%v second=%v (cached=%v) want=%v",
				pr.rel, pr.p, pr.q, pr.weak, first.Related, second.Related, second.Cached, pr.want)
		}
	}
}
