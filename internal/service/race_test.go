package service_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	bpi "bpi"
	"bpi/internal/equiv"
	"bpi/internal/parser"
	"bpi/internal/service"
)

// racePair is one equivalence query with its expected verdict, computed
// beforehand by a direct (in-process) Checker.
type racePair struct {
	p, q string
	rel  string
	weak bool
	want bool
}

// raceCorpus is a mix of related and unrelated pairs across the relations,
// chosen to exercise shared-store interning from many goroutines: the pairs
// overlap in subterms on purpose.
var raceCorpus = []racePair{
	{p: "a?(x).x! + b!(c)", q: "a?(y).y! + b!(c)", rel: service.RelLabelled},
	{p: "a! | b!", q: "a!.b! + b!.a!", rel: service.RelLabelled},
	{p: "a! + a!", q: "a!", rel: service.RelLabelled},
	{p: "a!.b!", q: "b!.a!", rel: service.RelLabelled},
	{p: "t!.a! + t!.b!", q: "t!.(a! + b!)", rel: service.RelLabelled},
	{p: "a?(x).x!", q: "a?(y).y!", rel: service.RelBarbed},
	{p: "a! | a?", q: "a!", rel: service.RelBarbed},
	{p: "a! | b!", q: "a!.b! + b!.a!", rel: service.RelStep},
	{p: "a!", q: "b!", rel: service.RelOneStep},
	{p: "a?(x).x!", q: "a?(y).y!", rel: service.RelOneStep},
	{p: "a!(b)", q: "a!(c)", rel: service.RelCongruence},
	{p: "a?(x).(x! | x!)", q: "a?(y).(y! | y!)", rel: service.RelCongruence},
}

// TestConcurrentClientsMatchDirectChecker fires 32 concurrent clients at one
// daemon, each walking the corpus in a different order plus interleaved
// prover and machine requests, and cross-checks every equivalence verdict
// against a direct Checker run. Exercised under -race in CI.
func TestConcurrentClientsMatchDirectChecker(t *testing.T) {
	// Expected verdicts from a direct in-process checker (fresh store).
	direct := equiv.NewChecker(nil)
	corpus := make([]racePair, len(raceCorpus))
	copy(corpus, raceCorpus)
	for i := range corpus {
		p, err := parser.Parse(corpus[i].p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := parser.Parse(corpus[i].q)
		if err != nil {
			t.Fatal(err)
		}
		var want bool
		switch corpus[i].rel {
		case service.RelLabelled:
			r, err := direct.Labelled(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
			want = r.Related
		case service.RelBarbed:
			r, err := direct.Barbed(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
			want = r.Related
		case service.RelStep:
			r, err := direct.Step(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
			want = r.Related
		case service.RelOneStep:
			want, err = direct.OneStep(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
		case service.RelCongruence:
			want, err = direct.Congruence(p, q, corpus[i].weak)
			if err != nil {
				t.Fatal(err)
			}
		}
		corpus[i].want = want
	}

	srv := service.New(service.Config{Workers: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := bpi.NewClient(ts.URL)
			ctx := context.Background()
			for i := 0; i < len(corpus); i++ {
				pr := corpus[(i+g)%len(corpus)] // every client in a different order
				resp, err := cl.Equiv(ctx, bpi.EquivRequest{
					P: pr.p, Q: pr.q, Rel: pr.rel, Weak: pr.weak,
				})
				if err != nil {
					errs <- fmt.Errorf("client %d: %s %s vs %s: %v", g, pr.rel, pr.p, pr.q, err)
					return
				}
				if resp.Related != pr.want {
					errs <- fmt.Errorf("client %d: %s: %s vs %s: daemon=%v direct=%v",
						g, pr.rel, pr.p, pr.q, resp.Related, pr.want)
					return
				}
			}
			// Interleave the other executors so the pool mixes workloads.
			pv, err := cl.Prove(ctx, bpi.ProveRequest{P: "a! + a!", Q: "a!"})
			if err != nil || !pv.Proved {
				errs <- fmt.Errorf("client %d: prove: %v (proved=%v)", g, err, pv != nil && pv.Proved)
				return
			}
			rn, err := cl.RunRemote(ctx, bpi.RunRequest{Term: "a!.b!.c!.0", Scheduler: service.SchedRandom, Seed: int64(g)})
			if err != nil || rn.Steps != 3 || !rn.Quiescent {
				errs <- fmt.Errorf("client %d: run: %v (%+v)", g, err, rn)
				return
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	// The shared store must have amortised the overlapping corpus: with 32
	// clients asking the same 12 pairs, derivation hits dominate misses.
	st := srv.Store().Stats()
	if st.DerivationHits == 0 {
		t.Errorf("no derivation sharing across clients: %+v", st)
	}
}
