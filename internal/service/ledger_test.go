package service_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/ledger"
	"bpi/internal/parser"
	"bpi/internal/service"
)

// openLedger opens a test ledger with deterministic sealing (every record
// seals immediately; no background timer).
func openLedger(t *testing.T, dir string) *ledger.Ledger {
	t.Helper()
	l, err := ledger.Open(dir, ledger.Config{BatchSize: 1, MaxWait: -1})
	if err != nil {
		t.Fatalf("ledger.Open: %v", err)
	}
	return l
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestLedgerWarmStart is the daemon-level roundtrip: verdicts computed by
// one daemon process persist, and a second process over the same directory
// replays them into its verdict cache — repeat queries hit without touching
// the engine — and serves verifiable inclusion proofs for them.
func TestLedgerWarmStart(t *testing.T) {
	dir := t.TempDir()
	queries := []string{
		`{"p":"a! | b!","q":"a!.b! + b!.a!","rel":"labelled"}`,
		`{"p":"tau.a!","q":"a!","rel":"labelled","weak":true}`,
		`{"p":"a!","q":"b!","rel":"labelled"}`,
	}

	// First life: compute and persist.
	led1 := openLedger(t, dir)
	srv1, ts1, _ := newTestServer(t, service.Config{Ledger: led1})
	var keys []string
	for _, q := range queries {
		resp, body := post(t, ts1, "/v1/equiv", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("equiv: %d %s", resp.StatusCode, body)
		}
		var er service.EquivResponse
		if err := json.Unmarshal([]byte(body), &er); err != nil {
			t.Fatal(err)
		}
		if er.Cached {
			t.Fatalf("first computation reported cached: %s", body)
		}
		if er.LedgerKey == "" {
			t.Fatalf("no ledger_key on a ledger-backed daemon: %s", body)
		}
		keys = append(keys, er.LedgerKey)
	}
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := led1.Close(); err != nil {
		t.Fatalf("ledger close: %v", err)
	}

	// Second life: warm start from the same directory.
	led2 := openLedger(t, dir)
	defer led2.Close()
	_, ts2, _ := newTestServer(t, service.Config{Ledger: led2})

	var stats service.LedgerStatsResponse
	if code := getJSON(t, ts2.URL+"/v1/ledger/stats", &stats); code != http.StatusOK {
		t.Fatalf("ledger stats: %d", code)
	}
	if !stats.Enabled || stats.Replayed != len(queries) || stats.Stats.Records != len(queries) {
		t.Fatalf("warm-start stats: %+v", stats)
	}
	if stats.Stats.Rejected != 0 || stats.Stats.ChainBroken {
		t.Fatalf("clean ledger reported damage: %+v", stats)
	}

	// Repeat queries come from the replayed cache, certificate included.
	for i, q := range queries {
		_, body := post(t, ts2, "/v1/equiv", strings.TrimSuffix(q, "}")+`,"cert":true}`)
		var er service.EquivResponse
		if err := json.Unmarshal([]byte(body), &er); err != nil {
			t.Fatal(err)
		}
		if !er.Cached {
			t.Fatalf("query %d not served from the warm-started cache: %s", i, body)
		}
		if er.LedgerKey != keys[i] {
			t.Fatalf("query %d ledger key drifted: %s vs %s", i, er.LedgerKey, keys[i])
		}
		if er.Certificate == nil {
			t.Fatalf("replayed verdict lost its certificate: %s", body)
		}
		if err := cert.Verify(er.Certificate); err != nil {
			t.Fatalf("replayed certificate does not verify: %v", err)
		}
	}

	// Inclusion proofs are served and verify offline.
	for _, key := range keys {
		var proof ledger.InclusionProof
		if code := getJSON(t, ts2.URL+"/v1/ledger/proof/"+key, &proof); code != http.StatusOK {
			t.Fatalf("proof %s: %d", key, code)
		}
		if err := ledger.VerifyProof(&proof); err != nil {
			t.Fatalf("proof %s does not verify: %v", key, err)
		}
	}

	// The metrics surface carries the ledger series and the per-relation
	// cache split.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"bpid_ledger_records_total 3",
		"bpid_ledger_replay_rejected_total 0",
		"bpid_ledger_replayed_total 3",
		`bpid_verdict_cache_rel_hits_total{rel="labelled",mode="strong"} 2`,
		`bpid_verdict_cache_rel_hits_total{rel="labelled",mode="weak"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLedgerForgedRecordNotTrusted plants a record whose verdict its own
// certificate disproves: the warm start must quarantine it (counted, never
// cached) and a fresh query must recompute the true verdict.
func TestLedgerForgedRecordNotTrusted(t *testing.T) {
	dir := t.TempDir()
	led1 := openLedger(t, dir)

	ch := equiv.NewChecker(nil)
	ch.Certify = true
	p, _ := parser.Parse("a! | b!")
	q, _ := parser.Parse("a!.b! + b!.a!")
	r, err := ch.Labelled(p, q, false)
	if err != nil || !r.Related {
		t.Fatalf("Labelled: %v related=%t", err, r.Related)
	}
	rec, err := ledger.NewRecord(service.RelLabelled, false, 0, 0, 0, r.Related, r.Pairs, r.Reason, r.Cert)
	if err != nil {
		t.Fatal(err)
	}
	rec.Related = false // the lie: certificate proves related=true
	if _, err := led1.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := led1.Close(); err != nil {
		t.Fatal(err)
	}

	led2 := openLedger(t, dir)
	defer led2.Close()
	_, ts, _ := newTestServer(t, service.Config{Ledger: led2})

	var stats service.LedgerStatsResponse
	getJSON(t, ts.URL+"/v1/ledger/stats", &stats)
	if stats.Replayed != 0 || stats.Stats.Rejected != 1 {
		t.Fatalf("forged record not quarantined: %+v", stats)
	}

	// The forged verdict must not have seeded the cache: the query is a
	// fresh computation and reports the true verdict.
	_, body := post(t, ts, "/v1/equiv", `{"p":"a! | b!","q":"a!.b! + b!.a!","rel":"labelled"}`)
	var er service.EquivResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatal(err)
	}
	if er.Cached || !er.Related {
		t.Fatalf("forged record influenced the verdict: %s", body)
	}
}

// TestLedgerProofTaxonomy pins the proof endpoint's error taxonomy: 409
// pending for an unsealed record, 404 for an unknown key, and the
// no-ledger daemon answers stats with enabled=false.
func TestLedgerProofTaxonomy(t *testing.T) {
	dir := t.TempDir()
	led, err := ledger.Open(dir, ledger.Config{BatchSize: 1000, MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	_, ts, _ := newTestServer(t, service.Config{Ledger: led})

	_, body := post(t, ts, "/v1/equiv", `{"p":"a!","q":"a!","rel":"labelled"}`)
	var er service.EquivResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/ledger/proof/" + er.LedgerKey)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unsealed proof status = %d, want 409", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/ledger/proof/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown proof status = %d, want 404", resp.StatusCode)
	}

	_, tsNo, _ := newTestServer(t, service.Config{})
	var stats service.LedgerStatsResponse
	if code := getJSON(t, tsNo.URL+"/v1/ledger/stats", &stats); code != http.StatusOK || stats.Enabled {
		t.Fatalf("no-ledger stats: code=%d %+v", code, stats)
	}
	resp, err = http.Get(tsNo.URL + "/v1/ledger/proof/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-ledger proof status = %d, want 404", resp.StatusCode)
	}
}
