package service

import (
	"bpi/internal/cert"
	"bpi/internal/ledger"
	"bpi/internal/obs"
)

// Wire types of the bpid HTTP/JSON API. The same structs are used by the
// daemon handlers and by the bpi.Client, so the two cannot drift.

// ErrorBody is the typed error payload carried by every non-2xx response.
type ErrorBody struct {
	// Code is a stable machine-readable cause: invalid_request, parse_error,
	// term_too_large, budget_exhausted, deadline_exceeded, queue_full,
	// deadline_budget, draining, shutting_down, not_found or internal.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// RetryAfterSec, when non-zero, is the admission controller's backoff
	// hint in whole seconds. It is mirrored into the Retry-After response
	// header and marks the error as a load-shed (HTTP 429): the request was
	// well-formed, the daemon just refused to queue it right now.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// Error makes *ErrorBody usable as a Go error (the client returns it as-is).
func (e *ErrorBody) Error() string { return "bpid: " + e.Code + ": " + e.Message }

// Error codes.
const (
	CodeInvalidRequest  = "invalid_request"
	CodeParseError      = "parse_error"
	CodeTermTooLarge    = "term_too_large"
	CodeBudgetExhausted = "budget_exhausted"
	CodeDeadline        = "deadline_exceeded"
	CodeQueueFull       = "queue_full"
	CodeShuttingDown    = "shutting_down"
	CodeNotFound        = "not_found"
	CodeInternal        = "internal"
	// CodePending marks a resource that will exist but does not yet: a
	// certificate of a still-running job, or an inclusion proof of a
	// not-yet-sealed ledger record. Served as 409 — retry after the job
	// finishes / the batch seals.
	CodePending = "pending"
	// CodeJobFailed marks a certificate request against a job that finished
	// in error: the resource never came to exist and retrying is pointless.
	CodeJobFailed = "job_failed"
	// CodeDeadlineBudget is an admission shed: the predicted queue wait
	// already exceeds the request's own deadline budget, so executing it
	// would only burn a worker to produce deadline_exceeded.
	CodeDeadlineBudget = "deadline_budget"
	// CodeDraining is an admission shed during shutdown: unlike
	// shutting_down (a terminal 503 from non-query endpoints), draining is a
	// 429 with Retry-After — the cluster client is expected to retry against
	// another node.
	CodeDraining = "draining"
)

// errorResponse is the JSON envelope of an error.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// ParseRequest asks for a term to be parsed and canonicalised.
type ParseRequest struct {
	Term string `json:"term"`
}

// ParseResponse reports the canonical rendering and the free names.
type ParseResponse struct {
	Canonical string   `json:"canonical"`
	FreeNames []string `json:"free_names"`
}

// StepRequest asks for the symbolic transitions of a term.
type StepRequest struct {
	Term string `json:"term"`
}

// Transition is one symbolic transition, rendered in concrete syntax.
type Transition struct {
	Act    string `json:"act"`
	Target string `json:"target"`
}

// StepResponse lists the transitions of the (canonicalised) term.
type StepResponse struct {
	Term        string       `json:"term"`
	Transitions []Transition `json:"transitions"`
}

// ExploreRequest asks for the finite transition graph reachable from a term.
type ExploreRequest struct {
	Term           string `json:"term"`
	MaxStates      int    `json:"max_states,omitempty"`
	FreshNames     int    `json:"fresh_names,omitempty"`
	AutonomousOnly bool   `json:"autonomous_only,omitempty"`
}

// ExploreResponse summarises the explored graph.
type ExploreResponse struct {
	States    int      `json:"states"`
	Edges     int      `json:"edges"`
	Truncated bool     `json:"truncated"`
	Universe  []string `json:"universe"`
}

// Relation names accepted by EquivRequest.Rel.
const (
	RelLabelled   = "labelled"
	RelBarbed     = "barbed"
	RelStep       = "step"
	RelOneStep    = "onestep"
	RelCongruence = "congruence"
)

// EquivRequest asks whether two terms are related by one of the paper's
// equivalences: ~ / ≈ (labelled), ~b / ≈b (barbed), ~φ / ≈φ (step),
// ~+ / ≈+ (onestep) or ~c / ≈c (congruence); Weak selects the ≈ variant.
type EquivRequest struct {
	P    string `json:"p"`
	Q    string `json:"q"`
	Rel  string `json:"rel"`
	Weak bool   `json:"weak,omitempty"`
	// MaxPairs / MaxClosure override the engine budgets (0 = server default).
	MaxPairs   int `json:"max_pairs,omitempty"`
	MaxClosure int `json:"max_closure,omitempty"`
	// MaxSubs bounds the substitutions tried by a congruence query
	// (0 = unbounded).
	MaxSubs int `json:"max_subs,omitempty"`
	// TimeoutMs bounds the wall-clock time of the query (0 = server
	// default; clamped to the server maximum).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Cert asks for the verdict's replayable certificate (internal/cert)
	// in the response. The daemon records a certificate for every verdict
	// regardless (async jobs serve theirs on GET /certificate/{id}); this
	// flag only controls whether it is inlined in the response body.
	Cert bool `json:"cert,omitempty"`
}

// EquivResponse reports an equivalence verdict.
type EquivResponse struct {
	Related bool   `json:"related"`
	Pairs   int    `json:"pairs"`
	Reason  string `json:"reason,omitempty"`
	// Cached reports that the verdict came from the daemon's verdict cache.
	Cached    bool    `json:"cached"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Certificate is the verdict's replayable proof object, present when
	// the request set Cert (cached verdicts return the cached certificate).
	Certificate *cert.Certificate `json:"certificate,omitempty"`
	// LedgerKey is the verdict's content address in the persistent ledger
	// (the hex SHA-256 of the canonical pair key), present when the daemon
	// runs with -ledger. Feed it to GET /v1/ledger/proof/{key} or
	// `bpiledger proof` once the record's batch seals.
	LedgerKey string `json:"ledger_key,omitempty"`
	// Peer is the base URL of the cluster peer that computed this verdict,
	// set only when the pair was routed and the peer's certificate survived
	// the local fail-closed verification (see internal/cluster). Empty for
	// locally computed verdicts.
	Peer string `json:"peer,omitempty"`
}

// BatchRequest is the body of POST /v1/equiv/batch: many equivalence
// queries admitted, routed and executed as one request. Pair-level fields
// (budgets, timeout_ms, cert) mean exactly what they mean on /v1/equiv.
type BatchRequest struct {
	Pairs []EquivRequest `json:"pairs"`
}

// BatchItem is one NDJSON line of a batch response stream: the verdict (or
// typed error) of the pair at Index in the request. Items stream in
// completion order, not index order — Index is the join key.
type BatchItem struct {
	Index int            `json:"index"`
	Equiv *EquivResponse `json:"equiv,omitempty"`
	Error *ErrorBody     `json:"error,omitempty"`
}

// BatchTrailer is the final NDJSON line of a batch stream, marked by
// done=true: the batch's own accounting. Its presence is the well-formed
// end-of-stream marker; a stream without it was truncated.
type BatchTrailer struct {
	Done      bool    `json:"done"`
	Total     int     `json:"total"`
	Succeeded int     `json:"succeeded"`
	Failed    int     `json:"failed"`
	Shed      int     `json:"shed"`
	Remote    int     `json:"remote"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// CertificateResponse is the body of GET /certificate/{id}: the replayable
// certificate recorded for a finished equiv job. Verify it offline with
// `bpicert verify` or internal/cert.Verify.
type CertificateResponse struct {
	ID          string            `json:"id"`
	Rel         string            `json:"rel"`
	Weak        bool              `json:"weak"`
	Related     bool              `json:"related"`
	Certificate *cert.Certificate `json:"certificate"`
}

// LedgerStatsResponse is the body of GET /v1/ledger/stats. Enabled is false
// (and everything else zero) when the daemon runs without -ledger.
type LedgerStatsResponse struct {
	Enabled bool `json:"enabled"`
	// Replayed counts persisted verdicts that passed every trust layer at
	// startup and seeded the verdict cache; Stats.Rejected counts the
	// quarantined ones.
	Replayed int `json:"replayed"`
	// DroppedAppends counts verdicts NOT persisted because the async append
	// queue was full — the hot path never blocks on the ledger.
	DroppedAppends uint64       `json:"dropped_appends"`
	Stats          ledger.Stats `json:"stats"`
}

// ProveRequest asks whether A ⊢ p = q (Section 5) for finite terms.
type ProveRequest struct {
	P     string `json:"p"`
	Q     string `json:"q"`
	Trace bool   `json:"trace,omitempty"`
	// MaxNames / MaxSteps override the prover budgets (0 = prover default).
	MaxNames  int `json:"max_names,omitempty"`
	MaxSteps  int `json:"max_steps,omitempty"`
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// ProveResponse reports a provability verdict with an optional derivation
// outline.
type ProveResponse struct {
	Proved    bool     `json:"proved"`
	Trace     []string `json:"trace,omitempty"`
	ElapsedMs float64  `json:"elapsed_ms"`
}

// Scheduler names accepted by RunRequest.Scheduler.
const (
	SchedFirst      = "first"
	SchedRandom     = "random"
	SchedRoundRobin = "roundrobin"
)

// RunRequest asks for one scheduled execution of a term.
type RunRequest struct {
	Term      string   `json:"term"`
	MaxSteps  int      `json:"max_steps,omitempty"`
	Scheduler string   `json:"scheduler,omitempty"` // first (default), random, roundrobin
	Seed      int64    `json:"seed,omitempty"`
	StopOn    []string `json:"stop_on_barb,omitempty"`
	KeepTrace bool     `json:"keep_trace,omitempty"`
	TimeoutMs int      `json:"timeout_ms,omitempty"`
}

// RunEvent is one fired transition of a run.
type RunEvent struct {
	Step int    `json:"step"`
	Act  string `json:"act"`
}

// RunResponse reports one machine execution.
type RunResponse struct {
	Steps     int        `json:"steps"`
	Quiescent bool       `json:"quiescent"`
	Stopped   bool       `json:"stopped"`
	StopEvent *RunEvent  `json:"stop_event,omitempty"`
	Trace     []RunEvent `json:"trace,omitempty"`
	Final     string     `json:"final"`
	ElapsedMs float64    `json:"elapsed_ms"`
}

// Job kinds accepted by JobRequest.Kind.
const (
	JobEquiv = "equiv"
	JobProve = "prove"
	JobRun   = "run"
)

// JobRequest submits an asynchronous job; exactly the field matching Kind
// must be set.
type JobRequest struct {
	Kind  string        `json:"kind"`
	Equiv *EquivRequest `json:"equiv,omitempty"`
	Prove *ProveRequest `json:"prove,omitempty"`
	Run   *RunRequest   `json:"run,omitempty"`
}

// JobSubmitResponse acknowledges a submitted job.
type JobSubmitResponse struct {
	ID string `json:"id"`
}

// Job states.
const (
	JobPending = "pending"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatusResponse reports a job's state and, when done, its result (the
// field matching the submitted Kind) or its typed error (when failed).
type JobStatusResponse struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`

	Equiv *EquivResponse `json:"equiv,omitempty"`
	Prove *ProveResponse `json:"prove,omitempty"`
	Run   *RunResponse   `json:"run,omitempty"`
	Error *ErrorBody     `json:"error,omitempty"`
}

// TraceResponse is the body of GET /trace/{id}: the span tree and engine
// counters recorded by one async job's private tracer. Spans only exist
// once the job has started running; DroppedSpans counts events discarded
// by the per-job buffer bound.
type TraceResponse struct {
	ID           string           `json:"id"`
	Kind         string           `json:"kind"`
	State        string           `json:"state"`
	Counters     map[string]int64 `json:"counters,omitempty"`
	DroppedSpans uint64           `json:"dropped_spans,omitempty"`
	Spans        []*obs.Node      `json:"spans,omitempty"`
}
