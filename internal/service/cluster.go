package service

import (
	"context"
	"fmt"
	"time"

	"bpi/internal/cluster"
	"bpi/internal/ledger"
)

// This file is the daemon side of the cluster tier: admission glue and
// remote dispatch. The mechanisms themselves (rendezvous routing, the
// bounded admission queue, the peer client, the fail-closed acceptance
// rule) live in internal/cluster; this file only threads them through the
// request path.

// admit runs one query admission. On shed it returns the typed 429 body;
// on admission the returned release MUST be called with the observed
// service time (it frees the queue slot and feeds the wait predictor).
func (s *Server) admit(budget time.Duration) (func(time.Duration), *ErrorBody) {
	release, shed := s.admission.Admit(budget, s.isClosed())
	if shed != nil {
		return nil, shedError(shed)
	}
	return release, nil
}

// shedError maps an admission shed to its wire form. Every shed carries a
// Retry-After hint, which is also what routes it to HTTP 429 in fail().
func shedError(sh *cluster.Shed) *ErrorBody {
	sec := int(sh.RetryAfter / time.Second)
	if sec < 1 {
		sec = 1
	}
	switch sh.Cause {
	case cluster.CauseDraining:
		return &ErrorBody{Code: CodeDraining, RetryAfterSec: sec,
			Message: "daemon is draining; retry against another node"}
	case cluster.CauseDeadlineBudget:
		return &ErrorBody{Code: CodeDeadlineBudget, RetryAfterSec: sec,
			Message: "predicted queue wait exceeds the request deadline budget"}
	default:
		return &ErrorBody{Code: CodeQueueFull, RetryAfterSec: sec,
			Message: "admission queue is full"}
	}
}

// dispatchRemote sends one pair to its owning peer and accepts the verdict
// only through the fail-closed rule: transport success is necessary but
// never sufficient — the peer's certificate must independently re-verify
// here, over this node's own verifier, against the locally derived pair
// identity. Any failure reports (nil, false) and the caller computes
// locally.
func (s *Server) dispatchRemote(ctx context.Context, req *EquivRequest, owner, kp, kq, cacheKey string) (*EquivResponse, bool) {
	// The remote leg gets at most half the request budget (and never more
	// than PeerTimeout), so a hung peer still leaves room for the local
	// fallback to finish inside the client's deadline.
	budget := s.timeout(req.TimeoutMs) / 2
	if pt := s.cfg.peerTimeout(); budget > pt {
		budget = pt
	}
	rctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	v, err := s.peerc.Equiv(rctx, owner, cluster.EquivQuery{
		P: req.P, Q: req.Q, Rel: req.Rel, Weak: req.Weak,
		MaxPairs: req.MaxPairs, MaxClosure: req.MaxClosure, MaxSubs: req.MaxSubs,
		TimeoutMs: int(budget / time.Millisecond),
	})
	if err != nil {
		s.clusterRemoteFail.Add(1)
		return nil, false
	}
	crt, err := cluster.VerifyAccept(s.sys, req.Rel, req.Weak, kp, kq, v)
	if err != nil {
		// The tampered/mismatched certificate is the whole story: count it,
		// refuse the verdict, and crucially never let it near the cache.
		s.clusterCertReject.Add(1)
		return nil, false
	}
	resp := EquivResponse{
		Related:     v.Related,
		Pairs:       v.Pairs,
		Reason:      v.Reason,
		ElapsedMs:   v.ElapsedMs,
		Certificate: crt,
		Peer:        owner,
	}
	if s.ledger != nil {
		resp.LedgerKey = ledger.KeyHash(ledger.PairKey(req.Rel, req.Weak, kp, kq))
	}
	s.cache.put(cacheKey, resp)
	s.recordVerdict(req, &resp)
	s.clusterRemoteOK.Add(1)
	if !req.Cert {
		stripped := resp
		stripped.Certificate = nil
		return &stripped, true
	}
	return &resp, true
}

// clusterGauges appends the admission and cluster series to the /metrics
// exposition.
func (s *Server) clusterGauges(gauges []gauge) []gauge {
	ast := s.admission.Stats()
	gauges = append(gauges,
		gauge{"bpid_admission_capacity", "Admission queue capacity (waiters beyond the worker pool).", "", float64(ast.Capacity)},
		gauge{"bpid_admission_inflight", "Queries admitted and not yet released.", "", float64(ast.Inflight)},
		gauge{"bpid_admission_admitted_total", "Queries admitted.", "", float64(ast.Admitted)},
		gauge{"bpid_admission_shed_total", "Queries shed, by cause.", fmt.Sprintf("{cause=%q}", cluster.CauseQueueFull), float64(ast.ShedQueueFull)},
		gauge{"bpid_admission_shed_total", "Queries shed, by cause.", fmt.Sprintf("{cause=%q}", cluster.CauseDeadlineBudget), float64(ast.ShedDeadlineBudget)},
		gauge{"bpid_admission_shed_total", "Queries shed, by cause.", fmt.Sprintf("{cause=%q}", cluster.CauseDraining), float64(ast.ShedDraining)},
		gauge{"bpid_admission_est_service_seconds", "EWMA of observed per-query service time.", "", ast.EstServiceSeconds},
	)
	if s.router == nil {
		return gauges
	}
	cs := s.Cluster()
	return append(gauges,
		gauge{"bpid_cluster_peers", "Cluster membership size (self included).", "", float64(cs.Peers)},
		gauge{"bpid_cluster_remote_ok_total", "Peer verdicts accepted after local certificate verification.", "", float64(cs.RemoteOK)},
		gauge{"bpid_cluster_remote_fail_total", "Peer dispatches failed at the transport level.", "", float64(cs.RemoteFail)},
		gauge{"bpid_cluster_cert_rejected_total", "Peer verdicts refused by the fail-closed acceptance rule.", "", float64(cs.CertRejected)},
		gauge{"bpid_cluster_local_fallback_total", "Routed pairs ultimately computed locally.", "", float64(cs.LocalFallback)},
		gauge{"bpid_cluster_forwarded_served_total", "Forwarded peer requests decided locally by rule.", "", float64(cs.ForwardedServed)},
	)
}
