package service

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// verdictCache is a bounded LRU of equivalence verdicts keyed on the
// *canonical* pair plus the relation and the budgets. Keying on canonical
// term keys (syntax.Key after Simplify) is sound because every verdict is a
// pure function of the canonical terms, the relation and the budgets: the
// checker itself interns through the same canonicalisation, and all the
// paper's relations are symmetric, so the key orders the two sides
// lexicographically and one entry serves both orientations.
type verdictCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	key  string
	resp EquivResponse
}

func newVerdictCache(max int) *verdictCache {
	if max <= 0 {
		max = 4096
	}
	return &verdictCache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// verdictCacheKey builds the cache key from the relation spec, the budgets
// and the lexicographically ordered canonical keys of the two terms.
func verdictCacheKey(rel string, weak bool, maxPairs, maxClosure, maxSubs int, kp, kq string) string {
	if kq < kp {
		kp, kq = kq, kp
	}
	return fmt.Sprintf("%s|%t|%d|%d|%d|%s|%s", rel, weak, maxPairs, maxClosure, maxSubs, kp, kq)
}

// get returns the cached verdict and bumps its recency.
func (c *verdictCache) get(key string) (EquivResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return EquivResponse{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).resp, true
}

// put stores a conclusive verdict, evicting the least recently used entry
// when full.
func (c *verdictCache) put(key string, resp EquivResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	if c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
