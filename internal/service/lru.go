package service

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"bpi/internal/ledger"
)

// verdictCache is a bounded LRU of equivalence verdicts keyed on the
// *canonical* pair plus the relation and the budgets. Keying on canonical
// term keys (syntax.Key after Simplify) is sound because every verdict is a
// pure function of the canonical terms, the relation and the budgets: the
// checker itself interns through the same canonicalisation, and all the
// paper's relations are symmetric, so the key orders the two sides
// lexicographically and one entry serves both orientations.
//
// Hits and misses are counted both in aggregate and per (relation, mode)
// class, so warm-start effectiveness is attributable per workload on
// /metrics (bpid_verdict_cache_rel_{hits,misses}_total{rel,mode}).
type verdictCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	relHits   map[relMode]uint64 // guarded by mu
	relMisses map[relMode]uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// relMode is the per-workload counter class: the relation crossed with
// strong/weak.
type relMode struct {
	rel  string
	mode string // "strong" | "weak"
}

func newRelMode(rel string, weak bool) relMode {
	if weak {
		return relMode{rel, "weak"}
	}
	return relMode{rel, "strong"}
}

type cacheEntry struct {
	key  string
	resp EquivResponse
}

func newVerdictCache(max int) *verdictCache {
	if max <= 0 {
		max = 4096
	}
	return &verdictCache{max: max, order: list.New(), entries: make(map[string]*list.Element),
		relHits: map[relMode]uint64{}, relMisses: map[relMode]uint64{}}
}

// verdictCacheKey builds the cache key: the ledger's canonical pair key (the
// relation spec plus the lexicographically ordered canonical term keys) with
// the request budgets appended. Sharing ledger.PairKey here is what lets a
// warm-start replay rebuild exactly this key from a persisted record.
func verdictCacheKey(rel string, weak bool, maxPairs, maxClosure, maxSubs int, kp, kq string) string {
	return budgetKey(ledger.PairKey(rel, weak, kp, kq), maxPairs, maxClosure, maxSubs)
}

// budgetKey appends the budget axes onto a canonical pair key.
func budgetKey(pairKey string, maxPairs, maxClosure, maxSubs int) string {
	return fmt.Sprintf("%s|%d|%d|%d", pairKey, maxPairs, maxClosure, maxSubs)
}

// get returns the cached verdict and bumps its recency, counting the
// hit/miss against the (relation, mode) class.
func (c *verdictCache) get(key, rel string, weak bool) (EquivResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		c.relMisses[newRelMode(rel, weak)]++
		return EquivResponse{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	c.relHits[newRelMode(rel, weak)]++
	return el.Value.(*cacheEntry).resp, true
}

// put stores a conclusive verdict, evicting the least recently used entry
// when full.
func (c *verdictCache) put(key string, resp EquivResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	if c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// relCounts snapshots the per-(relation, mode) hit/miss counters.
func (c *verdictCache) relCounts() (hits, misses map[relMode]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hits = make(map[relMode]uint64, len(c.relHits))
	for k, v := range c.relHits {
		hits[k] = v
	}
	misses = make(map[relMode]uint64, len(c.relMisses))
	for k, v := range c.relMisses {
		misses[k] = v
	}
	return hits, misses
}

func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
