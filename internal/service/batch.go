package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bpi/internal/cluster"
)

// maxBatchBodyBytes bounds a batch request body; individual terms inside it
// are still bounded by Config.MaxTermBytes.
const maxBatchBodyBytes = 8 << 20

// handleBatch serves POST /v1/equiv/batch: many pairs, one request, one
// NDJSON response stream. The contract, pinned by tests:
//
//   - admission runs per pair, upfront, in index order — so under load the
//     batch sheds a deterministic suffix of its admission attempts, and a
//     shed pair is reported as a typed item (429-class error body with
//     retry_after_sec), never silently dropped;
//   - admitted pairs execute concurrently on the worker pool (routed to
//     their owning peers in multi-node mode) and stream back in completion
//     order, each tagged with its request index;
//   - the final line is a done=true trailer with the batch accounting; a
//     stream without it was truncated by a transport failure.
//
// The handler is raw (not instrument-wrapped) because it streams; it does
// its own request accounting under the "/v1/equiv/batch" endpoint label.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := "ok"
	defer func() { s.metrics.observe("/v1/equiv/batch", code, time.Since(start)) }()

	failNow := func(eb *ErrorBody) {
		code = eb.Code
		status, body := fail(eb)
		w.Header().Set("Content-Type", "application/json")
		if eb.RetryAfterSec > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(eb.RetryAfterSec))
		}
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(body)
	}

	var req BatchRequest
	if eb := decodeLimit(r, &req, maxBatchBodyBytes); eb != nil {
		failNow(eb)
		return
	}
	if len(req.Pairs) == 0 {
		failNow(&ErrorBody{Code: CodeInvalidRequest, Message: "batch has no pairs"})
		return
	}
	if max := s.cfg.batchMax(); len(req.Pairs) > max {
		failNow(&ErrorBody{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("batch has %d pairs (limit %d)", len(req.Pairs), max)})
		return
	}

	// Upfront admission, index order. Each admitted pair holds its queue
	// slot until its release below; shed pairs are decided right here.
	type admitted struct {
		release func(time.Duration)
		eb      *ErrorBody
	}
	draining := s.isClosed()
	adms := make([]admitted, len(req.Pairs))
	shed := 0
	for i := range req.Pairs {
		rel, sh := s.admission.Admit(s.timeout(req.Pairs[i].TimeoutMs), draining)
		if sh != nil {
			adms[i].eb = shedError(sh)
			shed++
			continue
		}
		adms[i].release = rel
	}

	finish, eb := s.beginWork()
	if eb != nil {
		// Shutdown raced in between: give back every held slot and refuse
		// the whole batch.
		for _, a := range adms {
			if a.release != nil {
				a.release(0)
			}
		}
		failNow(eb)
		return
	}
	defer finish()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	var wmu sync.Mutex
	writeLine := func(v any) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(v)
		if fl != nil {
			fl.Flush()
		}
	}

	allowRemote := r.Header.Get(cluster.ForwardedHeader) == ""
	if !allowRemote {
		s.clusterForwarded.Add(1)
	}
	var succeeded, failed, remote atomic.Int64
	var wg sync.WaitGroup
	for i := range req.Pairs {
		if adms[i].eb != nil {
			writeLine(BatchItem{Index: i, Error: adms[i].eb})
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var served time.Duration
			defer func() { adms[i].release(served) }()
			if eb := s.acquireSlot(r.Context()); eb != nil {
				failed.Add(1)
				writeLine(BatchItem{Index: i, Error: eb})
				return
			}
			defer s.releaseSlot()
			t0 := time.Now()
			var resp *EquivResponse
			var eb *ErrorBody
			if allowRemote {
				resp, eb = s.runEquivRouted(r.Context(), &req.Pairs[i], s.obs)
			} else {
				resp, eb = s.runEquiv(r.Context(), &req.Pairs[i], s.obs)
			}
			served = time.Since(t0)
			if eb != nil {
				failed.Add(1)
				writeLine(BatchItem{Index: i, Error: eb})
				return
			}
			if resp.Peer != "" {
				remote.Add(1)
			}
			succeeded.Add(1)
			writeLine(BatchItem{Index: i, Equiv: resp})
		}(i)
	}
	wg.Wait()
	writeLine(BatchTrailer{
		Done:      true,
		Total:     len(req.Pairs),
		Succeeded: int(succeeded.Load()),
		Failed:    int(failed.Load()),
		Shed:      shed,
		Remote:    int(remote.Load()),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}
