package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	bpi "bpi"
	"bpi/internal/service"
)

// The /v1/equiv/batch wire contract: NDJSON items tagged with the request
// index, per-pair typed errors that never poison their neighbours, a
// mandatory done=true trailer with honest accounting, and whole-batch
// refusals (empty, oversized) as standard error envelopes.

func TestBatchRoundTrip(t *testing.T) {
	_, _, cl := newTestServer(t, service.Config{Workers: 2})
	pairs := []bpi.EquivRequest{
		{P: "a! | b!", Q: "a!.b! + b!.a!", Rel: service.RelLabelled, TimeoutMs: 30000},
		{P: "tau.a!", Q: "a!", Rel: service.RelLabelled, Weak: true, TimeoutMs: 30000},
		{P: "a!", Q: "b!", Rel: service.RelLabelled, TimeoutMs: 30000},
		{P: "a!.b!", Q: "a!.b!", Rel: service.RelLabelled, Cert: true, TimeoutMs: 30000},
	}
	wantRelated := []bool{true, true, false, true}

	res, err := cl.Batch(context.Background(), bpi.BatchRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trailer
	if !tr.Done || tr.Total != len(pairs) || tr.Succeeded != len(pairs) || tr.Failed != 0 || tr.Shed != 0 {
		t.Fatalf("trailer %+v, want %d clean verdicts", tr, len(pairs))
	}
	if tr.Remote != 0 {
		t.Errorf("single-node batch reports %d remote verdicts", tr.Remote)
	}
	if len(res.Items) != len(pairs) {
		t.Fatalf("%d items, want %d", len(res.Items), len(pairs))
	}
	for i, it := range res.Items {
		if it.Index != i {
			t.Fatalf("item %d carries index %d after client reordering", i, it.Index)
		}
		if it.Error != nil || it.Equiv == nil {
			t.Fatalf("item %d: %+v, want a verdict", i, it)
		}
		if it.Equiv.Related != wantRelated[i] {
			t.Errorf("item %d: related=%t, want %t", i, it.Equiv.Related, wantRelated[i])
		}
		if (it.Equiv.Certificate != nil) != pairs[i].Cert {
			t.Errorf("item %d: certificate presence %t, requested %t",
				i, it.Equiv.Certificate != nil, pairs[i].Cert)
		}
	}

	// The identical batch again: every verdict must now come from the cache.
	res2, err := cl.Batch(context.Background(), bpi.BatchRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range res2.Items {
		if it.Equiv == nil || !it.Equiv.Cached {
			t.Errorf("repeat item %d not served from the verdict cache: %+v", i, it)
		}
		if it.Equiv != nil && it.Equiv.Related != wantRelated[i] {
			t.Errorf("repeat item %d: cached verdict drifted to related=%t", i, it.Equiv.Related)
		}
	}
}

// TestBatchPerPairErrors: a malformed pair yields a typed item error at its
// index; the healthy pairs around it still get verdicts, and the trailer
// splits the accounting.
func TestBatchPerPairErrors(t *testing.T) {
	_, _, cl := newTestServer(t, service.Config{Workers: 2})
	pairs := []bpi.EquivRequest{
		{P: "a!.b!", Q: "a!.b!", Rel: service.RelLabelled, TimeoutMs: 30000},
		{P: "((", Q: "a!", Rel: service.RelLabelled, TimeoutMs: 30000}, // parse error
		{P: "a!", Q: "b!", Rel: "no-such-relation", TimeoutMs: 30000},  // bad relation
		{P: "c!.d!", Q: "c!.d!", Rel: service.RelLabelled, TimeoutMs: 30000},
	}
	res, err := cl.Batch(context.Background(), bpi.BatchRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trailer
	if tr.Total != 4 || tr.Succeeded != 2 || tr.Failed != 2 || tr.Shed != 0 {
		t.Fatalf("trailer %+v, want total=4 succeeded=2 failed=2 shed=0", tr)
	}
	for _, i := range []int{0, 3} {
		if res.Items[i].Equiv == nil || !res.Items[i].Equiv.Related {
			t.Errorf("healthy item %d poisoned by a failing neighbour: %+v", i, res.Items[i])
		}
	}
	if e := res.Items[1].Error; e == nil || e.Code != service.CodeParseError {
		t.Errorf("item 1: %+v, want parse_error", res.Items[1])
	}
	if e := res.Items[2].Error; e == nil || e.Code != service.CodeInvalidRequest {
		t.Errorf("item 2: %+v, want invalid_request", res.Items[2])
	}
}

// TestBatchWholeRefusals: empty and oversized batches are refused upfront
// with a standard error envelope — no stream, no partial work.
func TestBatchWholeRefusals(t *testing.T) {
	_, ts, cl := newTestServer(t, service.Config{Workers: 1, BatchMax: 3})

	if _, err := cl.Batch(context.Background(), bpi.BatchRequest{}); err == nil {
		t.Error("empty batch accepted")
	} else if apiErr, ok := err.(*bpi.APIError); !ok || apiErr.Code != service.CodeInvalidRequest {
		t.Errorf("empty batch: %v, want typed invalid_request", err)
	}

	over := bpi.BatchRequest{}
	for i := 0; i < 4; i++ {
		over.Pairs = append(over.Pairs, bpi.EquivRequest{P: "a!", Q: "a!", Rel: service.RelLabelled})
	}
	if _, err := cl.Batch(context.Background(), over); err == nil {
		t.Error("oversized batch accepted")
	} else if apiErr, ok := err.(*bpi.APIError); !ok || apiErr.Code != service.CodeInvalidRequest {
		t.Errorf("oversized batch: %v, want typed invalid_request", err)
	} else if !strings.Contains(apiErr.Message, "limit 3") {
		t.Errorf("oversized batch message %q does not name the limit", apiErr.Message)
	}

	resp, body := post(t, ts, "/v1/equiv/batch", `{"pairs": [`)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != service.CodeInvalidRequest {
		t.Errorf("bad JSON: status %d body %s, want 400 invalid_request", resp.StatusCode, body)
	}
}

// TestBatchStreamShape reads the raw NDJSON: correct content type, one
// valid JSON object per line, items before the single done=true trailer,
// nothing after it.
func TestBatchStreamShape(t *testing.T) {
	_, ts, _ := newTestServer(t, service.Config{Workers: 2})
	body := `{"pairs":[
		{"p":"a!.b!","q":"a!.b!","rel":"labelled","timeout_ms":30000},
		{"p":"a!","q":"b!","rel":"labelled","timeout_ms":30000}]}`
	resp, err := http.Post(ts.URL+"/v1/equiv/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("%d stream lines, want 2 items + 1 trailer", len(lines))
	}
	seen := map[int]bool{}
	for _, line := range lines[:2] {
		var item service.BatchItem
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("item line %q: %v", line, err)
		}
		if item.Equiv == nil || seen[item.Index] {
			t.Fatalf("item line %q: missing verdict or duplicate index", line)
		}
		seen[item.Index] = true
	}
	var trailer service.BatchTrailer
	if err := json.Unmarshal([]byte(lines[2]), &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.Total != 2 || trailer.Succeeded != 2 {
		t.Errorf("trailer %+v, want done=true total=2 succeeded=2", trailer)
	}
}
