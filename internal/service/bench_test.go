package service_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"

	bpi "bpi"
	"bpi/internal/service"
)

// BenchmarkServiceThroughput measures end-to-end daemon throughput: parallel
// clients firing the mixed corpus over HTTP against one shared-store daemon.
// The verdict cache is deliberately in play — this is the steady-state an
// interactive daemon serves. When BENCH_SERVICE_JSON names a file, a summary
// is written there (CI uploads it as an artifact).
func BenchmarkServiceThroughput(b *testing.B) {
	srv := service.New(service.Config{Workers: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx := context.Background()
	// Warm the store and the verdict cache once so every measured iteration
	// sees the steady state.
	warm := bpi.NewClient(ts.URL)
	for _, pr := range raceCorpus {
		if _, err := warm.Equiv(ctx, bpi.EquivRequest{P: pr.p, Q: pr.q, Rel: pr.rel}); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cl := bpi.NewClient(ts.URL)
		i := 0
		for pb.Next() {
			pr := raceCorpus[i%len(raceCorpus)]
			i++
			if _, err := cl.Equiv(ctx, bpi.EquivRequest{P: pr.p, Q: pr.q, Rel: pr.rel}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	qps := 0.0
	if elapsed > 0 {
		qps = float64(b.N) / elapsed
	}
	b.ReportMetric(qps, "queries/s")

	if path := os.Getenv("BENCH_SERVICE_JSON"); path != "" {
		st := srv.Store().Stats()
		summary := map[string]any{
			"benchmark":         "BenchmarkServiceThroughput",
			"queries":           b.N,
			"seconds":           elapsed,
			"queries_per_sec":   qps,
			"store_terms":       st.Terms,
			"derivation_hits":   st.DerivationHits,
			"derivation_misses": st.DerivationMisses,
		}
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
