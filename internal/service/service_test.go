package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	bpi "bpi"
	"bpi/internal/service"
)

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server, *bpi.Client) {
	t.Helper()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, bpi.NewClient(ts.URL)
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.String()
}

func errCode(t *testing.T, body string) string {
	t.Helper()
	var er struct {
		Error service.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatalf("not an error envelope: %s", body)
	}
	return er.Error.Code
}

// TestHandlerValidation table-tests the typed error surface: bad JSON,
// missing and oversized terms, parse errors, unknown relations, unknown
// schedulers, bad job payloads.
func TestHandlerValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, service.Config{MaxTermBytes: 128})
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantCode         string
	}{
		{"bad json", "/v1/equiv", `{"p": "a!"`, http.StatusBadRequest, service.CodeInvalidRequest},
		{"unknown field", "/v1/equiv", `{"p":"a!","q":"a!","rel":"labelled","bogus":1}`,
			http.StatusBadRequest, service.CodeInvalidRequest},
		{"missing term", "/v1/equiv", `{"q":"a!","rel":"labelled"}`,
			http.StatusBadRequest, service.CodeInvalidRequest},
		{"parse error", "/v1/equiv", `{"p":"a!(","q":"a!","rel":"labelled"}`,
			http.StatusBadRequest, service.CodeParseError},
		{"unknown relation", "/v1/equiv", `{"p":"a!","q":"a!","rel":"telepathic"}`,
			http.StatusBadRequest, service.CodeInvalidRequest},
		{"oversized term", "/v1/equiv",
			`{"p":"` + strings.Repeat("a!.", 200) + `0","q":"a!","rel":"labelled"}`,
			http.StatusRequestEntityTooLarge, service.CodeTermTooLarge},
		{"parse endpoint parse error", "/v1/parse", `{"term":"))"}`,
			http.StatusBadRequest, service.CodeParseError},
		{"step missing term", "/v1/step", `{}`,
			http.StatusBadRequest, service.CodeInvalidRequest},
		{"run unknown scheduler", "/v1/run", `{"term":"a!","scheduler":"lifo"}`,
			http.StatusBadRequest, service.CodeInvalidRequest},
		{"job unknown kind", "/v1/jobs", `{"kind":"dance"}`,
			http.StatusBadRequest, service.CodeInvalidRequest},
		{"job missing payload", "/v1/jobs", `{"kind":"equiv"}`,
			http.StatusBadRequest, service.CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d want %d (%s)", resp.StatusCode, tc.wantStatus, body)
			}
			if got := errCode(t, body); got != tc.wantCode {
				t.Fatalf("code = %q want %q (%s)", got, tc.wantCode, body)
			}
		})
	}
	// Unknown job ID.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status = %d want 404", resp.StatusCode)
	}
}

// TestEndpointsHappyPath exercises each endpoint once through the client.
func TestEndpointsHappyPath(t *testing.T) {
	_, _, cl := newTestServer(t, service.Config{})
	ctx := context.Background()

	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	pr, err := cl.ParseRemote(ctx, "a!(b) | 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.FreeNames) != 2 {
		t.Fatalf("free names of a!(b): %v", pr.FreeNames)
	}
	st, err := cl.Step(ctx, "a!(b) | a?(x).x!")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Transitions) == 0 {
		t.Fatal("expected transitions")
	}
	ex, err := cl.ExploreRemote(ctx, bpi.ExploreRequest{Term: "a!.b!.0", AutonomousOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if ex.States < 3 {
		t.Fatalf("explore states = %d", ex.States)
	}
	// S3 idempotence holds up to strong bisimilarity.
	eq, err := cl.Equiv(ctx, bpi.EquivRequest{P: "a! + a!", Q: "a!", Rel: service.RelLabelled})
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Related {
		t.Fatalf("a!+a! ~ a! expected related: %+v", eq)
	}
	// Distinct outputs are not one-step equivalent.
	os1, err := cl.Equiv(ctx, bpi.EquivRequest{P: "a!", Q: "b!", Rel: service.RelOneStep})
	if err != nil {
		t.Fatal(err)
	}
	if os1.Related {
		t.Fatal("a! ~+ b! expected NOT related")
	}
	pv, err := cl.Prove(ctx, bpi.ProveRequest{P: "a! + a!", Q: "a!"})
	if err != nil {
		t.Fatal(err)
	}
	if !pv.Proved {
		t.Fatal("A ⊢ a!+a! = a! expected provable (S3)")
	}
	rn, err := cl.RunRemote(ctx, bpi.RunRequest{Term: "a!.b!.0", KeepTrace: true, StopOn: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if !rn.Stopped || rn.StopEvent == nil || !strings.HasPrefix(rn.StopEvent.Act, "b!") {
		t.Fatalf("run: %+v", rn)
	}

	// Async job round-trip.
	id, err := cl.Submit(ctx, bpi.JobRequest{Kind: service.JobEquiv,
		Equiv: &bpi.EquivRequest{P: "a?.b!", Q: "a?.b!", Rel: service.RelBarbed}})
	if err != nil {
		t.Fatal(err)
	}
	jst, err := cl.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if jst.State != service.JobDone || jst.Equiv == nil || !jst.Equiv.Related {
		t.Fatalf("job: %+v", jst)
	}
}

// TestVerdictCacheAndMetrics repeats one query and checks (a) the second
// answer is served from the verdict cache and (b) /metrics reports a
// non-zero hit rate and the store gauges.
func TestVerdictCacheAndMetrics(t *testing.T) {
	_, _, cl := newTestServer(t, service.Config{})
	ctx := context.Background()
	req := bpi.EquivRequest{P: "a?(x).x!", Q: "a?(y).y!", Rel: service.RelLabelled}
	first, err := cl.Equiv(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query cannot be cached")
	}
	second, err := cl.Equiv(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical query must hit the verdict cache")
	}
	if second.Related != first.Related {
		t.Fatal("cache changed the verdict")
	}
	// Symmetric orientation also hits (all relations are symmetric).
	swapped, err := cl.Equiv(ctx, bpi.EquivRequest{P: req.Q, Q: req.P, Rel: req.Rel})
	if err != nil {
		t.Fatal(err)
	}
	if !swapped.Cached {
		t.Fatal("swapped-orientation query must hit the verdict cache")
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bpid_verdict_cache_hits_total 2",
		"bpid_store_terms",
		"bpid_requests_total{endpoint=\"/v1/equiv\",code=\"ok\"} 3",
		"bpid_request_seconds_bucket",
		"bpid_workers{state=\"total\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	if strings.Contains(text, "bpid_verdict_cache_hit_rate 0\n") {
		t.Error("hit rate should be non-zero after repeated queries")
	}
}

// TestDeadlineTypedTimeout sends an expensive pair with a 50ms deadline and
// a pair budget far beyond reach: the daemon must answer 504 with code
// deadline_exceeded — not hang, and not claim budget exhaustion.
func TestDeadlineTypedTimeout(t *testing.T) {
	_, _, cl := newTestServer(t, service.Config{})
	start := time.Now()
	_, err := cl.Equiv(context.Background(), bpi.EquivRequest{
		P:         "(rec G(a). a?(x).(x! | G(a)))(a)",
		Q:         "(rec H(b). b?(y).(y! | H(b)))(a) + c!",
		Rel:       service.RelLabelled,
		MaxPairs:  1 << 30,
		TimeoutMs: 50,
	})
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	apiErr, ok := err.(*bpi.APIError)
	if !ok {
		t.Fatalf("expected *bpi.APIError, got %T: %v", err, err)
	}
	if apiErr.Code != service.CodeDeadline {
		t.Fatalf("code = %q want %q", apiErr.Code, service.CodeDeadline)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline took %s to fire", elapsed)
	}
}

// TestBudgetTypedError checks budget exhaustion keeps its own code.
func TestBudgetTypedError(t *testing.T) {
	_, _, cl := newTestServer(t, service.Config{})
	_, err := cl.Equiv(context.Background(), bpi.EquivRequest{
		P:        "(rec G(a). a?(x).(x! | G(a)))(a)",
		Q:        "(rec H(b). b?(y).(y! | H(b)))(a) + c!",
		Rel:      service.RelLabelled,
		MaxPairs: 16,
	})
	apiErr, ok := err.(*bpi.APIError)
	if !ok {
		t.Fatalf("expected *bpi.APIError, got %T: %v", err, err)
	}
	if apiErr.Code != service.CodeBudgetExhausted {
		t.Fatalf("code = %q want %q", apiErr.Code, service.CodeBudgetExhausted)
	}
}

// TestGracefulShutdownDrains submits a job, then shuts the server down: the
// drain must wait for the job to finish, and new work must be refused with
// shutting_down while the result stays pollable in the job table.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, _, cl := newTestServer(t, service.Config{Workers: 2})
	ctx := context.Background()
	// A run long enough to still be in flight when Shutdown starts, short
	// enough to finish well inside the drain budget.
	id, err := cl.Submit(ctx, bpi.JobRequest{Kind: service.JobRun,
		Run: &bpi.RunRequest{Term: "(rec T(a). a!.T(a))(tick)", MaxSteps: 30000, TimeoutMs: 10000}})
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	// After the drain returns, the job must be finished.
	st, err := cl.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.JobDone {
		t.Fatalf("drained job state = %s want done (%+v)", st.State, st)
	}
	if st.Run == nil || st.Run.Steps != 30000 {
		t.Fatalf("drained job result: %+v", st.Run)
	}
	// A new query is shed by admission with the retryable draining cause
	// (429 + Retry-After) — the cluster-aware refusal, distinct from the
	// terminal shutting_down below.
	_, err = cl.Equiv(ctx, bpi.EquivRequest{P: "a!", Q: "a!", Rel: service.RelLabelled})
	apiErr, ok := err.(*bpi.APIError)
	if !ok || apiErr.Code != service.CodeDraining {
		t.Fatalf("expected draining, got %v", err)
	}
	if apiErr.RetryAfterSec < 1 {
		t.Fatalf("draining shed carries no Retry-After hint: %+v", apiErr)
	}
	_, err = cl.Submit(ctx, bpi.JobRequest{Kind: service.JobEquiv,
		Equiv: &bpi.EquivRequest{P: "a!", Q: "a!", Rel: service.RelLabelled}})
	apiErr, ok = err.(*bpi.APIError)
	if !ok || apiErr.Code != service.CodeShuttingDown {
		t.Fatalf("expected shutting_down on submit, got %v", err)
	}
}

// TestQueueFull checks the job queue depth is enforced with a typed error.
func TestQueueFull(t *testing.T) {
	_, _, cl := newTestServer(t, service.Config{Workers: 1, QueueDepth: 2})
	ctx := context.Background()
	// Fill the queue with slow runs (they hold the single worker slot).
	slow := &bpi.RunRequest{Term: "(rec T(a). a!.T(a))(tick)", MaxSteps: 1 << 20, TimeoutMs: 5000}
	for i := 0; i < 2; i++ {
		if _, err := cl.Submit(ctx, bpi.JobRequest{Kind: service.JobRun, Run: slow}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := cl.Submit(ctx, bpi.JobRequest{Kind: service.JobRun, Run: slow})
	apiErr, ok := err.(*bpi.APIError)
	if !ok || apiErr.Code != service.CodeQueueFull {
		t.Fatalf("expected queue_full, got %v", err)
	}
}
