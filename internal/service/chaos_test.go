package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	bpi "bpi"
	"bpi/internal/cert"
	"bpi/internal/cluster"
	"bpi/internal/ledger"
	"bpi/internal/parser"
	"bpi/internal/service"
	"bpi/internal/syntax"
)

// The chaos suite: a two-node cluster where the peer that OWNS the queried
// pair is faulty — dead, hanging, or actively lying. The fail-closed
// contract under test: the victim node must always return the correct
// verdict (by local fallback), must never cache anything a faulty peer
// said, and must account the failure on the right bpid_cluster_* counter.

// startVictimNode boots a real service on a pre-bound loopback listener so
// its own URL can appear in its peer list next to the (faulty) peer.
func startVictimNode(t *testing.T, peerURL string) (*service.Server, *bpi.Client, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + lis.Addr().String()
	srv := service.New(service.Config{
		Workers:     2,
		Peers:       []string{self, peerURL},
		SelfURL:     self,
		PeerTimeout: 250 * time.Millisecond,
	})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
		hs.Close()
	})
	return srv, bpi.NewClient(self), self
}

// pairOwnedByPeer searches deterministic candidate terms for one whose
// canonical pair key rendezvous-hashes to the peer, so every scenario is
// guaranteed to exercise the remote dispatch path. The pair is (p, p):
// trivially related, so the correct verdict is known without an oracle.
func pairOwnedByPeer(t *testing.T, self, peer string, weak bool) string {
	t.Helper()
	r, err := cluster.NewRouter(self, []string{self, peer})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		src := fmt.Sprintf("c%d!.d%d!", i, i)
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		k := syntax.Key(syntax.Simplify(p))
		if r.Owner(ledger.PairKey(service.RelLabelled, weak, k, k)) == peer {
			return src
		}
	}
	t.Fatal("no candidate pair owned by the peer in 256 draws")
	return ""
}

// refusedPeer returns a URL whose listener is already closed: every dial
// gets connection refused — the killed-peer scenario.
func refusedPeer(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + lis.Addr().String()
	lis.Close()
	return url
}

// lorisPeer accepts the request and then hangs without answering until the
// caller gives up — the slow-loris scenario (the victim's PeerTimeout must
// cut the dispatch, not the test's patience).
func lorisPeer(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Well past the victim's 250ms PeerTimeout; the second arm bounds
		// server teardown when the aborted connection is slow to surface.
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// tamperingPeer proxies /v1/equiv to an honest backing node and lets the
// scenario mutate the (verdict, certificate) response before the victim
// sees it — the compromised-peer scenarios.
func tamperingPeer(t *testing.T, backingURL string, tamper func(*service.EquivResponse)) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		resp, err := http.Post(backingURL+r.URL.Path, "application/json", bytes.NewReader(body))
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		var er service.EquivResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		tamper(&er)
		out, err := json.Marshal(er)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// spareCert computes an honest certificate for an unrelated pair — raw
// material for the wrong-pair replay scenario.
func spareCert(t *testing.T, cl *bpi.Client) *cert.Certificate {
	t.Helper()
	resp, err := cl.Equiv(context.Background(), bpi.EquivRequest{
		P: "spare!.x!", Q: "spare!.x!", Rel: service.RelLabelled,
		Cert: true, TimeoutMs: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Certificate == nil {
		t.Fatal("backing node returned no certificate")
	}
	return resp.Certificate
}

func TestClusterChaosFailClosed(t *testing.T) {
	// One honest backing node feeds all tampering proxies.
	backing, backingTS, backingCl := newTestServer(t, service.Config{Workers: 1})
	_ = backing
	scenarios := []struct {
		name string
		peer func(t *testing.T) string
		// Exactly one of these counters must move, by exactly one.
		wantRemoteFail bool
		wantCertReject bool
	}{
		{
			name:           "connection-refused",
			peer:           refusedPeer,
			wantRemoteFail: true,
		},
		{
			name:           "slow-loris",
			peer:           lorisPeer,
			wantRemoteFail: true,
		},
		{
			name: "tampered-cert-bytes",
			peer: func(t *testing.T) string {
				return tamperingPeer(t, backingTS.URL, func(er *service.EquivResponse) {
					// Corrupt the evidence, not the claims: verdict and
					// certificate still agree, but the replay is broken.
					if er.Certificate != nil && len(er.Certificate.Terms) > 0 {
						er.Certificate.Terms[0] = "tampered("
					}
				})
			},
			wantCertReject: true,
		},
		{
			name: "lying-verdict",
			peer: func(t *testing.T) string {
				return tamperingPeer(t, backingTS.URL, func(er *service.EquivResponse) {
					// The peer flips the verdict but cannot forge matching
					// evidence: certificate/verdict mismatch.
					er.Related = !er.Related
				})
			},
			wantCertReject: true,
		},
		{
			name: "wrong-pair-certificate",
			peer: func(t *testing.T) string {
				spare := spareCert(t, backingCl)
				return tamperingPeer(t, backingTS.URL, func(er *service.EquivResponse) {
					// A perfectly valid proof — about some other pair.
					er.Certificate = spare
				})
			},
			wantCertReject: true,
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			peerURL := sc.peer(t)
			srv, cl, self := startVictimNode(t, peerURL)
			src := pairOwnedByPeer(t, self, peerURL, false)
			req := bpi.EquivRequest{P: src, Q: src, Rel: service.RelLabelled, TimeoutMs: 30000}

			resp, err := cl.Equiv(context.Background(), req)
			if err != nil {
				t.Fatalf("faulty peer leaked as an error: %v", err)
			}
			if !resp.Related {
				t.Fatalf("wrong verdict under %s: p ~ p came back unrelated", sc.name)
			}
			if resp.Peer != "" {
				t.Fatalf("verdict attributed to peer %q, want local fallback", resp.Peer)
			}
			cs := srv.Cluster()
			if cs.RemoteOK != 0 {
				t.Errorf("RemoteOK = %d, want 0 (nothing acceptable came from the peer)", cs.RemoteOK)
			}
			if cs.LocalFallback != 1 {
				t.Errorf("LocalFallback = %d, want 1", cs.LocalFallback)
			}
			if got, want := cs.RemoteFail, boolCount(sc.wantRemoteFail); got != want {
				t.Errorf("RemoteFail = %d, want %d", got, want)
			}
			if got, want := cs.CertRejected, boolCount(sc.wantCertReject); got != want {
				t.Errorf("CertRejected = %d, want %d", got, want)
			}

			// Nothing the faulty peer said may have been cached: the
			// repeat query must hit the cache and still be correct.
			resp2, err := cl.Equiv(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if !resp2.Cached || !resp2.Related || resp2.Peer != "" {
				t.Fatalf("repeat query: cached=%t related=%t peer=%q, want cached local truth",
					resp2.Cached, resp2.Related, resp2.Peer)
			}
			if cs2 := srv.Cluster(); cs2 != cs {
				t.Errorf("cache hit moved cluster counters: %+v -> %+v", cs, cs2)
			}
		})
	}
}

func boolCount(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TestClusterChaosMidBatch kills the owning peer for a whole batch: every
// pair the dead peer owned falls back locally, no item errors, and the
// trailer reports zero remote-served pairs.
func TestClusterChaosMidBatch(t *testing.T) {
	peerURL := refusedPeer(t)
	srv, cl, self := startVictimNode(t, peerURL)
	router, err := cluster.NewRouter(self, []string{self, peerURL})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []bpi.EquivRequest
	owned := 0
	for i := 0; i < 64 && len(pairs) < 8; i++ {
		src := fmt.Sprintf("m%d!.n%d!", i, i)
		p, perr := parser.Parse(src)
		if perr != nil {
			t.Fatal(perr)
		}
		k := syntax.Key(syntax.Simplify(p))
		if router.Owner(ledger.PairKey(service.RelLabelled, false, k, k)) == peerURL {
			owned++
		}
		pairs = append(pairs, bpi.EquivRequest{P: src, Q: src, Rel: service.RelLabelled, TimeoutMs: 30000})
	}
	if owned == 0 {
		t.Fatal("no batch pair owned by the dead peer; widen the candidate set")
	}
	res, err := cl.Batch(context.Background(), bpi.BatchRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trailer.Succeeded != len(pairs) || res.Trailer.Failed != 0 || res.Trailer.Shed != 0 {
		t.Fatalf("trailer %+v, want all %d succeeded", res.Trailer, len(pairs))
	}
	if res.Trailer.Remote != 0 {
		t.Errorf("trailer counts %d remote-served pairs with a dead peer", res.Trailer.Remote)
	}
	for _, it := range res.Items {
		if it.Error != nil || it.Equiv == nil || !it.Equiv.Related || it.Equiv.Peer != "" {
			t.Fatalf("item %d: %+v, want correct local verdict", it.Index, it)
		}
	}
	cs := srv.Cluster()
	if cs.RemoteFail != uint64(owned) || cs.LocalFallback != uint64(owned) {
		t.Errorf("RemoteFail=%d LocalFallback=%d, want both %d (pairs owned by the dead peer)",
			cs.RemoteFail, cs.LocalFallback, owned)
	}
	if cs.CertRejected != 0 || cs.RemoteOK != 0 {
		t.Errorf("CertRejected=%d RemoteOK=%d, want 0/0", cs.CertRejected, cs.RemoteOK)
	}
}

// TestClusterHealthyPeerAccepted is the chaos suite's control: with an
// honest (proxied but untampered) peer, the remote verdict IS accepted,
// attributed, counted on RemoteOK — and the victim caches it.
func TestClusterHealthyPeerAccepted(t *testing.T) {
	_, backingTS, _ := newTestServer(t, service.Config{Workers: 1})
	peerURL := tamperingPeer(t, backingTS.URL, func(*service.EquivResponse) {})
	srv, cl, self := startVictimNode(t, peerURL)
	src := pairOwnedByPeer(t, self, peerURL, false)
	req := bpi.EquivRequest{P: src, Q: src, Rel: service.RelLabelled, TimeoutMs: 30000}

	resp, err := cl.Equiv(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Related || resp.Peer != peerURL {
		t.Fatalf("related=%t peer=%q, want remote-accepted verdict from %s", resp.Related, resp.Peer, peerURL)
	}
	cs := srv.Cluster()
	if cs.RemoteOK != 1 || cs.RemoteFail != 0 || cs.CertRejected != 0 || cs.LocalFallback != 0 {
		t.Errorf("counters %+v, want exactly one accepted remote verdict", cs)
	}
	resp2, err := cl.Equiv(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || !resp2.Related {
		t.Fatalf("repeat query: cached=%t related=%t, want the accepted verdict cached", resp2.Cached, resp2.Related)
	}
}
