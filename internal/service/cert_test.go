package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"bpi/internal/cert"
	"bpi/internal/service"
)

// TestEquivCertificates exercises the daemon's certificate surface: every
// relation returns a verifying certificate when asked, the cached path
// replays the recorded one, and requests without the flag stay lean.
func TestEquivCertificates(t *testing.T) {
	_, _, client := newTestServer(t, service.Config{})
	ctx := context.Background()

	for _, rel := range []string{
		service.RelLabelled, service.RelBarbed, service.RelStep,
		service.RelOneStep, service.RelCongruence,
	} {
		for _, weak := range []bool{false, true} {
			req := service.EquivRequest{P: "tau.a!", Q: "a!", Rel: rel, Weak: weak, Cert: true}
			resp, err := client.Equiv(ctx, req)
			if err != nil {
				t.Fatalf("%s weak=%v: %v", rel, weak, err)
			}
			if resp.Certificate == nil {
				t.Fatalf("%s weak=%v: no certificate in response", rel, weak)
			}
			if resp.Certificate.Related != resp.Related {
				t.Fatalf("%s weak=%v: certificate verdict %v, response says %v",
					rel, weak, resp.Certificate.Related, resp.Related)
			}
			if err := cert.Verify(resp.Certificate); err != nil {
				t.Fatalf("%s weak=%v: certificate rejected: %v", rel, weak, err)
			}

			// The cached path must return the recorded certificate.
			again, err := client.Equiv(ctx, req)
			if err != nil {
				t.Fatalf("%s weak=%v cached: %v", rel, weak, err)
			}
			if !again.Cached || again.Certificate == nil {
				t.Fatalf("%s weak=%v: cached=%v cert=%v, want cached certificate",
					rel, weak, again.Cached, again.Certificate != nil)
			}
			if err := cert.Verify(again.Certificate); err != nil {
				t.Fatalf("%s weak=%v: cached certificate rejected: %v", rel, weak, err)
			}

			// Without the flag the response is lean even on a cache hit.
			req.Cert = false
			lean, err := client.Equiv(ctx, req)
			if err != nil {
				t.Fatalf("%s weak=%v lean: %v", rel, weak, err)
			}
			if lean.Certificate != nil {
				t.Fatalf("%s weak=%v: certificate returned without cert flag", rel, weak)
			}
		}
	}
}

// TestJobCertificateEndpoint pins GET /certificate/{id}: equiv jobs record
// their certificate even when the submitter did not ask for it, job polls
// stay lean, and the served certificate replays against the verifier.
func TestJobCertificateEndpoint(t *testing.T) {
	_, ts, client := newTestServer(t, service.Config{})
	ctx := context.Background()

	id, err := client.Submit(ctx, service.JobRequest{
		Kind:  service.JobEquiv,
		Equiv: &service.EquivRequest{P: "a!(b)", Q: "a!(c)", Rel: service.RelLabelled},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.JobDone || st.Equiv == nil {
		t.Fatalf("job state %s, equiv=%v", st.State, st.Equiv)
	}
	if st.Equiv.Certificate != nil {
		t.Fatal("job poll inlined the certificate")
	}
	crt, err := client.Certificate(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if crt.ID != id || crt.Rel != service.RelLabelled || crt.Weak {
		t.Fatalf("certificate header %+v", crt)
	}
	if crt.Related != st.Equiv.Related || crt.Certificate == nil {
		t.Fatalf("related=%v vs %v, cert=%v", crt.Related, st.Equiv.Related, crt.Certificate != nil)
	}
	if err := cert.Verify(crt.Certificate); err != nil {
		t.Fatalf("job certificate rejected: %v", err)
	}

	// Error surface: unknown job, and a non-equiv job.
	if _, err := client.Certificate(ctx, "job-999"); err == nil {
		t.Fatal("certificate of unknown job succeeded")
	}
	runID, err := client.Submit(ctx, service.JobRequest{
		Kind: service.JobRun,
		Run:  &service.RunRequest{Term: "tau.0", MaxSteps: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, runID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Certificate(ctx, runID); err == nil {
		t.Fatal("certificate of a run job succeeded")
	} else if ae, ok := err.(*service.ErrorBody); !ok || ae.Code != service.CodeInvalidRequest {
		t.Fatalf("run-job certificate error = %v", err)
	}
	resp, err := http.Get(ts.URL + "/certificate/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job certificate: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestCertificateStatusTaxonomy table-tests GET /certificate/{id} across
// every job lifecycle state, pinning both the HTTP status and the typed
// code: 409 pending while the job exists but has not finished, 404
// job_failed when it finished in error (terminal — retrying is pointless),
// 404 not_found for an id that never existed, 400 for a kind that never
// records certificates.
func TestCertificateStatusTaxonomy(t *testing.T) {
	_, ts, client := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	// Occupy the single worker slot with a slow run, so the next job stays
	// pending deterministically.
	slowID, err := client.Submit(ctx, service.JobRequest{
		Kind: service.JobRun,
		Run:  &service.RunRequest{Term: "(rec T(a). a!.T(a))(tick)", MaxSteps: 1 << 20, TimeoutMs: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	pendingID, err := client.Submit(ctx, service.JobRequest{
		Kind:  service.JobEquiv,
		Equiv: &service.EquivRequest{P: "a!", Q: "a!", Rel: service.RelLabelled},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A job that fails fast on a parse error, polled to completion after
	// the slot frees up (checked at the end so the slow run keeps the slot
	// busy for the pending case first).
	failedID, err := client.Submit(ctx, service.JobRequest{
		Kind:  service.JobEquiv,
		Equiv: &service.EquivRequest{P: "a!(", Q: "a!", Rel: service.RelLabelled},
	})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name, id string, wantStatus int, wantCode string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/certificate/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: HTTP %d, want %d", name, resp.StatusCode, wantStatus)
		}
		if wantCode == "" {
			return
		}
		var er struct {
			Error service.ErrorBody `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: decoding error envelope: %v", name, err)
		}
		if er.Error.Code != wantCode {
			t.Fatalf("%s: code %q, want %q", name, er.Error.Code, wantCode)
		}
	}

	// While the slot is held, the submitted equiv job is pending/running.
	check("pending job", pendingID, http.StatusConflict, service.CodePending)
	check("unknown job", "job-999", http.StatusNotFound, service.CodeNotFound)

	// Let everything finish, then pin the terminal states.
	if _, err := client.Wait(ctx, slowID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, pendingID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err := client.Wait(ctx, failedID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.JobFailed {
		t.Fatalf("parse-error job state = %s, want failed", st.State)
	}
	check("failed job", failedID, http.StatusNotFound, service.CodeJobFailed)
	check("finished job", pendingID, http.StatusOK, "")
	check("wrong kind", slowID, http.StatusBadRequest, service.CodeInvalidRequest)
}
