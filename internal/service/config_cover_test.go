package service

import (
	"testing"
	"time"
)

// The Config zero value must resolve to the documented daemon defaults —
// these are the numbers `bpid -help` promises.
func TestConfigZeroValueDefaults(t *testing.T) {
	var c Config
	if got := c.queueDepth(); got != 64 {
		t.Errorf("queueDepth = %d, want 64", got)
	}
	if got := c.defaultTimeout(); got != 10*time.Second {
		t.Errorf("defaultTimeout = %v, want 10s", got)
	}
	if got := c.maxTimeout(); got != 60*time.Second {
		t.Errorf("maxTimeout = %v, want 60s", got)
	}
	if got := c.maxTermBytes(); got != 64<<10 {
		t.Errorf("maxTermBytes = %d, want 64KiB", got)
	}
	if got := c.batchMax(); got != 256 {
		t.Errorf("batchMax = %d, want 256", got)
	}
	if got := c.admissionQueue(); got != 64 {
		t.Errorf("admissionQueue = %d, want 64", got)
	}
	if got := c.peerTimeout(); got != 2*time.Second {
		t.Errorf("peerTimeout = %v, want 2s", got)
	}
}

func TestConfigExplicitValuesHonoured(t *testing.T) {
	c := Config{
		QueueDepth: 3, DefaultTimeout: time.Second, MaxTimeout: 2 * time.Second,
		MaxTermBytes: 128, BatchMax: 9, AdmissionQueue: 5, PeerTimeout: 100 * time.Millisecond,
	}
	if c.queueDepth() != 3 || c.defaultTimeout() != time.Second || c.maxTimeout() != 2*time.Second ||
		c.maxTermBytes() != 128 || c.batchMax() != 9 || c.admissionQueue() != 5 ||
		c.peerTimeout() != 100*time.Millisecond {
		t.Errorf("explicit config not honoured: %+v", c)
	}
}

// ErrorBody doubles as the client-side Go error; its rendering is part of
// the wire contract surfaced to bpi.Client callers.
func TestErrorBodyRendering(t *testing.T) {
	e := &ErrorBody{Code: CodeQueueFull, Message: "try later"}
	if got := e.Error(); got != "bpid: queue_full: try later" {
		t.Errorf("Error() = %q", got)
	}
}
