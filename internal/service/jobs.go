package service

import (
	"context"
	"fmt"
	"sync"

	"bpi/internal/obs"
)

// jobManager owns the async job table. Submitted jobs execute on the same
// worker pool as synchronous requests (one slot each); the table keeps
// results until the process exits — the daemon serves interactive tooling,
// not an unbounded public queue, and QueueDepth bounds the unfinished set.
type jobManager struct {
	srv *Server

	mu      sync.Mutex
	nextID  uint64
	jobs    map[string]*job
	pending int // submitted but not yet finished
	depth   int
}

type job struct {
	mu     sync.Mutex
	status JobStatusResponse
	// equivReq remembers an equiv job's request so GET /certificate/{id}
	// can report the relation alongside the recorded certificate.
	equivReq *EquivRequest
	done     chan struct{}
	// trace is the job's private tracer, set when execution starts and
	// served by GET /trace/{id}. Engine spans and counters land here;
	// store-level counters stay on the daemon tracer (the store is shared).
	trace *obs.Tracer
}

func newJobManager(srv *Server, depth int) *jobManager {
	return &jobManager{srv: srv, jobs: map[string]*job{}, depth: depth}
}

// submit validates, enqueues and starts one job. The request's kind payload
// is executed on a background context bounded by the request's own timeout
// (the submitting HTTP request may return long before the job finishes).
func (m *jobManager) submit(req *JobRequest) (string, *ErrorBody) {
	switch req.Kind {
	case JobEquiv:
		if req.Equiv == nil {
			return "", &ErrorBody{Code: CodeInvalidRequest, Message: `kind "equiv" needs the equiv payload`}
		}
	case JobProve:
		if req.Prove == nil {
			return "", &ErrorBody{Code: CodeInvalidRequest, Message: `kind "prove" needs the prove payload`}
		}
	case JobRun:
		if req.Run == nil {
			return "", &ErrorBody{Code: CodeInvalidRequest, Message: `kind "run" needs the run payload`}
		}
	default:
		return "", &ErrorBody{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("unknown job kind %q (want equiv|prove|run)", req.Kind)}
	}
	finish, eb := m.srv.beginWork()
	if eb != nil {
		return "", eb
	}
	m.mu.Lock()
	if m.pending >= m.depth {
		m.mu.Unlock()
		finish()
		return "", &ErrorBody{Code: CodeQueueFull,
			Message: fmt.Sprintf("%d jobs already unfinished (queue depth %d)", m.pending, m.depth)}
	}
	m.nextID++
	id := fmt.Sprintf("job-%d", m.nextID)
	j := &job{done: make(chan struct{})}
	if req.Kind == JobEquiv {
		// Equiv jobs always record their certificate: the poller may not
		// have asked for it inline, but GET /certificate/{id} must be able
		// to serve it after the job finishes.
		er := *req.Equiv
		er.Cert = true
		req = &JobRequest{Kind: req.Kind, Equiv: &er}
		j.equivReq = &er
	}
	j.status = JobStatusResponse{ID: id, Kind: req.Kind, State: JobPending}
	m.jobs[id] = j
	m.pending++
	m.mu.Unlock()

	go m.execute(j, req, finish)
	return id, nil
}

// execute runs one job to completion on a worker-pool slot.
func (m *jobManager) execute(j *job, req *JobRequest, finish func()) {
	defer finish()
	defer func() {
		m.mu.Lock()
		m.pending--
		m.mu.Unlock()
		close(j.done)
	}()
	// The slot wait is unbounded on purpose: an accepted job is a promise,
	// and the drain in Shutdown waits for it.
	m.srv.slots <- struct{}{}
	defer m.srv.releaseSlot()

	tr := obs.NewWithLimit(4096)
	j.mu.Lock()
	j.status.State = JobRunning
	j.trace = tr
	j.mu.Unlock()

	ctx := context.Background()
	var (
		equivResp *EquivResponse
		proveResp *ProveResponse
		runResp   *RunResponse
		eb        *ErrorBody
	)
	switch req.Kind {
	case JobEquiv:
		equivResp, eb = m.srv.runEquiv(ctx, req.Equiv, tr)
	case JobProve:
		proveResp, eb = m.srv.runProve(ctx, req.Prove, tr)
	case JobRun:
		runResp, eb = m.srv.runMachine(ctx, req.Run, tr)
	}
	j.mu.Lock()
	if eb != nil {
		j.status.State = JobFailed
		j.status.Error = eb
	} else {
		j.status.State = JobDone
		j.status.Equiv, j.status.Prove, j.status.Run = equivResp, proveResp, runResp
	}
	j.mu.Unlock()
}

// trace returns a job's tracer (nil until the job starts running) and a
// copy of its status.
func (m *jobManager) trace(id string) (*obs.Tracer, JobStatusResponse, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, JobStatusResponse{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace, j.status, true
}

// status returns a copy of the job's current state. Certificates are not
// inlined in job polls (they can be large); GET /certificate/{id} serves
// them once the job is done.
func (m *jobManager) status(id string) (JobStatusResponse, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatusResponse{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	if st.Equiv != nil && st.Equiv.Certificate != nil {
		stripped := *st.Equiv
		stripped.Certificate = nil
		st.Equiv = &stripped
	}
	return st, true
}

// certificate returns the certificate recorded by a finished equiv job.
func (m *jobManager) certificate(id string) (*CertificateResponse, *ErrorBody) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, &ErrorBody{Code: CodeNotFound, Message: "no such job " + id}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Kind != JobEquiv {
		return nil, &ErrorBody{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("job %s has kind %q; certificates are recorded for equiv jobs", id, j.status.Kind)}
	}
	switch j.status.State {
	case JobPending, JobRunning:
		// 409, not 404: the job exists and will record a certificate; the
		// client should retry after the job finishes.
		return nil, &ErrorBody{Code: CodePending,
			Message: fmt.Sprintf("job %s is %s; its certificate is recorded when it finishes", id, j.status.State)}
	case JobFailed:
		// Terminal: the certificate never came to exist, retrying is
		// pointless — distinct from an unknown job id only by code.
		return nil, &ErrorBody{Code: CodeJobFailed,
			Message: fmt.Sprintf("job %s failed (%s); no certificate was recorded", id, j.status.Error.Code)}
	}
	if j.status.Equiv == nil || j.status.Equiv.Certificate == nil {
		return nil, &ErrorBody{Code: CodeInternal, Message: "finished equiv job recorded no certificate"}
	}
	return &CertificateResponse{
		ID:          id,
		Rel:         j.equivReq.Rel,
		Weak:        j.equivReq.Weak,
		Related:     j.status.Equiv.Related,
		Certificate: j.status.Equiv.Certificate,
	}, nil
}

// counts reports jobs per state for the metrics surface.
func (m *jobManager) counts() map[string]int {
	out := map[string]int{JobPending: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		out[j.status.State]++
		j.mu.Unlock()
	}
	return out
}
