package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

func synthLeaves(n int) [][32]byte {
	out := make([][32]byte, n)
	for i := range out {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		out[i] = sha256.Sum256(b[:])
	}
	return out
}

// TestAuditPathFoldsToRoot checks every leaf of every tree size up to 33
// (covering powers of two, one-off-balanced, and single-leaf trees).
func TestAuditPathFoldsToRoot(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := synthLeaves(n)
		root := merkleRoot(leaves)
		for i := 0; i < n; i++ {
			path := auditPath(leaves, i)
			got, err := rootFromPath(leaves[i], i, n, path)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if got != root {
				t.Fatalf("n=%d i=%d: folded root mismatch", n, i)
			}
		}
	}
}

// TestAuditPathRejectsTampering flips one bit anywhere in the proof inputs
// and demands a different root (or an error).
func TestAuditPathRejectsTampering(t *testing.T) {
	leaves := synthLeaves(9)
	root := merkleRoot(leaves)
	path := auditPath(leaves, 4)

	// Wrong leaf.
	bad := leaves[4]
	bad[0] ^= 1
	if got, err := rootFromPath(bad, 4, 9, path); err == nil && got == root {
		t.Fatal("flipped leaf still folds to the sealed root")
	}
	// Wrong index.
	if got, err := rootFromPath(leaves[4], 5, 9, path); err == nil && got == root {
		t.Fatal("wrong index still folds to the sealed root")
	}
	// Flipped path hash.
	mut := append([][32]byte(nil), path...)
	mut[1][3] ^= 0x80
	if got, err := rootFromPath(leaves[4], 4, 9, mut); err == nil && got == root {
		t.Fatal("flipped audit hash still folds to the sealed root")
	}
	// Truncated and over-long paths must error, not silently succeed.
	if _, err := rootFromPath(leaves[4], 4, 9, path[:len(path)-1]); err == nil {
		t.Fatal("truncated audit path accepted")
	}
	if _, err := rootFromPath(leaves[4], 4, 9, append(mut, [32]byte{})); err == nil {
		t.Fatal("over-long audit path accepted")
	}
	if _, err := rootFromPath(leaves[4], 42, 9, path); err == nil {
		t.Fatal("out-of-range leaf index accepted")
	}
}

// TestSplitPoint pins the RFC 6962 split rule: largest power of two < n.
func TestSplitPoint(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 4}, {8, 4}, {9, 8}, {16, 8}, {17, 16}, {1000, 512},
	} {
		if got := splitPoint(tc.n); got != tc.k {
			t.Errorf("splitPoint(%d) = %d, want %d", tc.n, got, tc.k)
		}
	}
}

// TestChainHashLinks pins the chain construction so on-disk seals written by
// one version stay checkable by the next.
func TestChainHashLinks(t *testing.T) {
	g := genesisChain()
	if g == ([32]byte{}) {
		t.Fatal("genesis chain is zero")
	}
	r1 := merkleRoot(synthLeaves(3))
	r2 := merkleRoot(synthLeaves(5))
	c1 := chainHash(g, r1)
	c2 := chainHash(c1, r2)
	if c1 == c2 || c1 == g {
		t.Fatal("chain values collide")
	}
	// Order matters: swapping the batches must change the head.
	if chainHash(chainHash(g, r2), r1) == c2 {
		t.Fatal("chain head insensitive to batch order")
	}
}

// TestEntryFraming round-trips the binary framing and pins the corruption
// taxonomy: torn tail → not ok; payload bit-flip → ok but crc fails; the
// next entry after a flipped one still decodes (skip-with-resync).
func TestEntryFraming(t *testing.T) {
	a := encodeEntry(entryVerdict, []byte(`{"seq":1}`))
	b := encodeEntry(entrySeal, []byte(`{"batch":0}`))
	buf := append(append([]byte(nil), a...), b...)

	typ, payload, next, ok, crcOK := decodeEntry(buf, 0)
	if !ok || !crcOK || typ != entryVerdict || string(payload) != `{"seq":1}` {
		t.Fatalf("first entry: typ=%d payload=%q ok=%t crc=%t", typ, payload, ok, crcOK)
	}
	typ, payload, next2, ok, crcOK := decodeEntry(buf, next)
	if !ok || !crcOK || typ != entrySeal || string(payload) != `{"batch":0}` || next2 != len(buf) {
		t.Fatalf("second entry: typ=%d payload=%q ok=%t crc=%t next=%d", typ, payload, ok, crcOK, next2)
	}

	// Torn tail: any strict prefix of a lone entry fails to frame.
	for cut := 1; cut < len(a); cut++ {
		if _, _, _, ok, _ := decodeEntry(a[:cut], 0); ok {
			t.Fatalf("torn prefix of %d bytes decoded as a whole entry", cut)
		}
	}

	// Payload bit-flip: frames, fails the checksum, and the next entry is
	// still reachable at the same offset.
	flip := append([]byte(nil), buf...)
	flip[headerBytes] ^= 0x40
	_, _, next3, ok, crcOK := decodeEntry(flip, 0)
	if !ok || crcOK {
		t.Fatalf("bit-flipped entry: ok=%t crc=%t, want framed but checksum-failed", ok, crcOK)
	}
	if _, _, _, ok, crcOK := decodeEntry(flip, next3); !ok || !crcOK {
		t.Fatal("entry after a bit-flipped one did not decode cleanly")
	}

	// Corrupted magic reads as unframed bytes.
	flip[0] ^= 0xFF
	if _, _, _, ok, _ := decodeEntry(flip, 0); ok {
		t.Fatal("corrupted magic still framed")
	}
	// An absurd length is a corrupted header, not an allocation request.
	huge := append([]byte(nil), a...)
	binary.LittleEndian.PutUint32(huge[5:], uint32(maxEntryBytes+1))
	if _, _, _, ok, _ := decodeEntry(huge, 0); ok {
		t.Fatal("oversized length field still framed")
	}
}
