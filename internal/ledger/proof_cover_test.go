package ledger

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// proofFor writes a one-record ledger and returns its verified proof.
func proofFor(t *testing.T, rec Record) *InclusionProof {
	t.Helper()
	dir := t.TempDir()
	writeLedger(t, dir, Config{BatchSize: 1, MaxWait: -1}, []Record{rec})
	l, err := Open(dir, Config{MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p, err := l.Proof(rec.KeyHash)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProof(p); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
	return p
}

// Every field of an inclusion proof is load-bearing: tampering with any of
// them must be detected by VerifyProof alone, no ledger in hand.
func TestVerifyProofTamperMatrix(t *testing.T) {
	recs := allRecords(t)
	base := proofFor(t, recs[0])

	clone := func() *InclusionProof {
		c := *base
		c.Audit = append([]string(nil), base.Audit...)
		return &c
	}
	cases := []struct {
		name   string
		tamper func(*InclusionProof)
		wantIn string
	}{
		{"nil proof", nil, "nil proof"},
		{"garbage record bytes", func(p *InclusionProof) {
			p.Record = json.RawMessage("{not json")
		}, "does not parse"},
		{"key hash swapped", func(p *InclusionProof) {
			p.KeyHash = strings.Repeat("ab", 32)
		}, "key hash"},
		{"seq rewritten", func(p *InclusionProof) {
			p.Seq += 7
		}, "seq"},
		{"audit path not hex", func(p *InclusionProof) {
			if len(p.Audit) == 0 {
				p.Audit = []string{"zz"}
			} else {
				p.Audit[0] = "zz"
			}
		}, "audit"},
		{"audit path truncated short", func(p *InclusionProof) {
			if len(p.Audit) == 0 {
				p.Audit = []string{strings.Repeat("ab", 4)}
			} else {
				p.Audit[0] = strings.Repeat("ab", 4)
			}
		}, "audit"},
		{"root not hex", func(p *InclusionProof) {
			p.Root = "not-hex"
		}, "root"},
		{"root swapped", func(p *InclusionProof) {
			p.Root = strings.Repeat("cd", 32)
		}, "root"},
		{"record bytes re-signed", func(p *InclusionProof) {
			// A different but well-formed record under the same metadata:
			// the leaf hash changes, so the fold misses the root.
			var rec Record
			if err := json.Unmarshal(p.Record, &rec); err != nil {
				t.Fatal(err)
			}
			rec.Pairs += 99
			b, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			p.Record = b
		}, "root"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p *InclusionProof
			if tc.tamper != nil {
				p = clone()
				tc.tamper(p)
			}
			err := VerifyProof(p)
			if err == nil {
				t.Fatal("tampered proof accepted")
			}
			if !strings.Contains(err.Error(), tc.wantIn) {
				t.Errorf("error %q does not name the damage (%q)", err, tc.wantIn)
			}
		})
	}
}

// VerifyRecord is the fail-closed acceptance core shared by replay, import
// and the cluster tier: claims that disagree with the certificate's own
// content must be refused even when the certificate itself is genuine.
func TestVerifyRecordClaimMismatches(t *testing.T) {
	recs := allRecords(t)
	dir := t.TempDir()
	writeLedger(t, dir, Config{BatchSize: 1, MaxWait: -1}, recs[:1])
	l, err := Open(dir, Config{MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	honest := recs[0]
	if _, err := l.VerifyRecord(&honest); err != nil {
		t.Fatalf("honest record refused: %v", err)
	}

	cases := []struct {
		name   string
		tamper func(*Record)
		wantIn string
	}{
		{"certificate bytes garbage", func(r *Record) {
			r.Cert = json.RawMessage("{")
		}, "does not parse"},
		{"relation relabelled", func(r *Record) {
			if r.Rel == "step" {
				r.Rel = "labelled"
			} else {
				r.Rel = "step"
			}
		}, "certificate is for"},
		{"weak flag flipped", func(r *Record) {
			r.Weak = !r.Weak
		}, "certificate is for"},
		{"verdict flipped", func(r *Record) {
			r.Related = !r.Related
		}, "verdict"},
		{"record re-keyed", func(r *Record) {
			r.Key = PairKey(r.Rel, r.Weak, "K(z!)", "K(z!)")
			r.KeyHash = KeyHash(r.Key)
		}, "derive key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := honest
			tc.tamper(&r)
			_, err := l.VerifyRecord(&r)
			if err == nil {
				t.Fatal("mismatching record accepted")
			}
			if !strings.Contains(err.Error(), tc.wantIn) {
				t.Errorf("error %q does not name the mismatch (%q)", err, tc.wantIn)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if got := c.batchSize(); got != 64 {
		t.Errorf("batchSize zero-value default %d, want 64", got)
	}
	if got := c.maxWait(); got != 2*time.Second {
		t.Errorf("maxWait zero-value default %v, want 2s", got)
	}
	if got := c.segmentBytes(); got != 8<<20 {
		t.Errorf("segmentBytes zero-value default %d, want 8MiB", got)
	}
	c = Config{BatchSize: 7, MaxWait: -1, SegmentBytes: 1024}
	if c.batchSize() != 7 || c.maxWait() != -1 || c.segmentBytes() != 1024 {
		t.Errorf("explicit config not honoured: %d %v %d", c.batchSize(), c.maxWait(), c.segmentBytes())
	}
}
