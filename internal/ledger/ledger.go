// Package ledger is bpid's persistent, tamper-evident verdict store: a
// disk-backed, content-addressed, append-only log of certified equivalence
// verdicts that survives the process and warm-starts the next one.
//
// Layout: numbered segment files (seg-000001.log, …) of length-prefixed,
// CRC-32C-checksummed entries, plus an advisory index.json snapshot that is
// rebuilt from the log whenever it is missing or stale. Two entry kinds
// interleave in append order: verdict records (Record) and batch seals
// (Seal). Appended records accumulate into a pending batch; sealing builds
// an RFC 6962-shaped Merkle tree over the records' on-disk payload bytes,
// and the sealed roots chain hash-linked from a fixed genesis value, so any
// record can produce a compact inclusion proof (InclusionProof) verifiable
// from a root alone, and rewriting any sealed byte breaks the chain.
//
// Trust is layered and fail-closed, per record:
//
//   - framing integrity: a torn tail write is truncated away with a recovery
//     note; a framed entry whose checksum fails is quarantined and skipped
//     (length-prefix framing keeps the rest of the log readable);
//   - batch integrity: a seal whose recomputed root or chain link does not
//     match condemns every record it covers (and flags the chain broken);
//   - semantic trust: every surviving record is replayed through the
//     independent certificate verifier (internal/cert) at Open, and its
//     certificate terms must re-derive the record's canonical pair key —
//     so a flipped verdict, a swapped certificate or a remapped key is
//     rejected without trusting the binary that wrote the log.
//
// Only records passing all three layers are offered to Replay (the daemon's
// warm-start path); everything else is counted, never trusted.
package ledger

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bpi/internal/cert"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Config tunes a Ledger. The zero value is usable.
type Config struct {
	// Env is the definitions environment certificates may reference.
	Env syntax.Env
	// BatchSize seals a pending batch as soon as it holds this many records
	// (default 64).
	BatchSize int
	// MaxWait bounds how long an appended record stays unsealed (default 2s;
	// negative disables timed sealing — batches seal on size and Close only).
	MaxWait time.Duration
	// SegmentBytes rolls the active segment past this size (default 8 MiB).
	SegmentBytes int64
	// SkipVerify skips the per-record certificate replay at Open. Read-only
	// inspection (stats, export) may set it; anything that trusts records
	// must not.
	SkipVerify bool
}

func (c Config) batchSize() int {
	if c.BatchSize <= 0 {
		return 64
	}
	return c.BatchSize
}

func (c Config) maxWait() time.Duration {
	if c.MaxWait == 0 {
		return 2 * time.Second
	}
	return c.MaxWait
}

func (c Config) segmentBytes() int64 {
	if c.SegmentBytes <= 0 {
		return 8 << 20
	}
	return c.SegmentBytes
}

// Sentinel errors of the proof lookup path.
var (
	ErrUnknownKey = errors.New("ledger: no record for key")
	ErrPending    = errors.New("ledger: record not sealed yet")
	ErrClosed     = errors.New("ledger: closed")
)

// entry is one decoded log entry held in memory: the record, its exact
// on-disk payload (the Merkle leaf preimage), and its trust status.
type entry struct {
	rec     Record
	crt     *cert.Certificate // parsed certificate; nil unless verified at Open
	payload []byte
	leaf    [32]byte
	batch   int // seals[batch]; -1 pending, -2 condemned
	leafIdx int
	reject  string // non-empty: quarantined, with the reason
}

type sealedBatch struct {
	seal   Seal
	leaves [][32]byte
}

// Stats is a point-in-time summary of the ledger.
type Stats struct {
	// Records counts trusted (replayable) records; Rejected counts
	// quarantined ones, whatever the layer that rejected them.
	Records  int    `json:"records"`
	Rejected int    `json:"rejected"`
	Pending  int    `json:"pending"`
	Batches  int    `json:"batches"`
	NextSeq  uint64 `json:"next_seq"`
	// ChainHead is the hex chain value after the last intact seal.
	ChainHead   string `json:"chain_head"`
	ChainBroken bool   `json:"chain_broken,omitempty"`
	Segments    int    `json:"segments"`
	Bytes       int64  `json:"bytes"`
	// Appended / Seals / SealWaitSeconds cover this process only: records
	// appended, batches sealed, and the summed first-append-to-seal latency.
	Appended        uint64  `json:"appended"`
	Seals           uint64  `json:"seals"`
	SealWaitSeconds float64 `json:"seal_wait_seconds"`
	// Notes are recovery observations from Open (truncated tail, stale
	// index, condemned batches).
	Notes []string `json:"notes,omitempty"`
}

// Ledger is an open verdict log. All methods are safe for concurrent use.
type Ledger struct {
	dir      string
	cfg      Config
	verifier *cert.Verifier

	mu         sync.Mutex
	active     *os.File
	activeSeg  int
	activeSize int64
	segments   int
	bytes      int64
	nextSeq    uint64
	entries    []*entry
	byKey      map[string]*entry // key hash → latest trusted entry
	seals      []*sealedBatch
	chain      [32]byte
	broken     bool
	pending    []*entry
	pendingAt  time.Time
	rejected   int
	notes      []string
	appended   uint64
	sealsDone  uint64
	sealWait   float64
	closed     bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func segName(n int) string { return fmt.Sprintf("seg-%06d.log", n) }

// Open reads (and, for the damaged tail, repairs) the ledger under dir,
// verifying every record unless cfg.SkipVerify is set, and leaves the last
// segment open for appending. A missing dir is created empty.
func Open(dir string, cfg Config) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Ledger{
		dir:      dir,
		cfg:      cfg,
		verifier: &cert.Verifier{Sys: semantics.NewSystem(cfg.Env)},
		byKey:    map[string]*entry{},
		chain:    genesisChain(),
		nextSeq:  1,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		if err := l.loadSegment(filepath.Join(dir, name), i == len(names)-1); err != nil {
			return nil, err
		}
	}
	l.segments = len(names)
	l.activeSeg = 1
	if n := len(names); n > 0 {
		fmt.Sscanf(names[n-1], "seg-%06d.log", &l.activeSeg)
	} else {
		l.segments = 1
	}
	path := filepath.Join(dir, segName(l.activeSeg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l.active = f
	l.activeSize = st.Size()
	l.checkIndex()
	if len(l.pending) > 0 {
		l.pendingAt = time.Now()
	}
	go l.sealLoop()
	return l, nil
}

func segmentNames(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	var names []string
	for _, de := range des {
		if n := de.Name(); strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".log") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// loadSegment scans one segment, quarantining damage and (for the last
// segment only) truncating a torn tail so the file is appendable again.
func (l *Ledger) loadSegment(path string, last bool) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	off, lastGood := 0, 0
	for off < len(buf) {
		typ, payload, next, ok, crcOK := decodeEntry(buf, off)
		if !ok {
			if last {
				l.notes = append(l.notes, fmt.Sprintf(
					"%s: torn or corrupt entry at offset %d; truncated %d bytes",
					filepath.Base(path), off, len(buf)-lastGood))
				if err := os.Truncate(path, int64(lastGood)); err != nil {
					return fmt.Errorf("ledger: truncating torn tail of %s: %w", path, err)
				}
				buf = buf[:lastGood]
			} else {
				l.notes = append(l.notes, fmt.Sprintf(
					"%s: unreadable from offset %d; %d bytes skipped",
					filepath.Base(path), off, len(buf)-off))
			}
			break
		}
		if !crcOK {
			e := &entry{payload: append([]byte(nil), payload...), leaf: leafHash(payload),
				batch: -1, reject: "checksum mismatch"}
			l.entries = append(l.entries, e)
			l.pending = append(l.pending, e)
			l.rejected++
		} else {
			switch typ {
			case entryVerdict:
				l.loadVerdict(payload)
			case entrySeal:
				l.loadSeal(payload)
			default:
				l.rejected++
				l.notes = append(l.notes, fmt.Sprintf("unknown entry type %d skipped", typ))
			}
		}
		off, lastGood = next, next
	}
	l.bytes += int64(len(buf))
	return nil
}

func (l *Ledger) loadVerdict(payload []byte) {
	e := &entry{payload: append([]byte(nil), payload...), leaf: leafHash(payload), batch: -1}
	l.entries = append(l.entries, e)
	l.pending = append(l.pending, e)
	if err := json.Unmarshal(e.payload, &e.rec); err != nil {
		e.reject = "undecodable record: " + err.Error()
		l.rejected++
		return
	}
	if e.rec.Seq >= l.nextSeq {
		l.nextSeq = e.rec.Seq + 1
	}
	if !l.cfg.SkipVerify {
		crt, err := l.VerifyRecord(&e.rec)
		if err != nil {
			e.reject = err.Error()
			l.rejected++
			return
		}
		e.crt = crt
	}
	l.byKey[e.rec.KeyHash] = e
}

func (l *Ledger) loadSeal(payload []byte) {
	var s Seal
	if err := json.Unmarshal(payload, &s); err != nil {
		l.condemnPending("undecodable seal: " + err.Error())
		return
	}
	leaves := make([][32]byte, len(l.pending))
	for i, e := range l.pending {
		leaves[i] = e.leaf
	}
	root := merkleRoot(leaves)
	want := chainHash(l.chain, root)
	switch {
	case s.Count != len(l.pending):
		l.condemnPending(fmt.Sprintf("seal %d covers %d records but %d are on disk", s.Batch, s.Count, len(l.pending)))
	case s.Root != hex.EncodeToString(root[:]):
		l.condemnPending(fmt.Sprintf("seal %d root mismatch: recomputed %x, sealed %s", s.Batch, root, s.Root))
	case s.Prev != hex.EncodeToString(l.chain[:]) || s.Chain != hex.EncodeToString(want[:]):
		l.condemnPending(fmt.Sprintf("seal %d breaks the hash chain", s.Batch))
	default:
		sb := &sealedBatch{seal: s, leaves: leaves}
		for i, e := range l.pending {
			e.batch, e.leafIdx = len(l.seals), i
		}
		l.seals = append(l.seals, sb)
		l.chain = want
		l.pending = nil
		return
	}
	// The broken seal's chain value is adopted so later seals can still be
	// checked for internal consistency; the break itself stays on record.
	if b, err := hex.DecodeString(s.Chain); err == nil && len(b) == 32 {
		copy(l.chain[:], b)
	}
}

// condemnPending quarantines every record the failed seal covered.
func (l *Ledger) condemnPending(why string) {
	l.broken = true
	l.notes = append(l.notes, why)
	for _, e := range l.pending {
		e.batch = -2
		if e.reject == "" {
			e.reject = why
			l.rejected++
			if l.byKey[e.rec.KeyHash] == e {
				delete(l.byKey, e.rec.KeyHash)
			}
		}
	}
	l.pending = nil
}

// VerifyRecord replays one record's evidence: the certificate must parse,
// agree with the record's verdict and relation, re-derive the record's
// canonical pair key from its own terms, and be accepted by the independent
// verifier. It returns the parsed certificate on success.
func (l *Ledger) VerifyRecord(r *Record) (*cert.Certificate, error) {
	crt, err := cert.Unmarshal(r.Cert)
	if err != nil {
		return nil, fmt.Errorf("certificate does not parse: %w", err)
	}
	if crt.Relation != r.Rel || crt.Weak != r.Weak {
		return nil, fmt.Errorf("certificate is for %s weak=%t, record claims %s weak=%t",
			crt.Relation, crt.Weak, r.Rel, r.Weak)
	}
	if crt.Related != r.Related {
		return nil, fmt.Errorf("record verdict related=%t but certificate proves related=%t",
			r.Related, crt.Related)
	}
	kp, err := termKey(crt.P)
	if err != nil {
		return nil, err
	}
	kq, err := termKey(crt.Q)
	if err != nil {
		return nil, err
	}
	if key := PairKey(r.Rel, r.Weak, kp, kq); key != r.Key || KeyHash(key) != r.KeyHash {
		return nil, fmt.Errorf("certificate terms derive key %q, record claims %q", key, r.Key)
	}
	if err := l.verifier.Verify(crt); err != nil {
		return nil, fmt.Errorf("certificate rejected: %w", err)
	}
	return crt, nil
}

// Append assigns the next sequence number, writes the record, and returns
// the sequence. Records reaching the configured batch size seal immediately;
// otherwise the background sealer seals them within MaxWait. Append never
// fsyncs — durability is batched at seal time.
func (l *Ledger) Append(r Record) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	r.Seq = l.nextSeq
	l.nextSeq++
	if r.UnixNano == 0 {
		r.UnixNano = time.Now().UnixNano()
	}
	payload, err := json.Marshal(r)
	if err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("ledger: %w", err)
	}
	if err := l.writeLocked(encodeEntry(entryVerdict, payload)); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	e := &entry{rec: r, payload: payload, leaf: leafHash(payload), batch: -1}
	l.entries = append(l.entries, e)
	if len(l.pending) == 0 {
		l.pendingAt = time.Now()
	}
	l.pending = append(l.pending, e)
	l.byKey[r.KeyHash] = e
	l.appended++
	full := len(l.pending) >= l.cfg.batchSize()
	l.mu.Unlock()
	if full {
		if err := l.Seal(); err != nil {
			return 0, err
		}
	} else {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return r.Seq, nil
}

// writeLocked appends one framed entry to the active segment, rolling to a
// fresh segment past the size bound.
func (l *Ledger) writeLocked(frame []byte) error {
	if l.activeSize > 0 && l.activeSize+int64(len(frame)) > l.cfg.segmentBytes() {
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("ledger: %w", err)
		}
		l.activeSeg++
		l.segments++
		f, err := os.OpenFile(filepath.Join(l.dir, segName(l.activeSeg)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("ledger: %w", err)
		}
		l.active = f
		l.activeSize = 0
	}
	if _, err := l.active.Write(frame); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	l.activeSize += int64(len(frame))
	l.bytes += int64(len(frame))
	return nil
}

// Seal closes the pending batch: it builds the Merkle tree, appends the seal
// entry, fsyncs, and snapshots the index. A ledger with nothing pending
// seals to a no-op.
func (l *Ledger) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealLocked()
}

func (l *Ledger) sealLocked() error {
	if len(l.pending) == 0 {
		return nil
	}
	leaves := make([][32]byte, len(l.pending))
	var firstSeq uint64
	for i, e := range l.pending {
		leaves[i] = e.leaf
		if firstSeq == 0 && e.rec.Seq > 0 {
			firstSeq = e.rec.Seq
		}
	}
	root := merkleRoot(leaves)
	chain := chainHash(l.chain, root)
	s := Seal{
		Batch:    len(l.seals),
		FirstSeq: firstSeq,
		Count:    len(l.pending),
		Root:     hex.EncodeToString(root[:]),
		Prev:     hex.EncodeToString(l.chain[:]),
		Chain:    hex.EncodeToString(chain[:]),
		UnixNano: time.Now().UnixNano(),
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if err := l.writeLocked(encodeEntry(entrySeal, payload)); err != nil {
		return err
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	for i, e := range l.pending {
		e.batch, e.leafIdx = len(l.seals), i
	}
	l.seals = append(l.seals, &sealedBatch{seal: s, leaves: leaves})
	l.chain = chain
	l.sealWait += time.Since(l.pendingAt).Seconds()
	l.sealsDone++
	l.pending = nil
	l.writeIndexLocked()
	return nil
}

// sealLoop enforces the MaxWait latency bound on unsealed records.
func (l *Ledger) sealLoop() {
	defer close(l.done)
	if l.cfg.maxWait() < 0 {
		<-l.stop
		return
	}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		l.mu.Lock()
		var wait time.Duration = -1
		if len(l.pending) > 0 {
			wait = l.cfg.maxWait() - time.Since(l.pendingAt)
			if wait < 0 {
				wait = 0
			}
		}
		l.mu.Unlock()
		if wait < 0 {
			select {
			case <-l.kick:
				continue
			case <-l.stop:
				return
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-l.kick:
			continue
		case <-l.stop:
			return
		case <-timer.C:
			_ = l.Seal()
		}
	}
}

// Close seals whatever is pending, snapshots the index and closes the log.
// Safe to call twice.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.sealLocked()
	l.writeIndexLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// Replay calls fn, in append order, for every record that was read from disk
// at Open and survived all three trust layers, together with its parsed
// certificate. Records appended by this process are not replayed (the caller
// produced them).
func (l *Ledger) Replay(fn func(r *Record, crt *cert.Certificate)) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		if e.reject == "" && e.crt != nil {
			fn(&e.rec, e.crt)
			n++
		}
	}
	return n
}

// Rejections lists the quarantined records' reasons, in log order.
func (l *Ledger) Rejections() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for _, e := range l.entries {
		if e.reject != "" {
			out = append(out, fmt.Sprintf("seq %d: %s", e.rec.Seq, e.reject))
		}
	}
	return out
}

// Proof builds the inclusion proof for the latest sealed trusted record of
// the given key hash. ErrUnknownKey when no trusted record has the key;
// ErrPending when the only trusted records are still unsealed.
func (l *Ledger) Proof(keyHash string) (*InclusionProof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.byKey[keyHash]
	if !ok {
		return nil, ErrUnknownKey
	}
	if e.batch < 0 {
		// The newest record is unsealed; an older sealed one still proves.
		e = nil
		for i := len(l.entries) - 1; i >= 0; i-- {
			c := l.entries[i]
			if c.reject == "" && c.rec.KeyHash == keyHash && c.batch >= 0 {
				e = c
				break
			}
		}
		if e == nil {
			return nil, ErrPending
		}
	}
	sb := l.seals[e.batch]
	path := auditPath(sb.leaves, e.leafIdx)
	audit := make([]string, len(path))
	for i, h := range path {
		audit[i] = hex.EncodeToString(h[:])
	}
	return &InclusionProof{
		Key:     e.rec.Key,
		KeyHash: keyHash,
		Seq:     e.rec.Seq,
		Batch:   e.batch,
		Leaf:    e.leafIdx,
		Count:   len(sb.leaves),
		Record:  append(json.RawMessage(nil), e.payload...),
		Audit:   audit,
		Root:    sb.seal.Root,
		Prev:    sb.seal.Prev,
		Chain:   sb.seal.Chain,
	}, nil
}

// Export writes every trusted record as one JSON line, returning the count.
func (l *Ledger) Export(w io.Writer) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		if e.reject != "" {
			continue
		}
		if _, err := w.Write(append(append([]byte(nil), e.payload...), '\n')); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Stats snapshots the ledger.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	trusted := 0
	for _, e := range l.entries {
		if e.reject == "" {
			trusted++
		}
	}
	return Stats{
		Records:         trusted,
		Rejected:        l.rejected,
		Pending:         len(l.pending),
		Batches:         len(l.seals),
		NextSeq:         l.nextSeq,
		ChainHead:       hex.EncodeToString(l.chain[:]),
		ChainBroken:     l.broken,
		Segments:        l.segments,
		Bytes:           l.bytes,
		Appended:        l.appended,
		Seals:           l.sealsDone,
		SealWaitSeconds: l.sealWait,
		Notes:           append([]string(nil), l.notes...),
	}
}

// indexFile is the advisory snapshot: enough to spot a stale or tampered
// index (the log is always authoritative) and to find a key's latest record
// without scanning.
type indexFile struct {
	NextSeq   uint64            `json:"next_seq"`
	Records   int               `json:"records"`
	Batches   int               `json:"batches"`
	ChainHead string            `json:"chain_head"`
	Keys      map[string]uint64 `json:"keys"`
	UnixNano  int64             `json:"t"`
}

const indexName = "index.json"

func (l *Ledger) writeIndexLocked() {
	idx := indexFile{
		NextSeq:   l.nextSeq,
		Batches:   len(l.seals),
		ChainHead: hex.EncodeToString(l.chain[:]),
		Keys:      make(map[string]uint64, len(l.byKey)),
		UnixNano:  time.Now().UnixNano(),
	}
	for _, e := range l.entries {
		if e.reject == "" {
			idx.Records++
		}
	}
	for k, e := range l.byKey {
		idx.Keys[k] = e.rec.Seq
	}
	data, err := json.MarshalIndent(idx, "", " ")
	if err != nil {
		return
	}
	tmp := filepath.Join(l.dir, indexName+".tmp")
	if os.WriteFile(tmp, data, 0o644) == nil {
		_ = os.Rename(tmp, filepath.Join(l.dir, indexName))
	}
}

// checkIndex compares the advisory index against the scanned log and notes
// any drift; the log always wins.
func (l *Ledger) checkIndex() {
	data, err := os.ReadFile(filepath.Join(l.dir, indexName))
	if err != nil {
		return // absent: first boot, or rebuilt below on next seal
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		l.notes = append(l.notes, "index.json corrupt; rebuilt from the log")
		l.writeIndexLocked()
		return
	}
	if idx.NextSeq != l.nextSeq || idx.ChainHead != hex.EncodeToString(l.chain[:]) || idx.Batches != len(l.seals) {
		l.notes = append(l.notes, "index.json stale; rebuilt from the log")
		l.writeIndexLocked()
	}
}
