package ledger

import (
	"bufio"
	"encoding/json"
	"io"
)

// ImportOptions tunes one Import pass. The zero value is usable: no
// progress reporting, rejections only counted.
type ImportOptions struct {
	// Progress, when non-nil, is called after every ProgressEvery input
	// lines with a running snapshot — long imports are not silent.
	Progress func(ImportStats)
	// ProgressEvery is the Progress cadence in lines (default 1000).
	ProgressEvery int
	// Reject, when non-nil, receives each rejected line's number (1-based)
	// and the verification error that condemned it.
	Reject func(line int, err error)
}

// ImportStats accounts one Import pass.
type ImportStats struct {
	// Lines counts input lines consumed, empty ones included.
	Lines int
	// Imported counts records that re-verified and were appended.
	Imported int
	// Rejected counts lines that failed to parse or to re-verify.
	Rejected int
}

// Import appends records from a JSONL export stream (one Record per line,
// as written by Export). Import is a trust boundary, not a byte copy: every
// record is re-verified — certificate replay against the independent
// verifier included — before it is appended, and sequence numbers are
// reassigned by this ledger. A line that fails verification is counted
// (and reported via opts.Reject) without stopping the pass; a read or
// append error stops it and is returned with the stats so far. The caller
// still owns Close, which seals the imported tail batch.
func (l *Ledger) Import(r io.Reader, opts ImportOptions) (ImportStats, error) {
	every := opts.ProgressEvery
	if every <= 0 {
		every = 1000
	}
	var st ImportStats
	reject := func(err error) {
		st.Rejected++
		if opts.Reject != nil {
			opts.Reject(st.Lines, err)
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		st.Lines++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			reject(err)
		} else if _, err := l.VerifyRecord(&rec); err != nil {
			reject(err)
		} else {
			rec.Seq = 0 // reassigned by Append
			if _, err := l.Append(rec); err != nil {
				return st, err
			}
			st.Imported++
		}
		if opts.Progress != nil && st.Lines%every == 0 {
			opts.Progress(st)
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	return st, nil
}
