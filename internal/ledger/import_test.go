package ledger

import (
	"bytes"
	"strings"
	"testing"
)

// TestImportTwoSegmentExport is the warm-start pipeline end to end: a
// source ledger small enough in SegmentBytes to roll over several
// segments, exported, imported into a fresh ledger, which then reopens
// with every record trusted and proof-carrying.
func TestImportTwoSegmentExport(t *testing.T) {
	src := t.TempDir()
	// SegmentBytes 1024 rolls certified records across multiple segments
	// (same profile as TestSegmentRolling).
	writeLedger(t, src, Config{BatchSize: 1, MaxWait: -1, SegmentBytes: 1024}, allRecords(t))

	l1, err := Open(src, Config{MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	if segs := l1.Stats().Segments; segs < 2 {
		t.Fatalf("source ledger has %d segment(s), the test needs >= 2", segs)
	}
	var export bytes.Buffer
	exported, err := l1.Export(&export)
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	if exported == 0 {
		t.Fatal("nothing exported")
	}

	dst := t.TempDir()
	l2, err := Open(dst, Config{BatchSize: 1, MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	var ticks []ImportStats
	st, err := l2.Import(&export, ImportOptions{
		ProgressEvery: 3,
		Progress:      func(s ImportStats) { ticks = append(ticks, s) },
		Reject: func(line int, err error) {
			t.Errorf("line %d rejected on a clean export: %v", line, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != exported || st.Rejected != 0 {
		t.Fatalf("imported %d rejected %d, want %d/0", st.Imported, st.Rejected, exported)
	}
	if want := exported / 3; len(ticks) != want {
		t.Errorf("%d progress ticks for %d lines at cadence 3, want %d", len(ticks), st.Lines, want)
	}
	for i, tick := range ticks {
		if tick.Lines != (i+1)*3 {
			t.Errorf("tick %d at %d lines, want %d", i, tick.Lines, (i+1)*3)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// The destination must reopen fully trusted: every imported record
	// re-verifies, is sealed, and the counts match the source.
	l3, err := Open(dst, Config{MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got := l3.Stats()
	if got.Records != exported || got.Rejected != 0 || got.ChainBroken {
		t.Fatalf("reopened import: %+v, want %d trusted records", got, exported)
	}
}

// TestImportRejectsTamperedLines: garbage and forged lines are counted,
// reported with their line numbers, and skipped — the healthy records
// around them still land.
func TestImportRejectsTamperedLines(t *testing.T) {
	src := t.TempDir()
	writeLedger(t, src, Config{BatchSize: 1, MaxWait: -1}, allRecords(t))
	l1, err := Open(src, Config{MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	var export bytes.Buffer
	exported, err := l1.Export(&export)
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(export.String(), "\n"), "\n")
	if len(lines) != exported {
		t.Fatalf("%d export lines for %d records", len(lines), exported)
	}
	// Forge line 2: flip its verdict without touching the certificate.
	forged := strings.Replace(lines[1], `"related":true`, `"related":false`, 1)
	if forged == lines[1] {
		forged = strings.Replace(lines[1], `"related":false`, `"related":true`, 1)
	}
	if forged == lines[1] {
		t.Fatal("could not forge the verdict bit of line 2")
	}
	lines[1] = forged
	// And insert pure garbage as line 4.
	lines = append(lines[:3], append([]string{"{not json"}, lines[3:]...)...)
	input := strings.Join(lines, "\n") + "\n"

	dst := t.TempDir()
	l2, err := Open(dst, Config{BatchSize: 1, MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	var badLines []int
	st, err := l2.Import(strings.NewReader(input), ImportOptions{
		Reject: func(line int, err error) { badLines = append(badLines, line) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 2 || st.Imported != exported-1 {
		t.Fatalf("imported %d rejected %d, want %d/2", st.Imported, st.Rejected, exported-1)
	}
	if len(badLines) != 2 || badLines[0] != 2 || badLines[1] != 4 {
		t.Fatalf("rejected lines %v, want [2 4]", badLines)
	}

	l3, err := Open(dst, Config{MaxWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := l3.Stats(); got.Records != exported-1 || got.Rejected != 0 {
		t.Fatalf("reopened import: %+v, want %d trusted records", got, exported-1)
	}
}
