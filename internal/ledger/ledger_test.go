package ledger

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bpi/internal/cert"
	"bpi/internal/equiv"
	"bpi/internal/parser"
)

// testPairs are distinct canonical pairs (so each record gets its own key),
// mixing relations, strong/weak, and positive/negative verdicts.
var testPairs = []struct {
	rel  string
	weak bool
	p, q string
}{
	{cert.RelLabelled, false, "a!", "a!"},
	{cert.RelLabelled, false, "a! | b!", "a!.b! + b!.a!"},
	{cert.RelLabelled, true, "tau.a!", "a!"},
	{cert.RelLabelled, false, "a?(x).x!", "a?(y).y!"},
	{cert.RelBarbed, false, "nu x.a!(x)", "nu y.a!(y)"},
	{cert.RelBarbed, true, "tau.tau.c!", "c!"},
	{cert.RelStep, true, "tau.a!(b)", "a!(b)"},
	{cert.RelStep, false, "a!.b!", "a!.c!"},
	{cert.RelLabelled, false, "a!", "b!"},
	{cert.RelLabelled, false, "nu b.(b! | b?(x).c!)", "tau.c! + c!"},
}

// certRecord decides one pair with a certifying checker and wraps the verdict.
func certRecord(t *testing.T, ch *equiv.Checker, rel string, weak bool, p, q string) Record {
	t.Helper()
	pp, err := parser.Parse(p)
	if err != nil {
		t.Fatalf("parse %q: %v", p, err)
	}
	qq, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	var r equiv.Result
	switch rel {
	case cert.RelLabelled:
		r, err = ch.Labelled(pp, qq, weak)
	case cert.RelBarbed:
		r, err = ch.Barbed(pp, qq, weak)
	case cert.RelStep:
		r, err = ch.Step(pp, qq, weak)
	default:
		t.Fatalf("unknown relation %q", rel)
	}
	if err != nil {
		t.Fatalf("%s(%s, %s): %v", rel, p, q, err)
	}
	rec, err := NewRecord(rel, weak, 0, 0, 0, r.Related, r.Pairs, r.Reason, r.Cert)
	if err != nil {
		t.Fatalf("NewRecord(%s, %s): %v", p, q, err)
	}
	return rec
}

func allRecords(t *testing.T) []Record {
	t.Helper()
	ch := equiv.NewChecker(nil)
	ch.Certify = true
	recs := make([]Record, 0, len(testPairs))
	for _, tp := range testPairs {
		recs = append(recs, certRecord(t, ch, tp.rel, tp.weak, tp.p, tp.q))
	}
	return recs
}

// writeLedger appends recs into a fresh ledger at dir and closes it.
func writeLedger(t *testing.T, dir string, cfg Config, recs []Record) {
	t.Helper()
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// noTimer disables timed sealing so tests control batch boundaries exactly.
var noTimer = Config{BatchSize: 4, MaxWait: -1}

// TestRoundtripWarmStart is the core contract: decide → persist → reopen →
// every record replays verified, produces a verifiable inclusion proof, and
// the chain head is intact.
func TestRoundtripWarmStart(t *testing.T) {
	recs := allRecords(t)
	dir := t.TempDir()
	writeLedger(t, dir, noTimer, recs)

	l, err := Open(dir, noTimer)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()

	got := map[string]Record{}
	n := l.Replay(func(r *Record, crt *cert.Certificate) {
		if crt == nil {
			t.Fatalf("replayed record %d without a certificate", r.Seq)
		}
		if crt.Related != r.Related {
			t.Fatalf("record %d: certificate verdict %t vs record %t", r.Seq, crt.Related, r.Related)
		}
		got[r.Key] = *r
	})
	if n != len(recs) {
		t.Fatalf("replayed %d records, want %d", n, len(recs))
	}
	for _, want := range recs {
		r, ok := got[want.Key]
		if !ok {
			t.Fatalf("record %q not replayed", want.Key)
		}
		if r.Related != want.Related || r.Rel != want.Rel || r.Weak != want.Weak || r.Reason != want.Reason {
			t.Fatalf("record %q drifted across the roundtrip: %+v vs %+v", want.Key, r, want)
		}
	}

	st := l.Stats()
	if st.Records != len(recs) || st.Rejected != 0 || st.Pending != 0 || st.ChainBroken {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
	wantBatches := (len(recs) + noTimer.BatchSize - 1) / noTimer.BatchSize
	if st.Batches != wantBatches {
		t.Fatalf("batches = %d, want %d", st.Batches, wantBatches)
	}

	// Every key yields a proof that verifies from the seal alone.
	for _, want := range recs {
		p, err := l.Proof(want.KeyHash)
		if err != nil {
			t.Fatalf("Proof(%s): %v", want.Key, err)
		}
		if err := VerifyProof(p); err != nil {
			t.Fatalf("VerifyProof(%s): %v", want.Key, err)
		}
		// Tampered proofs must not verify.
		bad := *p
		bad.Record = bytes.Replace(p.Record, []byte(`"related":`), []byte(`"related_x":`), 1)
		if VerifyProof(&bad) == nil {
			t.Fatalf("tampered proof record for %s verified", want.Key)
		}
	}

	var sb strings.Builder
	if n, err := l.Export(&sb); err != nil || n != len(recs) {
		t.Fatalf("Export: n=%d err=%v", n, err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != len(recs) {
		t.Fatalf("export wrote %d lines, want %d", lines, len(recs))
	}
}

// TestProofPendingAndUnknown pins the proof lookup taxonomy.
func TestProofPendingAndUnknown(t *testing.T) {
	recs := allRecords(t)[:2]
	l, err := Open(t.TempDir(), Config{BatchSize: 100, MaxWait: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, err := l.Proof(recs[0].KeyHash); err != ErrPending {
		t.Fatalf("unsealed proof error = %v, want ErrPending", err)
	}
	if _, err := l.Proof(KeyHash("no|such|key")); err != ErrUnknownKey {
		t.Fatalf("unknown key error = %v, want ErrUnknownKey", err)
	}
	if err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	p, err := l.Proof(recs[0].KeyHash)
	if err != nil {
		t.Fatalf("sealed proof: %v", err)
	}
	if err := VerifyProof(p); err != nil {
		t.Fatalf("VerifyProof: %v", err)
	}
}

// TestTimedSeal checks the MaxWait latency bound: a lone appended record is
// sealed by the background loop without reaching the batch size.
func TestTimedSeal(t *testing.T) {
	recs := allRecords(t)[:1]
	l, err := Open(t.TempDir(), Config{BatchSize: 1000, MaxWait: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(recs[0]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Batches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed seal never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := l.Stats()
	if st.Pending != 0 || st.Seals != 1 || st.SealWaitSeconds <= 0 {
		t.Fatalf("after timed seal: %+v", st)
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("segmentNames: %v (%d)", err, len(names))
	}
	return filepath.Join(dir, names[len(names)-1])
}

// TestTruncatedTailRecovery crashes mid-write (simulated by chopping bytes
// off the tail) and demands the healthy prefix warm-starts with a note.
func TestTruncatedTailRecovery(t *testing.T) {
	recs := allRecords(t)
	dir := t.TempDir()
	writeLedger(t, dir, noTimer, recs) // 10 records → batches of 4,4 + tail seal of 2

	seg := lastSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, buf[:len(buf)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := Open(dir, noTimer)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer l.Close()
	st := l.Stats()
	if st.Rejected != 0 || st.ChainBroken {
		t.Fatalf("torn tail must not reject records: %+v", st)
	}
	// The chopped bytes destroyed the final seal: its two records are back
	// to pending, every record still replays.
	if n := l.Replay(func(*Record, *cert.Certificate) {}); n != len(recs) {
		t.Fatalf("replayed %d, want %d", n, len(recs))
	}
	if st.Batches != 2 || st.Pending != 2 {
		t.Fatalf("batches=%d pending=%d, want 2 and 2", st.Batches, st.Pending)
	}
	found := false
	for _, note := range st.Notes {
		found = found || strings.Contains(note, "truncated")
	}
	if !found {
		t.Fatalf("no truncation note in %v", st.Notes)
	}
}

// flipEntryByte flips one payload byte of the idx-th entry in the segment.
// With fixCRC the checksum is recomputed, modelling deliberate tampering
// rather than bit rot — framing then passes and only the Merkle seal can
// catch the rewrite.
func flipEntryByte(t *testing.T, path string, idx int, fixCRC bool) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; ; i++ {
		_, payload, next, ok, _ := decodeEntry(buf, off)
		if !ok {
			t.Fatalf("entry %d not found in %s", idx, path)
		}
		if i == idx {
			buf[off+headerBytes+len(payload)/2] ^= 0x01
			if fixCRC {
				crc := crc32.Checksum(buf[off+4:off+headerBytes+len(payload)], crcTable)
				binary.LittleEndian.PutUint32(buf[off+headerBytes+len(payload):], crc)
			}
			break
		}
		off = next
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBitFlipQuarantinesBatch: a checksum-failing record is skipped, its
// seal no longer matches, and the whole batch is condemned fail-closed —
// while the later, untouched batch still replays.
func TestBitFlipQuarantinesBatch(t *testing.T) {
	recs := allRecords(t)
	dir := t.TempDir()
	writeLedger(t, dir, noTimer, recs)

	flipEntryByte(t, lastSegment(t, dir), 0, false) // first record of batch 0

	l, err := Open(dir, noTimer)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	st := l.Stats()
	if !st.ChainBroken {
		t.Fatal("bit flip inside a sealed batch did not break the chain")
	}
	if st.Rejected != noTimer.BatchSize {
		t.Fatalf("rejected = %d, want the whole batch (%d)", st.Rejected, noTimer.BatchSize)
	}
	if n := l.Replay(func(*Record, *cert.Certificate) {}); n != len(recs)-noTimer.BatchSize {
		t.Fatalf("replayed %d, want %d (healthy batches only)", n, len(recs)-noTimer.BatchSize)
	}
	if len(l.Rejections()) != noTimer.BatchSize {
		t.Fatalf("Rejections() = %v", l.Rejections())
	}
}

// TestTamperedBytesBreakChain: rewriting a sealed record *with a corrected
// checksum* still condemns the batch — integrity does not rest on CRC alone.
func TestTamperedBytesBreakChain(t *testing.T) {
	recs := allRecords(t)
	dir := t.TempDir()
	writeLedger(t, dir, noTimer, recs)

	flipEntryByte(t, lastSegment(t, dir), 1, true)

	l, err := Open(dir, noTimer)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	st := l.Stats()
	if !st.ChainBroken || st.Rejected < 1 {
		t.Fatalf("fixed-CRC tampering went unnoticed: %+v", st)
	}
	if n := l.Replay(func(*Record, *cert.Certificate) {}); n > len(recs)-1 {
		t.Fatalf("replayed %d records from a tampered batch", n)
	}
}

// TestForgedRecordsQuarantined covers the semantic layer: records whose
// bytes are perfectly intact (written and sealed normally) but whose claims
// their certificates do not support. Each forgery class is quarantined
// individually; the honest records around them still warm-start.
func TestForgedRecordsQuarantined(t *testing.T) {
	recs := allRecords(t)
	honest := len(recs) - 3

	flipped := recs[honest] // verdict flipped, certificate untouched
	flipped.Related = !flipped.Related
	swapped := recs[honest+1] // certificate swapped in from another pair
	swapped.Cert = recs[0].Cert
	doctored := recs[honest+2] // certificate body edited to match the lie
	doctored.Cert = bytes.Replace(doctored.Cert, []byte(`"related":true`), []byte(`"related":false`), 1)
	if bytes.Equal(doctored.Cert, recs[honest+2].Cert) {
		// The pair was negative; flip the other way.
		doctored.Cert = bytes.Replace(doctored.Cert, []byte(`"related":false`), []byte(`"related":true`), 1)
	}

	dir := t.TempDir()
	writeLedger(t, dir, noTimer, append(append([]Record(nil), recs[:honest]...), flipped, swapped, doctored))

	l, err := Open(dir, noTimer)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	st := l.Stats()
	if st.Rejected != 3 {
		t.Fatalf("rejected = %d, want 3 forgeries; rejections: %v", st.Rejected, l.Rejections())
	}
	if st.ChainBroken {
		t.Fatal("forged content must not read as a chain break (the bytes are intact)")
	}
	if n := l.Replay(func(r *Record, _ *cert.Certificate) {
		if r.Key == flipped.Key || r.Key == swapped.Key || r.Key == doctored.Key {
			t.Fatalf("forged record %q replayed as trusted", r.Key)
		}
	}); n != honest {
		t.Fatalf("replayed %d, want %d honest records", n, honest)
	}
	// A forged record never gets a proof (it is not a trusted entry).
	if _, err := l.Proof(flipped.KeyHash); err != ErrUnknownKey {
		t.Fatalf("Proof(forged) = %v, want ErrUnknownKey", err)
	}
}

// TestSegmentRolling forces multiple segments and re-reads across them.
func TestSegmentRolling(t *testing.T) {
	recs := allRecords(t)
	dir := t.TempDir()
	cfg := Config{BatchSize: 3, MaxWait: -1, SegmentBytes: 1024}
	writeLedger(t, dir, cfg, recs)

	names, err := segmentNames(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("expected multiple segments, got %v (%v)", names, err)
	}
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if n := l.Replay(func(*Record, *cert.Certificate) {}); n != len(recs) {
		t.Fatalf("replayed %d across segments, want %d", n, len(recs))
	}
	if st := l.Stats(); st.Segments != len(names) || st.ChainBroken || st.Rejected != 0 {
		t.Fatalf("stats across segments: %+v", st)
	}
}

// TestIndexRecovery: a corrupt advisory index is noted and rebuilt; the log
// stays authoritative.
func TestIndexRecovery(t *testing.T) {
	recs := allRecords(t)[:3]
	dir := t.TempDir()
	writeLedger(t, dir, noTimer, recs)

	if err := os.WriteFile(filepath.Join(dir, indexName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, noTimer)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st := l.Stats()
	found := false
	for _, n := range st.Notes {
		found = found || strings.Contains(n, "index.json")
	}
	if !found {
		t.Fatalf("no index note in %v", st.Notes)
	}
	if st.Records != 3 || st.Rejected != 0 {
		t.Fatalf("index corruption affected the log: %+v", st)
	}
	l.Close()

	// The rebuilt index round-trips silently.
	l, err = Open(dir, noTimer)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l.Close()
	for _, n := range l.Stats().Notes {
		if strings.Contains(n, "index.json") {
			t.Fatalf("rebuilt index still flagged: %v", n)
		}
	}
}

// TestClosedLedger pins Close idempotence and the post-Close append error.
func TestClosedLedger(t *testing.T) {
	l, err := Open(t.TempDir(), noTimer)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(Record{}); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// TestNewRecordRefusals pins the constructor's fail-closed checks.
func TestNewRecordRefusals(t *testing.T) {
	if _, err := NewRecord(cert.RelLabelled, false, 0, 0, 0, true, 0, "", nil); err == nil {
		t.Fatal("nil certificate accepted")
	}
	ch := equiv.NewChecker(nil)
	ch.Certify = true
	rec := certRecord(t, ch, cert.RelLabelled, false, "a!", "a!")
	crt, err := cert.Unmarshal(rec.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecord(cert.RelLabelled, false, 0, 0, 0, !crt.Related, 0, "", crt); err == nil {
		t.Fatal("verdict/certificate disagreement accepted")
	}
	if _, err := NewRecord(cert.RelBarbed, false, 0, 0, 0, crt.Related, 0, "", crt); err == nil {
		t.Fatal("relation mismatch accepted")
	}
}
