package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// The Merkle tree over a sealed batch follows the RFC 6962 shape: leaves are
// domain-separated hashes of the record payload bytes exactly as framed on
// disk, interior nodes split at the largest power of two below the leaf
// count, and an inclusion proof is the bottom-up list of sibling subtree
// hashes. Verification needs only the record bytes, the leaf position and
// the audit path — never the rest of the log.

// genesisChain seeds the seal hash chain.
func genesisChain() [32]byte { return sha256.Sum256([]byte("bpi-ledger-genesis-v1")) }

// leafHash hashes one record payload (0x00 domain prefix).
func leafHash(payload []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree hashes (0x01 domain prefix).
func nodeHash(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// chainHash links a sealed root onto the running chain.
func chainHash(prev, root [32]byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(root[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// splitPoint is the largest power of two strictly below n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// merkleRoot computes the root over already-hashed leaves.
func merkleRoot(leaves [][32]byte) [32]byte {
	switch n := len(leaves); n {
	case 0:
		return sha256.Sum256(nil)
	case 1:
		return leaves[0]
	default:
		k := splitPoint(n)
		return nodeHash(merkleRoot(leaves[:k]), merkleRoot(leaves[k:]))
	}
}

// auditPath returns the bottom-up sibling hashes proving leaves[idx] is under
// merkleRoot(leaves).
func auditPath(leaves [][32]byte, idx int) [][32]byte {
	n := len(leaves)
	if n <= 1 {
		return nil
	}
	k := splitPoint(n)
	if idx < k {
		return append(auditPath(leaves[:k], idx), merkleRoot(leaves[k:]))
	}
	return append(auditPath(leaves[k:], idx-k), merkleRoot(leaves[:k]))
}

// rootFromPath folds an audit path back up to a root.
func rootFromPath(leaf [32]byte, idx, n int, path [][32]byte) ([32]byte, error) {
	if idx < 0 || idx >= n {
		return [32]byte{}, fmt.Errorf("ledger: leaf index %d out of range [0,%d)", idx, n)
	}
	if n == 1 {
		if len(path) != 0 {
			return [32]byte{}, fmt.Errorf("ledger: audit path has %d extra hashes", len(path))
		}
		return leaf, nil
	}
	if len(path) == 0 {
		return [32]byte{}, fmt.Errorf("ledger: audit path exhausted at subtree of %d leaves", n)
	}
	sib := path[len(path)-1]
	rest := path[:len(path)-1]
	k := splitPoint(n)
	if idx < k {
		sub, err := rootFromPath(leaf, idx, k, rest)
		if err != nil {
			return [32]byte{}, err
		}
		return nodeHash(sub, sib), nil
	}
	sub, err := rootFromPath(leaf, idx-k, n-k, rest)
	if err != nil {
		return [32]byte{}, err
	}
	return nodeHash(sib, sub), nil
}

// InclusionProof is the compact, self-contained evidence that one record is
// covered by a sealed Merkle root that is itself hash-chained into the
// ledger. A holder of a trusted Root (or Chain head) needs nothing else:
// VerifyProof recomputes the leaf from the embedded record bytes, folds the
// audit path, and checks the chain link.
type InclusionProof struct {
	Key     string `json:"key"`
	KeyHash string `json:"key_hash"`
	Seq     uint64 `json:"seq"`
	Batch   int    `json:"batch"`
	Leaf    int    `json:"leaf"`
	Count   int    `json:"leaf_count"`
	// Record is the payload exactly as framed on disk (the leaf preimage).
	Record json.RawMessage `json:"record"`
	// Audit is the bottom-up sibling path, hex.
	Audit []string `json:"audit"`
	Root  string   `json:"root"`
	Prev  string   `json:"prev"`
	Chain string   `json:"chain"`
}

// VerifyProof replays an inclusion proof: leaf := H(0x00‖record),
// fold(Audit) must equal Root, and SHA-256(Prev‖Root) must equal Chain.
// Callers establish trust by comparing Root or Chain against a value they
// hold independently (e.g. a previously recorded /v1/ledger/stats head).
func VerifyProof(p *InclusionProof) error {
	if p == nil {
		return fmt.Errorf("ledger: nil proof")
	}
	var rec Record
	if err := json.Unmarshal(p.Record, &rec); err != nil {
		return fmt.Errorf("ledger: proof record does not parse: %w", err)
	}
	if rec.KeyHash != p.KeyHash || KeyHash(rec.Key) != p.KeyHash {
		return fmt.Errorf("ledger: proof key hash %s does not match record key %q", p.KeyHash, rec.Key)
	}
	if rec.Seq != p.Seq {
		return fmt.Errorf("ledger: proof seq %d vs record seq %d", p.Seq, rec.Seq)
	}
	path := make([][32]byte, len(p.Audit))
	for i, h := range p.Audit {
		b, err := hex.DecodeString(h)
		if err != nil || len(b) != 32 {
			return fmt.Errorf("ledger: audit[%d] is not a 32-byte hex hash", i)
		}
		copy(path[i][:], b)
	}
	root, err := rootFromPath(leafHash(p.Record), p.Leaf, p.Count, path)
	if err != nil {
		return err
	}
	wantRoot, err := hex.DecodeString(p.Root)
	if err != nil || len(wantRoot) != 32 {
		return fmt.Errorf("ledger: proof root is not a 32-byte hex hash")
	}
	if !bytes.Equal(root[:], wantRoot) {
		return fmt.Errorf("ledger: recomputed root %x does not match sealed root %s", root, p.Root)
	}
	prev, err := hex.DecodeString(p.Prev)
	if err != nil || len(prev) != 32 {
		return fmt.Errorf("ledger: proof prev is not a 32-byte hex hash")
	}
	var prevA, rootA [32]byte
	copy(prevA[:], prev)
	copy(rootA[:], wantRoot)
	if got := chainHash(prevA, rootA); hex.EncodeToString(got[:]) != p.Chain {
		return fmt.Errorf("ledger: chain link SHA256(prev‖root) = %x does not match %s", got, p.Chain)
	}
	return nil
}
