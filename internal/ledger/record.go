package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"bpi/internal/cert"
	"bpi/internal/parser"
	"bpi/internal/syntax"
)

// Record is one persisted verdict: the canonical pair key, the verdict with
// its Result metadata, the budgets it was computed under (so a warm-started
// daemon can rebuild the exact verdict-cache key), and the marshalled
// certificate that makes the record trustworthy across binary versions.
type Record struct {
	// Seq is the ledger-assigned append sequence number (1-based).
	Seq uint64 `json:"seq"`
	// Key is the canonical pair key: relation | weak | the lexicographically
	// ordered alpha-class keys of the two canonical terms. KeyHash is its
	// SHA-256 in hex, the URL-safe address of the record.
	Key     string `json:"key"`
	KeyHash string `json:"key_hash"`

	Rel     string `json:"rel"`
	Weak    bool   `json:"weak,omitempty"`
	P       string `json:"p"`
	Q       string `json:"q"`
	Related bool   `json:"related"`
	Pairs   int    `json:"pairs,omitempty"`
	Reason  string `json:"reason,omitempty"`

	// Budgets the verdict was computed under. A conclusive verdict is a pure
	// function of the canonical pair and the relation alone; the budgets are
	// carried only so replay can seed the daemon's budget-keyed LRU exactly.
	MaxPairs   int `json:"max_pairs,omitempty"`
	MaxClosure int `json:"max_closure,omitempty"`
	MaxSubs    int `json:"max_subs,omitempty"`

	// UnixNano is the append wall-clock time (informational only).
	UnixNano int64 `json:"t,omitempty"`

	// Cert is the marshalled internal/cert certificate. Replay trusts a
	// record only after the independent verifier accepts this certificate
	// and its terms re-derive Key.
	Cert json.RawMessage `json:"cert"`
}

// PairKey builds the canonical ledger key from the relation spec and the two
// alpha-class keys (syntax.Key of the simplified terms). All the paper's
// relations are symmetric, so the sides are ordered lexicographically and one
// key serves both orientations.
func PairKey(rel string, weak bool, kp, kq string) string {
	if kq < kp {
		kp, kq = kq, kp
	}
	return fmt.Sprintf("%s|%t|%s|%s", rel, weak, kp, kq)
}

// KeyHash is the hex SHA-256 of a logical pair key — the address used by
// GET /v1/ledger/proof/{key} and `bpiledger proof -key`.
func KeyHash(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// termKey parses one canonically printed term and returns its alpha-class key.
func termKey(src string) (string, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("ledger: unparseable term %q: %w", src, err)
	}
	return syntax.Key(syntax.Simplify(p)), nil
}

// NewRecord assembles an unsequenced record from a certified verdict. The
// terms and the pair key are derived from the certificate itself, so the
// record cannot name a different pair than its evidence proves.
func NewRecord(rel string, weak bool, maxPairs, maxClosure, maxSubs int,
	related bool, pairs int, reason string, crt *cert.Certificate) (Record, error) {
	if crt == nil {
		return Record{}, fmt.Errorf("ledger: refusing to record an uncertified verdict")
	}
	if crt.Relation != rel || crt.Weak != weak || crt.Related != related {
		return Record{}, fmt.Errorf("ledger: certificate (%s weak=%t related=%t) disagrees with verdict (%s weak=%t related=%t)",
			crt.Relation, crt.Weak, crt.Related, rel, weak, related)
	}
	kp, err := termKey(crt.P)
	if err != nil {
		return Record{}, err
	}
	kq, err := termKey(crt.Q)
	if err != nil {
		return Record{}, err
	}
	raw, err := json.Marshal(crt)
	if err != nil {
		return Record{}, fmt.Errorf("ledger: marshal certificate: %w", err)
	}
	key := PairKey(rel, weak, kp, kq)
	return Record{
		Key: key, KeyHash: KeyHash(key),
		Rel: rel, Weak: weak, P: crt.P, Q: crt.Q,
		Related: related, Pairs: pairs, Reason: reason,
		MaxPairs: maxPairs, MaxClosure: maxClosure, MaxSubs: maxSubs,
		Cert: raw,
	}, nil
}

// Seal is the payload of one sealed Merkle batch: the records it covers, the
// tree root over their payload hashes, and the hash chain linking it to every
// seal before it. Chain = SHA-256(PrevBytes || RootBytes), from a fixed
// genesis value, so rewriting any sealed batch breaks every later link.
type Seal struct {
	Batch    int    `json:"batch"`
	FirstSeq uint64 `json:"first_seq"`
	Count    int    `json:"count"`
	Root     string `json:"root"`
	Prev     string `json:"prev"`
	Chain    string `json:"chain"`
	UnixNano int64  `json:"t,omitempty"`
}

// On-disk framing: every entry (verdict or seal) is
//
//	[4B magic][1B type][4B length][payload][4B CRC-32C]
//
// with the checksum covering type+length+payload. Length-prefix framing makes
// a payload bit-flip skippable (the next entry still aligns); a corrupted
// header is indistinguishable from a torn write and ends the readable region.
const (
	entryMagic   = 0xB1D6E901
	entryVerdict = byte(1)
	entrySeal    = byte(2)
	headerBytes  = 4 + 1 + 4
	trailerBytes = 4

	// maxEntryBytes bounds a single payload; anything larger is treated as a
	// corrupted header rather than an allocation request.
	maxEntryBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeEntry frames one payload for appending.
func encodeEntry(typ byte, payload []byte) []byte {
	buf := make([]byte, headerBytes+len(payload)+trailerBytes)
	binary.LittleEndian.PutUint32(buf[0:], entryMagic)
	buf[4] = typ
	binary.LittleEndian.PutUint32(buf[5:], uint32(len(payload)))
	copy(buf[headerBytes:], payload)
	crc := crc32.Checksum(buf[4:headerBytes+len(payload)], crcTable)
	binary.LittleEndian.PutUint32(buf[headerBytes+len(payload):], crc)
	return buf
}

// decodeEntry reads the entry at buf[off:]. It returns the entry type, the
// payload, the offset just past the entry, and ok=false when the bytes at off
// do not frame a whole entry (torn tail or corrupted header). A framed entry
// whose checksum fails returns ok=true with crcOK=false: the caller can skip
// it and keep reading.
func decodeEntry(buf []byte, off int) (typ byte, payload []byte, next int, ok, crcOK bool) {
	if off+headerBytes > len(buf) {
		return 0, nil, 0, false, false
	}
	if binary.LittleEndian.Uint32(buf[off:]) != entryMagic {
		return 0, nil, 0, false, false
	}
	typ = buf[off+4]
	n := int(binary.LittleEndian.Uint32(buf[off+5:]))
	if n > maxEntryBytes || off+headerBytes+n+trailerBytes > len(buf) {
		return 0, nil, 0, false, false
	}
	payload = buf[off+headerBytes : off+headerBytes+n]
	want := binary.LittleEndian.Uint32(buf[off+headerBytes+n:])
	got := crc32.Checksum(buf[off+4:off+headerBytes+n], crcTable)
	return typ, payload, off + headerBytes + n + trailerBytes, true, want == got
}
