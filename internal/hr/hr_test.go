package hr

import (
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	d names.Name = "d"
	x names.Name = "x"
)

// The embedded guarded input accepts in-set values and behaves like a
// discard for out-of-set values.
func TestEmbeddedInputSelectivity(t *testing.T) {
	// a∈{b}?(x). x̄ — accepts only b.
	p := ToBpi(In{Ch: a, Set: []names.Name{b}, Param: x, Cont: Out{Ch: x, Val: c}})
	sys := semantics.NewSystem(nil)
	ch := equiv.NewChecker(sys)

	// Closed world (νa) so the only message on a is the driver's.
	// In-set: the value is taken and b̄c follows, up to the internal step.
	withB := syntax.Restrict(syntax.Par{L: syntax.SendN(a, b), R: p}, a)
	res, err := ch.Labelled(withB, syntax.SendN(b, c), true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Related {
		t.Error("in-set reception must proceed like a plain input")
	}

	// Out-of-set: the guarded input ignores the message — nothing visible
	// ever happens (the noisy restore loop is weakly inert).
	withD := syntax.Restrict(syntax.Par{L: syntax.SendN(a, d), R: p}, a)
	res, err = ch.Labelled(withD, syntax.PNil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Related {
		t.Error("out-of-set reception must be indistinguishable from a discard")
	}
}

// The recursive embedding agrees with the finite direct unrolling (weak
// bisimilarity within the unrolled depth).
func TestEmbeddingAgreesWithDirectSemantics(t *testing.T) {
	samples := []Proc{
		In{Ch: a, Set: []names.Name{b, c}, Param: x, Cont: Out{Ch: x, Val: d}},
		Par{
			L: Out{Ch: a, Val: b},
			R: In{Ch: a, Set: []names.Name{b}, Param: x, Cont: Out{Ch: c, Val: x}},
		},
		Sum{
			L: In{Ch: a, Set: []names.Name{b}, Param: x, Cont: Nil{}},
			R: Out{Ch: d, Val: d},
		},
	}
	ch := equiv.NewChecker(nil)
	for i, s := range samples {
		rec := ToBpi(s)
		direct := DirectSemantics(s, 3)
		// A finite unrolling cannot absorb unboundedly many out-of-set
		// broadcasts from an open environment, so the comparison closes the
		// guarded channel: νa (driver ‖ P) receives exactly the driver's
		// message. Within that closed world the recursion and the depth-3
		// unrolling must be weakly bisimilar.
		driver := syntax.SendN(a, b)
		closeUp := func(p syntax.Proc) syntax.Proc {
			return syntax.Restrict(syntax.Par{L: driver, R: p}, a)
		}
		res, err := ch.Labelled(closeUp(rec), closeUp(direct), true)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if !res.Related {
			t.Errorf("sample %d: embedding deviates from the direct semantics", i)
		}
	}
}

// The reconfiguration gap: bπ can listen on a channel it has just received;
// any hr process has a statically fixed receivable alphabet. We exhibit the
// bπ behaviour and check no single-input hr embedding over the same free
// names matches it.
func TestReconfigurationGap(t *testing.T) {
	// bπ: a(x).x(y).c̄y — the second input's channel is the received name.
	mobile := syntax.Recv(a, []names.Name{x},
		syntax.Recv(x, []names.Name{"y"}, syntax.SendN(c, "y")))
	ch := equiv.NewChecker(nil)

	// Against every hr guard set S ⊆ {a,b,c,d} for a two-step hr process
	// a∈S?(x). b∈S'?(y). c̄y — the channels are fixed; feeding the fresh
	// name e as x and then broadcasting on e distinguishes them.
	driver := func(p syntax.Proc) syntax.Proc {
		return syntax.Group(
			syntax.Restrict(
				syntax.Send(a, []names.Name{"e"}, syntax.Send("e", []names.Name{d}, syntax.PNil)), "e"),
			p,
		)
	}
	// The mobile process relays d to c after the private dialogue.
	okMobile, err := chCanBarb(driver(mobile), c)
	if err != nil {
		t.Fatal(err)
	}
	if !okMobile {
		t.Fatal("mobile process failed to relay on the received channel")
	}
	// Every static-alphabet candidate misses the relay: its second input
	// channel cannot be the fresh e.
	for _, second := range []names.Name{a, b, c, d} {
		static := ToBpi(In{Ch: a, Set: []names.Name{a, b, c, d}, Param: x,
			Cont: In{Ch: second, Set: []names.Name{a, b, c, d}, Param: "y",
				Cont: Out{Ch: c, Val: "y"}}})
		okStatic, err := chCanBarb(driver(static), c)
		if err != nil {
			t.Fatal(err)
		}
		if okStatic {
			t.Errorf("static second input on %s unexpectedly relayed the private name", second)
		}
	}
	_ = ch
}

func chCanBarb(p syntax.Proc, watch names.Name) (bool, error) {
	sys := semantics.NewSystem(nil)
	seen := map[string]bool{}
	queue := []syntax.Proc{p}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		k := syntax.Key(syntax.Simplify(cur))
		if seen[k] || len(seen) > 20000 {
			continue
		}
		seen[k] = true
		ts, err := sys.Steps(cur)
		if err != nil {
			return false, err
		}
		for _, t := range ts {
			if t.Act.IsOutput() && t.Act.Subj == watch {
				return true, nil
			}
			if t.Act.IsStep() {
				queue = append(queue, t.Target)
			}
		}
	}
	return false, nil
}
