// Package hr implements the restricted-input broadcast calculus that the
// paper contrasts itself with (Hennessy & Rathke, CONCUR'95): the input
// prefix x∈S?p receives only values drawn from a *static* set S and ignores
// everything else; crucially "the continuation process p does not change
// dynamically his restrictions on further inputs; so it cannot model
// reconfigurable systems" (paper §1).
//
// Two things are demonstrated mechanically:
//
//  1. hr embeds into bπ: the guarded input becomes a recursive bπ input that
//     restores itself on out-of-set values,
//
//     ⟦a∈S?(x).p⟧ = rec R. a(x).((x∈S) ⟦p⟧, R)
//
//     which is behaviourally a discard by the noisy law (receiving and
//     restoring ≈ ignoring — the content of axiom (H)). The embedding is
//     validated against weak bπ bisimilarity in tests.
//
//  2. the converse gap: a bπ process can *reconfigure* its receivable set
//     with received names (e.g. a(x).x(y).p listens on a channel it has just
//     learnt), which no static S can express; the tests exhibit the
//     distinguishing behaviour.
package hr

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Proc is an hr process (a value-passing fragment sufficient for the
// comparison: prefixes, choice, parallel).
type Proc interface{ isHR() }

// Nil is inert.
type Nil struct{}

// Out broadcasts Val on channel Ch.
type Out struct {
	Ch, Val names.Name
	Cont    Proc
}

// In receives on Ch a value from the static set Set, binding Param; values
// outside Set are ignored (the process stays as it is).
type In struct {
	Ch    names.Name
	Set   []names.Name
	Param names.Name
	Cont  Proc
}

// Sum is choice, Par parallel composition.
type Sum struct{ L, R Proc }

// Par is parallel composition.
type Par struct{ L, R Proc }

func (Nil) isHR() {}
func (Out) isHR() {}
func (In) isHR()  {}
func (Sum) isHR() {}
func (Par) isHR() {}

// ToBpi embeds an hr process into the bπ-calculus. Each restricted input
// becomes a guarded recursion that receives anything on the channel and
// restores itself when the value is outside the set — by the noisy law this
// is indistinguishable from ignoring the message.
func ToBpi(p Proc) syntax.Proc {
	e := &embedder{}
	return e.embed(p)
}

type embedder struct{ counter int }

func (e *embedder) embed(p Proc) syntax.Proc {
	if p == nil {
		return syntax.PNil // omitted continuations read as nil
	}
	switch t := p.(type) {
	case Nil:
		return syntax.PNil
	case Out:
		return syntax.Send(t.Ch, []names.Name{t.Val}, e.embed(t.Cont))
	case Sum:
		return syntax.Sum{L: e.embed(t.L), R: e.embed(t.R)}
	case Par:
		return syntax.Par{L: e.embed(t.L), R: e.embed(t.R)}
	case In:
		cont := e.embed(t.Cont)
		e.counter++
		id := fmt.Sprintf("HR%d", e.counter)
		// Free names of the recursion body: channel, set elements, and the
		// continuation's frees minus the parameter.
		fns := syntax.FreeNames(cont)
		fns.Remove(t.Param)
		fns = fns.Add(t.Ch).AddSlice(t.Set)
		params := fns.Sorted()
		// membership cascade: (x=s1) cont, ((x=s2) cont, (… , R))
		var body syntax.Proc = syntax.Call{Id: id, Args: params}
		for i := len(t.Set) - 1; i >= 0; i-- {
			body = syntax.If(t.Param, t.Set[i], cont, body)
		}
		rec := syntax.Rec{Id: id, Params: params,
			Body: syntax.Recv(t.Ch, []names.Name{t.Param}, body),
			Args: params}
		return rec
	}
	panic("hr: unknown node")
}

// DirectSemantics gives hr its own reference semantics as a bπ term that is
// *structurally* a one-shot guarded input (no recursion) — receiving an
// out-of-set value behaves as the original process by construction. It is
// used to cross-check the recursive embedding.
//
//	a∈S?(x).p  ⇒  a(x).((x∈S) ⟦p⟧, ⟦a∈S?(x).p⟧ unrolled k times, then nil)
//
// Because the unrolling is finite it is only faithful up to depth k; the
// tests compare it with the recursive embedding within that depth.
func DirectSemantics(p Proc, k int) syntax.Proc {
	if p == nil {
		return syntax.PNil
	}
	switch t := p.(type) {
	case Nil:
		return syntax.PNil
	case Out:
		return syntax.Send(t.Ch, []names.Name{t.Val}, DirectSemantics(t.Cont, k))
	case Sum:
		return syntax.Sum{L: DirectSemantics(t.L, k), R: DirectSemantics(t.R, k)}
	case Par:
		return syntax.Par{L: DirectSemantics(t.L, k), R: DirectSemantics(t.R, k)}
	case In:
		if k == 0 {
			return syntax.PNil
		}
		cont := DirectSemantics(t.Cont, k)
		var body syntax.Proc = DirectSemantics(p, k-1)
		for i := len(t.Set) - 1; i >= 0; i-- {
			body = syntax.If(t.Param, t.Set[i], cont, body)
		}
		return syntax.Recv(t.Ch, []names.Name{t.Param}, body)
	}
	panic("hr: unknown node")
}
