package hr

import "testing"

// Proc is sealed: exactly these five Hennessy–Rathke node types exist.
func TestProcSealed(t *testing.T) {
	procs := []Proc{Nil{}, Out{}, In{}, Sum{}, Par{}}
	if len(procs) != 5 {
		t.Fatalf("%d node types, want 5", len(procs))
	}
	for _, p := range procs {
		p.isHR()
	}
}
