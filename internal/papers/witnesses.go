package papers

import (
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Witness is a named process pair together with the paper's claims about it.
type Witness struct {
	Name string
	// Where in the paper the pair appears.
	Source string
	P, Q   syntax.Proc
	// Expected verdicts (strong relations).
	Labelled, Barbed, Step, OneStep, Congruent bool
}

// Witnesses returns the process pairs of Remarks 1–4 (and the noisy law)
// with the verdicts the paper claims. The experiment suite re-derives every
// verdict with the equivalence checkers.
func Witnesses() []Witness {
	var (
		a names.Name = "a"
		b names.Name = "b"
		c names.Name = "c"
		d names.Name = "d"
		x names.Name = "x"
		y names.Name = "y"
	)
	// Remark 1: p0 = āb, q0 = āb.c̄d.
	p0 := syntax.SendN(a, b)
	q0 := syntax.Send(a, []names.Name{b}, syntax.SendN(c, d))
	// Remark 2.1: p1 = b̄+τ.c̄, q1 = b̄+b̄.c̄.
	p1 := syntax.Choice(syntax.SendN(b), syntax.TauP(syntax.SendN(c)))
	q1 := syntax.Choice(syntax.SendN(b), syntax.Send(b, nil, syntax.SendN(c)))
	// Remark 2.2: p2 = b̄a.ā, q2 = b̄c.ā.
	p2 := syntax.Send(b, []names.Name{a}, syntax.SendN(a))
	q2 := syntax.Send(b, []names.Name{c}, syntax.SendN(a))
	// Noisy inputs.
	ia := syntax.RecvN(a)
	ib := syntax.RecvN(b)
	// Remark 3/4 expansion pair.
	ep := syntax.Choice(
		syntax.Recv(x, nil, syntax.Recv(y, nil, syntax.SendN(c))),
		syntax.Recv(y, nil, syntax.Group(syntax.RecvN(x), syntax.SendN(c))),
	)
	eq := syntax.Group(syntax.RecvN(x), syntax.Recv(y, nil, syntax.SendN(c)))

	return []Witness{
		{
			Name: "remark1-unrestricted", Source: "Remark 1",
			P: p0, Q: q0,
			Labelled: false, Barbed: true, Step: false, OneStep: false, Congruent: false,
		},
		{
			Name: "remark1-restricted", Source: "Remark 1",
			P: syntax.Restrict(p0, a), Q: syntax.Restrict(q0, a),
			Labelled: false, Barbed: false, Step: false, OneStep: false, Congruent: false,
		},
		{
			Name: "remark2-step-pair", Source: "Remark 2(1)",
			P: p1, Q: q1,
			Labelled: false, Barbed: false, Step: true, OneStep: false, Congruent: false,
		},
		{
			Name: "remark2-restriction-pair", Source: "Remark 2(2)",
			P: p2, Q: q2,
			Labelled: false, Barbed: true, Step: true, OneStep: false, Congruent: false,
		},
		{
			Name: "remark2-restricted", Source: "Remark 2(2)",
			P: syntax.Restrict(p2, a), Q: syntax.Restrict(q2, a),
			Labelled: false, Barbed: true, Step: false, OneStep: false, Congruent: false,
		},
		{
			Name: "noisy-inputs", Source: "Remark 3 material",
			P: ia, Q: ib,
			Labelled: true, Barbed: true, Step: true, OneStep: false, Congruent: false,
		},
		{
			Name: "expansion-pair", Source: "Remarks 3 and 4",
			P: ep, Q: eq,
			Labelled: true, Barbed: true, Step: true, OneStep: true, Congruent: false,
		},
		{
			Name: "identical", Source: "sanity",
			P: p0, Q: p0,
			Labelled: true, Barbed: true, Step: true, OneStep: true, Congruent: true,
		},
	}
}

// ParallelContext returns the distinguishing context of Remark 2(1):
// r1 = b + ā composed in parallel.
func ParallelContext() syntax.Proc {
	return syntax.Choice(syntax.RecvN("b"), syntax.SendN("a"))
}
