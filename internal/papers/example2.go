package papers

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Example 2: detecting inconsistencies in partitioned replicated databases.
//
// While the network is partitioned, transactions execute locally; when it
// reconnects (a broadcast on "unif"), the system checks whether the
// serialisation order is consistent by building a precedence graph between
// transactions and looking for cycles (plus the immediate error of two
// writes to one item in different partitions). Edges follow the paper's
// three rules for transactions t (earlier) and t1 (later) on one item:
//
//	1. t read, t1 wrote, same partition        → t before t1
//	2. t wrote, t1 read or wrote, same part.   → t before t1
//	3. t read an item written by t1, p ≠ p1    → t before t1
//
// The calculus realisation mirrors the paper's managers:
//
//	Item(i,i2,unif)  forks a Watch per transaction broadcast on i;
//	Watch            observes later same-item transactions, spawning a
//	                 unif-gated EdgeManager for rules 1/2, and switching to
//	                 the cross-partition protocol when unif fires;
//	SWatchW/SWatchR  exchange summaries on i2 after reconnection, spawning
//	                 rule-3 EdgeManagers and raising the write/write error.
//
// One deliberate deviation from the paper's text is documented in DESIGN.md:
// each post-reconnection watcher broadcasts its summary on i2 exactly once
// (the paper's STr_Man re-broadcasts forever), which keeps the state space
// finite without changing what is detectable.

// Names fixed by the Example 2 environment.
const (
	ReadTag  names.Name = "r"
	WriteTag names.Name = "w"
)

// TxnEnv returns the definitions environment of Example 2. The error signal
// and reconnection channels are passed at call sites; tags ReadTag/WriteTag
// are free constants compared with matches.
func TxnEnv() syntax.Env { return txnEnv(CycleEnv()) }

// TxnEnvOnce is TxnEnv over the finite-state single-shot token emitters
// (use for exhaustive reachability checks).
func TxnEnvOnce() syntax.Env { return txnEnv(CycleEnvOnce()) }

func txnEnv(env syntax.Env) syntax.Env {
	var (
		i, i2, unif = names.Name("i"), names.Name("i2"), names.Name("unif")
		errc        = names.Name("errc")
		t, ty, p    = names.Name("t"), names.Name("ty"), names.Name("p")
		t1, ty1, p1 = names.Name("t1"), names.Name("ty1"), names.Name("p1")
		call        = func(id string, args ...names.Name) syntax.Proc { return syntax.Call{Id: id, Args: args} }
	)

	// Item(i, i2, unif, errc): fork a watcher per transaction.
	env = env.Define("Item", []names.Name{i, i2, unif, errc},
		syntax.Recv(i, []names.Name{t, ty, p},
			syntax.Group(
				call("Item", i, i2, unif, errc),
				call("Watch", i, i2, unif, errc, t, ty, p),
			)))

	// Watch(i, i2, unif, errc, t, ty, p): pre-reconnection watcher for
	// transaction t of kind ty in partition p.
	//
	//	i(t1,ty1,p1). ([p1=p] ( rule 1/2 check ) , skip) ‖ Watch(...)
	//	+ unif(). ([ty=w] SWatchW , SWatchR)
	sameEdge := syntax.If(p1, p,
		// same partition: edge t → t1 when ty=w or ty1=w (rules 1/2),
		// gated on reconnection.
		syntax.If(ty, WriteTag,
			syntax.Recv(unif, nil, call("EdgeManager", errc, t, t1)),
			syntax.If(ty1, WriteTag,
				syntax.Recv(unif, nil, call("EdgeManager", errc, t, t1)),
				syntax.PNil)),
		syntax.PNil)
	env = env.Define("Watch", []names.Name{i, i2, unif, errc, t, ty, p},
		syntax.Choice(
			syntax.Recv(i, []names.Name{t1, ty1, p1},
				syntax.Group(sameEdge, call("Watch", i, i2, unif, errc, t, ty, p))),
			syntax.Recv(unif, nil,
				syntax.If(ty, WriteTag,
					call("SWatchW", i2, errc, t, p),
					call("SWatchR", i2, errc, t, p))),
		))

	// SWatchW(i2, errc, t, p): a writer after reconnection. It announces
	// itself once on i2 and reacts to announcements: a cross-partition
	// write is an immediate error (contradictory edges), a cross-partition
	// read t1 precedes the write (rule 3: edge t1 → t).
	env = env.Define("SWatchW", []names.Name{i2, errc, t, p},
		syntax.Choice(
			syntax.Recv(i2, []names.Name{t1, ty1, p1},
				syntax.Group(
					syntax.If(p1, p, syntax.PNil,
						syntax.If(ty1, WriteTag,
							syntax.SendN(errc),
							call("EdgeManager", errc, t1, t))),
					call("SWatchW", i2, errc, t, p))),
			syntax.Send(i2, []names.Name{t, WriteTag, p}, call("SWatchWq", i2, errc, t, p)),
		))
	// Quiet variant: has already announced itself.
	env = env.Define("SWatchWq", []names.Name{i2, errc, t, p},
		syntax.Recv(i2, []names.Name{t1, ty1, p1},
			syntax.Group(
				syntax.If(p1, p, syntax.PNil,
					syntax.If(ty1, WriteTag,
						syntax.SendN(errc),
						call("EdgeManager", errc, t1, t))),
				call("SWatchWq", i2, errc, t, p))))

	// SWatchR(i2, errc, t, p): a reader after reconnection. A cross-
	// partition write t1 must have happened after the read (rule 3: edge
	// t → t1); reads commute.
	env = env.Define("SWatchR", []names.Name{i2, errc, t, p},
		syntax.Choice(
			syntax.Recv(i2, []names.Name{t1, ty1, p1},
				syntax.Group(
					syntax.If(p1, p, syntax.PNil,
						syntax.If(ty1, WriteTag,
							call("EdgeManager", errc, t, t1),
							syntax.PNil)),
					call("SWatchR", i2, errc, t, p))),
			syntax.Send(i2, []names.Name{t, ReadTag, p}, call("SWatchRq", i2, errc, t, p)),
		))
	env = env.Define("SWatchRq", []names.Name{i2, errc, t, p},
		syntax.Recv(i2, []names.Name{t1, ty1, p1},
			syntax.Group(
				syntax.If(p1, p, syntax.PNil,
					syntax.If(ty1, WriteTag,
						call("EdgeManager", errc, t, t1),
						syntax.PNil)),
				call("SWatchRq", i2, errc, t, p))))

	return env
}

func call2(id string, args ...names.Name) syntax.Proc { return syntax.Call{Id: id, Args: args} }

// Txn is one transaction event in temporal order: transaction ID accessed
// Item (reading or writing) while executing in partition Part.
type Txn struct {
	ID    names.Name
	Item  names.Name
	Write bool
	Part  names.Name
}

func (t Txn) tag() names.Name {
	if t.Write {
		return WriteTag
	}
	return ReadTag
}

// TransactionSystem assembles the Example 2 configuration for a history of
// transactions: one Item manager per item (with its i2 summary channel), a
// feeder broadcasting the history in temporal order followed by the
// reconnection broadcast on unif, signalling inconsistencies on errSig.
func TransactionSystem(history []Txn, unif, errSig names.Name) syntax.Proc {
	items := names.NewSet()
	for _, tx := range history {
		items = items.Add(tx.Item)
	}
	var parts []syntax.Proc
	for _, it := range items.Sorted() {
		parts = append(parts, call2("Item", it, summaryChan(it), unif, errSig))
	}
	// Feeder: broadcast each event on its item channel, then reconnect.
	var feeder syntax.Proc = syntax.SendN(unif)
	for k := len(history) - 1; k >= 0; k-- {
		tx := history[k]
		feeder = syntax.Send(tx.Item, []names.Name{tx.ID, tx.tag(), tx.Part}, feeder)
	}
	parts = append(parts, feeder)
	return syntax.Group(parts...)
}

// summaryChan returns the post-reconnection channel paired with an item.
func summaryChan(item names.Name) names.Name {
	return names.Name(fmt.Sprintf("%s2", item))
}

// PrecedenceEdges is the plain-Go reference implementation of the paper's
// three rules, returning the precedence edges of a history.
func PrecedenceEdges(history []Txn) []Edge {
	var out []Edge
	for i, t := range history {
		for _, t1 := range history[i+1:] {
			if t.Item != t1.Item || t.ID == t1.ID {
				continue
			}
			switch {
			case t.Part == t1.Part && (t.Write || t1.Write):
				out = append(out, Edge{t.ID, t1.ID}) // rules 1 and 2
			case t.Part != t1.Part && !t.Write && t1.Write:
				out = append(out, Edge{t.ID, t1.ID}) // rule 3, read first
			case t.Part != t1.Part && t.Write && !t1.Write:
				out = append(out, Edge{t1.ID, t.ID}) // rule 3, write first
			}
		}
	}
	return out
}

// WriteWriteConflict reports whether two different transactions wrote the
// same item in different partitions (the immediate inconsistency).
func WriteWriteConflict(history []Txn) bool {
	for i, t := range history {
		if !t.Write {
			continue
		}
		for _, t1 := range history[i+1:] {
			if t1.Write && t1.Item == t.Item && t1.Part != t.Part && t1.ID != t.ID {
				return true
			}
		}
	}
	return false
}

// InconsistentOracle is the reference verdict for a history: a write/write
// cross-partition conflict or a cycle in the precedence graph.
func InconsistentOracle(history []Txn) bool {
	return WriteWriteConflict(history) || HasCycleOracle(PrecedenceEdges(history))
}
