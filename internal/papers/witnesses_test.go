package papers

import (
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/syntax"
)

// TestWitnessVerdicts re-derives every claim of Remarks 1–4 with the
// equivalence checkers (experiment E3).
func TestWitnessVerdicts(t *testing.T) {
	ch := equiv.NewChecker(nil)
	for _, w := range Witnesses() {
		if r, err := ch.Labelled(w.P, w.Q, false); err != nil {
			t.Fatalf("%s labelled: %v", w.Name, err)
		} else if r.Related != w.Labelled {
			t.Errorf("%s (%s): labelled = %v, paper claims %v", w.Name, w.Source, r.Related, w.Labelled)
		}
		if r, err := ch.Barbed(w.P, w.Q, false); err != nil {
			t.Fatalf("%s barbed: %v", w.Name, err)
		} else if r.Related != w.Barbed {
			t.Errorf("%s (%s): barbed = %v, paper claims %v", w.Name, w.Source, r.Related, w.Barbed)
		}
		if r, err := ch.Step(w.P, w.Q, false); err != nil {
			t.Fatalf("%s step: %v", w.Name, err)
		} else if r.Related != w.Step {
			t.Errorf("%s (%s): step = %v, paper claims %v", w.Name, w.Source, r.Related, w.Step)
		}
		if got, err := ch.OneStep(w.P, w.Q, false); err != nil {
			t.Fatalf("%s one-step: %v", w.Name, err)
		} else if got != w.OneStep {
			t.Errorf("%s (%s): ~+ = %v, paper claims %v", w.Name, w.Source, got, w.OneStep)
		}
		if got, err := ch.Congruence(w.P, w.Q, false); err != nil {
			t.Fatalf("%s congruence: %v", w.Name, err)
		} else if got != w.Congruent {
			t.Errorf("%s (%s): ~c = %v, paper claims %v", w.Name, w.Source, got, w.Congruent)
		}
	}
}

// TestWitnessParallelContext reproduces Remark 2(1)'s distinguishing
// composition.
func TestWitnessParallelContext(t *testing.T) {
	ch := equiv.NewChecker(nil)
	var pair Witness
	for _, w := range Witnesses() {
		if w.Name == "remark2-step-pair" {
			pair = w
		}
	}
	r1 := ParallelContext()
	res, err := ch.Step(syntax.Group(pair.P, r1), syntax.Group(pair.Q, r1), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Related {
		t.Error("parallel context failed to distinguish the step-bisimilar pair")
	}
}
