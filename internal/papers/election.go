package papers

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Broadcast leader election — an original example in the paper's spirit
// (group interaction where "processes may interact without having explicit
// knowledge of each other"): n candidates race to claim leadership on a
// shared channel. Because a broadcast reaches *every* listener atomically,
// the first claim resolves the election in one step: the claimant becomes
// leader, everyone else hears the claim (they cannot refuse it, rule 12/13)
// and follows.
//
//	Candidate(id) = claim!(id).lead!(id) + claim?(w).follow!(id, w)
//
// Exactly one lead!(i) and n−1 follow!(j, i) fire in every maximal run —
// broadcast gives mutual exclusion for free, where point-to-point protocols
// need extra rounds.

// ElectionEnv returns the candidate definition.
func ElectionEnv() syntax.Env {
	id, w := names.Name("id"), names.Name("w")
	claim, lead, follow := names.Name("claim"), names.Name("lead"), names.Name("follow")
	env := syntax.Env{}
	env = env.Define("Candidate", []names.Name{id, claim, lead, follow},
		syntax.Choice(
			syntax.Send(claim, []names.Name{id}, syntax.SendN(lead, id)),
			syntax.Recv(claim, []names.Name{w}, syntax.SendN(follow, id, w)),
		))
	return env
}

// ElectionSystem builds n candidates with ids cand0 … cand(n-1) sharing the
// given claim/lead/follow channels.
func ElectionSystem(n int, claim, lead, follow names.Name) syntax.Proc {
	parts := make([]syntax.Proc, n)
	for i := range parts {
		parts[i] = syntax.Call{Id: "Candidate",
			Args: []names.Name{CandidateID(i), claim, lead, follow}}
	}
	return syntax.Group(parts...)
}

// CandidateID names the i-th candidate.
func CandidateID(i int) names.Name { return names.Name(fmt.Sprintf("cand%d", i)) }
