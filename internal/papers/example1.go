// Package papers builds the systems of the paper's Section 2.2 as reusable
// definitions environments — Example 1 (distributed cycle detection),
// Example 2 (transaction-inconsistency detection in partitioned replicated
// databases) — plus the witness processes of Remarks 1–4 used throughout the
// experiment suite.
package papers

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Example 1: a distributed algorithm for cycle detection.
//
//	Detector(i,o)        ≝ i(x).i(y).(Detector(i,o) ‖ EdgeManager(o,x,y))
//	EdgeManager(o,a,b)   ≝ νu (Emit(b,u) ‖ Listen(o,a,b,u))
//	Emit(b,u)            ≝ b̄u.Emit(b,u)
//	Listen(o,a,b,u)      ≝ a(w).((u=w) ō, (b̄w ‖ Listen(o,a,b,u)))
//
// Vertices are channels; an edge (a,b) is managed by a process that floods
// its private token u along b and forwards every foreign token received on
// a towards b. A token returning home means the token travelled a cycle,
// signalled on o. Name generation (νu) gives each edge an unforgeable
// identity; name mobility carries tokens across edges.

// CycleEnv returns the definitions environment of Example 1 exactly as the
// paper writes it: the token emitter Emit loops, flooding the private token
// forever. That robustness (against managers joining late) makes the state
// space infinite, so exhaustive analyses should use CycleEnvOnce, in which
// each manager broadcasts its token exactly once — equivalent for a static
// edge set, where every listener already exists when the token is emitted
// (a substitution recorded in DESIGN.md).
func CycleEnv() syntax.Env {
	return cycleEnv(false)
}

// CycleEnvOnce is CycleEnv with single-shot token emission (finite-state for
// finite graphs).
func CycleEnvOnce() syntax.Env {
	return cycleEnv(true)
}

func cycleEnv(once bool) syntax.Env {
	i, o, x, y := names.Name("i"), names.Name("o"), names.Name("x"), names.Name("y")
	a, b, u, w := names.Name("a"), names.Name("b"), names.Name("u"), names.Name("w")
	env := syntax.Env{}
	env = env.Define("Detector", []names.Name{i, o},
		syntax.Recv(i, []names.Name{x},
			syntax.Recv(i, []names.Name{y},
				syntax.Group(
					syntax.Call{Id: "Detector", Args: []names.Name{i, o}},
					syntax.Call{Id: "EdgeManager", Args: []names.Name{o, x, y}},
				))))
	env = env.Define("EdgeManager", []names.Name{o, a, b},
		syntax.Restrict(
			syntax.Group(
				syntax.Call{Id: "Emit", Args: []names.Name{b, u}},
				syntax.Call{Id: "Listen", Args: []names.Name{o, a, b, u}},
			), u))
	if once {
		env = env.Define("Emit", []names.Name{b, u}, syntax.SendN(b, u))
	} else {
		env = env.Define("Emit", []names.Name{b, u},
			syntax.Send(b, []names.Name{u}, syntax.Call{Id: "Emit", Args: []names.Name{b, u}}))
	}
	env = env.Define("Listen", []names.Name{o, a, b, u},
		syntax.Recv(a, []names.Name{w},
			syntax.If(u, w,
				syntax.SendN(o),
				syntax.Group(
					syntax.SendN(b, w),
					syntax.Call{Id: "Listen", Args: []names.Name{o, a, b, u}},
				))))
	return env
}

// Edge is a directed graph edge between two vertex channels.
type Edge struct {
	From, To names.Name
}

// CycleSystem assembles the edge managers for a fixed edge set directly (one
// EdgeManager per edge), signalling on the given channel. This is the state
// the Detector reaches after consuming the edge list.
func CycleSystem(edges []Edge, signal names.Name) syntax.Proc {
	parts := make([]syntax.Proc, 0, len(edges))
	for _, e := range edges {
		parts = append(parts, syntax.Call{Id: "EdgeManager", Args: []names.Name{signal, e.From, e.To}})
	}
	return syntax.Group(parts...)
}

// CycleSystemWithDetector assembles the full Example 1 configuration: the
// Detector listening on feed, composed with a feeder that broadcasts the
// edge list (two names per edge) and the edge managers spawned dynamically.
func CycleSystemWithDetector(edges []Edge, feed, signal names.Name) syntax.Proc {
	var feeder syntax.Proc = syntax.PNil
	for k := len(edges) - 1; k >= 0; k-- {
		feeder = syntax.Send(feed, []names.Name{edges[k].From}, syntax.Send(feed, []names.Name{edges[k].To}, feeder))
	}
	return syntax.Group(
		syntax.Call{Id: "Detector", Args: []names.Name{feed, signal}},
		feeder,
	)
}

// HasCycleOracle is the plain-Go reference: does the directed graph contain
// a cycle? Used to validate the calculus-level detector in experiment E10.
func HasCycleOracle(edges []Edge) bool {
	adj := map[names.Name][]names.Name{}
	vertices := names.NewSet()
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		vertices = vertices.Add(e.From).Add(e.To)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[names.Name]int{}
	var visit func(v names.Name) bool
	visit = func(v names.Name) bool {
		switch color[v] {
		case grey:
			return true
		case black:
			return false
		}
		color[v] = grey
		for _, w := range adj[v] {
			if visit(w) {
				return true
			}
		}
		color[v] = black
		return false
	}
	for _, v := range vertices.Sorted() {
		if visit(v) {
			return true
		}
	}
	return false
}

// RingGraph returns the n-cycle v0 → v1 → … → v0.
func RingGraph(n int) []Edge {
	edges := make([]Edge, n)
	for k := 0; k < n; k++ {
		edges[k] = Edge{vertex(k), vertex((k + 1) % n)}
	}
	return edges
}

// ChainGraph returns the acyclic chain v0 → v1 → … → v(n).
func ChainGraph(n int) []Edge {
	edges := make([]Edge, n)
	for k := 0; k < n; k++ {
		edges[k] = Edge{vertex(k), vertex(k + 1)}
	}
	return edges
}

func vertex(k int) names.Name { return names.Name(fmt.Sprintf("v%d", k)) }
