package papers

import (
	"math/rand"
	"testing"

	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

const (
	feed   names.Name = "feed"
	signal names.Name = "sig"
	unif   names.Name = "unif"
	errSig names.Name = "errc"
)

func TestCycleEnvValidates(t *testing.T) {
	if err := CycleEnv().Validate(); err != nil {
		t.Fatalf("CycleEnv: %v", err)
	}
	if err := CycleEnvOnce().Validate(); err != nil {
		t.Fatalf("CycleEnvOnce: %v", err)
	}
	if err := TxnEnvOnce().ValidateWith(names.NewSet(ReadTag, WriteTag)); err != nil {
		t.Fatalf("TxnEnvOnce: %v", err)
	}
}

// E10 core: the detector signals iff the graph has a cycle.
func TestE10CycleDetectionMatchesOracle(t *testing.T) {
	sys := semantics.NewSystem(CycleEnvOnce())
	graphs := []struct {
		name  string
		edges []Edge
	}{
		{"2-ring", RingGraph(2)},
		{"3-ring", RingGraph(3)},
		{"chain-2", ChainGraph(2)},
		{"chain-3", ChainGraph(3)},
		{"self-loop", []Edge{{"v0", "v0"}}},
		{"diamond-acyclic", []Edge{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}}},
		{"diamond-cyclic", []Edge{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "d"}}},
		{"two-components", []Edge{{"a", "b"}, {"c", "d"}, {"d", "c"}}},
	}
	for _, g := range graphs {
		want := HasCycleOracle(g.edges)
		got, err := machine.CanReachBarb(sys, CycleSystem(g.edges, signal), signal, 60000)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if got != want {
			t.Errorf("%s: detector=%v oracle=%v", g.name, got, want)
		}
	}
}

// Random graphs against the oracle.
func TestE10RandomGraphs(t *testing.T) {
	sys := semantics.NewSystem(CycleEnvOnce())
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		nv := 3 + rng.Intn(2)
		ne := 2 + rng.Intn(3)
		var edges []Edge
		seen := map[Edge]bool{}
		for len(edges) < ne {
			e := Edge{vertex(rng.Intn(nv)), vertex(rng.Intn(nv))}
			if seen[e] {
				continue
			}
			seen[e] = true
			edges = append(edges, e)
		}
		want := HasCycleOracle(edges)
		got, err := machine.CanReachBarb(sys, CycleSystem(edges, signal), signal, 120000)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, edges, err)
		}
		if got != want {
			t.Errorf("trial %d: edges=%v detector=%v oracle=%v", trial, edges, got, want)
		}
	}
}

// Detection is inevitable for a ring under the single-shot emitters: every
// maximal schedule fires the signal.
func TestE10DetectionInevitableOnRing(t *testing.T) {
	sys := semantics.NewSystem(CycleEnvOnce())
	ok, witness, err := machine.AlwaysReachesBarb(sys, CycleSystem(RingGraph(2), signal), signal, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("detection avoidable; stuck at %s", syntax.String(witness))
	}
}

// The dynamic variant: Detector consumes the edge feed and detects the cycle.
func TestE10DetectorWithFeed(t *testing.T) {
	sys := semantics.NewSystem(CycleEnvOnce())
	p := CycleSystemWithDetector(RingGraph(2), feed, signal)
	got, err := machine.CanReachBarb(sys, p, signal, 120000)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("detector with dynamic feed missed the 2-ring")
	}
	// And a fed chain stays silent.
	q := CycleSystemWithDetector(ChainGraph(2), feed, signal)
	got, err = machine.CanReachBarb(sys, q, signal, 120000)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("detector signalled on an acyclic feed")
	}
}

// The paper-faithful looping emitter also detects (scheduled runs).
func TestE10LoopingEmitterMonteCarlo(t *testing.T) {
	sys := semantics.NewSystem(CycleEnv())
	p := CycleSystem(RingGraph(2), signal)
	rs, err := machine.RunMany(sys, p, 16, 5, machine.Options{
		MaxSteps:   400,
		StopOnBarb: []names.Name{signal},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := machine.Summarise(rs)
	if st.Stopped == 0 {
		t.Errorf("no random run detected the cycle: %v", st)
	}
}

func TestOracleHelpers(t *testing.T) {
	if HasCycleOracle(ChainGraph(4)) {
		t.Error("chain misclassified")
	}
	if !HasCycleOracle(RingGraph(3)) {
		t.Error("ring misclassified")
	}
	if len(RingGraph(3)) != 3 || len(ChainGraph(3)) != 3 {
		t.Error("graph builders wrong size")
	}
}

// ---- Example 2 ---------------------------------------------------------------

func history(events ...Txn) []Txn { return events }

func TestPrecedenceEdgesRules(t *testing.T) {
	// Rule 1: read then write, same partition.
	h := history(
		Txn{"t1", "x", false, "p1"},
		Txn{"t2", "x", true, "p1"},
	)
	es := PrecedenceEdges(h)
	if len(es) != 1 || es[0] != (Edge{"t1", "t2"}) {
		t.Errorf("rule 1 edges: %v", es)
	}
	// Rule 2: write then read, same partition.
	h = history(
		Txn{"t1", "x", true, "p1"},
		Txn{"t2", "x", false, "p1"},
	)
	es = PrecedenceEdges(h)
	if len(es) != 1 || es[0] != (Edge{"t1", "t2"}) {
		t.Errorf("rule 2 edges: %v", es)
	}
	// Rule 3: cross-partition read/write → reader precedes writer.
	h = history(
		Txn{"t1", "x", true, "p1"},
		Txn{"t2", "x", false, "p2"},
	)
	es = PrecedenceEdges(h)
	if len(es) != 1 || es[0] != (Edge{"t2", "t1"}) {
		t.Errorf("rule 3 edges: %v", es)
	}
	// Cross-partition reads commute.
	h = history(
		Txn{"t1", "x", false, "p1"},
		Txn{"t2", "x", false, "p2"},
	)
	if es := PrecedenceEdges(h); len(es) != 0 {
		t.Errorf("read/read edges: %v", es)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	if !WriteWriteConflict(history(
		Txn{"t1", "x", true, "p1"},
		Txn{"t2", "x", true, "p2"},
	)) {
		t.Error("conflict missed")
	}
	if WriteWriteConflict(history(
		Txn{"t1", "x", true, "p1"},
		Txn{"t2", "x", true, "p1"},
	)) {
		t.Error("same-partition writes are not a conflict")
	}
}

// E11 core scenarios: the calculus system flags exactly the inconsistent
// histories.
func TestE11TransactionScenarios(t *testing.T) {
	sys := semantics.NewSystem(TxnEnvOnce())
	scenarios := []struct {
		name string
		h    []Txn
	}{
		{"consistent-single-partition", history(
			Txn{"t1", "x", true, "p1"},
			Txn{"t2", "x", false, "p1"},
			Txn{"t2", "y", true, "p1"},
		)},
		{"write-write-conflict", history(
			Txn{"t1", "x", true, "p1"},
			Txn{"t2", "x", true, "p2"},
		)},
		{"cross-partition-cycle", history(
			// t1 reads x in p1; t2 writes x in p2 ⇒ t1 → t2.
			// t2 reads y in p2; t1 writes y in p1 ⇒ t2 → t1. Cycle.
			Txn{"t1", "x", false, "p1"},
			Txn{"t2", "x", true, "p2"},
			Txn{"t2", "y", false, "p2"},
			Txn{"t1", "y", true, "p1"},
		)},
		{"consistent-cross-reads", history(
			Txn{"t1", "x", false, "p1"},
			Txn{"t2", "x", false, "p2"},
		)},
		{"same-partition-cycle", history(
			// t1 w x; t2 r x ⇒ t1→t2. t2 w y; t1 r y ⇒ t2→t1. Cycle, p1 only.
			Txn{"t1", "x", true, "p1"},
			Txn{"t2", "x", false, "p1"},
			Txn{"t2", "y", true, "p1"},
			Txn{"t1", "y", false, "p1"},
		)},
	}
	for _, sc := range scenarios {
		want := InconsistentOracle(sc.h)
		p := TransactionSystem(sc.h, unif, errSig)
		got, err := machine.CanReachBarb(sys, p, errSig, 200000)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if got != want {
			t.Errorf("%s: detector=%v oracle=%v", sc.name, got, want)
		}
	}
}

// Monte-Carlo check on the faithful (looping) environment for one
// inconsistent scenario: random schedules find the error too.
func TestE11MonteCarlo(t *testing.T) {
	sys := semantics.NewSystem(TxnEnv())
	h := history(
		Txn{"t1", "x", true, "p1"},
		Txn{"t2", "x", true, "p2"},
	)
	rs, err := machine.RunMany(sys, TransactionSystem(h, unif, errSig), 8, 3, machine.Options{
		MaxSteps:   600,
		StopOnBarb: []names.Name{errSig},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if machine.Summarise(rs).Stopped == 0 {
		t.Error("no random run flagged the write/write conflict")
	}
}
