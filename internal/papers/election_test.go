package papers

import (
	"testing"

	"bpi/internal/actions"
	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/semantics"
)

const (
	claim  names.Name = "claim"
	lead   names.Name = "lead"
	follow names.Name = "follow"
)

func TestElectionEnvValidates(t *testing.T) {
	if err := ElectionEnv().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Every maximal run elects exactly one leader, and everyone else follows it.
func TestElectionSafetyAndLiveness(t *testing.T) {
	sys := semantics.NewSystem(ElectionEnv())
	for _, n := range []int{2, 3, 4} {
		system := ElectionSystem(n, claim, lead, follow)
		// Liveness: a leader is inevitable.
		ok, witness, err := machine.AlwaysReachesBarb(sys, system, lead, 60000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !ok {
			t.Fatalf("n=%d: election can stall (witness %v)", n, witness)
		}
		// Safety on scheduled runs: exactly one lead, n-1 follows, and the
		// followers acknowledge the actual winner.
		rs, err := machine.RunMany(sys, system, 16, int64(n), machine.Options{
			MaxSteps: 50, KeepTrace: true,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		for ri, r := range rs {
			if !r.Quiescent {
				t.Fatalf("n=%d run %d did not quiesce", n, ri)
			}
			var leader names.Name
			leads, follows := 0, 0
			for _, ev := range r.Trace {
				switch {
				case ev.Act.Kind == actions.Out && ev.Act.Subj == lead:
					leads++
					leader = ev.Act.Objs[0]
				case ev.Act.Kind == actions.Out && ev.Act.Subj == follow:
					follows++
					if ev.Act.Objs[1] != leader && leader != "" {
						// A follower may announce before the leader's own
						// lead! fires; check against the claim winner below.
					}
				}
			}
			if leads != 1 {
				t.Fatalf("n=%d run %d: %d leaders", n, ri, leads)
			}
			if follows != n-1 {
				t.Fatalf("n=%d run %d: %d followers, want %d", n, ri, follows, n-1)
			}
			// All follow announcements name the same winner.
			var winner names.Name
			for _, ev := range r.Trace {
				if ev.Act.Kind == actions.Out && ev.Act.Subj == follow {
					if winner == "" {
						winner = ev.Act.Objs[1]
					} else if ev.Act.Objs[1] != winner {
						t.Fatalf("n=%d run %d: followers disagree on the winner", n, ri)
					}
				}
			}
			if winner != "" && leader != winner {
				t.Fatalf("n=%d run %d: leader %s but followers follow %s", n, ri, leader, winner)
			}
		}
	}
}

// Exhaustively: from no reachable state can a second claim fire after the
// first (the claim broadcast consumes every candidate's claiming branch).
func TestElectionClaimIsExclusive(t *testing.T) {
	sys := semantics.NewSystem(ElectionEnv())
	system := ElectionSystem(3, claim, lead, follow)
	// After any claim, the reachable states must not offer another claim.
	ts, err := sys.Steps(system)
	if err != nil {
		t.Fatal(err)
	}
	claims := 0
	for _, tr := range ts {
		if tr.Act.IsOutput() && tr.Act.Subj == claim {
			claims++
			got, err := machine.CanReachBarb(sys, tr.Target, claim, 60000)
			if err != nil {
				t.Fatal(err)
			}
			if got {
				t.Fatalf("second claim reachable after %s", tr.Act)
			}
		}
	}
	if claims != 3 {
		t.Fatalf("expected 3 first-claim transitions, got %d", claims)
	}
}
