package equiv

import (
	"context"
	"errors"
	"testing"
	"time"

	"bpi/internal/parser"
)

// TestStoreStatsMemoisedPath asserts that a repeated identical query is
// served from the memoised store: no new terms are interned and the
// derivation lookups hit the cache.
func TestStoreStatsMemoisedPath(t *testing.T) {
	p, err := parser.Parse("a?(x).x! + b!(c)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse("a?(y).y! + b!(c)")
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewChecker(nil)
	if _, err := c1.Labelled(p, q, false); err != nil {
		t.Fatal(err)
	}
	s1 := c1.Store().Stats()
	if s1.Terms == 0 || s1.DerivationMisses == 0 {
		t.Fatalf("first query should populate the store, got %+v", s1)
	}

	// Fresh checker (no verdict memo) over the SAME store: the engine must
	// re-run, but every semantic derivation should be a cache hit and the
	// term set must not grow.
	c2 := NewCheckerWithStore(c1.Store())
	if _, err := c2.Labelled(p, q, false); err != nil {
		t.Fatal(err)
	}
	s2 := c2.Store().Stats()
	if s2.Terms != s1.Terms {
		t.Errorf("repeated query interned new terms: %d -> %d", s1.Terms, s2.Terms)
	}
	if s2.DerivationMisses != s1.DerivationMisses {
		t.Errorf("repeated query recomputed derivations: misses %d -> %d",
			s1.DerivationMisses, s2.DerivationMisses)
	}
	if s2.DerivationHits <= s1.DerivationHits {
		t.Errorf("repeated query did not hit the memoised path: hits %d -> %d",
			s1.DerivationHits, s2.DerivationHits)
	}
	if s2.InternHits <= s1.InternHits {
		t.Errorf("repeated query did not reuse interned terms: hits %d -> %d",
			s1.InternHits, s2.InternHits)
	}
	if s2.ShardMax < 1 || s2.ShardMin < 0 {
		t.Errorf("implausible shard occupancy: %+v", s2)
	}
}

// TestLabelledCtxDeadline runs the pair engine on an infinite-state pair
// with a 50ms deadline and a pair budget far beyond reach: the BFS loop
// must notice the expired context and return a typed ErrCanceled that
// errors.Is-matches context.DeadlineExceeded — not hang, and not report
// budget exhaustion.
func TestLabelledCtxDeadline(t *testing.T) {
	// Grow(a) receives on a and spawns a parallel output each time: the
	// reachable pair space is unbounded.
	p, err := parser.Parse("(rec G(a). a?(x).(x! | G(a)))(a)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse("(rec H(b). b?(y).(y! | H(b)))(a) + c!")
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(nil)
	c.MaxPairs = 1 << 30
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.LabelledCtx(ctx, p, q, false)
	if err == nil {
		t.Fatal("expected a deadline error, got a verdict")
	}
	var ec ErrCanceled
	if !errors.As(err, &ec) {
		t.Fatalf("expected ErrCanceled, got %T: %v", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected the error to unwrap to DeadlineExceeded, got %v", err)
	}
	var eb ErrBudget
	if errors.As(err, &eb) {
		t.Fatalf("deadline must not be reported as budget exhaustion: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s — the BFS loop is not checking the context", elapsed)
	}
}

// TestCongruenceCtxCancel checks that the substitution-closure loop is
// cancellable too.
func TestCongruenceCtxCancel(t *testing.T) {
	p, err := parser.Parse("a?(x).b?(y).(x! + y!) + c!(d).e!")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse("a?(x).b?(y).(y! + x!) + c!(d).e!")
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first loop check must fire
	if _, err := c.CongruenceCtx(ctx, p, q, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}
