package equiv

import (
	"sort"
	"sync"
	"sync/atomic"

	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
	"bpi/internal/tprog"
)

// Store is the concurrency-safe semantic layer shared by Checkers. It
// interns canonical terms to dense uint64 IDs and memoises the per-term
// semantic data every equivalence query re-derives otherwise: transitions,
// the discard relation, τ-closures and autonomous closures.
//
// The store is sharded: term interning takes one mutex out of storeShards,
// chosen by a hash of the canonical key, so concurrent goroutines interning
// different terms rarely contend. Per-term derived data is computed
// singleflight-style — transitions under a sync.Once, closures by
// compute-unlocked-then-publish (a lost race recomputes an identical value,
// which keeps the lock graph acyclic even for τ-cyclic terms).
//
// Memoised slices are shared between callers and must not be mutated.
// Closures are returned sorted by canonical key, so every consumer sees the
// same deterministic order regardless of interning order.
type Store struct {
	sys    *semantics.System
	nextID atomic.Uint64
	shards [storeShards]shard

	// Occupancy / reuse counters, exposed by Stats. "Derivations" are the
	// memoised per-term lookups (discards, successor sets, closures): a hit
	// returns cached data, a miss recomputes it from the semantics.
	internHits   atomic.Uint64
	internMisses atomic.Uint64
	derivHits    atomic.Uint64
	derivMisses  atomic.Uint64

	// Mirror counters on an attached tracer (SetObs); nil — a no-op with
	// no atomic traffic — until a tracer is attached.
	obsInternHits, obsInternMisses *obs.Counter
	obsDerivHits, obsDerivMisses   *obs.Counter
	obsCompiledFallbacks           *obs.Counter

	// progs, when non-nil (EnableCompiled), is the shared compiled-unit
	// cache: ready() derives transitions by compiling and executing the
	// term's transition program instead of interpreting the syntax tree,
	// and discardsOn answers from the program's precomputed listen set. A
	// term whose compilation fails falls back to the interpreter, so the
	// error surface (e.g. unfold-budget exhaustion) is unchanged.
	progs *tprog.Cache
	// obsTracer is retained so EnableCompiled can attach counters to a
	// cache created after SetObs.
	obsTracer *obs.Tracer
	// compiledFallbacks counts terms served by the interpreter because
	// compilation failed while compiled mode was on.
	compiledFallbacks atomic.Uint64
}

// EnableCompiled switches the store to the compiled fast path: per-term
// transition programs (internal/tprog), compiled once, cached by exact
// syntax and shared across all consumers of this store. Verdicts, pair
// counts and certificates are bit-identical to the interpreted path. Call
// before the store is shared across goroutines; enabling twice is a no-op.
func (s *Store) EnableCompiled() {
	if s.progs != nil {
		return
	}
	s.progs = tprog.NewCache(s.sys)
	if s.obsTracer != nil {
		s.progs.SetObs(s.obsTracer)
	}
}

// Compiled reports whether the compiled fast path is enabled.
func (s *Store) Compiled() bool { return s.progs != nil }

// ProgCache returns the store's compiled-unit cache, or nil when the store
// is interpreting.
func (s *Store) ProgCache() *tprog.Cache { return s.progs }

// SetObs mirrors the store's reuse counters (store.intern_hits/misses,
// store.deriv_hits/misses) onto t, live rather than snapshot — so a
// daemon can export them per scrape. Attach before the store is shared
// across goroutines; a nil t detaches.
func (s *Store) SetObs(t *obs.Tracer) {
	s.obsInternHits = t.Counter("store.intern_hits")
	s.obsInternMisses = t.Counter("store.intern_misses")
	s.obsDerivHits = t.Counter("store.deriv_hits")
	s.obsDerivMisses = t.Counter("store.deriv_misses")
	s.obsCompiledFallbacks = t.Counter("tprog.fallbacks")
	s.obsTracer = t
	if s.progs != nil {
		s.progs.SetObs(t)
	}
}

// Stats is a snapshot of a store's occupancy and reuse counters.
type Stats struct {
	// Terms is the number of interned canonical terms.
	Terms uint64
	// InternHits / InternMisses count intern calls that found (resp. had to
	// create) the canonical term.
	InternHits, InternMisses uint64
	// DerivationHits / DerivationMisses count memoised per-term lookups
	// (discards, τ/autonomous successors and closures) served from cache
	// resp. recomputed from the semantics.
	DerivationHits, DerivationMisses uint64
	// ShardMin / ShardMax bound the per-shard term counts (occupancy spread).
	ShardMin, ShardMax int
	// CompiledFallbacks counts terms the interpreter served because their
	// transition program failed to compile (0 unless compiled mode is on).
	CompiledFallbacks uint64
}

// Stats returns a consistent-enough snapshot of the store counters (each
// counter is read atomically; the set is not a single atomic snapshot).
func (s *Store) Stats() Stats {
	st := Stats{
		Terms:             s.nextID.Load(),
		InternHits:        s.internHits.Load(),
		InternMisses:      s.internMisses.Load(),
		DerivationHits:    s.derivHits.Load(),
		DerivationMisses:  s.derivMisses.Load(),
		CompiledFallbacks: s.compiledFallbacks.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n := len(sh.terms)
		sh.mu.Unlock()
		if i == 0 || n < st.ShardMin {
			st.ShardMin = n
		}
		if n > st.ShardMax {
			st.ShardMax = n
		}
	}
	return st
}

const storeShards = 64

type shard struct {
	mu    sync.Mutex
	terms map[string]*termInfo
}

// NewStore returns a store over the given system (nil means the empty
// definitions environment). The underlying semantics layer is pure — a
// System is immutable after construction and Steps/Discards share no mutable
// state — so one store may serve any number of goroutines.
func NewStore(sys *semantics.System) *Store {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	s := &Store{sys: sys}
	for i := range s.shards {
		s.shards[i].terms = make(map[string]*termInfo)
	}
	return s
}

// System returns the semantic system the store derives data from.
func (s *Store) System() *semantics.System { return s.sys }

// termInfo caches per-term semantic data. The id is dense (assigned in
// interning order by an atomic counter) and unique within one store; pair
// engines key their state on id pairs instead of concatenated keys.
type termInfo struct {
	id   uint64
	proc syntax.Proc
	key  string
	free names.Set // free names; treat as immutable — Clone before mutating

	// trans is computed once, singleflight, on first demand. In compiled
	// mode, prog is the term's transition program (nil if compilation
	// failed and the interpreter served the term instead).
	transOnce sync.Once
	trans     []semantics.Trans
	transErr  error
	prog      *tprog.Prog

	// mu guards the lazily memoised fields below. Never held while calling
	// into the store for other terms.
	mu          sync.Mutex
	discards    map[names.Name]bool
	tauSuccs    []*termInfo
	tauSuccsOK  bool
	tauClosure  []*termInfo
	autoSuccs   []*termInfo
	autoSuccsOK bool
	autoClosure []*termInfo
}

func shardOf(key string) uint32 {
	// FNV-1a, inlined to avoid the hash.Hash allocation per intern.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % storeShards
}

// interner resolves terms to their canonical termInfo. The Store itself is
// the plain implementation (every call takes a shard lock); the per-worker
// arena (arena.go) is the batching one the work-stealing engine hands its
// workers. Derivation code is parameterised on this interface so the same
// memoisation logic serves both paths.
type interner interface {
	intern(p syntax.Proc) (*termInfo, error)
	// internMany resolves a batch at once (the bulk path: canonicalise all,
	// then visit each store shard at most once). The result is positional.
	internMany(ps []syntax.Proc) ([]*termInfo, error)
}

// intern canonicalises p and returns its unique termInfo, computing the
// transitions singleflight. Concurrent interns of the same term return the
// same pointer.
func (s *Store) intern(p syntax.Proc) (*termInfo, error) {
	p = syntax.Simplify(p)
	ti, fresh := s.resolve(syntax.Key(p), p)
	if fresh {
		s.internMisses.Add(1)
		s.obsInternMisses.Add(1)
	} else {
		s.internHits.Add(1)
		s.obsInternHits.Add(1)
	}
	return s.ready(ti)
}

// internMany is the Store's bulk intern: one shard visit per distinct shard
// in the batch, transitions computed outside any lock.
func (s *Store) internMany(ps []syntax.Proc) ([]*termInfo, error) {
	keys := make([]string, len(ps))
	simplified := make([]syntax.Proc, len(ps))
	for i, p := range ps {
		simplified[i] = syntax.Simplify(p)
		keys[i] = syntax.Key(simplified[i])
	}
	out, fresh := s.resolveBatch(keys, simplified)
	s.addInternCounts(uint64(len(ps))-fresh, fresh)
	for _, ti := range out {
		if _, err := s.ready(ti); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// resolveBatch looks up (or creates) a batch of already-simplified terms,
// grouping indices by shard so each shard lock is taken at most once per
// batch. It returns the positional termInfos and the number freshly created;
// counters are NOT updated and transitions NOT computed — callers account
// and ready() themselves (the arena batches the former across many calls).
func (s *Store) resolveBatch(keys []string, simplified []syntax.Proc) ([]*termInfo, uint64) {
	out := make([]*termInfo, len(keys))
	var fresh uint64
	bySh := map[uint32][]int{}
	for i, k := range keys {
		h := shardOf(k)
		bySh[h] = append(bySh[h], i)
	}
	for h, idxs := range bySh {
		sh := &s.shards[h]
		sh.mu.Lock()
		for _, i := range idxs {
			ti, ok := sh.terms[keys[i]]
			if !ok {
				ti = &termInfo{id: s.nextID.Add(1), proc: simplified[i], key: keys[i], free: syntax.FreeNames(simplified[i])}
				sh.terms[keys[i]] = ti
				fresh++
			}
			out[i] = ti
		}
		sh.mu.Unlock()
	}
	return out, fresh
}

// resolve looks up (or creates) the termInfo of an already-simplified term
// under its shard lock. It does NOT compute transitions — call ready.
func (s *Store) resolve(k string, p syntax.Proc) (ti *termInfo, fresh bool) {
	sh := &s.shards[shardOf(k)]
	sh.mu.Lock()
	ti, ok := sh.terms[k]
	if !ok {
		ti = &termInfo{id: s.nextID.Add(1), proc: p, key: k, free: syntax.FreeNames(p)}
		sh.terms[k] = ti
	}
	sh.mu.Unlock()
	return ti, !ok
}

// ready computes ti's transitions singleflight (outside all shard locks) and
// surfaces any derivation error. In compiled mode the transitions come from
// the term's transition program — bit-identical to Steps by construction —
// with the interpreter as fallback when compilation fails, so enabling
// compiled mode never changes what a caller observes.
func (s *Store) ready(ti *termInfo) (*termInfo, error) {
	ti.transOnce.Do(func() {
		if s.progs != nil {
			if pr, err := s.progs.Compile(ti.proc); err == nil {
				if ts, err := pr.Transitions(); err == nil {
					ti.prog, ti.trans = pr, ts
					return
				}
			}
			s.compiledFallbacks.Add(1)
			s.obsCompiledFallbacks.Add(1)
		}
		ti.trans, ti.transErr = s.sys.Steps(ti.proc)
	})
	if ti.transErr != nil {
		return nil, ti.transErr
	}
	return ti, nil
}

// addInternCounts records a batch of intern hit/miss counts in two atomic
// adds per class instead of two per call — the bulk-flush half of the
// arena protocol.
func (s *Store) addInternCounts(hits, misses uint64) {
	if hits > 0 {
		s.internHits.Add(hits)
		s.obsInternHits.Add(int64(hits))
	}
	if misses > 0 {
		s.internMisses.Add(misses)
		s.obsInternMisses.Add(int64(misses))
	}
}

// discardsOn reports whether the term ignores channel a (memoised). A
// compiled term answers from its program's precomputed Table 2 discard set
// — no recursion, no per-name memo map.
func (s *Store) discardsOn(ti *termInfo, a names.Name) (bool, error) {
	if ti.prog != nil {
		s.derivHits.Add(1)
		s.obsDerivHits.Add(1)
		return ti.prog.Discards(a), nil
	}
	ti.mu.Lock()
	v, ok := ti.discards[a]
	ti.mu.Unlock()
	if ok {
		s.derivHits.Add(1)
		s.obsDerivHits.Add(1)
		return v, nil
	}
	s.derivMisses.Add(1)
	s.obsDerivMisses.Add(1)
	v, err := s.sys.Discards(ti.proc, a)
	if err != nil {
		return false, err
	}
	ti.mu.Lock()
	if ti.discards == nil {
		ti.discards = make(map[names.Name]bool)
	}
	ti.discards[a] = v
	ti.mu.Unlock()
	return v, nil
}

// tauSucc returns the interned τ-successors of ti (memoised; shared slice).
func (s *Store) tauSucc(ti *termInfo) ([]*termInfo, error) { return s.tauSuccIn(s, ti) }

// tauSuccIn is tauSucc with interning routed through it (the store itself,
// or a worker arena). Successor targets are resolved as one batch.
func (s *Store) tauSuccIn(it interner, ti *termInfo) ([]*termInfo, error) {
	ti.mu.Lock()
	if ti.tauSuccsOK {
		out := ti.tauSuccs
		ti.mu.Unlock()
		s.derivHits.Add(1)
		s.obsDerivHits.Add(1)
		return out, nil
	}
	ti.mu.Unlock()
	s.derivMisses.Add(1)
	s.obsDerivMisses.Add(1)
	var targets []syntax.Proc
	for _, t := range ti.trans {
		if t.Act.IsTau() {
			targets = append(targets, t.Target)
		}
	}
	out, err := it.internMany(targets)
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = []*termInfo{}
	}
	ti.mu.Lock()
	ti.tauSuccs, ti.tauSuccsOK = out, true
	ti.mu.Unlock()
	return out, nil
}

// autonomousSucc returns the τ- and output-successors of ti, outputs with
// extruded names canonicalised deterministically (memoised; shared slice).
func (s *Store) autonomousSucc(ti *termInfo) ([]*termInfo, error) {
	return s.autonomousSuccIn(s, ti)
}

// autonomousSuccIn is autonomousSucc via an explicit interner (batched).
func (s *Store) autonomousSuccIn(it interner, ti *termInfo) ([]*termInfo, error) {
	ti.mu.Lock()
	if ti.autoSuccsOK {
		out := ti.autoSuccs
		ti.mu.Unlock()
		s.derivHits.Add(1)
		s.obsDerivHits.Add(1)
		return out, nil
	}
	ti.mu.Unlock()
	s.derivMisses.Add(1)
	s.obsDerivMisses.Add(1)
	var targets []syntax.Proc
	for _, t := range ti.trans {
		if !t.Act.IsStep() {
			continue
		}
		tgt := t.Target
		if t.Act.IsOutput() && len(t.Act.Bound) > 0 {
			_, tgt = semantics.CanonTrans(t.Act, t.Target)
		}
		targets = append(targets, tgt)
	}
	out, err := it.internMany(targets)
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = []*termInfo{}
	}
	ti.mu.Lock()
	ti.autoSuccs, ti.autoSuccsOK = out, true
	ti.mu.Unlock()
	return out, nil
}

// tauClosure returns every term reachable from ti by τ* (including ti),
// sorted by canonical key. Memoised; the returned slice is shared.
func (s *Store) tauClosure(ti *termInfo, budget int) ([]*termInfo, error) {
	return s.tauClosureIn(s, ti, budget)
}

func (s *Store) tauClosureIn(it interner, ti *termInfo, budget int) ([]*termInfo, error) {
	ti.mu.Lock()
	cl := ti.tauClosure
	ti.mu.Unlock()
	if cl != nil {
		s.derivHits.Add(1)
		s.obsDerivHits.Add(1)
		return cl, nil
	}
	s.derivMisses.Add(1)
	s.obsDerivMisses.Add(1)
	cl, err := s.closure(ti, budget, func(t *termInfo) ([]*termInfo, error) {
		return s.tauSuccIn(it, t)
	}, "tau closure")
	if err != nil {
		return nil, err
	}
	ti.mu.Lock()
	ti.tauClosure = cl
	ti.mu.Unlock()
	return cl, nil
}

// autonomousClosure returns the states reachable by (τ ∪ output)*, including
// ti, sorted by canonical key. Memoised; the returned slice is shared.
func (s *Store) autonomousClosure(ti *termInfo, budget int) ([]*termInfo, error) {
	return s.autonomousClosureIn(s, ti, budget)
}

func (s *Store) autonomousClosureIn(it interner, ti *termInfo, budget int) ([]*termInfo, error) {
	ti.mu.Lock()
	cl := ti.autoClosure
	ti.mu.Unlock()
	if cl != nil {
		s.derivHits.Add(1)
		s.obsDerivHits.Add(1)
		return cl, nil
	}
	s.derivMisses.Add(1)
	s.obsDerivMisses.Add(1)
	cl, err := s.closure(ti, budget, func(t *termInfo) ([]*termInfo, error) {
		return s.autonomousSuccIn(it, t)
	}, "autonomous closure")
	if err != nil {
		return nil, err
	}
	ti.mu.Lock()
	ti.autoClosure = cl
	ti.mu.Unlock()
	return cl, nil
}

// closure is the shared reflexive-transitive reachability sweep. It runs
// without holding any term mutex, so mutually reachable terms cannot
// deadlock computing each other's closures.
func (s *Store) closure(ti *termInfo, budget int, succ func(*termInfo) ([]*termInfo, error), what string) ([]*termInfo, error) {
	seen := map[uint64]bool{ti.id: true}
	out := []*termInfo{ti}
	work := []*termInfo{ti}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		next, err := succ(cur)
		if err != nil {
			return nil, err
		}
		for _, n := range next {
			if seen[n.id] {
				continue
			}
			if len(seen) >= budget {
				return nil, ErrBudget{what}
			}
			seen[n.id] = true
			out = append(out, n)
			work = append(work, n)
		}
	}
	sortTerms(out)
	return out, nil
}

// reactions returns the possible reactions of ti to an environment
// broadcast a(c̃): every input derivative at that channel and arity
// instantiated with c̃, plus ti itself when it discards a. An empty result
// means ti can neither receive nor ignore the message (ill-sorted usage).
func (s *Store) reactions(ti *termInfo, ch names.Name, payload []names.Name) ([]*termInfo, error) {
	return s.reactionsIn(s, ti, ch, payload)
}

// reactionsIn is reactions via an explicit interner (batched; not memoised —
// the payload tuple varies per call).
func (s *Store) reactionsIn(it interner, ti *termInfo, ch names.Name, payload []names.Name) ([]*termInfo, error) {
	var targets []syntax.Proc
	for _, t := range ti.trans {
		if !t.Act.IsInput() || t.Act.Subj != ch || len(t.Act.Objs) != len(payload) {
			continue
		}
		_, tgt := semantics.Instantiate(t, payload)
		targets = append(targets, tgt)
	}
	out, err := it.internMany(targets)
	if err != nil {
		return nil, err
	}
	d, err := s.discardsOn(ti, ch)
	if err != nil {
		return nil, err
	}
	if d {
		out = append(out, ti)
	}
	return out, nil
}

// sortTerms orders terms by canonical key (deterministic across runs,
// unlike store IDs, which depend on interning order).
func sortTerms(ts []*termInfo) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].key < ts[j].key })
}
