package equiv

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// samplePairs regenerates the Theorem 1 pair population (same seed and
// mutation mix as theorem1_test.go).
func samplePairs(n int) [][2]syntax.Proc {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(12345, cfg)
	out := make([][2]syntax.Proc, n)
	for i := range out {
		p := g.Term()
		out[i] = [2]syntax.Proc{p, g.Mutate(p)}
	}
	return out
}

// relations is the query mix of the Theorem 1 sweep: the three
// bisimilarities, strong and weak.
var relations = []struct {
	name string
	run  func(ch *Checker, p, q syntax.Proc) (Result, error)
}{
	{"labelled/strong", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Labelled(p, q, false) }},
	{"labelled/weak", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Labelled(p, q, true) }},
	{"barbed/strong", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Barbed(p, q, false) }},
	{"barbed/weak", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Barbed(p, q, true) }},
	{"step/strong", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Step(p, q, false) }},
	{"step/weak", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Step(p, q, true) }},
}

// TestEngineWorkersDeterministic runs every query on a fresh sequential
// checker and a fresh 8-worker checker and requires byte-identical Results
// (verdict, explored-pair count and failure reason).
func TestEngineWorkersDeterministic(t *testing.T) {
	for pi, pair := range samplePairs(25) {
		for _, rel := range relations {
			seq := NewChecker(nil)
			par := NewParallelChecker(nil, 8)
			rs, errS := rel.run(seq, pair[0], pair[1])
			rp, errP := rel.run(par, pair[0], pair[1])
			if fmt.Sprint(errS) != fmt.Sprint(errP) {
				t.Fatalf("pair %d %s: errors diverge: seq=%v par=%v", pi, rel.name, errS, errP)
			}
			if errS != nil {
				continue
			}
			if !reflect.DeepEqual(rs, rp) {
				t.Errorf("pair %d %s: results diverge:\n seq=%+v\n par=%+v", pi, rel.name, rs, rp)
			}
		}
	}
}

// TestEngineWorkerLadder runs a sample of queries at workers ∈ {1,2,4,8}
// with certification on and requires the full Result — verdict, pair count,
// reason and certificate — to be deeply equal at every rung. This is the
// package-level pin of the expand pass's determinism argument (the stress
// corpus repeats it at scale in internal/stress).
func TestEngineWorkerLadder(t *testing.T) {
	for pi, pair := range samplePairs(8) {
		for _, rel := range relations {
			base := NewChecker(nil)
			base.Certify = true
			want, errW := rel.run(base, pair[0], pair[1])
			for _, w := range []int{2, 4, 8} {
				ch := NewParallelChecker(nil, w)
				ch.Certify = true
				got, err := rel.run(ch, pair[0], pair[1])
				if fmt.Sprint(errW) != fmt.Sprint(err) {
					t.Fatalf("pair %d %s workers=%d: errors diverge: seq=%v par=%v", pi, rel.name, w, errW, err)
				}
				if errW != nil {
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("pair %d %s workers=%d: results diverge:\n seq=%+v\n par=%+v", pi, rel.name, w, want, got)
				}
			}
		}
	}
}

// TestArenaFlushConcurrent drives one arena per goroutine into a shared
// store — mixed single and batched interning — and checks (a) every arena
// resolved each term to the same termInfo, and (b) after the final flushes
// the store's intern counters balance exactly: one miss per distinct
// canonical term, hits for everything else. Run under -race this is the
// data-race proof for the arena flush protocol.
func TestArenaFlushConcurrent(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(7, cfg)
	terms := make([]syntax.Proc, 64)
	for i := range terms {
		terms[i] = g.Term()
	}
	st := NewStore(nil)
	results := make([][]*termInfo, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := newArena(st, nil)
			out, err := a.internMany(terms)
			if err != nil {
				t.Errorf("arena %d internMany: %v", w, err)
				return
			}
			for i, p := range terms {
				ti, err := a.intern(p)
				if err != nil {
					t.Errorf("arena %d intern: %v", w, err)
					return
				}
				if ti != out[i] {
					t.Errorf("arena %d: term %d resolves differently single vs batched", w, i)
					return
				}
			}
			a.flush()
			results[w] = out
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < 8; w++ {
		for i := range terms {
			if results[0][i] != results[w][i] {
				t.Fatalf("term %d interned to distinct infos across arenas", i)
			}
		}
	}
	stats := st.Stats()
	ops := uint64(8 * 2 * len(terms))
	if stats.InternHits+stats.InternMisses != ops {
		t.Errorf("intern counters leak: hits %d + misses %d != %d ops (unflushed arena deltas?)",
			stats.InternHits, stats.InternMisses, ops)
	}
	if stats.InternMisses != stats.Terms {
		t.Errorf("misses %d != interned terms %d (fresh creations double-counted)", stats.InternMisses, stats.Terms)
	}
}

// TestSharedStoreConcurrentSweep runs the Theorem 1 pair sweep across 8
// goroutines sharing one checker (hence one term store) and asserts every
// verdict is identical to the sequential run. Exercised by
// `go test -race ./internal/equiv/...`.
func TestSharedStoreConcurrentSweep(t *testing.T) {
	pairs := samplePairs(25)

	// Sequential baseline.
	seq := NewChecker(nil)
	want := make([]bool, len(pairs)*len(relations))
	for i, pair := range pairs {
		for j, rel := range relations {
			r, err := rel.run(seq, pair[0], pair[1])
			if err != nil {
				t.Fatalf("sequential pair %d %s: %v", i, rel.name, err)
			}
			want[i*len(relations)+j] = r.Related
		}
	}

	// 8 goroutines drain the same job list against one shared checker.
	shared := NewParallelChecker(nil, 2)
	got := make([]bool, len(want))
	errs := make([]error, len(want))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				job := int(next.Add(1)) - 1
				if job >= len(want) {
					return
				}
				pair := pairs[job/len(relations)]
				rel := relations[job%len(relations)]
				r, err := rel.run(shared, pair[0], pair[1])
				got[job], errs[job] = r.Related, err
			}
		}()
	}
	wg.Wait()
	for job := range want {
		i, rel := job/len(relations), relations[job%len(relations)]
		if errs[job] != nil {
			t.Fatalf("concurrent pair %d %s: %v", i, rel.name, errs[job])
		}
		if got[job] != want[job] {
			t.Errorf("pair %d %s: concurrent verdict %v, sequential %v", i, rel.name, got[job], want[job])
		}
	}
}

// TestStoreConcurrentIntern hammers one store with identical and distinct
// terms from 8 goroutines: interning must be singleflight (one termInfo per
// canonical term) and closures must agree.
func TestStoreConcurrentIntern(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(99, cfg)
	terms := make([]syntax.Proc, 32)
	for i := range terms {
		terms[i] = g.Term()
	}
	st := NewStore(nil)
	infos := make([]*termInfo, len(terms)*8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, p := range terms {
				ti, err := st.intern(p)
				if err != nil {
					t.Errorf("intern: %v", err)
					return
				}
				if _, err := st.tauClosure(ti, 2048); err != nil {
					t.Errorf("tauClosure: %v", err)
					return
				}
				if _, err := st.autonomousClosure(ti, 2048); err != nil {
					t.Errorf("autonomousClosure: %v", err)
					return
				}
				infos[w*len(terms)+i] = ti
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < 8; w++ {
		for i := range terms {
			if infos[i] != infos[w*len(terms)+i] {
				t.Fatalf("term %d interned to distinct infos across goroutines", i)
			}
		}
	}
}
