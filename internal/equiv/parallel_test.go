package equiv

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// samplePairs regenerates the Theorem 1 pair population (same seed and
// mutation mix as theorem1_test.go).
func samplePairs(n int) [][2]syntax.Proc {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(12345, cfg)
	out := make([][2]syntax.Proc, n)
	for i := range out {
		p := g.Term()
		out[i] = [2]syntax.Proc{p, g.Mutate(p)}
	}
	return out
}

// relations is the query mix of the Theorem 1 sweep: the three
// bisimilarities, strong and weak.
var relations = []struct {
	name string
	run  func(ch *Checker, p, q syntax.Proc) (Result, error)
}{
	{"labelled/strong", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Labelled(p, q, false) }},
	{"labelled/weak", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Labelled(p, q, true) }},
	{"barbed/strong", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Barbed(p, q, false) }},
	{"barbed/weak", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Barbed(p, q, true) }},
	{"step/strong", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Step(p, q, false) }},
	{"step/weak", func(ch *Checker, p, q syntax.Proc) (Result, error) { return ch.Step(p, q, true) }},
}

// TestEngineWorkersDeterministic runs every query on a fresh sequential
// checker and a fresh 8-worker checker and requires byte-identical Results
// (verdict, explored-pair count and failure reason).
func TestEngineWorkersDeterministic(t *testing.T) {
	for pi, pair := range samplePairs(25) {
		for _, rel := range relations {
			seq := NewChecker(nil)
			par := NewParallelChecker(nil, 8)
			rs, errS := rel.run(seq, pair[0], pair[1])
			rp, errP := rel.run(par, pair[0], pair[1])
			if fmt.Sprint(errS) != fmt.Sprint(errP) {
				t.Fatalf("pair %d %s: errors diverge: seq=%v par=%v", pi, rel.name, errS, errP)
			}
			if errS != nil {
				continue
			}
			if !reflect.DeepEqual(rs, rp) {
				t.Errorf("pair %d %s: results diverge:\n seq=%+v\n par=%+v", pi, rel.name, rs, rp)
			}
		}
	}
}

// TestSharedStoreConcurrentSweep runs the Theorem 1 pair sweep across 8
// goroutines sharing one checker (hence one term store) and asserts every
// verdict is identical to the sequential run. Exercised by
// `go test -race ./internal/equiv/...`.
func TestSharedStoreConcurrentSweep(t *testing.T) {
	pairs := samplePairs(25)

	// Sequential baseline.
	seq := NewChecker(nil)
	want := make([]bool, len(pairs)*len(relations))
	for i, pair := range pairs {
		for j, rel := range relations {
			r, err := rel.run(seq, pair[0], pair[1])
			if err != nil {
				t.Fatalf("sequential pair %d %s: %v", i, rel.name, err)
			}
			want[i*len(relations)+j] = r.Related
		}
	}

	// 8 goroutines drain the same job list against one shared checker.
	shared := NewParallelChecker(nil, 2)
	got := make([]bool, len(want))
	errs := make([]error, len(want))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				job := int(next.Add(1)) - 1
				if job >= len(want) {
					return
				}
				pair := pairs[job/len(relations)]
				rel := relations[job%len(relations)]
				r, err := rel.run(shared, pair[0], pair[1])
				got[job], errs[job] = r.Related, err
			}
		}()
	}
	wg.Wait()
	for job := range want {
		i, rel := job/len(relations), relations[job%len(relations)]
		if errs[job] != nil {
			t.Fatalf("concurrent pair %d %s: %v", i, rel.name, errs[job])
		}
		if got[job] != want[job] {
			t.Errorf("pair %d %s: concurrent verdict %v, sequential %v", i, rel.name, got[job], want[job])
		}
	}
}

// TestStoreConcurrentIntern hammers one store with identical and distinct
// terms from 8 goroutines: interning must be singleflight (one termInfo per
// canonical term) and closures must agree.
func TestStoreConcurrentIntern(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(99, cfg)
	terms := make([]syntax.Proc, 32)
	for i := range terms {
		terms[i] = g.Term()
	}
	st := NewStore(nil)
	infos := make([]*termInfo, len(terms)*8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, p := range terms {
				ti, err := st.intern(p)
				if err != nil {
					t.Errorf("intern: %v", err)
					return
				}
				if _, err := st.tauClosure(ti, 2048); err != nil {
					t.Errorf("tauClosure: %v", err)
					return
				}
				if _, err := st.autonomousClosure(ti, 2048); err != nil {
					t.Errorf("autonomousClosure: %v", err)
					return
				}
				infos[w*len(terms)+i] = ti
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < 8; w++ {
		for i := range terms {
			if infos[i] != infos[w*len(terms)+i] {
				t.Fatalf("term %d interned to distinct infos across goroutines", i)
			}
		}
	}
}
