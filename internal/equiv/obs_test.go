package equiv

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bpi/internal/obs"
	"bpi/internal/parser"
	"bpi/internal/syntax"
)

// TestDisabledObsZeroAlloc is the overhead contract referenced from
// Checker.Obs: the exact call-site sequence the engine performs per pair —
// span open/close, counter resolution, counter adds, named counts — must
// cost zero allocations when no tracer is attached.
func TestDisabledObsZeroAlloc(t *testing.T) {
	var tr *obs.Tracer // a disabled checker has c.Obs == nil
	allocs := testing.AllocsPerRun(1000, func() {
		run := tr.Span("equiv.run")
		cPairs := tr.Counter("equiv.pairs_expanded")
		ex := run.Child("equiv.explore")
		xp := ex.Child("equiv.expand")
		cPairs.Add(1)
		xp.End()
		ex.End()
		tr.Count("equiv.verdict_misses", 1)
		fix := run.Child("equiv.fixpoint")
		fix.End()
		run.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %.1f bytes-objects per run, want 0", allocs)
	}
}

// TestSpanTreeGolden pins the span tree of the paper's hello-world query —
// a!.0 | a?(x).0 against its commutation — against a golden file. The
// engine explores deterministically (sequential, fresh store), so the span
// skeleton is stable: one run containing the explore phase (the in-order
// expand pass; no prebuild child when Workers ≤ 1) and the fixpoint sweep.
func TestSpanTreeGolden(t *testing.T) {
	p, err := parser.Parse("a!.0 | a?(x).0")
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse("a?(x).0 | a!.0")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	ch := NewChecker(nil)
	ch.Obs = tr
	r, err := ch.Labelled(p, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Related {
		t.Fatalf("%s ≁ %s: %s", syntax.String(p), syntax.String(q), r.Reason)
	}
	got := obs.RenderNames(tr.Tree())
	golden := filepath.Join("testdata", "span_tree.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("span tree drifted from %s (UPDATE_GOLDEN=1 regenerates):\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
	if tr.Counters()["equiv.pairs_expanded"] != int64(r.Pairs) {
		t.Errorf("equiv.pairs_expanded = %d, Result.Pairs = %d", tr.Counters()["equiv.pairs_expanded"], r.Pairs)
	}
}

// TestObsParallelCheckerRace hammers one tracer through a parallel checker
// from concurrent queries — the engine's counter adds, span ends and the
// store's mirrored counters all land on the same Tracer. Run under -race
// this is the data-race proof for the obs threading.
func TestObsParallelCheckerRace(t *testing.T) {
	tr := obs.New()
	ch := NewParallelChecker(nil, 4)
	ch.Obs = tr
	ch.Store().SetObs(tr)
	pairs := samplePairs(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				pr := pairs[(w+i)%len(pairs)]
				if _, err := ch.Labelled(pr[0], pr[1], false); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				_ = tr.Counters()
			}
		}(w)
	}
	wg.Wait()
	if tr.Counters()["equiv.pairs_expanded"] == 0 {
		t.Error("no pairs counted across the concurrent queries")
	}
}

// benchQuery is the workload both overhead benchmarks run: a fresh checker
// (memoised verdicts would skip the engine entirely) deciding a finite
// parallel pair whose pair space is a few hundred nodes — enough engine
// work that the per-pair obs cost is what the ratio measures.
func benchQuery(b *testing.B, tr *obs.Tracer) {
	b.Helper()
	p, err := parser.Parse("a! | b! | c! | d! | a?(x).x!")
	if err != nil {
		b.Fatal(err)
	}
	q, err := parser.Parse("a?(x).x! | d! | c! | b! | a!")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := NewChecker(nil)
		if tr != nil {
			ch.Obs = tr
			ch.Store().SetObs(tr)
		}
		if _, err := ch.Labelled(p, q, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabelledUntraced(b *testing.B) { benchQuery(b, nil) }

func BenchmarkLabelledTraced(b *testing.B) {
	// A bounded tracer: long benchmark runs must not grow the event buffer
	// without limit, and a full buffer exercises the drop path's cost too.
	benchQuery(b, obs.NewWithLimit(1<<12))
}

// TestTracingOverheadBudget runs the traced/untraced benchmark pair and
// asserts the enabled-tracer overhead stays within budget. The contract is
// <5% in steady state; the asserted bound is deliberately generous (50%)
// because CI runs on noisy shared hardware — it exists to catch an
// accidental O(n) regression (a lock in the hot loop, a map lookup per
// pair), not to measure the true constant.
func TestTracingOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark pair under -short")
	}
	un := testing.Benchmark(BenchmarkLabelledUntraced)
	tr := testing.Benchmark(BenchmarkLabelledTraced)
	if un.N == 0 || un.NsPerOp() == 0 {
		t.Skip("benchmark produced no samples")
	}
	ratio := float64(tr.NsPerOp()) / float64(un.NsPerOp())
	t.Logf("untraced %v/op, traced %v/op, ratio %.3f", un.NsPerOp(), tr.NsPerOp(), ratio)
	if ratio > 1.5 {
		t.Errorf("tracing overhead ratio %.2f exceeds budget 1.5 (untraced %dns, traced %dns)",
			ratio, un.NsPerOp(), tr.NsPerOp())
	}
}
