package equiv

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"bpi/internal/cert"
	"bpi/internal/names"
	"bpi/internal/obs"
	brand "bpi/internal/rand"
	"bpi/internal/semantics"
	"bpi/internal/stress"
	"bpi/internal/syntax"
)

// freshCompiledChecker returns a certifying checker over its own store, in
// interpreted or compiled mode.
func freshCompiledChecker(workers int, compiled bool) *Checker {
	var ch *Checker
	if workers <= 1 {
		ch = NewChecker(nil)
	} else {
		ch = NewParallelChecker(nil, workers)
	}
	ch.Certify = true
	if compiled {
		ch.store.EnableCompiled()
	}
	return ch
}

func certHash(t *testing.T, c *cert.Certificate) string {
	t.Helper()
	if c == nil {
		return ""
	}
	raw, err := c.Marshal()
	if err != nil {
		t.Fatalf("cert marshal: %v", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// TestCompiledVerdictsBitIdentical is the engine-level agreement gate: for
// every relation, strong and weak, at workers 1/2/4, the compiled store
// must reproduce the interpreted verdict, pair count, Reason string and
// certificate bytes exactly — and the compiled-path certificate must pass
// the independent verifier.
func TestCompiledVerdictsBitIdentical(t *testing.T) {
	a, b, x, y := names.Name("a"), names.Name("b"), names.Name("x"), names.Name("y")
	G := syntax.Group(syntax.RecvN(b), syntax.RecvN(b, x))
	type pair struct{ p, q syntax.Proc }
	pairs := []pair{
		{G, syntax.PNil},
		{syntax.TauP(G), G},
		{G, syntax.RecvN(b, x)},
		{syntax.Restrict(G, b), syntax.PNil},
		{syntax.Restrict(syntax.Group(syntax.SendN(a, x), syntax.Recv(x, []names.Name{y}, syntax.SendN(y))), x),
			syntax.TauP(syntax.PNil)},
		{syntax.Group(syntax.SendN(a), syntax.RecvN(a)), syntax.TauP(syntax.SendN(a))},
	}
	for seed := int64(1); seed <= 5; seed++ {
		g := brand.New(seed, brand.OracleConfig())
		p, q := g.Pair()
		pairs = append(pairs, pair{p, q})
	}
	rc := stress.Corpus()[0]
	pairs = append(pairs, pair{rc.P, rc.Q})

	type relFn func(*Checker, syntax.Proc, syntax.Proc, bool) (Result, error)
	rels := map[string]relFn{
		"labelled": (*Checker).Labelled,
		"barbed":   (*Checker).Barbed,
		"step":     (*Checker).Step,
	}
	for pi, pr := range pairs {
		for rname, rel := range rels {
			for _, weak := range []bool{false, true} {
				for _, workers := range []int{1, 2, 4} {
					name := fmt.Sprintf("pair%d/%s/weak=%v/w%d", pi, rname, weak, workers)
					ri, ierr := rel(freshCompiledChecker(workers, false), pr.p, pr.q, weak)
					rc, cerr := rel(freshCompiledChecker(workers, true), pr.p, pr.q, weak)
					if (ierr != nil) != (cerr != nil) {
						t.Fatalf("%s: error mismatch: interpreted %v, compiled %v", name, ierr, cerr)
					}
					if ierr != nil {
						continue
					}
					if ri.Related != rc.Related || ri.Pairs != rc.Pairs || ri.Reason != rc.Reason {
						t.Fatalf("%s: verdicts differ:\n interpreted %+v\n compiled    %+v", name, ri, rc)
					}
					ih, ch := certHash(t, ri.Cert), certHash(t, rc.Cert)
					if ih != ch {
						t.Fatalf("%s: certificate hashes differ: %s vs %s", name, ih, ch)
					}
					if rc.Cert != nil {
						if err := cert.Verify(rc.Cert); err != nil {
							t.Fatalf("%s: compiled-path certificate rejected: %v", name, err)
						}
					}
				}
			}
		}
	}
}

// TestCompiledFallbackParity pins the fallback contract: a term whose
// transition program cannot be compiled (unguarded recursion) is served by
// the interpreter, so the caller sees exactly the interpreted error — and
// the fallback is visible in Stats.
func TestCompiledFallbackParity(t *testing.T) {
	p := syntax.Rec{Id: "A", Body: syntax.Call{Id: "A"}}
	q := syntax.SendN("a")

	ci := freshCompiledChecker(1, false)
	cc := freshCompiledChecker(1, true)
	_, ierr := ci.Labelled(p, q, false)
	_, cerr := cc.Labelled(p, q, false)
	if ierr == nil || cerr == nil {
		t.Fatalf("unguarded recursion accepted: interpreted %v, compiled %v", ierr, cerr)
	}
	var bi, bc semantics.ErrUnfoldBudget
	if !errors.As(ierr, &bi) || !errors.As(cerr, &bc) || bi != bc {
		t.Fatalf("error surface differs: interpreted %v, compiled %v", ierr, cerr)
	}
	if got := cc.store.Stats().CompiledFallbacks; got == 0 {
		t.Fatal("fallback not recorded in Stats")
	}
	if got := ci.store.Stats().CompiledFallbacks; got != 0 {
		t.Fatalf("interpreted store recorded %d fallbacks", got)
	}
}

// TestCompiledTermIDsImmutable pins invalidation-free correctness: term IDs
// assigned by the store never change, no matter how much compiled-mode
// churn happens — and a term's compiled program is the cache's canonical
// unit for its syntax, stable across re-interning.
func TestCompiledTermIDsImmutable(t *testing.T) {
	s := NewStore(nil)
	s.EnableCompiled()
	a, b, x := names.Name("a"), names.Name("b"), names.Name("x")
	terms := []syntax.Proc{
		syntax.Group(syntax.SendN(a), syntax.RecvN(a, x)),
		syntax.Group(syntax.RecvN(b), syntax.RecvN(b, x)),
		syntax.Restrict(syntax.Group(syntax.SendN(a, x), syntax.RecvN(x)), x),
		stress.Corpus()[0].P,
	}
	ids := make([]uint64, len(terms))
	progs := make([]interface{}, len(terms))
	for i, p := range terms {
		ti, err := s.intern(p)
		if err != nil {
			t.Fatal(err)
		}
		if ti.prog == nil {
			t.Fatalf("term %d not served by the compiled path", i)
		}
		ids[i], progs[i] = ti.id, ti.prog
	}

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				p := terms[(w+i)%len(terms)]
				ti, err := s.intern(syntax.Par{L: p, R: syntax.SendN(names.Name(fmt.Sprintf("ch%d", i%7)))})
				if err != nil {
					t.Errorf("churn intern: %v", err)
					return
				}
				if _, err := s.tauSucc(ti); err != nil {
					t.Errorf("churn tauSucc: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	for i, p := range terms {
		ti, err := s.intern(p)
		if err != nil {
			t.Fatal(err)
		}
		if ti.id != ids[i] {
			t.Fatalf("term %d changed ID: %d -> %d", i, ids[i], ti.id)
		}
		if ti.prog != progs[i] {
			t.Fatalf("term %d changed compiled program identity", i)
		}
		canon, err := s.progs.Compile(ti.proc)
		if err != nil {
			t.Fatal(err)
		}
		if canon != ti.prog {
			t.Fatalf("term %d's program is not the cache's canonical unit", i)
		}
	}
}

// TestCompiledStoreSingleflight pins that the store's transOnce plus the
// cache's publication protocol collapse 32 concurrent interns of one cold
// term into exactly one compilation per unit.
func TestCompiledStoreSingleflight(t *testing.T) {
	s := NewStore(nil)
	s.EnableCompiled()
	p := stress.Corpus()[1].P

	var start, done sync.WaitGroup
	start.Add(1)
	const goroutines = 32
	infos := make([]*termInfo, goroutines)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			ti, err := s.intern(p)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			infos[i] = ti
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 1; i < goroutines; i++ {
		if infos[i] != infos[0] {
			t.Fatal("interns returned different termInfos")
		}
	}
	st := s.progs.Stats()
	if st.Units == 0 {
		t.Fatal("no compiled units")
	}
	if st.Compiles != uint64(st.Units) {
		t.Fatalf("compiles = %d for %d units: singleflight leaked work", st.Compiles, st.Units)
	}
}

// TestCompiledStoreAccessors pins the EnableCompiled/Compiled/ProgCache
// surface: idempotent enabling, and tracer attachment in both orders
// (SetObs before EnableCompiled and after).
func TestCompiledStoreAccessors(t *testing.T) {
	s := NewStore(nil)
	if s.Compiled() {
		t.Fatal("fresh store reports compiled")
	}
	if s.ProgCache() != nil {
		t.Fatal("fresh store has a prog cache")
	}

	// Tracer attached first: EnableCompiled must wire it into the new cache.
	tr := obs.New()
	s.SetObs(tr)
	s.EnableCompiled()
	if !s.Compiled() || s.ProgCache() == nil {
		t.Fatal("EnableCompiled did not enable the compiled path")
	}
	pc := s.ProgCache()
	s.EnableCompiled() // idempotent: must not replace the cache
	if s.ProgCache() != pc {
		t.Fatal("double EnableCompiled replaced the prog cache")
	}
	if _, err := s.intern(syntax.SendN(names.Name("a"))); err != nil {
		t.Fatal(err)
	}
	if tr.Counters()["tprog.compiles"] == 0 {
		t.Error("tracer attached before EnableCompiled saw no compiles")
	}

	// Opposite order: enabling first, then SetObs reaches the live cache.
	s2 := NewStore(nil)
	s2.EnableCompiled()
	tr2 := obs.New()
	s2.SetObs(tr2)
	if _, err := s2.intern(syntax.SendN(names.Name("a"))); err != nil {
		t.Fatal(err)
	}
	if tr2.Counters()["tprog.compiles"] == 0 {
		t.Error("tracer attached after EnableCompiled saw no compiles")
	}
}

// TestCompiledDerivedObservations: the derived-observation helpers the
// relations are built from (autonomous successors and closure, broadcast
// reactions, weak barbs) must agree between the interpreted and compiled
// stores term by term.
func TestCompiledDerivedObservations(t *testing.T) {
	a, b, x := names.Name("a"), names.Name("b"), names.Name("x")
	terms := []syntax.Proc{
		syntax.TauP(syntax.SendN(a)),
		syntax.Par{L: syntax.SendN(a, b), R: syntax.Recv(a, []names.Name{x}, syntax.SendN(x))},
		syntax.Group(syntax.RecvN(b), syntax.RecvN(b, x)),
		syntax.TauP(syntax.TauP(syntax.RecvN(b))),
	}
	keys := func(tis []*termInfo) []string {
		out := make([]string, len(tis))
		for i, ti := range tis {
			out[i] = syntax.Key(ti.proc)
		}
		return out
	}
	ci := freshCompiledChecker(1, false)
	cc := freshCompiledChecker(1, true)
	for _, p := range terms {
		ti, err := ci.intern(p)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := cc.intern(p)
		if err != nil {
			t.Fatal(err)
		}
		is, err := ci.autonomousSucc(ti)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := cc.autonomousSucc(tc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(keys(is), keys(cs)) {
			t.Errorf("%s: autonomousSucc %v vs %v", syntax.String(p), keys(is), keys(cs))
		}
		icl, err := ci.autonomousClosure(ti)
		if err != nil {
			t.Fatal(err)
		}
		ccl, err := cc.autonomousClosure(tc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(keys(icl), keys(ccl)) {
			t.Errorf("%s: autonomousClosure %v vs %v", syntax.String(p), keys(icl), keys(ccl))
		}
		ir, err := ci.reactions(ti, a, []names.Name{b})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := cc.reactions(tc, a, []names.Name{b})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(keys(ir), keys(cr)) {
			t.Errorf("%s: reactions(a,b) %v vs %v", syntax.String(p), keys(ir), keys(cr))
		}
		for _, ch := range []names.Name{a, b} {
			iw, err := ci.weakBarb(ti, ch)
			if err != nil {
				t.Fatal(err)
			}
			cw, err := cc.weakBarb(tc, ch)
			if err != nil {
				t.Fatal(err)
			}
			if iw != cw {
				t.Errorf("%s: weakBarb(%s) interpreted %v, compiled %v", syntax.String(p), ch, iw, cw)
			}
		}
	}
}

// TestCompiledOneStepAgrees: the one-step expansion relation (~+ / ≈+,
// Definition 15) and its certificates must also agree bit-for-bit between
// the interpreted and compiled stores.
func TestCompiledOneStepAgrees(t *testing.T) {
	a, b, x := names.Name("a"), names.Name("b"), names.Name("x")
	G := syntax.Group(syntax.RecvN(b), syntax.RecvN(b, x))
	pairs := []struct{ p, q syntax.Proc }{
		{G, G},
		{G, syntax.PNil},
		{syntax.TauP(G), G},
		{syntax.Par{L: syntax.SendN(a, b), R: syntax.Recv(a, []names.Name{x}, syntax.SendN(x))}, syntax.TauP(syntax.SendN(b))},
		{syntax.RecvN(b), syntax.RecvN(b, x)},
	}
	for _, weak := range []bool{false, true} {
		ci := freshCompiledChecker(1, false)
		cc := freshCompiledChecker(1, true)
		for _, pr := range pairs {
			name := fmt.Sprintf("%s ~+ %s (weak=%v)", syntax.String(pr.p), syntax.String(pr.q), weak)
			iok, ierr := ci.OneStep(pr.p, pr.q, weak)
			cok, cerr := cc.OneStep(pr.p, pr.q, weak)
			if ierr != nil || cerr != nil {
				t.Fatalf("%s: interpreted err %v, compiled err %v", name, ierr, cerr)
			}
			if iok != cok {
				t.Fatalf("%s: interpreted %v, compiled %v", name, iok, cok)
			}
			icrt, iok2, ierr := ci.OneStepCert(pr.p, pr.q, weak)
			ccrt, cok2, cerr := cc.OneStepCert(pr.p, pr.q, weak)
			if ierr != nil || cerr != nil {
				t.Fatalf("%s: cert: interpreted err %v, compiled err %v", name, ierr, cerr)
			}
			if iok2 != iok || cok2 != cok {
				t.Fatalf("%s: certifying verdict flipped: %v/%v vs %v/%v", name, iok, iok2, cok, cok2)
			}
			ih, ch := certHash(t, icrt), certHash(t, ccrt)
			if ih != ch {
				t.Fatalf("%s: one-step certificate hashes differ: %s vs %s", name, ih, ch)
			}
			if ccrt != nil {
				if err := cert.Verify(ccrt); err != nil {
					t.Fatalf("%s: compiled one-step certificate rejected: %v", name, err)
				}
			}
		}
	}

	// Certification requires the Certify option.
	plain := NewChecker(nil)
	if _, _, err := plain.OneStepCert(G, G, false); err == nil {
		t.Error("OneStepCert without Certify succeeded")
	}
}
