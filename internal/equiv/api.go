package equiv

import (
	"context"

	"bpi/internal/actions"
	"bpi/internal/cert"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Labelled decides labelled bisimilarity: p ~ q (Definition 8) or p ≈ q
// (Definition 7) when weak is set.
func (c *Checker) Labelled(p, q syntax.Proc, weak bool) (Result, error) {
	return c.LabelledCtx(context.Background(), p, q, weak)
}

// LabelledCtx is Labelled honouring ctx: cancellation or deadline expiry
// aborts the pair exploration with an ErrCanceled wrapping ctx.Err().
func (c *Checker) LabelledCtx(ctx context.Context, p, q syntax.Proc, weak bool) (Result, error) {
	return c.memoRun(ctx, p, q, spec{relLabelled, weak})
}

// Barbed decides barbed bisimilarity: p ~b q or p ≈b q (Definition 3).
func (c *Checker) Barbed(p, q syntax.Proc, weak bool) (Result, error) {
	return c.BarbedCtx(context.Background(), p, q, weak)
}

// BarbedCtx is Barbed honouring ctx (see LabelledCtx).
func (c *Checker) BarbedCtx(ctx context.Context, p, q syntax.Proc, weak bool) (Result, error) {
	return c.memoRun(ctx, p, q, spec{relBarbed, weak})
}

// Step decides step (φ) bisimilarity: p ~φ q or p ≈φ q (Definition 5).
func (c *Checker) Step(p, q syntax.Proc, weak bool) (Result, error) {
	return c.StepCtx(context.Background(), p, q, weak)
}

// StepCtx is Step honouring ctx (see LabelledCtx).
func (c *Checker) StepCtx(ctx context.Context, p, q syntax.Proc, weak bool) (Result, error) {
	return c.memoRun(ctx, p, q, spec{relStep, weak})
}

// verdictKey identifies a cached verdict: the relation plus the store IDs of
// the canonical pair (IDs are stable for the lifetime of the store).
type verdictKey struct {
	sp   spec
	p, q uint64
}

// cachedVerdict is a memoised query outcome: the verdict, its full Reason
// (naming the failing action and both canonical terms — cache hits must not
// degrade the explanation) and, when the query was certified, the
// certificate. Symmetric entries share the certificate pointer, so a swapped
// query returns evidence in the original orientation (sound: membership and
// strategy roots are checked up to swap).
type cachedVerdict struct {
	related bool
	reason  string
	crt     *cert.Certificate
}

// memoRun caches verdicts per (spec, canonical pair): every pair surviving a
// completed greatest fixpoint is in the bisimilarity, every discarded pair
// is not, so whole runs can be reused across queries. The cache is guarded
// by a mutex; concurrent identical queries may both run the engine, but the
// engine is deterministic so they store the same verdict. A certifying query
// hitting a certificate-less entry (cached while Certify was off) re-runs
// the engine and upgrades the entry.
func (c *Checker) memoRun(ctx context.Context, p, q syntax.Proc, sp spec) (Result, error) {
	pi, err := c.intern(p)
	if err != nil {
		return Result{}, err
	}
	qi, err := c.intern(q)
	if err != nil {
		return Result{}, err
	}
	key := verdictKey{sp, pi.id, qi.id}
	c.mu.Lock()
	v, ok := c.verdicts[key]
	c.mu.Unlock()
	if ok && (!c.Certify || v.crt != nil) {
		c.Obs.Count("equiv.verdict_hits", 1)
		return Result{Related: v.related, Pairs: 0, Reason: v.reason, Cert: v.crt}, nil
	}
	c.Obs.Count("equiv.verdict_misses", 1)
	res, err := c.run(ctx, pi, qi, sp)
	if err != nil {
		return res, err
	}
	c.mu.Lock()
	entry := cachedVerdict{related: res.Related, reason: res.Reason, crt: res.Cert}
	c.verdicts[key] = entry
	// Symmetric closure: all the paper's relations are symmetric.
	c.verdicts[verdictKey{sp, qi.id, pi.id}] = entry
	c.mu.Unlock()
	return res, nil
}

// semanticsInstantiate grounds a symbolic input transition (alias kept local
// so the onestep code reads uniformly).
func semanticsInstantiate(t semantics.Trans, payload []names.Name) (actions.Act, syntax.Proc) {
	return semantics.Instantiate(t, payload)
}
