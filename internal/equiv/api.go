package equiv

import (
	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Labelled decides labelled bisimilarity: p ~ q (Definition 8) or p ≈ q
// (Definition 7) when weak is set.
func (c *Checker) Labelled(p, q syntax.Proc, weak bool) (Result, error) {
	return c.memoRun(p, q, spec{relLabelled, weak})
}

// Barbed decides barbed bisimilarity: p ~b q or p ≈b q (Definition 3).
func (c *Checker) Barbed(p, q syntax.Proc, weak bool) (Result, error) {
	return c.memoRun(p, q, spec{relBarbed, weak})
}

// Step decides step (φ) bisimilarity: p ~φ q or p ≈φ q (Definition 5).
func (c *Checker) Step(p, q syntax.Proc, weak bool) (Result, error) {
	return c.memoRun(p, q, spec{relStep, weak})
}

// memoRun caches verdicts per (spec, canonical pair): every pair surviving a
// completed greatest fixpoint is in the bisimilarity, every discarded pair
// is not, so whole runs can be reused across queries.
func (c *Checker) memoRun(p, q syntax.Proc, sp spec) (Result, error) {
	if c.verdicts == nil {
		c.verdicts = map[string]bool{}
	}
	pk := syntax.Key(syntax.Simplify(p))
	qk := syntax.Key(syntax.Simplify(q))
	key := sp.String() + "\x00" + pairKey(pk, qk)
	if v, ok := c.verdicts[key]; ok {
		return Result{Related: v, Pairs: 0, Reason: cachedReason(v)}, nil
	}
	res, err := c.run(p, q, sp)
	if err != nil {
		return res, err
	}
	c.verdicts[key] = res.Related
	// Symmetric closure: all the paper's relations are symmetric.
	c.verdicts[sp.String()+"\x00"+pairKey(qk, pk)] = res.Related
	return res, nil
}

func cachedReason(related bool) string {
	if related {
		return ""
	}
	return "cached negative verdict"
}

func anyRelated(l *termInfo, rs []*termInfo, related func(a, b *termInfo) (bool, error)) (bool, error) {
	for _, r := range rs {
		ok, err := related(l, r)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// semanticsInstantiate grounds a symbolic input transition (alias kept local
// so the onestep code reads uniformly).
func semanticsInstantiate(t semantics.Trans, payload []names.Name) (actions.Act, syntax.Proc) {
	return semantics.Instantiate(t, payload)
}
