package equiv

import (
	"strings"
	"testing"

	"bpi/internal/cert"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

func newCertC() *Checker {
	ch := NewChecker(nil)
	ch.Certify = true
	return ch
}

// certPairs is a small zoo spanning the interesting shapes: equal pairs,
// τ-divergent pairs, barb mismatches, bound outputs, mixed-arity listeners
// and discard-set differences (the ~ vs ~+ separator of Remark 4).
func certPairs() [][2]syntax.Proc {
	recv := syntax.RecvN(a, x)
	send := syntax.SendN(a, b)
	return [][2]syntax.Proc{
		{send, send},
		{syntax.Group(send, syntax.PNil), send},
		{syntax.TauP(send), send},
		{syntax.TauP(send), syntax.TauP(syntax.SendN(a, c))},
		{send, syntax.SendN(c, b)},
		{recv, syntax.RecvN(b, x)},
		{recv, syntax.Choice(recv, syntax.RecvN(b, y))},
		{syntax.Restrict(syntax.SendN(x, a), x), syntax.PNil},
		{syntax.Choice(syntax.TauP(send), syntax.TauP(syntax.PNil)), syntax.TauP(send)},
		{syntax.Group(recv, send), syntax.Group(send, recv)},
	}
}

func verifyCert(t *testing.T, crt *cert.Certificate, related bool, ctxt string) {
	t.Helper()
	if crt == nil {
		t.Fatalf("%s: no certificate emitted", ctxt)
	}
	if crt.Related != related {
		t.Fatalf("%s: certificate says related=%v, verdict %v", ctxt, crt.Related, related)
	}
	if err := cert.Verify(crt); err != nil {
		data, _ := crt.Marshal()
		t.Fatalf("%s: certificate rejected: %v\n%s", ctxt, err, data)
	}
}

func TestPairRelationCertificates(t *testing.T) {
	for _, weak := range []bool{false, true} {
		ch := newCertC()
		for _, pq := range certPairs() {
			for _, rel := range []string{"labelled", "barbed", "step"} {
				var r Result
				var err error
				switch rel {
				case "labelled":
					r, err = ch.Labelled(pq[0], pq[1], weak)
				case "barbed":
					r, err = ch.Barbed(pq[0], pq[1], weak)
				default:
					r, err = ch.Step(pq[0], pq[1], weak)
				}
				ctxt := rel + " " + syntax.String(pq[0]) + " vs " + syntax.String(pq[1])
				if weak {
					ctxt = "weak " + ctxt
				}
				if err != nil {
					t.Fatalf("%s: %v", ctxt, err)
				}
				verifyCert(t, r.Cert, r.Related, ctxt)
			}
		}
	}
}

func TestOneStepAndCongruenceCertificates(t *testing.T) {
	for _, weak := range []bool{false, true} {
		ch := newCertC()
		for _, pq := range certPairs() {
			crt, ok, err := ch.OneStepCert(pq[0], pq[1], weak)
			ctxt := "onestep " + syntax.String(pq[0]) + " vs " + syntax.String(pq[1])
			if err != nil {
				t.Fatalf("%s: %v", ctxt, err)
			}
			verifyCert(t, crt, ok, ctxt)

			ccrt, cok, err := ch.CongruenceCert(pq[0], pq[1], weak)
			ctxt = "congruence " + syntax.String(pq[0]) + " vs " + syntax.String(pq[1])
			if err != nil {
				t.Fatalf("%s: %v", ctxt, err)
			}
			verifyCert(t, ccrt, cok, ctxt)
		}
	}
}

// TestCachedVerdictKeepsCertificate pins the memo upgrade: a cache hit must
// return the full certificate and the full reason, not a truncated
// placeholder (the old cache returned "cached negative verdict").
func TestCachedVerdictKeepsCertificate(t *testing.T) {
	ch := newCertC()
	p := syntax.TauP(syntax.SendN(a, b))
	q := syntax.TauP(syntax.SendN(a, c))
	first, err := ch.Labelled(p, q, false)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ch.Labelled(p, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if second.Pairs != 0 {
		t.Fatalf("second query explored %d pairs, want a cache hit", second.Pairs)
	}
	if second.Reason != first.Reason {
		t.Errorf("cached reason %q differs from original %q", second.Reason, first.Reason)
	}
	if strings.Contains(second.Reason, "cached") {
		t.Errorf("cached reason is a placeholder: %q", second.Reason)
	}
	if second.Cert == nil {
		t.Fatal("cache hit dropped the certificate")
	}
	verifyCert(t, second.Cert, false, "cached")

	// Swapped query: symmetric entry, certificate in original orientation
	// must still verify (membership and roots are checked up to swap).
	swapped, err := ch.Labelled(q, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if swapped.Pairs != 0 || swapped.Cert == nil {
		t.Fatalf("swapped query: pairs=%d cert=%v, want cached certificate", swapped.Pairs, swapped.Cert != nil)
	}
	verifyCert(t, swapped.Cert, false, "swapped cached")
}

// TestCertifyUpgradesUncertifiedEntry pins the re-run path: verdicts cached
// while Certify was off gain a certificate once it is on.
func TestCertifyUpgradesUncertifiedEntry(t *testing.T) {
	ch := NewChecker(nil)
	p := syntax.SendN(a, b)
	q := syntax.Group(syntax.SendN(a, b), syntax.PNil)
	if _, err := ch.Labelled(p, q, false); err != nil {
		t.Fatal(err)
	}
	ch.Certify = true
	r, err := ch.Labelled(p, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cert == nil {
		t.Fatal("certifying query on an uncertified cache entry returned no certificate")
	}
	verifyCert(t, r.Cert, true, "upgraded")
}

// TestMutatedCertificatesRejected pins the verifier's independence: tampering
// with sound certificates must be detected.
func TestMutatedCertificatesRejected(t *testing.T) {
	ch := newCertC()
	p := syntax.TauP(syntax.SendN(a, b))
	q := syntax.Choice(syntax.TauP(syntax.SendN(a, b)), syntax.TauP(syntax.SendN(a, b)))
	pos, err := ch.Labelled(p, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if !pos.Related || pos.Cert == nil {
		t.Fatalf("want a positive certificate, got related=%v", pos.Related)
	}
	verifyCert(t, pos.Cert, true, "baseline positive")

	t.Run("dropped pair", func(t *testing.T) {
		m := clone(t, pos.Cert)
		m.Pairs = m.Pairs[:len(m.Pairs)-1]
		m.Moves = m.Moves[:len(m.Moves)-1]
		if cert.Verify(m) == nil {
			t.Error("certificate with a dropped pair verified")
		}
	})
	t.Run("redirected witness", func(t *testing.T) {
		m := clone(t, pos.Cert)
		mutated := false
	outer:
		for i := range m.Moves {
			for j := range m.Moves[i] {
				// Point the witness answer somewhere that is not a
				// derivable response: the mover's own derivative works
				// whenever it differs from the recorded answer.
				mv := &m.Moves[i][j]
				moverIdx, ansIdx := mv.Pair[0], mv.Pair[1]
				if mv.Side == "right" {
					moverIdx, ansIdx = mv.Pair[1], mv.Pair[0]
				}
				if m.Terms[moverIdx] != m.Terms[ansIdx] {
					if mv.Side == "right" {
						mv.Pair[0] = moverIdx
					} else {
						mv.Pair[1] = moverIdx
					}
					mutated = true
					break outer
				}
			}
		}
		if !mutated {
			t.Skip("no asymmetric witness to redirect")
		}
		if cert.Verify(m) == nil {
			t.Error("certificate with a redirected witness verified")
		}
	})
	t.Run("flipped verdict", func(t *testing.T) {
		m := clone(t, pos.Cert)
		m.Related = false
		if cert.Verify(m) == nil {
			t.Error("positive certificate relabelled negative verified")
		}
	})

	neg, err := ch.Labelled(syntax.SendN(a, b), syntax.SendN(a, c), false)
	if err != nil {
		t.Fatal(err)
	}
	if neg.Related || neg.Cert == nil {
		t.Fatalf("want a negative certificate, got related=%v", neg.Related)
	}
	verifyCert(t, neg.Cert, false, "baseline negative")

	t.Run("retargeted strategy", func(t *testing.T) {
		m := clone(t, neg.Cert)
		m.Nodes[0].P, m.Nodes[0].Q = m.Nodes[0].Q, "0"
		if cert.Verify(m) == nil {
			t.Error("strategy attacking the wrong root pair verified")
		}
	})
}

// TestCyclicStrategyRejected pins the well-foundedness check: a cyclic
// "refutation" of a greatest-fixpoint property proves nothing — here it would
// establish K ≁ K for the recursive constant K = τ.K.
func TestCyclicStrategyRejected(t *testing.T) {
	env := syntax.Env{}.Define("K", nil, syntax.TauP(syntax.Call{Id: "K"}))
	crt := &cert.Certificate{
		Version: cert.Version, Relation: cert.RelLabelled, Related: false,
		P: "K()", Q: "K()",
		Nodes: []cert.Strategy{{
			P: "K()", Q: "K()", Kind: "tau", Side: "left", To: "K()",
			Replies: []cert.Reply{{To: "K()", Next: 0}},
		}},
	}
	v := &cert.Verifier{Sys: semantics.NewSystem(env)}
	err := v.Verify(crt)
	if err == nil {
		t.Fatal("cyclic strategy verified")
	}
	if !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("want a cyclicity rejection, got: %v", err)
	}
}

func clone(t *testing.T, c *cert.Certificate) *cert.Certificate {
	t.Helper()
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cert.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReasonNamesActionAndTerms pins the Result.Reason contract: the failing
// action and both canonical terms are named, on fresh and cached paths alike.
func TestReasonNamesActionAndTerms(t *testing.T) {
	ch := NewChecker(nil)
	p := syntax.TauP(syntax.SendN(a, b))
	q := syntax.TauP(syntax.SendN(a, c))
	want := "strong labelled: tau move of left to a!(b) unmatched (comparing tau.a!(b) with tau.a!(c))"
	for _, pass := range []string{"fresh", "cached"} {
		r, err := ch.Labelled(p, q, false)
		if err != nil {
			t.Fatal(err)
		}
		if r.Related {
			t.Fatal("τ.āb ~ τ.āc should fail")
		}
		if r.Reason != want {
			t.Errorf("%s Reason = %q, want %q", pass, r.Reason, want)
		}
	}
	// A barb failure names the barb channel and side.
	rb, err := ch.Barbed(syntax.SendN(a, b), syntax.SendN(c, b), false)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Related {
		t.Fatal("āb ~b c̄b should fail")
	}
	wantBarb := "strong barbed: strong barbs differ on a: {a} vs {c} (comparing a!(b) with c!(b))"
	if rb.Reason != wantBarb {
		t.Errorf("barb Reason = %q, want %q", rb.Reason, wantBarb)
	}
	_ = names.Name("")
}
