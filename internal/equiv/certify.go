package equiv

import (
	"bpi/internal/cert"
	"bpi/internal/names"
)

// This file turns a finished engine run into a checkable certificate
// (internal/cert): the surviving relation with one witness move per
// discharged obligation when the root pair is related, or a well-founded
// distinguishing strategy when it is not. Emission only reads engine state
// left by explore+fixpoint; the verifier re-derives everything else.

// barbWitness picks the deterministic witness of a strong-barb mismatch: the
// least (sorted) name present on exactly one side, tagged with the side that
// owns it.
func barbWitness(pb, qb names.Set) (string, names.Name) {
	for _, a := range pb.Sorted() {
		if !qb.Contains(a) {
			return "left", a
		}
	}
	for _, a := range qb.Sorted() {
		if !pb.Contains(a) {
			return "right", a
		}
	}
	return "left", ""
}

func (sp spec) relName() string {
	switch sp.kind {
	case relBarbed:
		return cert.RelBarbed
	case relStep:
		return cert.RelStep
	default:
		return cert.RelLabelled
	}
}

// certificate assembles the evidence for the decided root pair.
func (e *engine) certificate(root int) *cert.Certificate {
	rn := e.nodes[root]
	c := &cert.Certificate{
		Version:  cert.Version,
		Relation: e.sp.relName(),
		Weak:     e.sp.weak,
		Related:  !rn.bad,
		P:        stringOf(rn.p),
		Q:        stringOf(rn.q),
	}
	if rn.bad {
		e.strategy(c, root)
	} else {
		e.relation(c)
	}
	return c
}

// relation emits every pair that survived the fixpoint, with the first live
// candidate of each obligation as its witness move. Witnesses of surviving
// pairs survive too, so the emitted relation is closed.
func (e *engine) relation(c *cert.Certificate) {
	idx := map[uint64]int{}
	termIdx := func(ti *termInfo) int {
		if i, ok := idx[ti.id]; ok {
			return i
		}
		i := len(c.Terms)
		idx[ti.id] = i
		c.Terms = append(c.Terms, stringOf(ti))
		return i
	}
	for _, n := range e.nodes {
		if n.bad {
			continue
		}
		moves := make([]cert.Move, 0, len(n.obs))
		for _, ob := range n.obs {
			wi := -1
			for _, ci := range ob.candidates {
				if !e.nodes[ci].bad {
					wi = ci
					break
				}
			}
			if wi < 0 {
				continue // unreachable: surviving pairs keep a live candidate per obligation
			}
			w := e.nodes[wi]
			moves = append(moves, cert.Move{
				Side:    ob.mv.side,
				Kind:    ob.mv.kind,
				Label:   ob.mv.label,
				Ch:      string(ob.mv.ch),
				Payload: stringNames(ob.mv.payload),
				Pair:    [2]int{termIdx(w.p), termIdx(w.q)},
			})
		}
		c.Pairs = append(c.Pairs, [2]int{termIdx(n.p), termIdx(n.q)})
		c.Moves = append(c.Moves, moves)
	}
}

// strategy emits the distinguishing strategy DAG rooted at the dead root
// pair: per node, the refuted obligation chosen by chooseKill, with one reply
// (and recursively one child node) per defender answer.
func (e *engine) strategy(c *cert.Certificate, root int) {
	rank := e.killRanks()
	memo := map[int]int{}
	var emit func(i int) int
	emit = func(i int) int {
		if ci, ok := memo[i]; ok {
			return ci
		}
		ci := len(c.Nodes)
		memo[i] = ci
		c.Nodes = append(c.Nodes, cert.Strategy{})
		n := e.nodes[i]
		s := cert.Strategy{P: stringOf(n.p), Q: stringOf(n.q)}
		if n.staticBad {
			s.Kind, s.Side, s.Label = "barb", n.failSide, string(n.failBarb)
			c.Nodes[ci] = s
			return ci
		}
		ob := e.chooseKill(n, rank, rank[i])
		s.Kind, s.Side = ob.mv.kind, ob.mv.side
		s.Label = ob.mv.label
		s.Ch = string(ob.mv.ch)
		s.Payload = stringNames(ob.mv.payload)
		s.To = stringOf(ob.mv.mover)
		seen := map[uint64]bool{}
		for _, cd := range ob.candidates {
			cn := e.nodes[cd]
			def := cn.q
			if ob.mv.side == "right" {
				def = cn.p
			}
			if seen[def.id] {
				continue
			}
			seen[def.id] = true
			s.Replies = append(s.Replies, cert.Reply{To: stringOf(def), Next: emit(cd)})
		}
		c.Nodes[ci] = s
		return ci
	}
	emit(root)
}

// killRanks assigns each dead pair the height of its refutation: staticBad
// pairs and pairs with an answerless obligation get 0, other dead pairs get
// 1 + the maximum candidate rank of some fully-refuted obligation. Ranks are
// assigned once and chooseKill only follows obligations whose candidates
// rank strictly below the node, so emitted strategies are DAGs — the
// verifier rejects cyclic refutations outright.
func (e *engine) killRanks() []int {
	rank := make([]int, len(e.nodes))
	for i := range rank {
		rank[i] = -1
	}
	for changed := true; changed; {
		changed = false
		for i, n := range e.nodes {
			if !n.bad || rank[i] >= 0 {
				continue
			}
			if r := e.nodeRank(n, rank); r >= 0 {
				rank[i] = r
				changed = true
			}
		}
	}
	return rank
}

// nodeRank is the candidate rank of n this pass: 0 for static failures and
// answerless obligations, else the minimum over obligations whose candidates
// are all ranked of (max candidate rank) + 1; -1 when none is ready yet.
func (e *engine) nodeRank(n *pairNode, rank []int) int {
	if n.staticBad {
		return 0
	}
	best := -1
	for _, ob := range n.obs {
		max, ok := -1, true
		for _, ci := range ob.candidates {
			if rank[ci] < 0 {
				ok = false
				break
			}
			if rank[ci] > max {
				max = rank[ci]
			}
		}
		if !ok {
			continue
		}
		if best < 0 || max+1 < best {
			best = max + 1
		}
	}
	return best
}

// chooseKill picks the first obligation (construction order, so deterministic)
// whose candidates are all dead with ranks strictly below r. killRanks
// guarantees one exists for every ranked node.
func (e *engine) chooseKill(n *pairNode, rank []int, r int) obligation {
	for _, ob := range n.obs {
		max, ok := -1, true
		for _, ci := range ob.candidates {
			if rank[ci] < 0 {
				ok = false
				break
			}
			if rank[ci] > max {
				max = rank[ci]
			}
		}
		if ok && max < r {
			return ob
		}
	}
	return n.obs[0] // unreachable when r came from killRanks
}

func stringNames(ns []names.Name) []string {
	if len(ns) == 0 {
		return nil
	}
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = string(n)
	}
	return out
}
