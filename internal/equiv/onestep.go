package equiv

import (
	"context"
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// OneStep decides the auxiliary one-step relation ~+ (Definition 11) or ≈+
// (Definition 15).
//
// Unlike the bisimilarities, ~+ matches moves *strictly by action*: a τ by a
// τ, an output by an equal (canonical) output, an input a(c̃) by an input
// a(c̃), and a discard a: by a discard a: — successors are then compared
// under the full (noisy) labelled bisimilarity ~. This strictness is what
// separates ~+ from ~ (Remark 4: a ~ b for input prefixes a, b, yet a ≁+ b
// because their discard sets differ) and is the reason the completeness
// proof of Theorem 7 saturates head normal forms with axiom (H) until
// neither side can discard an input of the other.
//
// Closing ~+ (resp. ≈+) under all substitutions yields the congruence ~c
// (resp. ≈c) — see Congruence.
func (c *Checker) OneStep(p, q syntax.Proc, weak bool) (bool, error) {
	return c.OneStepCtx(context.Background(), p, q, weak)
}

// OneStepCtx is OneStep honouring ctx: cancellation aborts the move
// enumeration (and the labelled sub-queries) with an ErrCanceled.
func (c *Checker) OneStepCtx(ctx context.Context, p, q syntax.Proc, weak bool) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pi, err := c.intern(p)
	if err != nil {
		return false, err
	}
	qi, err := c.intern(q)
	if err != nil {
		return false, err
	}
	// Discard clause. Strong: the discard move a: of one side must be
	// matched by a discard of the other, with successors (the processes
	// themselves) related — which makes the discard sets over the shared
	// free names coincide. Weak (clause 4 of Definition 15): a discard of
	// one side must be weakly available on the other (after τ*), with the
	// resting state related to the still-discarding side.
	chans := freeUnion(pi, qi).Sorted()
	for _, a := range chans {
		if err := ctx.Err(); err != nil {
			return false, ErrCanceled{err}
		}
		dp, err := c.discardsOn(pi, a)
		if err != nil {
			return false, err
		}
		dq, err := c.discardsOn(qi, a)
		if err != nil {
			return false, err
		}
		if !weak {
			if dp != dq {
				return false, nil
			}
			continue
		}
		if dp {
			ok, err := c.weakDiscardMatch(ctx, pi, qi, a, weak)
			if err != nil || !ok {
				return false, err
			}
		}
		if dq {
			ok, err := c.weakDiscardMatch(ctx, qi, pi, a, weak)
			if err != nil || !ok {
				return false, err
			}
		}
	}
	if ok, err := c.oneStepDirected(ctx, pi, qi, weak, false); err != nil || !ok {
		return false, err
	}
	return c.oneStepDirected(ctx, qi, pi, weak, true)
}

// weakDiscardMatch checks clause 4 of Definition 15: discarder --a:-->
// (staying put) must be answered by other =ε=> o' with o' discarding a and
// the pair (discarder, o') weakly bisimilar.
func (c *Checker) weakDiscardMatch(ctx context.Context, discarder, other *termInfo, a names.Name, weak bool) (bool, error) {
	cl, err := c.tauClosure(other)
	if err != nil {
		return false, err
	}
	for _, s := range cl {
		d, err := c.discardsOn(s, a)
		if err != nil {
			return false, err
		}
		if !d {
			continue
		}
		r, err := c.LabelledCtx(ctx, discarder.proc, s.proc, weak)
		if err != nil {
			return false, err
		}
		if r.Related {
			return true, nil
		}
	}
	return false, nil
}

// oneStepDirected checks the mover→answerer half of Definitions 11/15 for
// τ, output and input moves. flipped tells which side of the successor pair
// the mover's derivative goes on (the successor relation ~ is symmetric, so
// it only matters for error reporting consistency).
func (c *Checker) oneStepDirected(ctx context.Context, mover, answerer *termInfo, weak, flipped bool) (bool, error) {
	related := func(a, b *termInfo) (bool, error) {
		r, err := c.LabelledCtx(ctx, a.proc, b.proc, weak)
		if err != nil {
			return false, err
		}
		return r.Related, nil
	}
	avoid := freeUnion(mover, answerer)

	// τ moves. In the weak case a τ of the mover must be answered by at
	// least one τ of the answerer (τ·τ*, as in observational congruence):
	// allowing the empty answer would let τ.p ≈+ p, which + contexts
	// distinguish, contradicting Theorem 4 (≈c is a congruence).
	mt, err := c.tauSucc(mover)
	if err != nil {
		return false, err
	}
	var tauTargets []*termInfo
	if weak {
		first, err := c.tauSucc(answerer)
		if err != nil {
			return false, err
		}
		seen := map[uint64]*termInfo{}
		for _, f := range first {
			cl, err := c.tauClosure(f)
			if err != nil {
				return false, err
			}
			for _, s := range cl {
				seen[s.id] = s
			}
		}
		tauTargets = tauTargets[:0]
		for _, s := range seen {
			tauTargets = append(tauTargets, s)
		}
		sortTerms(tauTargets)
	} else {
		if tauTargets, err = c.tauSucc(answerer); err != nil {
			return false, err
		}
	}
	for _, ms := range mt {
		ok, err := anyRelated(ms, tauTargets, related)
		if err != nil || !ok {
			return false, err
		}
	}

	// Output moves, matched on identical canonical labels.
	answers := map[string][]*termInfo{}
	sources := []*termInfo{answerer}
	if weak {
		if sources, err = c.tauClosure(answerer); err != nil {
			return false, err
		}
	}
	for _, src := range sources {
		for _, ot := range outputsCanon(src, avoid) {
			tgt, err := c.intern(ot.Target)
			if err != nil {
				return false, err
			}
			finals := []*termInfo{tgt}
			if weak {
				if finals, err = c.tauClosure(tgt); err != nil {
					return false, err
				}
			}
			answers[ot.Act.String()] = append(answers[ot.Act.String()], finals...)
		}
	}
	for _, mo := range outputsCanon(mover, avoid) {
		mtgt, err := c.intern(mo.Target)
		if err != nil {
			return false, err
		}
		ok, err := anyRelated(mtgt, answers[mo.Act.String()], related)
		if err != nil || !ok {
			return false, err
		}
	}

	// Input moves: strictly input-by-input on the same ground label.
	mshapes := make([]shape, 0)
	for s := range inputShapes(mover) {
		mshapes = append(mshapes, s)
	}
	sortShapes(mshapes)
	for _, s := range mshapes {
		u := pairUniverse(mover, answerer, s.arity)
		for _, payload := range tuples(u, s.arity) {
			if err := ctx.Err(); err != nil {
				return false, ErrCanceled{err}
			}
			mIns, err := c.inputDerivatives(mover, s.ch, payload)
			if err != nil {
				return false, err
			}
			if len(mIns) == 0 {
				continue
			}
			aIns, err := c.weakInputDerivatives(answerer, s.ch, payload, weak)
			if err != nil {
				return false, err
			}
			for _, md := range mIns {
				ok, err := anyRelated(md, aIns, related)
				if err != nil || !ok {
					return false, err
				}
			}
		}
	}
	return true, nil
}

// inputDerivatives returns the genuine reception derivatives (no discard).
func (c *Checker) inputDerivatives(ti *termInfo, ch names.Name, payload []names.Name) ([]*termInfo, error) {
	var out []*termInfo
	for _, t := range ti.trans {
		if !t.Act.IsInput() || t.Act.Subj != ch || len(t.Act.Objs) != len(payload) {
			continue
		}
		_, tgt := semanticsInstantiate(t, payload)
		s, err := c.intern(tgt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// weakInputDerivatives returns the (weak, when requested) reception answers:
// =ε=> · a(c̃) · =ε=> (strict input in the middle).
func (c *Checker) weakInputDerivatives(ti *termInfo, ch names.Name, payload []names.Name, weak bool) ([]*termInfo, error) {
	if !weak {
		return c.inputDerivatives(ti, ch, payload)
	}
	pre, err := c.tauClosure(ti)
	if err != nil {
		return nil, err
	}
	seen := map[uint64]*termInfo{}
	for _, s := range pre {
		ds, err := c.inputDerivatives(s, ch, payload)
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			post, err := c.tauClosure(d)
			if err != nil {
				return nil, err
			}
			for _, t := range post {
				seen[t.id] = t
			}
		}
	}
	out := make([]*termInfo, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sortTerms(out)
	return out, nil
}

// Congruence decides the strong congruence ~c (weak=false) or the weak
// congruence ≈c (weak=true): pσ ~+ qσ (resp. ≈+) for all substitutions σ.
//
// Substitution closure is exact on a finite sufficient set: all fusions
// fn(p,q) → fn(p,q). Substitutions introducing genuinely fresh targets are
// injective renamings of these up to bisimilarity (Lemma 18), so they add no
// discriminating power. The enumeration is n^n in |fn(p,q)| — use
// CongruenceBounded for larger interfaces.
func (c *Checker) Congruence(p, q syntax.Proc, weak bool) (bool, error) {
	return c.CongruenceBounded(p, q, weak, 0)
}

// CongruenceCtx is Congruence honouring ctx (checked per substitution and
// inside each one-step sub-query).
func (c *Checker) CongruenceCtx(ctx context.Context, p, q syntax.Proc, weak bool) (bool, error) {
	return c.CongruenceBoundedCtx(ctx, p, q, weak, 0)
}

// CongruenceBounded is Congruence with a cap on the number of substitutions
// tried (0 means unbounded). When capped, a true verdict means "no tried
// substitution distinguishes them".
func (c *Checker) CongruenceBounded(p, q syntax.Proc, weak bool, maxSubs int) (bool, error) {
	return c.CongruenceBoundedCtx(context.Background(), p, q, weak, maxSubs)
}

// CongruenceBoundedCtx is CongruenceBounded honouring ctx.
func (c *Checker) CongruenceBoundedCtx(ctx context.Context, p, q syntax.Proc, weak bool, maxSubs int) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fn := syntax.FreeNames(p).AddAll(syntax.FreeNames(q)).Sorted()
	subs := names.AllFusions(fn, fn)
	if len(subs) == 0 {
		subs = []names.Subst{{}}
	}
	if maxSubs > 0 && len(subs) > maxSubs {
		subs = subs[:maxSubs]
	}
	for _, sub := range subs {
		if err := ctx.Err(); err != nil {
			return false, ErrCanceled{err}
		}
		ok, err := c.OneStepCtx(ctx, syntax.Apply(p, sub), syntax.Apply(q, sub), weak)
		if err != nil {
			return false, fmt.Errorf("under substitution %s: %w", sub, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
