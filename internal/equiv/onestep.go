package equiv

import (
	"context"
	"fmt"

	"bpi/internal/cert"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// OneStep decides the auxiliary one-step relation ~+ (Definition 11) or ≈+
// (Definition 15).
//
// Unlike the bisimilarities, ~+ matches moves *strictly by action*: a τ by a
// τ, an output by an equal (canonical) output, an input a(c̃) by an input
// a(c̃), and a discard a: by a discard a: — successors are then compared
// under the full (noisy) labelled bisimilarity ~. This strictness is what
// separates ~+ from ~ (Remark 4: a ~ b for input prefixes a, b, yet a ≁+ b
// because their discard sets differ) and is the reason the completeness
// proof of Theorem 7 saturates head normal forms with axiom (H) until
// neither side can discard an input of the other.
//
// Closing ~+ (resp. ≈+) under all substitutions yields the congruence ~c
// (resp. ≈c) — see Congruence.
func (c *Checker) OneStep(p, q syntax.Proc, weak bool) (bool, error) {
	return c.OneStepCtx(context.Background(), p, q, weak)
}

// OneStepCtx is OneStep honouring ctx: cancellation aborts the move
// enumeration (and the labelled sub-queries) with an ErrCanceled.
func (c *Checker) OneStepCtx(ctx context.Context, p, q syntax.Proc, weak bool) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pi, err := c.intern(p)
	if err != nil {
		return false, err
	}
	qi, err := c.intern(q)
	if err != nil {
		return false, err
	}
	_, ok, err := c.oneStep(ctx, pi, qi, weak, nil)
	return ok, err
}

// OneStepCert is OneStep returning a checkable certificate alongside the
// verdict. Requires the Certify option (the labelled sub-queries supply the
// embedded evidence).
func (c *Checker) OneStepCert(p, q syntax.Proc, weak bool) (*cert.Certificate, bool, error) {
	return c.OneStepCertCtx(context.Background(), p, q, weak)
}

// OneStepCertCtx is OneStepCert honouring ctx.
func (c *Checker) OneStepCertCtx(ctx context.Context, p, q syntax.Proc, weak bool) (*cert.Certificate, bool, error) {
	if !c.Certify {
		return nil, false, fmt.Errorf("equiv: one-step certification requires the Certify option")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pi, err := c.intern(p)
	if err != nil {
		return nil, false, err
	}
	qi, err := c.intern(q)
	if err != nil {
		return nil, false, err
	}
	return c.oneStep(ctx, pi, qi, weak, newOSEmit(c, ctx, weak, pi, qi))
}

// oneStep is the single implementation behind OneStepCtx and OneStepCertCtx:
// em == nil runs verdict-only, otherwise every discharged strict challenge is
// recorded (top move + merged labelled relation) and the first failing one
// becomes the negative certificate.
func (c *Checker) oneStep(ctx context.Context, pi, qi *termInfo, weak bool, em *osEmit) (*cert.Certificate, bool, error) {
	// Discard clause. Strong: the discard move a: of one side must be
	// matched by a discard of the other, with successors (the processes
	// themselves) related — which makes the discard sets over the shared
	// free names coincide. Weak (clause 4 of Definition 15): a discard of
	// one side must be weakly available on the other (after τ*), with the
	// resting state related to the still-discarding side.
	chans := freeUnion(pi, qi).Sorted()
	for _, a := range chans {
		if err := ctx.Err(); err != nil {
			return nil, false, ErrCanceled{err}
		}
		dp, err := c.discardsOn(pi, a)
		if err != nil {
			return nil, false, err
		}
		dq, err := c.discardsOn(qi, a)
		if err != nil {
			return nil, false, err
		}
		if !weak {
			if dp != dq {
				if em == nil {
					return nil, false, nil
				}
				side := "left"
				if dq {
					side = "right"
				}
				// Strong discard mismatch is a leaf: the attacker
				// discards a, the defender provably does not.
				crt := em.header(false)
				crt.Nodes = []cert.Strategy{{
					P: stringOf(pi), Q: stringOf(qi),
					Kind: "discard", Side: side, Ch: string(a),
				}}
				return crt, false, nil
			}
			continue
		}
		if dp {
			crt, ok, err := c.weakDiscardMatch(ctx, pi, qi, a, "left", em)
			if err != nil || !ok {
				return crt, false, err
			}
		}
		if dq {
			crt, ok, err := c.weakDiscardMatch(ctx, qi, pi, a, "right", em)
			if err != nil || !ok {
				return crt, false, err
			}
		}
	}
	if crt, ok, err := c.oneStepDirected(ctx, pi, qi, weak, "left", em); err != nil || !ok {
		return crt, ok, err
	}
	if crt, ok, err := c.oneStepDirected(ctx, qi, pi, weak, "right", em); err != nil || !ok {
		return crt, ok, err
	}
	if em == nil {
		return nil, true, nil
	}
	return em.positive(), true, nil
}

// weakDiscardMatch checks clause 4 of Definition 15: discarder --a:-->
// (staying put) must be answered by other =ε=> o' with o' discarding a and
// the pair (discarder, o') weakly bisimilar.
func (c *Checker) weakDiscardMatch(ctx context.Context, discarder, other *termInfo, a names.Name, side string, em *osEmit) (*cert.Certificate, bool, error) {
	cl, err := c.tauClosure(other)
	if err != nil {
		return nil, false, err
	}
	var answers []*termInfo
	for _, s := range cl {
		d, err := c.discardsOn(s, a)
		if err != nil {
			return nil, false, err
		}
		if d {
			answers = append(answers, s)
		}
	}
	for _, s := range answers {
		r, err := c.LabelledCtx(ctx, discarder.proc, s.proc, true)
		if err != nil {
			return nil, false, err
		}
		if r.Related {
			if em != nil {
				if err := em.discardWitness(side, a, discarder, s, r.Cert); err != nil {
					return nil, false, err
				}
			}
			return nil, true, nil
		}
	}
	if em == nil {
		return nil, false, nil
	}
	crt, err := em.refute("discard", side, "", a, nil, nil, answers)
	return crt, false, err
}

// oneStepDirected checks the mover→answerer half of Definitions 11/15 for
// τ, output and input moves. side names the mover ("left" = pi moved).
func (c *Checker) oneStepDirected(ctx context.Context, mover, answerer *termInfo, weak bool, side string, em *osEmit) (*cert.Certificate, bool, error) {
	avoid := freeUnion(mover, answerer)

	// τ moves. In the weak case a τ of the mover must be answered by at
	// least one τ of the answerer (τ·τ*, as in observational congruence):
	// allowing the empty answer would let τ.p ≈+ p, which + contexts
	// distinguish, contradicting Theorem 4 (≈c is a congruence).
	mt, err := c.tauSucc(mover)
	if err != nil {
		return nil, false, err
	}
	var tauTargets []*termInfo
	if weak {
		first, err := c.tauSucc(answerer)
		if err != nil {
			return nil, false, err
		}
		seen := map[uint64]*termInfo{}
		for _, f := range first {
			cl, err := c.tauClosure(f)
			if err != nil {
				return nil, false, err
			}
			for _, s := range cl {
				seen[s.id] = s
			}
		}
		for _, s := range seen {
			tauTargets = append(tauTargets, s)
		}
		sortTerms(tauTargets)
	} else {
		if tauTargets, err = c.tauSucc(answerer); err != nil {
			return nil, false, err
		}
	}
	for _, ms := range mt {
		crt, ok, err := c.strictMatch(ctx, em, weak, "tau", side, "", "", nil, ms, tauTargets)
		if err != nil || !ok {
			return crt, false, err
		}
	}

	// Output moves, matched on identical canonical labels.
	answers := map[string][]*termInfo{}
	sources := []*termInfo{answerer}
	if weak {
		if sources, err = c.tauClosure(answerer); err != nil {
			return nil, false, err
		}
	}
	for _, src := range sources {
		for _, ot := range outputsCanon(src, avoid) {
			tgt, err := c.intern(ot.Target)
			if err != nil {
				return nil, false, err
			}
			finals := []*termInfo{tgt}
			if weak {
				if finals, err = c.tauClosure(tgt); err != nil {
					return nil, false, err
				}
			}
			answers[ot.Act.String()] = append(answers[ot.Act.String()], finals...)
		}
	}
	for _, mo := range outputsCanon(mover, avoid) {
		mtgt, err := c.intern(mo.Target)
		if err != nil {
			return nil, false, err
		}
		lab := mo.Act.String()
		crt, ok, err := c.strictMatch(ctx, em, weak, "out", side, lab, "", nil, mtgt, answers[lab])
		if err != nil || !ok {
			return crt, false, err
		}
	}

	// Input moves: strictly input-by-input on the same ground label.
	mshapes := make([]shape, 0)
	for s := range inputShapes(mover) {
		mshapes = append(mshapes, s)
	}
	sortShapes(mshapes)
	for _, s := range mshapes {
		u := pairUniverse(mover, answerer, s.arity)
		for _, payload := range tuples(u, s.arity) {
			if err := ctx.Err(); err != nil {
				return nil, false, ErrCanceled{err}
			}
			mIns, err := c.inputDerivatives(mover, s.ch, payload)
			if err != nil {
				return nil, false, err
			}
			if len(mIns) == 0 {
				continue
			}
			aIns, err := c.weakInputDerivatives(answerer, s.ch, payload, weak)
			if err != nil {
				return nil, false, err
			}
			for _, md := range mIns {
				crt, ok, err := c.strictMatch(ctx, em, weak, "in", side, "", s.ch, payload, md, aIns)
				if err != nil || !ok {
					return crt, false, err
				}
			}
		}
	}
	return nil, true, nil
}

// strictMatch discharges one strict challenge: the mover's derivative must be
// labelled-bisimilar to some answer. With an emitter, success records the
// witness top move and failure assembles the negative certificate.
func (c *Checker) strictMatch(ctx context.Context, em *osEmit, weak bool, kind, side, label string,
	ch names.Name, payload []names.Name, mover *termInfo, answers []*termInfo) (*cert.Certificate, bool, error) {
	for _, ans := range answers {
		r, err := c.LabelledCtx(ctx, mover.proc, ans.proc, weak)
		if err != nil {
			return nil, false, err
		}
		if r.Related {
			if em != nil {
				if err := em.answer(kind, side, label, ch, payload, mover, ans, r.Cert); err != nil {
					return nil, false, err
				}
			}
			return nil, true, nil
		}
	}
	if em == nil {
		return nil, false, nil
	}
	crt, err := em.refute(kind, side, label, ch, payload, mover, answers)
	return crt, false, err
}

// inputDerivatives returns the genuine reception derivatives (no discard).
func (c *Checker) inputDerivatives(ti *termInfo, ch names.Name, payload []names.Name) ([]*termInfo, error) {
	var out []*termInfo
	for _, t := range ti.trans {
		if !t.Act.IsInput() || t.Act.Subj != ch || len(t.Act.Objs) != len(payload) {
			continue
		}
		_, tgt := semanticsInstantiate(t, payload)
		s, err := c.intern(tgt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// weakInputDerivatives returns the (weak, when requested) reception answers:
// =ε=> · a(c̃) · =ε=> (strict input in the middle).
func (c *Checker) weakInputDerivatives(ti *termInfo, ch names.Name, payload []names.Name, weak bool) ([]*termInfo, error) {
	if !weak {
		return c.inputDerivatives(ti, ch, payload)
	}
	pre, err := c.tauClosure(ti)
	if err != nil {
		return nil, err
	}
	seen := map[uint64]*termInfo{}
	for _, s := range pre {
		ds, err := c.inputDerivatives(s, ch, payload)
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			post, err := c.tauClosure(d)
			if err != nil {
				return nil, err
			}
			for _, t := range post {
				seen[t.id] = t
			}
		}
	}
	out := make([]*termInfo, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sortTerms(out)
	return out, nil
}

// ---- one-step certificate emission -----------------------------------------

// osEmit accumulates one-step certificate evidence: the strict top-level move
// table, the weak discard witnesses, and the union of the labelled
// sub-certificates as one merged relation.
type osEmit struct {
	c        *Checker
	ctx      context.Context
	weak     bool
	pi, qi   *termInfo
	rel      relMerger
	top      []cert.Move
	discards []cert.DiscardWitness
}

func newOSEmit(c *Checker, ctx context.Context, weak bool, pi, qi *termInfo) *osEmit {
	return &osEmit{c: c, ctx: ctx, weak: weak, pi: pi, qi: qi, rel: newRelMerger()}
}

func (em *osEmit) header(related bool) *cert.Certificate {
	return &cert.Certificate{
		Version:  cert.Version,
		Relation: cert.RelOneStep,
		Weak:     em.weak,
		Related:  related,
		P:        stringOf(em.pi),
		Q:        stringOf(em.qi),
	}
}

// answer records one discharged strict challenge: the labelled certificate of
// the witness pair is merged into the relation and the top move points at it.
func (em *osEmit) answer(kind, side, label string, ch names.Name, payload []names.Name,
	mover, ans *termInfo, sub *cert.Certificate) error {
	if err := em.rel.add(sub); err != nil {
		return err
	}
	l, r := mover, ans
	if side == "right" {
		l, r = ans, mover
	}
	em.top = append(em.top, cert.Move{
		Side: side, Kind: kind, Label: label, Ch: string(ch), Payload: stringNames(payload),
		Pair: [2]int{em.rel.term(stringOf(l)), em.rel.term(stringOf(r))},
	})
	return nil
}

// discardWitness records one discharged weak discard clause instance.
func (em *osEmit) discardWitness(side string, a names.Name, discarder, s *termInfo, sub *cert.Certificate) error {
	if err := em.rel.add(sub); err != nil {
		return err
	}
	l, r := discarder, s
	if side == "right" {
		l, r = s, discarder
	}
	em.discards = append(em.discards, cert.DiscardWitness{
		Ch: string(a), Side: side,
		Pair: [2]int{em.rel.term(stringOf(l)), em.rel.term(stringOf(r))},
	})
	return nil
}

func (em *osEmit) positive() *cert.Certificate {
	crt := em.header(true)
	crt.Terms, crt.Pairs, crt.Moves = em.rel.terms, em.rel.pairs, em.rel.moves
	crt.TopMoves, crt.Discards = em.top, em.discards
	return crt
}

// refute assembles the negative certificate at the first failing strict
// challenge: the root node is the challenge itself, and each reply embeds the
// labelled strategy refuting one defender answer. A nil mover marks the weak
// discard clause, where the attacker stays put.
func (em *osEmit) refute(kind, side, label string, ch names.Name, payload []names.Name,
	mover *termInfo, answers []*termInfo) (*cert.Certificate, error) {
	crt := em.header(false)
	root := cert.Strategy{
		P: stringOf(em.pi), Q: stringOf(em.qi),
		Kind: kind, Side: side, Label: label, Ch: string(ch), Payload: stringNames(payload),
	}
	attacker := mover
	if mover != nil {
		root.To = stringOf(mover)
	} else {
		attacker = em.pi
		if side == "right" {
			attacker = em.qi
		}
	}
	crt.Nodes = append(crt.Nodes, root)
	offsets := map[*cert.Certificate]int{}
	seen := map[uint64]bool{}
	for _, ans := range answers {
		if seen[ans.id] {
			continue
		}
		seen[ans.id] = true
		r, err := em.c.LabelledCtx(em.ctx, attacker.proc, ans.proc, em.weak)
		if err != nil {
			return nil, err
		}
		if r.Related || r.Cert == nil {
			return nil, fmt.Errorf("equiv: internal: refuted %s challenge has a related answer %s", kind, stringOf(ans))
		}
		off, ok := offsets[r.Cert]
		if !ok {
			off = len(crt.Nodes)
			offsets[r.Cert] = off
			crt.Nodes = appendShifted(crt.Nodes, r.Cert.Nodes, off)
		}
		crt.Nodes[0].Replies = append(crt.Nodes[0].Replies, cert.Reply{To: stringOf(ans), Next: off})
	}
	return crt, nil
}

// appendShifted appends sub-strategy nodes with their reply indices rebased
// to the enclosing node table.
func appendShifted(dst, src []cert.Strategy, off int) []cert.Strategy {
	for _, n := range src {
		n.Replies = append([]cert.Reply(nil), n.Replies...)
		for i := range n.Replies {
			n.Replies[i].Next += off
		}
		dst = append(dst, n)
	}
	return dst
}

// relMerger unions positive labelled certificates into one relation, keyed by
// printed canonical terms. Pair move tables are deterministic per pair (the
// fixpoint decides membership exactly, so liveness of a candidate does not
// depend on which query explored it), making first-wins dedup sound.
type relMerger struct {
	terms   []string
	termIdx map[string]int
	pairs   [][2]int
	moves   [][]cert.Move
	pairIdx map[[2]int]bool
	seen    map[*cert.Certificate]bool
}

func newRelMerger() relMerger {
	return relMerger{termIdx: map[string]int{}, pairIdx: map[[2]int]bool{}, seen: map[*cert.Certificate]bool{}}
}

func (m *relMerger) term(s string) int {
	if i, ok := m.termIdx[s]; ok {
		return i
	}
	i := len(m.terms)
	m.termIdx[s] = i
	m.terms = append(m.terms, s)
	return i
}

func (m *relMerger) add(sub *cert.Certificate) error {
	if sub == nil || !sub.Related || sub.Relation != cert.RelLabelled {
		return fmt.Errorf("equiv: internal: missing labelled sub-certificate")
	}
	if m.seen[sub] {
		return nil
	}
	m.seen[sub] = true
	remap := make([]int, len(sub.Terms))
	for i, s := range sub.Terms {
		remap[i] = m.term(s)
	}
	for k, pr := range sub.Pairs {
		np := [2]int{remap[pr[0]], remap[pr[1]]}
		if m.pairIdx[np] {
			continue
		}
		m.pairIdx[np] = true
		mvs := make([]cert.Move, len(sub.Moves[k]))
		for j, v := range sub.Moves[k] {
			v.Pair = [2]int{remap[v.Pair[0]], remap[v.Pair[1]]}
			mvs[j] = v
		}
		m.pairs = append(m.pairs, np)
		m.moves = append(m.moves, mvs)
	}
	return nil
}

// ---- congruences ------------------------------------------------------------

// Congruence decides the strong congruence ~c (weak=false) or the weak
// congruence ≈c (weak=true): pσ ~+ qσ (resp. ≈+) for all substitutions σ.
//
// Substitution closure is exact on a finite sufficient set: all fusions
// fn(p,q) → fn(p,q). Substitutions introducing genuinely fresh targets are
// injective renamings of these up to bisimilarity (Lemma 18), so they add no
// discriminating power. The enumeration is n^n in |fn(p,q)| — use
// CongruenceBounded for larger interfaces.
func (c *Checker) Congruence(p, q syntax.Proc, weak bool) (bool, error) {
	return c.CongruenceBounded(p, q, weak, 0)
}

// CongruenceCtx is Congruence honouring ctx (checked per substitution and
// inside each one-step sub-query).
func (c *Checker) CongruenceCtx(ctx context.Context, p, q syntax.Proc, weak bool) (bool, error) {
	return c.CongruenceBoundedCtx(ctx, p, q, weak, 0)
}

// CongruenceBounded is Congruence with a cap on the number of substitutions
// tried (0 means unbounded). When capped, a true verdict means "no tried
// substitution distinguishes them".
func (c *Checker) CongruenceBounded(p, q syntax.Proc, weak bool, maxSubs int) (bool, error) {
	return c.CongruenceBoundedCtx(context.Background(), p, q, weak, maxSubs)
}

// CongruenceBoundedCtx is CongruenceBounded honouring ctx.
func (c *Checker) CongruenceBoundedCtx(ctx context.Context, p, q syntax.Proc, weak bool, maxSubs int) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fn := syntax.FreeNames(p).AddAll(syntax.FreeNames(q)).Sorted()
	subs := names.AllFusions(fn, fn)
	if len(subs) == 0 {
		subs = []names.Subst{{}}
	}
	if maxSubs > 0 && len(subs) > maxSubs {
		subs = subs[:maxSubs]
	}
	for _, sub := range subs {
		if err := ctx.Err(); err != nil {
			return false, ErrCanceled{err}
		}
		ok, err := c.OneStepCtx(ctx, syntax.Apply(p, sub), syntax.Apply(q, sub), weak)
		if err != nil {
			return false, fmt.Errorf("under substitution %s: %w", sub, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// CongruenceCert decides ~c/≈c with a checkable certificate: one embedded
// positive one-step certificate per fusion of the free names, or the first
// distinguishing substitution with its one-step strategy. Requires Certify.
func (c *Checker) CongruenceCert(p, q syntax.Proc, weak bool) (*cert.Certificate, bool, error) {
	return c.CongruenceBoundedCertCtx(context.Background(), p, q, weak, 0)
}

// CongruenceBoundedCertCtx is CongruenceCert with a substitution cap. A
// positive verdict under truncation returns a nil certificate — "no tried
// substitution distinguishes them" is not checkable evidence for ~c.
func (c *Checker) CongruenceBoundedCertCtx(ctx context.Context, p, q syntax.Proc, weak bool, maxSubs int) (*cert.Certificate, bool, error) {
	if !c.Certify {
		return nil, false, fmt.Errorf("equiv: congruence certification requires the Certify option")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Work on the canonical pair throughout: the verifier re-derives the
	// fusion set from the parsed (hence canonical) certificate terms, so the
	// enumerations must agree.
	pi, err := c.intern(p)
	if err != nil {
		return nil, false, err
	}
	qi, err := c.intern(q)
	if err != nil {
		return nil, false, err
	}
	fn := freeUnion(pi, qi).Sorted()
	subs := names.AllFusions(fn, fn)
	if len(subs) == 0 {
		subs = []names.Subst{{}}
	}
	truncated := maxSubs > 0 && len(subs) > maxSubs
	if truncated {
		subs = subs[:maxSubs]
	}
	header := func(related bool) *cert.Certificate {
		return &cert.Certificate{
			Version: cert.Version, Relation: cert.RelCongruence, Weak: weak,
			Related: related, P: stringOf(pi), Q: stringOf(qi),
		}
	}
	seen := map[[2]uint64]bool{}
	var subCerts []*cert.Certificate
	for _, sub := range subs {
		if err := ctx.Err(); err != nil {
			return nil, false, ErrCanceled{err}
		}
		ps, err := c.intern(syntax.Apply(pi.proc, sub))
		if err != nil {
			return nil, false, err
		}
		qs, err := c.intern(syntax.Apply(qi.proc, sub))
		if err != nil {
			return nil, false, err
		}
		crt, ok, err := c.oneStep(ctx, ps, qs, weak, newOSEmit(c, ctx, weak, ps, qs))
		if err != nil {
			return nil, false, fmt.Errorf("under substitution %s: %w", sub, err)
		}
		if !ok {
			neg := header(false)
			neg.Sigma = sigmaMap(sub)
			neg.Nodes = crt.Nodes
			return neg, false, nil
		}
		if seen[[2]uint64{ps.id, qs.id}] {
			continue
		}
		seen[[2]uint64{ps.id, qs.id}] = true
		subCerts = append(subCerts, crt)
	}
	if truncated {
		return nil, true, nil
	}
	pos := header(true)
	pos.Subs = subCerts
	return pos, true, nil
}

func sigmaMap(sub names.Subst) map[string]string {
	out := make(map[string]string, len(sub))
	for k, v := range sub {
		out[string(k)] = string(v)
	}
	return out
}
