package equiv

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestErrorSurfaces pins the text and unwrap behaviour of the checker's
// inconclusive-verdict errors — callers branch on these.
func TestErrorSurfaces(t *testing.T) {
	eb := ErrBudget{What: "pairs"}
	if !strings.Contains(eb.Error(), "pairs") {
		t.Errorf("ErrBudget text %q does not name the budget", eb.Error())
	}
	ec := ErrCanceled{Cause: context.DeadlineExceeded}
	if !strings.Contains(ec.Error(), "canceled") {
		t.Errorf("ErrCanceled text %q", ec.Error())
	}
	if !errors.Is(ec, context.DeadlineExceeded) {
		t.Error("ErrCanceled does not unwrap to its context cause")
	}
}
