package equiv

import (
	"testing"

	"bpi/internal/names"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// TestTheorem1Implications samples random finite pairs and checks the
// inclusion half of Theorem 1 mechanically: labelled bisimilarity implies
// barbed bisimilarity (Lemma 10) and step bisimilarity (Lemma 11), in the
// strong and the weak case, plus the chain ~c ⊆ ~+ ⊆ ~.
func TestTheorem1Implications(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(12345, cfg)
	ch := newC()
	related, checked := 0, 0
	for i := 0; i < 60; i++ {
		p := g.Term()
		q := g.Mutate(p)
		checked++
		for _, weak := range []bool{false, true} {
			lab := labelled(t, ch, p, q, weak)
			if !lab {
				continue
			}
			related++
			if !barbed(t, ch, p, q, weak) {
				t.Errorf("seeded pair %d (weak=%v): labelled but not barbed:\n p=%s\n q=%s",
					i, weak, syntax.String(p), syntax.String(q))
			}
			if !step(t, ch, p, q, weak) {
				t.Errorf("seeded pair %d (weak=%v): labelled but not step:\n p=%s\n q=%s",
					i, weak, syntax.String(p), syntax.String(q))
			}
		}
		// Chain ~c ⊆ ~+ ⊆ ~ on the strong side.
		if cgr := congruentQuiet(t, ch, p, q); cgr {
			if !oneStep(t, ch, p, q, false) {
				t.Errorf("pair %d: ~c but not ~+:\n p=%s\n q=%s", i, syntax.String(p), syntax.String(q))
			}
		}
		if os := oneStep(t, ch, p, q, false); os {
			if !labelled(t, ch, p, q, false) {
				t.Errorf("pair %d: ~+ but not ~:\n p=%s\n q=%s", i, syntax.String(p), syntax.String(q))
			}
		}
	}
	if related == 0 {
		t.Fatal("sampling produced no related pairs — mutation mix is broken")
	}
	t.Logf("checked %d pairs, %d related verdicts", checked, related)
}

func congruentQuiet(t *testing.T, ch *Checker, p, q syntax.Proc) bool {
	t.Helper()
	ok, err := ch.CongruenceBounded(p, q, false, 64)
	if err != nil {
		t.Fatalf("congruence: %v", err)
	}
	return ok
}

// TestSimplifySemanticSoundness: Simplify must preserve the strong labelled
// bisimilarity class, the discard relation, and one-step matching (~+) of
// every random term. (It need NOT preserve ~c: stable-match elimination is
// only valid after all substitutions have been applied, which is why the
// congruence checkers substitute before simplifying.)
func TestSimplifySemanticSoundness(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(999, cfg)
	ch := newC()
	sys := ch.Sys
	for i := 0; i < 40; i++ {
		p := g.Term()
		s := syntax.Simplify(p)
		if syntax.Equal(p, s) {
			continue
		}
		if !oneStep(t, ch, p, s, false) {
			t.Errorf("Simplify changed one-step behaviour of %s (got %s)", syntax.String(p), syntax.String(s))
		}
		for _, a := range syntax.FreeNames(p).Sorted() {
			dp, err := sys.Discards(p, a)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := sys.Discards(s, a)
			if err != nil {
				t.Fatal(err)
			}
			if dp != ds {
				t.Errorf("Simplify changed discard on %s for %s", a, syntax.String(p))
			}
		}
	}
}

// TestInjectiveRenamingPreservesBisim (Lemma 18): p ~ q implies pρ ~ qρ for
// injective ρ.
func TestInjectiveRenamingPreservesBisim(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(777, cfg)
	ch := newC()
	ren := names.FromSlices(
		[]names.Name{"a", "b", "c"},
		[]names.Name{"b", "c", "a"}) // a permutation: injective
	found := 0
	for i := 0; i < 40 && found < 12; i++ {
		p := g.Term()
		q := g.Mutate(p)
		if !labelled(t, ch, p, q, false) {
			continue
		}
		found++
		if !labelled(t, ch, syntax.Apply(p, ren), syntax.Apply(q, ren), false) {
			t.Errorf("Lemma 18 violated on\n p=%s\n q=%s", syntax.String(p), syntax.String(q))
		}
	}
	if found == 0 {
		t.Fatal("no related pairs sampled")
	}
}

// TestStrongImpliesWeak: every strong verdict implies the weak one for all
// three relations.
func TestStrongImpliesWeak(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(31337, cfg)
	ch := newC()
	for i := 0; i < 30; i++ {
		p := g.Term()
		q := g.Mutate(p)
		if labelled(t, ch, p, q, false) && !labelled(t, ch, p, q, true) {
			t.Errorf("pair %d: strongly but not weakly labelled bisimilar", i)
		}
		if barbed(t, ch, p, q, false) && !barbed(t, ch, p, q, true) {
			t.Errorf("pair %d: strongly but not weakly barbed bisimilar", i)
		}
		if step(t, ch, p, q, false) && !step(t, ch, p, q, true) {
			t.Errorf("pair %d: strongly but not weakly step bisimilar", i)
		}
	}
}
