// Package equiv decides the behavioural equivalences of the bπ-calculus:
// strong and weak barbed bisimilarity (Definition 3), step bisimilarity
// (Definition 5), labelled bisimilarity (Definitions 7/8), the one-step
// relations ~+ / ≈+ (Definitions 11/15) and the congruences ~c / ≈c closed
// under substitutions (Section 4).
//
// All checkers work on-the-fly over canonically-keyed *pairs* of terms: from
// a pair (p,q) the engine derives matching obligations whose candidates are
// successor pairs, then computes the greatest fixpoint by removing violated
// pairs. Fresh names — reservoir names probing inputs, and canonical names
// for extruded bound outputs — are chosen deterministically *per pair*
// (avoiding fn(p)∪fn(q)), so the two sides of a comparison always agree on
// them; this is the standard finite-universe argument for early
// bisimulation, sound because bisimilarity is closed under injective
// renamings (Lemma 18 of the paper).
//
// # Concurrency
//
// All memoised semantic data (transitions, discards, τ- and autonomous
// closures) lives in a sharded Store that interns terms to dense uint64 IDs
// and is safe for concurrent use; a Checker is a thin view over one store
// plus a verdict cache, and may itself be shared across goroutines. Stores
// can also be shared across several Checkers (NewCheckerWithStore) so
// independent queries reuse each other's derivations.
//
// The engine optionally parallelises pair construction (the Workers option /
// NewParallelChecker) with persistent workers on work-stealing deques
// (internal/ws): a racy discovery pass speculatively builds pairs into a
// sharded build cache using per-worker arenas that defer store interning,
// then an authoritative in-order pass — exactly the sequential algorithm —
// expands the pair graph, consuming cached builds where discovery got there
// first. Node numbering, explored-pair counts, certificates and verdicts are
// therefore identical to the sequential run at every worker count —
// determinism is by construction, not by luck (see DESIGN.md §7). The
// greatest-fixpoint sweep itself is a reverse-dependency worklist and is
// O(edges) regardless of worker count. Prefer sequential mode (Workers ≤ 1,
// the default) for small one-shot queries where worker fan-out costs more
// than it saves; prefer a shared parallel Checker for batches of queries or
// large pair spaces.
package equiv

import (
	"runtime"
	"sync"

	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Checker decides equivalences against a fixed semantic system. It memoises
// term data (in its Store) and verdicts across queries. A Checker is safe
// for concurrent use; the exported budget/worker fields must be set before
// the first query and not mutated afterwards.
type Checker struct {
	Sys *semantics.System
	// MaxPairs bounds the number of explored pairs per query (default 20000).
	MaxPairs int
	// MaxClosure bounds the size of a τ-closure (default 2048).
	MaxClosure int
	// Workers sets the engine's obligation-construction parallelism:
	// values ≤ 1 build the pair frontier sequentially, larger values use a
	// bounded worker pool of that size. Verdicts and explored-pair counts
	// are identical either way.
	Workers int
	// Obs, when non-nil, receives spans (equiv.run → equiv.explore →
	// equiv.prebuild/equiv.expand, equiv.fixpoint) and engine counters
	// from every query.
	// Like the budget fields it must be set before the first query. The
	// nil default is free: call sites guard with obs's nil-safe no-ops,
	// proven allocation-free by TestDisabledObsZeroAlloc.
	Obs *obs.Tracer
	// Certify makes every verdict carry a checkable certificate
	// (Result.Cert, see internal/cert). Must be set before the first query:
	// verdicts cached while Certify was off have no certificate and are
	// re-derived on the first certifying query.
	Certify bool

	store *Store

	mu       sync.Mutex
	verdicts map[verdictKey]cachedVerdict
}

// NewChecker returns a sequential Checker over the given system (nil means
// the empty definitions environment).
func NewChecker(sys *semantics.System) *Checker {
	return NewCheckerWithStore(NewStore(sys))
}

// NewParallelChecker returns a Checker whose engine builds pair frontiers
// with `workers` goroutines (≤ 0 means GOMAXPROCS). The checker and its
// store may be shared freely across goroutines.
func NewParallelChecker(sys *semantics.System, workers int) *Checker {
	c := NewChecker(sys)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c.Workers = workers
	return c
}

// NewCheckerWithStore returns a Checker sharing an existing term store (and
// its semantic system), so memoised transitions and closures are reused
// across checkers.
func NewCheckerWithStore(store *Store) *Checker {
	return &Checker{Sys: store.System(), store: store, verdicts: map[verdictKey]cachedVerdict{}}
}

// Store returns the checker's term store, for sharing with other checkers.
func (c *Checker) Store() *Store { return c.store }

func (c *Checker) maxPairs() int {
	if c.MaxPairs <= 0 {
		return 20000
	}
	return c.MaxPairs
}

func (c *Checker) maxClosure() int {
	if c.MaxClosure <= 0 {
		return 2048
	}
	return c.MaxClosure
}

func (c *Checker) workers() int {
	if c.Workers <= 1 {
		return 1
	}
	return c.Workers
}

// ErrBudget reports that a query exceeded its exploration budget; the
// verdict is inconclusive.
type ErrBudget struct{ What string }

func (e ErrBudget) Error() string { return "equiv: budget exhausted while exploring " + e.What }

// Thin delegation to the shared store ---------------------------------------

func (c *Checker) intern(p syntax.Proc) (*termInfo, error) { return c.store.intern(p) }

func (c *Checker) discardsOn(ti *termInfo, a names.Name) (bool, error) {
	return c.store.discardsOn(ti, a)
}

func (c *Checker) tauSucc(ti *termInfo) ([]*termInfo, error) { return c.store.tauSucc(ti) }

func (c *Checker) tauClosure(ti *termInfo) ([]*termInfo, error) {
	return c.store.tauClosure(ti, c.maxClosure())
}

func (c *Checker) autonomousSucc(ti *termInfo) ([]*termInfo, error) {
	return c.store.autonomousSucc(ti)
}

func (c *Checker) autonomousClosure(ti *termInfo) ([]*termInfo, error) {
	return c.store.autonomousClosure(ti, c.maxClosure())
}

func (c *Checker) reactions(ti *termInfo, ch names.Name, payload []names.Name) ([]*termInfo, error) {
	return c.store.reactions(ti, ch, payload)
}

// Interner-threaded variants: identical semantics, but new terms are
// resolved through it (a per-worker arena during the engine's discovery
// pass, or the store itself).

func (c *Checker) tauSuccIn(it interner, ti *termInfo) ([]*termInfo, error) {
	return c.store.tauSuccIn(it, ti)
}

func (c *Checker) tauClosureIn(it interner, ti *termInfo) ([]*termInfo, error) {
	return c.store.tauClosureIn(it, ti, c.maxClosure())
}

func (c *Checker) autonomousSuccIn(it interner, ti *termInfo) ([]*termInfo, error) {
	return c.store.autonomousSuccIn(it, ti)
}

func (c *Checker) autonomousClosureIn(it interner, ti *termInfo) ([]*termInfo, error) {
	return c.store.autonomousClosureIn(it, ti, c.maxClosure())
}

func (c *Checker) reactionsIn(it interner, ti *termInfo, ch names.Name, payload []names.Name) ([]*termInfo, error) {
	return c.store.reactionsIn(it, ti, ch, payload)
}

// Derived observations -------------------------------------------------------

// strongBarbs returns the subjects of ti's output transitions (p ↓a).
func strongBarbs(ti *termInfo) names.Set {
	out := make(names.Set)
	for _, t := range ti.trans {
		if t.Act.IsOutput() {
			out = out.Add(t.Act.Subj)
		}
	}
	return out
}

// weakBarb reports p ⇓a: some τ*-derivative has a strong barb on a.
func (c *Checker) weakBarb(ti *termInfo, a names.Name) (bool, error) {
	return c.weakBarbIn(c.store, ti, a)
}

func (c *Checker) weakBarbIn(it interner, ti *termInfo, a names.Name) (bool, error) {
	cl, err := c.tauClosureIn(it, ti)
	if err != nil {
		return false, err
	}
	for _, s := range cl {
		if strongBarbs(s).Contains(a) {
			return true, nil
		}
	}
	return false, nil
}

// outputsCanon returns the output transitions of ti with extruded names
// renamed to the deterministic canonical sequence chosen against avoid.
// Both members of a pair use the same avoid set, so their canonical labels
// are directly comparable.
func outputsCanon(ti *termInfo, avoid names.Set) []semantics.Trans {
	var out []semantics.Trans
	for _, t := range ti.trans {
		if !t.Act.IsOutput() {
			continue
		}
		out = append(out, canonOut(t, avoid))
	}
	return out
}

// canonOut renames the extruded names of one output transition against avoid.
func canonOut(t semantics.Trans, avoid names.Set) semantics.Trans {
	if len(t.Act.Bound) == 0 {
		return t
	}
	av := avoid.Clone().AddAll(t.Act.FreeNames())
	ren := names.Subst{}
	for _, b := range t.Act.Bound {
		nb := syntax.FreshVariant("e", av)
		av = av.Add(nb)
		ren[b] = nb
	}
	return semantics.Trans{Act: t.Act.RenameAll(ren), Target: syntax.Apply(t.Target, ren)}
}

// inputShapes returns the set of (channel, arity) pairs at which ti listens.
func inputShapes(ti *termInfo) map[shape]bool {
	out := map[shape]bool{}
	for _, t := range ti.trans {
		if t.Act.IsInput() {
			out[shape{t.Act.Subj, len(t.Act.Objs)}] = true
		}
	}
	return out
}

type shape struct {
	ch    names.Name
	arity int
}

// freeUnion returns a fresh set fn(p) ∪ fn(q) (the cached per-term sets are
// shared and must not be mutated).
func freeUnion(p, q *termInfo) names.Set {
	return p.free.Clone().AddAll(q.free)
}

// pairUniverse returns the instantiation universe for a pair: the free names
// of both sides plus `extra` deterministic reservoir names fresh for the pair.
func pairUniverse(p, q *termInfo, extra int) []names.Name {
	avoid := freeUnion(p, q)
	u := avoid.Sorted()
	for i := 0; i < extra; i++ {
		w := syntax.FreshVariant("w", avoid)
		avoid = avoid.Add(w)
		u = append(u, w)
	}
	return u
}

// tuples enumerates u^k as fresh slices, iteratively (odometer order:
// position 0 most significant), with the exponential result preallocated.
func tuples(u []names.Name, k int) [][]names.Name {
	if k == 0 {
		return [][]names.Name{nil}
	}
	if len(u) == 0 {
		return nil
	}
	total := 1
	for i := 0; i < k; i++ {
		total *= len(u)
	}
	out := make([][]names.Name, 0, total)
	backing := make([]names.Name, total*k)
	idx := make([]int, k)
	for {
		t := backing[:k:k]
		backing = backing[k:]
		for i, j := range idx {
			t[i] = u[j]
		}
		out = append(out, t)
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(u) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}
