// Package equiv decides the behavioural equivalences of the bπ-calculus:
// strong and weak barbed bisimilarity (Definition 3), step bisimilarity
// (Definition 5), labelled bisimilarity (Definitions 7/8), the one-step
// relations ~+ / ≈+ (Definitions 11/15) and the congruences ~c / ≈c closed
// under substitutions (Section 4).
//
// All checkers work on-the-fly over canonically-keyed *pairs* of terms: from
// a pair (p,q) the engine derives matching obligations whose candidates are
// successor pairs, then computes the greatest fixpoint by removing violated
// pairs. Fresh names — reservoir names probing inputs, and canonical names
// for extruded bound outputs — are chosen deterministically *per pair*
// (avoiding fn(p)∪fn(q)), so the two sides of a comparison always agree on
// them; this is the standard finite-universe argument for early
// bisimulation, sound because bisimilarity is closed under injective
// renamings (Lemma 18 of the paper).
package equiv

import (
	"sort"

	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Checker decides equivalences against a fixed semantic system. It memoises
// term data and verdicts across queries and is therefore NOT safe for
// concurrent use; create one Checker per goroutine.
type Checker struct {
	Sys *semantics.System
	// MaxPairs bounds the number of explored pairs per query (default 20000).
	MaxPairs int
	// MaxClosure bounds the size of a τ-closure (default 2048).
	MaxClosure int

	terms    map[string]*termInfo
	verdicts map[string]bool
}

// NewChecker returns a Checker over the given system (nil means the empty
// definitions environment).
func NewChecker(sys *semantics.System) *Checker {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	return &Checker{Sys: sys, terms: map[string]*termInfo{}}
}

func (c *Checker) maxPairs() int {
	if c.MaxPairs <= 0 {
		return 20000
	}
	return c.MaxPairs
}

func (c *Checker) maxClosure() int {
	if c.MaxClosure <= 0 {
		return 2048
	}
	return c.MaxClosure
}

// ErrBudget reports that a query exceeded its exploration budget; the
// verdict is inconclusive.
type ErrBudget struct{ What string }

func (e ErrBudget) Error() string { return "equiv: budget exhausted while exploring " + e.What }

// termInfo caches per-term semantic data.
type termInfo struct {
	proc     syntax.Proc
	key      string
	trans    []semantics.Trans
	discards map[names.Name]bool
	// tauClosure lists the keys of terms reachable by τ* (including self);
	// computed lazily.
	tauClosure []string
}

// intern canonicalises and caches a term.
func (c *Checker) intern(p syntax.Proc) (*termInfo, error) {
	p = syntax.Simplify(p)
	k := syntax.Key(p)
	if ti, ok := c.terms[k]; ok {
		return ti, nil
	}
	ts, err := c.Sys.Steps(p)
	if err != nil {
		return nil, err
	}
	ti := &termInfo{proc: p, key: k, trans: ts, discards: map[names.Name]bool{}}
	c.terms[k] = ti
	return ti, nil
}

// discardsOn reports whether the term ignores channel a (memoised).
func (c *Checker) discardsOn(ti *termInfo, a names.Name) (bool, error) {
	if v, ok := ti.discards[a]; ok {
		return v, nil
	}
	v, err := c.Sys.Discards(ti.proc, a)
	if err != nil {
		return false, err
	}
	ti.discards[a] = v
	return v, nil
}

// tauSucc returns the interned τ-successors of ti.
func (c *Checker) tauSucc(ti *termInfo) ([]*termInfo, error) {
	var out []*termInfo
	for _, t := range ti.trans {
		if t.Act.IsTau() {
			s, err := c.intern(t.Target)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// tauClosure returns every term reachable from ti by τ* (including ti).
func (c *Checker) tauClosure(ti *termInfo) ([]*termInfo, error) {
	if ti.tauClosure != nil {
		out := make([]*termInfo, len(ti.tauClosure))
		for i, k := range ti.tauClosure {
			out[i] = c.terms[k]
		}
		return out, nil
	}
	seen := map[string]*termInfo{ti.key: ti}
	work := []*termInfo{ti}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		succ, err := c.tauSucc(cur)
		if err != nil {
			return nil, err
		}
		for _, s := range succ {
			if _, ok := seen[s.key]; ok {
				continue
			}
			if len(seen) >= c.maxClosure() {
				return nil, ErrBudget{"tau closure"}
			}
			seen[s.key] = s
			work = append(work, s)
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ti.tauClosure = keys
	out := make([]*termInfo, len(keys))
	for i, k := range keys {
		out[i] = c.terms[k]
	}
	return out, nil
}

// strongBarbs returns the subjects of ti's output transitions (p ↓a).
func strongBarbs(ti *termInfo) names.Set {
	out := make(names.Set)
	for _, t := range ti.trans {
		if t.Act.IsOutput() {
			out = out.Add(t.Act.Subj)
		}
	}
	return out
}

// weakBarb reports p ⇓a: some τ*-derivative has a strong barb on a.
func (c *Checker) weakBarb(ti *termInfo, a names.Name) (bool, error) {
	cl, err := c.tauClosure(ti)
	if err != nil {
		return false, err
	}
	for _, s := range cl {
		if strongBarbs(s).Contains(a) {
			return true, nil
		}
	}
	return false, nil
}

// outputsCanon returns the output transitions of ti with extruded names
// renamed to the deterministic canonical sequence chosen against avoid.
// Both members of a pair use the same avoid set, so their canonical labels
// are directly comparable.
func outputsCanon(ti *termInfo, avoid names.Set) []semantics.Trans {
	var out []semantics.Trans
	for _, t := range ti.trans {
		if !t.Act.IsOutput() {
			continue
		}
		out = append(out, canonOut(t, avoid))
	}
	return out
}

// canonOut renames the extruded names of one output transition against avoid.
func canonOut(t semantics.Trans, avoid names.Set) semantics.Trans {
	if len(t.Act.Bound) == 0 {
		return t
	}
	av := avoid.Clone().AddAll(t.Act.FreeNames())
	ren := names.Subst{}
	for _, b := range t.Act.Bound {
		nb := syntax.FreshVariant("e", av)
		av = av.Add(nb)
		ren[b] = nb
	}
	return semantics.Trans{Act: t.Act.RenameAll(ren), Target: syntax.Apply(t.Target, ren)}
}

// inputShapes returns the set of (channel, arity) pairs at which ti listens.
func inputShapes(ti *termInfo) map[shape]bool {
	out := map[shape]bool{}
	for _, t := range ti.trans {
		if t.Act.IsInput() {
			out[shape{t.Act.Subj, len(t.Act.Objs)}] = true
		}
	}
	return out
}

type shape struct {
	ch    names.Name
	arity int
}

// reactions returns the possible reactions of ti to an environment
// broadcast a(c̃): every input derivative at that channel and arity
// instantiated with c̃, plus ti itself when it discards a. An empty result
// means ti can neither receive nor ignore the message (ill-sorted usage).
func (c *Checker) reactions(ti *termInfo, ch names.Name, payload []names.Name) ([]*termInfo, error) {
	var out []*termInfo
	for _, t := range ti.trans {
		if !t.Act.IsInput() || t.Act.Subj != ch || len(t.Act.Objs) != len(payload) {
			continue
		}
		_, tgt := semantics.Instantiate(t, payload)
		s, err := c.intern(tgt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	d, err := c.discardsOn(ti, ch)
	if err != nil {
		return nil, err
	}
	if d {
		out = append(out, ti)
	}
	return out, nil
}

// pairUniverse returns the instantiation universe for a pair: the free names
// of both sides plus `extra` deterministic reservoir names fresh for the pair.
func pairUniverse(p, q *termInfo, extra int) []names.Name {
	fn := syntax.FreeNames(p.proc).AddAll(syntax.FreeNames(q.proc))
	u := fn.Sorted()
	avoid := fn.Clone()
	for i := 0; i < extra; i++ {
		w := syntax.FreshVariant("w", avoid)
		avoid = avoid.Add(w)
		u = append(u, w)
	}
	return u
}

// tuples enumerates u^k as fresh slices.
func tuples(u []names.Name, k int) [][]names.Name {
	if k == 0 {
		return [][]names.Name{nil}
	}
	smaller := tuples(u, k-1)
	out := make([][]names.Name, 0, len(smaller)*len(u))
	for _, n := range u {
		for _, t := range smaller {
			tt := make([]names.Name, 0, k)
			tt = append(tt, n)
			tt = append(tt, t...)
			out = append(out, tt)
		}
	}
	return out
}

func pairKey(pk, qk string) string { return pk + "\x00" + qk }
