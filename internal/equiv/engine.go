package equiv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"bpi/internal/cert"
	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/ws"
)

// ErrCanceled reports that a query was abandoned because its context was
// canceled or its deadline expired; the verdict is inconclusive. It unwraps
// to the context error, so errors.Is(err, context.DeadlineExceeded)
// distinguishes timeouts from exploration-budget exhaustion (ErrBudget).
type ErrCanceled struct{ Cause error }

func (e ErrCanceled) Error() string { return "equiv: query canceled: " + e.Cause.Error() }

// Unwrap exposes the context error for errors.Is/As.
func (e ErrCanceled) Unwrap() error { return e.Cause }

// relKind selects which of the paper's bisimilarities an engine decides.
type relKind int

const (
	relLabelled relKind = iota // Definitions 7/8
	relBarbed                  // Definition 3
	relStep                    // Definition 5
)

type spec struct {
	kind relKind
	weak bool
}

func (s spec) String() string {
	k := map[relKind]string{relLabelled: "labelled", relBarbed: "barbed", relStep: "step"}[s.kind]
	if s.weak {
		return "weak " + k
	}
	return "strong " + k
}

// Result reports an equivalence verdict.
type Result struct {
	// Related is the verdict.
	Related bool
	// Pairs is the number of term pairs explored.
	Pairs int
	// Reason describes the obligation that failed when Related is false.
	Reason string
	// Cert is the checkable certificate of the verdict, emitted when the
	// Checker's Certify flag is set (nil otherwise). Cached verdicts return
	// the cached certificate, in the orientation of the original query.
	Cert *cert.Certificate
}

// obMove is the structured identity of an obligation's challenge: which side
// moved, how, and to what — enough to re-derive the challenge independently
// of the engine (certificates) and to name it precisely (Reason).
type obMove struct {
	side    string // "left" | "right"
	kind    string // "tau" | "out" | "react" | "step"
	label   string // canonical output label (kind "out")
	ch      names.Name
	payload []names.Name
	// mover is the challenger's derivative (the target of the move).
	mover *termInfo
}

// describe renders the move as the human-readable failure reason. Reasons
// are derived on demand from the structured move — only the losing
// obligation of a negative verdict ever needs its string, so the hot build
// path never formats one.
func (mv obMove) describe() string {
	switch mv.kind {
	case "tau":
		return fmt.Sprintf("tau move of %s to %s unmatched", mv.side, stringOf(mv.mover))
	case "step":
		return fmt.Sprintf("autonomous step of %s to %s unmatched", mv.side, stringOf(mv.mover))
	case "out":
		return fmt.Sprintf("output %s of %s from %s unmatched", mv.label, mv.side, stringOf(mv.mover))
	default: // "react"
		return fmt.Sprintf("reaction %s?(%s) of %s to %s unmatched",
			mv.ch, joinNames(mv.payload), mv.side, stringOf(mv.mover))
	}
}

// obligation is one matching requirement of a pair: at least one candidate
// successor pair must remain in the relation.
type obligation struct {
	mv         obMove
	candidates []int
}

type pairNode struct {
	p, q *termInfo
	obs  []obligation
	bad  bool
	// staticBad records that the pair failed a build-time check (barbs)
	// rather than the fixpoint, so its reason is already deterministic.
	staticBad bool
	reason    string
	// failSide/failBarb identify the static barb failure structurally (the
	// side owning the unmatched barb, and its channel).
	failSide string
	failBarb names.Name
}

// built is the result of constructing one pair's obligations. Builders only
// read the (concurrency-safe) store, never engine state, so pairs can be
// built by racing discovery workers and consumed deterministically later:
// given the same store contents a pair's built value is the same whoever
// computes it (successor orders come from transition order and key-sorted
// closures, never from interning order).
type built struct {
	bad      bool
	reason   string
	failSide string
	failBarb names.Name
	obs      []obSpec
	err      error
}

type obSpec struct {
	mv    obMove
	cands [][2]*termInfo
}

func (b *built) add(mv obMove, cands [][2]*termInfo) {
	b.obs = append(b.obs, obSpec{mv: mv, cands: cands})
}

// failBarbOn records a static barb failure: side owns a barb on a that the
// other side cannot (weakly) answer.
func (b *built) failBarbOn(side string, a names.Name, format string, args ...any) {
	b.bad = true
	b.failSide, b.failBarb = side, a
	b.reason = fmt.Sprintf(format, args...)
}

// pairItem is the work-stealing discovery unit: one unordered-built pair.
type pairItem struct{ p, q *termInfo }

// buildCache is the hand-off between the racing discovery pass and the
// deterministic expand pass: built pair results keyed by store-ID pairs,
// sharded like the term store so discovery workers rarely contend. claim
// doubles as the discovery-side dedup (first claimer builds the pair).
type buildCache struct {
	puts   atomic.Int64
	shards [storeShards]struct {
		mu sync.Mutex
		m  map[[2]uint64]*built
	}
}

func newBuildCache() *buildCache {
	bc := &buildCache{}
	for i := range bc.shards {
		bc.shards[i].m = make(map[[2]uint64]*built)
	}
	return bc
}

func (bc *buildCache) shardOf(p, q uint64) int {
	return int((p*0x9E3779B1 ^ q*0x85EBCA77) % storeShards)
}

// claim marks (p,q) as scheduled for building; only the first claimer gets
// true. The placeholder is distinguishable from a finished build (nil value).
func (bc *buildCache) claim(p, q uint64) bool {
	sh := &bc.shards[bc.shardOf(p, q)]
	k := [2]uint64{p, q}
	sh.mu.Lock()
	_, seen := sh.m[k]
	if !seen {
		sh.m[k] = nil
	}
	sh.mu.Unlock()
	return !seen
}

// put publishes a finished build.
func (bc *buildCache) put(p, q uint64, b *built) {
	sh := &bc.shards[bc.shardOf(p, q)]
	sh.mu.Lock()
	sh.m[[2]uint64{p, q}] = b
	sh.mu.Unlock()
	bc.puts.Add(1)
}

// take returns the prebuilt result of (p,q), or nil when it was never built
// (unclaimed, abandoned by Stop, or no prebuild ran — nil receiver is fine).
// The expand pass then builds inline.
func (bc *buildCache) take(p, q uint64) *built {
	if bc == nil {
		return nil
	}
	sh := &bc.shards[bc.shardOf(p, q)]
	sh.mu.Lock()
	b := sh.m[[2]uint64{p, q}]
	sh.mu.Unlock()
	return b
}

type engine struct {
	c     *Checker
	ctx   context.Context
	sp    spec
	nodes []*pairNode
	index map[[2]uint64]int

	// prebuilt holds the discovery pass's cached pair builds (nil when
	// running sequentially).
	prebuilt *buildCache

	// Observability: nil when the checker has no tracer; every use is a
	// nil-safe no-op then. Counters are resolved once per run so the hot
	// loops touch no map.
	tr     *obs.Tracer
	cPairs *obs.Counter
}

func (c *Checker) run(ctx context.Context, pi, qi *termInfo, sp spec) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := c.Obs
	e := &engine{
		c: c, ctx: ctx, sp: sp, index: map[[2]uint64]int{},
		tr:     tr,
		cPairs: tr.Counter("equiv.pairs_expanded"),
	}
	run := tr.Span("equiv.run")
	defer run.End()
	root, err := e.node(pi, qi)
	if err != nil {
		return Result{}, err
	}
	if err := e.explore(run); err != nil {
		return Result{}, err
	}
	fix := run.Child("equiv.fixpoint")
	e.fixpoint()
	fix.End()
	rn := e.nodes[root]
	res := Result{Related: !rn.bad, Pairs: len(e.nodes)}
	if rn.bad {
		reason := rn.reason
		if !rn.staticBad {
			reason = e.failReason(rn)
		}
		res.Reason = fmt.Sprintf("%s: %s (comparing %s with %s)", sp, reason,
			stringOf(rn.p), stringOf(rn.q))
	}
	if c.Certify {
		res.Cert = e.certificate(root)
	}
	return res, nil
}

// explore closes the pair space in two passes. With workers > 1, a
// work-stealing *discovery* pass (prebuild) races over the pair space and
// caches each pair's built obligations — order-free, so it needs no barrier
// and no coordination beyond first-claim dedup. The *expand* pass is the
// authoritative one: it processes nodes strictly in index order (exactly the
// sequential algorithm), consuming cached builds and building inline any pair
// discovery missed. Node numbering, pair counts, budget/cancel errors and
// Reasons are therefore identical at every worker count by construction —
// parallelism only changes how often expand finds its work precomputed.
// Context cancellation is observed between pairs, so a deadline aborts the
// query promptly even on unbounded pair spaces.
func (e *engine) explore(run *obs.Span) error {
	span := run.Child("equiv.explore")
	defer span.End()
	if e.c.workers() > 1 {
		pb := span.Child("equiv.prebuild")
		e.prebuild()
		pb.End()
	}
	ex := span.Child("equiv.expand")
	defer ex.End()
	cPrebuilt := e.tr.Counter("equiv.prebuilt_used")
	for i := 0; i < len(e.nodes); i++ {
		if err := e.ctx.Err(); err != nil {
			return ErrCanceled{err}
		}
		n := e.nodes[i]
		b := e.prebuilt.take(n.p.id, n.q.id)
		if b != nil {
			cPrebuilt.Add(1)
		} else {
			b = e.buildPair(n.p, n.q, e.c.store)
		}
		if b.err != nil {
			return b.err
		}
		if err := e.merge(n, b); err != nil {
			return err
		}
	}
	return nil
}

// prebuild is the work-stealing discovery pass: persistent workers, each
// with a private deque of pairs and a per-worker interning arena, race to
// build the reachable pair space into e.prebuilt. Every discovered successor
// pair is claimed exactly once and pushed in one batch. The pass is purely
// an accelerator: it may stop early (cancellation, budget) or miss pairs
// (Stop abandons deques) without affecting the verdict.
func (e *engine) prebuild() {
	workers := e.c.workers()
	e.prebuilt = newBuildCache()
	maxClaims := int64(e.c.maxPairs())
	var claimed atomic.Int64

	cFlushes := e.tr.Counter("equiv.arena_flushes")
	arenas := make([]*arena, workers)
	for i := range arenas {
		arenas[i] = newArena(e.c.store, cFlushes)
	}

	var pool *ws.Pool[pairItem]
	pool = ws.NewPool(workers, func(w int, it pairItem) {
		if e.ctx.Err() != nil {
			pool.Stop()
			return
		}
		b := e.buildPair(it.p, it.q, arenas[w])
		e.prebuilt.put(it.p.id, it.q.id, b)
		if b.err != nil || b.bad {
			return
		}
		var batch []pairItem
		for _, ob := range b.obs {
			for _, cd := range ob.cands {
				if !e.prebuilt.claim(cd[0].id, cd[1].id) {
					continue
				}
				if claimed.Add(1) > maxClaims {
					// The pair space exceeds the budget: expand will raise
					// ErrBudget at exactly the sequential point, so further
					// discovery is wasted work.
					pool.Stop()
					return
				}
				batch = append(batch, pairItem{cd[0], cd[1]})
			}
		}
		pool.Push(w, batch...)
	})
	seeds := make([]pairItem, 0, len(e.nodes))
	for _, n := range e.nodes {
		if e.prebuilt.claim(n.p.id, n.q.id) {
			claimed.Add(1)
			seeds = append(seeds, pairItem{n.p, n.q})
		}
	}
	pool.Run(seeds)
	for _, a := range arenas {
		a.flush()
	}
	st := pool.Stats()
	e.tr.Counter("equiv.steals").Add(st.Steals)
	e.tr.Counter("equiv.prebuilt_pairs").Add(e.prebuilt.puts.Load())
}

// buildPair computes the static checks and matching obligations of one pair,
// touching only the shared store through it (safe to call from discovery
// workers, each with its own arena interner).
func (e *engine) buildPair(p, q *termInfo, it interner) *built {
	b := &built{}
	var err error
	switch e.sp.kind {
	case relBarbed:
		err = e.buildBarbed(p, q, it, b)
	case relStep:
		err = e.buildStep(p, q, it, b)
	default:
		err = e.buildLabelled(p, q, it, b)
	}
	b.err = err
	return b
}

// merge installs one built pair: statically bad pairs keep their reason,
// obligation candidates are interned to node indices (appending fresh pairs
// to the node list, where the expand loop will reach them in order).
func (e *engine) merge(n *pairNode, b *built) error {
	if b.bad {
		n.bad, n.staticBad, n.reason = true, true, b.reason
		n.failSide, n.failBarb = b.failSide, b.failBarb
		return nil
	}
	for _, ob := range b.obs {
		o := obligation{mv: ob.mv, candidates: make([]int, 0, len(ob.cands))}
		for _, cd := range ob.cands {
			ci, err := e.node(cd[0], cd[1])
			if err != nil {
				return err
			}
			o.candidates = append(o.candidates, ci)
		}
		n.obs = append(n.obs, o)
	}
	return nil
}

// node interns the ordered pair (p,q) by store IDs.
func (e *engine) node(p, q *termInfo) (int, error) {
	k := [2]uint64{p.id, q.id}
	if i, ok := e.index[k]; ok {
		return i, nil
	}
	if len(e.nodes) >= e.c.maxPairs() {
		return 0, ErrBudget{"pair space"}
	}
	i := len(e.nodes)
	e.nodes = append(e.nodes, &pairNode{p: p, q: q})
	e.index[k] = i
	e.cPairs.Add(1)
	return i, nil
}

// fixpoint computes the greatest fixpoint by worklist over reverse
// dependency edges (candidate → obligations it supports): when a pair dies,
// only the obligations actually depending on it are revisited, so the sweep
// is O(total candidate edges) instead of O(rescans × relation size).
func (e *engine) fixpoint() {
	type dep struct{ node, ob int32 }
	rev := make([][]dep, len(e.nodes))
	alive := make([][]int32, len(e.nodes))
	var work []int
	for i, n := range e.nodes {
		if n.bad {
			work = append(work, i)
			continue
		}
		alive[i] = make([]int32, len(n.obs))
		for j, ob := range n.obs {
			alive[i][j] = int32(len(ob.candidates))
			if len(ob.candidates) == 0 {
				if !n.bad {
					n.bad = true
					work = append(work, i)
				}
				continue
			}
			for _, ci := range ob.candidates {
				rev[ci] = append(rev[ci], dep{int32(i), int32(j)})
			}
		}
	}
	cPops := e.tr.Counter("equiv.worklist_pops")
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		cPops.Add(1)
		for _, d := range rev[i] {
			dn := e.nodes[d.node]
			if dn.bad {
				continue
			}
			alive[d.node][d.ob]--
			if alive[d.node][d.ob] == 0 {
				dn.bad = true
				work = append(work, int(d.node))
			}
		}
	}
}

// failReason picks the deterministic explanation for a fixpoint-discarded
// pair: the first obligation (in construction order) with no surviving
// candidate. Worklist processing order marked the pair bad via *some*
// obligation; rescanning keeps Reason independent of scheduling.
func (e *engine) failReason(n *pairNode) string {
	for _, ob := range n.obs {
		ok := false
		for _, ci := range ob.candidates {
			if !e.nodes[ci].bad {
				ok = true
				break
			}
		}
		if !ok {
			return ob.mv.describe()
		}
	}
	return n.reason
}

// ---- barbed bisimulation (Definition 3) -----------------------------------

func (e *engine) buildBarbed(p, q *termInfo, it interner, b *built) error {
	// Barb conditions.
	pb, qb := strongBarbs(p), strongBarbs(q)
	if !e.sp.weak {
		if !pb.Equal(qb) {
			side, a := barbWitness(pb, qb)
			b.failBarbOn(side, a, "strong barbs differ on %s: %v vs %v", a, pb, qb)
			return nil
		}
	} else {
		for _, a := range pb.Sorted() {
			ok, err := e.c.weakBarbIn(it, q, a)
			if err != nil {
				return err
			}
			if !ok {
				b.failBarbOn("left", a, "right side lacks weak barb on %s", a)
				return nil
			}
		}
		for _, a := range qb.Sorted() {
			ok, err := e.c.weakBarbIn(it, p, a)
			if err != nil {
				return err
			}
			if !ok {
				b.failBarbOn("right", a, "left side lacks weak barb on %s", a)
				return nil
			}
		}
	}
	// τ moves.
	pt, err := e.c.tauSuccIn(it, p)
	if err != nil {
		return err
	}
	qt, err := e.c.tauSuccIn(it, q)
	if err != nil {
		return err
	}
	qMatch, err := e.weakOrStrongTauTargets(it, q, qt)
	if err != nil {
		return err
	}
	pMatch, err := e.weakOrStrongTauTargets(it, p, pt)
	if err != nil {
		return err
	}
	for _, ps := range pt {
		var cands [][2]*termInfo
		for _, qs := range qMatch {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(obMove{side: "left", kind: "tau", mover: ps}, cands)
	}
	for _, qs := range qt {
		var cands [][2]*termInfo
		for _, ps := range pMatch {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(obMove{side: "right", kind: "tau", mover: qs}, cands)
	}
	return nil
}

// weakOrStrongTauTargets returns the states that may answer a τ move: the
// strong τ successors, or the full τ* closure (including staying put) in the
// weak case.
func (e *engine) weakOrStrongTauTargets(it interner, ti *termInfo, strong []*termInfo) ([]*termInfo, error) {
	if !e.sp.weak {
		return strong, nil
	}
	return e.c.tauClosureIn(it, ti)
}

// ---- step bisimulation (Definition 5) --------------------------------------

func (e *engine) buildStep(p, q *termInfo, it interner, b *built) error {
	// ↓φ barbs: subjects of output transitions.
	pb, qb := strongBarbs(p), strongBarbs(q)
	if !e.sp.weak {
		if !pb.Equal(qb) {
			side, a := barbWitness(pb, qb)
			b.failBarbOn(side, a, "step barbs differ on %s: %v vs %v", a, pb, qb)
			return nil
		}
	} else {
		for _, a := range pb.Sorted() {
			ok, err := e.weakStepBarb(it, q, a)
			if err != nil {
				return err
			}
			if !ok {
				b.failBarbOn("left", a, "right side lacks weak step barb on %s", a)
				return nil
			}
		}
		for _, a := range qb.Sorted() {
			ok, err := e.weakStepBarb(it, p, a)
			if err != nil {
				return err
			}
			if !ok {
				b.failBarbOn("right", a, "left side lacks weak step barb on %s", a)
				return nil
			}
		}
	}
	// Autonomous moves, label-blind.
	pa, err := e.c.autonomousSuccIn(it, p)
	if err != nil {
		return err
	}
	qa, err := e.c.autonomousSuccIn(it, q)
	if err != nil {
		return err
	}
	qTargets, pTargets := qa, pa
	if e.sp.weak {
		if qTargets, err = e.c.autonomousClosureIn(it, q); err != nil {
			return err
		}
		if pTargets, err = e.c.autonomousClosureIn(it, p); err != nil {
			return err
		}
	}
	for _, ps := range pa {
		var cands [][2]*termInfo
		for _, qs := range qTargets {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(obMove{side: "left", kind: "step", mover: ps}, cands)
	}
	for _, qs := range qa {
		var cands [][2]*termInfo
		for _, ps := range pTargets {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(obMove{side: "right", kind: "step", mover: qs}, cands)
	}
	return nil
}

// weakStepBarb reports that some (τ ∪ output)*-derivative strongly barbs on a.
func (e *engine) weakStepBarb(it interner, ti *termInfo, a names.Name) (bool, error) {
	cl, err := e.c.autonomousClosureIn(it, ti)
	if err != nil {
		return false, err
	}
	for _, s := range cl {
		if strongBarbs(s).Contains(a) {
			return true, nil
		}
	}
	return false, nil
}
